bin/examples_programs.ml: Gaussian_model Lang Nuts_dsl Prim Shape
