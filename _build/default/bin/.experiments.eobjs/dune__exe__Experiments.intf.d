bin/experiments.mli:
