examples/edit_distance.ml: Array Autobatch Char Format Lang List Shape String Tensor
