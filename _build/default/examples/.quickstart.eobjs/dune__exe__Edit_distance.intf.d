examples/edit_distance.mli:
