examples/nuts_gaussian.ml: Autobatch Format Gaussian_model Instrument List Nuts Nuts_dsl Option Pc_vm Tensor
