examples/nuts_gaussian.mli:
