examples/nuts_logreg.ml: Autobatch Device Engine Format Instrument List Local_vm Logistic_model Nuts Nuts_dsl Pc_vm Stdlib Table Tensor
