examples/nuts_logreg.mli:
