examples/ode_batch.ml: Array Autobatch Float Format Instrument Lang List Pc_vm Shape Tensor
