examples/ode_batch.mli:
