examples/quickstart.ml: Array Autobatch Format Lang List Shape Stack_ir Tensor
