examples/quickstart.mli:
