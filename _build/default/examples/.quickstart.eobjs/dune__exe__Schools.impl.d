examples/schools.ml: Array Batched_sampler Eight_schools Float Format Nuts Stdlib Tensor
