examples/schools.mli:
