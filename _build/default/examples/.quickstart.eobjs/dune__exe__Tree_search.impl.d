examples/tree_search.ml: Array Autobatch Float Format Instrument Lang List Pc_vm Shape Stdlib Tensor
