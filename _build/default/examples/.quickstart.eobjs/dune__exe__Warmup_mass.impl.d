examples/warmup_mass.ml: Array Autobatch Format Gaussian_model List Nuts Nuts_dsl Tensor Warmup
