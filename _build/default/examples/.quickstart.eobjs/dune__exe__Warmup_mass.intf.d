examples/warmup_mass.mli:
