(* Batched dynamic programming: Levenshtein edit distance.

   Each batch member compares a different pair of words (padded to a fixed
   buffer, with per-member true lengths), so the nested DP loops take
   different trip counts per member — and the autobatcher runs them all in
   lockstep. The DP rows live in fixed-size vectors manipulated with the
   [index]/[update] primitives.

     dune exec examples/edit_distance.exe *)

let max_len = 12

let program =
  let open Lang in
  let open Lang.Infix in
  Lang.program ~main:"edit_distance"
    [
      func "edit_distance" ~params:[ "s"; "t"; "m"; "n"; "row" ]
        [
          (* prev[j] = j for j = 0..n (row arrives zeroed). *)
          assign "prev" (var "row");
          assign "j" (flt 0.);
          while_
            (var "j" <= var "n")
            [
              assign "prev" (prim "update" [ var "prev"; var "j"; var "j" ]);
              assign "j" (var "j" + flt 1.);
            ];
          assign "i" (flt 1.);
          while_
            (var "i" <= var "m")
            [
              assign "cur" (prim "update" [ var "row"; flt 0.; var "i" ]);
              assign "j" (flt 1.);
              while_
                (var "j" <= var "n")
                [
                  assign "sc" (prim "index" [ var "s"; var "i" - flt 1. ]);
                  assign "tc" (prim "index" [ var "t"; var "j" - flt 1. ]);
                  assign "cost"
                    (prim "select" [ prim "eq" [ var "sc"; var "tc" ]; flt 0.; flt 1. ]);
                  assign "del" (prim "index" [ var "prev"; var "j" ] + flt 1.);
                  assign "ins" (prim "index" [ var "cur"; var "j" - flt 1. ] + flt 1.);
                  assign "sub" (prim "index" [ var "prev"; var "j" - flt 1. ] + var "cost");
                  assign "best"
                    (prim "min" [ prim "min" [ var "del"; var "ins" ]; var "sub" ]);
                  assign "cur" (prim "update" [ var "cur"; var "j"; var "best" ]);
                  assign "j" (var "j" + flt 1.);
                ];
              assign "prev" (var "cur");
              assign "i" (var "i" + flt 1.);
            ];
          return_ [ prim "index" [ var "prev"; var "n" ] ];
        ];
    ]

(* Reference implementation for validation. *)
let levenshtein a b =
  let m = String.length a and n = String.length b in
  let prev = Array.init (n + 1) (fun j -> j) in
  let cur = Array.make (n + 1) 0 in
  for i = 1 to m do
    cur.(0) <- i;
    for j = 1 to n do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (prev.(j) + 1) (cur.(j - 1) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (n + 1)
  done;
  prev.(n)

let encode word =
  Tensor.init [| max_len |] (fun idx ->
      if idx.(0) < String.length word then float_of_int (Char.code word.[idx.(0)])
      else 0.)

let () =
  let pairs =
    [
      ("kitten", "sitting");
      ("flaw", "lawn");
      ("saturday", "sunday");
      ("batch", "batch");
      ("gumbo", "gambol");
      ("", "abcde");
    ]
  in
  let z = List.length pairs in
  let compiled =
    Autobatch.compile
      ~input_shapes:
        [ [| max_len |]; [| max_len |]; Shape.scalar; Shape.scalar; [| max_len + 1 |] ]
      program
  in
  let batch =
    [
      Tensor.concat_rows (List.map (fun (a, _) -> Tensor.reshape (encode a) [| 1; max_len |]) pairs);
      Tensor.concat_rows (List.map (fun (_, b) -> Tensor.reshape (encode b) [| 1; max_len |]) pairs);
      Tensor.of_list (List.map (fun (a, _) -> float_of_int (String.length a)) pairs);
      Tensor.of_list (List.map (fun (_, b) -> float_of_int (String.length b)) pairs);
      Tensor.zeros [| z; max_len + 1 |];
    ]
  in
  let out = List.hd (Autobatch.run_pc compiled ~batch) in
  Format.printf "%-10s %-10s  batched  reference@." "s" "t";
  List.iteri
    (fun i (a, b) ->
      Format.printf "%-10s %-10s  %5.0f    %5d@." a b (Tensor.data out).(i)
        (levenshtein a b))
    pairs;
  let local = List.hd (Autobatch.run_local compiled ~batch) in
  Format.printf "local VM agrees bitwise: %b@." (Tensor.equal out local)
