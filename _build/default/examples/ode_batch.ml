(* Batched adaptive ODE integration.

   The paper's introduction lists ordinary-differential-equation solvers
   among the classical algorithms that data-dependent control flow keeps
   off accelerators. This example integrates the Van der Pol oscillator

     y0' = y1,   y1' = mu (1 - y0^2) y1 - y0

   with an adaptive step-doubling Heun scheme written in the DSL: each
   batch member has its own stiffness mu, so the members' step sizes and
   loop counts diverge wildly — and the autobatcher runs them in lockstep
   anyway.

     dune exec examples/ode_batch.exe *)

let program =
  let open Lang in
  let open Lang.Infix in
  Lang.program ~main:"integrate"
    [
      (* One Heun (trapezoidal predictor-corrector) step of size h. *)
      func "heun" ~params:[ "y0"; "y1"; "mu"; "h" ]
        [
          assign "f0" (var "y1");
          assign "f1"
            ((var "mu" * (flt 1. - (var "y0" * var "y0")) * var "y1") - var "y0");
          assign "py0" (var "y0" + (var "h" * var "f0"));
          assign "py1" (var "y1" + (var "h" * var "f1"));
          assign "g0" (var "py1");
          assign "g1"
            ((var "mu" * (flt 1. - (var "py0" * var "py0")) * var "py1") - var "py0");
          assign "ny0" (var "y0" + (var "h" * flt 0.5 * (var "f0" + var "g0")));
          assign "ny1" (var "y1" + (var "h" * flt 0.5 * (var "f1" + var "g1")));
          return_ [ var "ny0"; var "ny1" ];
        ];
      (* Adaptive driver: compare one full step against two half steps,
         accept when they agree to tolerance, adapt the step size. *)
      func "integrate" ~params:[ "mu"; "t_end"; "tol" ]
        [
          assign "y0" (flt 2.);
          assign "y1" (flt 0.);
          assign "t" (flt 0.);
          assign "h" (flt 0.1);
          assign "steps" (flt 0.);
          while_
            (var "t" < var "t_end")
            [
              (* Do not step past the end. *)
              assign "h" (prim "min" [ var "h"; var "t_end" - var "t" ]);
              call [ "a0"; "a1" ] "heun"
                [ var "y0"; var "y1"; var "mu"; var "h" ];
              assign "half" (var "h" * flt 0.5);
              call [ "m0"; "m1" ] "heun"
                [ var "y0"; var "y1"; var "mu"; var "half" ];
              call [ "b0"; "b1" ] "heun"
                [ var "m0"; var "m1"; var "mu"; var "half" ];
              assign "err"
                (prim "max"
                   [ prim "abs" [ var "a0" - var "b0" ];
                     prim "abs" [ var "a1" - var "b1" ] ]);
              if_
                (var "err" <= var "tol")
                [
                  (* Accept the more accurate two-half-step result. *)
                  assign "y0" (var "b0");
                  assign "y1" (var "b1");
                  assign "t" (var "t" + var "h");
                  assign "steps" (var "steps" + flt 1.);
                  (* Grow cautiously when the error is far below tol. *)
                  if_
                    (var "err" < var "tol" * flt 0.1)
                    [ assign "h" (var "h" * flt 2.) ]
                    [];
                ]
                [ assign "h" (var "h" * flt 0.5) ];
            ];
          return_ [ var "y0"; var "y1"; var "steps" ];
        ];
    ]

(* Reference fixed-step integrator in plain OCaml for validation. *)
let reference_vdp ~mu ~t_end ~h =
  let y0 = ref 2. and y1 = ref 0. and t = ref 0. in
  while !t < t_end -. 1e-12 do
    let h = Float.min h (t_end -. !t) in
    let f0 = !y1 and f1 = (mu *. (1. -. (!y0 *. !y0)) *. !y1) -. !y0 in
    let py0 = !y0 +. (h *. f0) and py1 = !y1 +. (h *. f1) in
    let g0 = py1 and g1 = (mu *. (1. -. (py0 *. py0)) *. py1) -. py0 in
    y0 := !y0 +. (h *. 0.5 *. (f0 +. g0));
    y1 := !y1 +. (h *. 0.5 *. (f1 +. g1));
    t := !t +. h
  done;
  (!y0, !y1)

let () =
  let compiled =
    Autobatch.compile
      ~input_shapes:[ Shape.scalar; Shape.scalar; Shape.scalar ]
      program
  in
  let mus = [| 0.25; 1.; 4.; 10.; 25. |] in
  let z = Array.length mus in
  let t_end = 8. in
  let batch =
    [ Tensor.of_array [| z |] mus; Tensor.full [| z |] t_end; Tensor.full [| z |] 1e-6 ]
  in
  let instrument = Instrument.create () in
  let config = { Pc_vm.default_config with instrument = Some instrument } in
  let out = Autobatch.run_pc ~config compiled ~batch in
  let y0 = List.nth out 0 and y1 = List.nth out 1 and steps = List.nth out 2 in
  Format.printf "mu:      %a@." Tensor.pp (Tensor.of_array [| z |] mus);
  Format.printf "y0(T):   %a@." Tensor.pp y0;
  Format.printf "y1(T):   %a@." Tensor.pp y1;
  Format.printf "steps:   %a  (stiffer members subdivide much more)@." Tensor.pp steps;
  Format.printf "overall batch utilization: %.3f@."
    (Instrument.overall_utilization instrument);
  (* Validate against a fine fixed-step reference. *)
  Array.iteri
    (fun i mu ->
      let r0, _ = reference_vdp ~mu ~t_end ~h:1e-4 in
      let got = (Tensor.data y0).(i) in
      Format.printf "mu=%-5g adaptive y0=%9.5f  reference y0=%9.5f  |diff|=%.2e@."
        mu got r0
        (Float.abs (got -. r0)))
    mus;
  (* Both VMs agree bitwise, as always. *)
  let local = Autobatch.run_local compiled ~batch in
  Format.printf "local VM agrees bitwise: %b@."
    (List.for_all2 Tensor.equal out local)
