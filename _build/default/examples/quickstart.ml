(* Quickstart: write a recursive program once, batch it automatically.

   This is the paper's Figure 1/3 example: recursive Fibonacci, run on a
   batch of different inputs in lockstep by both autobatching strategies.

     dune exec examples/quickstart.exe *)

let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let () =
  (* Compile once: validation, lowering to the Figure-2 CFG, then to the
     Figure-4 stack program. Passing input element shapes enables static
     shape inference, as an XLA-like backend would require. *)
  let compiled = Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program in

  (* A batch of independent inputs: the paper's snapshot uses 3, 7, 4, 5. *)
  let inputs = Tensor.of_list [ 3.; 7.; 4.; 5.; 10.; 0.; 20. ] in

  (* Strategy 1: local static autobatching (Algorithm 1) — recursion runs
     on the host stack, masked lanes wait at divergent branches. *)
  let local = Autobatch.run_local compiled ~batch:[ inputs ] in

  (* Strategy 2: program-counter autobatching (Algorithm 2) — recursion is
     materialized into per-variable stacks; no host recursion at all. *)
  let pc = Autobatch.run_pc compiled ~batch:[ inputs ] in

  Format.printf "inputs:      %a@." Tensor.pp inputs;
  Format.printf "local VM:    %a@." Tensor.pp (List.hd local);
  Format.printf "pc VM:       %a@." Tensor.pp (List.hd pc);

  (* The compiled stack program shows what the batching compiler did:
     which variables got stacks, which only masked tops, which vanished. *)
  let temps, masked, stacked = Stack_ir.stats compiled.Autobatch.stack in
  Format.printf
    "stack program: %d blocks; variables: %d temporaries, %d masked, %d stacked@."
    (Array.length compiled.Autobatch.stack.Stack_ir.blocks)
    temps masked stacked;

  (* Everything agrees with running each example alone. *)
  let reference =
    List.init (Tensor.numel inputs) (fun b ->
        Tensor.item
          (List.hd
             (Autobatch.run_single compiled ~member:b
                ~args:[ Tensor.scalar (Tensor.data inputs).(b) ])))
  in
  Format.printf "reference:   %a@." Tensor.pp (Tensor.of_list reference)
