(* Adaptive recursive quadrature, autobatched.

   The paper's introduction argues that data-dependent control flow keeps
   classical algorithms (tree searches, ODE solvers, optimizers) off
   accelerators. This example batches one such algorithm: adaptive
   Simpson integration of f(x) = exp(-k x²), where every batch member
   integrates a differently-peaked function — so each takes a different
   recursion tree — yet they all run in lockstep under both autobatching
   strategies.

     dune exec examples/tree_search.exe *)

let program =
  let open Lang in
  let open Lang.Infix in
  let fx x k = prim "exp" [ ~-(var k * (var x * var x)) ] in
  Lang.program ~main:"integrate"
    [
      (* Adaptive Simpson: subdivide until the two-panel estimate agrees
         with the one-panel estimate, then apply Richardson correction. *)
      func "adapt" ~params:[ "a"; "b"; "fa"; "fb"; "fm"; "tol"; "k" ]
        [
          assign "m" ((var "a" + var "b") / flt 2.);
          assign "lm" ((var "a" + var "m") / flt 2.);
          assign "rm" ((var "m" + var "b") / flt 2.);
          assign "flm" (fx "lm" "k");
          assign "frm" (fx "rm" "k");
          assign "h" (var "b" - var "a");
          assign "s1"
            ((var "fa" + (flt 4. * var "fm") + var "fb") * var "h" / flt 6.);
          assign "s2"
            ((var "fa" + (flt 4. * var "flm") + (flt 2. * var "fm")
             + (flt 4. * var "frm") + var "fb")
            * var "h" / flt 12.);
          assign "err" (prim "abs" [ var "s2" - var "s1" ]);
          if_
            (var "err" < flt 15. * var "tol")
            [ return_ [ var "s2" + ((var "s2" - var "s1") / flt 15.) ] ]
            [
              call [ "left" ] "adapt"
                [ var "a"; var "m"; var "fa"; var "fm"; var "flm";
                  var "tol" / flt 2.; var "k" ];
              call [ "right" ] "adapt"
                [ var "m"; var "b"; var "fm"; var "fb"; var "frm";
                  var "tol" / flt 2.; var "k" ];
              return_ [ var "left" + var "right" ];
            ];
        ];
      func "integrate" ~params:[ "a"; "b"; "tol"; "k" ]
        [
          assign "fa" (fx "a" "k");
          assign "fb" (fx "b" "k");
          assign "m0" ((var "a" + var "b") / flt 2.);
          assign "fm" (fx "m0" "k");
          call [ "s" ] "adapt"
            [ var "a"; var "b"; var "fa"; var "fb"; var "fm"; var "tol"; var "k" ];
          return_ [ var "s" ];
        ];
    ]

let () =
  let compiled =
    Autobatch.compile
      ~input_shapes:[ Shape.scalar; Shape.scalar; Shape.scalar; Shape.scalar ]
      program
  in
  (* Batch: ∫₋₃³ exp(-k x²) dx for a spread of k — sharply peaked members
     recurse much deeper than smooth ones. *)
  let ks = [| 0.5; 1.; 4.; 16.; 64.; 256. |] in
  let z = Array.length ks in
  let batch =
    [
      Tensor.full [| z |] (-3.);
      Tensor.full [| z |] 3.;
      Tensor.full [| z |] 1e-8;
      Tensor.of_array [| z |] ks;
    ]
  in
  let instrument = Instrument.create () in
  let config = { Pc_vm.default_config with instrument = Some instrument } in
  let result = List.hd (Autobatch.run_pc ~config compiled ~batch) in
  Format.printf "k:          %a@." Tensor.pp (Tensor.of_array [| z |] ks);
  Format.printf "integral:   %a@." Tensor.pp result;
  (* Exact value ≈ sqrt(pi/k) for these bounds (tails are negligible for
     large k; for k = 0.5 the truncation error is still < 1e-3). *)
  let exact = Tensor.init [| z |] (fun i -> Stdlib.sqrt (Float.pi /. ks.(i.(0)))) in
  Format.printf "sqrt(pi/k): %a@." Tensor.pp exact;
  Format.printf "max recursion depth across the batch: %d@."
    (Instrument.max_depth instrument);
  (* The local VM agrees exactly. *)
  let local = List.hd (Autobatch.run_local compiled ~batch) in
  Format.printf "local VM agrees bitwise: %b@." (Tensor.equal result local)
