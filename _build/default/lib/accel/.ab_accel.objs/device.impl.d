lib/accel/device.ml: Format
