lib/accel/device.mli: Format
