lib/accel/engine.ml: Device Format Hashtbl List Option
