lib/accel/engine.mli: Device Format
