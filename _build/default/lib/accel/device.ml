type t = {
  name : string;
  kernel_launch_overhead : float;
  fused_launch_overhead : float;
  host_op_overhead : float;
  flops_per_sec : float;
  bytes_per_sec : float;
  fused_flops_multiplier : float;
}

(* Constants are calibrated so that the experiment harness reproduces the
   qualitative relationships of the paper's Figure 5 (see EXPERIMENTS.md):
   linear GPU scaling over three decades of batch size before arithmetic
   saturation, CPU overhead amortization crossing the Stan anchor, and
   XLA-style fusion shifting the crossover down by more than an order of
   magnitude. *)

let gpu =
  {
    name = "gpu";
    kernel_launch_overhead = 8e-6;
    fused_launch_overhead = 120e-6;
    host_op_overhead = 25e-6;
    flops_per_sec = 2e12;
    bytes_per_sec = 300e9;
    fused_flops_multiplier = 1.15;
  }

let cpu =
  {
    name = "cpu";
    kernel_launch_overhead = 3e-6;
    fused_launch_overhead = 15e-6;
    host_op_overhead = 25e-6;
    flops_per_sec = 2e10;
    bytes_per_sec = 40e9;
    fused_flops_multiplier = 1.5;
  }

(* Stan: hand-optimized native code with zero framework overhead, but a
   single-threaded process — one core's arithmetic throughput, no
   cross-chain fusion. The batched strategies get the whole machine
   ([cpu] above), which is exactly the asymmetry that lets them overtake
   Stan once dispatch overhead is amortized (paper §4.1). *)
let stan_cpu =
  {
    name = "stan-cpu";
    kernel_launch_overhead = 0.;
    fused_launch_overhead = 0.;
    host_op_overhead = 0.;
    flops_per_sec = 2.5e9;
    bytes_per_sec = 20e9;
    fused_flops_multiplier = 1.;
  }

let pp ppf d =
  Format.fprintf ppf
    "@[<hov 2>device %s:@ launch %gs,@ fused %gs,@ host %gs,@ %g flop/s,@ %g B/s@]"
    d.name d.kernel_launch_overhead d.fused_launch_overhead d.host_op_overhead
    d.flops_per_sec d.bytes_per_sec
