(** Simulated accelerator devices.

    The paper's evaluation hardware (Tesla P100 GPU, an 88-core CPU host
    running TensorFlow, and Stan's single-core C++) is modelled by an
    analytic cost description per device. All kernels in this repository
    *really execute* on the host CPU; the device model only supplies the
    simulated clock that the throughput figures are computed against, so
    the reproduced curves have the paper's shape (dispatch overhead
    amortization, linear scaling, saturation) for transparent, documented
    reasons.

    Time for one kernel of [w] flops dispatched eagerly:
      [kernel_launch_overhead + w / flops_per_sec]
    Time for a fused (XLA-style) block of total [w] flops:
      [fused_launch_overhead + w / flops_per_sec]
    Host (Python-analogue) work is charged at [host_op_overhead] per
    dispatched operation / control action.

    Throughput of a batched sampler is then [z / (o + z * w * c)] per step:
    linear in the batch size [z] while dispatch overhead [o] dominates, and
    saturating at the device's arithmetic peak — exactly the behaviour in
    the paper's Figure 5. *)

type t = {
  name : string;
  kernel_launch_overhead : float;  (** seconds per eagerly dispatched kernel *)
  fused_launch_overhead : float;   (** seconds per fused-block launch *)
  host_op_overhead : float;        (** seconds of host-language dispatch per op *)
  flops_per_sec : float;           (** sustained arithmetic throughput *)
  bytes_per_sec : float;           (** memory bandwidth for gather/scatter traffic *)
  fused_flops_multiplier : float;
      (** effective-throughput gain of fused blocks over eager kernel
          chains: fusion keeps intermediates in registers/caches instead
          of round-tripping memory per op. This models the paper's
          hypothesis (§4.1) for why Eager-control + XLA-blocks eventually
          beats even hand-optimized native code on batched evaluation. *)
}

val gpu : t
(** Tesla-P100-like: expensive launches, very high parallel throughput. *)

val cpu : t
(** 88-core-host-like: cheaper launches, moderate vectorized throughput. *)

val stan_cpu : t
(** Single-core optimized native code: no framework overhead at all, scalar
    throughput. Used for the Stan baseline series. *)

val pp : Format.formatter -> t -> unit
