type node = {
  id : int;
  value : Tensor.t;
  mutable adjoint : Tensor.t option;
  (* Propagate this node's adjoint to its parents. *)
  backward : (Tensor.t -> unit) option;
}

type tape = { mutable nodes : node list; mutable next_id : int }
type var = { tape : tape; node : node }

let new_tape () = { nodes = []; next_id = 0 }

let mk_node tape value backward =
  let node = { id = tape.next_id; value; adjoint = None; backward } in
  tape.next_id <- tape.next_id + 1;
  tape.nodes <- node :: tape.nodes;
  node

let input tape value = { tape; node = mk_node tape value None }
let const = input
let scalar tape v = input tape (Tensor.scalar v)
let value v = v.node.value

let accumulate node g =
  match node.adjoint with
  | None -> node.adjoint <- Some g
  | Some a -> node.adjoint <- Some (Tensor.add a g)

(* Sum an adjoint over broadcast axes so it matches the primal shape. *)
let reduce_to_shape g target =
  if Shape.equal (Tensor.shape g) target then g
  else begin
    (* Remove extra leading axes. *)
    let g = ref g in
    while Tensor.rank !g > Shape.rank target do
      g := Tensor.sum ~axis:0 !g
    done;
    (* Sum axes that were stretched from size 1 (keeping rank). *)
    Array.iteri
      (fun i d ->
        if d = 1 && (Tensor.shape !g).(i) <> 1 then begin
          let keep = Array.copy (Tensor.shape !g) in
          keep.(i) <- 1;
          g := Tensor.reshape (Tensor.sum ~axis:i !g) keep
        end)
      target;
    if not (Shape.equal (Tensor.shape !g) target) then
      invalid_arg
        (Printf.sprintf "Ad: cannot reduce adjoint %s to %s"
           (Shape.to_string (Tensor.shape !g))
           (Shape.to_string target));
    !g
  end

let lift1 f df a =
  let y = f a.node.value in
  let backward g = accumulate a.node (Tensor.mul g (df a.node.value y)) in
  { tape = a.tape; node = mk_node a.tape y (Some backward) }

let lift2 f dfa dfb a b =
  if a.tape != b.tape then invalid_arg "Ad: operands from different tapes";
  let y = f a.node.value b.node.value in
  let backward g =
    accumulate a.node
      (reduce_to_shape (dfa g a.node.value b.node.value y) (Tensor.shape a.node.value));
    accumulate b.node
      (reduce_to_shape (dfb g a.node.value b.node.value y) (Tensor.shape b.node.value))
  in
  { tape = a.tape; node = mk_node a.tape y (Some backward) }

let add = lift2 Tensor.add (fun g _ _ _ -> g) (fun g _ _ _ -> g)
let sub = lift2 Tensor.sub (fun g _ _ _ -> g) (fun g _ _ _ -> Tensor.neg g)

let mul =
  lift2 Tensor.mul (fun g _ b _ -> Tensor.mul g b) (fun g a _ _ -> Tensor.mul g a)

let div =
  lift2 Tensor.div
    (fun g _ b _ -> Tensor.div g b)
    (fun g a b _ -> Tensor.neg (Tensor.div (Tensor.mul g a) (Tensor.mul b b)))

let neg = lift1 Tensor.neg (fun _ _ -> Tensor.scalar (-1.))
let exp = lift1 Tensor.exp (fun _ y -> y)
let log = lift1 Tensor.log (fun x _ -> Tensor.map (fun v -> 1. /. v) x)

let sqrt =
  lift1 Tensor.sqrt (fun _ y -> Tensor.map (fun v -> 0.5 /. v) y)

let square = lift1 Tensor.square (fun x _ -> Tensor.mul_scalar x 2.)

let sigmoid =
  lift1 Tensor.sigmoid (fun _ y -> Tensor.mul y (Tensor.map (fun v -> 1. -. v) y))

let log_sigmoid =
  (* d/dx log σ(x) = σ(-x) = 1 - σ(x). *)
  lift1 Tensor.log_sigmoid (fun x _ ->
      Tensor.map (fun v -> 1. -. Tensor.sigmoid_f v) x)

let tanh = lift1 Tensor.tanh (fun _ y -> Tensor.map (fun v -> 1. -. (v *. v)) y)

let sum a =
  let y = Tensor.sum a.node.value in
  let backward g =
    accumulate a.node
      (Tensor.mul (Tensor.ones (Tensor.shape a.node.value)) g)
  in
  { tape = a.tape; node = mk_node a.tape y (Some backward) }

let dot a b =
  if a.tape != b.tape then invalid_arg "Ad: operands from different tapes";
  let y = Tensor.dot a.node.value b.node.value in
  let backward g =
    let gv = Tensor.item g in
    accumulate a.node (Tensor.mul_scalar b.node.value gv);
    accumulate b.node (Tensor.mul_scalar a.node.value gv)
  in
  { tape = a.tape; node = mk_node a.tape y (Some backward) }

let matvec a x =
  if a.tape != x.tape then invalid_arg "Ad: operands from different tapes";
  let y = Tensor.matvec a.node.value x.node.value in
  let backward g =
    (* d/dA (A x) ⊙ g = g xᵀ ;  d/dx = Aᵀ g *)
    accumulate a.node (Tensor.outer g x.node.value);
    accumulate x.node (Tensor.matvec (Tensor.transpose a.node.value) g)
  in
  { tape = a.tape; node = mk_node a.tape y (Some backward) }

let matmul a b =
  if a.tape != b.tape then invalid_arg "Ad: operands from different tapes";
  let y = Tensor.matmul a.node.value b.node.value in
  let backward g =
    accumulate a.node (Tensor.matmul g (Tensor.transpose b.node.value));
    accumulate b.node (Tensor.matmul (Tensor.transpose a.node.value) g)
  in
  { tape = a.tape; node = mk_node a.tape y (Some backward) }

let mul_scalar a s =
  lift1 (fun x -> Tensor.mul_scalar x s) (fun _ _ -> Tensor.scalar s) a

let add_scalar a s =
  lift1 (fun x -> Tensor.add_scalar x s) (fun _ _ -> Tensor.scalar 1.) a

let grad ~output ~inputs =
  if Tensor.numel output.node.value <> 1 then
    invalid_arg "Ad.grad: output must be a one-element tensor";
  let tape = output.tape in
  List.iter
    (fun v ->
      if v.tape != tape then invalid_arg "Ad.grad: input from a different tape")
    inputs;
  output.node.adjoint <- Some (Tensor.ones (Tensor.shape output.node.value));
  (* Nodes were consed newest-first: that is already reverse topological
     order (children before parents), which the backward sweep needs. *)
  List.iter
    (fun node ->
      match (node.adjoint, node.backward) with
      | Some g, Some backward -> backward g
      | (None | Some _), _ -> ())
    tape.nodes;
  List.map
    (fun v ->
      match v.node.adjoint with
      | Some g -> g
      | None -> Tensor.zeros (Tensor.shape v.node.value))
    inputs

let grad1 f x =
  let tape = new_tape () in
  let v = input tape x in
  let y = f tape v in
  match grad ~output:y ~inputs:[ v ] with
  | [ g ] -> g
  | _ -> assert false

let finite_diff f ?(eps = 1e-6) x =
  let n = Tensor.numel x in
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let bump h =
      let x' = Tensor.copy x in
      (Tensor.data x').(i) <- (Tensor.data x').(i) +. h;
      f x'
    in
    out.(i) <- (bump eps -. bump (-.eps)) /. (2. *. eps)
  done;
  Tensor.create (Tensor.shape x) out
