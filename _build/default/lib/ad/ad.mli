(** Reverse-mode automatic differentiation over {!Tensor}.

    A classic tape: forward evaluation records each operation; a backward
    sweep from a scalar output accumulates adjoints. Used to derive and
    cross-check the evaluation models' hand-written gradients and available
    to users who want gradients of their own target densities.

    Binary operations broadcast like {!Tensor.map2}; the backward pass sums
    adjoints over the broadcast axes so gradients always match the primal
    input shapes. *)

type tape
type var

val new_tape : unit -> tape

val input : tape -> Tensor.t -> var
(** A differentiable input (leaf). *)

val const : tape -> Tensor.t -> var
(** A non-differentiated constant. *)

val scalar : tape -> float -> var
val value : var -> Tensor.t

(** {1 Operations} *)

val add : var -> var -> var
val sub : var -> var -> var
val mul : var -> var -> var
val div : var -> var -> var
val neg : var -> var
val exp : var -> var
val log : var -> var
val sqrt : var -> var
val square : var -> var
val sigmoid : var -> var
val log_sigmoid : var -> var
val tanh : var -> var
val sum : var -> var
(** Full reduction to a scalar. *)

val dot : var -> var -> var
(** Rank-1 inner product. *)

val matvec : var -> var -> var
(** [matvec a x] with [a : [n;k]], [x : [k]]. *)

val matmul : var -> var -> var
val mul_scalar : var -> float -> var
val add_scalar : var -> float -> var

(** {1 Differentiation} *)

val grad : output:var -> inputs:var list -> Tensor.t list
(** Backward sweep from a one-element [output]; returns [d output / d x]
    for each input, shaped like the input. Raises [Invalid_argument] if
    [output] is not one element or an input is a constant of another
    tape. *)

val grad1 : (tape -> var -> var) -> Tensor.t -> Tensor.t
(** [grad1 f x]: gradient of the scalar function [fun x -> f tape x] at
    [x] — convenience wrapper building its own tape. *)

val finite_diff : (Tensor.t -> float) -> ?eps:float -> Tensor.t -> Tensor.t
(** Central finite differences, for testing gradients against. *)
