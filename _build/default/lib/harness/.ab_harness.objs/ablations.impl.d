lib/harness/ablations.ml: Autobatch Device Engine Gaussian_model Instrument List Local_vm Lower_stack Nuts Nuts_dsl Option Pc_vm Printf Sched Stack_ir Table Tensor
