lib/harness/ablations.mli:
