lib/harness/batched_sampler.ml: Array Autobatch Diagnostics Format Instrument List Model Nuts Nuts_dsl Option Pc_vm Tensor Warmup
