lib/harness/batched_sampler.mli: Format Model Nuts Tensor
