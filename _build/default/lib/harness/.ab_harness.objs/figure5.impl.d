lib/harness/figure5.ml: Autobatch Buffer Device Engine Float Hmc Instrument List Local_vm Logistic_model Nuts Nuts_dsl Option Pc_vm Printf Splitmix Table Tensor
