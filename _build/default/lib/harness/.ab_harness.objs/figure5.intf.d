lib/harness/figure5.mli:
