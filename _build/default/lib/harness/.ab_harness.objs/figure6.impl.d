lib/harness/figure6.ml: Array Autobatch Buffer Diagnostics Float Gaussian_model Hmc Instrument List Local_vm Model Nuts Nuts_dsl Option Pc_vm Printf Splitmix Table Tensor
