lib/harness/table.ml: Array Float Format List Printf String
