(* Fixed-width text tables for the experiment harness output. *)

let print ~header ~rows ppf =
  let all = header :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let print_row row =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i = 0 then Format.fprintf ppf "%s%s" cell pad
        else Format.fprintf ppf "  %s%s" pad cell)
      row;
    Format.fprintf ppf "@."
  in
  print_row header;
  Format.fprintf ppf "%s@."
    (String.concat "" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths)));
  List.iter print_row rows

let print_stdout ~header ~rows = print ~header ~rows Format.std_formatter

let si v =
  if Float.is_nan v then "nan"
  else if v = 0. then "0"
  else begin
    let a = Float.abs v in
    if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
    else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
    else if a >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
    else if a >= 1. then Printf.sprintf "%.2f" v
    else Printf.sprintf "%.2e" v
  end
