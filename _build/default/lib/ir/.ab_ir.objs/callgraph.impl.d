lib/ir/callgraph.ml: Array Cfg Ir_util List Option Smap Sset
