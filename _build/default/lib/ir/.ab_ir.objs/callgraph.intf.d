lib/ir/callgraph.mli: Cfg Ir_util
