lib/ir/cfg.ml: Array Format List Printf String Tensor
