lib/ir/cfg.mli: Format Tensor
