lib/ir/dot.ml: Array Buffer Cfg Format List Printf Stack_ir String
