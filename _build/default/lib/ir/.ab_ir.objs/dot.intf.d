lib/ir/dot.mli: Cfg Stack_ir
