lib/ir/interp.ml: Array Hashtbl Lang List Prim Printf Shape Tensor
