lib/ir/interp.mli: Lang Prim Tensor
