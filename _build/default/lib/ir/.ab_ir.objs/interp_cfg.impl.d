lib/ir/interp_cfg.ml: Array Cfg Hashtbl List Prim Printf Tensor
