lib/ir/interp_cfg.mli: Cfg Prim Tensor
