lib/ir/ir_util.ml: Map Set String
