lib/ir/lang.ml: Array Format List String
