lib/ir/lang.mli: Format
