lib/ir/liveness.ml: Array Cfg Ir_util List Sset
