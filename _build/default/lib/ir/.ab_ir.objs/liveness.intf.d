lib/ir/liveness.mli: Cfg Ir_util
