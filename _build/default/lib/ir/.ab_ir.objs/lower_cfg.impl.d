lib/ir/lower_cfg.ml: Array Cfg Hashtbl Lang List Option Printf Tensor
