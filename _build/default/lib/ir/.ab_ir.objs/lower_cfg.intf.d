lib/ir/lower_cfg.mli: Cfg Lang
