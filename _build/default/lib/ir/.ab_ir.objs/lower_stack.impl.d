lib/ir/lower_stack.ml: Array Callgraph Cfg Hashtbl Ir_util List Liveness Printf Smap Sset Stack_ir Var_class
