lib/ir/lower_stack.mli: Cfg Ir_util Shape Stack_ir
