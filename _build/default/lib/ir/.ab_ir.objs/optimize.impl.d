lib/ir/optimize.ml: Array Cfg Hashtbl Ir_util List Liveness Option Prim Sset Tensor
