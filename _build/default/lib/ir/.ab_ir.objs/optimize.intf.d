lib/ir/optimize.mli: Cfg Prim
