lib/ir/parser.ml: Array Buffer Lang List Printf String
