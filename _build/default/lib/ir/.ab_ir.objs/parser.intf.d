lib/ir/parser.mli: Lang
