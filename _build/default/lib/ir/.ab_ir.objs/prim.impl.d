lib/ir/prim.ml: Array Counter_rng Float Hashtbl List Printf Shape Stdlib Tensor
