lib/ir/prim.mli: Shape Tensor
