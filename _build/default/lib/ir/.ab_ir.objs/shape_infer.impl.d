lib/ir/shape_infer.ml: Array Cfg Ir_util List Option Prim Printf Shape Smap Tensor
