lib/ir/shape_infer.mli: Cfg Ir_util Prim Shape
