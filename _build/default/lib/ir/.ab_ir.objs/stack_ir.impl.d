lib/ir/stack_ir.ml: Array Format Ir_util List Option Shape Smap String Tensor Var_class
