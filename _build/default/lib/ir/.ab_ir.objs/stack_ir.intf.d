lib/ir/stack_ir.mli: Format Ir_util Shape Tensor Var_class
