lib/ir/validate.ml: Array Cfg Lang List Lower_cfg Prim Printf Set String
