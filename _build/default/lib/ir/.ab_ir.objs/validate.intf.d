lib/ir/validate.mli: Cfg Lang Prim
