lib/ir/var_class.ml: Format
