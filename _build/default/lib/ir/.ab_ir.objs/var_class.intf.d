lib/ir/var_class.mli: Format
