open Ir_util

type t = { direct : Sset.t Smap.t; reach : Sset.t Smap.t }

let direct_callees (f : Cfg.func) =
  Array.fold_left
    (fun acc (b : Cfg.block) ->
      List.fold_left
        (fun acc op ->
          match op with
          | Cfg.Call_op { func; _ } -> Sset.add func acc
          | Cfg.Prim_op _ | Cfg.Const_op _ | Cfg.Mov _ -> acc)
        acc b.Cfg.ops)
    Sset.empty f.Cfg.blocks

let build (p : Cfg.program) =
  let direct =
    List.fold_left
      (fun acc (name, f) -> Smap.add name (direct_callees f) acc)
      Smap.empty p.Cfg.funcs
  in
  let lookup name = Option.value ~default:Sset.empty (Smap.find_opt name direct) in
  let reach_one start =
    let seen = ref (Sset.singleton start) in
    let rec visit f =
      Sset.iter
        (fun g ->
          if not (Sset.mem g !seen) then begin
            seen := Sset.add g !seen;
            visit g
          end)
        (lookup f)
    in
    visit start;
    !seen
  in
  let reach =
    List.fold_left
      (fun acc (name, _) -> Smap.add name (reach_one name) acc)
      Smap.empty p.Cfg.funcs
  in
  { direct; reach }

let callees t name = Option.value ~default:Sset.empty (Smap.find_opt name t.direct)
let reachable t name = Option.value ~default:(Sset.singleton name) (Smap.find_opt name t.reach)

let may_clobber_caller t ~caller ~callee = Sset.mem caller (reachable t callee)

let is_recursive_program t ~entry =
  Sset.exists
    (fun f -> Sset.exists (fun g -> may_clobber_caller t ~caller:f ~callee:g) (callees t f))
    (reachable t entry)
