(** Static call graph of a CFG program.

    Drives optimization O3: at a call site in [caller] targeting [callee],
    the caller's live variables need stack saves only when [callee] can
    transitively call back into [caller] (otherwise the callee cannot
    clobber the caller's variables, since variables are per-function). *)

type t

val build : Cfg.program -> t

val callees : t -> string -> Ir_util.Sset.t
(** Direct callees of a function. *)

val reachable : t -> string -> Ir_util.Sset.t
(** Functions transitively callable from [f], including [f] itself. *)

val may_clobber_caller : t -> caller:string -> callee:string -> bool
(** Whether a call from [caller] to [callee] can re-enter [caller]
    (i.e. [caller] is reachable from [callee]). *)

val is_recursive_program : t -> entry:string -> bool
(** Whether any call site reachable from [entry] may clobber its caller. *)
