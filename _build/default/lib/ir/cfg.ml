type op =
  | Prim_op of { dst : string; prim : string; args : string list }
  | Const_op of { dst : string; value : Tensor.t }
  | Mov of { dst : string; src : string }
  | Call_op of { dsts : string list; func : string; args : string list }

type terminator =
  | Jump of int
  | Branch of { cond : string; if_true : int; if_false : int }
  | Return

type block = { ops : op list; term : terminator }

type func = {
  name : string;
  params : string list;
  result_vars : string list;
  blocks : block array;
}

type program = { funcs : (string * func) list; entry : string }

let find_func p name = List.assoc_opt name p.funcs

let find_func_exn p name =
  match find_func p name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Cfg.find_func_exn: unknown function %S" name)

let entry_func p = find_func_exn p p.entry

let exit_index f = Array.length f.blocks

let op_defs = function
  | Prim_op { dst; _ } | Const_op { dst; _ } | Mov { dst; _ } -> [ dst ]
  | Call_op { dsts; _ } -> dsts

let op_uses = function
  | Prim_op { args; _ } -> args
  | Const_op _ -> []
  | Mov { src; _ } -> [ src ]
  | Call_op { args; _ } -> args

let term_uses f = function
  | Jump _ -> []
  | Branch { cond; _ } -> [ cond ]
  | Return -> f.result_vars

let successors f i =
  match f.blocks.(i).term with
  | Jump j -> [ j ]
  | Branch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Return -> []

let all_vars f =
  let acc = ref f.params in
  Array.iter
    (fun b ->
      List.iter
        (fun op -> acc := op_defs op @ op_uses op @ !acc)
        b.ops;
      acc := term_uses f b.term @ !acc)
    f.blocks;
  List.sort_uniq compare !acc

let n_ops f = Array.fold_left (fun acc b -> acc + List.length b.ops) 0 f.blocks

let pp_op ppf = function
  | Prim_op { dst; prim; args } ->
    Format.fprintf ppf "%s = %s(%s)" dst prim (String.concat ", " args)
  | Const_op { dst; value } -> Format.fprintf ppf "%s = const %a" dst Tensor.pp value
  | Mov { dst; src } -> Format.fprintf ppf "%s = %s" dst src
  | Call_op { dsts; func; args } ->
    Format.fprintf ppf "%s = call %s(%s)" (String.concat ", " dsts) func
      (String.concat ", " args)

let pp_term ppf = function
  | Jump j -> Format.fprintf ppf "jump %d" j
  | Branch { cond; if_true; if_false } ->
    Format.fprintf ppf "branch %s ? %d : %d" cond if_true if_false
  | Return -> Format.pp_print_string ppf "return"

let pp_block ppf (i, b) =
  Format.fprintf ppf "@[<v 2>block %d:@,%a%a@]" i
    (fun ppf ops ->
      List.iter (fun op -> Format.fprintf ppf "%a@," pp_op op) ops)
    b.ops pp_term b.term

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>func %s(%s) -> (%s):@,%a@]" f.name
    (String.concat ", " f.params)
    (String.concat ", " f.result_vars)
    (fun ppf blocks ->
      Array.iteri (fun i b -> Format.fprintf ppf "%a@," pp_block (i, b)) blocks)
    f.blocks

let pp_program ppf p =
  Format.fprintf ppf "@[<v>%a@,entry: %s@]"
    (fun ppf fs -> List.iter (fun (_, f) -> Format.fprintf ppf "%a@," pp_func f) fs)
    p.funcs p.entry
