(** The control-flow-graph IR of the paper's Figure 2 (n-ary form).

    A program is a set of functions; each function is an array of basic
    blocks of straight-line operations ending in a terminator. Variables
    are function-local and globally namespaced as ["fname/var"] by
    {!Lower_cfg}. Function results are communicated through designated
    result variables (["fname/$ret0" ...]) that hold the return values at
    every [Return] terminator.

    Block [Array.length blocks] (one past the last block) is the
    conventional "function exited" program-counter value, as in the
    paper's Algorithm 1. *)

type op =
  | Prim_op of { dst : string; prim : string; args : string list }
  | Const_op of { dst : string; value : Tensor.t }
      (** [value] is an element tensor (no batch dimension). *)
  | Mov of { dst : string; src : string }
  | Call_op of { dsts : string list; func : string; args : string list }

type terminator =
  | Jump of int
  | Branch of { cond : string; if_true : int; if_false : int }
  | Return

type block = { ops : op list; term : terminator }

type func = {
  name : string;
  params : string list;           (** namespaced *)
  result_vars : string list;      (** namespaced; hold return values at [Return] *)
  blocks : block array;
}

type program = { funcs : (string * func) list; entry : string }

val find_func : program -> string -> func option
val find_func_exn : program -> string -> func
val entry_func : program -> func

val exit_index : func -> int
(** The "done" program-counter value: [Array.length blocks]. *)

val op_defs : op -> string list
val op_uses : op -> string list
val term_uses : func -> terminator -> string list
(** [Return] uses the function's result variables. *)

val successors : func -> int -> int list
(** Successor block indices ([Return] has none). *)

val all_vars : func -> string list
(** Every variable defined or used in the function (params first, sorted
    and deduplicated after). *)

val n_ops : func -> int

val pp_op : Format.formatter -> op -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
