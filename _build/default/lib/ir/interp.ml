exception Step_limit_exceeded

exception Return_values of Tensor.t list

let truthy t =
  if Tensor.numel t <> 1 then
    invalid_arg
      (Printf.sprintf "Interp: condition must be a one-element tensor, got shape %s"
         (Shape.to_string (Tensor.shape t)));
  Tensor.item t <> 0.

let run ?(max_steps = 1_000_000) reg (p : Lang.program) ~member ~args =
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > max_steps then raise Step_limit_exceeded
  in
  let rec eval_expr env (e : Lang.expr) : Tensor.t =
    match e with
    | Lang.Var x -> (
      match Hashtbl.find_opt env x with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Interp: undefined variable %S" x))
    | Lang.Const v -> Tensor.scalar v
    | Lang.Vec a -> Tensor.of_array [| Array.length a |] a
    | Lang.Prim (name, arg_exprs) ->
      let prim = Prim.find_exn reg name in
      let arg_vals = List.map (eval_expr env) arg_exprs in
      prim.Prim.single ~member arg_vals
  and exec_stmts env stmts = List.iter (exec_stmt env) stmts
  and exec_stmt env (s : Lang.stmt) =
    tick ();
    match s with
    | Lang.Assign (x, e) -> Hashtbl.replace env x (eval_expr env e)
    | Lang.Call_stmt (dsts, callee, arg_exprs) ->
      let arg_vals = List.map (eval_expr env) arg_exprs in
      let results = call callee arg_vals in
      if List.length results <> List.length dsts then
        invalid_arg
          (Printf.sprintf "Interp: call to %S returned %d values for %d destinations"
             callee (List.length results) (List.length dsts));
      List.iter2 (Hashtbl.replace env) dsts results
    | Lang.Return es -> raise (Return_values (List.map (eval_expr env) es))
    | Lang.If (c, t, e) ->
      if truthy (eval_expr env c) then exec_stmts env t else exec_stmts env e
    | Lang.While (c, body) ->
      while truthy (eval_expr env c) do
        tick ();
        exec_stmts env body
      done
  and call fname arg_vals =
    let f =
      match Lang.find_func p fname with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Interp: unknown function %S" fname)
    in
    if List.length f.Lang.params <> List.length arg_vals then
      invalid_arg (Printf.sprintf "Interp: arity mismatch calling %S" fname);
    let env = Hashtbl.create 16 in
    List.iter2 (Hashtbl.replace env) f.Lang.params arg_vals;
    match exec_stmts env f.Lang.body with
    | () -> failwith (Printf.sprintf "Interp: function %S fell off the end" fname)
    | exception Return_values vs -> vs
  in
  call p.Lang.main args
