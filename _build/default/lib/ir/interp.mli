(** Single-example reference interpreter for the surface language.

    This is the semantic ground truth that both autobatching runtimes are
    differential-tested against: running a batch of inputs member-by-member
    through this interpreter must agree exactly with one batched run.

    [member] is the batch-member identity used by the counter-based RNG
    primitives, so randomized programs are reproducible and comparable
    across the three execution paths. *)

exception Step_limit_exceeded

val run :
  ?max_steps:int ->
  Prim.registry ->
  Lang.program ->
  member:int ->
  args:Tensor.t list ->
  Tensor.t list
(** Execute the entry function on one example. [max_steps] (default
    [1_000_000]) bounds the number of executed statements and raises
    {!Step_limit_exceeded} beyond it (used when fuzzing random programs).
    Raises [Invalid_argument]/[Failure] on malformed programs — run
    {!Validate.check_program} first for good error messages. *)

val truthy : Tensor.t -> bool
(** Branch semantics: a condition is a one-element tensor, false iff 0. *)
