exception Step_limit_exceeded

let run ?(max_steps = 1_000_000) reg (p : Cfg.program) ~member ~args =
  let steps = ref 0 in
  let tick () =
    incr steps;
    if !steps > max_steps then raise Step_limit_exceeded
  in
  let rec call (f : Cfg.func) arg_values =
    if List.length f.Cfg.params <> List.length arg_values then
      invalid_arg (Printf.sprintf "Interp_cfg: arity mismatch calling %s" f.Cfg.name);
    let env : (string, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
    List.iter2 (Hashtbl.replace env) f.Cfg.params arg_values;
    let lookup v =
      match Hashtbl.find_opt env v with
      | Some t -> t
      | None -> invalid_arg (Printf.sprintf "Interp_cfg: undefined variable %s" v)
    in
    let rec block i =
      tick ();
      let b = f.Cfg.blocks.(i) in
      List.iter
        (fun (op : Cfg.op) ->
          match op with
          | Cfg.Prim_op { dst; prim; args } ->
            let impl = Prim.find_exn reg prim in
            Hashtbl.replace env dst (impl.Prim.single ~member (List.map lookup args))
          | Cfg.Const_op { dst; value } -> Hashtbl.replace env dst value
          | Cfg.Mov { dst; src } -> Hashtbl.replace env dst (lookup src)
          | Cfg.Call_op { dsts; func; args } ->
            let callee = Cfg.find_func_exn p func in
            let results = call callee (List.map lookup args) in
            List.iter2 (Hashtbl.replace env) dsts results)
        b.Cfg.ops;
      match b.Cfg.term with
      | Cfg.Jump j -> block j
      | Cfg.Branch { cond; if_true; if_false } ->
        let c = lookup cond in
        if Tensor.numel c <> 1 then
          invalid_arg "Interp_cfg: condition must be a one-element tensor";
        block (if Tensor.item c <> 0. then if_true else if_false)
      | Cfg.Return -> List.map lookup f.Cfg.result_vars
    in
    block 0
  in
  call (Cfg.entry_func p) args
