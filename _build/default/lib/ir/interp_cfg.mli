(** Single-example interpreter for the Figure-2 CFG.

    The third semantic reference point: {!Interp} executes the surface
    AST, this module executes the lowered CFG (host recursion for calls,
    one logical thread). Differential agreement between the two localizes
    a failure to {!Lower_cfg}; agreement with the batched runtimes
    localizes it to the VMs. *)

exception Step_limit_exceeded

val run :
  ?max_steps:int ->
  Prim.registry ->
  Cfg.program ->
  member:int ->
  args:Tensor.t list ->
  Tensor.t list
(** Execute the entry function on one example (element-shaped inputs, no
    batch dimension); [member] selects RNG streams. *)
