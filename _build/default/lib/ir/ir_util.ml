(* Shared string-keyed containers for the IR passes. *)

module Sset = Set.Make (String)
module Smap = Map.Make (String)

let sset_of_list = Sset.of_list
