type expr =
  | Var of string
  | Const of float
  | Vec of float array
  | Prim of string * expr list

type stmt =
  | Assign of string * expr
  | Call_stmt of string list * string * expr list
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of stmt_return

and stmt_return = expr list

type func = { fname : string; params : string list; body : stmt list }
type program = { funcs : func list; main : string }

let func fname ~params body = { fname; params; body }
let program ~main funcs = { funcs; main }

let var name = Var name
let flt v = Const v
let vec a = Vec a
let prim name args = Prim (name, args)

let assign name e = Assign (name, e)
let call dsts f args = Call_stmt (dsts, f, args)
let if_ c t e = If (c, t, e)
let while_ c body = While (c, body)
let return_ es = Return es

module Infix = struct
  let binop name a b = Prim (name, [ a; b ])
  let ( + ) = binop "add"
  let ( - ) = binop "sub"
  let ( * ) = binop "mul"
  let ( / ) = binop "div"
  let ( ~- ) a = Prim ("neg", [ a ])
  let ( = ) = binop "eq"
  let ( <> ) = binop "ne"
  let ( < ) = binop "lt"
  let ( <= ) = binop "le"
  let ( > ) = binop "gt"
  let ( >= ) = binop "ge"
  let ( && ) = binop "and"
  let ( || ) = binop "or"
  let not_ a = Prim ("not", [ a ])
end

let find_func p name = List.find_opt (fun f -> f.fname = name) p.funcs
let func_names p = List.map (fun f -> f.fname) p.funcs

let rec pp_expr ppf = function
  | Var x -> Format.pp_print_string ppf x
  | Const v -> Format.fprintf ppf "%g" v
  | Vec a ->
    Format.fprintf ppf "[|%a|]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
         (fun ppf v -> Format.fprintf ppf "%g" v))
      (Array.to_list a)
  | Prim (name, args) ->
    Format.fprintf ppf "@[<hov 2>%s(%a)@]" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_expr)
      args

let rec pp_stmt ppf = function
  | Assign (x, e) -> Format.fprintf ppf "@[<hov 2>%s =@ %a@]" x pp_expr e
  | Call_stmt (dsts, f, args) ->
    Format.fprintf ppf "@[<hov 2>%s =@ call %s(%a)@]"
      (String.concat ", " dsts) f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_expr)
      args
  | If (c, t, e) ->
    Format.fprintf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr
      c pp_body t pp_body e
  | While (c, body) ->
    Format.fprintf ppf "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_body body
  | Return es ->
    Format.fprintf ppf "@[<hov 2>return %a@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp_expr)
      es

and pp_body ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_func ppf f =
  Format.fprintf ppf "@[<v 2>def %s(%s) {@,%a@]@,}" f.fname
    (String.concat ", " f.params)
    pp_body f.body

let pp_program ppf p =
  Format.fprintf ppf "@[<v>%a@,main: %s@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_func)
    p.funcs p.main
