(** The surface language: a small imperative language with data-dependent
    control flow and (mutual) recursion, embedded in OCaml.

    This plays the role of the paper's Python frontend: user programs are
    written against this AST (most conveniently with the {!Infix}
    combinators) and then mechanically batched by compiling to the
    control-flow-graph IR of the paper's Figure 2 ({!Cfg}) and onward to
    the stack-machine IR of Figure 4 ({!Stack_ir}).

    Values are tensors (per-example element shapes; the batch dimension is
    added by the runtimes, never written by the user). Conditions are
    scalar tensors, false iff 0. *)

type expr =
  | Var of string
  | Const of float                 (** scalar literal *)
  | Vec of float array             (** rank-1 literal *)
  | Prim of string * expr list     (** primitive application *)

type stmt =
  | Assign of string * expr
  | Call_stmt of string list * string * expr list
      (** [Call_stmt (dsts, f, args)]: multi-result user-function call.
          Function calls are statements, not expressions, because they are
          control flow (the batching runtimes schedule them). *)
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Return of stmt_return

and stmt_return = expr list

type func = { fname : string; params : string list; body : stmt list }

type program = { funcs : func list; main : string }

(** {1 Builders} *)

val func : string -> params:string list -> stmt list -> func
val program : main:string -> func list -> program

val var : string -> expr
val flt : float -> expr
val vec : float array -> expr
val prim : string -> expr list -> expr

val assign : string -> expr -> stmt
val call : string list -> string -> expr list -> stmt
val if_ : expr -> stmt list -> stmt list -> stmt
val while_ : expr -> stmt list -> stmt
val return_ : expr list -> stmt

(** Infix operators over {!expr}; open locally when writing programs. *)
module Infix : sig
  val ( + ) : expr -> expr -> expr
  val ( - ) : expr -> expr -> expr
  val ( * ) : expr -> expr -> expr
  val ( / ) : expr -> expr -> expr
  val ( ~- ) : expr -> expr
  val ( = ) : expr -> expr -> expr
  val ( <> ) : expr -> expr -> expr
  val ( < ) : expr -> expr -> expr
  val ( <= ) : expr -> expr -> expr
  val ( > ) : expr -> expr -> expr
  val ( >= ) : expr -> expr -> expr
  val ( && ) : expr -> expr -> expr
  val ( || ) : expr -> expr -> expr
  val not_ : expr -> expr
end

(** {1 Inspection} *)

val find_func : program -> string -> func option
val func_names : program -> string list

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit
