open Ir_util

type t = { live_in : Sset.t array; live_out : Sset.t array }

(* Transfer one op backward over a live set. *)
let op_backward live op =
  let live = Sset.diff live (sset_of_list (Cfg.op_defs op)) in
  Sset.union live (sset_of_list (Cfg.op_uses op))

let block_backward f (b : Cfg.block) live_out =
  let live = Sset.union live_out (sset_of_list (Cfg.term_uses f b.Cfg.term)) in
  List.fold_left op_backward live (List.rev b.Cfg.ops)

let analyze (f : Cfg.func) =
  let n = Array.length f.Cfg.blocks in
  let live_in = Array.make n Sset.empty in
  let live_out = Array.make n Sset.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc j -> Sset.union acc live_in.(j))
          Sset.empty (Cfg.successors f i)
      in
      let inp = block_backward f f.Cfg.blocks.(i) out in
      if not (Sset.equal out live_out.(i) && Sset.equal inp live_in.(i)) then begin
        live_out.(i) <- out;
        live_in.(i) <- inp;
        changed := true
      end
    done
  done;
  { live_in; live_out }

let live_in t i = t.live_in.(i)
let live_out t i = t.live_out.(i)

let live_after_op t f ~block ~op =
  let b = f.Cfg.blocks.(block) in
  let n_ops = List.length b.Cfg.ops in
  if op < 0 || op >= n_ops then invalid_arg "Liveness.live_after_op: bad op index";
  (* Walk backward from the block end to just after op [op]. *)
  let live =
    Sset.union t.live_out.(block) (sset_of_list (Cfg.term_uses f b.Cfg.term))
  in
  let rec back i live ops_rev =
    match ops_rev with
    | [] -> live
    | o :: rest -> if i = op then live else back (i - 1) (op_backward live o) rest
  in
  back (n_ops - 1) live (List.rev b.Cfg.ops)

let cross_block_vars t f =
  let acc = ref t.live_in.(0) in
  Array.iteri (fun i _ -> acc := Sset.union !acc t.live_out.(i)) f.Cfg.blocks;
  !acc
