(** Classic backward liveness dataflow on one CFG function.

    Used for the paper's compiler optimizations O2 and O3: variables never
    live across a block boundary are temporaries the batching system need
    not track at all, and variables never live across a potentially
    clobbering call site need masked top-values but no stack. *)

type t

val analyze : Cfg.func -> t

val live_in : t -> int -> Ir_util.Sset.t
val live_out : t -> int -> Ir_util.Sset.t

val live_after_op : t -> Cfg.func -> block:int -> op:int -> Ir_util.Sset.t
(** Variables live immediately after the op at index [op] of block
    [block] (i.e. before the next op, or the terminator if last). *)

val cross_block_vars : t -> Cfg.func -> Ir_util.Sset.t
(** Variables live across some block boundary: the union of all [live_out]
    sets and the entry block's [live_in]. Complement (over the function's
    variables) = the paper's "temporaries". *)
