(* Block-by-block builder with back-patching for forward branch targets. *)

type bblock = { mutable ops_rev : Cfg.op list; mutable term : Cfg.terminator option }

type builder = {
  fname : string;
  blocks : (int, bblock) Hashtbl.t;
  mutable n_blocks : int;
  mutable cur : int;  (* block currently being emitted; -1 when none open *)
  mutable n_temps : int;
}

let ns b v = b.fname ^ "/" ^ v

let new_block b =
  let i = b.n_blocks in
  b.n_blocks <- i + 1;
  Hashtbl.add b.blocks i { ops_rev = []; term = None };
  b.cur <- i;
  i

let emit b op =
  let blk = Hashtbl.find b.blocks b.cur in
  (match blk.term with
  | None -> ()
  | Some _ -> failwith "Lower_cfg: emitting into a sealed block");
  blk.ops_rev <- op :: blk.ops_rev

let seal b term =
  let blk = Hashtbl.find b.blocks b.cur in
  (match blk.term with
  | None -> ()
  | Some _ -> failwith "Lower_cfg: sealing an already sealed block");
  blk.term <- Some term

let sealed b = (Hashtbl.find b.blocks b.cur).term <> None

let patch_term b i term =
  let blk = Hashtbl.find b.blocks i in
  blk.term <- Some term

let fresh_temp b =
  let t = Printf.sprintf "%s/$t%d" b.fname b.n_temps in
  b.n_temps <- b.n_temps + 1;
  t

(* Lower an expression; returns the (namespaced) variable holding its
   value. [Var] nodes pass through without a copy. *)
let rec lower_expr b (e : Lang.expr) : string =
  match e with
  | Lang.Var x -> ns b x
  | Lang.Const _ | Lang.Vec _ | Lang.Prim _ ->
    let t = fresh_temp b in
    lower_expr_into b t e;
    t

and lower_expr_into b dst (e : Lang.expr) : unit =
  match e with
  | Lang.Var x -> emit b (Cfg.Mov { dst; src = ns b x })
  | Lang.Const v -> emit b (Cfg.Const_op { dst; value = Tensor.scalar v })
  | Lang.Vec a ->
    emit b (Cfg.Const_op { dst; value = Tensor.of_array [| Array.length a |] a })
  | Lang.Prim (name, args) ->
    let arg_vars = List.map (lower_expr b) args in
    emit b (Cfg.Prim_op { dst; prim = name; args = arg_vars })

let result_arity (f : Lang.func) =
  let arities = ref [] in
  let rec scan stmts =
    List.iter
      (fun (s : Lang.stmt) ->
        match s with
        | Lang.Return es -> arities := List.length es :: !arities
        | Lang.If (_, t, e) ->
          scan t;
          scan e
        | Lang.While (_, body) -> scan body
        | Lang.Assign _ | Lang.Call_stmt _ -> ())
      stmts
  in
  scan f.body;
  match List.sort_uniq compare !arities with
  | [ n ] -> n
  | [] -> failwith (Printf.sprintf "Lower_cfg: function %s never returns" f.fname)
  | _ ->
    failwith
      (Printf.sprintf "Lower_cfg: function %s has returns of differing arity" f.fname)

let lower_func (f : Lang.func) : Cfg.func =
  let b =
    { fname = f.fname; blocks = Hashtbl.create 16; n_blocks = 0; cur = -1; n_temps = 0 }
  in
  let n_results = result_arity f in
  let result_vars = List.init n_results (fun i -> Printf.sprintf "%s/$ret%d" f.fname i) in
  let _entry = new_block b in
  let rec lower_stmts stmts =
    List.iter
      (fun s ->
        (* Statements after a Return in the same branch are unreachable;
           put them in a fresh dead block rather than rejecting. *)
        if sealed b then ignore (new_block b);
        lower_stmt s)
      stmts
  and lower_stmt (s : Lang.stmt) =
    match s with
    | Lang.Assign (x, e) -> lower_expr_into b (ns b x) e
    | Lang.Call_stmt (dsts, callee, args) ->
      let arg_vars = List.map (lower_expr b) args in
      emit b (Cfg.Call_op { dsts = List.map (ns b) dsts; func = callee; args = arg_vars })
    | Lang.Return es ->
      List.iteri (fun i e -> lower_expr_into b (List.nth result_vars i) e) es;
      seal b Cfg.Return
    | Lang.If (c, then_body, else_body) ->
      let cond = lower_expr b c in
      let branch_block = b.cur in
      let then_idx = new_block b in
      lower_stmts then_body;
      let then_exit = if sealed b then None else Some b.cur in
      let else_idx = new_block b in
      lower_stmts else_body;
      let else_exit = if sealed b then None else Some b.cur in
      let join_idx = new_block b in
      patch_term b branch_block
        (Cfg.Branch { cond; if_true = then_idx; if_false = else_idx });
      Option.iter (fun i -> patch_term b i (Cfg.Jump join_idx)) then_exit;
      Option.iter (fun i -> patch_term b i (Cfg.Jump join_idx)) else_exit
    | Lang.While (c, body) ->
      let pre = b.cur in
      let cond_idx = new_block b in
      patch_term b pre (Cfg.Jump cond_idx);
      let cond = lower_expr b c in
      let cond_block = b.cur in
      let body_idx = new_block b in
      lower_stmts body;
      let body_exit = if sealed b then None else Some b.cur in
      let exit_idx = new_block b in
      patch_term b cond_block
        (Cfg.Branch { cond; if_true = body_idx; if_false = exit_idx });
      Option.iter (fun i -> patch_term b i (Cfg.Jump cond_idx)) body_exit
  in
  lower_stmts f.body;
  (* An unsealed final block here is the unreachable join of an
     all-branches-return conditional; {!Validate} guarantees reachable
     control never falls off the end. *)
  let blocks =
    Array.init b.n_blocks (fun i ->
        let blk = Hashtbl.find b.blocks i in
        let term =
          match blk.term with
          | Some t -> t
          | None ->
            (* A dead block opened after a Return and never sealed. *)
            Cfg.Return
        in
        { Cfg.ops = List.rev blk.ops_rev; term })
  in
  {
    Cfg.name = f.fname;
    params = List.map (ns b) f.params;
    result_vars;
    blocks;
  }

let lower (p : Lang.program) : Cfg.program =
  let funcs = List.map (fun f -> (f.Lang.fname, lower_func f)) p.funcs in
  { Cfg.funcs; entry = p.main }
