(** Lowering from the surface language to the Figure-2 CFG IR.

    - Variables are namespaced ["fname/var"]; compiler temporaries are
      ["fname/$tN"] and result variables ["fname/$retN"] (user programs
      cannot contain ['$'] or ['/'] in names — {!Validate} enforces this).
    - Expressions are flattened to three-address primitive applications.
    - [Return] lowers to moves into the function's result variables
      followed by a [Return] terminator.
    - Blocks are emitted in source order, which is what gives the paper's
      "run the earliest available block" scheduling heuristic its meaning.

    Input programs are expected to have passed {!Validate.check_program};
    lowering raises [Failure] with a diagnostic on malformed input it
    cannot represent (e.g. a function body that can fall off the end). *)

val lower : Lang.program -> Cfg.program

val result_arity : Lang.func -> int
(** Number of values the function returns, from its [Return] statements.
    Raises [Failure] if there are none or they disagree. *)
