open Ir_util

type options = { detect_temporaries : bool; save_live_only : bool }

let default_options = { detect_temporaries = true; save_live_only = true }

(* A segment whose terminator may still reference unresolved block heads. *)
type pending_term =
  | P_orig of string * Cfg.terminator  (* owning function, original terminator *)
  | P_call of string  (* callee; becomes Spushjump {ret = self + 1; entry} *)

type pseg = { ops : Stack_ir.op list; pterm : pending_term; origin : string * int }

let lower ?(options = default_options) ?(shapes = Smap.empty) (p : Cfg.program) =
  let entry = Cfg.entry_func p in
  (* Entry function first; remaining functions in declaration order. *)
  let funcs =
    (p.Cfg.entry, entry)
    :: List.filter (fun (name, _) -> name <> p.Cfg.entry) p.Cfg.funcs
  in
  let cg = Callgraph.build p in
  let shapes = ref shapes in
  (* Per-function analysis: liveness, call-spanning variables, temps. *)
  let analyses =
    List.map
      (fun (name, f) ->
        let lf = Liveness.analyze f in
        (* Variables live across any call site (clobbering or not): these
           span a segment boundary after splitting, so they cannot be
           temporaries. *)
        let across_calls = ref Sset.empty in
        Array.iteri
          (fun bi (b : Cfg.block) ->
            List.iteri
              (fun oi op ->
                match op with
                | Cfg.Call_op _ ->
                  across_calls :=
                    Sset.union !across_calls
                      (Liveness.live_after_op lf f ~block:bi ~op:oi)
                | Cfg.Prim_op _ | Cfg.Const_op _ | Cfg.Mov _ -> ())
              b.Cfg.ops)
          f.Cfg.blocks;
        let non_temp =
          Sset.union (Liveness.cross_block_vars lf f)
            (Sset.union !across_calls
               (sset_of_list (f.Cfg.params @ f.Cfg.result_vars)))
        in
        let temps =
          if options.detect_temporaries then
            Sset.diff (sset_of_list (Cfg.all_vars f)) non_temp
          else Sset.empty
        in
        (name, (f, lf, temps)))
      funcs
  in
  (* Build segments. *)
  let psegs = ref [] in
  let n_segs = ref 0 in
  let heads = Hashtbl.create 64 in
  let stacked = ref Sset.empty in
  let arg_temp_counter = ref 0 in
  let emit ops pterm origin =
    psegs := { ops = List.rev ops; pterm; origin } :: !psegs;
    incr n_segs
  in
  List.iter
    (fun (fname, (f, lf, temps)) ->
      Array.iteri
        (fun bi (b : Cfg.block) ->
          Hashtbl.add heads (fname, bi) !n_segs;
          let cur = ref [] in
          List.iteri
            (fun oi (op : Cfg.op) ->
              match op with
              | Cfg.Prim_op { dst; prim; args } ->
                cur := Stack_ir.Sprim { dst; prim; args } :: !cur
              | Cfg.Const_op { dst; value } ->
                cur := Stack_ir.Sconst { dst; value } :: !cur
              | Cfg.Mov { dst; src } -> cur := Stack_ir.Smov { dst; src } :: !cur
              | Cfg.Call_op { dsts; func = callee_name; args } ->
                let callee = Cfg.find_func_exn p callee_name in
                (* Stage arguments that alias callee parameters through
                   fresh temporaries to avoid overwrite hazards. *)
                let staged =
                  List.map
                    (fun arg ->
                      if List.mem arg callee.Cfg.params then begin
                        let t = Printf.sprintf "%s/$a%d" fname !arg_temp_counter in
                        incr arg_temp_counter;
                        (match Smap.find_opt arg !shapes with
                        | Some s -> shapes := Smap.add t s !shapes
                        | None -> ());
                        cur := Stack_ir.Smov { dst = t; src = arg } :: !cur;
                        t
                      end
                      else arg)
                    args
                in
                let live_after = Liveness.live_after_op lf f ~block:bi ~op:oi in
                let candidates =
                  if options.save_live_only then
                    if Callgraph.may_clobber_caller cg ~caller:fname ~callee:callee_name
                    then Sset.diff live_after (sset_of_list dsts)
                    else Sset.empty
                  else
                    (* Save everything — except destinations, temporaries,
                       and the callee's result variables, whose pop would
                       destroy the returned values the continuation is
                       about to read. *)
                    Sset.diff
                      (Sset.diff (sset_of_list (Cfg.all_vars f)) temps)
                      (sset_of_list (dsts @ callee.Cfg.result_vars))
                in
                let saves = Sset.elements candidates in
                stacked := Sset.union !stacked candidates;
                List.iter (fun v -> cur := Stack_ir.Spush v :: !cur) saves;
                List.iter2
                  (fun param src -> cur := Stack_ir.Smov { dst = param; src } :: !cur)
                  callee.Cfg.params staged;
                emit !cur (P_call callee_name) (fname, bi);
                (* Continuation segment: restore saves, fetch results. *)
                cur := [];
                List.iter (fun v -> cur := Stack_ir.Spop v :: !cur) saves;
                List.iter2
                  (fun dst ret -> cur := Stack_ir.Smov { dst; src = ret } :: !cur)
                  dsts callee.Cfg.result_vars)
            b.Cfg.ops;
          emit !cur (P_orig (fname, b.Cfg.term)) (fname, bi))
        f.Cfg.blocks)
    analyses;
  let psegs = Array.of_list (List.rev !psegs) in
  let head fname bi =
    match Hashtbl.find_opt heads (fname, bi) with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Lower_stack: no head for %s block %d" fname bi)
  in
  let blocks =
    Array.mapi
      (fun i seg ->
        let term =
          match seg.pterm with
          | P_call callee -> Stack_ir.Spushjump { ret = i + 1; entry = head callee 0 }
          | P_orig (fname, Cfg.Jump j) -> Stack_ir.Sjump (head fname j)
          | P_orig (fname, Cfg.Branch { cond; if_true; if_false }) ->
            Stack_ir.Sbranch
              { cond; if_true = head fname if_true; if_false = head fname if_false }
          | P_orig (_, Cfg.Return) -> Stack_ir.Sreturn
        in
        { Stack_ir.ops = seg.ops; term })
      psegs
  in
  (* Storage classes. *)
  let classes = ref Smap.empty in
  List.iter
    (fun (_, (f, _, temps)) ->
      List.iter
        (fun v ->
          let c =
            if Sset.mem v !stacked then Var_class.Stacked
            else if Sset.mem v temps then Var_class.Temp
            else Var_class.Masked
          in
          classes := Smap.add v c !classes)
        (Cfg.all_vars f))
    analyses;
  (* Argument-staging temporaries: written and read within one segment. *)
  Array.iter
    (fun (b : Stack_ir.block) ->
      List.iter
        (fun op ->
          List.iter
            (fun v ->
              if not (Smap.mem v !classes) then
                classes := Smap.add v Var_class.Temp !classes)
            (Stack_ir.op_defs op))
        b.Stack_ir.ops)
    blocks;
  {
    Stack_ir.blocks;
    classes = !classes;
    shapes = !shapes;
    inputs = entry.Cfg.params;
    outputs = entry.Cfg.result_vars;
    origin = Array.map (fun seg -> seg.origin) psegs;
    func_entries = List.map (fun (fname, _) -> (fname, head fname 0)) funcs;
  }
