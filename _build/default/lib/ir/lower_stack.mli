(** Lowering from the Figure-2 CFG to the Figure-4 stack IR.

    All function CFGs are merged into one block array (entry function
    first, blocks in source order — preserving the "earliest block"
    scheduling heuristic). Each [Call] op splits its block:

    - before the jump: argument staging (through fresh temporaries only
      when an argument aliases a callee parameter), caller-saves [Spush]es
      of the variables in the call's save set, parameter moves, and a
      [Spushjump] whose return address is the continuation segment;
    - the continuation segment starts with the matching [Spop]s and moves
      of the callee's result variables into the call destinations.

    The save set of a call site is the set of caller variables live after
    the call (minus its destinations), filtered — when optimization O3 is
    enabled — to call sites whose callee can re-enter the caller
    ({!Callgraph.may_clobber_caller}).

    Storage classes: a variable is [Stacked] iff it appears in some save
    set; [Temp] (with O2) iff it is never live across a block boundary nor
    across any call site of its function; otherwise [Masked]. *)

type options = {
  detect_temporaries : bool;  (** O2; off ⇒ no [Temp] class *)
  save_live_only : bool;
      (** O3; off ⇒ every call site saves all non-temporary caller
          variables (except call destinations and result variables), so
          every one of them becomes [Stacked]. Since dead variables may
          then be pushed before their first write, running the result
          requires preallocated storage — compile with [input_shapes]. *)
}

val default_options : options

val lower :
  ?options:options ->
  ?shapes:Shape.t Ir_util.Smap.t ->
  Cfg.program ->
  Stack_ir.program
(** [shapes] (from {!Shape_infer.infer}) is threaded through for storage
    preallocation; argument-staging temporaries inherit their source's
    shape. *)
