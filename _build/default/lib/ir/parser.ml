type error = { line : int; col : int; message : string }

let string_of_error e = Printf.sprintf "%d:%d: %s" e.line e.col e.message

exception Parse_error of error

(* ---------- lexer ---------- *)

type token =
  | NUMBER of float
  | IDENT of string
  | KW_DEF
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_RETURN
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | ASSIGN
  | EQ
  | NE
  | LE
  | GE
  | LT
  | GT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | ANDAND
  | OROR
  | BANG
  | EOF

let token_to_string = function
  | NUMBER v -> Printf.sprintf "number %g" v
  | IDENT s -> Printf.sprintf "identifier %S" s
  | KW_DEF -> "'def'"
  | KW_IF -> "'if'"
  | KW_ELSE -> "'else'"
  | KW_WHILE -> "'while'"
  | KW_RETURN -> "'return'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | SEMI -> "';'"
  | ASSIGN -> "'='"
  | EQ -> "'=='"
  | NE -> "'!='"
  | LE -> "'<='"
  | GE -> "'>='"
  | LT -> "'<'"
  | GT -> "'>'"
  | PLUS -> "'+'"
  | MINUS -> "'-'"
  | STAR -> "'*'"
  | SLASH -> "'/'"
  | ANDAND -> "'&&'"
  | OROR -> "'||'"
  | BANG -> "'!'"
  | EOF -> "end of input"

type spanned = { tok : token; tline : int; tcol : int }

let lex source =
  let n = String.length source in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let fail message = raise (Parse_error { line = !line; col = !col; message }) in
  let push tok tline tcol = tokens := { tok; tline; tcol } :: !tokens in
  let advance () =
    (if source.[!i] = '\n' then begin
       incr line;
       col := 1
     end
     else incr col);
    incr i
  in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = source.[!i] in
    let tline = !line and tcol = !col in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '#' then
      while !i < n && source.[!i] <> '\n' do
        advance ()
      done
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit source.[!i + 1]) then begin
      let start = !i in
      while
        !i < n
        && (is_digit source.[!i] || source.[!i] = '.' || source.[!i] = 'e'
           || source.[!i] = 'E'
           || ((source.[!i] = '+' || source.[!i] = '-')
              && !i > start
              && (source.[!i - 1] = 'e' || source.[!i - 1] = 'E')))
      do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      match float_of_string_opt text with
      | Some v -> push (NUMBER v) tline tcol
      | None -> fail (Printf.sprintf "malformed number %S" text)
    end
    else if is_ident_char c && not (is_digit c) then begin
      let start = !i in
      while !i < n && is_ident_char source.[!i] do
        advance ()
      done;
      let text = String.sub source start (!i - start) in
      let tok =
        match text with
        | "def" -> KW_DEF
        | "if" -> KW_IF
        | "else" -> KW_ELSE
        | "while" -> KW_WHILE
        | "return" -> KW_RETURN
        | _ -> IDENT text
      in
      push tok tline tcol
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub source !i 2) else None
      in
      match two with
      | Some "==" -> push EQ tline tcol; advance (); advance ()
      | Some "!=" -> push NE tline tcol; advance (); advance ()
      | Some "<=" -> push LE tline tcol; advance (); advance ()
      | Some ">=" -> push GE tline tcol; advance (); advance ()
      | Some "&&" -> push ANDAND tline tcol; advance (); advance ()
      | Some "||" -> push OROR tline tcol; advance (); advance ()
      | _ -> (
        (match c with
        | '(' -> push LPAREN tline tcol
        | ')' -> push RPAREN tline tcol
        | '{' -> push LBRACE tline tcol
        | '}' -> push RBRACE tline tcol
        | '[' -> push LBRACKET tline tcol
        | ']' -> push RBRACKET tline tcol
        | ',' -> push COMMA tline tcol
        | ';' -> push SEMI tline tcol
        | '=' -> push ASSIGN tline tcol
        | '<' -> push LT tline tcol
        | '>' -> push GT tline tcol
        | '+' -> push PLUS tline tcol
        | '-' -> push MINUS tline tcol
        | '*' -> push STAR tline tcol
        | '/' -> push SLASH tline tcol
        | '!' -> push BANG tline tcol
        | _ -> fail (Printf.sprintf "unexpected character %C" c));
        advance ())
    end
  done;
  push EOF !line !col;
  Array.of_list (List.rev !tokens)

(* ---------- parser ---------- *)

(* Expressions parse applications [f(args)] uniformly; whether [f] is a
   primitive or a program function is resolved after the whole program is
   known (calls to program functions are only legal as statements). *)

type pexpr =
  | P_num of float
  | P_vec of float array
  | P_var of string
  | P_app of string * pexpr list * int * int  (* callee, args, line, col *)

type pstmt =
  | P_assign of string list * pexpr * int * int
  | P_if of pexpr * pstmt list * pstmt list
  | P_while of pexpr * pstmt list
  | P_return of pexpr list

type state = { toks : spanned array; mutable pos : int }

let peek st = st.toks.(st.pos)

let next st =
  let t = st.toks.(st.pos) in
  if t.tok <> EOF then st.pos <- st.pos + 1;
  t

let fail_at (sp : spanned) message =
  raise (Parse_error { line = sp.tline; col = sp.tcol; message })

let expect st tok =
  let t = next st in
  if t.tok <> tok then
    fail_at t (Printf.sprintf "expected %s but found %s" (token_to_string tok)
                 (token_to_string t.tok))

let expect_ident st =
  let t = next st in
  match t.tok with
  | IDENT s -> s
  | other -> fail_at t (Printf.sprintf "expected an identifier, found %s" (token_to_string other))

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while (peek st).tok = OROR do
    ignore (next st);
    let rhs = parse_and st in
    lhs := P_app ("or", [ !lhs; rhs ], 0, 0)
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_cmp st) in
  while (peek st).tok = ANDAND do
    ignore (next st);
    let rhs = parse_cmp st in
    lhs := P_app ("and", [ !lhs; rhs ], 0, 0)
  done;
  !lhs

and parse_cmp st =
  let lhs = parse_additive st in
  let op =
    match (peek st).tok with
    | EQ -> Some "eq"
    | NE -> Some "ne"
    | LE -> Some "le"
    | GE -> Some "ge"
    | LT -> Some "lt"
    | GT -> Some "gt"
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some name ->
    ignore (next st);
    let rhs = parse_additive st in
    P_app (name, [ lhs; rhs ], 0, 0)

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let rec go () =
    match (peek st).tok with
    | PLUS ->
      ignore (next st);
      lhs := P_app ("add", [ !lhs; parse_multiplicative st ], 0, 0);
      go ()
    | MINUS ->
      ignore (next st);
      lhs := P_app ("sub", [ !lhs; parse_multiplicative st ], 0, 0);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let rec go () =
    match (peek st).tok with
    | STAR ->
      ignore (next st);
      lhs := P_app ("mul", [ !lhs; parse_unary st ], 0, 0);
      go ()
    | SLASH ->
      ignore (next st);
      lhs := P_app ("div", [ !lhs; parse_unary st ], 0, 0);
      go ()
    | _ -> ()
  in
  go ();
  !lhs

and parse_unary st =
  match (peek st).tok with
  | MINUS ->
    ignore (next st);
    P_app ("neg", [ parse_unary st ], 0, 0)
  | BANG ->
    ignore (next st);
    P_app ("not", [ parse_unary st ], 0, 0)
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  match t.tok with
  | NUMBER v -> P_num v
  | LPAREN ->
    let e = parse_expr st in
    expect st RPAREN;
    e
  | LBRACKET ->
    let elems = ref [] in
    (if (peek st).tok <> RBRACKET then begin
       let rec go () =
         let e = next st in
         (match e.tok with
         | NUMBER v -> elems := v :: !elems
         | MINUS -> (
           let e2 = next st in
           match e2.tok with
           | NUMBER v -> elems := -.v :: !elems
           | other ->
             fail_at e2
               (Printf.sprintf "expected a number in vector literal, found %s"
                  (token_to_string other)))
         | other ->
           fail_at e
             (Printf.sprintf "expected a number in vector literal, found %s"
                (token_to_string other)));
         if (peek st).tok = COMMA then begin
           ignore (next st);
           go ()
         end
       in
       go ()
     end);
    expect st RBRACKET;
    P_vec (Array.of_list (List.rev !elems))
  | IDENT name ->
    if (peek st).tok = LPAREN then begin
      ignore (next st);
      let args = ref [] in
      (if (peek st).tok <> RPAREN then begin
         let rec go () =
           args := parse_expr st :: !args;
           if (peek st).tok = COMMA then begin
             ignore (next st);
             go ()
           end
         in
         go ()
       end);
      expect st RPAREN;
      P_app (name, List.rev !args, t.tline, t.tcol)
    end
    else P_var name
  | other -> fail_at t (Printf.sprintf "expected an expression, found %s" (token_to_string other))

let rec parse_stmt st =
  let t = peek st in
  match t.tok with
  | KW_IF ->
    ignore (next st);
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let then_body = parse_block st in
    let else_body =
      if (peek st).tok = KW_ELSE then begin
        ignore (next st);
        parse_block st
      end
      else []
    in
    P_if (cond, then_body, else_body)
  | KW_WHILE ->
    ignore (next st);
    expect st LPAREN;
    let cond = parse_expr st in
    expect st RPAREN;
    let body = parse_block st in
    P_while (cond, body)
  | KW_RETURN ->
    ignore (next st);
    let values = ref [ parse_expr st ] in
    while (peek st).tok = COMMA do
      ignore (next st);
      values := parse_expr st :: !values
    done;
    expect st SEMI;
    P_return (List.rev !values)
  | IDENT _ ->
    let dsts = ref [ expect_ident st ] in
    while (peek st).tok = COMMA do
      ignore (next st);
      dsts := expect_ident st :: !dsts
    done;
    expect st ASSIGN;
    let rhs = parse_expr st in
    expect st SEMI;
    P_assign (List.rev !dsts, rhs, t.tline, t.tcol)
  | other ->
    fail_at t (Printf.sprintf "expected a statement, found %s" (token_to_string other))

and parse_block st =
  expect st LBRACE;
  let stmts = ref [] in
  while (peek st).tok <> RBRACE do
    stmts := parse_stmt st :: !stmts
  done;
  expect st RBRACE;
  List.rev !stmts

type pfunc = { pname : string; pparams : string list; pbody : pstmt list }

let parse_func st =
  expect st KW_DEF;
  let pname = expect_ident st in
  expect st LPAREN;
  let pparams = ref [] in
  (if (peek st).tok <> RPAREN then begin
     let rec go () =
       pparams := expect_ident st :: !pparams;
       if (peek st).tok = COMMA then begin
         ignore (next st);
         go ()
       end
     in
     go ()
   end);
  expect st RPAREN;
  let pbody = parse_block st in
  { pname; pparams = List.rev !pparams; pbody }

(* ---------- resolution: applications -> prims vs function calls ---------- *)

let resolve funcs =
  let fnames = List.map (fun f -> f.pname) funcs in
  let is_func name = List.mem name fnames in
  let rec expr (e : pexpr) : Lang.expr =
    match e with
    | P_num v -> Lang.Const v
    | P_vec a -> Lang.Vec a
    | P_var x -> Lang.Var x
    | P_app (name, args, line, col) ->
      if is_func name then
        raise
          (Parse_error
             {
               line;
               col;
               message =
                 Printf.sprintf
                   "function %S called inside an expression; calls are control \
                    flow and must be statements (d = %s(...);)"
                   name name;
             })
      else Lang.Prim (name, List.map expr args)
  in
  let rec stmt (s : pstmt) : Lang.stmt =
    match s with
    | P_assign (dsts, P_app (name, args, line, col), _, _) when is_func name ->
      ignore line;
      ignore col;
      Lang.Call_stmt (dsts, name, List.map expr args)
    | P_assign ([ dst ], rhs, _, _) -> Lang.Assign (dst, expr rhs)
    | P_assign (dsts, _, line, col) ->
      raise
        (Parse_error
           {
             line;
             col;
             message =
               Printf.sprintf
                 "%d destinations on the left of '=' but the right-hand side is \
                  not a function call"
                 (List.length dsts);
           })
    | P_if (c, t, e) -> Lang.If (expr c, List.map stmt t, List.map stmt e)
    | P_while (c, body) -> Lang.While (expr c, List.map stmt body)
    | P_return es -> Lang.Return (List.map expr es)
  in
  List.map
    (fun f -> { Lang.fname = f.pname; params = f.pparams; body = List.map stmt f.pbody })
    funcs

let parse_string ?main source =
  match
    let st = { toks = lex source; pos = 0 } in
    let funcs = ref [] in
    while (peek st).tok <> EOF do
      funcs := parse_func st :: !funcs
    done;
    let funcs = List.rev !funcs in
    if funcs = [] then
      raise (Parse_error { line = 1; col = 1; message = "empty program" });
    let lang_funcs = resolve funcs in
    let entry =
      match main with
      | Some m -> m
      | None ->
        if List.exists (fun f -> f.pname = "main") funcs then "main"
        else (List.hd funcs).pname
    in
    Lang.program ~main:entry lang_funcs
  with
  | program -> Ok program
  | exception Parse_error e -> Error e

let parse_file ?main path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let source = really_input_string ic len in
  close_in ic;
  parse_string ?main source

(* ---------- source emission ---------- *)

let infix_ops =
  [
    ("add", "+"); ("sub", "-"); ("mul", "*"); ("div", "/"); ("eq", "==");
    ("ne", "!="); ("le", "<="); ("ge", ">="); ("lt", "<"); ("gt", ">");
    ("and", "&&"); ("or", "||");
  ]

let rec emit_expr buf (e : Lang.expr) =
  match e with
  | Lang.Var x -> Buffer.add_string buf x
  | Lang.Const v ->
    if v < 0. then Buffer.add_string buf (Printf.sprintf "(-%.17g)" (-.v))
    else Buffer.add_string buf (Printf.sprintf "%.17g" v)
  | Lang.Vec a ->
    Buffer.add_char buf '[';
    Array.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (Printf.sprintf "%.17g" v))
      a;
    Buffer.add_char buf ']'
  | Lang.Prim ("neg", [ a ]) ->
    Buffer.add_string buf "(-";
    emit_expr buf a;
    Buffer.add_char buf ')'
  | Lang.Prim ("not", [ a ]) ->
    Buffer.add_string buf "(!";
    emit_expr buf a;
    Buffer.add_char buf ')'
  | Lang.Prim (name, [ a; b ]) when List.mem_assoc name infix_ops ->
    Buffer.add_char buf '(';
    emit_expr buf a;
    Buffer.add_string buf (Printf.sprintf " %s " (List.assoc name infix_ops));
    emit_expr buf b;
    Buffer.add_char buf ')'
  | Lang.Prim (name, args) ->
    Buffer.add_string buf name;
    Buffer.add_char buf '(';
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        emit_expr buf a)
      args;
    Buffer.add_char buf ')'

let rec emit_stmt buf indent (s : Lang.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Lang.Assign (x, e) ->
    Buffer.add_string buf (pad ^ x ^ " = ");
    emit_expr buf e;
    Buffer.add_string buf ";\n"
  | Lang.Call_stmt (dsts, f, args) ->
    Buffer.add_string buf (pad ^ String.concat ", " dsts ^ " = " ^ f ^ "(");
    List.iteri
      (fun i a ->
        if i > 0 then Buffer.add_string buf ", ";
        emit_expr buf a)
      args;
    Buffer.add_string buf ");\n"
  | Lang.Return es ->
    Buffer.add_string buf (pad ^ "return ");
    List.iteri
      (fun i e ->
        if i > 0 then Buffer.add_string buf ", ";
        emit_expr buf e)
      es;
    Buffer.add_string buf ";\n"
  | Lang.If (c, t, e) ->
    Buffer.add_string buf (pad ^ "if (");
    emit_expr buf c;
    Buffer.add_string buf ") {\n";
    List.iter (emit_stmt buf (indent + 2)) t;
    Buffer.add_string buf (pad ^ "}");
    if e <> [] then begin
      Buffer.add_string buf " else {\n";
      List.iter (emit_stmt buf (indent + 2)) e;
      Buffer.add_string buf (pad ^ "}")
    end;
    Buffer.add_char buf '\n'
  | Lang.While (c, body) ->
    Buffer.add_string buf (pad ^ "while (");
    emit_expr buf c;
    Buffer.add_string buf ") {\n";
    List.iter (emit_stmt buf (indent + 2)) body;
    Buffer.add_string buf (pad ^ "}\n")

let to_source (p : Lang.program) =
  let buf = Buffer.create 1024 in
  (* Emit the entry function first so the entry-point convention holds
     even when it is not named "main". *)
  let entry, rest =
    List.partition (fun f -> f.Lang.fname = p.Lang.main) p.Lang.funcs
  in
  List.iter
    (fun (f : Lang.func) ->
      Buffer.add_string buf
        (Printf.sprintf "def %s(%s) {\n" f.Lang.fname (String.concat ", " f.Lang.params));
      List.iter (emit_stmt buf 2) f.Lang.body;
      Buffer.add_string buf "}\n\n")
    (entry @ rest);
  Buffer.contents buf
