(** Concrete text syntax for the surface language.

    The paper's frontend is "a Python-embedded compiler … a user-invoked
    AST transformation"; this module is the analogous concrete-syntax
    frontend for our DSL, so batchable programs can live in plain source
    files:

    {v
    # Recursive Fibonacci
    def fib(n) {
      if (n <= 1) { return 1; }
      else {
        left = fib(n - 2);
        right = fib(n - 1);
        return left + right;
      }
    }
    v}

    Grammar (informally): a program is a list of [def] functions; the
    entry point is the function named [main], or the first function if
    none is. Statements are assignments [x = e;], multi-destination calls
    [a, b = f(e, e);], [if (e) {…} else {…}], [while (e) {…}] and
    [return e, e;]. Expressions have the usual precedence
    ([||] < [&&] < comparisons < [+ -] < [* /] < unary [- !]), with
    [f(e, …)] applying a primitive — or a program function, which is only
    legal as the right-hand side of a statement, since calls are control
    flow. Numeric literals, [\[1, 2, 3\]] vector literals, and [#]
    comments round it out. *)

type error = { line : int; col : int; message : string }

val string_of_error : error -> string

val parse_string : ?main:string -> string -> (Lang.program, error) result
(** Parse a whole program. [main] overrides the entry-point convention. *)

val parse_file : ?main:string -> string -> (Lang.program, error) result
(** Raises [Sys_error] if the file cannot be read. *)

val to_source : Lang.program -> string
(** Emit a program in the concrete syntax; [parse_string (to_source p)]
    reproduces [p] up to expression parenthesization. *)
