open Ir_util

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error ("Shape_infer: " ^ s))) fmt

let infer reg (p : Cfg.program) ~inputs =
  let shapes = ref Smap.empty in
  let changed = ref false in
  let lookup v = Smap.find_opt v !shapes in
  let assign v s =
    match lookup v with
    | None ->
      shapes := Smap.add v s !shapes;
      changed := true
    | Some s0 ->
      if not (Shape.equal s0 s) then
        err "conflicting shapes for %s: %s vs %s" v (Shape.to_string s0)
          (Shape.to_string s)
  in
  let entry = Cfg.entry_func p in
  if List.length entry.Cfg.params <> List.length inputs then
    err "entry %s wants %d inputs, got %d" entry.Cfg.name
      (List.length entry.Cfg.params) (List.length inputs);
  List.iter2 assign entry.Cfg.params inputs;
  let process_op fname op =
    match op with
    | Cfg.Const_op { dst; value } -> assign dst (Tensor.shape value)
    | Cfg.Mov { dst; src } -> Option.iter (assign dst) (lookup src)
    | Cfg.Prim_op { dst; prim; args } -> (
      match List.map lookup args with
      | arg_shapes when List.for_all Option.is_some arg_shapes ->
        let arg_shapes = List.map Option.get arg_shapes in
        let prim_impl = Prim.find_exn reg prim in
        (match prim_impl.Prim.shape arg_shapes with
        | s -> assign dst s
        | exception Prim.Shape_error msg -> err "in %s: %s" fname msg)
      | _ -> ())
    | Cfg.Call_op { dsts; func; args } -> (
      let callee = Cfg.find_func_exn p func in
      if List.length callee.Cfg.params <> List.length args then
        err "call to %s from %s: arity mismatch" func fname;
      if List.length callee.Cfg.result_vars <> List.length dsts then
        err "call to %s from %s: result count mismatch" func fname;
      List.iter2
        (fun param arg -> Option.iter (assign param) (lookup arg))
        callee.Cfg.params args;
      List.iter2
        (fun dst ret -> Option.iter (assign dst) (lookup ret))
        dsts callee.Cfg.result_vars)
  in
  let process_func (fname, (f : Cfg.func)) =
    Array.iter
      (fun (b : Cfg.block) ->
        List.iter (process_op fname) b.Cfg.ops;
        match b.Cfg.term with
        | Cfg.Branch { cond; _ } -> (
          match lookup cond with
          | Some s when Shape.rank s > 0 ->
            err "branch condition %s in %s has non-scalar shape %s" cond fname
              (Shape.to_string s)
          | Some _ | None -> ())
        | Cfg.Jump _ | Cfg.Return -> ())
      f.Cfg.blocks
  in
  let rec fixpoint () =
    changed := false;
    List.iter process_func p.Cfg.funcs;
    if !changed then fixpoint ()
  in
  fixpoint ();
  !shapes

let output_shapes reg p ~inputs =
  let shapes = infer reg p ~inputs in
  let entry = Cfg.entry_func p in
  List.map
    (fun ret ->
      match Smap.find_opt ret shapes with
      | Some s -> s
      | None -> err "result %s of entry %s has unresolved shape" ret entry.Cfg.name)
    entry.Cfg.result_vars
