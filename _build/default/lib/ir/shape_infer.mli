(** Interprocedural element-shape inference on the CFG.

    Assigns every reachable variable a static element shape (no batch
    dimension), mirroring XLA's static-shape requirement that motivates the
    paper's masking-style execution. Inference is a fixpoint: recursive
    functions get their result shapes from their base cases.

    The runtimes use the result to preallocate batched storage and to price
    bookkeeping traffic; variables left unresolved (possible only in dead
    or never-returning code) are allocated lazily instead. *)

exception Error of string

val infer :
  Prim.registry -> Cfg.program -> inputs:Shape.t list -> Shape.t Ir_util.Smap.t
(** [infer reg p ~inputs] maps (namespaced) variables to element shapes,
    seeding the entry function's parameters with [inputs]. Raises {!Error}
    on arity mismatch, conflicting assignments, a primitive shape error, or
    a non-scalar branch condition. *)

val output_shapes :
  Prim.registry -> Cfg.program -> inputs:Shape.t list -> Shape.t list
(** Element shapes of the entry function's results. Raises {!Error} if
    they cannot be resolved (e.g. no base case ever returns). *)
