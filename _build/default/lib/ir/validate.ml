module S = Set.Make (String)

let bad_ident name =
  String.contains name '/' || String.contains name '$' || String.length name = 0

let rec expr_errors reg fname errs (e : Lang.expr) =
  match e with
  | Lang.Var x ->
    if bad_ident x then
      errs := Printf.sprintf "%s: bad variable name %S" fname x :: !errs
  | Lang.Const _ | Lang.Vec _ -> ()
  | Lang.Prim (name, args) ->
    (match Prim.find reg name with
    | None -> errs := Printf.sprintf "%s: unknown primitive %S" fname name :: !errs
    | Some p ->
      if p.Prim.arity <> List.length args then
        errs :=
          Printf.sprintf "%s: primitive %S wants %d arguments, got %d" fname name
            p.Prim.arity (List.length args)
          :: !errs);
    List.iter (expr_errors reg fname errs) args

let dup_names names =
  let sorted = List.sort compare names in
  let rec dups = function
    | a :: (b :: _ as rest) -> if a = b then a :: dups rest else dups rest
    | _ -> []
  in
  List.sort_uniq compare (dups sorted)

let rec stmt_errors reg (p : Lang.program) fname arities errs (s : Lang.stmt) =
  let check_ident kind x =
    if bad_ident x then
      errs := Printf.sprintf "%s: bad %s name %S" fname kind x :: !errs
  in
  match s with
  | Lang.Assign (x, e) ->
    check_ident "variable" x;
    expr_errors reg fname errs e
  | Lang.Call_stmt (dsts, callee, args) ->
    List.iter (check_ident "destination") dsts;
    List.iter
      (fun d -> errs := Printf.sprintf "%s: duplicate call destination %S" fname d :: !errs)
      (dup_names dsts);
    List.iter (expr_errors reg fname errs) args;
    (match Lang.find_func p callee with
    | None -> errs := Printf.sprintf "%s: call to unknown function %S" fname callee :: !errs
    | Some f ->
      if List.length f.Lang.params <> List.length args then
        errs :=
          Printf.sprintf "%s: call to %S passes %d arguments for %d parameters" fname
            callee (List.length args)
            (List.length f.Lang.params)
          :: !errs;
      (match List.assoc_opt callee arities with
      | Some (Some n) when n <> List.length dsts ->
        errs :=
          Printf.sprintf "%s: call to %S binds %d results but it returns %d" fname callee
            (List.length dsts) n
          :: !errs
      | _ -> ()))
  | Lang.Return es -> List.iter (expr_errors reg fname errs) es
  | Lang.If (c, t, e) ->
    expr_errors reg fname errs c;
    List.iter (stmt_errors reg p fname arities errs) t;
    List.iter (stmt_errors reg p fname arities errs) e
  | Lang.While (c, body) ->
    expr_errors reg fname errs c;
    List.iter (stmt_errors reg p fname arities errs) body

let func_shape_errors (f : Lang.func) errs =
  List.iter
    (fun x ->
      if bad_ident x then
        errs := Printf.sprintf "%s: bad parameter name %S" f.Lang.fname x :: !errs)
    f.Lang.params;
  List.iter
    (fun d -> errs := Printf.sprintf "%s: duplicate parameter %S" f.Lang.fname d :: !errs)
    (dup_names f.Lang.params);
  let rec stmts_return stmts =
    match List.rev stmts with [] -> false | last :: _ -> stmt_returns last
  and stmt_returns = function
    | Lang.Return _ -> true
    | Lang.If (_, t, e) -> stmts_return t && stmts_return e
    | Lang.While _ | Lang.Assign _ | Lang.Call_stmt _ -> false
  in
  if not (stmts_return f.Lang.body) then
    errs :=
      Printf.sprintf "%s: control can reach the end of the body without returning"
        f.Lang.fname
      :: !errs

(* Must-defined forward dataflow over one CFG function. *)
let check_defined_before_use (f : Cfg.func) =
  let n = Array.length f.Cfg.blocks in
  let errs = ref [] in
  if n = 0 then [ Printf.sprintf "%s: empty function" f.Cfg.name ]
  else begin
    let all = S.of_list (Cfg.all_vars f) in
    let params = S.of_list f.Cfg.params in
    (* defined_in.(i): variables surely defined on entry to block i. *)
    let defined_in = Array.make n all in
    defined_in.(0) <- params;
    let preds = Array.make n [] in
    for i = 0 to n - 1 do
      List.iter (fun j -> preds.(j) <- i :: preds.(j)) (Cfg.successors f i)
    done;
    let block_out i start =
      List.fold_left
        (fun acc op -> S.union acc (S.of_list (Cfg.op_defs op)))
        start f.Cfg.blocks.(i).Cfg.ops
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = 1 to n - 1 do
        match preds.(i) with
        | [] -> ()  (* unreachable: keep ⊤, never reported *)
        | ps ->
          let inp =
            List.fold_left (fun acc p -> S.inter acc (block_out p defined_in.(p))) all ps
          in
          if not (S.equal inp defined_in.(i)) then begin
            defined_in.(i) <- inp;
            changed := true
          end
      done
    done;
    (* Reachability from entry, to avoid reporting dead blocks. *)
    let reachable = Array.make n false in
    let rec visit i =
      if not reachable.(i) then begin
        reachable.(i) <- true;
        List.iter visit (Cfg.successors f i)
      end
    in
    visit 0;
    for i = 0 to n - 1 do
      if reachable.(i) then begin
        let defined = ref defined_in.(i) in
        List.iter
          (fun op ->
            List.iter
              (fun u ->
                if not (S.mem u !defined) then
                  errs :=
                    Printf.sprintf "%s: variable %S may be used before definition (block %d)"
                      f.Cfg.name u i
                    :: !errs)
              (Cfg.op_uses op);
            defined := S.union !defined (S.of_list (Cfg.op_defs op)))
          f.Cfg.blocks.(i).Cfg.ops;
        List.iter
          (fun u ->
            if not (S.mem u !defined) then
              errs :=
                Printf.sprintf
                  "%s: variable %S may be used before definition (terminator of block %d)"
                  f.Cfg.name u i
                :: !errs)
          (Cfg.term_uses f f.Cfg.blocks.(i).Cfg.term)
      end
    done;
    List.sort_uniq compare !errs
  end

let check_program reg (p : Lang.program) =
  let errs = ref [] in
  (match Lang.find_func p p.Lang.main with
  | Some _ -> ()
  | None -> errs := Printf.sprintf "entry function %S not defined" p.Lang.main :: !errs);
  List.iter
    (fun d -> errs := Printf.sprintf "duplicate function name %S" d :: !errs)
    (dup_names (Lang.func_names p));
  List.iter
    (fun (f : Lang.func) ->
      if bad_ident f.Lang.fname then
        errs := Printf.sprintf "bad function name %S" f.Lang.fname :: !errs;
      func_shape_errors f errs)
    p.Lang.funcs;
  (* Return arities, where determinable. *)
  let arities =
    List.map
      (fun (f : Lang.func) ->
        match Lower_cfg.result_arity f with
        | n -> (f.Lang.fname, Some n)
        | exception Failure msg ->
          errs := msg :: !errs;
          (f.Lang.fname, None))
      p.Lang.funcs
  in
  List.iter
    (fun (f : Lang.func) ->
      List.iter (stmt_errors reg p f.Lang.fname arities errs) f.Lang.body)
    p.Lang.funcs;
  (* Only attempt lowering and the dataflow check when structurally sound. *)
  if !errs = [] then begin
    match Lower_cfg.lower p with
    | cfg ->
      List.iter
        (fun (_, f) -> errs := check_defined_before_use f @ !errs)
        cfg.Cfg.funcs
    | exception Failure msg -> errs := msg :: !errs
  end;
  match List.rev !errs with [] -> Ok () | msgs -> Error msgs

let check_exn reg p =
  match check_program reg p with
  | Ok () -> ()
  | Error msgs -> invalid_arg ("Validate: " ^ String.concat "; " msgs)
