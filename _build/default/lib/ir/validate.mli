(** Static validation of surface programs.

    [check_program reg p] collects every error it can find:
    - the entry function exists; function names are unique;
    - identifiers contain neither ['/'] nor ['$'] (reserved for the
      compiler's namespacing and generated variables);
    - parameter lists and call destination lists have no duplicates;
    - every call targets a known function with matching argument count and
      destination count (destination count = callee's return arity);
    - every function returns, all its returns have the same arity, and its
      top-level body ends in a [Return] (so control cannot fall off the
      end);
    - every primitive exists in [reg] with the right arity;
    - after lowering, every variable is defined before use along all
      reachable control-flow paths (a must-defined dataflow on the CFG).

    Returns [Ok ()] or [Error msgs]. *)

val check_program : Prim.registry -> Lang.program -> (unit, string list) result

val check_exn : Prim.registry -> Lang.program -> unit
(** Raises [Invalid_argument] with the concatenated messages. *)

val check_defined_before_use : Cfg.func -> string list
(** The CFG-level must-defined check on one function; returns error
    messages (exposed for testing). *)
