type t = Temp | Masked | Stacked

let to_string = function
  | Temp -> "temp"
  | Masked -> "masked"
  | Stacked -> "stacked"

let pp ppf c = Format.pp_print_string ppf (to_string c)
let equal (a : t) b = a = b
