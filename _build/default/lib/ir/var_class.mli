(** Storage classes assigned to program variables by the stack-IR compiler,
    per the paper's optimizations O2 and O3.

    - [Temp]: never live across a basic-block boundary; the batching
      system ignores it entirely (plain unmasked batched storage — its
      junk lanes are never read).
    - [Masked]: live across blocks but never needs to survive a
      potentially re-entrant call; a single top value per batch member,
      updated under the active mask.
    - [Stacked]: must survive re-entrant calls; gets a per-member stack
      with a cached top (optimization O4). *)

type t = Temp | Masked | Stacked

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
