lib/mcmc/diagnostics.ml: Array Float List Stdlib Tensor
