lib/mcmc/diagnostics.mli: Tensor
