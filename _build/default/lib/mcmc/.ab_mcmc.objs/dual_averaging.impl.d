lib/mcmc/dual_averaging.ml: Float Stdlib
