lib/mcmc/dual_averaging.mli:
