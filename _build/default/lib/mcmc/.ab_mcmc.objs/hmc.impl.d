lib/mcmc/hmc.ml: Array Dual_averaging Float Leapfrog Model Splitmix Stdlib Tensor
