lib/mcmc/hmc.mli: Model Splitmix Tensor
