lib/mcmc/hmc_dsl.ml: Array Counter_rng Lang Leapfrog Model Shape Stdlib Tensor
