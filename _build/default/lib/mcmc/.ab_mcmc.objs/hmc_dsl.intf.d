lib/mcmc/hmc_dsl.mli: Counter_rng Lang Model Shape Tensor
