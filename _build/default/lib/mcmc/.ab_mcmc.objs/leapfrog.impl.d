lib/mcmc/leapfrog.ml: Tensor
