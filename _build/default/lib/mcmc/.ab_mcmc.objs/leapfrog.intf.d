lib/mcmc/leapfrog.mli: Tensor
