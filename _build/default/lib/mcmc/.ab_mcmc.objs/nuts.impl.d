lib/mcmc/nuts.ml: Array Counter_rng Float Leapfrog Model Splitmix Stdlib Tensor
