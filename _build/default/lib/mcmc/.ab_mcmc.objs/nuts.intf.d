lib/mcmc/nuts.mli: Counter_rng Model Tensor
