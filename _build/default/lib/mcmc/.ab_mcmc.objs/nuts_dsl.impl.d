lib/mcmc/nuts_dsl.ml: Counter_rng Lang Model Nuts Prim Shape Tensor
