lib/mcmc/nuts_dsl.mli: Counter_rng Lang Model Nuts Prim Shape Tensor
