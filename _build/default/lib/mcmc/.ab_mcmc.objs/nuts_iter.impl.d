lib/mcmc/nuts_iter.ml: Array Float Leapfrog Model Nuts Splitmix Stdlib Tensor
