lib/mcmc/nuts_iter.mli: Model Nuts Splitmix Tensor
