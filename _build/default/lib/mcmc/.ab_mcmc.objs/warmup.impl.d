lib/mcmc/warmup.ml: Array Counter_rng Diagnostics Hmc Nuts Splitmix Tensor
