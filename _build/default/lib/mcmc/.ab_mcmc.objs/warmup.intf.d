lib/mcmc/warmup.mli: Model Nuts Tensor
