let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Diagnostics.mean: empty";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let autocovariance xs lag =
  let n = Array.length xs in
  if lag < 0 || lag >= n then invalid_arg "Diagnostics.autocovariance: bad lag";
  let m = mean xs in
  let acc = ref 0. in
  for i = 0 to n - 1 - lag do
    acc := !acc +. ((xs.(i) -. m) *. (xs.(i + lag) -. m))
  done;
  !acc /. float_of_int n

let ess xs =
  let n = Array.length xs in
  if n < 4 then float_of_int n
  else begin
    let c0 = autocovariance xs 0 in
    if c0 <= 0. then float_of_int n
    else begin
      (* Geyer initial positive sequence over pair sums. *)
      let rec sum_pairs lag acc =
        if lag + 1 >= n then acc
        else begin
          let pair = autocovariance xs lag +. autocovariance xs (lag + 1) in
          if pair <= 0. then acc else sum_pairs (lag + 2) (acc +. pair)
        end
      in
      let tail = sum_pairs 1 0. in
      let tau = 1. +. (2. *. tail /. c0) in
      float_of_int n /. Float.max tau 1.
    end
  end

let split_rhat chains =
  let halves =
    Array.to_list chains
    |> List.concat_map (fun c ->
           let n = Array.length c in
           if n < 4 then invalid_arg "Diagnostics.split_rhat: chains too short";
           let h = n / 2 in
           [ Array.sub c 0 h; Array.sub c (n - h) h ])
    |> Array.of_list
  in
  let m = Array.length halves in
  let n = float_of_int (Array.length halves.(0)) in
  let chain_means = Array.map mean halves in
  let chain_vars = Array.map variance halves in
  let grand_mean = mean chain_means in
  let b =
    n /. float_of_int (m - 1)
    *. Array.fold_left
         (fun acc mu -> acc +. ((mu -. grand_mean) *. (mu -. grand_mean)))
         0. chain_means
  in
  let w = mean chain_vars in
  if w <= 0. then 1.
  else Stdlib.sqrt (((n -. 1.) /. n *. w +. (b /. n)) /. w)

let column samples i = Array.map (fun s -> (Tensor.data s).(i)) samples

let chain_moments samples =
  match Array.length samples with
  | 0 -> invalid_arg "Diagnostics.chain_moments: empty"
  | n ->
    let d = Tensor.numel samples.(0) in
    let mean_t = Tensor.zeros [| d |] in
    Array.iter
      (fun s ->
        for i = 0 to d - 1 do
          (Tensor.data mean_t).(i) <- (Tensor.data mean_t).(i) +. (Tensor.data s).(i)
        done)
      samples;
    for i = 0 to d - 1 do
      (Tensor.data mean_t).(i) <- (Tensor.data mean_t).(i) /. float_of_int n
    done;
    let var_t = Tensor.zeros [| d |] in
    Array.iter
      (fun s ->
        for i = 0 to d - 1 do
          let dev = (Tensor.data s).(i) -. (Tensor.data mean_t).(i) in
          (Tensor.data var_t).(i) <- (Tensor.data var_t).(i) +. (dev *. dev)
        done)
      samples;
    for i = 0 to d - 1 do
      (Tensor.data var_t).(i) <- (Tensor.data var_t).(i) /. float_of_int n
    done;
    (mean_t, var_t)
