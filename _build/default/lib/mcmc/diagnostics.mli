(** MCMC convergence diagnostics: moments, effective sample size, and
    split R-hat. Backs the paper's motivation that "running large numbers
    of independent Markov chains [gives] more precise convergence
    diagnostics and uncertainty estimates" — and our statistical tests. *)

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; 0 for fewer than two points. *)

val autocovariance : float array -> int -> float
(** Biased (1/n) autocovariance at a lag. *)

val ess : float array -> float
(** Effective sample size by Geyer's initial positive sequence: sum
    consecutive autocorrelation pairs while positive. *)

val split_rhat : float array array -> float
(** Potential scale reduction over chains (each row one chain, equal
    lengths); each chain is split in half, so a single chain works too.
    Values near 1 indicate convergence. *)

val column : Tensor.t array -> int -> float array
(** Extract coordinate [i] from an array of rank-1 samples. *)

val chain_moments : Tensor.t array -> Tensor.t * Tensor.t
(** Per-coordinate mean and (biased) variance across an array of rank-1
    samples. *)
