type t = {
  target_accept : float;
  gamma : float;
  t0 : float;
  kappa : float;
  mu : float;
  mutable log_eps : float;
  mutable log_eps_bar : float;
  mutable h_bar : float;
  mutable m : int;
}

let create ?(target_accept = 0.8) ?(gamma = 0.05) ?(t0 = 10.) ?(kappa = 0.75) ~mu () =
  if target_accept <= 0. || target_accept >= 1. then
    invalid_arg "Dual_averaging.create: target_accept must be in (0,1)";
  { target_accept; gamma; t0; kappa; mu; log_eps = mu -. Stdlib.log 10.;
    log_eps_bar = 0.; h_bar = 0.; m = 0 }

let update t ~accept_stat =
  let a = Float.max 0. (Float.min 1. accept_stat) in
  t.m <- t.m + 1;
  let m = float_of_int t.m in
  let w = 1. /. (m +. t.t0) in
  t.h_bar <- ((1. -. w) *. t.h_bar) +. (w *. (t.target_accept -. a));
  t.log_eps <- t.mu -. (Stdlib.sqrt m /. t.gamma *. t.h_bar);
  let eta = m ** -.t.kappa in
  t.log_eps_bar <- (eta *. t.log_eps) +. ((1. -. eta) *. t.log_eps_bar)

let current_eps t = Stdlib.exp t.log_eps
let adapted_eps t = if t.m = 0 then Stdlib.exp t.log_eps else Stdlib.exp t.log_eps_bar
let iterations t = t.m
