(** Nesterov-style dual averaging for step-size adaptation
    (Hoffman & Gelman 2014, §3.2).

    Drives the acceptance statistic of an HMC/NUTS chain toward a target
    by adapting [log eps]; after warmup, {!adapted_eps} returns the
    averaged iterate to freeze for sampling. *)

type t

val create :
  ?target_accept:float ->
  ?gamma:float ->
  ?t0:float ->
  ?kappa:float ->
  mu:float ->
  unit ->
  t
(** Defaults: target 0.8, gamma 0.05, t0 10, kappa 0.75.
    [mu] is the shrinkage point, conventionally [log (10 * eps0)]. *)

val update : t -> accept_stat:float -> unit
(** Feed one iteration's acceptance statistic (clamped to [0,1]). *)

val current_eps : t -> float
(** The exploring step size for the next warmup iteration. *)

val adapted_eps : t -> float
(** The averaged step size to use after warmup. *)

val iterations : t -> int
