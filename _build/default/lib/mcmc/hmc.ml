type config = { eps : float; n_leapfrog : int; minv : Tensor.t option }

type result = { samples : Tensor.t array; accept_rate : float; final_q : Tensor.t }

let propose cfg ~model ~stream ~q =
  let d = (Tensor.shape q).(0) in
  let minv =
    match cfg.minv with Some m -> m | None -> Tensor.ones [| d |]
  in
  let z = Tensor.init [| d |] (fun _ -> Splitmix.Stream.normal stream) in
  let p = Tensor.div z (Tensor.sqrt minv) in
  let lj0 = Leapfrog.log_joint_mass ~logp:model.Model.logp ~minv ~q ~p in
  let q', p' =
    Leapfrog.steps_mass ~grad:model.Model.grad ~minv ~n:cfg.n_leapfrog ~eps:cfg.eps
      ~q ~p
  in
  let lj1 = Leapfrog.log_joint_mass ~logp:model.Model.logp ~minv ~q:q' ~p:p' in
  let log_accept = lj1 -. lj0 in
  let accept_prob =
    if Float.is_nan log_accept then 0. else Float.min 1. (Stdlib.exp log_accept)
  in
  let u = Splitmix.Stream.uniform stream in
  ((if u < accept_prob then q' else q), accept_prob)

let sample_chain cfg ~model ~stream ~q0 ~n_iter =
  let samples = Array.make n_iter q0 in
  let q = ref q0 in
  let accepted = ref 0. in
  for i = 0 to n_iter - 1 do
    let q', prob = propose cfg ~model ~stream ~q:!q in
    q := q';
    accepted := !accepted +. prob;
    samples.(i) <- q'
  done;
  { samples; accept_rate = !accepted /. float_of_int n_iter; final_q = !q }

let warmup_eps ?(target_accept = 0.8) ?(n_warmup = 200) ?minv ~model ~stream ~q0
    ~eps0 ~n_leapfrog () =
  let da =
    Dual_averaging.create ~target_accept ~mu:(Stdlib.log (10. *. eps0)) ()
  in
  let q = ref q0 in
  for _ = 1 to n_warmup do
    let cfg = { eps = Dual_averaging.current_eps da; n_leapfrog; minv } in
    let q', prob = propose cfg ~model ~stream ~q:!q in
    q := q';
    Dual_averaging.update da ~accept_stat:prob
  done;
  Dual_averaging.adapted_eps da
