(** Plain Hamiltonian Monte Carlo with a fixed path length.

    The simple cousin of NUTS: used as a statistical baseline in the test
    suite, as the workload for the dual-averaging warmup tests, and as a
    straight-line example program for the batching ablations. *)

type config = {
  eps : float;
  n_leapfrog : int;          (** leapfrog steps per proposal *)
  minv : Tensor.t option;    (** diagonal inverse mass; [None] = identity *)
}

type result = {
  samples : Tensor.t array;
  accept_rate : float;
  final_q : Tensor.t;
}

val sample_chain :
  config ->
  model:Model.t ->
  stream:Splitmix.Stream.t ->
  q0:Tensor.t ->
  n_iter:int ->
  result

val warmup_eps :
  ?target_accept:float ->
  ?n_warmup:int ->
  ?minv:Tensor.t ->
  model:Model.t ->
  stream:Splitmix.Stream.t ->
  q0:Tensor.t ->
  eps0:float ->
  n_leapfrog:int ->
  unit ->
  float
(** Run dual-averaging warmup and return the adapted step size (under the
    given inverse mass matrix, identity by default). *)
