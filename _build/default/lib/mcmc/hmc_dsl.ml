type params = { n_leapfrog : int }

let default_params = { n_leapfrog = 10 }

let program ?(params = default_params) () =
  let open Lang in
  let open Lang.Infix in
  let log_joint q p =
    prim "logp" [ q ] - (flt 0.5 * prim "dot" [ p; var "minv" * p ])
  in
  (* The integrator is a separate function: a call, but not a re-entrant
     one, so the stack compiler gives it no stacks. *)
  let leapfrog =
    func "leapfrog" ~params:[ "q"; "p"; "eps"; "minv" ]
      [
        assign "half" (flt 0.5 * var "eps");
        assign "g" (prim "grad" [ var "q" ]);
        assign "i" (flt 0.);
        while_
          (var "i" < flt (float_of_int params.n_leapfrog))
          [
            assign "ph" (var "p" + (var "half" * var "g"));
            assign "q" (var "q" + (var "eps" * (var "minv" * var "ph")));
            assign "g" (prim "grad" [ var "q" ]);
            assign "p" (var "ph" + (var "half" * var "g"));
            assign "i" (var "i" + flt 1.);
          ];
        return_ [ var "q"; var "p" ];
      ]
  in
  let chain =
    func "hmc_chain" ~params:[ "q0"; "eps"; "n_iter"; "n_burn"; "cnt0"; "minv" ]
      [
        assign "q" (var "q0");
        assign "cnt" (var "cnt0");
        assign "sum_q" (var "q0" * flt 0.);
        assign "sum_qsq" (var "q0" * flt 0.);
        assign "accepts" (flt 0.);
        assign "it" (flt 0.);
        while_
          (var "it" < var "n_iter")
          [
            assign "z0" (prim "normal_like" [ var "q"; var "cnt" ]);
            assign "p" (var "z0" / prim "sqrt" [ var "minv" ]);
            assign "cnt" (var "cnt" + flt 1.);
            assign "lj0" (log_joint (var "q") (var "p"));
            call [ "q1"; "p1" ] "leapfrog" [ var "q"; var "p"; var "eps"; var "minv" ];
            assign "lj1" (log_joint (var "q1") (var "p1"));
            assign "u" (prim "uniform" [ var "cnt" ]);
            assign "cnt" (var "cnt" + flt 1.);
            assign "accept" (prim "lt" [ var "u"; prim "exp" [ var "lj1" - var "lj0" ] ]);
            assign "q" (prim "select" [ var "accept"; var "q1"; var "q" ]);
            assign "accepts" (var "accepts" + var "accept");
            if_
              (var "it" >= var "n_burn")
              [
                assign "sum_q" (var "sum_q" + var "q");
                assign "sum_qsq" (var "sum_qsq" + (var "q" * var "q"));
              ]
              [];
            assign "it" (var "it" + flt 1.);
          ];
        return_ [ var "q"; var "sum_q"; var "sum_qsq"; var "cnt"; var "accepts" ];
      ]
  in
  Lang.program ~main:"hmc_chain" [ chain; leapfrog ]

let input_shapes ~model =
  [
    [| model.Model.dim |]; Shape.scalar; Shape.scalar; Shape.scalar; Shape.scalar;
    [| model.Model.dim |];
  ]

let inputs ?minv ~q0 ~eps ~n_iter ~n_burn ~batch () =
  let z = batch in
  let minv = match minv with Some m -> m | None -> Tensor.ones (Tensor.shape q0) in
  [
    Tensor.broadcast_rows q0 z;
    Tensor.full [| z |] eps;
    Tensor.full [| z |] (float_of_int n_iter);
    Tensor.full [| z |] (float_of_int n_burn);
    Tensor.zeros [| z |];
    Tensor.broadcast_rows minv z;
  ]

type reference_result = {
  final_q : Tensor.t;
  final_counter : int;
  accepts : float;
  sum_q : Tensor.t;
  sum_qsq : Tensor.t;
}

let reference_chain ?(params = default_params) ?minv ~model ~key ~member ~q0 ~eps
    ~n_iter ~n_burn () =
  let d = (Tensor.shape q0).(0) in
  let minv = match minv with Some m -> m | None -> Tensor.ones [| d |] in
  let sqrt_minv = Tensor.sqrt minv in
  let log_joint q p =
    model.Model.logp q -. (0.5 *. Tensor.item (Tensor.dot p (Tensor.mul minv p)))
  in
  let q = ref q0 and cnt = ref 0 in
  let accepts = ref 0. in
  let sum_q = ref (Tensor.mul_scalar q0 0.) in
  let sum_qsq = ref (Tensor.mul_scalar q0 0.) in
  for it = 0 to n_iter - 1 do
    let z =
      Tensor.init [| d |] (fun idx ->
          Counter_rng.normal key ~member ~counter:!cnt ~slot:idx.(0))
    in
    let p = Tensor.div z sqrt_minv in
    incr cnt;
    let lj0 = log_joint !q p in
    let q1, p1 =
      Leapfrog.steps_mass ~grad:model.Model.grad ~minv ~n:params.n_leapfrog ~eps
        ~q:!q ~p
    in
    let lj1 = log_joint q1 p1 in
    let u = Counter_rng.uniform key ~member ~counter:!cnt ~slot:0 in
    incr cnt;
    let accept = if u < Stdlib.exp (lj1 -. lj0) then 1. else 0. in
    if accept > 0. then q := q1;
    accepts := !accepts +. accept;
    if it >= n_burn then begin
      sum_q := Tensor.add !sum_q !q;
      sum_qsq := Tensor.add !sum_qsq (Tensor.mul !q !q)
    end
  done;
  {
    final_q = !q;
    final_counter = !cnt;
    accepts = !accepts;
    sum_q = !sum_q;
    sum_qsq = !sum_qsq;
  }
