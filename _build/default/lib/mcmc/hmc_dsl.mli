(** Hamiltonian Monte Carlo written in the autobatching surface language.

    NUTS exercises recursion; this program exercises the other paper
    claim: a program with (non-re-entrant) function calls and loops but no
    recursion compiles to a stack program with {e zero} stacked variables
    — program-counter autobatching then matches local static autobatching
    while still batching across the call (§3, last optimization note).
    Verified in the test suite via {!Stack_ir.stats}.

    Program signature:
    {v
    hmc_chain(q0 : [d], eps : [], n_iter : [], n_burn : [], cnt0 : [],
              minv : [d])
      -> (q : [d], sum_q : [d], sum_qsq : [d], cnt : [], accepts : [])
    v}

    As with {!Nuts_dsl}, a counter-based reference implementation
    ({!reference_chain}) matches the batched program bitwise. *)

type params = { n_leapfrog : int }

val default_params : params
(** 10 leapfrog steps per proposal. *)

val program : ?params:params -> unit -> Lang.program

val input_shapes : model:Model.t -> Shape.t list

val inputs :
  ?minv:Tensor.t ->
  q0:Tensor.t ->
  eps:float ->
  n_iter:int ->
  n_burn:int ->
  batch:int ->
  unit ->
  Tensor.t list

type reference_result = {
  final_q : Tensor.t;
  final_counter : int;
  accepts : float;     (** accepted proposals (all iterations) *)
  sum_q : Tensor.t;    (** post-burn accumulators, as the program returns *)
  sum_qsq : Tensor.t;
}

val reference_chain :
  ?params:params ->
  ?minv:Tensor.t ->
  model:Model.t ->
  key:Counter_rng.key ->
  member:int ->
  q0:Tensor.t ->
  eps:float ->
  n_iter:int ->
  n_burn:int ->
  unit ->
  reference_result
