let kinetic p = 0.5 *. Tensor.item (Tensor.dot p p)

let kinetic_mass ~minv p = 0.5 *. Tensor.item (Tensor.dot p (Tensor.mul minv p))

let log_joint ~logp ~q ~p = logp q -. kinetic p

let log_joint_mass ~logp ~minv ~q ~p = logp q -. kinetic_mass ~minv p

let steps_mass ~grad ~minv ~n ~eps ~q ~p =
  if n <= 0 then invalid_arg "Leapfrog.steps: n must be positive";
  let halfeps = 0.5 *. eps in
  let q = ref q and p = ref p in
  let g = ref (grad !q) in
  for _ = 1 to n do
    let p_half = Tensor.add !p (Tensor.mul_scalar !g halfeps) in
    q := Tensor.add !q (Tensor.mul_scalar (Tensor.mul minv p_half) eps);
    g := grad !q;
    p := Tensor.add p_half (Tensor.mul_scalar !g halfeps)
  done;
  (!q, !p)

let steps ~grad ~n ~eps ~q ~p =
  (* Multiplying by an exact 1.0 is an IEEE identity, so delegating keeps
     the historical identity-mass path bitwise unchanged. *)
  steps_mass ~grad ~minv:(Tensor.ones (Tensor.shape q)) ~n ~eps ~q ~p
