(** The leapfrog (Störmer–Verlet) integrator for Hamiltonian dynamics with
    identity mass matrix.

    The step size carries the integration direction in its sign. The
    arithmetic is written to match {!Nuts_dsl}'s generated program
    operation-for-operation, so reference and autobatched samplers agree
    bitwise. *)

val steps :
  grad:(Tensor.t -> Tensor.t) ->
  n:int ->
  eps:float ->
  q:Tensor.t ->
  p:Tensor.t ->
  Tensor.t * Tensor.t
(** [n] full leapfrog steps from [(q, p)] with identity mass; returns the
    new state. Uses [n + 1] gradient evaluations (no caching across
    calls). Bitwise equal to {!steps_mass} with a unit [minv]. *)

val steps_mass :
  grad:(Tensor.t -> Tensor.t) ->
  minv:Tensor.t ->
  n:int ->
  eps:float ->
  q:Tensor.t ->
  p:Tensor.t ->
  Tensor.t * Tensor.t
(** As {!steps} with a diagonal inverse mass matrix [minv] (the estimated
    posterior variances): positions advance along the velocity
    [minv ⊙ p]. *)

val kinetic : Tensor.t -> float
(** [0.5 * p·p] (identity mass). *)

val kinetic_mass : minv:Tensor.t -> Tensor.t -> float
(** [0.5 * p·(minv ⊙ p)]. *)

val log_joint : logp:(Tensor.t -> float) -> q:Tensor.t -> p:Tensor.t -> float
(** [logp q - 0.5 p·p] — the negative Hamiltonian (identity mass). *)

val log_joint_mass :
  logp:(Tensor.t -> float) -> minv:Tensor.t -> q:Tensor.t -> p:Tensor.t -> float
