type params = {
  max_depth : int;
  leaf_steps : int;
  delta_max : float;
  variant : Nuts.variant;
}

let default_params =
  { max_depth = 10; leaf_steps = 4; delta_max = 1000.; variant = Nuts.Slice }

let params_of_config (c : Nuts.config) =
  {
    max_depth = c.Nuts.max_depth;
    leaf_steps = c.Nuts.leaf_steps;
    delta_max = c.Nuts.delta_max;
    variant = c.Nuts.variant;
  }

let program ?(params = default_params) () =
  let open Lang in
  let open Lang.Infix in
  (* [leaf_steps] leapfrog steps; mirrors Leapfrog.steps. *)
  let leaf =
    func "leaf" ~params:[ "q"; "p"; "v"; "minv" ]
      [
        assign "halfv" (flt 0.5 * var "v");
        assign "g" (prim "grad" [ var "q" ]);
        assign "i" (flt 0.);
        while_
          (var "i" < flt (float_of_int params.leaf_steps))
          [
            assign "ph" (var "p" + (var "halfv" * var "g"));
            assign "q" (var "q" + (var "v" * (var "minv" * var "ph")));
            assign "g" (prim "grad" [ var "q" ]);
            assign "p" (var "ph" + (var "halfv" * var "g"));
            assign "i" (var "i" + flt 1.);
          ];
        return_ [ var "q"; var "p" ];
      ]
  in
  (* log_joint as an expression: logp(q) - 0.5 * p·(minv ⊙ p). *)
  let log_joint q p =
    prim "logp" [ q ] - (flt 0.5 * prim "dot" [ p; var "minv" * p ])
  in
  let no_uturn s2 =
    (* s2 * [ddq·(minv⊙pm) >= 0] * [ddq·(minv⊙pp) >= 0]; expects ddq bound. *)
    s2
    * prim "ge" [ prim "dot" [ var "ddq"; var "minv" * var "pm" ]; flt 0. ]
    * prim "ge" [ prim "dot" [ var "ddq"; var "minv" * var "pp" ]; flt 0. ]
  in
  (* The slice variant thresholds leaves against the slice variable
     ("logu"); the multinomial variant weighs leaves by their joint
     density relative to the trajectory start ("lj0" travels in the same
     parameter slot). *)
  let slice =
    match params.variant with Nuts.Slice -> true | Nuts.Multinomial -> false
  in
  let aux_param = if slice then "logu" else "lj0" in
  let leaf_stats =
    if slice then
      [
        assign "n1" (prim "le" [ var "logu"; var "lj" ]);
        assign "s1" (prim "lt" [ var "logu"; var "lj" + flt params.delta_max ]);
      ]
    else
      [
        assign "n1" (var "lj" - var "lj0");
        assign "s1" (prim "gt" [ var "n1"; flt (-.params.delta_max) ]);
      ]
  in
  let combine_weights =
    if slice then
      [
        assign "prob" (var "n2" / (var "n1" + var "n2"));
        assign "prop1"
          (prim "select"
             [ prim "lt" [ var "ua"; var "prob" ]; var "prop2"; var "prop1" ]);
        assign "ddq" (var "qp" - var "qm");
        assign "s1" (no_uturn (var "s2"));
        assign "n1" (var "n1" + var "n2");
      ]
    else
      [
        assign "prob"
          (prim "exp" [ var "n2" - prim "logaddexp" [ var "n1"; var "n2" ] ]);
        assign "prop1"
          (prim "select"
             [ prim "lt" [ var "ua"; var "prob" ]; var "prop2"; var "prop1" ]);
        assign "ddq" (var "qp" - var "qm");
        assign "s1" (no_uturn (var "s2"));
        assign "n1" (prim "logaddexp" [ var "n1"; var "n2" ]);
      ]
  in
  let build_tree =
    func "build_tree" ~params:[ "q"; "p"; aux_param; "v"; "depth"; "cnt"; "minv" ]
      [
        if_
          (var "depth" <= flt 0.)
          ([
             call [ "q1"; "p1" ] "leaf" [ var "q"; var "p"; var "v"; var "minv" ];
             assign "lj" (log_joint (var "q1") (var "p1"));
           ]
          @ leaf_stats
          @ [
              return_
                [ var "q1"; var "p1"; var "q1"; var "p1"; var "q1"; var "n1";
                  var "s1"; var "cnt" ];
            ])
          [
            call [ "qm"; "pm"; "qp"; "pp"; "prop1"; "n1"; "s1"; "cnt" ] "build_tree"
              [ var "q"; var "p"; var aux_param; var "v"; var "depth" - flt 1.;
                var "cnt"; var "minv" ];
            if_ (var "s1" > flt 0.)
              ([
                 if_ (var "v" < flt 0.)
                   [
                     call [ "qm"; "pm"; "j1"; "j2"; "prop2"; "n2"; "s2"; "cnt" ]
                       "build_tree"
                       [ var "qm"; var "pm"; var aux_param; var "v";
                         var "depth" - flt 1.; var "cnt"; var "minv" ];
                   ]
                   [
                     call [ "j1"; "j2"; "qp"; "pp"; "prop2"; "n2"; "s2"; "cnt" ]
                       "build_tree"
                       [ var "qp"; var "pp"; var aux_param; var "v";
                         var "depth" - flt 1.; var "cnt"; var "minv" ];
                   ];
                 assign "ua" (prim "uniform" [ var "cnt" ]);
                 assign "cnt" (var "cnt" + flt 1.);
               ]
              @ combine_weights)
              [];
            return_
              [ var "qm"; var "pm"; var "qp"; var "pp"; var "prop1"; var "n1";
                var "s1"; var "cnt" ];
          ];
      ]
  in
  let trajectory_prelude =
    if slice then
      [
        assign "lj0" (log_joint (var "q") (var "p0"));
        assign "e" (prim "exponential" [ var "cnt" ]);
        assign "cnt" (var "cnt" + flt 1.);
        assign "logu" (var "lj0" - var "e");
      ]
    else [ assign "lj0" (log_joint (var "q") (var "p0")) ]
  in
  (* Initial tree weight: one in-slice point (count 1) for slice; the
     initial point's relative log-weight (0) for multinomial. *)
  let n_init = if slice then 1. else 0. in
  let swap_prob =
    if slice then prim "min" [ flt 1.; var "n2" / var "n" ]
    else prim "min" [ flt 1.; prim "exp" [ var "n2" - var "n" ] ]
  in
  let n_update =
    if slice then assign "n" (var "n" + var "n2")
    else assign "n" (prim "logaddexp" [ var "n"; var "n2" ])
  in
  let trajectory =
    func "trajectory" ~params:[ "q"; "eps"; "cnt"; "minv" ]
      ([
         assign "z0" (prim "normal_like" [ var "q"; var "cnt" ]);
         assign "p0" (var "z0" / prim "sqrt" [ var "minv" ]);
         assign "cnt" (var "cnt" + flt 1.);
       ]
      @ trajectory_prelude
      @ [
        assign "qm" (var "q");
        assign "pm" (var "p0");
        assign "qp" (var "q");
        assign "pp" (var "p0");
        assign "prop" (var "q");
        assign "n" (flt n_init);
        assign "s" (flt 1.);
        assign "depth" (flt 0.);
        while_
          (var "s" > flt 0. && var "depth" < flt (float_of_int params.max_depth))
          [
            assign "u" (prim "uniform" [ var "cnt" ]);
            assign "cnt" (var "cnt" + flt 1.);
            assign "dir"
              (prim "select" [ prim "lt" [ var "u"; flt 0.5 ]; flt (-1.); flt 1. ]);
            assign "v" (var "dir" * var "eps");
            if_ (var "dir" < flt 0.)
              [
                call [ "qm"; "pm"; "j1"; "j2"; "prop2"; "n2"; "s2"; "cnt" ]
                  "build_tree"
                  [ var "qm"; var "pm"; var aux_param; var "v"; var "depth";
                    var "cnt"; var "minv" ];
              ]
              [
                call [ "j1"; "j2"; "qp"; "pp"; "prop2"; "n2"; "s2"; "cnt" ]
                  "build_tree"
                  [ var "qp"; var "pp"; var aux_param; var "v"; var "depth";
                    var "cnt"; var "minv" ];
              ];
            if_ (var "s2" > flt 0.)
              [
                assign "ua" (prim "uniform" [ var "cnt" ]);
                assign "cnt" (var "cnt" + flt 1.);
                assign "prob" swap_prob;
                assign "prop"
                  (prim "select"
                     [ prim "lt" [ var "ua"; var "prob" ]; var "prop2"; var "prop" ]);
              ]
              [];
            n_update;
            assign "ddq" (var "qp" - var "qm");
            assign "s" (no_uturn (var "s2"));
            assign "depth" (var "depth" + flt 1.);
          ];
        return_ [ var "prop"; var "cnt" ];
      ])
  in
  let chain =
    func "nuts_chain" ~params:[ "q0"; "eps"; "n_iter"; "n_burn"; "cnt0"; "minv" ]
      [
        assign "q" (var "q0");
        assign "cnt" (var "cnt0");
        assign "sum_q" (var "q0" * flt 0.);
        assign "sum_qsq" (var "q0" * flt 0.);
        assign "it" (flt 0.);
        while_
          (var "it" < var "n_iter")
          [
            call [ "q"; "cnt" ] "trajectory"
              [ var "q"; var "eps"; var "cnt"; var "minv" ];
            if_
              (var "it" >= var "n_burn")
              [
                assign "sum_q" (var "sum_q" + var "q");
                assign "sum_qsq" (var "sum_qsq" + (var "q" * var "q"));
              ]
              [];
            assign "it" (var "it" + flt 1.);
          ];
        return_ [ var "q"; var "sum_q"; var "sum_qsq"; var "cnt" ];
      ]
  in
  Lang.program ~main:"nuts_chain" [ chain; trajectory; build_tree; leaf ]

let setup ?(seed = 0x5EEDL) ~model () =
  let reg = Prim.standard ~seed () in
  Model.register_prims reg model;
  (reg, Counter_rng.key seed)

let input_shapes ~model =
  [
    [| model.Model.dim |]; Shape.scalar; Shape.scalar; Shape.scalar; Shape.scalar;
    [| model.Model.dim |];
  ]

let inputs ?minv ~q0 ~eps ~n_iter ~n_burn ~batch () =
  let z = batch in
  let minv =
    match minv with Some m -> m | None -> Tensor.ones (Tensor.shape q0)
  in
  [
    Tensor.broadcast_rows q0 z;
    Tensor.full [| z |] eps;
    Tensor.full [| z |] (float_of_int n_iter);
    Tensor.full [| z |] (float_of_int n_burn);
    Tensor.zeros [| z |];
    Tensor.broadcast_rows minv z;
  ]
