(** NUTS written in the autobatching surface language — the paper's
    centrepiece workload ("the standard presentation is a complex
    recursive function, prohibitively difficult to batch by hand").

    The generated program contains the recursive [build_tree] of Hoffman &
    Gelman's Algorithm 3 (with the paper's multi-step leaves), a trajectory
    doubling loop, and an outer chain loop; the batching runtimes do the
    rest mechanically. Every expression mirrors {!Nuts}, so a chain run
    under either VM is bitwise identical to the reference sampler with the
    same RNG key and member index.

    Program signature:
    {v
    nuts_chain(q0 : [d], eps : [], n_iter : [], n_burn : [], cnt0 : [],
               minv : [d])
      -> (q : [d], sum_q : [d], sum_qsq : [d], cnt : [])
    v}
    [minv] is the diagonal inverse mass matrix (pass ones for identity —
    the identity is bitwise-exact, see {!Nuts.config}).
    [sum_q]/[sum_qsq] accumulate the position and its square after each
    trajectory with index ≥ [n_burn] — enough for posterior means and
    variances without per-iteration output storage. *)

type params = {
  max_depth : int;
  leaf_steps : int;
  delta_max : float;
  variant : Nuts.variant;  (** the paper's slice sampler, or multinomial *)
}

val default_params : params
(** max_depth 10, leaf_steps 4 (paper §4.1), delta_max 1000, slice. *)

val program : ?params:params -> unit -> Lang.program

val params_of_config : Nuts.config -> params
(** Drop the step size (a runtime input of the generated program). *)

val setup : ?seed:int64 -> model:Model.t -> unit -> Prim.registry * Counter_rng.key
(** A standard registry extended with the model's [logp]/[grad] primitives,
    plus the RNG key that {!Nuts} must use to reproduce the same chains. *)

val input_shapes : model:Model.t -> Shape.t list
(** Element shapes of the six program inputs, for compilation. *)

val inputs :
  ?minv:Tensor.t ->
  q0:Tensor.t ->
  eps:float ->
  n_iter:int ->
  n_burn:int ->
  batch:int ->
  unit ->
  Tensor.t list
(** Build the batched input tensors: [q0] (shape [[d]]) and [minv]
    (default ones) are shared by all chains, counters start at 0. *)
