(** Iterative (non-recursive) NUTS.

    The paper's related-work section (§5) notes that NUTS has been
    manually rewritten in non-recursive form (Phan & Pradhan 2019; Lao &
    Dillon 2019) precisely so it can run on accelerators *without* an
    autobatching system — at the cost of exactly the labor-intensive
    transformation program-counter autobatching performs mechanically.
    This module is that manual rewrite: the doubling tree is explored with
    an explicit iteration over leaves, keeping O(max_depth) stored states
    (the standard trick: leaf 2k's merge partners are determined by the
    binary representation of k).

    It is used as an independent statistical cross-check of the recursive
    sampler and as the repository's exhibit of what the autobatcher saves
    a user from writing by hand. It matches the recursive sampler in
    distribution, not bitwise (its RNG consumption order necessarily
    differs). *)

type config = { eps : float; max_depth : int; leaf_steps : int; delta_max : float }

val config_of_nuts : Nuts.config -> config

type chain_result = {
  samples : Tensor.t array;
  final_q : Tensor.t;
  grad_evals : int;
}

val sample_chain :
  config ->
  model:Model.t ->
  stream:Splitmix.Stream.t ->
  q0:Tensor.t ->
  n_iter:int ->
  chain_result
