type result = { eps : float; minv : Tensor.t; q : Tensor.t; window_draws : int }

let regularized_variances samples =
  let n = Array.length samples in
  let _, var = Diagnostics.chain_moments samples in
  let nf = float_of_int n in
  let shrink = nf /. (nf +. 5.) in
  Tensor.map (fun v -> (shrink *. v) +. (1e-3 *. (1. -. shrink))) var

let run ?(seed = 0x3A9EL) ?(n_fast = 150) ?(n_window = 200) ?(target_accept = 0.8)
    ?(variant = Nuts.Slice) ~model ~q0 () =
  let stream = Splitmix.Stream.create seed in
  let leaf_steps = (Nuts.default_config ~eps:1. ()).Nuts.leaf_steps in
  (* Phase 1: step size under the identity metric. *)
  let eps0 = Nuts.find_reasonable_eps ~seed ~model ~q0 () in
  let eps1 =
    Hmc.warmup_eps ~target_accept ~n_warmup:n_fast ~model ~stream ~q0 ~eps0
      ~n_leapfrog:leaf_steps ()
  in
  (* Phase 2: variance window with the reference sampler. *)
  let cfg1 = Nuts.default_config ~variant ~eps:eps1 () in
  let key = Counter_rng.key (Splitmix.Stream.next_int64 stream) in
  let window = Nuts.sample_chain cfg1 ~model ~key ~member:0 ~q0 ~n_iter:n_window in
  (* Discard the first quarter of the window as settling time. *)
  let keep_from = n_window / 4 in
  let kept = Array.sub window.Nuts.samples keep_from (n_window - keep_from) in
  let minv = regularized_variances kept in
  let q1 = window.Nuts.final_q in
  (* Phase 3: step size under the adapted metric. *)
  let eps =
    Hmc.warmup_eps ~target_accept ~n_warmup:n_fast ~minv ~model ~stream ~q0:q1
      ~eps0:eps1 ~n_leapfrog:leaf_steps ()
  in
  { eps; minv; q = q1; window_draws = Array.length kept }
