(** Stan-style warmup: joint adaptation of the leapfrog step size and a
    diagonal inverse mass matrix.

    Three phases, a simplified version of Stan's windowed schedule:

    + fast: dual-average the step size under the identity mass
      (initialized by {!Nuts.find_reasonable_eps});
    + window: run the reference NUTS sampler and estimate per-coordinate
      posterior variances from the window's draws, regularized toward the
      identity as Stan does ([n/(n+5)·var + 5/(n+5)·1e-3]);
    + fast: re-tune the step size under the adapted mass.

    The result plugs directly into {!Nuts.config} ([mass_minv]) and
    {!Nuts_dsl.inputs} ([minv]) — the autobatched sampler then runs with
    the adapted metric on every chain. *)

type result = {
  eps : float;          (** adapted step size *)
  minv : Tensor.t;      (** adapted diagonal inverse mass (variances) *)
  q : Tensor.t;         (** last warmup position, a warm start *)
  window_draws : int;   (** draws used for the variance estimate *)
}

val run :
  ?seed:int64 ->
  ?n_fast:int ->
  ?n_window:int ->
  ?target_accept:float ->
  ?variant:Nuts.variant ->
  model:Model.t ->
  q0:Tensor.t ->
  unit ->
  result
(** Defaults: 150 fast iterations per step-size phase, a 200-draw variance
    window, 0.8 target acceptance, slice variant. *)
