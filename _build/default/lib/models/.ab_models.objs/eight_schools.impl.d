lib/models/eight_schools.ml: Array List Model Stdlib Tensor
