lib/models/eight_schools.mli: Model Tensor
