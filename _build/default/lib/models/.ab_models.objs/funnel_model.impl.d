lib/models/funnel_model.ml: Array Float List Model Printf Splitmix Stdlib Tensor
