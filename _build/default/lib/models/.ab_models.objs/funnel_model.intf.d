lib/models/funnel_model.mli: Model Splitmix Tensor
