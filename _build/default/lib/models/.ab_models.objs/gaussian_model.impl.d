lib/models/gaussian_model.ml: Array Cholesky Float Model Printf Splitmix Stdlib Tensor
