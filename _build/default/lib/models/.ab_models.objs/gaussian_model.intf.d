lib/models/gaussian_model.mli: Model Splitmix Tensor
