lib/models/logistic_model.ml: Array Model Printf Splitmix Stdlib Tensor
