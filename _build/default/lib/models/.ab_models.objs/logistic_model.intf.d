lib/models/logistic_model.mli: Model Tensor
