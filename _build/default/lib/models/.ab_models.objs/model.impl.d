lib/models/model.ml: Array Float List Prim Printf Shape Splitmix Tensor
