lib/models/model.mli: Prim Tensor
