type t = { model : Model.t; y : float array; sigma : float array }

let dim = 10
let n_schools = 8
let mu_sd = 25.
let tau_scale = 5.

let create () =
  let y = [| 28.; 8.; -3.; 7.; -1.; 1.; 18.; 12. |] in
  let sigma = [| 15.; 10.; 16.; 11.; 9.; 11.; 10.; 18. |] in
  let logp q =
    let d = Tensor.data q in
    let mu = d.(0) and log_tau = d.(1) in
    let tau = Stdlib.exp log_tau in
    let acc = ref 0. in
    for j = 0 to n_schools - 1 do
      let t = d.(2 + j) in
      let r = y.(j) -. mu -. (tau *. t) in
      (* Likelihood and the standardized effect's prior (constants
         dropped: the density is unnormalized). *)
      acc := !acc -. (0.5 *. r *. r /. (sigma.(j) *. sigma.(j))) -. (0.5 *. t *. t)
    done;
    (* mu prior, half-Cauchy(tau_scale) on tau, log Jacobian of exp. *)
    !acc
    -. (0.5 *. mu *. mu /. (mu_sd *. mu_sd))
    -. Stdlib.log1p (tau /. tau_scale *. (tau /. tau_scale))
    +. log_tau
  in
  let grad q =
    let d = Tensor.data q in
    let mu = d.(0) and log_tau = d.(1) in
    let tau = Stdlib.exp log_tau in
    let out = Array.make dim 0. in
    let dmu = ref 0. and dlt = ref 0. in
    for j = 0 to n_schools - 1 do
      let t = d.(2 + j) in
      let w = 1. /. (sigma.(j) *. sigma.(j)) in
      let r = y.(j) -. mu -. (tau *. t) in
      dmu := !dmu +. (r *. w);
      dlt := !dlt +. (r *. w *. t *. tau);
      out.(2 + j) <- (r *. w *. tau) -. t
    done;
    let u = tau /. tau_scale in
    out.(0) <- !dmu -. (mu /. (mu_sd *. mu_sd));
    out.(1) <- !dlt -. (2. *. u *. u /. (1. +. (u *. u))) +. 1.;
    Tensor.create [| dim |] out
  in
  let logp_batch qs =
    let z = Tensor.nrows qs in
    Tensor.init [| z |] (fun idx -> logp (Tensor.slice_row qs idx.(0)))
  in
  let grad_batch qs =
    let z = Tensor.nrows qs in
    Tensor.stack_rows (List.init z (fun b -> grad (Tensor.slice_row qs b)))
  in
  let model =
    {
      Model.name = "eight-schools";
      dim;
      logp;
      grad;
      logp_batch;
      grad_batch;
      logp_flops = 90.;
      grad_flops = 130.;
    }
  in
  { model; y; sigma }

let school_effects q =
  let d = Tensor.data q in
  let mu = d.(0) and tau = Stdlib.exp d.(1) in
  Tensor.init [| n_schools |] (fun idx -> mu +. (tau *. d.(2 + idx.(0))))
