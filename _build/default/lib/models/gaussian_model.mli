(** The paper's first test problem: a correlated multivariate Gaussian.

    Covariance [Σ_ij = rho^|i-j|] (an AR(1)-style correlation band), mean
    zero. The density and gradient use the precision matrix computed by
    Cholesky factorization; {!sample} draws exact samples through the
    Cholesky factor, giving the statistical tests a ground truth. *)

type t = {
  model : Model.t;
  rho : float;
  covariance : Tensor.t;      (** [dim; dim] *)
  precision : Tensor.t;       (** Σ⁻¹ *)
  chol_factor : Tensor.t;     (** lower L with L Lᵀ = Σ *)
  log_det : float;            (** log det Σ *)
}

val create : ?rho:float -> ?scales:float array -> dim:int -> unit -> t
(** Default [rho = 0.7]; the paper's experiment uses [dim = 100].
    [scales] gives per-coordinate standard deviations
    ([Σ = D R D] with [D = diag scales]) — an anisotropic target for
    exercising mass-matrix adaptation. Default: all ones. *)

val sample : t -> Splitmix.Stream.t -> Tensor.t
(** One exact draw from the target, shape [[dim]]. *)

val marginal_variance : t -> int -> float
(** Σ_ii (= 1 for the correlation structure used). *)
