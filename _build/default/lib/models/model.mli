(** Target-density interface for the samplers.

    A model exposes its unnormalized log density and gradient in both
    single-example and batched forms, together with flop estimates for the
    simulated accelerator. [register_prims] installs them as the [logp]
    and [grad] primitives that DSL programs (e.g. {!Nuts_dsl}) call. *)

type t = {
  name : string;
  dim : int;
  logp : Tensor.t -> float;           (** [ [dim] -> scalar ] *)
  grad : Tensor.t -> Tensor.t;        (** [ [dim] -> [dim] ] *)
  logp_batch : Tensor.t -> Tensor.t;  (** [ [z;dim] -> [z] ] *)
  grad_batch : Tensor.t -> Tensor.t;  (** [ [z;dim] -> [z;dim] ] *)
  logp_flops : float;                 (** per evaluation per member *)
  grad_flops : float;
}

val register_prims : Prim.registry -> t -> unit
(** Install primitives [logp : [dim] -> []] and [grad : [dim] -> [dim]]. *)

val check_shapes : t -> unit
(** Sanity-check single/batched agreement on a few synthetic points;
    raises [Failure] on disagreement. Used by tests. *)

val of_single :
  name:string ->
  dim:int ->
  logp:(Tensor.t -> float) ->
  grad:(Tensor.t -> Tensor.t) ->
  logp_flops:float ->
  grad_flops:float ->
  t
(** Build a model from single-example functions; the batched forms loop
    over rows (convenient for tests and custom targets — the built-in
    models implement genuinely vectorized batches). *)
