lib/rng/counter_rng.ml: Array Float Int64 Splitmix Stdlib Tensor
