lib/rng/counter_rng.mli: Tensor
