lib/rng/splitmix.ml: Float Int64 List Stdlib
