lib/rng/splitmix.mli:
