type key = { seed : int64 }

let key seed = { seed }
let seed_of k = k.seed

let word k ~member ~counter ~slot =
  Splitmix.hash_list
    [ k.seed; Int64.of_int member; Int64.of_int counter; Int64.of_int slot ]

let uniform k ~member ~counter ~slot =
  Splitmix.to_unit_float (word k ~member ~counter ~slot)

let normal k ~member ~counter ~slot =
  (* Two derived uniforms per slot; Box–Muller, cosine branch only, so each
     (member, counter, slot) triple yields exactly one normal. *)
  let u1 = uniform k ~member ~counter ~slot:(2 * slot) in
  let u2 = uniform k ~member ~counter ~slot:((2 * slot) + 1) in
  Stdlib.sqrt (-2. *. Stdlib.log u1) *. Stdlib.cos (2. *. Float.pi *. u2)

let exponential k ~member ~counter ~slot =
  -.Stdlib.log (uniform k ~member ~counter ~slot)

let bernoulli k ~p ~member ~counter ~slot =
  uniform k ~member ~counter ~slot < p

let counter_int t i =
  let v = (Tensor.data t).(i) in
  int_of_float v

let check_counters counters =
  if Tensor.rank counters <> 1 then
    invalid_arg "Counter_rng: counters must be a rank-1 tensor"

let uniform_batch k ~counters =
  check_counters counters;
  let z = (Tensor.shape counters).(0) in
  Tensor.init [| z |] (fun idx ->
      let b = idx.(0) in
      uniform k ~member:b ~counter:(counter_int counters b) ~slot:0)

let normal_batch k ~counters ~dim =
  check_counters counters;
  let z = (Tensor.shape counters).(0) in
  Tensor.init [| z; dim |] (fun idx ->
      let b = idx.(0) in
      normal k ~member:b ~counter:(counter_int counters b) ~slot:idx.(1))

let exponential_batch k ~counters =
  check_counters counters;
  let z = (Tensor.shape counters).(0) in
  Tensor.init [| z |] (fun idx ->
      let b = idx.(0) in
      exponential k ~member:b ~counter:(counter_int counters b) ~slot:0)
