(** Counter-based (stateless, splittable) random numbers.

    Every draw is a pure function of [(seed, member, counter, slot)]:
    - [seed] identifies the whole experiment;
    - [member] is the batch member (chain) index;
    - [counter] is a *program-managed* draw counter — in autobatched
      programs it is an ordinary program variable that the program itself
      increments, so masked execution of inactive lanes cannot perturb any
      member's stream (the masked lane's counter never advances);
    - [slot] indexes elements within one logical draw (e.g. the [d]
      components of a momentum vector).

    This is the property that lets us demand *bitwise* agreement between
    the single-example reference sampler and both autobatching runtimes. *)

type key

val key : int64 -> key
(** Make a key from an experiment seed. *)

val seed_of : key -> int64

val uniform : key -> member:int -> counter:int -> slot:int -> float
(** Uniform in the open interval (0,1). *)

val normal : key -> member:int -> counter:int -> slot:int -> float
(** Standard normal (Box–Muller over two slot-derived uniforms). *)

val exponential : key -> member:int -> counter:int -> slot:int -> float
(** Rate-1 exponential. *)

val bernoulli : key -> p:float -> member:int -> counter:int -> slot:int -> bool

(** {1 Batched draws}

    Counters are given per batch member as a float tensor of shape [[z]]
    (holding exact small integers, as all VM data does); results get a
    leading batch dimension. *)

val uniform_batch : key -> counters:Tensor.t -> Tensor.t
(** Shape [[z]]: one uniform per member at slot 0. *)

val normal_batch : key -> counters:Tensor.t -> dim:int -> Tensor.t
(** Shape [[z; dim]]: [dim] normals per member (slots [0..dim-1]). *)

val exponential_batch : key -> counters:Tensor.t -> Tensor.t
(** Shape [[z]]: one exponential per member at slot 0. *)
