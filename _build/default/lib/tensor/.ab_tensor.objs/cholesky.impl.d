lib/tensor/cholesky.ml: Array List Printf Stdlib Tensor
