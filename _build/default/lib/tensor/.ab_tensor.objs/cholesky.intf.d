lib/tensor/cholesky.mli: Tensor
