lib/tensor/tensor.ml: Array Float Format List Printf Shape Stdlib
