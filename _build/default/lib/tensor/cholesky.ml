let check_square name a =
  if Tensor.rank a <> 2 || (Tensor.shape a).(0) <> (Tensor.shape a).(1) then
    invalid_arg (Printf.sprintf "Cholesky.%s: square rank-2 tensor required" name);
  (Tensor.shape a).(0)

let factor a =
  let n = check_square "factor" a in
  let l = Array.make (n * n) 0. in
  let ad = Tensor.data a in
  for i = 0 to n - 1 do
    for j = 0 to i do
      let acc = ref ad.((i * n) + j) in
      for k = 0 to j - 1 do
        acc := !acc -. (l.((i * n) + k) *. l.((j * n) + k))
      done;
      if i = j then begin
        if !acc <= 0. then
          failwith
            (Printf.sprintf "Cholesky.factor: non-positive pivot %g at %d" !acc i);
        l.((i * n) + j) <- Stdlib.sqrt !acc
      end
      else l.((i * n) + j) <- !acc /. l.((j * n) + j)
    done
  done;
  Tensor.create [| n; n |] l

let solve_lower l b =
  let n = check_square "solve_lower" l in
  if Tensor.rank b <> 1 || (Tensor.shape b).(0) <> n then
    invalid_arg "Cholesky.solve_lower: rank-1 rhs of matching size required";
  let ld = Tensor.data l and bd = Tensor.data b in
  let x = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref bd.(i) in
    for k = 0 to i - 1 do
      acc := !acc -. (ld.((i * n) + k) *. x.(k))
    done;
    x.(i) <- !acc /. ld.((i * n) + i)
  done;
  Tensor.create [| n |] x

let solve_upper u b =
  let n = check_square "solve_upper" u in
  if Tensor.rank b <> 1 || (Tensor.shape b).(0) <> n then
    invalid_arg "Cholesky.solve_upper: rank-1 rhs of matching size required";
  let ud = Tensor.data u and bd = Tensor.data b in
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let acc = ref bd.(i) in
    for k = i + 1 to n - 1 do
      acc := !acc -. (ud.((i * n) + k) *. x.(k))
    done;
    x.(i) <- !acc /. ud.((i * n) + i)
  done;
  Tensor.create [| n |] x

let solve_posdef a b =
  let l = factor a in
  solve_upper (Tensor.transpose l) (solve_lower l b)

let inverse_from_factor l =
  let n = check_square "inverse_from_factor" l in
  let lt = Tensor.transpose l in
  let cols =
    List.init n (fun j ->
        let e = Tensor.init [| n |] (fun idx -> if idx.(0) = j then 1. else 0.) in
        solve_upper lt (solve_lower l e))
  in
  (* Columns of the inverse, stacked as rows then transposed; the inverse is
     symmetric so the transpose is a no-op mathematically, but keep it for
     exact layout correctness. *)
  Tensor.transpose (Tensor.stack_rows cols)

let log_det_from_factor l =
  let n = check_square "log_det_from_factor" l in
  let ld = Tensor.data l in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. Stdlib.log ld.((i * n) + i)
  done;
  2. *. !acc
