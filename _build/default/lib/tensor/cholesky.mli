(** Dense Cholesky factorization and triangular solves.

    Used by the correlated-Gaussian evaluation model: sampling needs the
    lower factor [L] with [L Lᵀ = Σ], and the log-density needs
    [Σ⁻¹ (q - μ)] and [log det Σ]. *)

val factor : Tensor.t -> Tensor.t
(** [factor a] returns the lower-triangular [l] with [l lᵀ = a] for a
    symmetric positive-definite rank-2 [a]. Raises [Invalid_argument] on a
    non-square input and [Failure] if a pivot is not positive. *)

val solve_lower : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_lower l b] solves [l x = b] by forward substitution
    ([l] lower triangular, [b] rank-1). *)

val solve_upper : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_upper u b] solves [u x = b] by back substitution
    ([u] upper triangular, [b] rank-1). *)

val solve_posdef : Tensor.t -> Tensor.t -> Tensor.t
(** [solve_posdef a b] solves [a x = b] for SPD [a] via {!factor}. *)

val inverse_from_factor : Tensor.t -> Tensor.t
(** [inverse_from_factor l] is [(l lᵀ)⁻¹], i.e. Σ⁻¹ given the factor. *)

val log_det_from_factor : Tensor.t -> float
(** [log det (l lᵀ) = 2 Σᵢ log lᵢᵢ]. *)
