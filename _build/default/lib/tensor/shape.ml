type t = int array

let scalar = [||]

let numel s = Array.fold_left ( * ) 1 s

let rank = Array.length

let equal a b = a = b

let validate s =
  Array.iteri
    (fun i d ->
      if d < 0 then
        invalid_arg
          (Printf.sprintf "Shape.validate: negative dimension %d at axis %d" d i))
    s

let strides s =
  let n = Array.length s in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * s.(i + 1)
  done;
  st

let ravel s idx =
  let n = Array.length s in
  if Array.length idx <> n then
    invalid_arg "Shape.ravel: rank mismatch";
  let off = ref 0 in
  for i = 0 to n - 1 do
    if idx.(i) < 0 || idx.(i) >= s.(i) then
      invalid_arg
        (Printf.sprintf "Shape.ravel: index %d out of bounds for axis %d (size %d)"
           idx.(i) i s.(i));
    off := (!off * s.(i)) + idx.(i)
  done;
  !off

let unravel s off =
  let n = Array.length s in
  let idx = Array.make n 0 in
  let rem = ref off in
  for i = n - 1 downto 0 do
    idx.(i) <- !rem mod s.(i);
    rem := !rem / s.(i)
  done;
  idx

let broadcast2 a b =
  let ra = Array.length a and rb = Array.length b in
  let r = max ra rb in
  let out = Array.make r 0 in
  for i = 0 to r - 1 do
    let da = if i < r - ra then 1 else a.(i - (r - ra)) in
    let db = if i < r - rb then 1 else b.(i - (r - rb)) in
    if da = db || da = 1 || db = 1 then out.(i) <- max da db
    else
      invalid_arg
        (Printf.sprintf "Shape.broadcast2: incompatible shapes %s and %s"
           (Printf.sprintf "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int a))))
           (Printf.sprintf "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int b)))))
  done;
  out

let broadcastable a b =
  match broadcast2 a b with _ -> true | exception Invalid_argument _ -> false

let remove_axis s axis =
  let n = Array.length s in
  if axis < 0 || axis >= n then invalid_arg "Shape.remove_axis: bad axis";
  Array.init (n - 1) (fun i -> if i < axis then s.(i) else s.(i + 1))

let concat_outer n s =
  if n < 0 then invalid_arg "Shape.concat_outer: negative size";
  Array.append [| n |] s

let drop_outer s =
  if Array.length s = 0 then invalid_arg "Shape.drop_outer: scalar shape";
  Array.sub s 1 (Array.length s - 1)

let to_string s =
  Printf.sprintf "[%s]" (String.concat ";" (Array.to_list (Array.map string_of_int s)))

let pp ppf s = Format.pp_print_string ppf (to_string s)
