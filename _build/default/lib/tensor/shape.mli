(** Tensor shapes and index arithmetic.

    A shape is an array of non-negative dimension sizes, outermost first
    (row-major layout). The empty array [[||]] is the shape of a scalar. *)

type t = int array

val scalar : t
(** Shape of a scalar tensor. *)

val numel : t -> int
(** Total number of elements: product of dimensions (1 for a scalar). *)

val rank : t -> int
(** Number of dimensions. *)

val equal : t -> t -> bool

val validate : t -> unit
(** Raise [Invalid_argument] if any dimension is negative. *)

val strides : t -> int array
(** Row-major strides; [strides s].(i) is the linear-offset step for a unit
    move along dimension [i]. The stride of a size-1 dimension is still its
    mathematical stride (broadcast handling is done separately). *)

val ravel : t -> int array -> int
(** [ravel shape idx] is the linear offset of multi-index [idx].
    Raises [Invalid_argument] on rank mismatch or out-of-bounds. *)

val unravel : t -> int -> int array
(** Inverse of {!ravel} for in-range linear offsets. *)

val broadcast2 : t -> t -> t
(** Numpy-style broadcast of two shapes. Dimensions are aligned at the
    trailing end; a dimension broadcasts against an equal one or against 1.
    Raises [Invalid_argument] when the shapes are incompatible. *)

val broadcastable : t -> t -> bool

val remove_axis : t -> int -> t
(** Shape with dimension [axis] removed, e.g. for a reduction along it. *)

val concat_outer : int -> t -> t
(** [concat_outer n s] prepends a leading dimension of size [n]. *)

val drop_outer : t -> t
(** Remove the leading dimension. Raises [Invalid_argument] on scalars. *)

val to_string : t -> string
(** E.g. ["[2;3]"]; ["[]"] for scalars. *)

val pp : Format.formatter -> t -> unit
