type t = { shape : Shape.t; data : float array }

(* Construction *)

let create shape data =
  Shape.validate shape;
  if Array.length data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Tensor.create: shape %s wants %d elements, got %d"
         (Shape.to_string shape) (Shape.numel shape) (Array.length data));
  { shape; data }

let zeros shape = create shape (Array.make (Shape.numel shape) 0.)
let ones shape = create shape (Array.make (Shape.numel shape) 1.)
let full shape v = create shape (Array.make (Shape.numel shape) v)
let scalar v = create Shape.scalar [| v |]
let of_array shape data = create shape (Array.copy data)
let of_list xs = of_array [| List.length xs |] (Array.of_list xs)

let init shape f =
  let n = Shape.numel shape in
  let data = Array.make n 0. in
  for off = 0 to n - 1 do
    data.(off) <- f (Shape.unravel shape off)
  done;
  { shape; data }

let arange n = create [| n |] (Array.init n float_of_int)

let eye n =
  init [| n; n |] (fun idx -> if idx.(0) = idx.(1) then 1. else 0.)

(* Inspection *)

let shape t = t.shape
let rank t = Shape.rank t.shape
let numel t = Array.length t.data
let data t = t.data
let get t idx = t.data.(Shape.ravel t.shape idx)
let set t idx v = t.data.(Shape.ravel t.shape idx) <- v

let item t =
  if numel t <> 1 then
    invalid_arg
      (Printf.sprintf "Tensor.item: tensor of shape %s has %d elements"
         (Shape.to_string t.shape) (numel t));
  t.data.(0)

let copy t = { shape = t.shape; data = Array.copy t.data }

let reshape t shape =
  Shape.validate shape;
  if Shape.numel shape <> numel t then
    invalid_arg
      (Printf.sprintf "Tensor.reshape: cannot view %s as %s"
         (Shape.to_string t.shape) (Shape.to_string shape));
  { shape; data = t.data }

let to_flat_list t = Array.to_list t.data

(* Elementwise *)

let map f t = { shape = t.shape; data = Array.map f t.data }

(* Offset of multi-index [idx] (of the broadcast result shape) within an
   operand of shape [s]: size-1 and missing leading dimensions contribute
   nothing. *)
let broadcast_offset result_shape s idx =
  let r = Array.length result_shape and rs = Array.length s in
  let off = ref 0 in
  for i = 0 to rs - 1 do
    let d = s.(i) in
    let coord = if d = 1 then 0 else idx.(i + (r - rs)) in
    off := (!off * d) + coord
  done;
  !off

let map2 f a b =
  if Shape.equal a.shape b.shape then
    (* Fast path: aligned buffers. *)
    { shape = a.shape;
      data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i)) }
  else if Array.length b.data = 1 then
    { shape = a.shape; data = Array.map (fun x -> f x b.data.(0)) a.data }
  else if Array.length a.data = 1 then
    { shape = b.shape; data = Array.map (fun y -> f a.data.(0) y) b.data }
  else begin
    let out_shape = Shape.broadcast2 a.shape b.shape in
    let n = Shape.numel out_shape in
    let out = Array.make n 0. in
    for off = 0 to n - 1 do
      let idx = Shape.unravel out_shape off in
      let x = a.data.(broadcast_offset out_shape a.shape idx) in
      let y = b.data.(broadcast_offset out_shape b.shape idx) in
      out.(off) <- f x y
    done;
    { shape = out_shape; data = out }
  end

let add = map2 ( +. )
let sub = map2 ( -. )
let mul = map2 ( *. )
let div = map2 ( /. )
let pow = map2 ( ** )
let maximum = map2 Float.max
let minimum = map2 Float.min
let neg = map (fun x -> -.x)
let abs = map Float.abs
let sign = map (fun x -> if x > 0. then 1. else if x < 0. then -1. else 0.)
let exp = map Stdlib.exp
let log = map Stdlib.log
let sqrt = map Stdlib.sqrt
let square = map (fun x -> x *. x)

let sigmoid_f x =
  if x >= 0. then 1. /. (1. +. Stdlib.exp (-.x))
  else
    let e = Stdlib.exp x in
    e /. (1. +. e)

let sigmoid = map sigmoid_f
let tanh = map Stdlib.tanh
let log1p = map Stdlib.log1p

let log_sigmoid_f x =
  (* log(1/(1+e^-x)) = -log1p(e^-x), stable for both signs. *)
  if x >= 0. then -.Stdlib.log1p (Stdlib.exp (-.x))
  else x -. Stdlib.log1p (Stdlib.exp x)

let log_sigmoid = map log_sigmoid_f

let logaddexp_f a b =
  (* Stable log(e^a + e^b); handles -inf identities exactly. *)
  if a = Float.neg_infinity then b
  else if b = Float.neg_infinity then a
  else begin
    let hi = Float.max a b and lo = Float.min a b in
    hi +. Stdlib.log1p (Stdlib.exp (lo -. hi))
  end

let logaddexp = map2 logaddexp_f
let add_scalar t v = map (fun x -> x +. v) t
let mul_scalar t v = map (fun x -> x *. v) t

(* Comparisons *)

let bool_f b = if b then 1. else 0.
let eq = map2 (fun x y -> bool_f (x = y))
let ne = map2 (fun x y -> bool_f (x <> y))
let lt = map2 (fun x y -> bool_f (x < y))
let le = map2 (fun x y -> bool_f (x <= y))
let gt = map2 (fun x y -> bool_f (x > y))
let ge = map2 (fun x y -> bool_f (x >= y))
let logical_and = map2 (fun x y -> bool_f (x <> 0. && y <> 0.))
let logical_or = map2 (fun x y -> bool_f (x <> 0. || y <> 0.))
let logical_not = map (fun x -> bool_f (x = 0.))

let where cond a b =
  let s = Shape.broadcast2 (Shape.broadcast2 cond.shape a.shape) b.shape in
  let n = Shape.numel s in
  let out = Array.make n 0. in
  for off = 0 to n - 1 do
    let idx = Shape.unravel s off in
    let c = cond.data.(broadcast_offset s cond.shape idx) in
    out.(off) <-
      (if c <> 0. then a.data.(broadcast_offset s a.shape idx)
       else b.data.(broadcast_offset s b.shape idx))
  done;
  { shape = s; data = out }

(* Reductions *)

let full_reduce f init t = scalar (Array.fold_left f init t.data)

let axis_reduce f init t axis =
  let r = rank t in
  if axis < 0 || axis >= r then
    invalid_arg (Printf.sprintf "Tensor: reduction axis %d out of range for rank %d" axis r);
  let out_shape = Shape.remove_axis t.shape axis in
  let inner = (Shape.strides t.shape).(axis) in
  let d = t.shape.(axis) in
  let outer = Shape.numel t.shape / (inner * d) in
  let out = Array.make (Shape.numel out_shape) init in
  for o = 0 to outer - 1 do
    for i = 0 to inner - 1 do
      let acc = ref init in
      for k = 0 to d - 1 do
        acc := f !acc t.data.((o * d * inner) + (k * inner) + i)
      done;
      out.((o * inner) + i) <- !acc
    done
  done;
  { shape = out_shape; data = out }

let check_nonempty_axis name t axis =
  if t.shape.(axis) = 0 then
    invalid_arg (Printf.sprintf "Tensor.%s: reduction over empty axis %d" name axis)

let sum ?axis t =
  match axis with
  | None -> full_reduce ( +. ) 0. t
  | Some a -> axis_reduce ( +. ) 0. t a

let mean ?axis t =
  match axis with
  | None -> scalar (Array.fold_left ( +. ) 0. t.data /. float_of_int (numel t))
  | Some a ->
    let s = axis_reduce ( +. ) 0. t a in
    mul_scalar s (1. /. float_of_int t.shape.(a))

let max_reduce ?axis t =
  match axis with
  | None ->
    if numel t = 0 then invalid_arg "Tensor.max_reduce: empty tensor";
    full_reduce Float.max Float.neg_infinity t
  | Some a ->
    check_nonempty_axis "max_reduce" t a;
    axis_reduce Float.max Float.neg_infinity t a

let min_reduce ?axis t =
  match axis with
  | None ->
    if numel t = 0 then invalid_arg "Tensor.min_reduce: empty tensor";
    full_reduce Float.min Float.infinity t
  | Some a ->
    check_nonempty_axis "min_reduce" t a;
    axis_reduce Float.min Float.infinity t a

let sum_last t =
  if rank t = 0 then copy t else sum ~axis:(rank t - 1) t

(* Linear algebra *)

let matmul a b =
  if rank a <> 2 || rank b <> 2 then invalid_arg "Tensor.matmul: rank-2 operands required";
  let n = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and m = b.shape.(1) in
  if k <> k' then
    invalid_arg
      (Printf.sprintf "Tensor.matmul: inner dimensions %d and %d differ" k k');
  let out = Array.make (n * m) 0. in
  (* No skip-zero fast path: exact IEEE agreement with the equivalent
     vector accumulation matters more than sparse speedups here (signed
     zeros and NaN payloads must propagate identically). *)
  for i = 0 to n - 1 do
    for l = 0 to k - 1 do
      let x = a.data.((i * k) + l) in
      let bo = l * m and oo = i * m in
      for j = 0 to m - 1 do
        out.(oo + j) <- out.(oo + j) +. (x *. b.data.(bo + j))
      done
    done
  done;
  create [| n; m |] out

let matvec a x =
  if rank a <> 2 || rank x <> 1 then invalid_arg "Tensor.matvec: wants [n;k] and [k]";
  let n = a.shape.(0) and k = a.shape.(1) in
  if x.shape.(0) <> k then
    invalid_arg
      (Printf.sprintf "Tensor.matvec: matrix inner dim %d vs vector %d" k x.shape.(0));
  let out = Array.make n 0. in
  for i = 0 to n - 1 do
    let acc = ref 0. in
    for l = 0 to k - 1 do
      acc := !acc +. (a.data.((i * k) + l) *. x.data.(l))
    done;
    out.(i) <- !acc
  done;
  create [| n |] out

let dot a b =
  if rank a <> 1 || rank b <> 1 || a.shape.(0) <> b.shape.(0) then
    invalid_arg "Tensor.dot: rank-1 operands of equal length required";
  let acc = ref 0. in
  for i = 0 to a.shape.(0) - 1 do
    acc := !acc +. (a.data.(i) *. b.data.(i))
  done;
  scalar !acc

let transpose a =
  if rank a <> 2 then invalid_arg "Tensor.transpose: rank-2 operand required";
  let n = a.shape.(0) and m = a.shape.(1) in
  init [| m; n |] (fun idx -> a.data.((idx.(1) * m) + idx.(0)))

let outer a b =
  if rank a <> 1 || rank b <> 1 then invalid_arg "Tensor.outer: rank-1 operands required";
  let n = a.shape.(0) and m = b.shape.(0) in
  init [| n; m |] (fun idx -> a.data.(idx.(0)) *. b.data.(idx.(1)))

(* Row operations *)

let nrows t = if rank t = 0 then 1 else t.shape.(0)
let row_numel t = if rank t = 0 then 1 else Shape.numel (Shape.drop_outer t.shape)

let take_rows t idx =
  if rank t = 0 then invalid_arg "Tensor.take_rows: scalar tensor";
  let rn = row_numel t in
  let z = t.shape.(0) in
  let k = Array.length idx in
  let out = Array.make (k * rn) 0. in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= z then
        invalid_arg (Printf.sprintf "Tensor.take_rows: row %d out of %d" r z);
      Array.blit t.data (r * rn) out (i * rn) rn)
    idx;
  create (Array.append [| k |] (Shape.drop_outer t.shape)) out

let put_rows t idx src =
  if rank t = 0 then invalid_arg "Tensor.put_rows: scalar tensor";
  let rn = row_numel t in
  if row_numel src <> rn || nrows src <> Array.length idx then
    invalid_arg "Tensor.put_rows: source rows do not match index count/shape";
  let out = Array.copy t.data in
  let z = t.shape.(0) in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= z then
        invalid_arg (Printf.sprintf "Tensor.put_rows: row %d out of %d" r z);
      Array.blit src.data (i * rn) out (r * rn) rn)
    idx;
  { shape = t.shape; data = out }

let select_rows mask a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.select_rows: operand shapes differ";
  if nrows a <> Array.length mask then
    invalid_arg "Tensor.select_rows: mask length does not match rows";
  let rn = row_numel a in
  let out = Array.copy b.data in
  Array.iteri
    (fun i m -> if m then Array.blit a.data (i * rn) out (i * rn) rn)
    mask;
  { shape = a.shape; data = out }

let blit_rows_masked ~mask ~src ~dst =
  if not (Shape.equal src.shape dst.shape) then
    invalid_arg "Tensor.blit_rows_masked: shapes differ";
  if nrows dst <> Array.length mask then
    invalid_arg "Tensor.blit_rows_masked: mask length does not match rows";
  let rn = row_numel dst in
  Array.iteri
    (fun i m -> if m then Array.blit src.data (i * rn) dst.data (i * rn) rn)
    mask

let blit_rows_indexed ~idx ~src ~dst =
  let rn = row_numel dst in
  if row_numel src <> rn || nrows src <> Array.length idx then
    invalid_arg "Tensor.blit_rows_indexed: source rows do not match index count/shape";
  let z = nrows dst in
  Array.iteri
    (fun i r ->
      if r < 0 || r >= z then
        invalid_arg (Printf.sprintf "Tensor.blit_rows_indexed: row %d out of %d" r z);
      Array.blit src.data (i * rn) dst.data (r * rn) rn)
    idx

let stack_rows = function
  | [] -> invalid_arg "Tensor.stack_rows: empty list"
  | first :: _ as ts ->
    List.iter
      (fun t ->
        if not (Shape.equal t.shape first.shape) then
          invalid_arg "Tensor.stack_rows: shapes differ")
      ts;
    let rn = numel first in
    let k = List.length ts in
    let out = Array.make (k * rn) 0. in
    List.iteri (fun i t -> Array.blit t.data 0 out (i * rn) rn) ts;
    create (Array.append [| k |] first.shape) out

let concat_rows = function
  | [] -> invalid_arg "Tensor.concat_rows: empty list"
  | first :: _ as ts ->
    if rank first = 0 then invalid_arg "Tensor.concat_rows: scalar operands";
    let inner = Shape.drop_outer first.shape in
    List.iter
      (fun t ->
        if rank t = 0 || not (Shape.equal (Shape.drop_outer t.shape) inner) then
          invalid_arg "Tensor.concat_rows: inner shapes differ")
      ts;
    let total = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
    let out = Array.make (total * Shape.numel inner) 0. in
    let pos = ref 0 in
    List.iter
      (fun t ->
        Array.blit t.data 0 out !pos (numel t);
        pos := !pos + numel t)
      ts;
    create (Array.append [| total |] inner) out

let slice_row t i =
  if rank t = 0 then invalid_arg "Tensor.slice_row: scalar tensor";
  if i < 0 || i >= t.shape.(0) then
    invalid_arg (Printf.sprintf "Tensor.slice_row: row %d out of %d" i t.shape.(0));
  let rn = row_numel t in
  let out = Array.make rn 0. in
  Array.blit t.data (i * rn) out 0 rn;
  create (Shape.drop_outer t.shape) out

let broadcast_rows t z =
  let rn = numel t in
  let out = Array.make (z * rn) 0. in
  for i = 0 to z - 1 do
    Array.blit t.data 0 out (i * rn) rn
  done;
  create (Array.append [| z |] t.shape) out

(* Comparison *)

let float_eq_with_nan x y = x = y || (Float.is_nan x && Float.is_nan y)

let allclose ?(rtol = 1e-9) ?(atol = 1e-12) a b =
  Shape.equal a.shape b.shape
  && begin
    let ok = ref true in
    for i = 0 to numel a - 1 do
      let x = a.data.(i) and y = b.data.(i) in
      let close =
        float_eq_with_nan x y
        || Float.abs (x -. y) <= atol +. (rtol *. Float.abs y)
      in
      if not close then ok := false
    done;
    !ok
  end

let equal a b =
  Shape.equal a.shape b.shape
  && begin
    let ok = ref true in
    for i = 0 to numel a - 1 do
      if not (float_eq_with_nan a.data.(i) b.data.(i)) then ok := false
    done;
    !ok
  end

let fold f acc t = Array.fold_left f acc t.data

let pp ppf t =
  let n = numel t in
  let elide = n > 16 in
  let shown = if elide then 16 else n in
  Format.fprintf ppf "@[<hov 2>tensor%s[" (Shape.to_string t.shape);
  for i = 0 to shown - 1 do
    if i > 0 then Format.fprintf ppf ";@ ";
    Format.fprintf ppf "%g" t.data.(i)
  done;
  if elide then Format.fprintf ppf ";@ ...(%d)" n;
  Format.fprintf ppf "]@]"

let to_string t = Format.asprintf "%a" pp t
