(** Dense row-major float64 tensors with numpy-style broadcasting.

    This is the data substrate the autobatching runtimes execute on: every
    program variable holds one tensor whose leading dimension is the batch
    dimension. Booleans are represented as 0.0/1.0 and small integers
    exactly in float64 (exact up to 2^53); see DESIGN.md section 1.

    All operations are pure (they allocate fresh result tensors) unless the
    name ends in an underscore-free "into"/"blit" form documented below. *)

type t

(** {1 Construction} *)

val create : Shape.t -> float array -> t
(** [create shape data] wraps [data] (not copied). Raises
    [Invalid_argument] if [Array.length data <> Shape.numel shape]. *)

val zeros : Shape.t -> t
val ones : Shape.t -> t
val full : Shape.t -> float -> t
val scalar : float -> t
(** Rank-0 tensor. *)

val of_array : Shape.t -> float array -> t
(** Like {!create} but copies the data. *)

val of_list : float list -> t
(** Rank-1 tensor from a list. *)

val init : Shape.t -> (int array -> float) -> t
(** [init shape f] fills each multi-index [i] with [f i]. *)

val arange : int -> t
(** [arange n] is the rank-1 tensor [0.; 1.; ...; n-1.]. *)

val eye : int -> t
(** Identity matrix of size [n]. *)

(** {1 Inspection} *)

val shape : t -> Shape.t
val rank : t -> int
val numel : t -> int
val data : t -> float array
(** The underlying buffer (shared, not a copy). Use with care. *)

val get : t -> int array -> float
val set : t -> int array -> float -> unit
val item : t -> float
(** The single element of a one-element tensor; raises otherwise. *)

val copy : t -> t
val reshape : t -> Shape.t -> t
(** Same buffer, new shape; raises if element counts differ. *)

val to_flat_list : t -> float list

(** {1 Elementwise with broadcasting} *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Numpy-style broadcasting; raises on incompatible shapes. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val pow : t -> t -> t
val maximum : t -> t -> t
val minimum : t -> t -> t
val neg : t -> t
val abs : t -> t
val sign : t -> t
val exp : t -> t
val log : t -> t
val sqrt : t -> t
val square : t -> t
val sigmoid : t -> t
val tanh : t -> t
val log1p : t -> t
val log_sigmoid : t -> t
(** Numerically stable [log (sigmoid x)]. *)

val sigmoid_f : float -> float
val log_sigmoid_f : float -> float
val logaddexp_f : float -> float -> float
(** Scalar versions of the stable sigmoid/log-sigmoid/log-sum-exp-of-two,
    for reuse in primitive definitions. *)

val logaddexp : t -> t -> t
(** Elementwise stable [log (exp a + exp b)] with broadcasting. *)

val add_scalar : t -> float -> t
val mul_scalar : t -> float -> t

(** {1 Comparison and logic (results are 0/1 tensors)} *)

val eq : t -> t -> t
val ne : t -> t -> t
val lt : t -> t -> t
val le : t -> t -> t
val gt : t -> t -> t
val ge : t -> t -> t
val logical_and : t -> t -> t
val logical_or : t -> t -> t
val logical_not : t -> t
val where : t -> t -> t -> t
(** [where cond a b]: elementwise [a] where [cond] is non-zero else [b],
    all three broadcast together. *)

(** {1 Reductions} *)

val sum : ?axis:int -> t -> t
val mean : ?axis:int -> t -> t
val max_reduce : ?axis:int -> t -> t
val min_reduce : ?axis:int -> t -> t
(** Without [axis]: full reduction to a scalar tensor. With [axis]: that
    dimension is removed. Reducing an empty axis raises for min/max and
    yields 0 (or NaN for mean) for sum/mean. *)

val sum_last : t -> t
(** Reduce along the last axis: convenience for batched inner products. *)

(** {1 Linear algebra (rank-2 / rank-1)} *)

val matmul : t -> t -> t
(** [matmul a b] for [a : [n;k]] and [b : [k;m]] is [[n;m]]. *)

val matvec : t -> t -> t
(** [matvec a x] for [a : [n;k]] and [x : [k]] is [[n]]. *)

val dot : t -> t -> t
(** Inner product of two rank-1 tensors of equal length (scalar result). *)

val transpose : t -> t
(** Rank-2 transpose. *)

val outer : t -> t -> t
(** Outer product of two rank-1 tensors. *)

(** {1 Rows: operations along the leading (batch) axis} *)

val nrows : t -> int
(** Size of the leading dimension; 1 for scalars. *)

val row_numel : t -> int
(** Elements per leading-axis slice. *)

val take_rows : t -> int array -> t
(** [take_rows t idx] gathers rows [idx] along axis 0. *)

val put_rows : t -> int array -> t -> t
(** [put_rows t idx src] returns a copy of [t] with row [idx.(i)]
    replaced by row [i] of [src]. Later duplicates win. *)

val select_rows : bool array -> t -> t -> t
(** [select_rows mask a b] picks row [i] from [a] when [mask.(i)], else
    from [b]. [a] and [b] must have identical shapes with
    [nrows = Array.length mask]. *)

val blit_rows_masked : mask:bool array -> src:t -> dst:t -> unit
(** In-place masked row update: [dst.(i) <- src.(i)] where [mask.(i)].
    This is the VM's hot-path masked write. *)

val blit_rows_indexed : idx:int array -> src:t -> dst:t -> unit
(** In-place scatter: row [i] of [src] overwrites row [idx.(i)] of [dst].
    The gather/scatter execution style's hot-path write. *)

val stack_rows : t list -> t
(** Stack equal-shaped tensors along a new leading axis. *)

val concat_rows : t list -> t
(** Concatenate along the existing leading axis. *)

val slice_row : t -> int -> t
(** [slice_row t i] is slice [i] along axis 0 (rank decreases by one). *)

val broadcast_rows : t -> int -> t
(** [broadcast_rows t z]: tile a tensor of shape [s] to shape [z :: s]. *)

(** {1 Comparison helpers} *)

val allclose : ?rtol:float -> ?atol:float -> t -> t -> bool
(** Shape-equal and elementwise [|a-b| <= atol + rtol*|b|]; NaNs compare
    equal to NaNs (so reference comparisons survive masked junk lanes must
    not — NaN vs number is unequal). Defaults: rtol 1e-9, atol 1e-12. *)

val equal : t -> t -> bool
(** Exact structural equality (shape and bits, NaN = NaN). *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val pp : Format.formatter -> t -> unit
(** Shape-prefixed, elided for large tensors. *)

val to_string : t -> string
