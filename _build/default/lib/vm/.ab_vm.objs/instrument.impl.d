lib/vm/instrument.ml: Format Hashtbl List
