lib/vm/instrument.mli: Format
