lib/vm/local_vm.ml: Array Cfg Engine Hashtbl Instrument List Option Prim Printf Sched Shape Tensor Vm_util
