lib/vm/local_vm.mli: Cfg Engine Instrument Prim Sched Tensor
