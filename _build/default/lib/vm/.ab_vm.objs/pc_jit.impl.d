lib/vm/pc_jit.ml: Array Engine Hashtbl Instrument Ir_util List Prim Printf Sched Shape Stack_ir Stacked Tensor Var_class Vm_util
