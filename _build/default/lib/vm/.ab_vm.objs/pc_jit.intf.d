lib/vm/pc_jit.mli: Engine Instrument Prim Sched Stack_ir Tensor
