lib/vm/pc_vm.ml: Array Engine Hashtbl Instrument Ir_util List Option Prim Printf Sched Shape Stack_ir Stacked Tensor Var_class Vm_util
