lib/vm/pc_vm.mli: Engine Instrument Prim Sched Stack_ir Tensor
