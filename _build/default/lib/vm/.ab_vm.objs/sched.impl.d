lib/vm/sched.ml: Array
