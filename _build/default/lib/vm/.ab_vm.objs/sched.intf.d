lib/vm/sched.mli:
