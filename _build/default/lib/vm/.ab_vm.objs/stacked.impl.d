lib/vm/stacked.ml: Array Printf Shape Tensor
