lib/vm/stacked.mli: Shape Tensor
