lib/vm/vm_util.ml: Array Shape Tensor
