(** Program-counter autobatching with precompiled blocks.

    Semantically identical to {!Pc_vm} (Algorithm 2), but the interpreter
    work is done once, ahead of time — the analogue of handing the whole
    runtime to XLA instead of walking the program step by step:

    - every variable's storage is resolved and preallocated (static
      element shapes are required, as on the paper's target platforms);
    - every primitive is looked up once and closed over its storage;
    - every block becomes one OCaml closure; per-block cost-model charges
      (flops, op names, control counts) are precomputed constants.

    The scheduling loop, masking semantics, scheduling heuristic and all
    results are bitwise identical to {!Pc_vm}; only the host-side dispatch
    overhead changes (measured in [bench/main.exe micro]). *)

type t

val compile : Prim.registry -> Stack_ir.program -> batch:int -> t
(** Prepare a reusable executor for a fixed batch size. Raises
    [Invalid_argument] if the program lacks inferred shapes for some
    variable (compile the program with [input_shapes]). *)

val run :
  ?sched:Sched.t ->
  ?engine:Engine.t ->
  ?instrument:Instrument.t ->
  ?max_steps:int ->
  t ->
  batch:Tensor.t list ->
  Tensor.t list
(** Execute on inputs whose batch dimension matches [compile]'s. The
    executor is reusable: storage is reset from the inputs each run. *)

exception Step_limit_exceeded
