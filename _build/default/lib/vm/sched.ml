type t = Earliest | Most_active | Round_robin

let to_string = function
  | Earliest -> "earliest"
  | Most_active -> "most-active"
  | Round_robin -> "round-robin"

let all = [ Earliest; Most_active; Round_robin ]

let pick policy ~last ~counts =
  let n = Array.length counts in
  let earliest () =
    let rec go i = if i >= n then None else if counts.(i) > 0 then Some i else go (i + 1) in
    go 0
  in
  match policy with
  | Earliest -> earliest ()
  | Most_active ->
    let best = ref (-1) in
    for i = n - 1 downto 0 do
      if counts.(i) > 0 && (!best < 0 || counts.(i) >= counts.(!best)) then best := i
    done;
    if !best < 0 then None else Some !best
  | Round_robin ->
    let rec go k remaining =
      if remaining = 0 then None
      else if counts.(k mod n) > 0 then Some (k mod n)
      else go (k + 1) (remaining - 1)
    in
    if n = 0 then None else go (last + 1) n
