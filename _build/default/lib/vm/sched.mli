(** Basic-block selection heuristics (the paper's "second free choice").

    Any non-starving policy is correct; the paper's Algorithm 1 and 2 use
    [Earliest] — run the lowest-numbered block that has at least one
    active member, which with source-ordered block emission is "earliest
    in program order". [Most_active] greedily maximizes utilization of the
    selected block; [Round_robin] cycles through blocks for fairness.
    These are compared in the scheduling ablation (DESIGN.md A2). *)

type t = Earliest | Most_active | Round_robin

val to_string : t -> string
val all : t list

val pick : t -> last:int -> counts:int array -> int option
(** Choose a block index with [counts.(i) > 0], or [None] if all zero.
    [last] is the previously chosen block (for [Round_robin]; pass [-1]
    initially). *)
