(* Shared helpers for the two autobatching runtimes. *)

let bytes_per_elem = 8.

let indices_of_mask mask =
  let n = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 mask in
  let out = Array.make n 0 in
  let j = ref 0 in
  Array.iteri
    (fun i m ->
      if m then begin
        out.(!j) <- i;
        incr j
      end)
    mask;
  out

let count_mask mask = Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 mask

(* A masked write in a static-shape (XLA-style) system is a select: read
   old and new, write result. *)
let masked_write_bytes ~lanes ~row = 3. *. bytes_per_elem *. float_of_int (lanes * row)

(* A stack push/pop moves one row per lane between the stack body and the
   cached top (scatter resp. gather), reading and writing each element. *)
let stack_move_bytes ~lanes ~row = 2. *. bytes_per_elem *. float_of_int (lanes * row)

let elem_shape_of_batched t = Shape.drop_outer (Tensor.shape t)

let all_members z = Array.init z (fun i -> i)
