test/test_accel.ml: Alcotest Device Engine List QCheck QCheck_alcotest
