test/test_ad.ml: Ad Alcotest Array Gaussian_model Logistic_model Model Printf QCheck QCheck_alcotest Stdlib Tensor
