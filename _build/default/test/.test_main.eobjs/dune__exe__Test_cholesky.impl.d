test/test_cholesky.ml: Alcotest Cholesky List Printf QCheck QCheck_alcotest Splitmix Stdlib Tensor
