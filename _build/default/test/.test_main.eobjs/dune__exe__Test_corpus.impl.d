test/test_corpus.ml: Alcotest Array Autobatch Filename List Parser Pc_jit Prim Printf Shape Stdlib String Sys Tensor Validate
