test/test_harness.ml: Ablations Alcotest Array Batched_sampler Figure5 Figure6 Float Gaussian_model Lazy List Nuts Nuts_dsl Option Printf Sched Tensor
