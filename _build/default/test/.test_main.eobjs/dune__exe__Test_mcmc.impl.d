test/test_mcmc.ml: Alcotest Array Counter_rng Diagnostics Dual_averaging Float Gaussian_model Hmc Leapfrog List Model Nuts Nuts_iter Printf Splitmix Stdlib Tensor
