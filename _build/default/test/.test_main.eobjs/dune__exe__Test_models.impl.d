test/test_models.ml: Ad Alcotest Array Autobatch Batched_sampler Eight_schools Float Funnel_model Gaussian_model List Logistic_model Model Nuts Nuts_dsl Prim Printf Splitmix Stdlib Tensor
