test/test_optimize.ml: Alcotest Array Autobatch Cfg Gaussian_model Lang List Lower_cfg Nuts Nuts_dsl Optimize Prim Printf QCheck QCheck_alcotest Shape Tensor Test_random_programs Validate
