test/test_parser.ml: Alcotest Array Autobatch Interp Lang List Option Parser Prim Printf QCheck QCheck_alcotest Shape String Tensor Test_programs Test_random_programs Validate
