test/test_pipeline.ml: Alcotest Array Autobatch List Local_vm Lower_stack Pc_jit Pc_vm Printf Sched Shape Stack_ir Tensor Test_programs
