test/test_programs.ml: Lang
