test/test_random_programs.ml: Array Autobatch Format Interp_cfg Lang List Local_vm Pc_jit Pc_vm Prim Printf QCheck QCheck_alcotest Sched Shape String Tensor Validate
