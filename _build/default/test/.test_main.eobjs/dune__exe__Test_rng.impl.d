test/test_rng.ml: Alcotest Array Counter_rng Float Hashtbl Int64 QCheck QCheck_alcotest Splitmix Tensor
