test/test_shape.ml: Alcotest Array QCheck QCheck_alcotest Shape
