test/test_tensor.ml: Alcotest Array Float List Printf QCheck QCheck_alcotest Stdlib String Tensor
