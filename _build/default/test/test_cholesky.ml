(* Tests for the Cholesky module. *)

let t = Alcotest.test_case

let random_spd stream n =
  (* A Aᵀ + n·I is SPD. *)
  let a = Tensor.init [| n; n |] (fun _ -> Splitmix.Stream.normal stream) in
  Tensor.add
    (Tensor.matmul a (Tensor.transpose a))
    (Tensor.mul_scalar (Tensor.eye n) (float_of_int n))

let test_factor_reconstructs () =
  let stream = Splitmix.Stream.create 7L in
  List.iter
    (fun n ->
      let a = random_spd stream n in
      let l = Cholesky.factor a in
      Alcotest.(check bool)
        (Printf.sprintf "L L^T = A (n=%d)" n)
        true
        (Tensor.allclose ~rtol:1e-9 ~atol:1e-9 (Tensor.matmul l (Tensor.transpose l)) a);
      (* L is lower triangular. *)
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          Alcotest.(check (float 0.)) "upper zero" 0. (Tensor.get l [| i; j |])
        done
      done)
    [ 1; 2; 5; 12 ]

let test_solves () =
  let stream = Splitmix.Stream.create 8L in
  let n = 6 in
  let a = random_spd stream n in
  let x_true = Tensor.init [| n |] (fun _ -> Splitmix.Stream.normal stream) in
  let b = Tensor.matvec a x_true in
  let x = Cholesky.solve_posdef a b in
  Alcotest.(check bool) "solve_posdef recovers x" true
    (Tensor.allclose ~rtol:1e-8 ~atol:1e-8 x x_true);
  let l = Cholesky.factor a in
  let y = Cholesky.solve_lower l b in
  Alcotest.(check bool) "solve_lower" true
    (Tensor.allclose ~rtol:1e-8 ~atol:1e-8 (Tensor.matvec l y) b);
  let u = Tensor.transpose l in
  let w = Cholesky.solve_upper u b in
  Alcotest.(check bool) "solve_upper" true
    (Tensor.allclose ~rtol:1e-8 ~atol:1e-8 (Tensor.matvec u w) b)

let test_inverse_and_logdet () =
  let stream = Splitmix.Stream.create 9L in
  let n = 5 in
  let a = random_spd stream n in
  let l = Cholesky.factor a in
  let inv = Cholesky.inverse_from_factor l in
  Alcotest.(check bool) "A A^-1 = I" true
    (Tensor.allclose ~rtol:1e-8 ~atol:1e-8 (Tensor.matmul a inv) (Tensor.eye n));
  (* log det via the identity det(diag(d)) for a diagonal matrix. *)
  let d = Tensor.create [| 2; 2 |] [| 4.; 0.; 0.; 9. |] in
  let ld = Cholesky.log_det_from_factor (Cholesky.factor d) in
  Alcotest.(check (float 1e-10)) "log det diag(4,9)" (Stdlib.log 36.) ld

let test_failures () =
  Alcotest.check_raises "non-square"
    (Invalid_argument "Cholesky.factor: square rank-2 tensor required") (fun () ->
      ignore (Cholesky.factor (Tensor.zeros [| 2; 3 |])));
  let not_pd = Tensor.create [| 2; 2 |] [| 1.; 2.; 2.; 1. |] in
  (match Cholesky.factor not_pd with
  | _ -> Alcotest.fail "expected failure on indefinite matrix"
  | exception Failure _ -> ())

let prop_identity_factor =
  QCheck.Test.make ~name:"chol(c*I) = sqrt(c)*I" ~count:50
    (QCheck.pair QCheck.(int_range 1 8) QCheck.(float_range 0.1 100.)) (fun (n, c) ->
      let l = Cholesky.factor (Tensor.mul_scalar (Tensor.eye n) c) in
      Tensor.allclose ~rtol:1e-12 ~atol:1e-12 l
        (Tensor.mul_scalar (Tensor.eye n) (Stdlib.sqrt c)))

let suites =
  [
    ( "cholesky",
      [
        t "factor reconstructs" `Quick test_factor_reconstructs;
        t "triangular and posdef solves" `Quick test_solves;
        t "inverse and log det" `Quick test_inverse_and_logdet;
        t "failure modes" `Quick test_failures;
        QCheck_alcotest.to_alcotest prop_identity_factor;
      ] );
  ]
