(* The shipped concrete-syntax program corpus: every program must parse,
   validate, agree across interpreter / local VM / PC VM / jit on a grid
   of inputs, and match an OCaml specification. *)

let t = Alcotest.test_case
let reg = Prim.standard ()

let corpus_dir =
  (* Tests run inside _build/default/test; the corpus lives in the source
     tree three levels up. *)
  let candidates = [ "examples/programs"; "../../../examples/programs" ] in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> Alcotest.fail "cannot locate examples/programs"

let load name =
  match Parser.parse_file (Filename.concat corpus_dir name) with
  | Ok p ->
    Validate.check_exn reg p;
    p
  | Error e -> Alcotest.failf "%s: %s" name (Parser.string_of_error e)

(* Run the program on scalar input tuples through all engines; check the
   first output against [spec] and all engines against each other. *)
let check_program name ~inputs ~spec =
  let prog = load name in
  let n_args = List.length (List.hd inputs) in
  let compiled =
    Autobatch.compile ~registry:reg
      ~input_shapes:(List.init n_args (fun _ -> Shape.scalar))
      prog
  in
  let z = List.length inputs in
  let batch =
    List.init n_args (fun i ->
        Tensor.of_list (List.map (fun tuple -> List.nth tuple i) inputs))
  in
  let pc = Autobatch.run_pc compiled ~batch in
  let local = Autobatch.run_local compiled ~batch in
  let jit = Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch in
  List.iteri
    (fun idx (a, (b, c)) ->
      Alcotest.(check bool) (Printf.sprintf "%s: local output %d" name idx) true
        (Tensor.equal a b);
      Alcotest.(check bool) (Printf.sprintf "%s: jit output %d" name idx) true
        (Tensor.equal a c))
    (List.combine pc (List.combine local jit));
  List.iteri
    (fun b tuple ->
      let interp =
        Autobatch.run_single compiled ~member:b
          ~args:(List.map Tensor.scalar tuple)
      in
      Alcotest.(check bool) (Printf.sprintf "%s: interp member %d" name b) true
        (Tensor.equal (List.hd interp) (Tensor.scalar (Tensor.data (List.hd pc)).(b)));
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "%s(%s)" name (String.concat "," (List.map string_of_float tuple)))
        (spec tuple)
        (Tensor.data (List.hd pc)).(b))
    inputs

let rec gcd_spec a b = if b = 0 then a else gcd_spec b (a mod b)

let test_gcd () =
  check_program "gcd.ab"
    ~inputs:[ [ 252.; 105. ]; [ 17.; 5. ]; [ 8.; 12. ]; [ 7.; 0. ]; [ 100.; 100. ] ]
    ~spec:(fun t ->
      match t with
      | [ a; b ] -> float_of_int (gcd_spec (int_of_float a) (int_of_float b))
      | _ -> assert false)

let test_newton_sqrt () =
  let prog = load "newton_sqrt.ab" in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar; Shape.scalar ] prog
  in
  let xs = [ 2.; 9.; 1e6; 0.25; 0. ] in
  let batch = [ Tensor.of_list xs; Tensor.full [| 5 |] 1e-9 ] in
  let out = Autobatch.run_pc compiled ~batch in
  List.iteri
    (fun i x ->
      Alcotest.(check (float 1e-4))
        (Printf.sprintf "sqrt(%g)" x)
        (Stdlib.sqrt x)
        (Tensor.data (List.hd out)).(i))
    xs;
  (* Larger inputs take more iterations: divergent trip counts. *)
  let iters = Tensor.data (List.nth out 1) in
  Alcotest.(check bool) "iteration counts diverge" true (iters.(2) > iters.(0))

let mandel_spec cr ci =
  let zr = ref 0. and zi = ref 0. and n = ref 0 in
  while (!zr *. !zr) +. (!zi *. !zi) <= 4. && !n < 100 do
    let t = (!zr *. !zr) -. (!zi *. !zi) +. cr in
    zi := (2. *. !zr *. !zi) +. ci;
    zr := t;
    incr n
  done;
  float_of_int !n

let test_mandelbrot () =
  check_program "mandelbrot.ab"
    ~inputs:
      [ [ 0.; 0. ]; [ 2.; 2. ]; [ -1.; 0. ]; [ 0.3; 0.5 ]; [ -0.75; 0.1 ];
        [ 0.25; 0. ] ]
    ~spec:(fun t ->
      match t with [ cr; ci ] -> mandel_spec cr ci | _ -> assert false)

let rec choose_spec n k =
  if k <= 0 || k >= n then 1. else choose_spec (n - 1) (k - 1) +. choose_spec (n - 1) k

let test_binomial () =
  check_program "binomial.ab"
    ~inputs:[ [ 5.; 2. ]; [ 10.; 3. ]; [ 8.; 8. ]; [ 6.; 0. ]; [ 12.; 6. ] ]
    ~spec:(fun t ->
      match t with
      | [ n; k ] -> choose_spec (int_of_float n) (int_of_float k)
      | _ -> assert false)

let primes_spec n =
  let count = ref 0 in
  for k = 2 to n do
    let is_p = ref (k >= 2) in
    let d = ref 2 in
    while !d * !d <= k do
      if k mod !d = 0 then is_p := false;
      incr d
    done;
    if !is_p then incr count
  done;
  float_of_int !count

let test_primes () =
  check_program "primes.ab"
    ~inputs:[ [ 0. ]; [ 2. ]; [ 10. ]; [ 50. ]; [ 97. ] ]
    ~spec:(fun t ->
      match t with [ n ] -> primes_spec (int_of_float n) | _ -> assert false)

let test_corpus_parses_and_roundtrips () =
  Array.iter
    (fun file ->
      if Filename.check_suffix file ".ab" then begin
        let prog = load file in
        (* Emit and re-parse: the corpus is round-trip stable. *)
        match Parser.parse_string (Parser.to_source prog) with
        | Ok p2 ->
          Alcotest.(check string) (file ^ " round trip") (Parser.to_source prog)
            (Parser.to_source p2)
        | Error e -> Alcotest.failf "%s reparse: %s" file (Parser.string_of_error e)
      end)
    (Sys.readdir corpus_dir)

let suites =
  [
    ( "corpus",
      [
        t "gcd.ab" `Quick test_gcd;
        t "newton_sqrt.ab" `Quick test_newton_sqrt;
        t "mandelbrot.ab" `Quick test_mandelbrot;
        t "binomial.ab" `Quick test_binomial;
        t "primes.ab" `Quick test_primes;
        t "corpus round trips" `Quick test_corpus_parses_and_roundtrips;
      ] );
  ]

let rec collatz_spec n = if n <= 1 then 0. else if n mod 2 = 0 then 1. +. collatz_spec (n / 2) else 1. +. collatz_spec ((3 * n) + 1)

let test_collatz_ab () =
  check_program "collatz.ab"
    ~inputs:[ [ 1. ]; [ 6. ]; [ 7. ]; [ 27. ]; [ 2. ] ]
    ~spec:(fun t ->
      match t with [ n ] -> collatz_spec (int_of_float n) | _ -> assert false)

let rec ack_spec m n =
  if m = 0 then n + 1
  else if n = 0 then ack_spec (m - 1) 1
  else ack_spec (m - 1) (ack_spec m (n - 1))

let test_ackermann_ab () =
  check_program "ackermann.ab"
    ~inputs:[ [ 0.; 4. ]; [ 1.; 3. ]; [ 2.; 3. ]; [ 3.; 3. ] ]
    ~spec:(fun t ->
      match t with
      | [ m; n ] -> float_of_int (ack_spec (int_of_float m) (int_of_float n))
      | _ -> assert false)

let suites =
  match suites with
  | [ (name, cases) ] ->
    [
      ( name,
        cases
        @ [
            t "collatz.ab" `Quick test_collatz_ab;
            t "ackermann.ab" `Quick test_ackermann_ab;
          ] );
    ]
  | other -> other
