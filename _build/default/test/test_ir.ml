(* Tests for the IR layers: primitives, validation, CFG lowering,
   liveness, call graph, shape inference, and stack lowering. *)

let t = Alcotest.test_case
let reg = Prim.standard ()

let expect_errors program patterns =
  match Validate.check_program reg program with
  | Ok () -> Alcotest.failf "expected validation errors %s" (String.concat "," patterns)
  | Error msgs ->
    List.iter
      (fun pat ->
        let hit =
          List.exists
            (fun m ->
              (* substring search *)
              let lm = String.length m and lp = String.length pat in
              let rec go i = i + lp <= lm && (String.sub m i lp = pat || go (i + 1)) in
              go 0)
            msgs
        in
        Alcotest.(check bool)
          (Printf.sprintf "error mentioning %S in [%s]" pat (String.concat "; " msgs))
          true hit)
      patterns

(* ---------- primitives ---------- *)

let test_prim_registry () =
  Alcotest.(check bool) "find add" true (Option.is_some (Prim.find reg "add"));
  Alcotest.(check bool) "find missing" true (Option.is_none (Prim.find reg "nope"));
  Alcotest.check_raises "find_exn missing"
    (Invalid_argument "Prim.find_exn: unknown primitive \"nope\"") (fun () ->
      ignore (Prim.find_exn reg "nope"));
  let copy = Prim.copy reg in
  Prim.register copy (Prim.elementwise "custom" (fun x -> x +. 1.));
  Alcotest.(check bool) "copy extended" true (Option.is_some (Prim.find copy "custom"));
  Alcotest.(check bool) "original untouched" true (Option.is_none (Prim.find reg "custom"))

let test_prim_shapes () =
  let p = Prim.find_exn reg "add" in
  Alcotest.(check (array int)) "add broadcast" [| 3 |] (p.Prim.shape [ [| 3 |]; [||] ]);
  (match p.Prim.shape [ [| 2 |]; [| 3 |] ] with
  | _ -> Alcotest.fail "expected shape error"
  | exception Prim.Shape_error _ -> ());
  let d = Prim.find_exn reg "dot" in
  Alcotest.(check (array int)) "dot scalar" [||] (d.Prim.shape [ [| 4 |]; [| 4 |] ]);
  (match d.Prim.shape [ [| 4 |]; [| 5 |] ] with
  | _ -> Alcotest.fail "dot shape error expected"
  | exception Prim.Shape_error _ -> ());
  let s = Prim.find_exn reg "sum" in
  Alcotest.(check (array int)) "sum reduces" [||] (s.Prim.shape [ [| 7 |] ])

let test_prim_batched_rank_align () =
  (* Per-member scalar times per-member vector. *)
  let mul = Prim.find_exn reg "mul" in
  let scalars = Tensor.of_list [ 2.; 3. ] in
  let vectors = Tensor.create [| 2; 3 |] [| 1.; 1.; 1.; 10.; 10.; 10. |] in
  let out = mul.Prim.batched ~members:[| 0; 1 |] [ scalars; vectors ] in
  Alcotest.(check bool) "scalar-vector batched broadcast" true
    (Tensor.allclose out (Tensor.create [| 2; 3 |] [| 2.; 2.; 2.; 30.; 30.; 30. |]));
  (* select with scalar condition per member *)
  let sel = Prim.find_exn reg "select" in
  let cond = Tensor.of_list [ 1.; 0. ] in
  let a = Tensor.create [| 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let b = Tensor.create [| 2; 2 |] [| -1.; -2.; -3.; -4. |] in
  let out = sel.Prim.batched ~members:[| 0; 1 |] [ cond; a; b ] in
  Alcotest.(check bool) "batched select" true
    (Tensor.allclose out (Tensor.create [| 2; 2 |] [| 1.; 2.; -3.; -4. |]))

let test_prim_single_vs_batched () =
  (* Elementwise and reductions agree between paths. *)
  List.iter
    (fun name ->
      let p = Prim.find_exn reg name in
      let x = Tensor.create [| 3; 4 |] (Array.init 12 (fun i -> (float_of_int i /. 3.) +. 0.1)) in
      let batched = p.Prim.batched ~members:[| 0; 1; 2 |] [ x ] in
      for b = 0 to 2 do
        let single = p.Prim.single ~member:b [ Tensor.slice_row x b ] in
        let got =
          if Tensor.rank batched = 1 then Tensor.scalar (Tensor.data batched).(b)
          else Tensor.slice_row batched b
        in
        Alcotest.(check bool) (name ^ " single=batched") true (Tensor.equal single got)
      done)
    [ "exp"; "log"; "sqrt"; "square"; "sigmoid"; "sum"; "sum_sq"; "neg"; "floor" ]

let test_index_update_prims () =
  let idx = Prim.find_exn reg "index" in
  let upd = Prim.find_exn reg "update" in
  (* Shapes. *)
  Alcotest.(check (array int)) "index shape" [||] (idx.Prim.shape [ [| 5 |]; [||] ]);
  Alcotest.(check (array int)) "update shape" [| 5 |]
    (upd.Prim.shape [ [| 5 |]; [||]; [||] ]);
  (match idx.Prim.shape [ [| 5 |]; [| 2 |] ] with
  | _ -> Alcotest.fail "non-scalar index accepted"
  | exception Prim.Shape_error _ -> ());
  (* Single semantics + clamping. *)
  let v = Tensor.of_list [ 10.; 20.; 30. ] in
  let get i = Tensor.item (idx.Prim.single ~member:0 [ v; Tensor.scalar i ]) in
  Alcotest.(check (float 0.)) "index 1" 20. (get 1.);
  Alcotest.(check (float 0.)) "index clamps low" 10. (get (-7.));
  Alcotest.(check (float 0.)) "index clamps high" 30. (get 99.);
  Alcotest.(check (float 0.)) "index clamps NaN" 10. (get Float.nan);
  let v' = upd.Prim.single ~member:0 [ v; Tensor.scalar 2.; Tensor.scalar 99. ] in
  Alcotest.(check bool) "update writes" true
    (Tensor.equal v' (Tensor.of_list [ 10.; 20.; 99. ]));
  Alcotest.(check bool) "update is functional" true
    (Tensor.equal v (Tensor.of_list [ 10.; 20.; 30. ]));
  (* Batched semantics: per-member indices. *)
  let vb = Tensor.create [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let ib = Tensor.of_list [ 0.; 2. ] in
  let out = idx.Prim.batched ~members:[| 0; 1 |] [ vb; ib ] in
  Alcotest.(check bool) "batched index" true
    (Tensor.equal out (Tensor.of_list [ 1.; 6. ]));
  let xb = Tensor.of_list [ 9.; 8. ] in
  let ub = upd.Prim.batched ~members:[| 0; 1 |] [ vb; ib; xb ] in
  Alcotest.(check bool) "batched update" true
    (Tensor.equal ub (Tensor.create [| 2; 3 |] [| 9.; 2.; 3.; 4.; 5.; 8. |]))

let test_index_update_in_program () =
  (* reverse a fixed-size vector in the DSL using index/update. *)
  let prog =
    let open Lang in
    let open Lang.Infix in
    program ~main:"rev"
      [
        func "rev" ~params:[ "v"; "n" ]
          [
            assign "out" (var "v" * flt 0.);
            assign "i" (flt 0.);
            while_
              (var "i" < var "n")
              [
                assign "out"
                  (prim "update"
                     [ var "out"; var "n" - flt 1. - var "i";
                       prim "index" [ var "v"; var "i" ] ]);
                assign "i" (var "i" + flt 1.);
              ];
            return_ [ var "out" ];
          ];
      ]
  in
  let compiled = Autobatch.compile ~input_shapes:[ [| 4 |]; Shape.scalar ] prog in
  let v = Tensor.create [| 2; 4 |] [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 0. |] in
  let n = Tensor.of_list [ 4.; 3. ] in
  let out = List.hd (Autobatch.run_pc compiled ~batch:[ v; n ]) in
  Alcotest.(check bool) "member 0 reversed" true
    (Tensor.equal (Tensor.slice_row out 0) (Tensor.of_list [ 4.; 3.; 2.; 1. ]));
  Alcotest.(check bool) "member 1 reversed (shorter)" true
    (Tensor.equal (Tensor.slice_row out 1) (Tensor.of_list [ 7.; 6.; 5.; 0. ]));
  let local = List.hd (Autobatch.run_local compiled ~batch:[ v; n ]) in
  Alcotest.(check bool) "local agrees" true (Tensor.equal out local)

let test_rng_prims_member_keyed () =
  let u = Prim.find_exn reg "uniform" in
  let counters = Tensor.of_list [ 0.; 0. ] in
  let out = u.Prim.batched ~members:[| 0; 1 |] [ counters ] in
  Alcotest.(check bool) "same counter, different member => different draw" true
    ((Tensor.data out).(0) <> (Tensor.data out).(1));
  (* gathered execution keeps member identity *)
  let gathered = u.Prim.batched ~members:[| 1 |] [ Tensor.of_list [ 0. ] ] in
  Alcotest.(check (float 0.)) "gathered row uses global member id"
    (Tensor.data out).(1)
    (Tensor.data gathered).(0)

(* ---------- validation ---------- *)

let fn name params body = Lang.func name ~params body
let pr main funcs = Lang.program ~main funcs

let test_validate_ok () =
  match Validate.check_program reg Test_programs.fib with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "unexpected errors: %s" (String.concat "; " msgs)

let test_validate_errors () =
  expect_errors
    (pr "main" [ fn "main" [ "x" ] [ Lang.return_ [ Lang.prim "nope" [ Lang.var "x" ] ] ] ])
    [ "unknown primitive" ];
  expect_errors
    (pr "main" [ fn "main" [ "x" ] [ Lang.return_ [ Lang.prim "add" [ Lang.var "x" ] ] ] ])
    [ "wants 2 arguments" ];
  expect_errors
    (pr "missing" [ fn "main" [ "x" ] [ Lang.return_ [ Lang.var "x" ] ] ])
    [ "entry function" ];
  expect_errors
    (pr "main"
       [ fn "main" [ "x"; "x" ] [ Lang.return_ [ Lang.var "x" ] ] ])
    [ "duplicate parameter" ];
  expect_errors
    (pr "main" [ fn "main" [ "x" ] [ Lang.assign "y" (Lang.var "x") ] ])
    [ "without returning" ];
  expect_errors
    (pr "main"
       [
         fn "main" [ "x" ]
           [
             Lang.if_ (Lang.var "x") [ Lang.return_ [ Lang.var "x" ] ]
               [ Lang.return_ [ Lang.var "x"; Lang.var "x" ] ];
           ];
       ])
    [ "differing arity" ];
  expect_errors
    (pr "main"
       [
         fn "main" [ "x" ]
           [ Lang.call [ "a" ] "other" [ Lang.var "x" ]; Lang.return_ [ Lang.var "a" ] ];
       ])
    [ "unknown function" ];
  expect_errors
    (pr "main"
       [
         fn "main" [ "x" ]
           [ Lang.call [ "a"; "b" ] "aux" [ Lang.var "x" ]; Lang.return_ [ Lang.var "a" ] ];
         fn "aux" [ "y" ] [ Lang.return_ [ Lang.var "y" ] ];
       ])
    [ "binds 2 results" ];
  expect_errors
    (pr "main" [ fn "main" [ "x" ] [ Lang.return_ [ Lang.var "bad/name" ] ] ])
    [ "bad variable name" ]

let test_validate_use_before_def () =
  (* y defined only on one branch, then used. *)
  expect_errors
    (pr "main"
       [
         fn "main" [ "x" ]
           [
             Lang.if_ (Lang.var "x") [ Lang.assign "y" (Lang.flt 1.) ] [];
             Lang.return_ [ Lang.var "y" ];
           ];
       ])
    [ "used before definition" ];
  (* Defined on both branches is fine. *)
  match
    Validate.check_program reg
      (pr "main"
         [
           fn "main" [ "x" ]
             [
               Lang.if_ (Lang.var "x")
                 [ Lang.assign "y" (Lang.flt 1.) ]
                 [ Lang.assign "y" (Lang.flt 2.) ];
               Lang.return_ [ Lang.var "y" ];
             ];
         ])
  with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "unexpected: %s" (String.concat ";" msgs)

let test_validate_loop_carried () =
  (* Variable defined only inside a while body, read after: may not
     execute — must be an error. *)
  expect_errors
    (pr "main"
       [
         fn "main" [ "x" ]
           [
             Lang.while_ (Lang.var "x") [ Lang.assign "y" (Lang.flt 1.); Lang.assign "x" (Lang.flt 0.) ];
             Lang.return_ [ Lang.var "y" ];
           ];
       ])
    [ "used before definition" ]

(* ---------- CFG lowering ---------- *)

let test_lower_fib_structure () =
  let cfg = Lower_cfg.lower Test_programs.fib in
  let f = Cfg.entry_func cfg in
  Alcotest.(check string) "entry" "fib" f.Cfg.name;
  Alcotest.(check (list string)) "params" [ "fib/n" ] f.Cfg.params;
  Alcotest.(check (list string)) "results" [ "fib/$ret0" ] f.Cfg.result_vars;
  Alcotest.(check bool) "a few blocks" true (Array.length f.Cfg.blocks >= 3);
  (* Entry ends in a branch. *)
  (match f.Cfg.blocks.(0).Cfg.term with
  | Cfg.Branch _ -> ()
  | Cfg.Jump _ | Cfg.Return -> Alcotest.fail "entry should branch");
  (* All jump targets are in range. *)
  Array.iteri
    (fun i b ->
      List.iter
        (fun j ->
          Alcotest.(check bool)
            (Printf.sprintf "target of block %d in range" i)
            true
            (j >= 0 && j < Array.length f.Cfg.blocks))
        (Cfg.successors f i);
      ignore b)
    f.Cfg.blocks

let test_lower_while_structure () =
  let cfg = Lower_cfg.lower Test_programs.fact_loop in
  let f = Cfg.entry_func cfg in
  (* The condition block must be re-entered from the body: some block jumps
     backward. *)
  let backward = ref false in
  Array.iteri
    (fun i b ->
      List.iter (fun j -> if j <= i then backward := true) (Cfg.successors f i);
      ignore b)
    f.Cfg.blocks;
  Alcotest.(check bool) "loop back edge" true !backward

let test_result_arity () =
  Alcotest.(check int) "fib returns 1" 1
    (Lower_cfg.result_arity (List.hd Test_programs.fib.Lang.funcs));
  let dm = Lang.find_func Test_programs.divmod "divmod" |> Option.get in
  Alcotest.(check int) "divmod returns 2" 2 (Lower_cfg.result_arity dm)

(* ---------- liveness ---------- *)

let test_liveness_fib () =
  let cfg = Lower_cfg.lower Test_programs.fib in
  let f = Cfg.entry_func cfg in
  let lv = Liveness.analyze f in
  (* n is live into the entry block. *)
  Alcotest.(check bool) "n live at entry" true
    (Ir_util.Sset.mem "fib/n" (Liveness.live_in lv 0));
  let cross = Liveness.cross_block_vars lv f in
  (* n is read both in the condition block and the else block. *)
  Alcotest.(check bool) "n crosses blocks" true (Ir_util.Sset.mem "fib/n" cross);
  (* left lives entirely inside the else block: it crosses a *call*, not a
     block boundary (which is why O2 and O3 are separate analyses). *)
  Alcotest.(check bool) "left does not cross blocks" false
    (Ir_util.Sset.mem "fib/left" cross)

let test_live_after_op () =
  (* In fib's else block, n must be live immediately after the first
     recursive call (it is still needed for the second call's argument). *)
  let cfg = Lower_cfg.lower Test_programs.fib in
  let f = Cfg.entry_func cfg in
  let lv = Liveness.analyze f in
  let found = ref false in
  Array.iteri
    (fun bi b ->
      List.iteri
        (fun oi op ->
          match op with
          | Cfg.Call_op { dsts = [ d ]; _ } when d = "fib/left" ->
            found := true;
            let live = Liveness.live_after_op lv f ~block:bi ~op:oi in
            Alcotest.(check bool) "n live after first call" true
              (Ir_util.Sset.mem "fib/n" live)
          | Cfg.Call_op _ | Cfg.Prim_op _ | Cfg.Const_op _ | Cfg.Mov _ -> ())
        b.Cfg.ops)
    f.Cfg.blocks;
  Alcotest.(check bool) "found first call" true !found

(* ---------- call graph ---------- *)

let test_callgraph () =
  let cfg = Lower_cfg.lower Test_programs.even_odd in
  let cg = Callgraph.build cfg in
  Alcotest.(check bool) "is_even calls is_odd" true
    (Ir_util.Sset.mem "is_odd" (Callgraph.callees cg "is_even"));
  Alcotest.(check bool) "mutual reach" true
    (Callgraph.may_clobber_caller cg ~caller:"is_even" ~callee:"is_odd");
  Alcotest.(check bool) "recursive program" true
    (Callgraph.is_recursive_program cg ~entry:"is_even");
  let flat = Lower_cfg.lower Test_programs.fact_loop in
  let cgf = Callgraph.build flat in
  Alcotest.(check bool) "loop program not recursive" false
    (Callgraph.is_recursive_program cgf ~entry:"fact");
  (* Non-mutual helper call must not clobber. *)
  let helper = Lower_cfg.lower Test_programs.divmod in
  let cgh = Callgraph.build helper in
  Alcotest.(check bool) "helper cannot clobber caller" false
    (Callgraph.may_clobber_caller cgh ~caller:"use_divmod" ~callee:"divmod")

(* ---------- shape inference ---------- *)

let test_shape_infer_fib () =
  let cfg = Lower_cfg.lower Test_programs.fib in
  let shapes = Shape_infer.infer reg cfg ~inputs:[ Shape.scalar ] in
  Alcotest.(check (array int)) "ret scalar" [||]
    (Ir_util.Smap.find "fib/$ret0" shapes);
  Alcotest.(check (list (array int))) "outputs" [ [||] ]
    (Shape_infer.output_shapes reg cfg ~inputs:[ Shape.scalar ])

let test_shape_infer_vector_recursion () =
  let cfg = Lower_cfg.lower Test_programs.vec_double in
  let shapes = Shape_infer.infer reg cfg ~inputs:[ [| 4 |]; Shape.scalar ] in
  Alcotest.(check (array int)) "w is a vector" [| 4 |]
    (Ir_util.Smap.find "vdouble/w" shapes)

let test_shape_infer_errors () =
  let bad =
    pr "main"
      [
        fn "main" [ "v" ]
          [
            Lang.assign "c" (Lang.prim "dot" [ Lang.var "v"; Lang.var "v" ]);
            Lang.if_ (Lang.var "v") [ Lang.return_ [ Lang.var "c" ] ]
              [ Lang.return_ [ Lang.var "c" ] ];
          ];
      ]
  in
  let cfg = Lower_cfg.lower bad in
  (match Shape_infer.infer reg cfg ~inputs:[ [| 3 |] ] with
  | _ -> Alcotest.fail "expected non-scalar branch condition error"
  | exception Shape_infer.Error _ -> ());
  let mismatch =
    pr "main"
      [
        fn "main" [ "v" ]
          [ Lang.return_ [ Lang.prim "dot" [ Lang.var "v"; Lang.vec [| 1.; 2. |] ] ] ];
      ]
  in
  let cfg2 = Lower_cfg.lower mismatch in
  (match Shape_infer.infer reg cfg2 ~inputs:[ [| 3 |] ] with
  | _ -> Alcotest.fail "expected dot shape error"
  | exception Shape_infer.Error _ -> ())

(* ---------- stack lowering ---------- *)

let test_stack_fib () =
  let cfg = Lower_cfg.lower Test_programs.fib in
  let shapes = Shape_infer.infer reg cfg ~inputs:[ Shape.scalar ] in
  let sp = Lower_stack.lower ~shapes cfg in
  (* The paper's Figure 3: only n and left need stacks. *)
  Alcotest.(check string) "n stacked" "stacked"
    (Var_class.to_string (Stack_ir.class_of sp "fib/n"));
  Alcotest.(check string) "left stacked" "stacked"
    (Var_class.to_string (Stack_ir.class_of sp "fib/left"));
  Alcotest.(check string) "right masked" "masked"
    (Var_class.to_string (Stack_ir.class_of sp "fib/right"));
  Alcotest.(check string) "ret masked" "masked"
    (Var_class.to_string (Stack_ir.class_of sp "fib/$ret0"));
  (* Pushes and pops balance per variable. *)
  let pushes = Hashtbl.create 8 and pops = Hashtbl.create 8 in
  Array.iter
    (fun (b : Stack_ir.block) ->
      List.iter
        (fun op ->
          match op with
          | Stack_ir.Spush v ->
            Hashtbl.replace pushes v (1 + Option.value ~default:0 (Hashtbl.find_opt pushes v))
          | Stack_ir.Spop v ->
            Hashtbl.replace pops v (1 + Option.value ~default:0 (Hashtbl.find_opt pops v))
          | Stack_ir.Sprim _ | Stack_ir.Sconst _ | Stack_ir.Smov _ -> ())
        b.Stack_ir.ops)
    sp.Stack_ir.blocks;
  Hashtbl.iter
    (fun v n ->
      Alcotest.(check int) (v ^ " pushes = pops") n
        (Option.value ~default:0 (Hashtbl.find_opt pops v)))
    pushes;
  (* Entry block of the entry function is 0. *)
  Alcotest.(check int) "entry head" 0 (List.assoc "fib" sp.Stack_ir.func_entries)

let test_stack_nonrecursive () =
  let cfg = Lower_cfg.lower Test_programs.fact_loop in
  let sp = Lower_stack.lower cfg in
  let _, _, stacked = Stack_ir.stats sp in
  Alcotest.(check int) "no stacks" 0 stacked;
  (* No push/pop instructions at all. *)
  Array.iter
    (fun (b : Stack_ir.block) ->
      List.iter
        (fun op ->
          match op with
          | Stack_ir.Spush _ | Stack_ir.Spop _ -> Alcotest.fail "unexpected stack op"
          | Stack_ir.Sprim _ | Stack_ir.Sconst _ | Stack_ir.Smov _ -> ())
        b.Stack_ir.ops)
    sp.Stack_ir.blocks

let test_stack_helper_call_needs_no_saves () =
  (* divmod's caller cannot be re-entered, so nothing is saved even though
     variables are live across the call. *)
  let cfg = Lower_cfg.lower Test_programs.divmod in
  let sp = Lower_stack.lower cfg in
  let _, _, stacked = Stack_ir.stats sp in
  Alcotest.(check int) "non-reentrant call saves nothing" 0 stacked

let test_stack_noopt_saves_more () =
  let cfg = Lower_cfg.lower Test_programs.divmod in
  let sp =
    Lower_stack.lower
      ~options:{ Lower_stack.detect_temporaries = true; save_live_only = false }
      cfg
  in
  let _, _, stacked = Stack_ir.stats sp in
  Alcotest.(check bool) "O3 off forces stacks" true (stacked > 0)

let test_stack_origin_mapping () =
  let cfg = Lower_cfg.lower Test_programs.even_odd in
  let sp = Lower_stack.lower cfg in
  Alcotest.(check int) "origin per block" (Array.length sp.Stack_ir.blocks)
    (Array.length sp.Stack_ir.origin);
  let names =
    Array.to_list sp.Stack_ir.origin |> List.map fst |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "both functions present" [ "is_even"; "is_odd" ] names

let suites =
  [
    ( "prim",
      [
        t "registry" `Quick test_prim_registry;
        t "shape rules" `Quick test_prim_shapes;
        t "batched rank alignment" `Quick test_prim_batched_rank_align;
        t "single vs batched agree" `Quick test_prim_single_vs_batched;
        t "index/update" `Quick test_index_update_prims;
        t "index/update in programs" `Quick test_index_update_in_program;
        t "rng prims keyed by member" `Quick test_rng_prims_member_keyed;
      ] );
    ( "validate",
      [
        t "accepts fib" `Quick test_validate_ok;
        t "error classes" `Quick test_validate_errors;
        t "use before definition" `Quick test_validate_use_before_def;
        t "loop-carried definition" `Quick test_validate_loop_carried;
      ] );
    ( "lower-cfg",
      [
        t "fib structure" `Quick test_lower_fib_structure;
        t "while structure" `Quick test_lower_while_structure;
        t "result arity" `Quick test_result_arity;
      ] );
    ( "analysis",
      [
        t "liveness on fib" `Quick test_liveness_fib;
        t "live after op" `Quick test_live_after_op;
        t "call graph" `Quick test_callgraph;
        t "shape inference fib" `Quick test_shape_infer_fib;
        t "shape inference vectors" `Quick test_shape_infer_vector_recursion;
        t "shape inference errors" `Quick test_shape_infer_errors;
      ] );
    ( "lower-stack",
      [
        t "fib classes and balance" `Quick test_stack_fib;
        t "non-recursive: no stacks" `Quick test_stack_nonrecursive;
        t "helper calls save nothing" `Quick test_stack_helper_call_needs_no_saves;
        t "O3 off saves more" `Quick test_stack_noopt_saves_more;
        t "origin mapping" `Quick test_stack_origin_mapping;
      ] );
  ]

(* ---------- CFG interpreter ---------- *)

let test_interp_cfg_fib () =
  let cfg = Lower_cfg.lower Test_programs.fib in
  List.iter
    (fun n ->
      let out = Interp_cfg.run reg cfg ~member:0 ~args:[ Tensor.scalar n ] in
      Alcotest.(check (float 0.))
        (Printf.sprintf "cfg fib(%g)" n)
        (Test_programs.fib_spec (int_of_float n))
        (Tensor.item (List.hd out)))
    [ 0.; 1.; 5.; 9. ]

let test_interp_cfg_multi_result () =
  let cfg = Lower_cfg.lower Test_programs.divmod in
  let out =
    Interp_cfg.run reg cfg ~member:0 ~args:[ Tensor.scalar 17.; Tensor.scalar 5. ]
  in
  Alcotest.(check (float 0.)) "use_divmod(17,5)" 302. (Tensor.item (List.hd out))

let test_interp_cfg_step_limit () =
  let spin =
    Lang.program ~main:"spin"
      [
        Lang.func "spin" ~params:[ "x" ]
          [
            Lang.while_ (Lang.prim "ge" [ Lang.var "x"; Lang.flt 0. ])
              [ Lang.assign "x" (Lang.prim "add" [ Lang.var "x"; Lang.flt 1. ]) ];
            Lang.return_ [ Lang.var "x" ];
          ];
      ]
  in
  let cfg = Lower_cfg.lower spin in
  Alcotest.check_raises "cfg step limit" Interp_cfg.Step_limit_exceeded (fun () ->
      ignore (Interp_cfg.run ~max_steps:50 reg cfg ~member:0 ~args:[ Tensor.scalar 0. ]))

let interp_cfg_suite =
  ( "interp-cfg",
    [
      t "fibonacci" `Quick test_interp_cfg_fib;
      t "multi-result calls" `Quick test_interp_cfg_multi_result;
      t "step limit" `Quick test_interp_cfg_step_limit;
    ] )

let suites = suites @ [ interp_cfg_suite ]
