(* Tests for the concrete-syntax frontend. *)

let t = Alcotest.test_case
let reg = Prim.standard ()

let parse_ok ?main src =
  match Parser.parse_string ?main src with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" (Parser.string_of_error e)

let parse_err src =
  match Parser.parse_string src with
  | Ok _ -> Alcotest.failf "expected a parse error for:\n%s" src
  | Error e -> e

let fib_src =
  {|
# Recursive Fibonacci - the paper's running example.
def fib(n) {
  if (n <= 1) { return 1; }
  else {
    left = fib(n - 2);
    right = fib(n - 1);
    return left + right;
  }
}
|}

let test_parse_fib () =
  let p = parse_ok fib_src in
  Alcotest.(check string) "entry" "fib" p.Lang.main;
  Validate.check_exn reg p;
  let compiled = Autobatch.compile ~registry:reg ~input_shapes:[ Shape.scalar ] p in
  let out = Autobatch.run_pc compiled ~batch:[ Tensor.of_list [ 10. ] ] in
  Alcotest.(check (float 0.)) "fib(10)" 89. (Tensor.data (List.hd out)).(0)

let test_parse_precedence () =
  let p =
    parse_ok
      {| def main(x) { return 1 + 2 * x, (1 + 2) * x, -x * 3, !(x > 9) && x < 9; } |}
  in
  let run v =
    Interp.run reg p ~member:0 ~args:[ Tensor.scalar v ]
    |> List.map Tensor.item
  in
  Alcotest.(check (list (float 0.))) "precedence at x=4"
    [ 9.; 12.; -12.; 1. ] (run 4.)

let test_parse_multi_call_and_vectors () =
  let p =
    parse_ok
      {|
def main(v) {
  q, r = divmod(sum(v), 4);
  return q, r, dot(v, [1, 2, 3]);
}
def divmod(a, b) {
  q = 0; r = a;
  while (r >= b) { r = r - b; q = q + 1; }
  return q, r;
}
|}
  in
  Validate.check_exn reg p;
  let out =
    Interp.run reg p ~member:0 ~args:[ Tensor.of_list [ 3.; 4.; 7. ] ]
    |> List.map Tensor.item
  in
  (* sum = 14 -> q=3 r=2; dot = 3+8+21 = 32 *)
  Alcotest.(check (list (float 0.))) "values" [ 3.; 2.; 32. ] out

let test_entry_convention () =
  let src = {| def helper(x) { return x; } def main(x) { return x + 1; } |} in
  Alcotest.(check string) "named main wins" "main" (parse_ok src).Lang.main;
  let src2 = {| def first(x) { return x; } def second(x) { return x; } |} in
  Alcotest.(check string) "else first function" "first" (parse_ok src2).Lang.main;
  Alcotest.(check string) "override" "second"
    (parse_ok ~main:"second" src2).Lang.main

let test_comments_and_whitespace () =
  let p =
    parse_ok "def main(x) { # set y\n  y = x; # twice\n  return y * 2.5e-1; }"
  in
  let out = Interp.run reg p ~member:0 ~args:[ Tensor.scalar 8. ] in
  Alcotest.(check (float 0.)) "value" 2. (Tensor.item (List.hd out))

let test_parse_errors () =
  let check_mentions src fragment =
    let e = parse_err src in
    let msg = Parser.string_of_error e in
    let contains =
      let lm = String.length msg and lf = String.length fragment in
      let rec go i = i + lf <= lm && (String.sub msg i lf = fragment || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) (Printf.sprintf "%S in %S" fragment msg) true contains
  in
  check_mentions "" "empty program";
  check_mentions "def main(x) { return x }" "';'";
  check_mentions "def main(x) { return x; " "statement";
  check_mentions "def main(x) { y = ; return y; }" "expression";
  check_mentions "def main(x) { @ }" "unexpected character";
  check_mentions "def main(x) { a, b = x + 1; return a; }" "function call";
  (* Program-function applications inside expressions are rejected with a
     position. *)
  check_mentions "def main(x) { return 1 + main(x); }" "control flow";
  let e = parse_err "def main(x) {\n  y = ;\n  return y;\n}" in
  Alcotest.(check int) "error line" 2 e.Parser.line

let test_roundtrip_fixpoint () =
  List.iter
    (fun prog ->
      let s1 = Parser.to_source prog in
      let p2 = parse_ok s1 in
      let s2 = Parser.to_source p2 in
      Alcotest.(check string) "emit/parse fixpoint" s1 s2;
      (* Behavioral equality on a few inputs via the interpreter. *)
      List.iter
        (fun v ->
          let args =
            List.map (fun _ -> Tensor.scalar v)
              (Option.get (Lang.find_func prog prog.Lang.main)).Lang.params
          in
          let a = Interp.run reg prog ~member:0 ~args in
          let b = Interp.run reg p2 ~member:0 ~args in
          List.iter2
            (fun x y -> Alcotest.(check bool) "same behavior" true (Tensor.equal x y))
            a b)
        [ 0.; 1.; 5.; 9. ])
    [ Test_programs.fib; Test_programs.fact_loop; Test_programs.collatz;
      Test_programs.even_odd ]

let prop_roundtrip_random_programs =
  QCheck.Test.make ~name:"parser round-trips generated programs" ~count:60
    Test_random_programs.arb_program (fun prog ->
      match Parser.parse_string (Parser.to_source prog) with
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" (Parser.string_of_error e)
      | Ok p2 ->
        let s1 = Parser.to_source prog and s2 = Parser.to_source p2 in
        if s1 <> s2 then
          QCheck.Test.fail_reportf "fixpoint mismatch:\n%s\nvs\n%s" s1 s2;
        (* And behavior is preserved. *)
        let args = [ Tensor.scalar 2.; Tensor.scalar (-1.) ] in
        let a = Interp.run reg prog ~member:0 ~args in
        let b = Interp.run reg p2 ~member:0 ~args in
        List.for_all2 Tensor.equal a b)

let suites =
  [
    ( "parser",
      [
        t "fib end to end" `Quick test_parse_fib;
        t "operator precedence" `Quick test_parse_precedence;
        t "multi-result calls and vectors" `Quick test_parse_multi_call_and_vectors;
        t "entry-point convention" `Quick test_entry_convention;
        t "comments and floats" `Quick test_comments_and_whitespace;
        t "error reporting" `Quick test_parse_errors;
        t "round trip fixpoint" `Quick test_roundtrip_fixpoint;
        QCheck_alcotest.to_alcotest prop_roundtrip_random_programs;
      ] );
  ]
