(* Shared example programs for the test suites. *)

open Lang

(* Recursive Fibonacci — the paper's Figure 1/3 running example. *)
let fib =
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let rec fib_spec n = if n <= 1 then 1. else fib_spec (n - 2) +. fib_spec (n - 1)

(* Iterative factorial: loops, no recursion — must compile to a PC program
   with no data stacks. *)
let fact_loop =
  let open Lang.Infix in
  program ~main:"fact"
    [
      func "fact" ~params:[ "n" ]
        [
          assign "acc" (flt 1.);
          assign "i" (flt 1.);
          while_
            (var "i" <= var "n")
            [ assign "acc" (var "acc" * var "i"); assign "i" (var "i" + flt 1.) ];
          return_ [ var "acc" ];
        ];
    ]

let rec fact_spec n = if n <= 0 then 1. else float_of_int n *. fact_spec (n - 1)

(* Mutual recursion across two functions. *)
let even_odd =
  let open Lang.Infix in
  program ~main:"is_even"
    [
      func "is_even" ~params:[ "n" ]
        [
          if_ (var "n" <= flt 0.)
            [ return_ [ flt 1. ] ]
            [ call [ "r" ] "is_odd" [ var "n" - flt 1. ]; return_ [ var "r" ] ];
        ];
      func "is_odd" ~params:[ "n" ]
        [
          if_ (var "n" <= flt 0.)
            [ return_ [ flt 0. ] ]
            [ call [ "r" ] "is_even" [ var "n" - flt 1. ]; return_ [ var "r" ] ];
        ];
    ]

(* Collatz total stopping time: data-dependent while loop. *)
let collatz =
  let open Lang.Infix in
  program ~main:"collatz"
    [
      func "collatz" ~params:[ "n" ]
        [
          assign "steps" (flt 0.);
          while_
            (var "n" > flt 1.)
            [
              assign "half" (prim "floor" [ var "n" / flt 2. ]);
              if_
                (prim "eq" [ var "n" - (flt 2. * var "half"); flt 0. ])
                [ assign "n" (var "half") ]
                [ assign "n" ((flt 3. * var "n") + flt 1.) ];
              assign "steps" (var "steps" + flt 1.);
            ];
          return_ [ var "steps" ];
        ];
    ]

let rec collatz_spec n =
  if n <= 1 then 0.
  else if n mod 2 = 0 then 1. +. collatz_spec (n / 2)
  else 1. +. collatz_spec ((3 * n) + 1)

(* Multi-result function: integer division with remainder by repeated
   subtraction, used to exercise multi-destination calls. *)
let divmod =
  let open Lang.Infix in
  program ~main:"use_divmod"
    [
      func "divmod" ~params:[ "a"; "b" ]
        [
          assign "q" (flt 0.);
          assign "r" (var "a");
          while_ (var "r" >= var "b")
            [ assign "r" (var "r" - var "b"); assign "q" (var "q" + flt 1.) ];
          return_ [ var "q"; var "r" ];
        ];
      func "use_divmod" ~params:[ "a"; "b" ]
        [
          call [ "q"; "r" ] "divmod" [ var "a"; var "b" ];
          return_ [ (var "q" * flt 100.) + var "r" ];
        ];
    ]

(* Recursive program with a vector-valued variable: scale a vector by
   2^n with recursion, exercising stacked non-scalar variables. *)
let vec_double =
  let open Lang.Infix in
  program ~main:"vdouble"
    [
      func "vdouble" ~params:[ "v"; "n" ]
        [
          if_ (var "n" <= flt 0.)
            [ return_ [ var "v" ] ]
            [
              call [ "w" ] "vdouble" [ var "v" + var "v"; var "n" - flt 1. ];
              return_ [ var "w" ];
            ];
        ];
    ]

(* Ackermann (small inputs only): deep, genuinely nested recursion. *)
let ackermann =
  let open Lang.Infix in
  program ~main:"ack"
    [
      func "ack" ~params:[ "m"; "n" ]
        [
          if_ (prim "eq" [ var "m"; flt 0. ])
            [ return_ [ var "n" + flt 1. ] ]
            [
              if_ (prim "eq" [ var "n"; flt 0. ])
                [ call [ "r" ] "ack" [ var "m" - flt 1.; flt 1. ];
                  return_ [ var "r" ] ]
                [
                  call [ "inner" ] "ack" [ var "m"; var "n" - flt 1. ];
                  call [ "r" ] "ack" [ var "m" - flt 1.; var "inner" ];
                  return_ [ var "r" ];
                ];
            ];
        ];
    ]

let rec ack_spec m n =
  if m = 0 then n + 1
  else if n = 0 then ack_spec (m - 1) 1
  else ack_spec (m - 1) (ack_spec m (n - 1))

(* A program that draws randomness: sums [n] uniform draws, threading the
   counter variable exactly as NUTS does. *)
let random_walk =
  let open Lang.Infix in
  program ~main:"walk"
    [
      func "walk" ~params:[ "n" ]
        [
          assign "cnt" (flt 0.);
          assign "total" (flt 0.);
          assign "i" (flt 0.);
          while_ (var "i" < var "n")
            [
              assign "u" (prim "uniform" [ var "cnt" ]);
              assign "cnt" (var "cnt" + flt 1.);
              assign "total" (var "total" + var "u");
              assign "i" (var "i" + flt 1.);
            ];
          return_ [ var "total"; var "cnt" ];
        ];
    ]
