(* Unit and property tests for Shape. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_numel_rank () =
  check_int "scalar numel" 1 (Shape.numel Shape.scalar);
  check_int "scalar rank" 0 (Shape.rank Shape.scalar);
  check_int "numel [2;3;4]" 24 (Shape.numel [| 2; 3; 4 |]);
  check_int "numel with zero dim" 0 (Shape.numel [| 2; 0; 4 |]);
  check_int "rank" 3 (Shape.rank [| 2; 0; 4 |])

let test_validate () =
  Shape.validate [| 1; 2; 3 |];
  Shape.validate [||];
  Alcotest.check_raises "negative dim" (Invalid_argument
    "Shape.validate: negative dimension -1 at axis 1")
    (fun () -> Shape.validate [| 2; -1 |])

let test_strides () =
  Alcotest.(check (array int)) "strides [2;3;4]" [| 12; 4; 1 |] (Shape.strides [| 2; 3; 4 |]);
  Alcotest.(check (array int)) "strides scalar" [||] (Shape.strides [||]);
  Alcotest.(check (array int)) "strides rank1" [| 1 |] (Shape.strides [| 7 |])

let test_ravel_unravel () =
  let s = [| 2; 3; 4 |] in
  check_int "ravel 0" 0 (Shape.ravel s [| 0; 0; 0 |]);
  check_int "ravel last" 23 (Shape.ravel s [| 1; 2; 3 |]);
  check_int "ravel mid" (12 + 4 + 2) (Shape.ravel s [| 1; 1; 2 |]);
  Alcotest.(check (array int)) "unravel mid" [| 1; 1; 2 |] (Shape.unravel s 18);
  Alcotest.check_raises "ravel out of bounds"
    (Invalid_argument "Shape.ravel: index 3 out of bounds for axis 1 (size 3)")
    (fun () -> ignore (Shape.ravel s [| 0; 3; 0 |]))

let test_broadcast () =
  let check name a b expected =
    Alcotest.(check (array int)) name expected (Shape.broadcast2 a b)
  in
  check "same" [| 2; 3 |] [| 2; 3 |] [| 2; 3 |];
  check "scalar left" [||] [| 2; 3 |] [| 2; 3 |];
  check "scalar right" [| 2; 3 |] [||] [| 2; 3 |];
  check "ones stretch" [| 2; 1 |] [| 1; 3 |] [| 2; 3 |];
  check "trailing align" [| 4; 1; 3 |] [| 5; 3 |] [| 4; 5; 3 |];
  check_bool "incompatible" false (Shape.broadcastable [| 2 |] [| 3 |]);
  check_bool "compatible" true (Shape.broadcastable [| 2; 1 |] [| 2; 5 |])

let test_axis_helpers () =
  Alcotest.(check (array int)) "remove middle" [| 2; 4 |]
    (Shape.remove_axis [| 2; 3; 4 |] 1);
  Alcotest.(check (array int)) "concat outer" [| 5; 2; 3 |]
    (Shape.concat_outer 5 [| 2; 3 |]);
  Alcotest.(check (array int)) "drop outer" [| 3 |] (Shape.drop_outer [| 5; 3 |]);
  Alcotest.check_raises "drop scalar"
    (Invalid_argument "Shape.drop_outer: scalar shape") (fun () ->
      ignore (Shape.drop_outer [||]))

let test_to_string () =
  Alcotest.(check string) "scalar" "[]" (Shape.to_string [||]);
  Alcotest.(check string) "rank2" "[2;3]" (Shape.to_string [| 2; 3 |])

(* Properties *)

let shape_gen =
  QCheck.Gen.(list_size (int_bound 4) (int_range 1 5) >|= Array.of_list)

let arb_shape = QCheck.make ~print:Shape.to_string shape_gen

let prop_ravel_roundtrip =
  QCheck.Test.make ~name:"unravel (ravel idx) = idx" ~count:200
    (QCheck.make
       QCheck.Gen.(
         shape_gen >>= fun s ->
         if Shape.numel s = 0 then return (s, 0)
         else int_bound (Shape.numel s - 1) >|= fun off -> (s, off)))
    (fun (s, off) ->
      Shape.numel s = 0 || Shape.ravel s (Shape.unravel s off) = off)

let prop_broadcast_commutative =
  QCheck.Test.make ~name:"broadcast2 commutative" ~count:200
    (QCheck.pair arb_shape arb_shape) (fun (a, b) ->
      match (Shape.broadcast2 a b, Shape.broadcast2 b a) with
      | sa, sb -> Shape.equal sa sb
      | exception Invalid_argument _ -> (
        match Shape.broadcast2 b a with
        | _ -> false
        | exception Invalid_argument _ -> true))

let prop_broadcast_idempotent =
  QCheck.Test.make ~name:"broadcast2 s s = s" ~count:200 arb_shape (fun s ->
      Shape.equal (Shape.broadcast2 s s) s)

let suites =
  [
    ( "shape",
      [
        Alcotest.test_case "numel and rank" `Quick test_numel_rank;
        Alcotest.test_case "validate" `Quick test_validate;
        Alcotest.test_case "strides" `Quick test_strides;
        Alcotest.test_case "ravel/unravel" `Quick test_ravel_unravel;
        Alcotest.test_case "broadcast" `Quick test_broadcast;
        Alcotest.test_case "axis helpers" `Quick test_axis_helpers;
        Alcotest.test_case "to_string" `Quick test_to_string;
        QCheck_alcotest.to_alcotest prop_ravel_roundtrip;
        QCheck_alcotest.to_alcotest prop_broadcast_commutative;
        QCheck_alcotest.to_alcotest prop_broadcast_idempotent;
      ] );
  ]
