(* Unit and property tests for the tensor substrate. *)

let t = Alcotest.test_case
let check_f = Alcotest.(check (float 1e-12))

let close ?(tol = 1e-9) a b msg =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %s vs %s" msg (Tensor.to_string a) (Tensor.to_string b))
    true
    (Tensor.allclose ~rtol:tol ~atol:tol a b)

let test_construction () =
  let z = Tensor.zeros [| 2; 3 |] in
  Alcotest.(check int) "numel" 6 (Tensor.numel z);
  check_f "zero" 0. (Tensor.get z [| 1; 2 |]);
  let o = Tensor.ones [| 3 |] in
  check_f "one" 1. (Tensor.get o [| 2 |]);
  let f = Tensor.full [| 2 |] 3.5 in
  check_f "full" 3.5 (Tensor.get f [| 0 |]);
  check_f "scalar item" 7. (Tensor.item (Tensor.scalar 7.));
  let a = Tensor.arange 4 in
  close a (Tensor.of_list [ 0.; 1.; 2.; 3. ]) "arange";
  let e = Tensor.eye 3 in
  check_f "eye diag" 1. (Tensor.get e [| 1; 1 |]);
  check_f "eye off" 0. (Tensor.get e [| 0; 2 |]);
  Alcotest.check_raises "create size mismatch"
    (Invalid_argument "Tensor.create: shape [3] wants 3 elements, got 2")
    (fun () -> ignore (Tensor.create [| 3 |] [| 1.; 2. |]))

let test_of_array_copies () =
  let src = [| 1.; 2. |] in
  let a = Tensor.of_array [| 2 |] src in
  src.(0) <- 99.;
  check_f "of_array copies" 1. (Tensor.get a [| 0 |])

let test_init_set () =
  let a = Tensor.init [| 2; 2 |] (fun i -> float_of_int ((i.(0) * 10) + i.(1))) in
  check_f "init" 11. (Tensor.get a [| 1; 1 |]);
  Tensor.set a [| 0; 1 |] 42.;
  check_f "set" 42. (Tensor.get a [| 0; 1 |])

let test_reshape () =
  let a = Tensor.arange 6 in
  let b = Tensor.reshape a [| 2; 3 |] in
  check_f "reshape view" 5. (Tensor.get b [| 1; 2 |]);
  Alcotest.check_raises "bad reshape"
    (Invalid_argument "Tensor.reshape: cannot view [6] as [4]") (fun () ->
      ignore (Tensor.reshape a [| 4 |]))

let test_elementwise_broadcast () =
  let a = Tensor.of_list [ 1.; 2.; 3. ] in
  let s = Tensor.scalar 10. in
  close (Tensor.add a s) (Tensor.of_list [ 11.; 12.; 13. ]) "add scalar";
  let m = Tensor.init [| 2; 3 |] (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
  (* [2;3] + [3] broadcasts along rows. *)
  close (Tensor.add m a)
    (Tensor.create [| 2; 3 |] [| 1.; 3.; 5.; 4.; 6.; 8. |])
    "row broadcast";
  (* [2;1] * [1;3] outer-style broadcast. *)
  let col = Tensor.create [| 2; 1 |] [| 2.; 3. |] in
  let row = Tensor.create [| 1; 3 |] [| 1.; 10.; 100. |] in
  close (Tensor.mul col row)
    (Tensor.create [| 2; 3 |] [| 2.; 20.; 200.; 3.; 30.; 300. |])
    "outer broadcast";
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Shape.broadcast2: incompatible shapes [2] and [3]")
    (fun () -> ignore (Tensor.add (Tensor.zeros [| 2 |]) (Tensor.zeros [| 3 |])))

let test_math_functions () =
  let x = Tensor.of_list [ -2.; 0.; 2. ] in
  close (Tensor.abs x) (Tensor.of_list [ 2.; 0.; 2. ]) "abs";
  close (Tensor.sign x) (Tensor.of_list [ -1.; 0.; 1. ]) "sign";
  close (Tensor.neg x) (Tensor.of_list [ 2.; 0.; -2. ]) "neg";
  close (Tensor.square x) (Tensor.of_list [ 4.; 0.; 4. ]) "square";
  close ~tol:1e-9 (Tensor.exp (Tensor.scalar 1.)) (Tensor.scalar (Float.exp 1.)) "exp";
  close ~tol:1e-9 (Tensor.log (Tensor.scalar (Float.exp 1.))) (Tensor.scalar 1.) "log e";
  check_f "sigmoid 0" 0.5 (Tensor.item (Tensor.sigmoid (Tensor.scalar 0.)));
  (* Stability: big negative input must not overflow. *)
  let ls = Tensor.item (Tensor.log_sigmoid (Tensor.scalar (-800.))) in
  Alcotest.(check bool) "log_sigmoid stable" true (ls < -700. && Float.is_finite ls);
  let lsp = Tensor.item (Tensor.log_sigmoid (Tensor.scalar 800.)) in
  Alcotest.(check bool) "log_sigmoid(+big) ~ 0" true (Float.abs lsp < 1e-300)

let test_comparisons_logic () =
  let a = Tensor.of_list [ 1.; 2.; 3. ] in
  let b = Tensor.of_list [ 2.; 2.; 2. ] in
  close (Tensor.lt a b) (Tensor.of_list [ 1.; 0.; 0. ]) "lt";
  close (Tensor.le a b) (Tensor.of_list [ 1.; 1.; 0. ]) "le";
  close (Tensor.gt a b) (Tensor.of_list [ 0.; 0.; 1. ]) "gt";
  close (Tensor.eq a b) (Tensor.of_list [ 0.; 1.; 0. ]) "eq";
  close
    (Tensor.logical_and (Tensor.le a b) (Tensor.ge a b))
    (Tensor.of_list [ 0.; 1.; 0. ])
    "and";
  close (Tensor.logical_not (Tensor.eq a b)) (Tensor.of_list [ 1.; 0.; 1. ]) "not"

let test_where () =
  let c = Tensor.of_list [ 1.; 0.; 1. ] in
  let a = Tensor.of_list [ 10.; 20.; 30. ] in
  let b = Tensor.of_list [ -1.; -2.; -3. ] in
  close (Tensor.where c a b) (Tensor.of_list [ 10.; -2.; 30. ]) "where";
  (* NaN payloads must pass through exactly. *)
  let a_nan = Tensor.of_list [ Float.nan; 20.; 30. ] in
  let r = Tensor.where c a_nan b in
  Alcotest.(check bool) "where keeps NaN payload" true
    (Float.is_nan (Tensor.get r [| 0 |]));
  (* Scalar condition broadcast. *)
  close (Tensor.where (Tensor.scalar 0.) a b) b "scalar cond"

let test_reductions () =
  let m = Tensor.create [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  check_f "sum all" 21. (Tensor.item (Tensor.sum m));
  close (Tensor.sum ~axis:0 m) (Tensor.of_list [ 5.; 7.; 9. ]) "sum axis 0";
  close (Tensor.sum ~axis:1 m) (Tensor.of_list [ 6.; 15. ]) "sum axis 1";
  close (Tensor.mean ~axis:1 m) (Tensor.of_list [ 2.; 5. ]) "mean axis 1";
  check_f "mean all" 3.5 (Tensor.item (Tensor.mean m));
  close (Tensor.max_reduce ~axis:0 m) (Tensor.of_list [ 4.; 5.; 6. ]) "max axis 0";
  close (Tensor.min_reduce ~axis:1 m) (Tensor.of_list [ 1.; 4. ]) "min axis 1";
  close (Tensor.sum_last m) (Tensor.of_list [ 6.; 15. ]) "sum_last";
  (* Rank-3 middle-axis reduction. *)
  let c = Tensor.init [| 2; 3; 2 |] (fun i -> float_of_int ((i.(0) * 6) + (i.(1) * 2) + i.(2))) in
  close (Tensor.sum ~axis:1 c)
    (Tensor.create [| 2; 2 |] [| 6.; 9.; 24.; 27. |])
    "sum middle axis"

let test_linalg () =
  let a = Tensor.create [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = Tensor.create [| 3; 2 |] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  close (Tensor.matmul a b)
    (Tensor.create [| 2; 2 |] [| 58.; 64.; 139.; 154. |])
    "matmul";
  let x = Tensor.of_list [ 1.; 0.; -1. ] in
  close (Tensor.matvec a x) (Tensor.of_list [ -2.; -2. ]) "matvec";
  check_f "dot" 14. (Tensor.item (Tensor.dot (Tensor.of_list [ 1.; 2.; 3. ]) (Tensor.of_list [ 1.; 2.; 3. ])));
  close (Tensor.transpose a)
    (Tensor.create [| 3; 2 |] [| 1.; 4.; 2.; 5.; 3.; 6. |])
    "transpose";
  close
    (Tensor.outer (Tensor.of_list [ 1.; 2. ]) (Tensor.of_list [ 3.; 4. ]))
    (Tensor.create [| 2; 2 |] [| 3.; 4.; 6.; 8. |])
    "outer";
  Alcotest.check_raises "matmul inner mismatch"
    (Invalid_argument "Tensor.matmul: inner dimensions 3 and 2 differ") (fun () ->
      ignore (Tensor.matmul a (Tensor.zeros [| 2; 2 |])))

let test_rows () =
  let m = Tensor.init [| 4; 2 |] (fun i -> float_of_int ((i.(0) * 2) + i.(1))) in
  Alcotest.(check int) "nrows" 4 (Tensor.nrows m);
  Alcotest.(check int) "row_numel" 2 (Tensor.row_numel m);
  close (Tensor.take_rows m [| 2; 0; 2 |])
    (Tensor.create [| 3; 2 |] [| 4.; 5.; 0.; 1.; 4.; 5. |])
    "take_rows";
  let src = Tensor.create [| 2; 2 |] [| 100.; 101.; 200.; 201. |] in
  close (Tensor.put_rows m [| 3; 1 |] src)
    (Tensor.create [| 4; 2 |] [| 0.; 1.; 200.; 201.; 4.; 5.; 100.; 101. |])
    "put_rows";
  let mask = [| true; false; false; true |] in
  let alt = Tensor.full [| 4; 2 |] 9. in
  close (Tensor.select_rows mask alt m)
    (Tensor.create [| 4; 2 |] [| 9.; 9.; 2.; 3.; 4.; 5.; 9.; 9. |])
    "select_rows";
  let dst = Tensor.copy m in
  Tensor.blit_rows_masked ~mask ~src:alt ~dst;
  close dst
    (Tensor.create [| 4; 2 |] [| 9.; 9.; 2.; 3.; 4.; 5.; 9.; 9. |])
    "blit_rows_masked";
  let dst2 = Tensor.copy m in
  Tensor.blit_rows_indexed ~idx:[| 1 |] ~src:(Tensor.create [| 1; 2 |] [| 7.; 8. |]) ~dst:dst2;
  close dst2
    (Tensor.create [| 4; 2 |] [| 0.; 1.; 7.; 8.; 4.; 5.; 6.; 7. |])
    "blit_rows_indexed";
  close (Tensor.slice_row m 2) (Tensor.of_list [ 4.; 5. ]) "slice_row";
  close
    (Tensor.stack_rows [ Tensor.of_list [ 1.; 2. ]; Tensor.of_list [ 3.; 4. ] ])
    (Tensor.create [| 2; 2 |] [| 1.; 2.; 3.; 4. |])
    "stack_rows";
  close
    (Tensor.concat_rows [ Tensor.create [| 1; 2 |] [| 1.; 2. |]; Tensor.create [| 2; 2 |] [| 3.; 4.; 5.; 6. |] ])
    (Tensor.create [| 3; 2 |] [| 1.; 2.; 3.; 4.; 5.; 6. |])
    "concat_rows";
  close (Tensor.broadcast_rows (Tensor.of_list [ 1.; 2. ]) 3)
    (Tensor.create [| 3; 2 |] [| 1.; 2.; 1.; 2.; 1.; 2. |])
    "broadcast_rows"

let test_equality () =
  let a = Tensor.of_list [ 1.; Float.nan ] in
  let b = Tensor.of_list [ 1.; Float.nan ] in
  Alcotest.(check bool) "NaN equal to NaN" true (Tensor.equal a b);
  Alcotest.(check bool) "allclose NaN" true (Tensor.allclose a b);
  Alcotest.(check bool) "NaN vs number" false
    (Tensor.equal a (Tensor.of_list [ 1.; 2. ]));
  Alcotest.(check bool) "shape mismatch" false
    (Tensor.equal (Tensor.zeros [| 2 |]) (Tensor.zeros [| 2; 1 |]))

(* Properties *)

let arb_vec =
  QCheck.make
    ~print:(fun l -> String.concat ";" (List.map string_of_float l))
    QCheck.Gen.(list_size (int_range 1 12) (float_range (-100.) 100.))

let prop_add_commutes =
  QCheck.Test.make ~name:"tensor add commutes" ~count:200 (QCheck.pair arb_vec arb_vec)
    (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      let ta = Tensor.of_list (List.filteri (fun i _ -> i < n) a) in
      let tb = Tensor.of_list (List.filteri (fun i _ -> i < n) b) in
      Tensor.equal (Tensor.add ta tb) (Tensor.add tb ta))

let prop_sum_linear =
  QCheck.Test.make ~name:"sum (a+b) = sum a + sum b" ~count:200
    (QCheck.pair arb_vec arb_vec) (fun (a, b) ->
      let n = min (List.length a) (List.length b) in
      let ta = Tensor.of_list (List.filteri (fun i _ -> i < n) a) in
      let tb = Tensor.of_list (List.filteri (fun i _ -> i < n) b) in
      Float.abs
        (Tensor.item (Tensor.sum (Tensor.add ta tb))
        -. (Tensor.item (Tensor.sum ta) +. Tensor.item (Tensor.sum tb)))
      < 1e-6)

let prop_take_put_roundtrip =
  QCheck.Test.make ~name:"put_rows t idx (take_rows t idx) = t" ~count:200
    (QCheck.make
       QCheck.Gen.(
         int_range 1 8 >>= fun z ->
         list_size (int_bound 6) (int_bound (z - 1)) >|= fun idx -> (z, idx)))
    (fun (z, idx) ->
      let m = Tensor.init [| z; 3 |] (fun i -> float_of_int ((i.(0) * 3) + i.(1))) in
      let idx = Array.of_list idx in
      Tensor.equal m (Tensor.put_rows m idx (Tensor.take_rows m idx)))

let prop_transpose_involutive =
  QCheck.Test.make ~name:"transpose (transpose m) = m" ~count:100
    (QCheck.pair QCheck.(int_range 1 6) QCheck.(int_range 1 6)) (fun (n, m) ->
      let a = Tensor.init [| n; m |] (fun i -> float_of_int ((i.(0) * 17) + i.(1))) in
      Tensor.equal a (Tensor.transpose (Tensor.transpose a)))

let prop_matmul_transpose =
  QCheck.Test.make ~name:"(AB)^T = B^T A^T" ~count:100
    (QCheck.triple QCheck.(int_range 1 5) QCheck.(int_range 1 5) QCheck.(int_range 1 5))
    (fun (n, k, m) ->
      let a = Tensor.init [| n; k |] (fun i -> Stdlib.sin (float_of_int ((i.(0) * 7) + i.(1)))) in
      let b = Tensor.init [| k; m |] (fun i -> Stdlib.cos (float_of_int ((i.(0) * 5) + i.(1)))) in
      Tensor.allclose ~rtol:1e-12 ~atol:1e-12
        (Tensor.transpose (Tensor.matmul a b))
        (Tensor.matmul (Tensor.transpose b) (Tensor.transpose a)))

let suites =
  [
    ( "tensor",
      [
        t "construction" `Quick test_construction;
        t "of_array copies" `Quick test_of_array_copies;
        t "init and set" `Quick test_init_set;
        t "reshape" `Quick test_reshape;
        t "elementwise broadcast" `Quick test_elementwise_broadcast;
        t "math functions" `Quick test_math_functions;
        t "comparisons and logic" `Quick test_comparisons_logic;
        t "where" `Quick test_where;
        t "reductions" `Quick test_reductions;
        t "linear algebra" `Quick test_linalg;
        t "row operations" `Quick test_rows;
        t "equality semantics" `Quick test_equality;
        QCheck_alcotest.to_alcotest prop_add_commutes;
        QCheck_alcotest.to_alcotest prop_sum_linear;
        QCheck_alcotest.to_alcotest prop_take_put_roundtrip;
        QCheck_alcotest.to_alcotest prop_transpose_involutive;
        QCheck_alcotest.to_alcotest prop_matmul_transpose;
      ] );
  ]
