(* Benchmark harness.

   Three layers, all run by `dune exec bench/main.exe`:

   1. Bechamel micro-benchmarks (real wall-clock, OLS-estimated time/run)
      of the substrate and both autobatching runtimes.
   2. The paper-figure harnesses (Figure 5, Figure 6) and the design
      ablations (A1-A3), printed as the same series the paper plots.
   3. The sharded runtime's wall-clock scaling: batched NUTS split across
      1/2/4/8 real OCaml domains (Shard_vm), best-of-3 timings.

   Pass a subset of
   [micro|figure5|figure6|ablations|shard|serve|resil|obs|obs2|prof|fuse|sched|tenant|eff|regress]
   as argv to run only those stages (default: all, with bench-sized
   parameters). Every stage prints a closing host-cost line
   (wall/CPU/alloc/GC, from Obs_wall).
   [--seed N] anywhere in argv reseeds every stochastic stage. *)

open Bechamel
open Toolkit

(* ---------- shared fixtures ---------- *)

let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let fib_compiled = Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program

let fib_batch =
  [ Tensor.init [| 32 |] (fun i -> float_of_int (4 + (i.(0) mod 8))) ]

let nuts_fixture =
  lazy
    (let model = Gaussian_model.model ~dim:20 () in
     let reg, _ = Nuts_dsl.setup ~model () in
     let q0 = Tensor.zeros [| 20 |] in
     let eps = Nuts.find_reasonable_eps ~model ~q0 () in
     let cfg = Nuts.default_config ~eps () in
     let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
     let compiled =
       Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
     in
     let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter:1 ~n_burn:0 ~batch:16 () in
     (compiled, batch))

(* ---------- micro benchmarks ---------- *)

let tensor_tests =
  let a = Tensor.init [| 64; 64 |] (fun i -> float_of_int ((i.(0) * 7) + i.(1)) /. 100.) in
  let b = Tensor.init [| 64; 64 |] (fun i -> float_of_int (i.(0) - (3 * i.(1))) /. 50.) in
  let v = Tensor.init [| 4096 |] (fun i -> float_of_int i.(0)) in
  let mask = Array.init 256 (fun i -> i mod 3 = 0) in
  let rows = Tensor.init [| 256; 64 |] (fun i -> float_of_int (i.(0) + i.(1))) in
  let dst = Tensor.copy rows in
  let spd =
    (* A well-conditioned SPD matrix for the Cholesky benchmark. *)
    Tensor.add
      (Tensor.mul_scalar (Tensor.add a (Tensor.transpose a)) 0.01)
      (Tensor.mul_scalar (Tensor.eye 64) 100.)
  in
  Test.make_grouped ~name:"tensor"
    [
      Test.make ~name:"matmul-64x64" (Staged.stage (fun () -> Tensor.matmul a b));
      Test.make ~name:"elementwise-add-4k" (Staged.stage (fun () -> Tensor.add v v));
      Test.make ~name:"masked-blit-256x64"
        (Staged.stage (fun () -> Tensor.blit_rows_masked ~mask ~src:rows ~dst));
      Test.make ~name:"cholesky-64" (Staged.stage (fun () -> Cholesky.factor spd));
    ]

let stack_tests =
  let s = Stacked.create ~z:256 ~elem:[| 32 |] () in
  let mask = Array.init 256 (fun i -> i mod 2 = 0) in
  Test.make_grouped ~name:"stacked"
    [
      Test.make ~name:"push-pop-256x32"
        (Staged.stage (fun () ->
             Stacked.push s ~mask;
             Stacked.pop s ~mask));
    ]

let fib_jit = Autobatch.jit fib_compiled ~batch:32

let vm_tests =
  Test.make_grouped ~name:"vm"
    [
      Test.make ~name:"fib-local-z32"
        (Staged.stage (fun () -> Autobatch.run_local fib_compiled ~batch:fib_batch));
      Test.make ~name:"fib-pc-z32"
        (Staged.stage (fun () -> Autobatch.run_pc fib_compiled ~batch:fib_batch));
      Test.make ~name:"fib-jit-z32"
        (Staged.stage (fun () -> Pc_jit.run fib_jit ~batch:fib_batch));
      Test.make ~name:"fib-unbatched-z32"
        (Staged.stage (fun () -> Autobatch.run_unbatched fib_compiled ~batch:fib_batch));
      Test.make ~name:"compile-fib"
        (Staged.stage (fun () ->
             Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program));
    ]

let nuts_tests =
  let compiled, batch = Lazy.force nuts_fixture in
  let jit = Autobatch.jit compiled ~batch:16 in
  Test.make_grouped ~name:"nuts"
    [
      Test.make ~name:"trajectory-pc-z16"
        (Staged.stage (fun () -> Autobatch.run_pc compiled ~batch));
      Test.make ~name:"trajectory-jit-z16"
        (Staged.stage (fun () -> Pc_jit.run jit ~batch));
      Test.make ~name:"trajectory-local-z16"
        (Staged.stage (fun () -> Autobatch.run_local compiled ~batch));
    ]

let run_micro () =
  print_endline "== Bechamel micro-benchmarks (real wall clock) ==";
  let tests =
    Test.make_grouped ~name:"autobatch"
      [ tensor_tests; stack_tests; vm_tests; nuts_tests ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let ns =
          match Analyze.OLS.estimates ols_result with
          | Some (t :: _) -> t
          | Some [] | None -> Float.nan
        in
        let r2 = Option.value ~default:Float.nan (Analyze.OLS.r_square ols_result) in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  Table.print_stdout
    ~header:[ "benchmark"; "time/run"; "r2" ]
    ~rows:
      (List.map
         (fun (name, ns, r2) ->
           [ name; Table.si (ns /. 1e9) ^ "s"; Printf.sprintf "%.3f" r2 ])
         rows);
  print_newline ()

(* ---------- figures and ablations ---------- *)

let run_figure5 ?seed () =
  (* Bench-sized: the tuned sampler takes deep trees on this model, so the
     full default sweep belongs to the CLI (`experiments figure5`). *)
  let scale =
    {
      Figure5.default_scale with
      Figure5.batch_sizes = [ 1; 4; 16; 64; 256 ];
      n_data = 250;
      dim = 20;
      n_iter = 1;
    }
  in
  let scale =
    match seed with None -> scale | Some s -> { scale with Figure5.seed = s }
  in
  Figure5.print (Figure5.run ~scale ());
  print_newline ()

let run_figure6 ?seed () =
  let stats =
    Figure6.run ~dim:50 ~batch_sizes:[ 1; 2; 4; 8; 16; 32; 64; 128 ] ?seed ()
  in
  Figure6.print stats;
  print_newline ()

let run_ablations ?seed () =
  Ablations.print
    ~title:"Ablation A1: masking vs gather/scatter (local static, CPU eager)"
    (Ablations.masking_vs_gather ?seed ());
  print_newline ();
  Ablations.print
    ~title:"Ablation A2: block scheduling heuristics (program counter, GPU fused)"
    (Ablations.schedulers ?seed ());
  print_newline ();
  Ablations.print
    ~title:"Ablation A3: stack compiler optimizations O2-O5 (program counter, GPU fused)"
    (Ablations.stack_optimizations ?seed ());
  print_newline ()

let run_serve ?seed () =
  (* Bench-sized serving comparison: one load level, all three policies.
     The sweep is simulated-clock deterministic at the default seed, so
     its JSON is committed as BENCH_serve.json and any drift fails the
     stage (first run writes the baseline; --seed skips the diff). *)
  let stats = Serving.run ~dim:10 ~lanes:8 ~n_requests:24 ~loads:[ 0.9 ] ?seed () in
  Serving.print stats;
  print_newline ();
  match seed with
  | Some _ -> ()
  | None ->
    let doc =
      Obs_json.Obj
        [
          ("bench", Obs_json.Str "serve");
          ("source", Obs_json.Str "bench/main.exe serve");
          ( "note",
            Obs_json.Str
              "bench-sized serving sweep at the default seed; every field \
               is on the simulated clock, so the document is byte-stable \
               across hosts and committed as the regression baseline — \
               the stage fails on any drift" );
          ("payload", Serving.to_json stats);
        ]
    in
    let path = "BENCH_serve.json" in
    if not (Sys.file_exists path) then begin
      Obs_report.write ~path doc;
      Printf.printf "serve: wrote new baseline %s\n\n" path
    end
    else begin
      let committed = In_channel.with_open_text path In_channel.input_all in
      let same =
        match Obs_json.of_string committed with
        | Ok old -> Obs_json.to_string old = Obs_json.to_string doc
        | Error _ -> false
      in
      if same then Printf.printf "serve: matches committed %s\n\n" path
      else begin
        prerr_endline
          ("serve stage failed: output drifted from committed " ^ path
         ^ " (delete the file and rerun to re-baseline intentionally)");
        exit 1
      end
    end

let run_resil ?seed () =
  (* Bench-sized resilience sweep: checkpoint overhead at intervals
     {1, 8, 64, inf} and recovery under a 5% per-superstep fault rate,
     with the bitwise-identity check live in the last column. *)
  let seed = Option.map Int64.to_int seed in
  Resilience.print
    (Resilience.run ~z:16 ~intervals:[ 1; 8; 64; 0 ] ~rates:[ 0.; 0.05 ] ?seed ());
  print_newline ()

let run_obs ?seed () =
  (* Observability overhead smoke: the same workload with no sink and with
     a full trace sink attached (VM supersteps + engine launches). The
     sink must not perturb the simulated cost model — the acceptance bar
     is <=1%, the expectation is exactly 0 — and outputs must stay
     bitwise identical; the wall columns show what recording actually
     costs the host. The recorded trace is written out and re-parsed to
     check the Chrome document is well-formed JSON. *)
  ignore seed;
  print_endline "== Observability overhead (sink off vs on) ==";
  let nuts_compiled, nuts_batch = Lazy.force nuts_fixture in
  let workloads =
    [ ("fib-pc-z32", fib_compiled, fib_batch); ("nuts-pc-z16", nuts_compiled, nuts_batch) ]
  in
  let tmp = Filename.temp_file "autobatch-obs" ".trace.json" in
  let failed = ref false in
  let rows =
    List.map
      (fun (name, compiled, batch) ->
        let exec sink_of =
          let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
          let sink = sink_of engine in
          (match sink with Some s -> Engine.set_sink engine s | None -> ());
          let config = { Pc_vm.default_config with engine = Some engine; sink } in
          let best = ref infinity in
          let outputs = ref [] in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            outputs := Autobatch.run_pc ~config compiled ~batch;
            best := Float.min !best (Unix.gettimeofday () -. t0)
          done;
          (!outputs, Engine.elapsed engine, !best)
        in
        let out_off, sim_off, wall_off = exec (fun _ -> None) in
        let tr = Obs_trace.create () in
        let out_on, sim_on, wall_on =
          exec (fun engine ->
              let track = Obs_trace.track tr name in
              Some (Obs_trace.sink tr ~track ~clock:(fun () -> Engine.elapsed engine)))
        in
        let overhead_pct = (sim_on -. sim_off) /. sim_off *. 100. in
        let identical = List.map Tensor.data out_off = List.map Tensor.data out_on in
        Obs_trace.write tr ~path:tmp;
        let parse_ok =
          let contents = In_channel.with_open_text tmp In_channel.input_all in
          match Obs_json.of_string contents with
          | Ok doc -> Obs_json.member "traceEvents" doc <> None
          | Error _ -> false
        in
        let ok = overhead_pct <= 1. && identical && parse_ok in
        if not ok then failed := true;
        [
          name;
          Table.si sim_off ^ "s";
          Table.si sim_on ^ "s";
          Printf.sprintf "%.2f%%" overhead_pct;
          Table.si wall_off ^ "s";
          Table.si wall_on ^ "s";
          string_of_int (List.length (Obs_trace.entries tr));
          (if identical then "yes" else "NO");
          (if ok then "ok" else "FAIL");
        ])
      workloads
  in
  Sys.remove tmp;
  Table.print_stdout
    ~header:
      [ "workload"; "sim off"; "sim on"; "sim ovh"; "wall off"; "wall on";
        "events"; "bitwise"; "status" ]
    ~rows;
  print_newline ();
  if !failed then begin
    prerr_endline "obs stage failed: sink perturbed the run or trace was malformed";
    exit 1
  end

let run_prof ?seed () =
  (* Profiler contract smoke: the same workload with no sink and with the
     divergence profiler attached to both the VM and the engine. The
     profiler must not perturb the run — outputs and the simulated clock
     must be bitwise identical — and its attribution must conserve time:
     per-block + per-kernel + host self-time sums to the engine's total
     within float-addition tolerance (1e-9 relative). *)
  ignore seed;
  print_endline "== Divergence profiler (sink off vs on + conservation) ==";
  let nuts_compiled, nuts_batch = Lazy.force nuts_fixture in
  let workloads =
    [ ("fib-pc-z32", fib_compiled, fib_batch); ("nuts-pc-z16", nuts_compiled, nuts_batch) ]
  in
  let failed = ref false in
  let rows =
    List.map
      (fun (name, compiled, batch) ->
        let exec sink =
          let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
          (match sink with Some s -> Engine.set_sink engine s | None -> ());
          let config = { Pc_vm.default_config with engine = Some engine; sink } in
          let best = ref infinity in
          let outputs = ref [] in
          for _ = 1 to 3 do
            let t0 = Unix.gettimeofday () in
            outputs := Autobatch.run_pc ~config compiled ~batch;
            best := Float.min !best (Unix.gettimeofday () -. t0)
          done;
          (!outputs, Engine.elapsed engine, !best)
        in
        let out_off, sim_off, wall_off = exec None in
        let prof =
          Obs_prof.create
            ~frames:
              (Profile.flame_frames compiled.Autobatch.stack
                 compiled.Autobatch.cfg)
            ()
        in
        let out_on, sim_on, wall_on = exec (Some (Obs_prof.sink prof)) in
        let bitwise =
          Int64.bits_of_float sim_on = Int64.bits_of_float sim_off
          && List.map Tensor.data out_off = List.map Tensor.data out_on
        in
        (* The profiler saw 3 repeat runs on one engine; attribution must
           still sum to that engine's final clock. *)
        let attributed = Obs_prof.attributed prof in
        let conservation = Float.abs (attributed -. sim_on) /. sim_on in
        let flame_ok = String.length (Obs_prof.folded prof) > 0 in
        let ok = bitwise && conservation <= 1e-9 && flame_ok in
        if not ok then failed := true;
        [
          name;
          Table.si sim_off ^ "s";
          Table.si wall_off ^ "s";
          Table.si wall_on ^ "s";
          string_of_int (Obs_prof.supersteps prof);
          Printf.sprintf "%.3f" (Obs_prof.utilization prof);
          Printf.sprintf "%.1e" conservation;
          (if bitwise then "yes" else "NO");
          (if ok then "ok" else "FAIL");
        ])
      workloads
  in
  Table.print_stdout
    ~header:
      [ "workload"; "sim"; "wall off"; "wall on"; "steps"; "util";
        "conserve"; "bitwise"; "status" ]
    ~rows;
  print_newline ();
  if !failed then begin
    prerr_endline
      "prof stage failed: profiler perturbed the run or attribution lost time";
    exit 1
  end

let run_fuse ?seed () =
  (* Superblock fusion A/B gate: compile each workload twice — plain and
     through the lib/fuse passes — and hold the fused build to the PR's
     bar: bitwise-identical outputs on every runtime (pc, jit, local,
     sharded), at least 25% fewer supersteps (= fused kernel launches on
     the merged-PC runtime), and a lower total simulated cost. Also
     writes the committed BENCH_fuse.json baseline; everything recorded
     is simulated-clock-deterministic, so the file is stable across
     hosts. *)
  print_endline "== Superblock fusion A/B (plain vs fused compile) ==";
  let eight_schools_fixture =
    let model = Eight_schools.model () in
    let reg, _ = Nuts_dsl.setup ?seed ~model () in
    let q0 = Tensor.zeros [| model.Model.dim |] in
    let eps = Nuts.find_reasonable_eps ~model ~q0 () in
    let prog = Nuts_dsl.program () in
    let compile fuse =
      Autobatch.compile ~registry:reg ?fuse
        ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
    in
    let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter:2 ~n_burn:0 ~batch:16 () in
    ("eight_schools-z16", compile, batch, 16)
  in
  let fib_fixture =
    let compile fuse =
      Autobatch.compile ?fuse ~input_shapes:[ Shape.scalar ] fib_program
    in
    ("fib-z32", compile, fib_batch, 32)
  in
  let failed = ref false in
  let points = ref [] in
  let rows =
    List.map
      (fun (name, compile, batch, z) ->
        let plain = compile None in
        let fused = compile (Some Fuse.default_options) in
        let exec compiled =
          let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
          let config = { Pc_vm.default_config with engine = Some engine } in
          let outputs = Autobatch.run_pc ~config compiled ~batch in
          ( List.map Tensor.data outputs,
            (Engine.snapshot engine).Engine.at.Engine.Counters.blocks,
            Engine.elapsed engine )
        in
        let out_p, steps_p, sim_p = exec plain in
        let out_f, steps_f, sim_f = exec fused in
        let others compiled =
          let jit = Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch in
          let local = Autobatch.run_local compiled ~batch in
          let shard =
            (Autobatch.run_sharded
               ~config:
                 { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 () }
               compiled ~batch)
              .Shard_vm.outputs
          in
          List.map (List.map Tensor.data) [ jit; local; shard ]
        in
        let bitwise =
          out_f = out_p && List.for_all (( = ) out_p) (others fused)
        in
        let reduction =
          1. -. (float_of_int steps_f /. float_of_int steps_p)
        in
        let report = Option.get fused.Autobatch.fuse in
        let ok =
          bitwise && steps_f < steps_p && reduction >= 0.25 && sim_f < sim_p
        in
        if not ok then failed := true;
        points :=
          Obs_json.Obj
            [
              ("workload", Obs_json.Str name);
              ("plain_supersteps", Obs_json.Int steps_p);
              ("fused_supersteps", Obs_json.Int steps_f);
              ("superstep_reduction", Obs_json.Float reduction);
              ("plain_sim_seconds", Obs_json.Float sim_p);
              ("fused_sim_seconds", Obs_json.Float sim_f);
              ("megablocks", Obs_json.Int (Fuse.megablock_count report));
              ( "entries_duplicated",
                Obs_json.Int
                  report.Fuse.stack_stats.Fuse_stack.entries_duplicated );
              ("bitwise_identical", Obs_json.Bool bitwise);
              ("pass", Obs_json.Bool ok);
            ]
          :: !points;
        [
          name;
          string_of_int steps_p;
          string_of_int steps_f;
          Printf.sprintf "%.1f%%" (100. *. reduction);
          Table.si sim_p ^ "s";
          Table.si sim_f ^ "s";
          string_of_int (Fuse.megablock_count report);
          (if bitwise then "yes" else "NO");
          (if ok then "ok" else "FAIL");
        ])
      [ fib_fixture; eight_schools_fixture ]
  in
  Table.print_stdout
    ~header:
      [ "workload"; "steps"; "fused"; "saved"; "sim"; "fused sim";
        "megablocks"; "bitwise"; "status" ]
    ~rows;
  Obs_report.write ~path:"BENCH_fuse.json"
    (Obs_json.Obj
       [
         ("bench", Obs_json.Str "fuse");
         ("source", Obs_json.Str "bench/main.exe fuse");
         ( "workload",
           Obs_json.Str
             "plain vs fused compile of fib z=32 and NUTS-on-eight_schools \
              z=16 (2 trajectories) under the pc VM on a fused GPU engine" );
         ( "note",
           Obs_json.Str
             "supersteps = Engine.Counters.blocks = fused kernel launches \
              on the merged-PC runtime; bitwise compares Tensor.data of \
              every output across pc/jit/local/sharded runtimes between the \
              plain and fused builds; the stage (and CI) fails unless every \
              workload is bitwise identical, saves >=25% of its supersteps, \
              and lowers the simulated cost" );
         ("points", Obs_json.List (List.rev !points));
       ]);
  print_newline ();
  if !failed then begin
    prerr_endline
      "fuse stage failed: fused build perturbed outputs or missed the \
       superstep/cost bar";
    exit 1
  end

let run_sched ?seed () =
  (* Scheduling-policy and lane-defragmentation gate, two halves.

     Determinism: every runtime — pc, jit, local, sharded, the serving
     stack, and the defragmenting Sched_vm under both migration plans —
     must produce outputs bitwise identical to the Earliest pc baseline
     under every scheduling policy (Sched_sweep.bitwise_matrix; 35
     checks per workload). Policies and migration only move cost, never
     results.

     Utilization: retiring drained lanes and refilling small pools must
     actually pay. Each workload's whole-batch pc run (Earliest; the
     batch drains in place, Figure 6's waste) is compared against the
     Sched_vm defrag arm on a mesh of small lane pools, and the stage
     fails unless the effective-utilization factor clears the bar:
     >=2x on eight_schools z=64, >=1.5x on fib z=32. Regenerates the
     committed BENCH_sched.json; everything recorded is
     simulated-clock-deterministic. *)
  print_endline "== Scheduling policies + lane defragmentation gate ==";
  let eight_schools_fixture =
    let model = Eight_schools.model () in
    let reg, _ = Nuts_dsl.setup ?seed ~model () in
    let q0 = Tensor.zeros [| model.Model.dim |] in
    let eps = Nuts.find_reasonable_eps ~model ~q0 () in
    let prog = Nuts_dsl.program () in
    let compiled =
      Autobatch.compile ~registry:reg
        ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
    in
    let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter:1 ~n_burn:0 ~batch:64 () in
    ("eight_schools-z64", compiled, batch, 4, 2, 2.0)
  in
  let fib_fixture = ("fib-pc-z32", fib_compiled, fib_batch, 2, 4, 1.5) in
  let failed = ref false in
  let points = ref [] in
  let compares = ref [] in
  let rows =
    List.map
      (fun (name, compiled, batch, shards, lanes, bar) ->
        let checks = Sched_sweep.bitwise_matrix compiled ~batch in
        let bad = Sched_sweep.failures checks in
        let base_out, base =
          Sched_sweep.profiled_pc ~label:(name ^ "/pc")
            ~policy:Sched_policy.Earliest compiled ~batch
        in
        let r, defrag =
          Sched_sweep.defrag_view
            ~label:(Printf.sprintf "%s/defrag-%dx%d" name shards lanes)
            ~plan:Sched_plan.aggressive ~shards ~lanes compiled ~batch ()
        in
        let bitwise =
          bad = [] && List.for_all2 Tensor.equal base_out r.Sched_vm.outputs
        in
        let factor = defrag.Profile.v_effective /. base.Profile.v_effective in
        let ok = bitwise && factor >= bar in
        if not ok then failed := true;
        compares := (name, [ base; defrag ]) :: !compares;
        points :=
          Obs_json.Obj
            [
              ("workload", Obs_json.Str name);
              ("checks", Obs_json.Int (List.length checks));
              ("bitwise_failures", Obs_json.Int (List.length bad));
              ("shards", Obs_json.Int shards);
              ("lanes_per_shard", Obs_json.Int lanes);
              ("baseline_effective", Obs_json.Float base.Profile.v_effective);
              ("defrag_effective", Obs_json.Float defrag.Profile.v_effective);
              ("factor", Obs_json.Float factor);
              ("bar", Obs_json.Float bar);
              ("supersteps", Obs_json.Int r.Sched_vm.supersteps);
              ("refills", Obs_json.Int r.Sched_vm.refills);
              ("migrations", Obs_json.Int r.Sched_vm.migrations);
              ("steals", Obs_json.Int r.Sched_vm.steals);
              ("migration_bytes", Obs_json.Float r.Sched_vm.migration_bytes);
              ("compare", Profile.compare_to_json [ base; defrag ]);
              ("pass", Obs_json.Bool ok);
            ]
          :: !points;
        [
          name;
          string_of_int (List.length checks);
          Printf.sprintf "%.3f" base.Profile.v_effective;
          Printf.sprintf "%.3f" defrag.Profile.v_effective;
          Printf.sprintf "%.2fx" factor;
          Printf.sprintf ">=%.1fx" bar;
          string_of_int r.Sched_vm.migrations;
          string_of_int r.Sched_vm.steals;
          (if bitwise then "yes" else "NO");
          (if ok then "ok" else "FAIL");
        ])
      [ fib_fixture; eight_schools_fixture ]
  in
  Table.print_stdout
    ~header:
      [ "workload"; "checks"; "base eff"; "defrag eff"; "factor"; "bar";
        "migr"; "steals"; "bitwise"; "status" ]
    ~rows;
  List.iter
    (fun (name, views) ->
      print_newline ();
      Printf.printf "-- %s --\n" name;
      Profile.print_compare views)
    (List.rev !compares);
  Obs_report.write ~path:"BENCH_sched.json"
    (Obs_json.Obj
       [
         ("bench", Obs_json.Str "sched");
         ("source", Obs_json.Str "bench/main.exe sched");
         ( "workload",
           Obs_json.Str
             "fib z=32 and NUTS-on-eight_schools z=64 (1 trajectory): \
              runtime x policy x migration-plan bitwise matrix, plus the \
              whole-batch Earliest pc run vs the Sched_vm defragmenting \
              runtime on a mesh of small lane pools (aggressive plan)" );
         ( "note",
           Obs_json.Str
             "checks = bitwise_matrix comparisons against the Earliest pc \
              baseline (5 policies x {pc, jit, local, shard, server} plus \
              Sched_vm under {no-migration, aggressive}); effective \
              utilization = Obs_prof.effective_utilization (useful lanes \
              over issued lanes weighted by simulated kernel time); the \
              stage (and CI) fails unless every check is bitwise AND the \
              defrag arm's factor clears the bar (>=2x eight_schools, \
              >=1.5x fib)" );
         ("points", Obs_json.List (List.rev !points));
       ]);
  print_newline ();
  if !failed then begin
    prerr_endline
      "sched stage failed: a policy or migration schedule perturbed outputs \
       or the defrag arm missed the utilization bar";
    exit 1
  end

let run_eff ?seed () =
  (* Handler-DSL frontend gate (DESIGN.md S22), four parts.

     Elaboration: each migrated model's spec elaborates to a log-density
     program whose outputs are bitwise identical across pc/jit/local/
     shard; the gaussian spec's density is additionally bitwise equal to
     the hand closure, and eight_schools' NUTS pipeline (which uses the
     unchanged hand closures as prims) still matches the single-chain
     reference bitwise — the old-vs-new migration proof.

     Workloads: the SMC filter must land within tolerance of the Kalman
     closed-form log marginal with resampling actually migrating lanes;
     parallel tempering must recover the mixture's closed-form moments
     with accepted exchanges and a mode-balanced cold chain; the
     decision tree must be bitwise right on every runtime.

     Regenerates the committed BENCH_eff.json (full runs only — the
     AUTOBATCH_FAST arm shrinks the workloads and must not churn the
     committed baseline). *)
  print_endline "== Handler-DSL frontend gate (elaboration + workloads) ==";
  let fast = Sys.getenv_opt "AUTOBATCH_FAST" <> None in
  let seed_v = Option.value seed ~default:0x5EEDL in
  let failed = ref false in
  let check name detail ok =
    if not ok then failed := true;
    Printf.printf "  %-34s %-40s %s\n" name detail
      (if ok then "pass" else "FAIL")
  in
  (* 1. Elaboration bitwise matrix over the model zoo. *)
  let model_points =
    List.map
      (fun name ->
        let m = Zoo.resolve ~dim:8 name in
        let el = Model.log_density m in
        let compiled =
          Autobatch.compile ~registry:el.Eff.el_registry
            ~input_shapes:(Eff.input_shapes el) el.Eff.el_program
        in
        let stream = Splitmix.Stream.create (Int64.add seed_v 17L) in
        let z = 8 in
        let batch =
          List.map
            (fun shape ->
              Tensor.init
                (Array.append [| z |] shape)
                (fun _ -> 0.5 *. Splitmix.Stream.normal stream))
            (Eff.input_shapes el)
        in
        let pc = Autobatch.run_pc compiled ~batch in
        let same outs = List.for_all2 Tensor.equal pc outs in
        let ok =
          same (Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch)
          && same (Autobatch.run_local compiled ~batch)
          && same
               (Autobatch.run_sharded
                  ~config:
                    {
                      Shard_vm.default_config with
                      mesh = Mesh.gpu_pod ~n:2 ();
                    }
                  compiled ~batch)
                 .Shard_vm.outputs
        in
        check (Printf.sprintf "elaborate %s" name)
          "pc = jit = local = shard" ok;
        (name, ok))
      Zoo.known
  in
  (* Gaussian: elaborated density is the hand density, bitwise. *)
  let gauss_exact =
    let m = Zoo.resolve ~dim:8 "gaussian" in
    let el = Model.log_density m in
    let compiled =
      Autobatch.compile ~registry:el.Eff.el_registry
        ~input_shapes:(Eff.input_shapes el) el.Eff.el_program
    in
    let stream = Splitmix.Stream.create (Int64.add seed_v 23L) in
    let z = 8 in
    let qs = Tensor.init [| z; 8 |] (fun _ -> Splitmix.Stream.normal stream) in
    let lp =
      List.nth (Autobatch.run_pc compiled ~batch:[ qs ]) el.Eff.el_lp_index
    in
    let ok = ref true in
    for b = 0 to z - 1 do
      if (Tensor.data lp).(b) <> m.Model.logp (Tensor.slice_row qs b) then
        ok := false
    done;
    check "gaussian spec = hand density" "bitwise over 8 points" !ok;
    !ok
  in
  (* Old-vs-new: the migrated eight_schools still drives the NUTS
     pipeline to the single-chain reference bitwise. *)
  let schools_ok =
    let model = Eight_schools.model () in
    let reg, key = Nuts_dsl.setup ?seed ~model () in
    let q0 = Tensor.zeros [| model.Model.dim |] in
    let cfg = Nuts.default_config ~eps:0.3 () in
    let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
    let compiled =
      Autobatch.compile ~registry:reg
        ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
    in
    let z = 4 and n_iter = if fast then 3 else 5 in
    let batch = Nuts_dsl.inputs ~q0 ~eps:0.3 ~n_iter ~n_burn:0 ~batch:z () in
    let pc = Autobatch.run_pc compiled ~batch in
    let ok = ref true in
    for member = 0 to z - 1 do
      let r = Nuts.sample_chain cfg ~model ~key ~member ~q0 ~n_iter in
      if not (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.hd pc) member))
      then ok := false
    done;
    check "eight_schools NUTS migration" "batched = reference, bitwise" !ok;
    !ok
  in
  (* 2. SMC vs the Kalman closed form. *)
  let smc =
    Smc.run ~seed:seed_v
      ~n_particles:(if fast then 128 else 512)
      ~steps:(if fast then 15 else 40)
      ()
  in
  let smc_ok = Smc.passes ~tol:1.0 smc in
  check "smc log-marginal vs Kalman"
    (Printf.sprintf "|%.3f - %.3f| = %.3f, %d migrations" smc.Smc.log_z
       smc.Smc.log_z_exact (Smc.log_z_error smc) smc.Smc.migrations)
    smc_ok;
  (* 3. Tempering vs the mixture closed form. *)
  let temper =
    Tempering.run ~seed:seed_v
      ~c:
        {
          Tempering.default_config with
          rounds = (if fast then 200 else 400);
        }
      ()
  in
  let temper_ok = Tempering.passes temper in
  check "tempering moments + exchanges"
    (Printf.sprintf "E[x^2] %.2f (exact %.2f), %d swaps"
       temper.Tempering.cold_second_moment
       (Tempering.second_moment temper.Tempering.config)
       temper.Tempering.swaps_accepted)
    temper_ok;
  (* 4. Decision tree, pure control flow. *)
  let tree =
    Treebench.run ~seed:seed_v
      ~depth:(if fast then 5 else 7)
      ~z:(if fast then 32 else 64)
      ()
  in
  let tree_ok = Treebench.passes tree in
  check "decision tree bitwise"
    (Printf.sprintf "%d leaves, %d supersteps" tree.Treebench.distinct_leaves
       tree.Treebench.supersteps)
    tree_ok;
  if not fast then
    Obs_report.write ~path:"BENCH_eff.json"
      (Obs_json.Obj
         [
           ("bench", Obs_json.Str "eff");
           ("source", Obs_json.Str "bench/main.exe eff");
           ( "workload",
             Obs_json.Str
               "handler-DSL elaboration matrix over the model zoo (bitwise \
                across pc/jit/local/shard, gaussian spec bitwise vs hand \
                density, eight_schools NUTS vs single-chain reference), \
                plus the three DSL workloads: SMC bootstrap filter (512 \
                particles x 40 steps, resampling through the S20 \
                lane-migration seam, gated vs the Kalman log marginal), \
                parallel tempering (8 chains x 400 rounds, exchanges \
                priced as collectives, gated on closed-form mixture \
                moments), and decision-tree inference (depth 7, gated \
                bitwise vs host evaluation)" );
           ( "note",
             Obs_json.Str
               "the stage (and CI) fails unless every arm above passes; \
                the AUTOBATCH_FAST arm shrinks the workloads and does not \
                rewrite this file" );
           ( "elaboration",
             Obs_json.Obj
               (("gaussian_exact", Obs_json.Bool gauss_exact)
               :: ("eight_schools_nuts", Obs_json.Bool schools_ok)
               :: List.map
                    (fun (name, ok) -> (name, Obs_json.Bool ok))
                    model_points) );
           ("smc", Smc.to_json smc);
           ("temper", Tempering.to_json temper);
           ("tree", Treebench.to_json tree);
         ]);
  print_newline ();
  if !failed then begin
    prerr_endline
      "eff stage failed: an elaboration arm lost bitwise equivalence or a \
       DSL workload missed its closed-form gate";
    exit 1
  end

let run_tenant ?seed () =
  (* Multi-tenant serving gate, three parts.

     Macro: the paired bursty-overload trace from Tenant_load — the fair
     arm (admission ladder + SLO-weighted placement + preemption +
     autoscaling + one injected device kill) against the FIFO
     no-admission baseline on the identical trace with the identical
     kill. Every kept completion must be bitwise identical to running
     the request alone (across cache hits, preemption, migration,
     grow/shrink, and the kill), the program cache must run >=90% hot on
     the Zipf trace, and the latency-bound p99 — read from the
     Obs_metrics histogram JSON, not the raw samples — must be >=3x
     lower than the baseline's. The fair arm must also actually have
     exercised the machinery: grows, shrinks, preemptions, resumes,
     checkpoints, and at least one restore.

     Micro: two closed-form scenarios. A 2-lane shard where a width-2
     best-effort flight must be parked exactly once for a late
     latency-bound arrival and then resumed (both bitwise); and a
     2-shard pool where a backlog spike forces a grow and the cooldown
     later drains the lightly-loaded shard while its flight is still
     live, forcing a lane migration through the export/import seam.

     Regenerates the committed BENCH_tenant.json (full runs only — the
     AUTOBATCH_FAST arm caps the trace at 10k requests and must not
     churn the committed baseline). *)
  print_endline
    "== Multi-tenant gate (admission / preemption / pool / recovery) ==";
  let fast = Sys.getenv_opt "AUTOBATCH_FAST" <> None in
  let n_requests = if fast then 10_000 else 20_000 in
  let failed = ref false in
  let rows = ref [] in
  let check name value bar ok =
    if not ok then failed := true;
    rows := [ name; value; bar; (if ok then "ok" else "FAIL") ] :: !rows
  in
  (* ---- macro ---- *)
  let r = Tenant_load.run ?seed ~n_requests () in
  Tenant_load.print_table r;
  print_newline ();
  let hist_p99 (a : Tenant_load.arm) =
    let h =
      Obs_metrics.histogram a.Tenant_load.metrics "latency_total_latency"
    in
    match Obs_json.member "p99" (Obs_metrics.hist_to_json h) with
    | Some (Obs_json.Float f) -> f
    | Some (Obs_json.Int n) -> float_of_int n
    | _ -> Float.nan
  in
  let fair = r.Tenant_load.fair in
  let base = Option.get r.Tenant_load.baseline in
  let p99_fair = hist_p99 fair and p99_base = hist_p99 base in
  let ratio = p99_base /. p99_fair in
  let s = fair.Tenant_load.stats in
  check "macro: bitwise vs solo"
    (Printf.sprintf "%d verified, %d mismatches" r.Tenant_load.verified
       r.Tenant_load.mismatches)
    "0 mismatches"
    (r.Tenant_load.verified > 0 && r.Tenant_load.mismatches = 0);
  check "macro: cache hit rate"
    (Printf.sprintf "%.3f" r.Tenant_load.hit_rate)
    ">=0.90"
    (r.Tenant_load.hit_rate >= 0.9);
  check "macro: lb p99, fifo/fair (histogram)"
    (Printf.sprintf "%s / %s = %.2fx" (Table.si p99_base) (Table.si p99_fair)
       ratio)
    ">=3x" (ratio >= 3.);
  check "macro: pool scaled"
    (Printf.sprintf "%d grows, %d shrinks" s.Tenant_server.grows
       s.Tenant_server.shrinks)
    "both >0"
    (s.Tenant_server.grows > 0 && s.Tenant_server.shrinks > 0);
  check "macro: preemption engaged"
    (Printf.sprintf "%d parked, %d resumed" s.Tenant_server.preemptions
       s.Tenant_server.resumes)
    "both >0"
    (s.Tenant_server.preemptions > 0 && s.Tenant_server.resumes > 0);
  check "macro: kill recovered"
    (Printf.sprintf "%d checkpoints, %d restores" s.Tenant_server.checkpoints
       s.Tenant_server.restores)
    ">=1 restore"
    (s.Tenant_server.checkpoints > 0 && s.Tenant_server.restores >= 1);
  (* ---- micro fixtures ---- *)
  let shapes = Tenant_load.element_shapes in
  let prog = Tenant_load.family_program ~k:0 in
  let compiled = Autobatch.compile ~input_shapes:shapes prog in
  let digest = Prog_cache.digest ~input_shapes:shapes prog in
  let mk_item ~tenant ~id ~member ~arrival ~width ~n =
    let rows v =
      Tensor.stack_rows (List.init width (fun _ -> Tensor.scalar v))
    in
    let xs =
      Tensor.stack_rows
        (List.init width (fun j ->
             Tensor.scalar (0.3 +. (0.01 *. float_of_int j))))
    in
    let request =
      Request.make ~id ~member ~arrival ~cost_hint:(float_of_int n)
        ~program:compiled
        ~inputs:[ rows (float_of_int n); xs; rows 0. ]
        ()
    in
    { Admission.tenant; request; digest }
  in
  let completions_bitwise (st : Tenant_server.stats) =
    List.for_all Tenant_load.matches_solo st.Tenant_server.completions
  in
  (* ---- micro: preemption ---- *)
  let be = Tenant.make ~id:0 ~name:"be" () in
  let lb = Tenant.make ~slo:Tenant.Latency_bound ~id:1 ~name:"lb" () in
  let pre_st =
    let config =
      {
        (Tenant_server.default_config ~mesh:(Mesh.gpu_pod ~n:1 ())) with
        Tenant_server.lanes_per_shard = 2;
        checkpoint_interval = 4;
      }
    in
    Tenant_server.run ~config
      (Tenant_server.source_of_list
         [
           mk_item ~tenant:be ~id:0 ~member:0 ~arrival:0. ~width:2 ~n:60;
           mk_item ~tenant:lb ~id:1 ~member:16 ~arrival:1e-7 ~width:1 ~n:8;
         ])
  in
  let pre_comps = pre_st.Tenant_server.completions in
  let be_parked =
    match
      List.find_opt
        (fun c -> c.Tenant_server.c_item.Admission.request.Request.id = 0)
        pre_comps
    with
    | Some c -> c.Tenant_server.c_preempted >= 1
    | None -> false
  in
  let pre_ok =
    pre_st.Tenant_server.preemptions = 1
    && pre_st.Tenant_server.resumes = 1
    && List.length pre_comps = 2
    && be_parked
    && completions_bitwise pre_st
  in
  check "micro: park / resume bitwise"
    (Printf.sprintf "%d parked, %d resumed, %d done"
       pre_st.Tenant_server.preemptions pre_st.Tenant_server.resumes
       (List.length pre_comps))
    "1 park, 2 done" pre_ok;
  (* ---- micro: drain migration ----
     Two X-bound shards: shard 0 runs a full cohort of 8 short flights,
     shard 1 one long flight (it bound via the backlog-pressure grow
     while shard 0 was full). A late batch of 3 arrivals is timed — by a
     probe run of the same prefix — to land in the very round shard 0's
     cohort retires: the pool controller sees the backlog before refill
     and holds, the batch refills shard 0 to 3 live, and the next
     planning round shrinks the now-least-loaded shard 1 while its
     flight is still live, forcing the lane migration through the
     export/import seam into shard 0's free lanes. *)
  let t0 = Tenant.make ~id:0 ~name:"t0" () in
  let mig_config =
    {
      (Tenant_server.default_config ~mesh:(Mesh.gpu_pod ~n:2 ())) with
      Tenant_server.lanes_per_shard = 8;
      pool =
        {
          Pool.min_shards = 1;
          max_shards = 2;
          grow_backlog = 0.1;
          shrink_util = 0.9;
          cooldown = 2;
        };
    }
  in
  let mig_prefix =
    List.init 9 (fun i ->
        mk_item ~tenant:t0 ~id:i ~member:(i * 8) ~arrival:0. ~width:1
          ~n:(if i < 8 then 30 else 100))
  in
  let probe =
    Tenant_server.run ~config:mig_config
      (Tenant_server.source_of_list mig_prefix)
  in
  let t_retire =
    List.fold_left
      (fun acc c ->
        if c.Tenant_server.c_item.Admission.request.Request.id = 0 then
          c.Tenant_server.c_finished
        else acc)
      0. probe.Tenant_server.completions
  in
  let mig_st =
    Tenant_server.run ~config:mig_config
      (Tenant_server.source_of_list
         (mig_prefix
         @ List.init 3 (fun i ->
               mk_item ~tenant:t0 ~id:(9 + i) ~member:((9 + i) * 8)
                 ~arrival:(t_retire -. 1e-6) ~width:1 ~n:40)))
  in
  let mig_ok =
    mig_st.Tenant_server.grows >= 1
    && mig_st.Tenant_server.shrinks >= 1
    && mig_st.Tenant_server.migrations >= 1
    && List.length mig_st.Tenant_server.completions = 12
    && completions_bitwise mig_st
  in
  check "micro: drain migration bitwise"
    (Printf.sprintf "%d grows, %d shrinks, %d migrations, %d done"
       mig_st.Tenant_server.grows mig_st.Tenant_server.shrinks
       mig_st.Tenant_server.migrations
       (List.length mig_st.Tenant_server.completions))
    ">=1 migration, 12 done" mig_ok;
  Table.print_stdout
    ~header:[ "check"; "value"; "bar"; "status" ]
    ~rows:(List.rev !rows);
  let micro_point name (st : Tenant_server.stats) ok =
    Obs_json.Obj
      [
        ("scenario", Obs_json.Str name);
        ("completions", Obs_json.Int (List.length st.Tenant_server.completions));
        ("preemptions", Obs_json.Int st.Tenant_server.preemptions);
        ("resumes", Obs_json.Int st.Tenant_server.resumes);
        ("migrations", Obs_json.Int st.Tenant_server.migrations);
        ("grows", Obs_json.Int st.Tenant_server.grows);
        ("shrinks", Obs_json.Int st.Tenant_server.shrinks);
        ("checkpoints", Obs_json.Int st.Tenant_server.checkpoints);
        ("bitwise_identical", Obs_json.Bool (completions_bitwise st));
        ("pass", Obs_json.Bool ok);
      ]
  in
  if not fast then
    Obs_report.write ~path:"BENCH_tenant.json"
      (Obs_json.Obj
         [
           ("bench", Obs_json.Str "tenant");
           ("source", Obs_json.Str "bench/main.exe tenant");
           ( "workload",
             Obs_json.Str
               "20k-request bursty Zipf trace, 24 tenants x 8 programs, \
                4-shard mesh, one injected device kill: fair arm \
                (admission + preemption + autoscaling) vs FIFO \
                no-admission baseline; plus the closed-form preemption \
                and drain-migration scenarios" );
           ( "note",
             Obs_json.Str
               "p99s are read from the Obs_metrics latency histograms \
                (log-bucketed), so the committed ratio is what the \
                metrics surface reports, not the raw samples; the stage \
                (and CI) fails unless every completion is bitwise \
                identical to solo, the cache runs >=90% hot, the \
                latency-bound histogram p99 is >=3x lower than the \
                baseline's, and every subsystem (grow, shrink, preempt, \
                resume, checkpoint, restore, migrate) actually fired; \
                the AUTOBATCH_FAST arm runs 10k requests and does not \
                rewrite this file" );
           ("lb_p99_ratio", Obs_json.Float ratio);
           ("macro", Tenant_load.to_json r);
           ( "micro",
             Obs_json.List
               [
                 micro_point "preempt-park-resume" pre_st pre_ok;
                 micro_point "drain-migration" mig_st mig_ok;
               ] );
         ]);
  print_newline ();
  if !failed then begin
    prerr_endline
      "tenant stage failed: a completion diverged from solo or an \
       admission/pool/recovery bar was missed";
    exit 1
  end

(* ---------- regression probes (obs2 / regress) ---------- *)

(* Fixed-seed, tier-independent probes of simulated cost. `bench obs2`
   embeds them in the committed BENCH_obs2.json; `bench regress` re-runs
   them and diffs. Both deliberately ignore --seed — the baseline has to
   mean the same thing on every host and under AUTOBATCH_FAST. *)
let regress_probes () =
  let pc name compiled batch =
    let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
    let prof = Obs_prof.create () in
    let sink = Obs_prof.sink prof in
    Engine.set_sink engine sink;
    let config =
      { Pc_vm.default_config with engine = Some engine; sink = Some sink }
    in
    ignore (Autobatch.run_pc ~config compiled ~batch);
    ( name,
      Engine.elapsed engine,
      Obs_prof.supersteps prof,
      (Engine.snapshot engine).Engine.at.Engine.Counters.blocks )
  in
  let nuts_compiled, nuts_batch = Lazy.force nuts_fixture in
  let tenant =
    let r = Tenant_load.run ~n_requests:1000 ~verify:false ~baseline:false () in
    let s = r.Tenant_load.fair.Tenant_load.stats in
    ( "tenant-1k",
      s.Tenant_server.makespan,
      s.Tenant_server.rounds,
      List.length s.Tenant_server.completions )
  in
  [
    pc "fib-pc-z32" fib_compiled fib_batch;
    pc "nuts-pc-z16" nuts_compiled nuts_batch;
    tenant;
  ]

let probe_to_json (name, sim, supersteps, work) =
  Obs_json.Obj
    [
      ("name", Obs_json.Str name);
      ("sim_seconds", Obs_json.Float sim);
      ("supersteps", Obs_json.Int supersteps);
      ("work", Obs_json.Int work);
    ]

let run_obs2 ?seed () =
  (* The request-scoped tracing gate, four parts.

     Zero overhead: the macro tenant trace (default injected device kill
     included) runs once bare and once with a span recorder and an SLO
     monitor attached. The simulated clock, round count, and every
     completion (ids, times, output tensors) must be bitwise identical —
     observability is reporting only.

     Span shape: on the observed run every completed request must appear
     as exactly one well-formed span tree (single root, no orphans,
     children nested inside parents), and the lifecycle spans the macro
     trace is engineered to exercise — preemption parks, drain
     migrations, the kill's restore, cache hits and compiles — must
     actually be present. The Perfetto export must re-parse as
     well-formed JSON.

     Burn rate: the same SLO monitor must fire on the adversarial
     pattern (best-effort flood, shed storm) and stay silent on the
     uniform pattern.

     Probes: re-measures the fixed-seed simulated-cost probes and (full
     runs only — the AUTOBATCH_FAST arm caps the trace at 10k requests)
     rewrites the committed BENCH_obs2.json that `bench regress` diffs
     against. *)
  print_endline
    "== Request-scoped tracing (spans / burn rate / zero overhead) ==";
  let fast = Sys.getenv_opt "AUTOBATCH_FAST" <> None in
  let n_requests = if fast then 10_000 else 20_000 in
  let failed = ref false in
  let rows = ref [] in
  let check name value bar ok =
    if not ok then failed := true;
    rows := [ name; value; bar; (if ok then "ok" else "FAIL") ] :: !rows
  in
  (* Sheds and ladder rejections are the only "bad" events under an
     infinite latency threshold, which makes the fire/silent contrast a
     pure admission-pressure readout. Burn threshold 6: the adversarial
     flood rejects >half its traffic (burn ~12 on a 5% budget) while the
     uniform trace's cold-start rejections stay near burn ~3. *)
  let slo_classes () =
    List.map
      (fun cls ->
        Obs_slo.class_config ~cls ~threshold:infinity ~burn_threshold:6. ())
      [ "latency"; "throughput"; "best-effort" ]
  in
  let digest (r : Tenant_load.result) =
    List.map
      (fun c ->
        ( c.Tenant_server.c_item.Admission.request.Request.id,
          c.Tenant_server.c_started,
          c.Tenant_server.c_finished,
          match c.Tenant_server.c_outputs with
          | None -> []
          | Some ts -> List.map Tensor.data ts ))
      r.Tenant_load.fair.Tenant_load.stats.Tenant_server.completions
  in
  let r_off =
    Tenant_load.run ?seed ~n_requests ~verify:false ~keep_outputs:true
      ~baseline:false ()
  in
  let recorder = Obs_span.create () in
  let r_on, wall =
    Obs_wall.time (fun () ->
        Tenant_load.run ?seed ~n_requests ~verify:false ~keep_outputs:true
          ~baseline:false
          ~sink:(Obs_span.sink recorder)
          ~slo:(Obs_slo.create ~classes:(slo_classes ()) ())
          ())
  in
  let s_off = r_off.Tenant_load.fair.Tenant_load.stats in
  let s_on = r_on.Tenant_load.fair.Tenant_load.stats in
  check "sim cost: bare vs observed"
    (Printf.sprintf "%ss / %ss, %d / %d rounds"
       (Table.si s_off.Tenant_server.makespan)
       (Table.si s_on.Tenant_server.makespan)
       s_off.Tenant_server.rounds s_on.Tenant_server.rounds)
    "identical"
    (s_off.Tenant_server.makespan = s_on.Tenant_server.makespan
    && s_off.Tenant_server.rounds = s_on.Tenant_server.rounds);
  check "outputs: bare vs observed"
    (Printf.sprintf "%d completions" (List.length (digest r_on)))
    "bitwise identical"
    (digest r_on <> [] && digest r_off = digest r_on);
  let n_done = List.length s_on.Tenant_server.completions in
  let tree = Obs_span.validate recorder in
  check "span trees"
    (Printf.sprintf "%d traces, %d well-formed" tree.Obs_span.traces
       tree.Obs_span.well_formed)
    "one per completion, all well-formed"
    (Obs_span.all_well_formed recorder
    && tree.Obs_span.traces = n_done
    && Obs_span.count_named recorder "request" = n_done
    && Obs_span.dropped recorder = 0);
  let named = Obs_span.count_named recorder in
  check "lifecycle spans"
    (Printf.sprintf "%d preempted, %d migrate, %d restore, %d hit, %d compile"
       (named "preempted") (named "migrate") (named "restore")
       (named "cache-hit") (named "compile"))
    "all >=1"
    (named "preempted" >= 1
    && named "migrate" >= 1
    && named "restore" >= 1
    && named "cache-hit" >= 1
    && named "compile" >= 1);
  let tmp = Filename.temp_file "autobatch-obs2" ".trace.json" in
  Obs_span.write recorder ~path:tmp;
  let parse_ok =
    let contents = In_channel.with_open_text tmp In_channel.input_all in
    match Obs_json.of_string contents with
    | Ok doc -> Obs_json.member "traceEvents" doc <> None
    | Error _ -> false
  in
  Sys.remove tmp;
  check "perfetto export"
    (Printf.sprintf "%d spans" (Obs_span.length recorder))
    "re-parses" parse_ok;
  check "host wall (observed run)" (Obs_wall.summary wall) "nonzero"
    (wall.Obs_wall.wall_s > 0.);
  (* ---- burn rate ---- *)
  let slo_run pattern =
    let slo = Obs_slo.create ~classes:(slo_classes ()) () in
    ignore
      (Tenant_load.run ?seed ~pattern ~n_requests:2000 ~verify:false
         ~baseline:false ~slo ());
    Obs_slo.fired_total slo
  in
  let adv = slo_run Tenant_load.Adversarial in
  let uni = slo_run Tenant_load.Uniform in
  check "burn rate: adversarial"
    (Printf.sprintf "%d alerts" adv)
    ">=1" (adv >= 1);
  check "burn rate: uniform" (Printf.sprintf "%d alerts" uni) "0" (uni = 0);
  Table.print_stdout
    ~header:[ "check"; "value"; "bar"; "status" ]
    ~rows:(List.rev !rows);
  let probes = regress_probes () in
  if not fast then
    Obs_report.write ~path:"BENCH_obs2.json"
      (Obs_json.Obj
         [
           ("bench", Obs_json.Str "obs2");
           ("source", Obs_json.Str "bench/main.exe obs2");
           ( "workload",
             Obs_json.Str
               "20k-request bursty Zipf trace (fair arm only, one injected \
                device kill) run bare and with a span recorder + SLO monitor \
                attached; adversarial and uniform 2k traces for the burn-rate \
                monitor; fixed-seed simulated-cost probes for `bench regress`"
           );
           ( "note",
             Obs_json.Str
               "the stage fails unless the observed run is bitwise identical \
                to the bare run (simulated clock included), every completion \
                has a well-formed span tree, preempt/migrate/restore spans \
                are present, the Perfetto export re-parses, and the burn-rate \
                monitor fires on the adversarial trace and stays silent on \
                uniform; the probes section is the `bench regress` baseline — \
                deterministic, fixed-seed, independent of AUTOBATCH_FAST \
                (which runs 10k requests and does not rewrite this file)" );
           ("requests", Obs_json.Int n_requests);
           ("completions", Obs_json.Int n_done);
           ("spans", Obs_json.Int (Obs_span.length recorder));
           ("span_trees", Obs_span.stats_to_json tree);
           ( "lifecycle",
             Obs_json.Obj
               [
                 ("preempted", Obs_json.Int (named "preempted"));
                 ("migrate", Obs_json.Int (named "migrate"));
                 ("restore", Obs_json.Int (named "restore"));
                 ("cache_hit", Obs_json.Int (named "cache-hit"));
                 ("compile", Obs_json.Int (named "compile"));
               ] );
           ("slo_alerts_adversarial", Obs_json.Int adv);
           ("slo_alerts_uniform", Obs_json.Int uni);
           ("probes", Obs_json.List (List.map probe_to_json probes));
         ]);
  print_newline ();
  if !failed then begin
    prerr_endline
      "obs2 stage failed: observability perturbed the run, a span tree was \
       malformed, or the burn-rate monitor misbehaved";
    exit 1
  end

let run_regress () =
  (* Regression diff: re-run the fixed-seed probes and compare simulated
     cost and superstep counts against the committed BENCH_obs2.json.
     Both sides are deterministic, so any drift is a real behavioural
     change: cost or superstep increases fail the stage; improvements
     pass with a reminder to re-baseline via `bench obs2`. *)
  print_endline "== Simulated-cost regression vs committed BENCH_obs2.json ==";
  let path = "BENCH_obs2.json" in
  if not (Sys.file_exists path) then begin
    prerr_endline
      ("regress stage failed: " ^ path
     ^ " missing — run `bench obs2` (full tier) to create the baseline");
    exit 1
  end;
  let doc =
    match
      Obs_json.of_string (In_channel.with_open_text path In_channel.input_all)
    with
    | Ok doc -> doc
    | Error e ->
      Printf.eprintf "regress stage failed: %s unparseable: %s\n" path e;
      exit 1
  in
  let baseline =
    match Obs_json.member "probes" doc with
    | Some (Obs_json.List ps) ->
      List.filter_map
        (fun p ->
          let str k =
            match Obs_json.member k p with
            | Some (Obs_json.Str s) -> Some s
            | _ -> None
          in
          let num k =
            match Obs_json.member k p with
            | Some (Obs_json.Float f) -> Some f
            | Some (Obs_json.Int n) -> Some (float_of_int n)
            | _ -> None
          in
          match (str "name", num "sim_seconds", num "supersteps") with
          | Some n, Some s, Some st -> Some (n, s, st)
          | _ -> None)
        ps
    | _ -> []
  in
  if baseline = [] then begin
    Printf.eprintf "regress stage failed: no probes section in %s\n" path;
    exit 1
  end;
  let fresh = regress_probes () in
  let failed = ref false in
  let improved = ref false in
  let rows =
    List.map
      (fun (name, sim0, steps0) ->
        match List.find_opt (fun (n, _, _, _) -> n = name) fresh with
        | None ->
          failed := true;
          [ name; "-"; "-"; "-"; "MISSING" ]
        | Some (_, sim, steps, _) ->
          let steps = float_of_int steps in
          let worse = sim > sim0 *. (1. +. 1e-9) || steps > steps0 in
          let better = sim < sim0 *. (1. -. 1e-9) || steps < steps0 in
          if worse then failed := true else if better then improved := true;
          [
            name;
            Printf.sprintf "%ss / %ss" (Table.si sim0) (Table.si sim);
            Printf.sprintf "%+.4f%%" ((sim -. sim0) /. sim0 *. 100.);
            Printf.sprintf "%.0f / %.0f" steps0 steps;
            (if worse then "REGRESSED" else if better then "improved" else "ok");
          ])
      baseline
  in
  Table.print_stdout
    ~header:[ "probe"; "sim base/now"; "delta"; "steps base/now"; "status" ]
    ~rows;
  if !improved then
    print_endline
      "note: simulated cost improved — re-baseline with `bench obs2` when \
       intentional";
  print_newline ();
  if !failed then begin
    prerr_endline
      "regress stage failed: simulated cost or supersteps regressed vs \
       BENCH_obs2.json";
    exit 1
  end

let run_shard ?seed () =
  (* Real wall-clock scaling of the domain-parallel sharded runtime: the
     same batched-NUTS program split across 1/2/4/8 shards, one OCaml
     domain per shard (Shard_vm). Best of 3 runs per point. Speedup over
     the host's core count is physically impossible, so the recommended
     domain count is printed alongside the table. *)
  let model = Gaussian_model.model ~dim:20 () in
  let reg, _ = Nuts_dsl.setup ?seed ~model () in
  let q0 = Tensor.zeros [| 20 |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let z = 32 in
  let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter:2 ~n_burn:0 ~batch:z () in
  let time_point devices =
    let config =
      { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:devices () }
    in
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      ignore (Autobatch.run_sharded ~config compiled ~batch);
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  Printf.printf
    "== Sharded NUTS wall clock (z=%d, dim=20, one domain per shard) ==\n" z;
  Printf.printf "host reports Domain.recommended_domain_count = %d\n"
    (Domain.recommended_domain_count ());
  let base = time_point 1 in
  Table.print_stdout
    ~header:[ "devices"; "wall (best of 3)"; "speedup vs 1" ]
    ~rows:
      (List.map
         (fun d ->
           let t = if d = 1 then base else time_point d in
           [ string_of_int d; Table.si t ^ "s"; Printf.sprintf "%.2fx" (base /. t) ])
         [ 1; 2; 4; 8 ]);
  print_newline ()

let () =
  let rec parse seed stages = function
    | [] -> (seed, List.rev stages)
    | "--seed" :: v :: rest -> (
      match Int64.of_string_opt v with
      | Some s -> parse (Some s) stages rest
      | None ->
        Printf.eprintf "invalid --seed %S (want a 64-bit integer)\n" v;
        exit 1)
    | "--seed" :: [] ->
      Printf.eprintf "--seed needs a value\n";
      exit 1
    | s :: rest -> parse seed (s :: stages) rest
  in
  let seed, stages = parse None [] (List.tl (Array.to_list Sys.argv)) in
  let stages =
    match stages with
    | [] ->
      [ "micro"; "figure5"; "figure6"; "ablations"; "shard"; "serve"; "resil"; "obs";
        "obs2"; "prof"; "fuse"; "sched"; "tenant"; "eff"; "regress" ]
    | picked -> picked
  in
  List.iter
    (fun stage ->
      (* Every stage gets the same host-cost trailer: wall/CPU/alloc/GC
         from an Obs_wall probe around the whole stage. *)
      let probe = Obs_wall.probe () in
      Obs_wall.start probe;
      (match stage with
      | "micro" -> run_micro ()
      | "figure5" -> run_figure5 ?seed ()
      | "figure6" -> run_figure6 ?seed ()
      | "ablations" -> run_ablations ?seed ()
      | "shard" -> run_shard ?seed ()
      | "serve" -> run_serve ?seed ()
      | "resil" -> run_resil ?seed ()
      | "obs" -> run_obs ?seed ()
      | "obs2" -> run_obs2 ?seed ()
      | "prof" -> run_prof ?seed ()
      | "fuse" -> run_fuse ?seed ()
      | "sched" -> run_sched ?seed ()
      | "tenant" -> run_tenant ?seed ()
      | "eff" -> run_eff ?seed ()
      | "regress" -> run_regress ()
      | other ->
        Printf.eprintf
          "unknown stage %S (expected \
           micro|figure5|figure6|ablations|shard|serve|resil|obs|obs2|prof|fuse|sched|tenant|eff|regress)\n"
          other;
        exit 1);
      Printf.printf "[%s] %s\n\n%!" stage (Obs_wall.summary (Obs_wall.stop probe)))
    stages
