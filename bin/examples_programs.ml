(* Named programs for the `inspect` subcommand: each yields the program,
   a registry that can compile it, and its input element shapes. *)

let fib =
  let open Lang in
  let open Lang.Infix in
  let p =
    program ~main:"fib"
      [
        func "fib" ~params:[ "n" ]
          [
            if_
              (var "n" <= flt 1.)
              [ return_ [ flt 1. ] ]
              [
                call [ "left" ] "fib" [ var "n" - flt 2. ];
                call [ "right" ] "fib" [ var "n" - flt 1. ];
                return_ [ var "left" + var "right" ];
              ];
          ];
      ]
  in
  (p, Prim.standard (), [ Shape.scalar ])

let collatz =
  let open Lang in
  let open Lang.Infix in
  let p =
    program ~main:"collatz"
      [
        func "collatz" ~params:[ "n" ]
          [
            assign "steps" (flt 0.);
            while_
              (var "n" > flt 1.)
              [
                assign "half" (prim "floor" [ var "n" / flt 2. ]);
                if_
                  (prim "eq" [ var "n" - (flt 2. * var "half"); flt 0. ])
                  [ assign "n" (var "half") ]
                  [ assign "n" ((flt 3. * var "n") + flt 1.) ];
                assign "steps" (var "steps" + flt 1.);
              ];
            return_ [ var "steps" ];
          ];
      ]
  in
  (p, Prim.standard (), [ Shape.scalar ])

let nuts_gaussian () =
  let model = Gaussian_model.model ~dim:10 () in
  let reg, _key = Nuts_dsl.setup ~model () in
  (Nuts_dsl.program (), reg, Nuts_dsl.input_shapes ~model)
