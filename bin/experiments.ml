(* Command-line driver for the paper-reproduction experiments.

     dune exec bin/experiments.exe -- figure5
     dune exec bin/experiments.exe -- figure5 --paper-scale
     dune exec bin/experiments.exe -- figure6
     dune exec bin/experiments.exe -- ablations
     dune exec bin/experiments.exe -- inspect fib
     dune exec bin/experiments.exe -- fuse fib --dot fib.dot
     dune exec bin/experiments.exe -- sample --dim 10 --chains 64 *)

open Cmdliner

let batches_arg default =
  let doc = "Comma-separated batch sizes to sweep." in
  Arg.(value & opt (list int) default & info [ "batches" ] ~docv:"Z,Z,..." ~doc)

(* Every stochastic subcommand takes --seed; None keeps its default. *)
let seed_arg () =
  let parse s =
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "invalid seed %S" s))
  in
  let seed_conv = Arg.conv (parse, fun fmt v -> Format.fprintf fmt "%Ld" v) in
  Arg.(value & opt (some seed_conv) None
       & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed (64-bit integer).")

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* Observability plumbing shared by the experiment subcommands: --trace
   records the run as Chrome trace-event JSON, --json replaces the human
   tables with one machine-readable report document on stdout. *)
let trace_arg () =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record the run and write a Chrome trace-event JSON file \
                 (load in Perfetto or chrome://tracing).")

let json_arg () =
  Arg.(value & flag
       & info [ "json" ]
           ~doc:"Print a machine-readable JSON report to stdout instead of \
                 the tables.")

(* The --fuse/--no-fuse A/B knob shared by the experiment subcommands,
   plus --profile FILE for profile-guided fusion (which implies --fuse).
   --no-fuse wins and restates the default, so scripts can pass it
   unconditionally when sweeping both arms. *)
let load_profile path =
  match Fuse_profile.load ~path with
  | Ok p -> p
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    exit 1

let fuse_args () =
  let fuse =
    Arg.(value & flag
         & info [ "fuse" ]
             ~doc:"Compile through the superblock fusion passes (jump \
                   threading, chain fusion, if-conversion, loop rotation, \
                   call-entry duplication) before running.")
  in
  let no_fuse =
    Arg.(value & flag
         & info [ "no-fuse" ]
             ~doc:"Force fusion off (wins over $(b,--fuse) and \
                   $(b,--profile)); this is the default.")
  in
  let profile =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Profile-guided fusion: weight the duplicating rewrites by \
                   an execution profile — folded stacks as written by \
                   $(b,experiments profile --folded), or JSON. Implies \
                   $(b,--fuse).")
  in
  let combine fuse no_fuse profile_path =
    if no_fuse then None
    else if fuse || profile_path <> None then
      Some
        {
          Fuse.default_options with
          Fuse.profile = Option.map load_profile profile_path;
        }
    else None
  in
  Term.(const combine $ fuse $ no_fuse $ profile)

(* The block-scheduling knobs shared by figure5|figure6|profile|serve:
   --policy NAME picks one policy for the run, --compare-policies reruns
   the workload under every policy and adds a delta readout against the
   earliest baseline. *)
let policy_conv =
  let parse s =
    match Sched_policy.of_string s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown policy %S (%s)" s
              (String.concat "|"
                 (List.map Sched_policy.to_string Sched_policy.all))))
  in
  Arg.conv
    (parse, fun fmt p -> Format.pp_print_string fmt (Sched_policy.to_string p))

let policy_args () =
  let policy =
    Arg.(value & opt (some policy_conv) None
         & info [ "policy" ] ~docv:"NAME"
             ~doc:"Block scheduling policy for the batched VMs: earliest, \
                   most-active, round-robin, cost-lookahead, or \
                   critical-path (default earliest). Outputs are \
                   policy-invariant; only the schedule and the simulated \
                   cost change.")
  in
  let compare =
    Arg.(value & flag
         & info [ "compare-policies" ]
             ~doc:"Run the workload once per scheduling policy and report \
                   every run against the $(b,earliest) baseline \
                   ($(b,--policy) is ignored).")
  in
  let combine policy compare =
    if compare then Sched_policy.all
    else [ Option.value ~default:Sched_policy.Earliest policy ]
  in
  Term.(const combine $ policy $ compare)

let comparing = function [] | [ _ ] -> false | _ -> true

(* Concatenate per-policy CSV documents, keeping only the first header
   line (every to_csv here puts its header on line one; the policy is a
   column, so the rows self-identify). *)
let concat_csv = function
  | [] -> ""
  | first :: rest ->
    first
    ^ String.concat ""
        (List.map
           (fun csv ->
             match String.index_opt csv '\n' with
             | Some i -> String.sub csv (i + 1) (String.length csv - i - 1)
             | None -> "")
           rest)

(* [with_trace ?policy ?csv path f] runs [f] with a trace when [path] or
   [csv] is set and writes the Chrome document (and/or the CSV rows,
   stamped with the scheduling policy) afterwards. *)
let with_trace ?policy ?csv path f =
  let tr =
    if path <> None || csv <> None then Some (Obs_trace.create ()) else None
  in
  let result = f tr in
  (match tr with
  | Some tr ->
    Option.iter (fun path -> Obs_trace.write tr ~path) path;
    Option.iter (fun path -> write_file path (Obs_trace.to_csv ?policy tr)) csv
  | None -> ());
  result

let trace_csv_arg () =
  Arg.(value & opt (some string) None
       & info [ "trace-csv" ] ~docv:"FILE"
           ~doc:"Also write the recorded events (spans, occupancy samples, \
                 migrations) as CSV rows, each stamped with the run's \
                 scheduling policy.")

let report ~name ~json ~human fields =
  if json then Obs_report.print (Obs_report.document ~name fields)
  else human ()

(* In --compare-policies mode the trace CSV's policy column is stamped
   "mixed": one trace document records every policy's run. *)
let policy_label = function
  | [ p ] -> Sched_policy.to_string p
  | _ -> "mixed"

let figure5_cmd =
  let run paper_scale batches n_data dim n_iter seed csv trace trace_csv json
      fuse policies =
    let base = if paper_scale then Figure5.paper_scale else Figure5.default_scale in
    let scale =
      {
        Figure5.batch_sizes = (match batches with [] -> base.Figure5.batch_sizes | bs -> bs);
        n_data = Option.value ~default:base.Figure5.n_data n_data;
        dim = Option.value ~default:base.Figure5.dim dim;
        n_iter = Option.value ~default:base.Figure5.n_iter n_iter;
        seed = Option.value ~default:base.Figure5.seed seed;
      }
    in
    let runs =
      with_trace ~policy:(policy_label policies) ?csv:trace_csv trace (fun tr ->
          List.map
            (fun policy ->
              (policy, Figure5.run ~scale ?trace:tr ~policy ?fuse ()))
            policies)
    in
    let points = List.concat_map snd runs in
    report ~name:"figure5" ~json
      ~human:(fun () ->
        List.iteri
          (fun i (policy, points) ->
            if i > 0 then print_newline ();
            if comparing policies then
              Printf.printf "-- policy %s --\n" (Sched_policy.to_string policy);
            Figure5.print points)
          runs)
      [ ("points", Figure5.to_json points) ];
    Option.iter (fun path -> write_file path (Figure5.to_csv points)) csv
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the series as CSV.")
  in
  let paper =
    Arg.(value & flag & info [ "paper-scale" ]
           ~doc:"Use the paper's problem size (10,000 points, 100 regressors, \
                 batch sizes up to 4096). Slow on a host CPU.")
  in
  let n_data = Arg.(value & opt (some int) None & info [ "n-data" ] ~doc:"Data points.") in
  let dim = Arg.(value & opt (some int) None & info [ "dim" ] ~doc:"Regressors.") in
  let n_iter =
    Arg.(value & opt (some int) None & info [ "n-iter" ] ~doc:"Trajectories per member.")
  in
  Cmd.v
    (Cmd.info "figure5"
       ~doc:"NUTS throughput vs batch size on Bayesian logistic regression (paper Figure 5).")
    Term.(const run $ paper $ batches_arg [] $ n_data $ dim $ n_iter $ seed_arg () $ csv
          $ trace_arg () $ trace_csv_arg () $ json_arg () $ fuse_args ()
          $ policy_args ())

let figure6_cmd =
  let run dim batches n_iter seed stats_flag csv json fuse policies =
    let all =
      List.map
        (fun policy ->
          Figure6.run ~dim
            ?batch_sizes:(match batches with [] -> None | bs -> Some bs)
            ~n_iter ?seed ?fuse ~policy ())
        policies
    in
    report ~name:"figure6" ~json
      ~human:(fun () ->
        List.iteri
          (fun i stats ->
            if i > 0 then print_newline ();
            if comparing policies then
              Printf.printf "-- policy %s --\n" stats.Figure6.policy;
            Figure6.print stats;
            if stats_flag then begin
              print_newline ();
              Figure6.print_occupancy stats
            end)
          all)
      [ ( "stats",
          match all with
          | [ one ] -> Figure6.to_json one
          | many -> Obs_json.List (List.map Figure6.to_json many) );
      ];
    Option.iter
      (fun path -> write_file path (concat_csv (List.map Figure6.to_csv all)))
      csv
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the series as CSV.")
  in
  let dim = Arg.(value & opt int 100 & info [ "dim" ] ~doc:"Gaussian dimension.") in
  let n_iter =
    Arg.(value & opt int 10 & info [ "n-iter" ] ~doc:"Consecutive NUTS trajectories.")
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Also print the live-lane occupancy time series of the widest \
                 program-counter run.")
  in
  Cmd.v
    (Cmd.info "figure6"
       ~doc:"Batch-gradient utilization on the correlated Gaussian (paper Figure 6).")
    Term.(const run $ dim $ batches_arg [] $ n_iter $ seed_arg () $ stats_flag $ csv
          $ json_arg () $ fuse_args () $ policy_args ())

let ablations_cmd =
  let run dim batch n_iter seed =
    Ablations.print ~title:"Ablation A1: masking vs gather/scatter (local static, CPU eager)"
      (Ablations.masking_vs_gather ~dim ~batch ~n_iter ?seed ());
    print_newline ();
    Ablations.print ~title:"Ablation A2: block scheduling heuristics (program counter, GPU fused)"
      (Ablations.schedulers ~dim ~batch ~n_iter ?seed ());
    print_newline ();
    Ablations.print ~title:"Ablation A3: stack compiler optimizations O2-O5 (program counter, GPU fused)"
      (Ablations.stack_optimizations ~dim ~batch ~n_iter ?seed ())
  in
  let dim = Arg.(value & opt int 50 & info [ "dim" ] ~doc:"Gaussian dimension.") in
  let batch = Arg.(value & opt int 32 & info [ "batch" ] ~doc:"Batch size.") in
  let n_iter = Arg.(value & opt int 3 & info [ "n-iter" ] ~doc:"Trajectories.") in
  Cmd.v
    (Cmd.info "ablations" ~doc:"Design-choice ablations (DESIGN.md A1-A3).")
    Term.(const run $ dim $ batch $ n_iter $ seed_arg ())

let scaling_cmd =
  let run devices per_device total dim n_iter link_name algo_name seed csv json =
    let link =
      match link_name with
      | "nvlink" -> Mesh.nvlink
      | "pcie" -> Mesh.pcie
      | "ethernet" -> Mesh.ethernet
      | other ->
        Printf.eprintf "unknown link %S (nvlink|pcie|ethernet)\n" other;
        exit 1
    in
    let collective =
      match algo_name with
      | "ring" -> Collectives.Ring
      | "tree" -> Collectives.Tree
      | other ->
        Printf.eprintf "unknown collective algorithm %S (ring|tree)\n" other;
        exit 1
    in
    if List.exists (fun d -> d <= 0) devices then begin
      Printf.eprintf "device counts must be positive (got %s)\n"
        (String.concat "," (List.map string_of_int devices));
      exit 1
    end;
    let scale =
      {
        Scaling.devices =
          (match devices with [] -> Scaling.default_scale.Scaling.devices | ds -> ds);
        per_device; total; dim; n_iter; link; collective;
        seed = Option.value ~default:Scaling.default_scale.Scaling.seed seed;
      }
    in
    let points = Scaling.run ~scale () in
    report ~name:"scaling" ~json
      ~human:(fun () -> Scaling.print points)
      [ ("points", Scaling.to_json points) ];
    Option.iter (fun path -> write_file path (Scaling.to_csv points)) csv
  in
  let devices =
    Arg.(value & opt (list int) [] & info [ "devices" ] ~docv:"N,N,..."
           ~doc:"Mesh sizes to sweep (default 1,2,4,8).")
  in
  let per_device =
    Arg.(value & opt int 16 & info [ "per-device" ]
           ~doc:"Weak scaling: chains per device.")
  in
  let total =
    Arg.(value & opt int 64 & info [ "total" ] ~doc:"Strong scaling: total chains.")
  in
  let dim = Arg.(value & opt int 20 & info [ "dim" ] ~doc:"Gaussian dimension.") in
  let n_iter =
    Arg.(value & opt int 2 & info [ "n-iter" ] ~doc:"Trajectories per chain.")
  in
  let link =
    Arg.(value & opt string "nvlink"
         & info [ "link" ] ~doc:"Interconnect: nvlink, pcie, or ethernet.")
  in
  let algo =
    Arg.(value & opt string "ring"
         & info [ "collective" ] ~doc:"Collective schedule: ring or tree.")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the series as CSV.")
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Weak/strong scaling of sharded batched NUTS across a device mesh \
             (Figure 7; each simulated device is a real OCaml domain).")
    Term.(const run $ devices $ per_device $ total $ dim $ n_iter $ link $ algo
          $ seed_arg () $ csv $ json_arg ())

let known_programs () =
  [
    ("fib", Examples_programs.fib);
    ("collatz", Examples_programs.collatz);
    ("nuts-gaussian", Examples_programs.nuts_gaussian ());
  ]

(* Resolve a program reference: a known name, or a source file parsed by
   the concrete-syntax frontend. Shapes default to scalars when unknown. *)
let resolve_program name =
  match List.assoc_opt name (known_programs ()) with
  | Some triple -> triple
  | None ->
    if Sys.file_exists name then begin
      match Parser.parse_file name with
      | Error e ->
        Printf.eprintf "%s: parse error at %s\n" name (Parser.string_of_error e);
        exit 1
      | Ok prog ->
        let entry = Option.get (Lang.find_func prog prog.Lang.main) in
        let shapes = List.map (fun _ -> Shape.scalar) entry.Lang.params in
        (prog, Prim.standard (), shapes)
    end
    else begin
      Printf.eprintf
        "unknown program %S: not a known name (%s) and not a source file\n" name
        (String.concat ", " (List.map fst (known_programs ())));
      exit 1
    end

let prog_pos_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"A known program (fib, collatz, nuts-gaussian) or a path to a \
               source file in the concrete syntax.")

let inspect_cmd =
  let run name stack optimize =
    let prog, registry, input_shapes = resolve_program name in
    let compiled = Autobatch.compile ~registry ~optimize ~input_shapes prog in
    if stack then Format.printf "%a@." Stack_ir.pp_program compiled.Autobatch.stack
    else Format.printf "%a@." Cfg.pp_program compiled.Autobatch.cfg
  in
  let stack =
    Arg.(value & flag & info [ "stack" ]
           ~doc:"Print the merged Figure-4 stack program instead of the Figure-2 CFG.")
  in
  let optimize =
    Arg.(value & flag & info [ "optimize" ]
           ~doc:"Run the CFG optimizer (fold/CSE/copy-prop/DCE) first.")
  in
  Cmd.v
    (Cmd.info "inspect" ~doc:"Dump a program's compiled IR.")
    Term.(const run $ prog_pos_arg $ stack $ optimize)

let dot_cmd =
  let run name stack =
    let prog, registry, input_shapes = resolve_program name in
    let compiled = Autobatch.compile ~registry ~input_shapes prog in
    if stack then print_string (Dot.stack_to_dot compiled.Autobatch.stack)
    else print_string (Dot.cfg_to_dot compiled.Autobatch.cfg)
  in
  let stack =
    Arg.(value & flag & info [ "stack" ]
           ~doc:"Emit the merged stack program's graph instead of the CFG.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz DOT for a program's compiled IR.")
    Term.(const run $ prog_pos_arg $ stack)

let fuse_cmd =
  let run name profile_path dot ir json no_inline speculate_rng =
    let prog, registry, input_shapes = resolve_program name in
    let options =
      {
        Fuse.default_options with
        Fuse.profile = Option.map load_profile profile_path;
        inline_entries = not no_inline;
        speculate_rng;
      }
    in
    let compiled = Autobatch.compile ~registry ~fuse:options ~input_shapes prog in
    let report = Option.get compiled.Autobatch.fuse in
    if json then Obs_report.print (Fuse.to_json report)
    else Fuse.print report;
    if ir then Format.printf "@.%a@." Cfg.pp_program compiled.Autobatch.cfg;
    Option.iter
      (fun path ->
        write_file path
          (Dot.fused_cfg_to_dot ~groups:report.Fuse.megablocks
             compiled.Autobatch.cfg))
      dot
  in
  let profile =
    Arg.(value & opt (some string) None
         & info [ "profile" ] ~docv:"FILE"
             ~doc:"Profile-guided fusion: weight the duplicating rewrites by \
                   an execution profile (folded stacks or JSON).")
  in
  let dot =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Write the fused CFG as Graphviz DOT with megablocks \
                   grouped into dashed clusters labelled by their source \
                   block ids.")
  in
  let ir =
    Arg.(value & flag
         & info [ "ir" ] ~doc:"Also dump the fused CFG in text form.")
  in
  let no_inline =
    Arg.(value & flag
         & info [ "no-inline" ]
             ~doc:"Skip call-entry duplication on the merged stack program \
                   (keep only the CFG-level rewrites).")
  in
  let speculate_rng =
    Arg.(value & flag
         & info [ "speculate-rng" ]
             ~doc:"Let if-conversion speculate RNG draws into both arms. \
                   Still bitwise-deterministic (draws are counter-based), \
                   but the lane RNG streams differ from the unfused \
                   program's, so A/B output comparison no longer holds.")
  in
  Cmd.v
    (Cmd.info "fuse"
       ~doc:"Run the superblock fusion compiler on a program and report what \
             it did: per-pass rewrite counts, megablock provenance, kernel \
             sizes, and per-function/per-block op counts.")
    Term.(const run $ prog_pos_arg $ profile $ dot $ ir $ json_arg ()
          $ no_inline $ speculate_rng)

let run_file_cmd =
  let run name args =
    let prog, registry, input_shapes = resolve_program name in
    let compiled = Autobatch.compile ~registry ~input_shapes prog in
    let entry = Option.get (Lang.find_func prog prog.Lang.main) in
    if List.length args <> List.length entry.Lang.params then begin
      Printf.eprintf "program %s wants %d scalar arguments, got %d\n" name
        (List.length entry.Lang.params)
        (List.length args);
      exit 1
    end;
    let batch = List.map (fun v -> Tensor.of_list [ v ]) args in
    let outputs = Autobatch.run_pc compiled ~batch in
    List.iteri
      (fun i t -> Format.printf "output %d: %a@." i Tensor.pp (Tensor.slice_row t 0))
      outputs
  in
  let args =
    Arg.(value & pos_right 0 float [] & info [] ~docv:"ARGS"
           ~doc:"Scalar arguments to the entry function.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a program (batch of one) under the program-counter VM.")
    Term.(const run $ prog_pos_arg $ args)

let profile_cmd =
  let run model_name dim batch n_iter top seed folded trace trace_csv json fuse
      policies =
    if not (List.mem model_name Profile.known_models) then begin
      Printf.eprintf "unknown model %S (%s)\n" model_name
        (String.concat "|" Profile.known_models);
      exit 1
    end;
    let results =
      with_trace ~policy:(policy_label policies) ?csv:trace_csv trace (fun tr ->
          List.map
            (fun policy ->
              Profile.run ~dim ~batch ~n_iter ?seed ?trace:tr ?fuse ~policy
                ~model:model_name ())
            policies)
    in
    let result = List.hd results in
    let views = List.map Profile.view results in
    let fields =
      ("profile", Profile.to_json result)
      ::
      (if comparing policies then
         [ ("compare", Profile.compare_to_json views) ]
       else [])
    in
    report ~name:"profile" ~json
      ~human:(fun () ->
        Profile.print ~top result;
        if comparing policies then begin
          print_newline ();
          Profile.print_compare views
        end)
      fields;
    Option.iter (fun path -> write_file path (Profile.folded result)) folded
  in
  let model =
    Arg.(value & opt string "eight_schools"
         & info [ "model" ]
             ~doc:"Target posterior: eight_schools, gaussian, funnel, or \
                   logistic.")
  in
  let dim =
    Arg.(value & opt int 10
         & info [ "dim" ] ~doc:"Dimension (ignored by eight_schools).")
  in
  let batch = Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Batch size.") in
  let n_iter =
    Arg.(value & opt int 2 & info [ "n-iter" ] ~doc:"Trajectories per chain.")
  in
  let top =
    Arg.(value & opt int 12 & info [ "top" ] ~doc:"Hot-block rows to print.")
  in
  let folded =
    Arg.(value & opt (some string) None
         & info [ "folded" ] ~docv:"FILE"
             ~doc:"Write folded stacks (flamegraph.pl input) of simulated \
                   self-time to FILE.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Divergence profile of batched NUTS under the program-counter VM: \
             per-block attribution of simulated time, lane-utilization \
             accounting, and flamegraph export.")
    Term.(const run $ model $ dim $ batch $ n_iter $ top $ seed_arg () $ folded
          $ trace_arg () $ trace_csv_arg () $ json_arg () $ fuse_args ()
          $ policy_args ())

let sample_cmd =
  let run model_name dim chains n_iter n_burn variant_name collect_name no_adapt
      devices seed =
    let model =
      match Zoo.resolve ~dim model_name with
      | m -> m
      | exception Invalid_argument _ ->
        Printf.eprintf "unknown model %S (%s)\n" model_name
          (String.concat "|" Zoo.known);
        exit 1
    in
    let variant =
      match variant_name with
      | "slice" -> Nuts.Slice
      | "multinomial" -> Nuts.Multinomial
      | other ->
        Printf.eprintf "unknown variant %S (slice|multinomial)\n" other;
        exit 1
    in
    let collect =
      match collect_name with
      | "moments" -> `Moments
      | "samples" -> `Samples
      | other ->
        Printf.eprintf "unknown collection mode %S (moments|samples)\n" other;
        exit 1
    in
    let s =
      Batched_sampler.run ~variant ~adapt:(not no_adapt) ~collect ~devices ~model
        ~chains ~n_iter ~n_burn ?seed ()
    in
    Format.printf "%s: %a@." model.Model.name Batched_sampler.pp_summary s
  in
  let model =
    Arg.(value & opt string "gaussian"
         & info [ "model" ] ~doc:"Target: gaussian, funnel, or logistic.")
  in
  let dim = Arg.(value & opt int 10 & info [ "dim" ] ~doc:"Dimension.") in
  let chains = Arg.(value & opt int 64 & info [ "chains" ] ~doc:"Parallel chains.") in
  let n_iter = Arg.(value & opt int 50 & info [ "n-iter" ] ~doc:"Trajectories per chain.") in
  let n_burn = Arg.(value & opt int 20 & info [ "n-burn" ] ~doc:"Burn-in trajectories.") in
  let variant =
    Arg.(value & opt string "slice"
         & info [ "variant" ] ~doc:"NUTS variant: slice (the paper's) or multinomial.")
  in
  let collect =
    Arg.(value & opt string "moments"
         & info [ "collect" ]
             ~doc:"moments (full cross-trajectory batching) or samples (per-draw \
                   diagnostics, trajectory-synchronized).")
  in
  let no_adapt =
    Arg.(value & flag & info [ "no-adapt" ] ~doc:"Skip warmup adaptation.")
  in
  let devices =
    Arg.(value & opt int 1
         & info [ "devices" ]
             ~doc:"Shard the chain dimension across this many simulated devices, \
                   one OCaml domain each; results are bitwise identical to one \
                   device.")
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:"Run batched NUTS on a built-in target and summarize the posterior.")
    Term.(const run $ model $ dim $ chains $ n_iter $ n_burn $ variant $ collect
          $ no_adapt $ devices $ seed_arg ())

let serve_cmd =
  let run dim lanes requests max_iter loads policies queue_depth closed_clients
      seed csv trace trace_csv json scheds =
    let policies =
      List.map
        (function
          | "fifo" -> Server.Fifo
          | "shortest" -> Server.Shortest_first
          | "synchronous" | "sync" -> Server.Synchronous
          | other ->
            Printf.eprintf "unknown policy %S (fifo|shortest|synchronous)\n"
              other;
            exit 1)
        policies
    in
    let all =
      with_trace ~policy:(policy_label scheds) ?csv:trace_csv trace (fun tr ->
          List.map
            (fun sched ->
              Serving.run ~dim ~lanes ~n_requests:requests ~max_iter
                ?loads:(match loads with [] -> None | ls -> Some ls)
                ~policies ~queue_depth ~closed_clients ?seed ?trace:tr ~sched
                ())
            scheds)
    in
    report ~name:"serve" ~json
      ~human:(fun () ->
        List.iteri
          (fun i stats ->
            if i > 0 then print_newline ();
            if comparing scheds then
              Printf.printf "-- scheduling policy %s --\n"
                stats.Serving.sched_policy;
            Serving.print stats)
          all)
      [ ( "stats",
          match all with
          | [ one ] -> Serving.to_json one
          | many -> Obs_json.List (List.map Serving.to_json many) );
      ];
    Option.iter
      (fun path -> write_file path (concat_csv (List.map Serving.to_csv all)))
      csv
  in
  let dim = Arg.(value & opt int 10 & info [ "dim" ] ~doc:"Gaussian dimension.") in
  let lanes =
    Arg.(value & opt int 8 & info [ "lanes" ] ~doc:"Device width (VM lanes).")
  in
  let requests =
    Arg.(value & opt int 48 & info [ "requests" ] ~doc:"Requests per run.")
  in
  let max_iter =
    Arg.(value & opt int 3
         & info [ "max-iter" ]
             ~doc:"Trajectories per request are uniform in 1..MAX (service-time \
                   spread).")
  in
  let loads =
    Arg.(value & opt (list float) []
         & info [ "loads" ] ~docv:"L,L,..."
             ~doc:"Offered loads as fractions of device capacity (default \
                   0.6,0.9,1.3).")
  in
  let policies =
    Arg.(value & opt (list string) [ "synchronous"; "fifo"; "shortest" ]
         & info [ "policies" ] ~docv:"P,P,..."
             ~doc:"Admission policies to compare: fifo, shortest, synchronous.")
  in
  let queue_depth =
    Arg.(value & opt int 1024 & info [ "queue-depth" ] ~doc:"Admission queue bound.")
  in
  let closed_clients =
    Arg.(value & opt int (-1)
         & info [ "closed-clients" ]
             ~doc:"Closed-loop clients (default: one per lane; 0 disables the \
                   closed-loop runs).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the series as CSV.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Continuous-batching request server: stream NUTS sampling requests \
             through recyclable VM lanes and compare admission policies \
             (throughput, latency percentiles, live-lane occupancy).")
    Term.(const run $ dim $ lanes $ requests $ max_iter $ loads $ policies
          $ queue_depth $ closed_clients $ seed_arg () $ csv $ trace_arg ()
          $ trace_csv_arg () $ json_arg () $ policy_args ())

let parse_pattern pattern =
  match Tenant_load.pattern_of_string pattern with
  | Some p -> p
  | None ->
    Printf.eprintf "unknown pattern %S (uniform|bursty|diurnal|adversarial)\n"
      pattern;
    exit 1

let tenants_cmd =
  let run requests tenants programs pattern load mesh lanes ckpt kill_round
      cache seed no_baseline no_verify trace json =
    let pattern = parse_pattern pattern in
    (* --trace records the fair arm's span stream (request trees plus
       the operational instants) and writes a Perfetto document. *)
    let recorder = Option.map (fun _ -> Obs_span.create ()) trace in
    let r =
      Tenant_load.run ?seed ~pattern ~n_requests:requests ~n_tenants:tenants
        ~n_programs:programs ?cache_capacity:cache ~load ~mesh_size:mesh
        ~lanes_per_shard:lanes ~checkpoint_interval:ckpt ~kill_round
        ~baseline:(not no_baseline) ~verify:(not no_verify)
        ?sink:(Option.map Obs_span.sink recorder)
        ()
    in
    let span_fields =
      match (trace, recorder) with
      | Some path, Some rec_ ->
        Obs_span.write rec_ ~path;
        [
          ( "spans",
            Obs_json.Obj
              [
                ("path", Obs_json.Str path);
                ("recorded", Obs_json.Int (Obs_span.length rec_));
                ("dropped", Obs_json.Int (Obs_span.dropped rec_));
                ("trees", Obs_span.stats_to_json (Obs_span.validate rec_));
              ] );
        ]
      | _ -> []
    in
    report ~name:"tenants" ~json
      ~human:(fun () ->
        Tenant_load.print_table r;
        match (trace, recorder) with
        | Some path, Some rec_ ->
          Printf.printf "trace: %d spans, %d request trees (%s) -> %s\n"
            (Obs_span.length rec_)
            (Obs_span.count_named rec_ "request")
            (if Obs_span.all_well_formed rec_ then "all well-formed"
             else "MALFORMED")
            path
        | _ -> ())
      (("stats", Tenant_load.to_json r) :: span_fields);
    if r.Tenant_load.mismatches > 0 then exit 1
  in
  let requests =
    Arg.(value & opt int 2000 & info [ "requests" ] ~doc:"Requests in the trace.")
  in
  let tenants =
    Arg.(value & opt int 24
         & info [ "tenants" ] ~doc:"Tenants (Zipf-popular, mixed SLO classes).")
  in
  let programs =
    Arg.(value & opt int 8
         & info [ "programs" ] ~doc:"Distinct programs in the family.")
  in
  let pattern =
    Arg.(value & opt string "bursty"
         & info [ "pattern" ] ~docv:"P"
             ~doc:"Arrival pattern: uniform, bursty, diurnal, adversarial.")
  in
  let load =
    Arg.(value & opt float 0.35
         & info [ "load" ]
             ~doc:"Offered load as a fraction of full-pool capacity.")
  in
  let mesh =
    Arg.(value & opt int 4 & info [ "mesh" ] ~doc:"Devices in the shard pool.")
  in
  let lanes =
    Arg.(value & opt int 8 & info [ "lanes" ] ~doc:"VM lanes per shard.")
  in
  let ckpt =
    Arg.(value & opt int 16
         & info [ "checkpoint-interval" ] ~doc:"Rounds between checkpoints.")
  in
  let kill_round =
    Arg.(value & opt int 40
         & info [ "kill-round" ]
             ~doc:"Inject one device kill at this round (negative: none).")
  in
  let cache =
    Arg.(value & opt (some int) None
         & info [ "cache" ] ~doc:"Program-cache capacity (default: programs).")
  in
  let no_baseline =
    Arg.(value & flag
         & info [ "no-baseline" ] ~doc:"Skip the FIFO no-admission arm.")
  in
  let no_verify =
    Arg.(value & flag
         & info [ "no-verify" ]
             ~doc:"Skip the bitwise solo-equivalence check (and drop outputs), \
                   for large sweeps.")
  in
  Cmd.v
    (Cmd.info "tenants"
       ~doc:"Multi-tenant serving: admission control, SLO-aware preemption, \
             program cache, and an autoscaling shard pool under bursty Zipf \
             traffic, paired against a no-admission FIFO baseline and \
             verified bitwise against solo runs. --trace FILE additionally \
             records every request's span tree (queue/service children, \
             preemption and migration marks) plus the operational instants \
             as a Perfetto track-per-tenant document.")
    Term.(const run $ requests $ tenants $ programs $ pattern $ load $ mesh
          $ lanes $ ckpt $ kill_round $ cache $ seed_arg () $ no_baseline
          $ no_verify $ trace_arg () $ json_arg ())

let slo_cmd =
  let run requests pattern load threshold budget fast_window slow_window
      burn_threshold drive seed json =
    let pattern = parse_pattern pattern in
    let classes =
      List.map
        (fun cls ->
          Obs_slo.class_config ~budget ~fast_window ~slow_window
            ~burn_threshold ~cls ~threshold ())
        [ "latency"; "throughput"; "best-effort" ]
    in
    let slo = Obs_slo.create ~classes () in
    (* Alert edges and ladder transitions arrive as ordinary sink
       events; collecting them here is exactly what a production
       alerting pipe would do. *)
    let alerts = ref [] and ladder = ref [] in
    let sink = function
      | Obs_sink.Slo_alert { slo; fired; burn_fast; burn_slow; at } ->
        alerts := (slo, fired, burn_fast, burn_slow, at) :: !alerts
      | Obs_sink.Ladder { level; occupancy; cause; at } ->
        ladder := (level, occupancy, cause, at) :: !ladder
      | _ -> ()
    in
    let r =
      Tenant_load.run ?seed ~pattern ~n_requests:requests ~load ~verify:false
        ~baseline:false ~sink ~slo ~slo_drive:drive ()
    in
    let makespan =
      r.Tenant_load.fair.Tenant_load.stats.Tenant_server.makespan
    in
    let alerts = List.rev !alerts and ladder = List.rev !ladder in
    report ~name:"slo" ~json
      ~human:(fun () ->
        Printf.printf
          "slo monitor: %s x %d requests, load %.2f; threshold %gs, budget \
           %g, windows %g/%gs, burn threshold %g%s\n"
          (Tenant_load.pattern_name r.Tenant_load.pattern)
          r.Tenant_load.n_requests r.Tenant_load.load threshold budget
          fast_window slow_window burn_threshold
          (if drive then " (driving the admission ladder)" else "");
        Printf.printf
          "completed %d  shed %d  rejected %d  makespan %.4fs  alerts %d\n\n"
          (List.length
             r.Tenant_load.fair.Tenant_load.stats.Tenant_server.completions)
          r.Tenant_load.fair.Tenant_load.shed r.Tenant_load.fair.Tenant_load.rejected
          makespan (Obs_slo.fired_total slo);
        if alerts <> [] then
          Table.print_stdout
            ~header:[ "at"; "class"; "edge"; "burn fast"; "burn slow" ]
            ~rows:
              (List.map
                 (fun (cls, fired, bf, bs, at) ->
                   [
                     Printf.sprintf "%.4f" at;
                     cls;
                     (if fired then "FIRED" else "resolved");
                     Printf.sprintf "%.2f" bf;
                     Printf.sprintf "%.2f" bs;
                   ])
                 alerts)
        else print_endline "no alert edges";
        if ladder <> [] then begin
          print_newline ();
          Table.print_stdout
            ~header:[ "at"; "ladder level"; "occupancy"; "cause" ]
            ~rows:
              (List.map
                 (fun (level, occ, cause, at) ->
                   [
                     Printf.sprintf "%.4f" at;
                     level;
                     Printf.sprintf "%.3f" occ;
                     cause;
                   ])
                 ladder)
        end)
      [
        ( "alerts",
          Obs_json.List
            (List.map
               (fun (cls, fired, bf, bs, at) ->
                 Obs_json.Obj
                   [
                     ("class", Obs_json.Str cls);
                     ("fired", Obs_json.Bool fired);
                     ("burn_fast", Obs_json.Float bf);
                     ("burn_slow", Obs_json.Float bs);
                     ("at", Obs_json.Float at);
                   ])
               alerts) );
        ( "ladder",
          Obs_json.List
            (List.map
               (fun (level, occ, cause, at) ->
                 Obs_json.Obj
                   [
                     ("level", Obs_json.Str level);
                     ("occupancy", Obs_json.Float occ);
                     ("cause", Obs_json.Str cause);
                     ("at", Obs_json.Float at);
                   ])
               ladder) );
        ("monitor", Obs_slo.to_json slo ~now:makespan);
        ("stats", Tenant_load.to_json r);
      ]
  in
  let requests =
    Arg.(value & opt int 2000 & info [ "requests" ] ~doc:"Requests in the trace.")
  in
  let pattern =
    Arg.(value & opt string "adversarial"
         & info [ "pattern" ] ~docv:"P"
             ~doc:"Arrival pattern: uniform, bursty, diurnal, adversarial.")
  in
  let load =
    Arg.(value & opt float 0.35
         & info [ "load" ]
             ~doc:"Offered load as a fraction of full-pool capacity.")
  in
  let threshold =
    Arg.(value & opt float 0.25
         & info [ "threshold" ]
             ~doc:"Latency threshold (simulated seconds) defining a bad \
                   request; sheds and ladder rejections are always bad.")
  in
  let budget =
    Arg.(value & opt float 0.05
         & info [ "budget" ] ~doc:"Error budget: allowed bad fraction.")
  in
  let fast_window =
    Arg.(value & opt float 60.
         & info [ "fast-window" ]
             ~doc:"Fast (detection) window, simulated seconds.")
  in
  let slow_window =
    Arg.(value & opt float 360.
         & info [ "slow-window" ]
             ~doc:"Slow (confirmation) window, simulated seconds.")
  in
  let burn_threshold =
    Arg.(value & opt float 6.
         & info [ "burn-threshold" ]
             ~doc:"Fire when both window burn rates reach this multiple of \
                   the sustainable budget pace.")
  in
  let drive =
    Arg.(value & flag
         & info [ "drive" ]
             ~doc:"Let a firing alert pin the admission ladder at \
                   shed-best-effort until it resolves (the resulting rung \
                   moves show up in the ladder table with cause slo-floor).")
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:"SLO burn-rate monitoring: replay a tenant trace under the \
             multi-window monitor, print every alert edge and admission \
             ladder transition, and optionally let alerts drive the ladder.")
    Term.(const run $ requests $ pattern $ load $ threshold $ budget
          $ fast_window $ slow_window $ burn_threshold $ drive $ seed_arg ()
          $ json_arg ())

let resilience_cmd =
  let run z intervals rates vms shards lanes requests bandwidth seed csv json =
    let intervals =
      match intervals with
      | [] -> None
      | l ->
        Some
          (List.map
             (fun s ->
               if s = "inf" || s = "0" then 0
               else
                 match int_of_string_opt s with
                 | Some i when i > 0 -> i
                 | _ ->
                   Printf.eprintf "invalid interval %S (positive int or 'inf')\n" s;
                   exit 1)
             l)
    in
    List.iter
      (fun vm ->
        if not (List.mem vm [ "pc"; "jit"; "shard"; "server" ]) then begin
          Printf.eprintf "unknown vm %S (pc|jit|shard|server)\n" vm;
          exit 1
        end)
      vms;
    if bandwidth <= 0. then begin
      Printf.eprintf "checkpoint bandwidth must be positive (got %g)\n" bandwidth;
      exit 1
    end;
    let stats =
      Resilience.run ~z ?intervals
        ?rates:(match rates with [] -> None | l -> Some l)
        ?vms:(match vms with [] -> None | l -> Some l)
        ~shards ~server_lanes:lanes ~n_requests:requests
        ~ckpt_bandwidth:bandwidth
        ?seed:(Option.map Int64.to_int seed)
        ()
    in
    report ~name:"resilience" ~json
      ~human:(fun () -> Resilience.print stats)
      [ ("stats", Resilience.to_json stats) ];
    Option.iter (fun path -> write_file path (Resilience.to_csv stats)) csv
  in
  let z = Arg.(value & opt int 32 & info [ "z" ] ~doc:"Batch size (lanes).") in
  let intervals =
    Arg.(value & opt (list string) []
         & info [ "intervals" ] ~docv:"K,K,..."
             ~doc:"Checkpoint intervals in supersteps; 'inf' (or 0) keeps only \
                   the initial checkpoint (default 1,8,64,inf).")
  in
  let rates =
    Arg.(value & opt (list float) []
         & info [ "rates" ] ~docv:"R,R,..."
             ~doc:"Per-superstep fault probabilities (default 0,0.02,0.1).")
  in
  let vms =
    Arg.(value & opt (list string) []
         & info [ "vms" ] ~docv:"VM,VM,..."
             ~doc:"Runtimes to sweep: pc, jit, shard, server (default all).")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~doc:"Shard count for the sharded VM.")
  in
  let lanes =
    Arg.(value & opt int 4 & info [ "server-lanes" ] ~doc:"Server device width.")
  in
  let requests =
    Arg.(value & opt int 12 & info [ "requests" ] ~doc:"Requests in the serving trace.")
  in
  let bandwidth =
    Arg.(value & opt float 262144.
         & info [ "ckpt-bandwidth" ]
             ~doc:"Modelled checkpoint drain rate in bytes per superstep (sets \
                   the analytic overhead and Young's interval).")
  in
  let csv =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE"
           ~doc:"Also write the series as CSV.")
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:"Checkpoint/restore under fault injection: sweep checkpoint \
             interval against fault rate for every runtime, report overhead \
             and recovered work, and verify each recovered run is bitwise \
             identical to the fault-free one.")
    Term.(const run $ z $ intervals $ rates $ vms $ shards $ lanes $ requests
          $ bandwidth $ seed_arg () $ csv $ json_arg ())


(* ---------- handler-DSL workloads (DESIGN.md S22) ---------- *)

(* Workload constructors reject bad sizes with [Invalid_argument]; the
   CLI turns that into the usual one-line message + exit 1. *)
let or_usage f =
  match f () with
  | r -> r
  | exception Invalid_argument msg ->
    Printf.eprintf "%s\n" msg;
    exit 1

let smc_cmd =
  let run particles steps tol seed json =
    let r = or_usage (fun () -> Smc.run ?seed ~n_particles:particles ~steps ()) in
    report ~name:"smc" ~json
      ~human:(fun () -> Smc.print r)
      [ ("smc", Smc.to_json r) ];
    if not (Smc.passes ~tol r) then begin
      Printf.eprintf "smc: gate failed\n";
      exit 1
    end
  in
  let particles =
    Arg.(value & opt int 256 & info [ "particles" ] ~doc:"Particle count.")
  in
  let steps =
    Arg.(value & opt int 25 & info [ "steps" ] ~doc:"Filter time steps.")
  in
  let tol =
    Arg.(value & opt float 1.0
         & info [ "tol" ] ~doc:"Allowed |log Z - Kalman| gap.")
  in
  Cmd.v
    (Cmd.info "smc"
       ~doc:"Bootstrap particle filter from the handler DSL: multinomial \
             resampling through the lane-migration seam, gated against the \
             Kalman filter's exact log marginal likelihood.")
    Term.(const run $ particles $ steps $ tol $ seed_arg () $ json_arg ())

let temper_cmd =
  let run chains rounds sweep_steps mu0 seed json =
    let c =
      { Tempering.default_config with chains; rounds; sweep_steps; mu0 }
    in
    let r = or_usage (fun () -> Tempering.run ?seed ~c ()) in
    report ~name:"temper" ~json
      ~human:(fun () -> Tempering.print r)
      [ ("temper", Tempering.to_json r) ];
    if not (Tempering.passes r) then begin
      Printf.eprintf "temper: gate failed\n";
      exit 1
    end
  in
  let chains =
    Arg.(value & opt int 8 & info [ "chains" ] ~doc:"Temperature ladder size.")
  in
  let rounds =
    Arg.(value & opt int 400 & info [ "rounds" ] ~doc:"Sweep/exchange rounds.")
  in
  let sweep_steps =
    Arg.(value & opt int 10 & info [ "sweep-steps" ] ~doc:"RWM steps per sweep.")
  in
  let mu0 =
    Arg.(value & opt float 3. & info [ "mu0" ] ~doc:"Mixture mode offset.")
  in
  Cmd.v
    (Cmd.info "temper"
       ~doc:"Parallel tempering from the handler DSL: chains as batch \
             members, host replica exchanges priced as collectives, gated on \
             the mixture's closed-form moments.")
    Term.(const run $ chains $ rounds $ sweep_steps $ mu0 $ seed_arg ()
          $ json_arg ())

let tree_cmd =
  let run depth features z seed json =
    let r = or_usage (fun () -> Treebench.run ?seed ~depth ~n_features:features ~z ()) in
    report ~name:"tree" ~json
      ~human:(fun () -> Treebench.print r)
      [ ("tree", Treebench.to_json r) ];
    if not (Treebench.passes r) then begin
      Printf.eprintf "tree: gate failed\n";
      exit 1
    end
  in
  let depth =
    Arg.(value & opt int 6 & info [ "depth" ] ~doc:"Tree depth.")
  in
  let features =
    Arg.(value & opt int 8 & info [ "features" ] ~doc:"Feature vector size.")
  in
  let z = Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Batch size.") in
  Cmd.v
    (Cmd.info "tree"
       ~doc:"Decision-tree inference: pure control flow elaborated through \
             Eff.branch, every runtime gated bitwise against host evaluation.")
    Term.(const run $ depth $ features $ z $ seed_arg () $ json_arg ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "experiments" ~version:"1.0"
             ~doc:"Reproduction experiments for 'Automatically Batching \
                   Control-Intensive Programs for Modern Accelerators'.")
          [
            figure5_cmd; figure6_cmd; ablations_cmd; scaling_cmd; serve_cmd;
            tenants_cmd; slo_cmd; resilience_cmd; inspect_cmd; dot_cmd;
            fuse_cmd; run_file_cmd; profile_cmd; sample_cmd; smc_cmd;
            temper_cmd; tree_cmd;
          ]))
