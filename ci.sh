#!/bin/sh
# Local CI: everything a commit must pass, in the order it fails fastest.
#
#   ./ci.sh         # build + fast test tier + (if configured) format check
#   ./ci.sh --full  # same, but the complete test suite instead of the fast tier
#
# Mirrors HACKING.md: run before committing; run --full before merging.
set -eu

step() {
  printf '\n== %s ==\n' "$1"
}

tier="@runtest-fast"
for arg in "$@"; do
  case "$arg" in
    --full) tier="@runtest" ;;
    *)
      echo "usage: ./ci.sh [--full]" >&2
      exit 2
      ;;
  esac
done

step "dune build"
dune build

step "tests ($tier)"
dune build "$tier"

# Format check only where a profile exists: the repo ships without an
# .ocamlformat, and an unpinned default would reformat the world.
if [ -f .ocamlformat ]; then
  step "format check"
  dune build @fmt
else
  step "format check skipped (no .ocamlformat)"
fi

printf '\nci.sh: all checks passed\n'
