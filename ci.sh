#!/bin/sh
# Local CI: everything a commit must pass, in the order it fails fastest.
#
#   ./ci.sh         # build + fast test tier + obs/prof smokes + format check
#   ./ci.sh --fast  # same (the default tier, spelled out)
#   ./ci.sh --full  # same, but the complete test suite instead of the fast tier
#
# Mirrors HACKING.md: run before committing; run --full before merging.
set -eu

step() {
  printf '\n== %s ==\n' "$1"
}

tier="@runtest-fast"
for arg in "$@"; do
  case "$arg" in
    --fast) tier="@runtest-fast" ;;
    --full) tier="@runtest" ;;
    *)
      echo "usage: ./ci.sh [--fast|--full]" >&2
      exit 2
      ;;
  esac
done

step "dune build"
dune build

step "tests ($tier)"
dune build "$tier"

# Observability must be free: the obs bench stage re-runs a workload with
# a trace sink attached and exits nonzero if the simulated cost moves by
# more than 1%, outputs change, or the trace fails to re-parse.
step "bench obs smoke"
dune exec bench/main.exe -- obs

# The divergence profiler must also be free AND conservative: the prof
# stage exits nonzero if attaching Obs_prof perturbs outputs or the
# simulated clock, if attribution loses time (>1e-9 relative), or if the
# folded flamegraph export comes back empty.
step "bench prof smoke"
dune exec bench/main.exe -- prof

# Superblock fusion must pay for itself and stay invisible: the fuse
# stage compiles fib and eight_schools NUTS plain and fused, exits
# nonzero unless the fused builds are bitwise identical on every runtime
# (pc/jit/local/sharded), save >=25% of their supersteps, and lower the
# simulated cost. Regenerates BENCH_fuse.json (deterministic).
step "bench fuse gate"
dune exec bench/main.exe -- fuse

# Scheduling policies and lane defragmentation must be invisible in the
# outputs and visible in the utilization: the sched stage exits nonzero
# unless every runtime is bitwise identical to the Earliest baseline
# under every policy and migration plan, and the defragmenting runtime's
# effective utilization clears its bar (>=2x on eight_schools z=64,
# >=1.5x on fib z=32). Regenerates BENCH_sched.json (deterministic).
step "bench sched gate"
dune exec bench/main.exe -- sched

# The multi-tenant stack must keep its SLOs without touching results:
# the tenant stage replays the paired bursty-overload trace (fair arm vs
# FIFO baseline, same injected device kill) plus the closed-form
# preemption and drain-migration scenarios, and exits nonzero unless
# every completion is bitwise identical to running the request alone,
# the program cache runs >=90% hot, the latency-bound histogram p99 is
# >=3x lower than the baseline's, and grow/shrink/preempt/resume/
# checkpoint/restore/migrate all actually fired. The fast tier caps the
# trace at 10k requests via AUTOBATCH_FAST; the full tier runs the 20k
# trace that regenerates the committed BENCH_tenant.json. The serve
# stage also diffs its deterministic sweep against the committed
# BENCH_serve.json.
step "bench tenant gate"
if [ "$tier" = "@runtest-fast" ]; then
  AUTOBATCH_FAST=1 dune exec bench/main.exe -- tenant
else
  dune exec bench/main.exe -- tenant
fi

step "bench serve baseline"
dune exec bench/main.exe -- serve

# Request-scoped tracing must also be free: the obs2 stage replays the
# tenant trace bare and with a span recorder + SLO burn-rate monitor
# attached, and exits nonzero unless the observed run is bitwise
# identical (simulated clock included), every completion has a
# well-formed span tree, preempt/migrate/restore spans are present, the
# Perfetto export re-parses, and the monitor fires on the adversarial
# trace while staying silent on uniform. The fast tier caps the trace at
# 10k requests via AUTOBATCH_FAST; the full tier regenerates the
# committed BENCH_obs2.json.
step "bench obs2 gate"
if [ "$tier" = "@runtest-fast" ]; then
  AUTOBATCH_FAST=1 dune exec bench/main.exe -- obs2
else
  dune exec bench/main.exe -- obs2
fi

# Simulated cost is a contract: the regress stage re-runs the
# fixed-seed probes (fib/NUTS under the pc VM, a 1k-request tenant
# trace) and exits nonzero if simulated cost or superstep counts
# regressed against the committed BENCH_obs2.json baseline.
step "bench regress"
dune exec bench/main.exe -- regress

# The handler-DSL frontend must elaborate to exactly the programs the
# hand-written models used to be: the eff stage exits nonzero unless
# every zoo model's elaborated density is bitwise identical across
# pc/jit/local/shard, the gaussian spec matches its hand-rolled density
# bitwise, eight_schools NUTS matches the single-chain reference, and
# the three DSL workloads clear their gates (SMC vs the Kalman log
# marginal with real S20 lane migrations, tempering vs closed-form
# mixture moments with accepted exchanges, decision tree bitwise vs
# host evaluation). The fast tier shrinks particle counts, rounds, and
# tree depth via AUTOBATCH_FAST; the full tier regenerates the
# committed BENCH_eff.json (deterministic).
step "bench eff gate"
if [ "$tier" = "@runtest-fast" ]; then
  AUTOBATCH_FAST=1 dune exec bench/main.exe -- eff
else
  dune exec bench/main.exe -- eff
fi

# Format check only where a profile exists: the repo ships without an
# .ocamlformat, and an unpinned default would reformat the world.
if [ -f .ocamlformat ]; then
  step "format check"
  dune build @fmt
else
  step "format check skipped (no .ocamlformat)"
fi

printf '\nci.sh: all checks passed\n'
