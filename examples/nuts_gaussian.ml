(* Batched NUTS on a correlated Gaussian — the paper's Figure 6 workload.

   Runs many independent NUTS chains in lockstep with program-counter
   autobatching, checks the posterior moments against the analytic target,
   and reports the batch utilization the two strategies achieve.

     dune exec examples/nuts_gaussian.exe *)

let () =
  let dim = 10 in
  let chains = 64 in
  let n_iter = 60 in
  let n_burn = 20 in
  let model = Gaussian_model.model ~rho:0.7 ~dim () in

  (* One registry serves both the sampler program and its RNG key. *)
  let reg, key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  Format.printf "step size (Algorithm 4): %.4f@." eps;

  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn ~batch:chains () in

  (* Run all chains at once; instrument gradient-lane utilization. *)
  let instrument = Instrument.create () in
  let config = { Pc_vm.default_config with instrument = Some instrument } in
  let outputs = Autobatch.run_pc ~config compiled ~batch in
  let sum_q = List.nth outputs 1 and sum_qsq = List.nth outputs 2 in

  (* Posterior moments pooled across chains and kept iterations. *)
  let kept = float_of_int ((n_iter - n_burn) * chains) in
  let mean_all = Tensor.mul_scalar (Tensor.sum ~axis:0 sum_q) (1. /. kept) in
  let ex2 = Tensor.mul_scalar (Tensor.sum ~axis:0 sum_qsq) (1. /. kept) in
  let var_all = Tensor.sub ex2 (Tensor.square mean_all) in
  Format.printf "posterior mean  (target 0): %a@." Tensor.pp mean_all;
  Format.printf "posterior var   (target 1): %a@." Tensor.pp var_all;

  Format.printf "gradient-lane utilization (pc autobatching): %.3f@."
    (Option.value ~default:1. (Instrument.utilization instrument ~name:"grad"));

  (* Cross-check one chain bitwise against the reference sampler. *)
  let r = Nuts.sample_chain cfg ~model ~key ~member:0 ~q0 ~n_iter in
  let q_vm = Tensor.slice_row (List.hd outputs) 0 in
  Format.printf "chain 0 bitwise-equal to reference sampler: %b@."
    (Tensor.equal r.Nuts.final_q q_vm)
