(* Batched NUTS for Bayesian logistic regression — the paper's Figure 5
   workload, scaled to run quickly on a host CPU.

   Demonstrates the throughput story: the same compiled sampler executed
   under the different strategy/device configurations of the simulated
   accelerator, plus posterior quality against the data-generating
   coefficients.

     dune exec examples/nuts_logreg.exe *)

let () =
  let n_data = 400 and dim = 12 in
  let chains = 32 in
  let n_iter = 40 and n_burn = 15 in
  let data = Logistic_model.synth ~n:n_data ~dim () in
  let model = Logistic_model.model_of_data data in
  let reg, _key = Nuts_dsl.setup ~model () in
  let q0 = Tensor.zeros [| dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn ~batch:chains () in

  (* Posterior inference with the program-counter VM. *)
  let outputs = Autobatch.run_pc compiled ~batch in
  let kept = float_of_int ((n_iter - n_burn) * chains) in
  let post_mean =
    Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 1)) (1. /. kept)
  in
  (* Compare the posterior mean with the coefficients that generated the
     data (they should correlate strongly at this data size). *)
  let beta = data.Logistic_model.beta_true in
  let corr =
    let center t =
      Tensor.sub t (Tensor.mean t)
    in
    let a = center post_mean and b = center beta in
    Tensor.item (Tensor.dot a b)
    /. Stdlib.sqrt
         (Tensor.item (Tensor.dot a a) *. Tensor.item (Tensor.dot b b))
  in
  Format.printf "correlation(posterior mean, true beta) = %.3f@." corr;

  (* Throughput under three strategy/device configurations. *)
  let grads_per_sec name run =
    let engine, instrument = run () in
    let useful = Instrument.prim_useful instrument ~name:"grad" in
    Format.printf "%-18s %s useful gradient evals/sec@." name
      (Table.si (float_of_int useful /. Engine.elapsed engine))
  in
  grads_per_sec "pc + XLA on GPU:" (fun () ->
      let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
      let instrument = Instrument.create () in
      let config =
        { Pc_vm.default_config with engine = Some engine; instrument = Some instrument }
      in
      ignore (Autobatch.run_pc ~config compiled ~batch);
      (engine, instrument));
  grads_per_sec "local eager CPU:" (fun () ->
      let engine = Engine.create ~device:Device.cpu ~mode:Engine.Eager () in
      let instrument = Instrument.create () in
      let config =
        { Local_vm.default_config with engine = Some engine; instrument = Some instrument }
      in
      ignore (Autobatch.run_local ~config compiled ~batch);
      (engine, instrument));
  grads_per_sec "hybrid CPU:" (fun () ->
      let engine = Engine.create ~device:Device.cpu ~mode:Engine.Hybrid () in
      let instrument = Instrument.create () in
      let config =
        { Local_vm.default_config with engine = Some engine; instrument = Some instrument }
      in
      ignore (Autobatch.run_local ~config compiled ~batch);
      (engine, instrument))
