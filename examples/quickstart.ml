(* Quickstart: define a model once with the effect-handler DSL, then
   elaborate it into an IR program and batch it automatically.

   The model below is an ordinary OCaml function that *performs*
   probabilistic effects (Eff.sample / Eff.observe) with symbolic
   values. Running it under a handler stack does not execute it — it
   elaborates it into a Lang program for the Autobatch pipeline:

   - under [Eff.log_density] (the trace handler) the latent site [mu]
     becomes a program parameter and every site is scored: the program
     maps mu -> log p(mu, y);
   - under [Eff.simulate] (the seed handler) [mu] is drawn through the
     counter-based RNG primitives and only the observation is scored:
     the program is a forward simulator.

     dune exec examples/quickstart.exe *)

let y = [| 0.2; 1.1; -0.3; 0.8 |]

let model () =
  let open Lang in
  let mu = Eff.sample "mu" (Dist.Normal (flt 0., flt 3.)) in
  Eff.observe ~shape:[| 4 |] "y" (Dist.Normal (mu, flt 1.)) (vec y);
  [ mu ]

let () =
  (* Trace interpretation: latents become parameters. *)
  let el = Eff.log_density model in
  Format.printf "parameters: %s@."
    (String.concat ", " (List.map fst el.Eff.el_params));

  (* Compile once: validation, lowering to the Figure-2 CFG, then to the
     Figure-4 stack program — exactly as for a hand-written program. *)
  let compiled =
    Autobatch.compile ~registry:el.Eff.el_registry
      ~input_shapes:(Eff.input_shapes el) el.Eff.el_program
  in

  (* A batch of independent values for mu, evaluated in lockstep by the
     program-counter runtime. *)
  let mus = Tensor.of_list [ -1.; 0.; 0.45; 2. ] in
  let out = Autobatch.run_pc compiled ~batch:[ mus ] in
  let lp = List.nth out el.Eff.el_lp_index in
  Format.printf "mu:        %a@." Tensor.pp mus;
  Format.printf "log p:     %a@." Tensor.pp lp;

  (* The same program on the steppable lane pool (Pc_vm.Lanes): load one
     request per lane, step the pool to quiescence, retire the outputs.
     This is the seam the serving stack schedules against. *)
  let lanes =
    Pc_vm.Lanes.create el.Eff.el_registry compiled.Autobatch.stack ~z:4
  in
  Array.iteri
    (fun lane mu ->
      Pc_vm.Lanes.load lanes ~lane ~member:lane
        ~inputs:[ Tensor.scalar mu ])
    (Tensor.data mus);
  while Pc_vm.Lanes.step lanes do
    ()
  done;
  let lane_lp =
    List.map
      (fun lane ->
        Tensor.item
          (List.nth (Pc_vm.Lanes.retire lanes ~lane) el.Eff.el_lp_index))
      (Pc_vm.Lanes.finished_lanes lanes)
  in
  Format.printf "lane pool: %a  (bitwise = batched)@." Tensor.pp
    (Tensor.of_list lane_lp);
  assert (Tensor.equal (Tensor.of_list lane_lp) lp);

  (* Seed interpretation of the *same definition*: mu is drawn from its
     prior through the counter-based RNG, so simulation is bitwise
     deterministic across every runtime. The counter input starts at 0. *)
  let sim = Eff.simulate model in
  let sim_c =
    Autobatch.compile ~registry:sim.Eff.el_registry
      ~input_shapes:(Eff.input_shapes sim) sim.Eff.el_program
  in
  let z = 6 in
  let draws =
    Autobatch.run_pc sim_c ~batch:[ Tensor.zeros [| z |] ]
  in
  Format.printf "simulated mu: %a@." Tensor.pp (List.hd draws);
  Format.printf "log weight:   %a@." Tensor.pp
    (List.nth draws sim.Eff.el_lp_index)
