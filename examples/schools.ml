(* Bayesian inference on the classic eight-schools dataset, with all
   chains autobatched.

   This is the full pipeline a practitioner would run: adapt, sample many
   chains in lockstep under program-counter autobatching, and read out the
   hierarchical estimates — partial pooling shrinks the noisy school
   effects toward the population mean.

     dune exec examples/schools.exe *)

let () =
  let model = Eight_schools.model () in
  let s =
    Batched_sampler.run ~variant:Nuts.Multinomial ~model ~chains:48 ~n_iter:400
      ~n_burn:100 ~collect:`Samples ()
  in
  Format.printf "eight schools, %d chains x %d kept draws (eps %.3f)@."
    s.Batched_sampler.chains
    (s.Batched_sampler.kept_draws / s.Batched_sampler.chains)
    s.Batched_sampler.eps;
  let mean = s.Batched_sampler.mean in
  Format.printf "population mean mu: %+.2f@." (Tensor.data mean).(0);
  Format.printf "between-school sd tau (posterior mean of exp(log_tau) at the mean): %.2f@."
    (Stdlib.exp (Tensor.data mean).(1));
  Format.printf "@.school   observed y   sigma   posterior effect@.";
  let effects =
    (* Average the per-draw school effects over all kept samples. *)
    match s.Batched_sampler.samples with
    | None -> assert false
    | Some rows ->
      let acc = Array.make 8 0. in
      let count = ref 0 in
      Array.iter
        (fun chain ->
          Array.iteri
            (fun it q ->
              if it >= 100 then begin
                incr count;
                let e = Eight_schools.school_effects q in
                for j = 0 to 7 do
                  acc.(j) <- acc.(j) +. (Tensor.data e).(j)
                done
              end)
            chain)
        rows;
      Array.map (fun v -> v /. float_of_int !count) acc
  in
  Array.iteri
    (fun j eff ->
      Format.printf "   %d       %+6.1f      %4.1f        %+6.2f@." (j + 1)
        Eight_schools.y.(j) Eight_schools.sigma.(j) eff)
    effects;
  (match s.Batched_sampler.split_rhat with
  | Some r ->
    let worst = Array.fold_left Float.max 0. r in
    Format.printf "@.worst split R-hat across 10 coordinates: %.3f@." worst
  | None -> ());
  Format.printf
    "@.shrinkage: every posterior effect sits between its observation and \
     the population mean — partial pooling at work.@."
