(* Warmup and mass-matrix adaptation feeding the autobatched sampler.

   Workflow of a production MCMC run, end to end:
   1. adapt a step size and a diagonal inverse mass matrix on the host
      (Warmup: dual averaging + a variance window, Stan-style);
   2. hand both to the autobatched NUTS program and run many chains in
      lockstep on the "accelerator";
   3. check the posterior against the analytic target.

   The target is a badly-scaled correlated Gaussian (standard deviations
   spanning 0.2 to 5), where identity-mass NUTS needs deep trees and the
   adapted metric collapses the cost.

     dune exec examples/warmup_mass.exe *)

let () =
  let scales = [| 0.2; 1.; 5.; 0.5; 2.; 0.3 |] in
  let dim = Array.length scales in
  let model = Gaussian_model.model ~rho:0.4 ~scales ~dim () in
  let q0 = Tensor.zeros [| dim |] in

  (* 1. Warmup on the host. *)
  let w = Warmup.run ~model ~q0 () in
  Format.printf "adapted step size: %.4f@." w.Warmup.eps;
  Format.printf "adapted inverse mass (target marginal variances):@.";
  Array.iteri
    (fun i s ->
      Format.printf "  dim %d: minv %.3f   target %.3f@." i
        (Tensor.data w.Warmup.minv).(i)
        (s *. s))
    scales;

  (* 2. Batched sampling with the adapted metric. *)
  let reg, key = Nuts_dsl.setup ~model () in
  let cfg = Nuts.default_config ~mass_minv:w.Warmup.minv ~eps:w.Warmup.eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let chains = 48 and n_iter = 80 and n_burn = 20 in
  let batch =
    Nuts_dsl.inputs ~minv:w.Warmup.minv ~q0:w.Warmup.q ~eps:w.Warmup.eps ~n_iter
      ~n_burn ~batch:chains ()
  in
  let outputs = Autobatch.run_pc compiled ~batch in

  (* 3. Posterior moments across all chains and kept iterations. *)
  let kept = float_of_int ((n_iter - n_burn) * chains) in
  let mean = Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 1)) (1. /. kept) in
  let ex2 = Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 2)) (1. /. kept) in
  let var = Tensor.sub ex2 (Tensor.square mean) in
  Format.printf "@.posterior vs target:@.";
  Array.iteri
    (fun i s ->
      Format.printf "  dim %d: mean %+.3f (0)   var %.3f (%.3f)@." i
        (Tensor.data mean).(i)
        (Tensor.data var).(i)
        (s *. s))
    scales;

  (* The batched run is still bitwise-reproducible against the host
     sampler, mass matrix and all. *)
  let r = Nuts.sample_chain cfg ~model ~key ~member:0 ~q0:w.Warmup.q ~n_iter in
  Format.printf "@.chain 0 bitwise-equal to reference: %b@."
    (Tensor.equal r.Nuts.final_q (Tensor.slice_row (List.hd outputs) 0))
