type algorithm = Ring | Tree

let algorithm_to_string = function Ring -> "ring" | Tree -> "tree"

let log2_ceil n =
  let rec go acc p = if p >= n then acc else go (acc + 1) (p * 2) in
  go 0 1

let step_time (l : Mesh.link) ~bytes =
  (bytes /. l.Mesh.bytes_per_sec) +. l.Mesh.latency

let all_reduce_time mesh algo ~bytes =
  let n = Mesh.size mesh in
  if n <= 1 then 0.
  else begin
    let l = Mesh.link mesh in
    let nf = float_of_int n in
    match algo with
    | Ring ->
      (* Bandwidth-optimal ring: a reduce-scatter then an all-gather, each
         moving (N-1)/N of the payload in N-1 latency-bearing hops. *)
      (2. *. (nf -. 1.) /. nf *. bytes /. l.Mesh.bytes_per_sec)
      +. (float_of_int (2 * (n - 1)) *. l.Mesh.latency)
    | Tree ->
      (* Reduce up a binary tree then broadcast down: 2·ceil(log2 N) steps
         each carrying the full payload. *)
      float_of_int (2 * log2_ceil n) *. step_time l ~bytes
  end

let all_gather_time mesh algo ~bytes =
  (* [bytes] is the full gathered payload; each device starts with 1/N. *)
  let n = Mesh.size mesh in
  if n <= 1 then 0.
  else begin
    let l = Mesh.link mesh in
    let nf = float_of_int n in
    match algo with
    | Ring ->
      ((nf -. 1.) /. nf *. bytes /. l.Mesh.bytes_per_sec)
      +. (float_of_int (n - 1) *. l.Mesh.latency)
    | Tree ->
      (* Recursive doubling: step k exchanges 2^k/N of the payload. *)
      ((nf -. 1.) /. nf *. bytes /. l.Mesh.bytes_per_sec)
      +. (float_of_int (log2_ceil n) *. l.Mesh.latency)
  end

let p2p_time mesh ~bytes =
  if Mesh.size mesh <= 1 then 0. else step_time (Mesh.link mesh) ~bytes

let broadcast_time mesh algo ~bytes =
  let n = Mesh.size mesh in
  if n <= 1 then 0.
  else begin
    let l = Mesh.link mesh in
    match algo with
    | Ring ->
      (* Pipelined chain: the payload streams once, paying one latency per
         hop down the line. *)
      (bytes /. l.Mesh.bytes_per_sec) +. (float_of_int (n - 1) *. l.Mesh.latency)
    | Tree -> float_of_int (log2_ceil n) *. step_time l ~bytes
  end
