(** Analytic cost model for the collectives a sharded run needs.

    Costs follow the standard alpha-beta (latency-bandwidth) model on a
    {!Mesh}: a step moving [b] bytes over one link costs
    [b / bytes_per_sec + latency]. Every collective is free on a
    single-device mesh.

    Formulas (N devices, payload [bytes], bandwidth [bw], latency [lat]):

    - ring all-reduce:   [2(N-1)/N · bytes/bw + 2(N-1) · lat]
      (reduce-scatter + all-gather, the bandwidth-optimal schedule)
    - tree all-reduce:   [2·ceil(log2 N) · (bytes/bw + lat)]
    - ring all-gather:   [(N-1)/N · bytes/bw + (N-1) · lat]
    - tree all-gather:   [(N-1)/N · bytes/bw + ceil(log2 N) · lat]
      (recursive doubling)
    - ring broadcast:    [bytes/bw + (N-1) · lat] (pipelined chain)
    - tree broadcast:    [ceil(log2 N) · (bytes/bw + lat)]

    Ring wins on bandwidth for large payloads; tree wins on latency for
    the small per-superstep convergence reductions. *)

type algorithm = Ring | Tree

val algorithm_to_string : algorithm -> string

val all_reduce_time : Mesh.t -> algorithm -> bytes:float -> float
(** Every device ends with the reduction of all devices' [bytes]-sized
    contributions. *)

val all_gather_time : Mesh.t -> algorithm -> bytes:float -> float
(** [bytes] is the {e total} gathered payload (each device contributes
    [bytes/N] and ends with all of it). *)

val broadcast_time : Mesh.t -> algorithm -> bytes:float -> float
(** One device's [bytes]-sized payload reaches every other device. *)

val p2p_time : Mesh.t -> bytes:float -> float
(** A single point-to-point transfer over one mesh link:
    [bytes/bw + lat]. This is what a work-steal pays to move one lane's
    state between shards ([Sched_vm]); free on a single-device mesh. *)
