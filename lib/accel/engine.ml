type mode = Eager | Fused | Hybrid

let mode_to_string = function
  | Eager -> "eager"
  | Fused -> "fused"
  | Hybrid -> "hybrid"

module Counters = struct
  type t = {
    kernel_launches : int;
    fused_launches : int;
    host_ops : int;
    host_calls : int;
    blocks : int;
    lane_refills : int;
    lane_retires : int;
    flops : float;
    traffic_bytes : float;
    elapsed_seconds : float;
  }

  let zero =
    {
      kernel_launches = 0;
      fused_launches = 0;
      host_ops = 0;
      host_calls = 0;
      blocks = 0;
      lane_refills = 0;
      lane_retires = 0;
      flops = 0.;
      traffic_bytes = 0.;
      elapsed_seconds = 0.;
    }

  let add a b =
    {
      kernel_launches = a.kernel_launches + b.kernel_launches;
      fused_launches = a.fused_launches + b.fused_launches;
      host_ops = a.host_ops + b.host_ops;
      host_calls = a.host_calls + b.host_calls;
      blocks = a.blocks + b.blocks;
      lane_refills = a.lane_refills + b.lane_refills;
      lane_retires = a.lane_retires + b.lane_retires;
      flops = a.flops +. b.flops;
      traffic_bytes = a.traffic_bytes +. b.traffic_bytes;
      elapsed_seconds = a.elapsed_seconds +. b.elapsed_seconds;
    }

  let pp ppf c =
    Format.fprintf ppf
      "@[<hov 2>kernels %d,@ fused %d,@ host-ops %d,@ host-calls %d,@ blocks %d,@ \
       %.3g flops,@ %.3g bytes,@ %.3gs@]"
      c.kernel_launches c.fused_launches c.host_ops c.host_calls c.blocks c.flops
      c.traffic_bytes c.elapsed_seconds

  let to_json c =
    Obs_json.Obj
      [
        ("kernel_launches", Obs_json.Int c.kernel_launches);
        ("fused_launches", Obs_json.Int c.fused_launches);
        ("host_ops", Obs_json.Int c.host_ops);
        ("host_calls", Obs_json.Int c.host_calls);
        ("blocks", Obs_json.Int c.blocks);
        ("lane_refills", Obs_json.Int c.lane_refills);
        ("lane_retires", Obs_json.Int c.lane_retires);
        ("flops", Obs_json.Float c.flops);
        ("traffic_bytes", Obs_json.Float c.traffic_bytes);
        ("elapsed_seconds", Obs_json.Float c.elapsed_seconds);
      ]
end

type counters = Counters.t

type state = {
  mutable kernel_launches : int;
  mutable fused_launches : int;
  mutable host_ops : int;
  mutable host_calls : int;
  mutable blocks : int;
  mutable lane_refills : int;
  mutable lane_retires : int;
  mutable flops : float;
  mutable traffic_bytes : float;
  mutable time : float;
}

type t = {
  device : Device.t;
  mode : mode;
  st : state;
  tally : (string, int) Hashtbl.t;
  mutable sink : Obs_sink.t option;
}

let create ~device ~mode () =
  {
    device;
    mode;
    sink = None;
    st =
      {
        kernel_launches = 0;
        fused_launches = 0;
        host_ops = 0;
        host_calls = 0;
        blocks = 0;
        lane_refills = 0;
        lane_retires = 0;
        flops = 0.;
        traffic_bytes = 0.;
        time = 0.;
      };
    tally = Hashtbl.create 64;
  }

let device t = t.device
let mode t = t.mode

(* The shared observability/fault seam: tracing reads the [Launched] spans,
   the resilience layer poisons a launch by raising on [Launch]. Off by
   default, and the off path is a single match on [None]. *)
let set_sink t sink = t.sink <- Some sink
let clear_sink t = t.sink <- None

let emit t ev = match t.sink with None -> () | Some sink -> sink ev

let bump_tally t name =
  Hashtbl.replace t.tally name (1 + Option.value ~default:0 (Hashtbl.find_opt t.tally name))

let compute_time t flops = flops /. t.device.Device.flops_per_sec

let fused_compute_time t flops =
  flops /. (t.device.Device.flops_per_sec *. t.device.Device.fused_flops_multiplier)
let traffic_time t bytes = bytes /. t.device.Device.bytes_per_sec

(* The ratio of a host function call to a single host op dispatch: frame
   setup, argument marshalling, result unmarshalling. *)
let host_call_factor = 4.

(* Bookkeeping charges (traffic, refill/retire, host calls) emit a
   [Launched] span so profilers can attribute every simulated second, but
   no [Launch] fault point: they are host-side actions, not poisonable
   kernel launches, and fault-injection schedules must not shift when a
   profiler is watching. *)
let charge_span t ~name ~t0 =
  emit t (Obs_sink.Launched { kind = Obs_sink.Kernel; name; t0; t1 = t.st.time })

let charge_traffic t ~bytes =
  let t0 = t.st.time in
  t.st.traffic_bytes <- t.st.traffic_bytes +. bytes;
  t.st.time <- t.st.time +. traffic_time t bytes;
  charge_span t ~name:"transfer" ~t0

let charge_kernel t ~name ~flops =
  emit t (Obs_sink.Launch { kind = Obs_sink.Kernel; name });
  let t0 = t.st.time in
  bump_tally t name;
  t.st.kernel_launches <- t.st.kernel_launches + 1;
  t.st.host_ops <- t.st.host_ops + 1;
  t.st.flops <- t.st.flops +. flops;
  t.st.time <-
    t.st.time
    +. t.device.Device.kernel_launch_overhead
    +. t.device.Device.host_op_overhead
    +. compute_time t flops;
  emit t (Obs_sink.Launched { kind = Obs_sink.Kernel; name; t0; t1 = t.st.time })

(* Lane recycling in the continuous-batching server: a refill writes the
   incoming request's input rows and a retire reads the finished lane's
   output rows, each dispatched from the host like any other small
   bookkeeping action. *)
let charge_refill t ~bytes =
  let t0 = t.st.time in
  t.st.lane_refills <- t.st.lane_refills + 1;
  t.st.host_ops <- t.st.host_ops + 1;
  t.st.traffic_bytes <- t.st.traffic_bytes +. bytes;
  t.st.time <- t.st.time +. t.device.Device.host_op_overhead +. traffic_time t bytes;
  charge_span t ~name:"lane-refill" ~t0

let charge_retire t ~bytes =
  let t0 = t.st.time in
  t.st.lane_retires <- t.st.lane_retires + 1;
  t.st.host_ops <- t.st.host_ops + 1;
  t.st.traffic_bytes <- t.st.traffic_bytes +. bytes;
  t.st.time <- t.st.time +. t.device.Device.host_op_overhead +. traffic_time t bytes;
  charge_span t ~name:"lane-retire" ~t0

(* A lane migration: one host dispatch moving [bytes] of lane state, plus
   [seconds] of link time the caller priced (Collectives.p2p_time for a
   cross-shard steal, 0. for an on-device defrag move whose copy cost is
   already in the device traffic term). No Counters field: the snapshot
   record is serialized field-by-field by the resilience codec, so
   migration counts live with the scheduler's own result instead. *)
let charge_transfer t ~name ~bytes ~seconds =
  let t0 = t.st.time in
  t.st.host_ops <- t.st.host_ops + 1;
  t.st.traffic_bytes <- t.st.traffic_bytes +. bytes;
  t.st.time <-
    t.st.time +. t.device.Device.host_op_overhead +. traffic_time t bytes
    +. seconds;
  charge_span t ~name ~t0

let charge_host_call t =
  let t0 = t.st.time in
  t.st.host_calls <- t.st.host_calls + 1;
  t.st.time <- t.st.time +. (host_call_factor *. t.device.Device.host_op_overhead);
  charge_span t ~name:"host-call" ~t0

let block_name = "block"

let charge_block t ~ops ~control_ops ~traffic_bytes =
  emit t (Obs_sink.Launch { kind = Obs_sink.Fused_block; name = block_name });
  let t0 = t.st.time in
  let d = t.device in
  t.st.blocks <- t.st.blocks + 1;
  let block_flops = List.fold_left (fun acc (_, f) -> acc +. f) 0. ops in
  t.st.flops <- t.st.flops +. block_flops;
  List.iter (fun (name, _) -> bump_tally t name) ops;
  let n_ops = List.length ops in
  let arithmetic = compute_time t block_flops in
  let traffic = traffic_time t traffic_bytes in
  t.st.traffic_bytes <- t.st.traffic_bytes +. traffic_bytes;
  begin
    match t.mode with
    | Eager ->
      (* Every primitive and every control action is its own kernel, each
         dispatched from the host language. *)
      let launches = n_ops + control_ops in
      t.st.kernel_launches <- t.st.kernel_launches + launches;
      t.st.host_ops <- t.st.host_ops + launches;
      t.st.time <-
        t.st.time
        +. (float_of_int launches
            *. (d.Device.kernel_launch_overhead +. d.Device.host_op_overhead))
        +. arithmetic +. traffic
    | Fused ->
      (* One launch covers arithmetic, control and bookkeeping; fusion
         keeps intermediates on-chip. *)
      t.st.fused_launches <- t.st.fused_launches + 1;
      t.st.time <-
        t.st.time +. d.Device.fused_launch_overhead
        +. fused_compute_time t block_flops +. traffic
    | Hybrid ->
      (* Block arithmetic is fused; control actions are dispatched from the
         host as individual small kernels. *)
      t.st.fused_launches <- t.st.fused_launches + 1;
      t.st.kernel_launches <- t.st.kernel_launches + control_ops;
      t.st.host_ops <- t.st.host_ops + control_ops;
      t.st.time <-
        t.st.time +. d.Device.fused_launch_overhead
        +. (float_of_int control_ops
            *. (d.Device.kernel_launch_overhead +. d.Device.host_op_overhead))
        +. fused_compute_time t block_flops +. traffic
  end;
  emit t
    (Obs_sink.Launched
       { kind = Obs_sink.Fused_block; name = block_name; t0; t1 = t.st.time })

let elapsed t = t.st.time

let reset t =
  t.st.kernel_launches <- 0;
  t.st.fused_launches <- 0;
  t.st.host_ops <- 0;
  t.st.host_calls <- 0;
  t.st.blocks <- 0;
  t.st.lane_refills <- 0;
  t.st.lane_retires <- 0;
  t.st.flops <- 0.;
  t.st.traffic_bytes <- 0.;
  t.st.time <- 0.;
  Hashtbl.reset t.tally

let current t : Counters.t =
  {
    kernel_launches = t.st.kernel_launches;
    fused_launches = t.st.fused_launches;
    host_ops = t.st.host_ops;
    host_calls = t.st.host_calls;
    blocks = t.st.blocks;
    lane_refills = t.st.lane_refills;
    lane_retires = t.st.lane_retires;
    flops = t.st.flops;
    traffic_bytes = t.st.traffic_bytes;
    elapsed_seconds = t.st.time;
  }

type snapshot = { at : Counters.t; ops : (string * int) list }

let snapshot t =
  {
    at = current t;
    (* Name order, so snapshots of equal states are structurally equal. *)
    ops =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tally []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let restore t (s : snapshot) =
  t.st.kernel_launches <- s.at.Counters.kernel_launches;
  t.st.fused_launches <- s.at.Counters.fused_launches;
  t.st.host_ops <- s.at.Counters.host_ops;
  t.st.host_calls <- s.at.Counters.host_calls;
  t.st.blocks <- s.at.Counters.blocks;
  t.st.lane_refills <- s.at.Counters.lane_refills;
  t.st.lane_retires <- s.at.Counters.lane_retires;
  t.st.flops <- s.at.Counters.flops;
  t.st.traffic_bytes <- s.at.Counters.traffic_bytes;
  t.st.time <- s.at.Counters.elapsed_seconds;
  Hashtbl.reset t.tally;
  List.iter (fun (name, n) -> Hashtbl.replace t.tally name n) s.ops

let merge ~into:t (s : snapshot) =
  t.st.kernel_launches <- t.st.kernel_launches + s.at.Counters.kernel_launches;
  t.st.fused_launches <- t.st.fused_launches + s.at.Counters.fused_launches;
  t.st.host_ops <- t.st.host_ops + s.at.Counters.host_ops;
  t.st.host_calls <- t.st.host_calls + s.at.Counters.host_calls;
  t.st.blocks <- t.st.blocks + s.at.Counters.blocks;
  t.st.lane_refills <- t.st.lane_refills + s.at.Counters.lane_refills;
  t.st.lane_retires <- t.st.lane_retires + s.at.Counters.lane_retires;
  t.st.flops <- t.st.flops +. s.at.Counters.flops;
  t.st.traffic_bytes <- t.st.traffic_bytes +. s.at.Counters.traffic_bytes;
  t.st.time <- t.st.time +. s.at.Counters.elapsed_seconds;
  List.iter
    (fun (name, n) ->
      Hashtbl.replace t.tally name
        (n + Option.value ~default:0 (Hashtbl.find_opt t.tally name)))
    s.ops
