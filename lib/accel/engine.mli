(** Execution engine with a simulated clock.

    The autobatching runtimes execute every primitive for real (on the host
    CPU, via the primitive registry) and report what they did to an engine,
    which prices the work under a device model and execution mode. This
    mirrors the paper's three execution configurations:

    - [Eager]: every primitive is a separately dispatched kernel, plus
      host-language (Python-analogue) dispatch per op — TensorFlow Eager.
    - [Fused]: each executed basic block costs one fused launch; control
      flow and masked state updates live inside the fused program — XLA.
    - [Hybrid]: basic blocks are fused, but control decisions (masks,
      program-counter updates, host recursion) are dispatched from the
      host — the paper's "Eager control + XLA blocks" configuration. *)

type mode = Eager | Fused | Hybrid

val mode_to_string : mode -> string

type counters = {
  kernel_launches : int;  (** individually dispatched kernels *)
  fused_launches : int;   (** fused-block launches *)
  host_ops : int;         (** host-language dispatch actions *)
  host_calls : int;       (** host-language function calls (local-VM recursion) *)
  blocks : int;           (** basic blocks executed *)
  lane_refills : int;     (** serving: lanes recycled with a new request *)
  lane_retires : int;     (** serving: finished lanes drained of outputs *)
  flops : float;          (** arithmetic performed *)
  traffic_bytes : float;  (** stack gather/scatter + masked-update traffic *)
  elapsed_seconds : float;  (** simulated seconds accumulated *)
}

val zero_counters : counters

val add_counters : counters -> counters -> counters
(** Fieldwise sum; the identity is {!zero_counters}. *)

type t

val create : device:Device.t -> mode:mode -> unit -> t
val device : t -> Device.t
val mode : t -> mode

val charge_block :
  t -> ops:(string * float) list -> control_ops:int -> traffic_bytes:float -> unit
(** Price one executed basic block: [(name, flops)] per primitive, the
    number of control actions (branch evaluation, mask and program-counter
    updates), and the bookkeeping bytes moved (masked writes, stack
    gathers/scatters). *)

val charge_kernel : t -> name:string -> flops:float -> unit
(** One standalone eagerly dispatched kernel (used by the unbatched
    reference execution), priced as launch + host dispatch + arithmetic. *)

val charge_host_call : t -> unit
(** A host-language function call (the local VM's recursion into Python). *)

val charge_refill : t -> bytes:float -> unit
(** A continuous-batching lane refill: one host dispatch plus writing the
    incoming request's input rows ([bytes]) to the device. *)

val charge_retire : t -> bytes:float -> unit
(** A continuous-batching lane retirement: one host dispatch plus reading
    the finished lane's output rows ([bytes]) back. *)

val charge_traffic : t -> bytes:float -> unit

val elapsed : t -> float
(** Simulated seconds so far. *)

val reset : t -> unit
val counters : t -> counters

val merge : t -> counters -> unit
(** Fold another engine's snapshot into this one's mutable state (counts
    and simulated time both accumulate). This is how per-shard engines are
    combined after a multi-device run without reaching into each other's
    state: snapshot each shard with {!counters}, [merge] into a fresh
    engine. Per-op tallies are not part of a snapshot and do not merge. *)


val op_tally : t -> (string * int) list
(** Per-primitive-name dispatch counts, sorted descending. *)

type snapshot = {
  at : counters;               (** cumulative counters at capture time *)
  ops : (string * int) list;   (** per-op tally, sorted by name *)
}

val snapshot : t -> snapshot
(** The engine's complete mutable state — counters {e and} the per-op
    tally. Unlike {!counters} (a read-out for merging), a snapshot is made
    to be {!restore}d, so a run recovered from a checkpoint reports the
    true cumulative cost from time zero, not just the post-restore cost. *)

val restore : t -> snapshot -> unit
(** Overwrite the engine's state with a snapshot (counts, simulated time,
    tally). Device and mode are not part of the snapshot: restore into an
    engine built with the same [create] arguments. *)

val set_launch_hook : t -> (unit -> unit) -> unit
(** Install a callback observing every launch ({!charge_kernel} and
    {!charge_block}), the fault-injection seam: the resilience layer
    poisons a launch by raising from here. Zero cost when unset (one
    [None] match per launch). *)

val clear_launch_hook : t -> unit

val pp_counters : Format.formatter -> counters -> unit
