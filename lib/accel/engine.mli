(** Execution engine with a simulated clock.

    The autobatching runtimes execute every primitive for real (on the host
    CPU, via the primitive registry) and report what they did to an engine,
    which prices the work under a device model and execution mode. This
    mirrors the paper's three execution configurations:

    - [Eager]: every primitive is a separately dispatched kernel, plus
      host-language (Python-analogue) dispatch per op — TensorFlow Eager.
    - [Fused]: each executed basic block costs one fused launch; control
      flow and masked state updates live inside the fused program — XLA.
    - [Hybrid]: basic blocks are fused, but control decisions (masks,
      program-counter updates, host recursion) are dispatched from the
      host — the paper's "Eager control + XLA blocks" configuration.

    Reading an engine back out goes through exactly one door: {!snapshot},
    which captures the cumulative {!Counters.t} record and the per-op
    tally together. Snapshots merge ({!merge}), restore ({!restore}), and
    serialize (lib/resil); there is no separate counters-only or
    tally-only readout. *)

type mode = Eager | Fused | Hybrid

val mode_to_string : mode -> string

(** Cumulative cost counters. A plain record: shardable, serializable,
    and summable without touching an engine. *)
module Counters : sig
  type t = {
    kernel_launches : int;  (** individually dispatched kernels *)
    fused_launches : int;   (** fused-block launches *)
    host_ops : int;         (** host-language dispatch actions *)
    host_calls : int;       (** host-language function calls (local-VM recursion) *)
    blocks : int;           (** basic blocks executed *)
    lane_refills : int;     (** serving: lanes recycled with a new request *)
    lane_retires : int;     (** serving: finished lanes drained of outputs *)
    flops : float;          (** arithmetic performed *)
    traffic_bytes : float;  (** stack gather/scatter + masked-update traffic *)
    elapsed_seconds : float;  (** simulated seconds accumulated *)
  }

  val zero : t

  val add : t -> t -> t
  (** Fieldwise sum; the identity is {!zero}. *)

  val pp : Format.formatter -> t -> unit

  val to_json : t -> Obs_json.t
end

type counters = Counters.t
(** Compatibility alias: the resilience layer's snapshot codec round-trips
    this record by name. New code should spell [Engine.Counters.t]. *)

type t

val create : device:Device.t -> mode:mode -> unit -> t
val device : t -> Device.t
val mode : t -> mode

val charge_block :
  t -> ops:(string * float) list -> control_ops:int -> traffic_bytes:float -> unit
(** Price one executed basic block: [(name, flops)] per primitive, the
    number of control actions (branch evaluation, mask and program-counter
    updates), and the bookkeeping bytes moved (masked writes, stack
    gathers/scatters). *)

val charge_kernel : t -> name:string -> flops:float -> unit
(** One standalone eagerly dispatched kernel (used by the unbatched
    reference execution), priced as launch + host dispatch + arithmetic. *)

val charge_host_call : t -> unit
(** A host-language function call (the local VM's recursion into Python). *)

val charge_refill : t -> bytes:float -> unit
(** A continuous-batching lane refill: one host dispatch plus writing the
    incoming request's input rows ([bytes]) to the device. *)

val charge_retire : t -> bytes:float -> unit
(** A continuous-batching lane retirement: one host dispatch plus reading
    the finished lane's output rows ([bytes]) back. *)

val charge_transfer : t -> name:string -> bytes:float -> seconds:float -> unit
(** A named lane-state transfer (scheduler migration): one host dispatch,
    [bytes] of device traffic, plus [seconds] of extra link time priced by
    the caller — [Collectives.p2p_time] for a cross-shard work steal, [0.]
    for a same-device defragmentation move. Emits a [Launched] span under
    [name] and adds to [traffic_bytes]; deliberately no dedicated
    {!Counters} field (the resilience codec round-trips that record by
    field), so migration tallies ride with [Sched_vm]'s result. *)

val charge_traffic : t -> bytes:float -> unit
(** The bookkeeping charges above each emit an {!Obs_sink.Launched} span
    (["host-call"], ["lane-refill"], ["lane-retire"], ["transfer"]) so the
    profiler can attribute every simulated second, but no
    {!Obs_sink.Launch} fault point — host-side bookkeeping is not a
    poisonable kernel launch, and fault-injection schedules must not shift
    when a profiler is attached. *)

val elapsed : t -> float
(** Simulated seconds so far. *)

val reset : t -> unit

type snapshot = {
  at : Counters.t;             (** cumulative counters at capture time *)
  ops : (string * int) list;   (** per-op tally, sorted by name *)
}

val snapshot : t -> snapshot
(** The engine's complete readout — counters {e and} the per-op tally.
    Snapshots of equal states are structurally equal, so they compare,
    merge and serialize directly. *)

val restore : t -> snapshot -> unit
(** Overwrite the engine's state with a snapshot (counts, simulated time,
    tally), so a run recovered from a checkpoint reports the true
    cumulative cost from time zero. Device and mode are not part of the
    snapshot: restore into an engine built with the same [create]
    arguments. *)

val merge : into:t -> snapshot -> unit
(** Fold another engine's snapshot into [into]'s mutable state: counts,
    simulated time and per-op tallies all accumulate. This is how
    per-shard engines combine after a multi-device run without reaching
    into each other's state. Same shape as [Instrument.merge ~into]. *)

val set_sink : t -> Obs_sink.t -> unit
(** Install a structured event sink observing every launch. Each
    {!charge_kernel}/{!charge_block} emits [Obs_sink.Launch] {e before}
    any cost is charged — the fault-injection seam: raising from the sink
    poisons the launch — and [Obs_sink.Launched] after, carrying the
    launch's span on the simulated clock for tracing. Zero cost when
    unset (one [None] match per launch). *)

val clear_sink : t -> unit
