type link = { name : string; bytes_per_sec : float; latency : float }

let nvlink = { name = "nvlink"; bytes_per_sec = 300e9; latency = 2e-6 }
let pcie = { name = "pcie"; bytes_per_sec = 32e9; latency = 5e-6 }
let ethernet = { name = "ethernet"; bytes_per_sec = 12.5e9; latency = 30e-6 }

type t = { name : string; devices : Device.t array; link : link }

let create ?name ~device ~(link : link) ~n () =
  if n <= 0 then invalid_arg "Mesh.create: need at least one device";
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "%dx%s/%s" n device.Device.name link.name
  in
  { name; devices = Array.make n device; link }

let gpu_pod ?(link = nvlink) ~n () = create ~device:Device.gpu ~link ~n ()
let cpu_cluster ?(link = ethernet) ~n () = create ~device:Device.cpu ~link ~n ()

let size t = Array.length t.devices
let device t i = t.devices.(i)
let link t = t.link
let name t = t.name

let pp ppf t =
  Format.fprintf ppf
    "@[<hov 2>mesh %s:@ %d devices,@ link %s (%g B/s,@ %gs latency)@]" t.name
    (size t) t.link.name t.link.bytes_per_sec t.link.latency
