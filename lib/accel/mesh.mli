(** A mesh of simulated devices joined by a uniform interconnect.

    The sharded runtime ({!Shard_vm}) splits the batch dimension across
    the mesh, one shard per device, and prices cross-device communication
    with {!Collectives} using the mesh's per-link bandwidth and latency.
    The mesh is homogeneous — every device identical, every link
    identical — which matches the SPMD execution the paper's platforms
    (and their multi-device descendants) expose. *)

type link = {
  name : string;
  bytes_per_sec : float;  (** per-direction link bandwidth *)
  latency : float;        (** per-hop message latency, seconds *)
}

val nvlink : link
(** Intra-node GPU interconnect: 300 GB/s, 2 µs. *)

val pcie : link
(** Host bus: 32 GB/s, 5 µs. *)

val ethernet : link
(** Cross-node 100 GbE: 12.5 GB/s, 30 µs. *)

type t

val create : ?name:string -> device:Device.t -> link:link -> n:int -> unit -> t
(** [n] identical devices; raises [Invalid_argument] when [n <= 0]. *)

val gpu_pod : ?link:link -> n:int -> unit -> t
(** [n] simulated GPUs over NVLink (the default scaling-study mesh). *)

val cpu_cluster : ?link:link -> n:int -> unit -> t
(** [n] simulated CPUs over Ethernet. *)

val size : t -> int
val device : t -> int -> Device.t
val link : t -> link
val name : t -> string
val pp : Format.formatter -> t -> unit
