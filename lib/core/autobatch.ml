type compiled = {
  source : Lang.program;
  registry : Prim.registry;
  cfg : Cfg.program;
  stack : Stack_ir.program;
  shapes : Shape.t Ir_util.Smap.t;
  fuse : Fuse.report option;
}

let compile ?registry ?options ?(optimize = false) ?fuse ?input_shapes
    (source : Lang.program) =
  let registry = match registry with Some r -> r | None -> Prim.standard () in
  Validate.check_exn registry source;
  let cfg = Lower_cfg.lower source in
  (* Fusion implies optimization: the post-fusion Optimize.run is what
     lets fold/CSE/DCE work across the old block boundaries. *)
  let optimize = optimize || Option.is_some fuse in
  let cfg = if optimize then Optimize.run registry cfg else cfg in
  let cfg, staged =
    match fuse with
    | None -> (cfg, None)
    | Some fopts ->
      let cfg, staged = Fuse.apply_cfg ~options:fopts registry cfg in
      (Optimize.run registry cfg, Some staged)
  in
  let shapes =
    match input_shapes with
    | None -> Ir_util.Smap.empty
    | Some inputs -> Shape_infer.infer registry cfg ~inputs
  in
  let stack = Lower_stack.lower ?options ~shapes cfg in
  let stack, fuse_report =
    match staged with
    | None -> (stack, None)
    | Some staged ->
      let stack, report = Fuse.apply_stack staged stack in
      (stack, Some report)
  in
  { source; registry; cfg; stack; shapes; fuse = fuse_report }

let run_local ?config c ~batch = Local_vm.run ?config c.registry c.cfg ~batch
let run_pc ?config c ~batch = Pc_vm.run ?config c.registry c.stack ~batch

let run_sharded ?config ?(runtime = `Pc) c ~batch =
  let program =
    match runtime with `Pc -> `Pc c.stack | `Local -> `Local c.cfg
  in
  Shard_vm.run ?config c.registry program ~batch
let jit c ~batch = Pc_jit.compile c.registry c.stack ~batch

let run_single ?max_steps c ~member ~args =
  Interp.run ?max_steps c.registry c.source ~member ~args

(* Wrap every primitive's single-example implementation so each execution
   is priced as one eagerly dispatched kernel. *)
let charging_registry engine reg =
  let wrapped = Prim.create_registry () in
  List.iter
    (fun name ->
      let p = Prim.find_exn reg name in
      Prim.register wrapped
        {
          p with
          Prim.single =
            (fun ~member args ->
              let elem_shapes = List.map Tensor.shape args in
              Engine.charge_kernel engine ~name ~flops:(p.Prim.flops elem_shapes);
              p.Prim.single ~member args);
        })
    (Prim.names reg);
  wrapped

let run_unbatched ?engine c ~batch =
  let reg =
    match engine with None -> c.registry | Some e -> charging_registry e c.registry
  in
  let z =
    match batch with
    | [] -> invalid_arg "Autobatch.run_unbatched: at least one input required"
    | t :: _ -> (Tensor.shape t).(0)
  in
  let per_member =
    List.init z (fun b ->
        let args = List.map (fun t -> Tensor.slice_row t b) batch in
        Interp.run reg c.source ~member:b ~args)
  in
  match per_member with
  | [] -> []
  | first :: _ ->
    List.mapi (fun i _ -> Tensor.stack_rows (List.map (fun r -> List.nth r i) per_member)) first
