(** Autobatch — batch control-intensive programs automatically.

    This is the library facade tying the pipeline together:

    {v
    Lang program ──Validate──▶ Cfg (Figure 2) ──Lower_stack──▶ Stack_ir (Figure 4)
                                   │                               │
                              Local_vm (Alg. 1)               Pc_vm (Alg. 2)
    v}

    Typical use:
    {[
      let compiled = Autobatch.compile ~input_shapes:[ [||] ] program in
      let out = Autobatch.run_pc compiled ~batch:[ inputs ] in
      ...
    ]}

    See [examples/quickstart.ml] for a complete program. *)

type compiled = {
  source : Lang.program;
  registry : Prim.registry;
  cfg : Cfg.program;
  stack : Stack_ir.program;
  shapes : Shape.t Ir_util.Smap.t;  (** element shapes, when inferable *)
  fuse : Fuse.report option;  (** fusion report, when compiled with [fuse] *)
}

val compile :
  ?registry:Prim.registry ->
  ?options:Lower_stack.options ->
  ?optimize:bool ->
  ?fuse:Fuse.options ->
  ?input_shapes:Shape.t list ->
  Lang.program ->
  compiled
(** Validate and lower a program. [registry] defaults to
    {!Prim.standard}[ ()]. When [input_shapes] (element shapes of the
    entry function's parameters) is given, static shape inference runs and
    the program-counter VM preallocates all storage, as on a static-shape
    accelerator; otherwise storage is allocated on first write.
    [optimize] (default false) runs the {!Optimize} passes — constant
    folding, copy propagation, dead-code elimination — on the CFG before
    stack lowering; results stay bitwise identical.
    [fuse] additionally runs the superblock fusion passes ({!Fuse}) at
    both the CFG and stack levels — fewer supersteps and kernel
    dispatches, still bitwise identical — and implies [optimize] (the
    pipeline re-optimizes across the fused block boundaries).
    Raises [Invalid_argument] with the validation errors on a malformed
    program. *)

val run_local :
  ?config:Local_vm.config -> compiled -> batch:Tensor.t list -> Tensor.t list
(** Local static autobatching (Algorithm 1) over a batch; every input
    carries a leading batch dimension. *)

val run_pc : ?config:Pc_vm.config -> compiled -> batch:Tensor.t list -> Tensor.t list
(** Program-counter autobatching (Algorithm 2) over a batch. *)

val run_sharded :
  ?config:Shard_vm.config ->
  ?runtime:[ `Pc | `Local ] ->
  compiled ->
  batch:Tensor.t list ->
  Shard_vm.result
(** Shard the batch dimension across a device mesh ({!Shard_vm}), one
    OCaml domain per shard; [runtime] picks the per-shard VM (default
    [`Pc]). Outputs are bitwise identical to the unsharded run. *)

val jit : compiled -> batch:int -> Pc_jit.t
(** Precompile the stack program's blocks into closures for a fixed batch
    size ({!Pc_jit}); requires the program to have been compiled with
    [input_shapes]. Run with {!Pc_jit.run}; results are bitwise identical
    to {!run_pc}. *)

val run_single :
  ?max_steps:int -> compiled -> member:int -> args:Tensor.t list -> Tensor.t list
(** The single-example reference interpreter (no batch dimension on
    [args]); [member] selects the RNG stream. *)

val run_unbatched :
  ?engine:Engine.t -> compiled -> batch:Tensor.t list -> Tensor.t list
(** Execute each batch member separately through the reference
    interpreter, charging each primitive as an eagerly dispatched kernel —
    the paper's unbatched-Eager baseline. *)
