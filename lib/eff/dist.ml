type value = Lang.expr

type t =
  | Normal of value * value
  | Half_cauchy of value
  | Log_half_cauchy of value
  | Exponential of value
  | Uniform
  | Bernoulli_logit of value
  | Flat

let half_log_2pi = 0.5 *. Stdlib.log (2. *. Float.pi)
let log_2_over_pi = Stdlib.log (2. /. Float.pi)

let log_prob d x =
  let open Lang in
  let open Lang.Infix in
  match d with
  | Normal (loc, scale) ->
    (flt (-0.5) * prim "square" [ (x - loc) / scale ])
    - prim "log" [ scale ] - flt half_log_2pi
  | Half_cauchy scale ->
    flt log_2_over_pi - prim "log" [ scale ]
    - prim "log1p" [ prim "square" [ x / scale ] ]
  | Log_half_cauchy scale ->
    (* density of tau = exp x under Half_cauchy, plus the Jacobian x. *)
    flt log_2_over_pi - prim "log" [ scale ]
    - prim "log1p" [ prim "square" [ prim "exp" [ x ] / scale ] ]
    + x
  | Exponential rate -> prim "log" [ rate ] - (rate * x)
  | Uniform -> flt 0.
  | Bernoulli_logit logit -> prim "log_sigmoid" [ ~-logit ] + (x * logit)
  | Flat -> flt 0.

let needs_counter = function Flat -> false | _ -> true

let to_string = function
  | Normal _ -> "normal"
  | Half_cauchy _ -> "half_cauchy"
  | Log_half_cauchy _ -> "log_half_cauchy"
  | Exponential _ -> "exponential"
  | Uniform -> "uniform"
  | Bernoulli_logit _ -> "bernoulli_logit"
  | Flat -> "flat"
