(** Symbolic distributions for the effect-handler model DSL ({!Eff}).

    A distribution's parameters are IR expressions ({!Lang.expr}), so a
    model body can use program variables, data constants, or arbitrary
    primitive expressions as locations and scales. [log_prob] produces the
    *per-element* log density as an expression over the standard primitive
    vocabulary; {!Eff} sum-reduces it over vector sites when scoring.

    All densities are normalized (constants included). The hand-written
    reference densities in [lib/models] drop some constants, so elaborated
    and hand log densities agree on *differences* (and therefore on every
    MCMC acceptance decision), not necessarily on absolute values. *)

type value = Lang.expr

type t =
  | Normal of value * value
      (** [Normal (loc, scale)] — elementwise; parameters broadcast
          against the site shape. *)
  | Half_cauchy of value
      (** [Half_cauchy scale] on (0, ∞). *)
  | Log_half_cauchy of value
      (** The site value is [log tau] with [tau ~ Half_cauchy scale]; the
          density includes the exp-transform Jacobian. Sampling in
          unconstrained space, as eight-schools does with [log_tau]. *)
  | Exponential of value  (** [Exponential rate]. *)
  | Uniform  (** Uniform on (0,1); zero log density on its support. *)
  | Bernoulli_logit of value
      (** [Bernoulli_logit logit] over values in {0,1};
          [log_prob v = log_sigmoid (-logit) + v * logit]. *)
  | Flat
      (** Improper flat density (score 0) — for sites whose "density" is
          supplied separately via {!Eff.factor}, and for pure
          control-flow programs with no probabilistic semantics. *)

val log_prob : t -> value -> value
(** Per-element log density at a value expression. *)

val needs_counter : t -> bool
(** Whether drawing from this distribution consumes RNG counter ticks
    (everything except [Flat], which cannot be drawn). *)

val to_string : t -> string
