type value = Lang.expr

type site_kind = Latent | Observed | Factored

type record = {
  r_site : string;
  r_shape : Shape.t;
  r_var : string;
  r_dist : Dist.t option;
  r_kind : site_kind;
  r_scored : bool;
}

type elaborated = {
  el_program : Lang.program;
  el_registry : Prim.registry;
  el_key : Counter_rng.key;
  el_params : (string * Shape.t) list;
  el_trace : record list;
  el_lp_index : int;
  el_cnt_index : int option;
}

let input_shapes el = List.map snd el.el_params

let latent_sites el =
  let latents =
    List.filter_map
      (fun r ->
        if r.r_kind = Latent then Some (r.r_var, r.r_shape) else None)
      el.el_trace
  in
  List.filter (fun (p, _) -> List.mem_assoc p latents) el.el_params
  |> List.map (fun (p, s) -> (p, s))

(* ------------------------------------------------------------------ *)
(* Elaboration context                                                 *)

type ctx = {
  mutable buf : Lang.stmt list;  (* current statement buffer, reversed *)
  mutable saved : Lang.stmt list list;  (* enclosing buffers (branch) *)
  mutable params : (string * Shape.t) list;  (* reversed *)
  mutable trace : record list;  (* reversed *)
  mutable prefix : string list;  (* innermost plate scope first *)
  mutable fresh : int;
  mutable uses_cnt : bool;
  used : (string, unit) Hashtbl.t;  (* program variable names taken *)
  sites : (string, unit) Hashtbl.t;  (* full site names declared *)
  data_prims : (string, Tensor.t) Hashtbl.t;
  registry : Prim.registry;
  mode : [ `Bind | `Draw ];
  score : [ `All | `Observed | `None ];
}

let current : ctx option ref = ref None

let ctx name =
  match !current with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf
         "Eff.%s: no model is being elaborated (call from within a body \
          passed to Eff.run / log_density / simulate)"
         name)

let emit c s = c.buf <- s :: c.buf

let sanitize name =
  let b = Bytes.of_string name in
  for i = 0 to Bytes.length b - 1 do
    let ch = Bytes.get b i in
    if
      not
        ((ch >= 'a' && ch <= 'z')
        || (ch >= 'A' && ch <= 'Z')
        || (ch >= '0' && ch <= '9')
        || ch = '_')
    then Bytes.set b i '_'
  done;
  let s = Bytes.to_string b in
  if s = "" then "site"
  else if s.[0] >= '0' && s.[0] <= '9' then "v" ^ s
  else s

let declare_var c base =
  let base = sanitize base in
  let name =
    if not (Hashtbl.mem c.used base) then base
    else begin
      let i = ref 2 in
      while Hashtbl.mem c.used (Printf.sprintf "%s_%d" base !i) do incr i done;
      Printf.sprintf "%s_%d" base !i
    end
  in
  Hashtbl.replace c.used name ();
  name

let fresh_var c base =
  c.fresh <- c.fresh + 1;
  declare_var c (Printf.sprintf "%s_%d" base c.fresh)

let full_name c site =
  match c.prefix with
  | [] -> site
  | ps -> String.concat "." (List.rev ps) ^ "." ^ site

let cnt_e = Lang.var "__cnt"

let tick c =
  c.uses_cnt <- true;
  let open Lang in
  let open Lang.Infix in
  emit c (assign "__cnt" (cnt_e + flt 1.))

let proto_of_shape shape =
  if Shape.rank shape = 0 then Lang.flt 0.
  else if Shape.rank shape = 1 then Lang.vec (Array.make shape.(0) 0.)
  else
    invalid_arg
      (Printf.sprintf "Eff.sample: site rank must be 0 or 1, got %s"
         (Shape.to_string shape))

let scalar_only site d shape =
  if Shape.rank shape <> 0 then
    invalid_arg
      (Printf.sprintf "Eff.sample %S: cannot draw a vector site from %s" site
         (Dist.to_string d))

(* Emit the RNG draw for [dist] into variable [v]; one counter tick per
   logical draw, consumed *before* the tick, mirroring the DSL sampler
   programs (and the pure-OCaml reference mirrors). *)
let emit_draw c ~site ~shape ~v dist =
  let open Lang in
  let open Lang.Infix in
  let half_pi = Float.pi /. 2. in
  (match dist with
  | Dist.Normal (loc, scale) ->
    let z = fresh_var c (v ^ "_z") in
    emit c (assign z (prim "normal_like" [ proto_of_shape shape; cnt_e ]));
    tick c;
    emit c (assign v (loc + (scale * var z)))
  | Dist.Uniform ->
    scalar_only site dist shape;
    emit c (assign v (prim "uniform" [ cnt_e ]));
    tick c
  | Dist.Exponential rate ->
    scalar_only site dist shape;
    let e = fresh_var c (v ^ "_e") in
    emit c (assign e (prim "exponential" [ cnt_e ]));
    tick c;
    emit c (assign v (var e / rate))
  | Dist.Half_cauchy scale ->
    scalar_only site dist shape;
    let u = fresh_var c (v ^ "_u") in
    emit c (assign u (prim "uniform" [ cnt_e ]));
    tick c;
    emit c (assign v (scale * prim "tan" [ var u * flt half_pi ]))
  | Dist.Log_half_cauchy scale ->
    scalar_only site dist shape;
    let u = fresh_var c (v ^ "_u") in
    emit c (assign u (prim "uniform" [ cnt_e ]));
    tick c;
    emit c (assign v (prim "log" [ scale * prim "tan" [ var u * flt half_pi ] ]))
  | Dist.Bernoulli_logit logit ->
    scalar_only site dist shape;
    let u = fresh_var c (v ^ "_u") in
    emit c (assign u (prim "uniform" [ cnt_e ]));
    tick c;
    emit c
      (assign v
         (prim "select"
            [ prim "lt" [ var u; prim "sigmoid" [ logit ] ]; flt 1.; flt 0. ]))
  | Dist.Flat ->
    invalid_arg
      (Printf.sprintf "Eff.sample %S: cannot draw from a flat density" site))

let emit_score c dist shape v =
  let scalar_site = Int.equal (Shape.rank shape) 0 in
  let open Lang in
  let open Lang.Infix in
  let elem = Dist.log_prob dist v in
  let s = if scalar_site then elem else prim "sum" [ elem ] in
  emit c (assign "__lp" (var "__lp" + s))

(* ------------------------------------------------------------------ *)
(* Effects                                                             *)

type msg = {
  m_site : string;
  m_dist : Dist.t;
  m_shape : Shape.t;
  m_value : value option;
  m_observed : bool;
}

type _ Effect.t +=
  | Sample_eff : msg -> value Effect.t
  | Factor_eff : string * value -> unit Effect.t

let sample ?(shape = Shape.scalar) name dist =
  let c = ctx "sample" in
  Effect.perform
    (Sample_eff
       {
         m_site = full_name c name;
         m_dist = dist;
         m_shape = shape;
         m_value = None;
         m_observed = false;
       })

let sample_vec name ~dim dist = sample ~shape:[| dim |] name dist

let observe ?(shape = Shape.scalar) name dist v =
  let c = ctx "observe" in
  ignore
    (Effect.perform
       (Sample_eff
          {
            m_site = full_name c name;
            m_dist = dist;
            m_shape = shape;
            m_value = Some v;
            m_observed = true;
          }))

let factor name v =
  let c = ctx "factor" in
  Effect.perform (Factor_eff (full_name c name, v))

let param ?(shape = Shape.scalar) name =
  let c = ctx "param" in
  let v = declare_var c name in
  c.params <- (v, shape) :: c.params;
  Lang.var v

let det name e =
  let c = ctx "det" in
  let v = declare_var c name in
  emit c (Lang.assign v e);
  Lang.var v

let plate name n f =
  let c = ctx "plate" in
  List.init n (fun i ->
      c.prefix <- Printf.sprintf "%s.%d" name i :: c.prefix;
      Fun.protect
        ~finally:(fun () -> c.prefix <- List.tl c.prefix)
        (fun () -> f i))

let branch cond then_ else_ =
  let c = ctx "branch" in
  let out = fresh_var c "br" in
  let arm f =
    c.saved <- c.buf :: c.saved;
    c.buf <- [];
    let v = f () in
    emit c (Lang.assign out v);
    let stmts = List.rev c.buf in
    (match c.saved with
    | b :: rest ->
      c.buf <- b;
      c.saved <- rest
    | [] -> assert false);
    stmts
  in
  let ts = arm then_ in
  let es = arm else_ in
  emit c (Lang.if_ cond ts es);
  Lang.var out

let data_matvec name m v =
  let c = ctx "data_matvec" in
  let ms = Tensor.shape m in
  if Shape.rank ms <> 2 then
    invalid_arg "Eff.data_matvec: matrix must have rank 2";
  (match Hashtbl.find_opt c.data_prims name with
  | Some prev ->
    if not (Tensor.equal prev m) then
      invalid_arg
        (Printf.sprintf
           "Eff.data_matvec: prim %S already registered with different data"
           name)
  | None ->
    Hashtbl.replace c.data_prims name m;
    let n = ms.(0) and d = ms.(1) in
    let mt = Tensor.transpose m in
    Prim.register c.registry
      {
        Prim.name;
        arity = 1;
        deterministic = true;
        shape =
          (fun ss ->
            match ss with
            | [ s ] when Shape.equal s [| d |] -> [| n |]
            | [ s ] ->
              raise
                (Prim.Shape_error
                   (Printf.sprintf "%s: argument must have shape [%d], got %s"
                      name d (Shape.to_string s)))
            | ss ->
              raise
                (Prim.Shape_error
                   (Printf.sprintf "%s: expected 1 argument, got %d" name
                      (List.length ss))));
        flops = (fun _ -> 2. *. float_of_int n *. float_of_int d);
        batched =
          (fun ~members:_ args ->
            match args with
            | [ x ] -> Tensor.matmul x mt
            | _ -> invalid_arg (name ^ ": arity"));
        single =
          (fun ~member:_ args ->
            match args with
            | [ x ] -> Tensor.matvec m x
            | _ -> invalid_arg (name ^ ": arity"));
      });
  Lang.prim name [ v ]

(* ------------------------------------------------------------------ *)
(* Middle handlers                                                     *)

let reperform subst observed f =
  Effect.Deep.try_with f ()
    {
      Effect.Deep.effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Sample_eff m when m.m_value = None && List.mem_assoc m.m_site subst
            ->
            Some
              (fun (k : (b, _) Effect.Deep.continuation) ->
                let v =
                  Effect.perform
                    (Sample_eff
                       {
                         m with
                         m_value = Some (List.assoc m.m_site subst);
                         m_observed = m.m_observed || observed;
                       })
                in
                Effect.Deep.continue k v)
          | _ -> None);
    }

let substitute subst f = reperform subst false f
let condition subst f = reperform subst true f

(* ------------------------------------------------------------------ *)
(* Terminal handler                                                    *)

let handle_sample c m =
  if Hashtbl.mem c.sites m.m_site then
    invalid_arg (Printf.sprintf "Eff: duplicate site %S" m.m_site);
  Hashtbl.replace c.sites m.m_site ();
  let v = declare_var c m.m_site in
  let kind = if m.m_observed then Observed else Latent in
  (match m.m_value with
  | Some e -> emit c (Lang.assign v e)
  | None ->
    if m.m_observed then
      invalid_arg
        (Printf.sprintf "Eff.observe %S: observation has no value" m.m_site)
    else (
      match c.mode with
      | `Bind -> c.params <- (v, m.m_shape) :: c.params
      | `Draw -> emit_draw c ~site:m.m_site ~shape:m.m_shape ~v m.m_dist));
  let scored =
    match c.score with
    | `All -> true
    | `Observed -> m.m_observed
    | `None -> false
  in
  if scored then emit_score c m.m_dist m.m_shape (Lang.var v);
  c.trace <-
    {
      r_site = m.m_site;
      r_shape = m.m_shape;
      r_var = v;
      r_dist = Some m.m_dist;
      r_kind = kind;
      r_scored = scored;
    }
    :: c.trace;
  Lang.var v

let handle_factor c site e =
  if Hashtbl.mem c.sites site then
    invalid_arg (Printf.sprintf "Eff: duplicate site %S" site);
  Hashtbl.replace c.sites site ();
  let scored = c.score <> `None in
  let open Lang in
  let open Lang.Infix in
  if scored then emit c (assign "__lp" (var "__lp" + e));
  c.trace <-
    {
      r_site = site;
      r_shape = Shape.scalar;
      r_var = "__lp";
      r_dist = None;
      r_kind = Factored;
      r_scored = scored;
    }
    :: c.trace

let run ?registry ?(seed = 0x5EEDL) ?(fn_name = "model") ~mode ~score body =
  let registry =
    match registry with Some r -> r | None -> Prim.standard ~seed ()
  in
  let c =
    {
      buf = [];
      saved = [];
      params = [];
      trace = [];
      prefix = [];
      fresh = 0;
      uses_cnt = false;
      used = Hashtbl.create 16;
      sites = Hashtbl.create 16;
      data_prims = Hashtbl.create 4;
      registry;
      mode;
      score;
    }
  in
  List.iter (fun r -> Hashtbl.replace c.used r ()) [ "__lp"; "__cnt"; "__cnt0" ];
  let prev = !current in
  current := Some c;
  let rets =
    Fun.protect
      ~finally:(fun () -> current := prev)
      (fun () ->
        Effect.Deep.match_with body ()
          {
            Effect.Deep.retc = (fun r -> r);
            exnc = raise;
            effc =
              (fun (type b) (eff : b Effect.t) ->
                match eff with
                | Sample_eff m ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      Effect.Deep.continue k (handle_sample c m))
                | Factor_eff (site, e) ->
                  Some
                    (fun (k : (b, _) Effect.Deep.continuation) ->
                      Effect.Deep.continue k (handle_factor c site e))
                | _ -> None);
          })
  in
  if c.saved <> [] then invalid_arg "Eff.run: unbalanced branch elaboration";
  let open Lang in
  let prologue =
    assign "__lp" (flt 0.)
    :: (if c.uses_cnt then [ assign "__cnt" (var "__cnt0") ] else [])
  in
  let cnt_rets = if c.uses_cnt then [ cnt_e ] else [] in
  let body_stmts =
    prologue @ List.rev c.buf @ [ return_ (rets @ [ var "__lp" ] @ cnt_rets) ]
  in
  let params =
    List.rev c.params @ (if c.uses_cnt then [ ("__cnt0", Shape.scalar) ] else [])
  in
  let f = func fn_name ~params:(List.map fst params) body_stmts in
  {
    el_program = program ~main:fn_name [ f ];
    el_registry = registry;
    el_key = Counter_rng.key seed;
    el_params = params;
    el_trace = List.rev c.trace;
    el_lp_index = List.length rets;
    el_cnt_index = (if c.uses_cnt then Some (List.length rets + 1) else None);
  }

let log_density ?registry ?seed ?fn_name body =
  run ?registry ?seed ?fn_name ~mode:`Bind ~score:`All body

let simulate ?registry ?seed ?fn_name body =
  run ?registry ?seed ?fn_name ~mode:`Draw ~score:`Observed body
