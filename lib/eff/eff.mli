(** An effect-handler model frontend over the {!Lang} IR.

    A model is an ordinary OCaml function that *performs* probabilistic
    effects — {!sample}, {!observe}, {!factor} — with symbolic
    ({!Lang.expr}) values. Running it under a handler stack does not
    execute the model: it {e elaborates} it into an IR program for the
    {!Autobatch} pipeline, in the style of NumPyro's composable effect
    handlers. The same definition yields different programs under
    different terminal handlers:

    - {!log_density} binds each latent site to a program {e parameter}
      and scores every site — the joint log density as a function of the
      latents;
    - {!simulate} (the [seed] handler) draws each latent site from the
      counter-based RNG primitives and scores only observations — a
      forward simulator whose [lp] output is the observation log weight.

    Middle handlers compose between the model and the terminal handler:
    {!substitute} pins latent sites to given value expressions,
    {!condition} turns latent sites into observations. {!plate} scopes
    site names, {!branch} elaborates data-dependent control flow into IR
    [If] statements, and {!param}/{!det} introduce deterministic inputs
    and intermediates.

    Elaboration is deterministic: the same model under the same handlers
    produces structurally identical programs, and all randomness in
    [Draw]-mode programs flows through {!Counter_rng}, so simulator
    outputs are bitwise identical across every runtime. *)

type value = Lang.expr

type site_kind = Latent | Observed | Factored

type record = {
  r_site : string;  (** full (plate-prefixed) site name *)
  r_shape : Shape.t;  (** element shape of the site value *)
  r_var : string;  (** program variable holding the site value *)
  r_dist : Dist.t option;  (** [None] for {!factor} sites *)
  r_kind : site_kind;
  r_scored : bool;  (** whether this site contributed to [__lp] *)
}
(** One trace entry per site, in program order. *)

type elaborated = {
  el_program : Lang.program;
  el_registry : Prim.registry;
      (** standard registry (+ any {!data_matvec} prims) — pass to
          [Autobatch.compile ~registry]. *)
  el_key : Counter_rng.key;  (** RNG key backing the registry's draws *)
  el_params : (string * Shape.t) list;
      (** entry-function parameters, in order (latent sites and
          {!param} declarations by first encounter; the draw counter
          [__cnt0] last when present). *)
  el_trace : record list;  (** sites in program order *)
  el_lp_index : int;  (** index of [__lp] in the program's outputs *)
  el_cnt_index : int option;
      (** index of the final draw counter in the outputs, when the
          program draws. *)
}

val input_shapes : elaborated -> Shape.t list
(** Element shapes of [el_params], for [Autobatch.compile ~input_shapes]. *)

val latent_sites : elaborated -> (string * Shape.t) list
(** The latent-site subset of [el_params], in parameter order. *)

(** {1 Model-body vocabulary}

    These may only be called from within a model body running under
    {!run}, {!log_density} or {!simulate}; elsewhere they raise
    [Invalid_argument]. *)

val sample : ?shape:Shape.t -> string -> Dist.t -> value
(** Declare a latent site (default shape: scalar). Returns the site's
    value: a parameter ([`Bind] mode), an RNG draw ([`Draw] mode), or
    whatever an enclosing {!substitute} provides. *)

val sample_vec : string -> dim:int -> Dist.t -> value
(** [sample ~shape:[|dim|]]. *)

val observe : ?shape:Shape.t -> string -> Dist.t -> value -> unit
(** Declare an observed site with the given value (typically a data
    constant); scored in both modes. *)

val factor : string -> value -> unit
(** Add an arbitrary scalar term to the log density. *)

val param : ?shape:Shape.t -> string -> value
(** Declare a non-random program input (data, tuned constants, the
    previous state in a kernel program); always becomes a parameter. *)

val det : string -> value -> value
(** Name an intermediate: emits an assignment, returns the variable. *)

val plate : string -> int -> (int -> 'a) -> 'a list
(** [plate name n f] runs [f i] for [i < n] with site names inside
    prefixed by ["name.i."] — an unrolled plate. *)

val branch : value -> (unit -> value) -> (unit -> value) -> value
(** [branch cond then_ else_] elaborates both arms into an IR [If]
    whose branches assign a shared fresh variable; sites declared
    inside an arm are declared unconditionally but executed (drawn /
    scored) only on that arm's path. *)

val data_matvec : string -> Tensor.t -> value -> value
(** [data_matvec name m v] applies the constant matrix [m] ([[n; d]]) to
    a [[d]]-shaped value as a primitive [name] registered in the
    elaborating registry ([[d] -> [n]]; batched execution is one dense
    matmul against the precomputed transpose). Registering the same
    name twice with different data raises [Invalid_argument]. *)

(** {1 Middle handlers} *)

val substitute : (string * value) list -> (unit -> 'a) -> 'a
(** Pin latent sites (by full site name) to value expressions; pinned
    sites stay latent for scoring purposes but are no longer parameters
    or draws. Unmatched names are ignored. *)

val condition : (string * value) list -> (unit -> 'a) -> 'a
(** Like {!substitute}, but the pinned sites become observations. *)

(** {1 Terminal handlers (elaboration)} *)

val run :
  ?registry:Prim.registry ->
  ?seed:int64 ->
  ?fn_name:string ->
  mode:[ `Bind | `Draw ] ->
  score:[ `All | `Observed | `None ] ->
  (unit -> value list) ->
  elaborated
(** Elaborate a model body. The body's returned values come first in
    the program's outputs, followed by [__lp] (the sum of scored sites;
    always present) and, for programs that draw, the final counter.
    [registry] defaults to [Prim.standard ~seed ()]; [seed] (default
    [0x5EEDL]) also keys the RNG draws. *)

val log_density :
  ?registry:Prim.registry -> ?seed:int64 -> ?fn_name:string ->
  (unit -> value list) -> elaborated
(** [run ~mode:`Bind ~score:`All] — the trace interpretation: latents
    become parameters, every site is scored. *)

val simulate :
  ?registry:Prim.registry -> ?seed:int64 -> ?fn_name:string ->
  (unit -> value list) -> elaborated
(** [run ~mode:`Draw ~score:`Observed] — the seed interpretation:
    latents are drawn through the RNG primitives, observations are
    scored ([__lp] is the observation log weight). *)
