type options = {
  thread : bool;
  chains : bool;
  if_convert : bool;
  rotate : bool;
  inline_entries : bool;
  speculate_rng : bool;
  max_arm_ops : int;
  max_latch_ops : int;
  max_entry_ops : int;
  max_growth : float;
  profile : Fuse_profile.t option;
}

let default_options =
  {
    thread = true;
    chains = true;
    if_convert = true;
    rotate = true;
    inline_entries = true;
    speculate_rng = false;
    max_arm_ops = 24;
    max_latch_ops = 16;
    max_entry_ops = 32;
    max_growth = 1.6;
    profile = None;
  }

type report = {
  cfg_blocks_before : int;
  cfg_blocks_after : int;
  cfg_ops_before : int;
  cfg_ops_after : int;
  stack_blocks_before : int;
  stack_blocks_after : int;
  stack_ops_before : int;
  stack_ops_after : int;
  cfg_stats : Fuse_cfg.stats;
  stack_stats : Fuse_stack.stats;
  megablocks : (string * int list array) list;
  kernel_sizes : int array;
  func_ops : (string * int) list;
  block_ops : (string * int array) list;
}

(* CFG-stage result carried to the stack stage so the final report spans
   both levels. *)
type staged = {
  s_options : options;
  s_cfg_blocks_before : int;
  s_cfg_blocks_after : int;
  s_cfg_ops_before : int;
  s_cfg_ops_after : int;
  s_cfg_stats : Fuse_cfg.stats;
  s_megablocks : (string * int list array) list;
  s_func_ops : (string * int) list;
  s_block_ops : (string * int array) list;
}

let count_blocks (p : Cfg.program) =
  List.fold_left
    (fun acc (_, (fn : Cfg.func)) -> acc + Array.length fn.Cfg.blocks)
    0 p.Cfg.funcs

let stack_ops (p : Stack_ir.program) =
  Array.fold_left
    (fun acc (b : Stack_ir.block) -> acc + List.length b.Stack_ir.ops)
    0 p.Stack_ir.blocks

let func_weight_of options =
  match options.profile with
  | Some pr when not (Fuse_profile.is_empty pr) ->
    Some (Fuse_profile.func_weight pr)
  | Some _ | None -> None

let apply_cfg ?(options = default_options) reg (p : Cfg.program) =
  let blocks_before = count_blocks p in
  let ops_before = Optimize.count_ops p in
  let fused, megablocks, cfg_stats =
    Fuse_cfg.run ~thread:options.thread ~chains:options.chains
      ~if_convert:options.if_convert ~rotate:options.rotate
      ~speculate_rng:options.speculate_rng ~max_arm_ops:options.max_arm_ops
      ~max_latch_ops:options.max_latch_ops ~max_growth:options.max_growth
      ?func_weight:(func_weight_of options) reg p
  in
  ( fused,
    {
      s_options = options;
      s_cfg_blocks_before = blocks_before;
      s_cfg_blocks_after = count_blocks fused;
      s_cfg_ops_before = ops_before;
      s_cfg_ops_after = Optimize.count_ops fused;
      s_cfg_stats = cfg_stats;
      s_megablocks = megablocks;
      s_func_ops = Optimize.func_op_counts fused;
      s_block_ops = Optimize.block_op_counts fused;
    } )

let apply_stack (st : staged) (p : Stack_ir.program) =
  let blocks_before = Array.length p.Stack_ir.blocks in
  let ops_before = stack_ops p in
  let fused, stack_stats =
    if st.s_options.inline_entries then
      Fuse_stack.run ~max_entry_ops:st.s_options.max_entry_ops
        ~max_growth:st.s_options.max_growth ?profile:st.s_options.profile p
    else (p, { Fuse_stack.entries_duplicated = 0; blocks_removed = 0; ops_added = 0 })
  in
  ( fused,
    {
      cfg_blocks_before = st.s_cfg_blocks_before;
      cfg_blocks_after = st.s_cfg_blocks_after;
      cfg_ops_before = st.s_cfg_ops_before;
      cfg_ops_after = st.s_cfg_ops_after;
      stack_blocks_before = blocks_before;
      stack_blocks_after = Array.length fused.Stack_ir.blocks;
      stack_ops_before = ops_before;
      stack_ops_after = stack_ops fused;
      cfg_stats = st.s_cfg_stats;
      stack_stats;
      megablocks = st.s_megablocks;
      kernel_sizes =
        Array.map
          (fun (b : Stack_ir.block) -> List.length b.Stack_ir.ops)
          fused.Stack_ir.blocks;
      func_ops = st.s_func_ops;
      block_ops = st.s_block_ops;
    } )

let megablock_count r =
  List.fold_left
    (fun acc (_, groups) ->
      Array.fold_left
        (fun acc g -> if List.length g > 1 then acc + 1 else acc)
        acc groups)
    0 r.megablocks

let blocks_saved r =
  (r.cfg_blocks_before - r.cfg_blocks_after)
  + (r.stack_blocks_before - r.stack_blocks_after)

let to_json (r : report) =
  let open Obs_json in
  let int_list l = List (List.map (fun i -> Int i) l) in
  Obs_report.document ~name:"fuse"
    [
      ( "cfg",
        Obj
          [
            ("blocks_before", Int r.cfg_blocks_before);
            ("blocks_after", Int r.cfg_blocks_after);
            ("ops_before", Int r.cfg_ops_before);
            ("ops_after", Int r.cfg_ops_after);
            ("jumps_threaded", Int r.cfg_stats.Fuse_cfg.jumps_threaded);
            ("chains_fused", Int r.cfg_stats.Fuse_cfg.chains_fused);
            ("branches_converted", Int r.cfg_stats.Fuse_cfg.branches_converted);
            ("latches_rotated", Int r.cfg_stats.Fuse_cfg.latches_rotated);
            ("blocks_removed", Int r.cfg_stats.Fuse_cfg.blocks_removed);
          ] );
      ( "stack",
        Obj
          [
            ("blocks_before", Int r.stack_blocks_before);
            ("blocks_after", Int r.stack_blocks_after);
            ("ops_before", Int r.stack_ops_before);
            ("ops_after", Int r.stack_ops_after);
            ( "entries_duplicated",
              Int r.stack_stats.Fuse_stack.entries_duplicated );
            ("blocks_removed", Int r.stack_stats.Fuse_stack.blocks_removed);
            ("ops_added", Int r.stack_stats.Fuse_stack.ops_added);
          ] );
      ("blocks_saved", Int (blocks_saved r));
      ("megablock_count", Int (megablock_count r));
      ( "megablocks",
        Obj
          (List.map
             (fun (fn, groups) ->
               ( fn,
                 List
                   (Array.to_list groups
                   |> List.filter (fun g -> List.length g > 1)
                   |> List.map int_list) ))
             r.megablocks) );
      ("kernel_sizes", int_list (Array.to_list r.kernel_sizes));
      ( "func_ops",
        Obj (List.map (fun (fn, n) -> (fn, Int n)) r.func_ops) );
      ( "block_ops",
        Obj
          (List.map
             (fun (fn, counts) -> (fn, int_list (Array.to_list counts)))
             r.block_ops) );
    ]

let print (r : report) =
  Printf.printf
    "fuse: cfg %d->%d blocks (%d->%d ops), stack %d->%d blocks (%d->%d ops)\n"
    r.cfg_blocks_before r.cfg_blocks_after r.cfg_ops_before r.cfg_ops_after
    r.stack_blocks_before r.stack_blocks_after r.stack_ops_before
    r.stack_ops_after;
  Printf.printf
    "  threaded %d jumps, fused %d chains, if-converted %d branches, rotated \
     %d latches, duplicated %d call entries\n"
    r.cfg_stats.Fuse_cfg.jumps_threaded r.cfg_stats.Fuse_cfg.chains_fused
    r.cfg_stats.Fuse_cfg.branches_converted
    r.cfg_stats.Fuse_cfg.latches_rotated
    r.stack_stats.Fuse_stack.entries_duplicated;
  List.iter
    (fun (fn, groups) ->
      Array.iteri
        (fun bi g ->
          if List.length g > 1 then
            Printf.printf "  megablock %s#%d <- {%s}\n" fn bi
              (String.concat ", " (List.map string_of_int g)))
        groups)
    r.megablocks
