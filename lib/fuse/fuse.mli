(** Superblock fusion: profile-guided megablocks that cut supersteps.

    The program-counter batching machine schedules ONE basic block per
    superstep, and every superstep costs a kernel dispatch (or, in fused
    mode, a fused-launch overhead) before any math runs. Control-intensive
    programs lowered by {!Lower_cfg} are made of many tiny blocks, so the
    dispatch overhead dominates. This subsystem rewrites the program —
    preserving bitwise per-lane semantics — so fewer, larger "megablocks"
    carry the same work:

    - {!apply_cfg} runs the CFG-level passes ({!Fuse_cfg}): jump
      threading, single-predecessor chain fusion, if-conversion of
      straight-line diamonds/triangles, and loop-latch rotation;
    - {!apply_stack} runs the stack-level pass ({!Fuse_stack}): call-site
      entry duplication, which fuses a call with the callee's first block
      (introducing the {!Stack_ir.Spushbranch} terminator).

    Fusion slots into the compile pipeline as

    {v Lower_cfg -> Optimize.run -> apply_cfg -> Optimize.run
       -> Shape_infer -> Lower_stack -> apply_stack v}

    — the second {!Optimize.run} is what makes megablocks more than
    concatenation: fold/CSE/copy-propagation/DCE now work across the old
    block boundaries. With [options.profile] set (see {!Fuse_profile})
    the duplicating rewrites are steered to the functions the profile
    actually saw — profile-guided fusion. *)

type options = {
  thread : bool;  (** retarget edges through empty jump-only blocks *)
  chains : bool;  (** merge single-predecessor jump chains *)
  if_convert : bool;  (** flatten straight-line diamonds with [select] *)
  rotate : bool;  (** tail-duplicate loop latch headers *)
  inline_entries : bool;  (** duplicate callee entries into call sites *)
  speculate_rng : bool;
      (** allow RNG primitives inside if-converted arms; off by default so
          RNG ops are never reordered relative to each other *)
  max_arm_ops : int;
  max_latch_ops : int;
  max_entry_ops : int;
  max_growth : float;  (** code-size growth factor bounding duplication *)
  profile : Fuse_profile.t option;
}

val default_options : options
(** Everything on, [speculate_rng = false], arms ≤ 24 ops, latches ≤ 16,
    entries ≤ 32, growth ≤ 1.6×, no profile. *)

type report = {
  cfg_blocks_before : int;
  cfg_blocks_after : int;
  cfg_ops_before : int;
  cfg_ops_after : int;
  stack_blocks_before : int;
  stack_blocks_after : int;
  stack_ops_before : int;
  stack_ops_after : int;
  cfg_stats : Fuse_cfg.stats;
  stack_stats : Fuse_stack.stats;
  megablocks : (string * int list array) list;
      (** per function: for each fused block, the source blocks it absorbed *)
  kernel_sizes : int array;  (** ops per block of the final stack program *)
  func_ops : (string * int) list;  (** fused CFG op count per function *)
  block_ops : (string * int array) list;  (** …and per block *)
}

type staged
(** CFG-stage measurements carried to the stack stage. *)

val apply_cfg :
  ?options:options -> Prim.registry -> Cfg.program -> Cfg.program * staged

val apply_stack : staged -> Stack_ir.program -> Stack_ir.program * report

val megablock_count : report -> int
(** Fused blocks that absorbed more than one source block. *)

val blocks_saved : report -> int
(** Static block-count reduction summed over both levels. *)

val to_json : report -> Obs_json.t
(** An {!Obs_report} document named ["fuse"]. *)

val print : report -> unit
