open Ir_util

type stats = {
  jumps_threaded : int;
  chains_fused : int;
  branches_converted : int;
  latches_rotated : int;
  blocks_removed : int;
}

(* Mutable counters while the passes run; frozen into [stats] at the end. *)
type counters = {
  jumps : int ref;
  chains : int ref;
  branches : int ref;
  latches : int ref;
  removed : int ref;
}

(* Working state per function: the block array plus, for each block, the
   original block ids it absorbed (in execution order). *)
type work = {
  mutable blocks : Cfg.block array;
  mutable prov : int list array;
}

let term_succ = function
  | Cfg.Jump j -> [ j ]
  | Cfg.Branch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Cfg.Return -> []

let preds w =
  let n = Array.length w.blocks in
  let p = Array.make n 0 in
  (* The entry has an implicit predecessor (the caller): never merge it
     upward or treat it as an exclusive arm. *)
  if n > 0 then p.(0) <- p.(0) + 1;
  Array.iter
    (fun (b : Cfg.block) ->
      List.iter (fun s -> p.(s) <- p.(s) + 1) (term_succ b.Cfg.term))
    w.blocks;
  p

(* ------------------------------------------------------------------ *)
(* Jump threading                                                      *)
(* ------------------------------------------------------------------ *)

let thread_jumps w (st : counters) =
  let n = Array.length w.blocks in
  let resolve j0 =
    (* Follow empty jump-only blocks; [fuel] breaks empty-jump cycles. *)
    let rec go j fuel =
      if fuel = 0 then j
      else
        match w.blocks.(j) with
        | { Cfg.ops = []; term = Cfg.Jump k } when k <> j -> go k (fuel - 1)
        | _ -> j
    in
    go j0 n
  in
  let changed = ref false in
  Array.iteri
    (fun i (b : Cfg.block) ->
      let retarget j =
        let j' = resolve j in
        if j' <> j then begin
          incr st.jumps;
          changed := true
        end;
        j'
      in
      let term' =
        match b.Cfg.term with
        | Cfg.Jump j -> Cfg.Jump (retarget j)
        | Cfg.Branch { cond; if_true; if_false } ->
          let t = retarget if_true in
          let f = retarget if_false in
          if t = f then begin
            (* Both arms agree: the branch is a jump (the cond read stays
               live through the op list, DCE may drop its producer). *)
            changed := true;
            incr st.jumps;
            Cfg.Jump t
          end
          else Cfg.Branch { cond; if_true = t; if_false = f }
        | Cfg.Return -> Cfg.Return
      in
      if term' <> b.Cfg.term then w.blocks.(i) <- { b with Cfg.term = term' })
    w.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Chain fusion                                                        *)
(* ------------------------------------------------------------------ *)

let merge_chains w (st : counters) =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let p = preds w in
    try
      Array.iteri
        (fun i (b : Cfg.block) ->
          match b.Cfg.term with
          | Cfg.Jump j when j <> i && j <> 0 && p.(j) = 1 ->
            let jb = w.blocks.(j) in
            w.blocks.(i) <-
              { Cfg.ops = b.Cfg.ops @ jb.Cfg.ops; term = jb.Cfg.term };
            w.prov.(i) <- w.prov.(i) @ w.prov.(j);
            (* [j] just lost its only predecessor; leave an inert husk for
               unreachable elimination to sweep. *)
            w.blocks.(j) <- { Cfg.ops = []; term = Cfg.Return };
            incr st.chains;
            changed := true;
            continue_ := true;
            raise Exit
          | _ -> ())
        w.blocks
    with Exit -> ()
  done;
  !changed

(* ------------------------------------------------------------------ *)
(* If-conversion                                                       *)
(* ------------------------------------------------------------------ *)

(* An arm is speculatable when every op is a primitive/const/move the
   masked runtimes already run on every lane: the wrong-path results are
   computed into fresh temporaries and discarded by the select, so values
   are bitwise unchanged. Calls never speculate (they would change every
   lane's superstep trace), and non-deterministic (RNG) primitives only
   do when [speculate_rng] — by default RNG ops keep their exact order
   and count per lane. *)
let speculatable reg ~speculate_rng ~max_arm_ops (ops : Cfg.op list) =
  List.length ops <= max_arm_ops
  && List.for_all
       (fun (op : Cfg.op) ->
         match op with
         | Cfg.Call_op _ -> false
         | Cfg.Const_op _ | Cfg.Mov _ -> true
         | Cfg.Prim_op { prim; _ } -> (
           match Prim.find reg prim with
           | None -> false
           | Some impl -> impl.Prim.deterministic || speculate_rng))
       ops

(* Definite assignment: for each block, the set of variables every path
   from the entry has written before the block starts ([None] =
   unreachable / not yet visited). Meet is intersection over
   predecessors. Used to prove a select's "keep the incoming value" arm
   actually has an incoming value to keep. *)
let definite_assign (fn : Cfg.func) (blocks : Cfg.block array) =
  let n = Array.length blocks in
  let din = Array.make n None in
  if n > 0 then din.(0) <- Some (sset_of_list fn.Cfg.params);
  let defs_of i =
    List.fold_left
      (fun acc op -> Sset.union acc (sset_of_list (Cfg.op_defs op)))
      Sset.empty blocks.(i).Cfg.ops
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      match din.(i) with
      | None -> ()
      | Some s ->
        let out = Sset.union s (defs_of i) in
        List.iter
          (fun j ->
            let updated =
              match din.(j) with
              | None -> Some out
              | Some cur -> Some (Sset.inter cur out)
            in
            let same =
              match (din.(j), updated) with
              | Some a, Some b -> Sset.equal a b
              | None, None -> true
              | _ -> false
            in
            if not same then begin
              din.(j) <- updated;
              changed := true
            end)
          (term_succ blocks.(i).Cfg.term)
    done
  done;
  din

(* Rename every arm definition to a fresh name so the two speculated arms
   (and the incoming values) coexist in one block. Uses are substituted
   BEFORE the dst is renamed: an op reading its own destination must read
   the pre-assignment value. Returns the renamed ops and the final-name
   map for the arm's definitions. *)
let rename_arm fresh (ops : Cfg.op list) =
  let map : (string, string) Hashtbl.t = Hashtbl.create 8 in
  let subst v = Option.value ~default:v (Hashtbl.find_opt map v) in
  let ops' =
    List.map
      (fun (op : Cfg.op) ->
        match op with
        | Cfg.Prim_op { dst; prim; args } ->
          let args = List.map subst args in
          let dst' = fresh dst in
          Hashtbl.replace map dst dst';
          Cfg.Prim_op { dst = dst'; prim; args }
        | Cfg.Const_op { dst; value } ->
          let dst' = fresh dst in
          Hashtbl.replace map dst dst';
          Cfg.Const_op { dst = dst'; value }
        | Cfg.Mov { dst; src } ->
          let src = subst src in
          let dst' = fresh dst in
          Hashtbl.replace map dst dst';
          Cfg.Mov { dst = dst'; src }
        | Cfg.Call_op _ ->
          (* Excluded by [speculatable]. *)
          assert false)
      ops
  in
  (ops', fun v -> Hashtbl.find_opt map v)

(* Definitions of an op list, in order of first definition. *)
let arm_defs (ops : Cfg.op list) =
  let seen = Hashtbl.create 8 in
  List.concat_map
    (fun op ->
      List.filter
        (fun d ->
          if Hashtbl.mem seen d then false
          else begin
            Hashtbl.add seen d ();
            true
          end)
        (Cfg.op_defs op))
    ops

(* One sweep: find the first convertible branch, flatten it, signal via
   [Exit]. The caller loops (analyses must be recomputed after each
   rewrite). *)
let if_convert_pass w (st : counters) reg (fn : Cfg.func) ~speculate_rng
    ~max_arm_ops ~fresh =
  let select_ok = Option.is_some (Prim.find reg "select") in
  if not select_ok then false
  else begin
    let changed = ref false in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let p = preds w in
      let tmp_fn = { fn with Cfg.blocks = w.blocks } in
      let lv = Liveness.analyze tmp_fn in
      let din = definite_assign fn w.blocks in
      try
        Array.iteri
          (fun i (b : Cfg.block) ->
            match b.Cfg.term with
            | Cfg.Branch { cond; if_true = t; if_false = f } when t <> f -> (
              (* Candidate shapes. An "arm" is a single-predecessor
                 straight-line block ending in a jump to the join; [None]
                 means the branch edge goes straight to the join (a
                 triangle). Arms and the join must be distinct from the
                 branch block and the entry. *)
              let arm_of a =
                if a = 0 || a = i || p.(a) <> 1 then None
                else
                  match w.blocks.(a).Cfg.term with
                  | Cfg.Jump j when j <> a && j <> i -> Some j
                  | _ -> None
              in
              let candidate =
                match (arm_of t, arm_of f) with
                | Some jt, Some jf when jt = jf && jt <> t && jt <> f ->
                  Some (Some t, Some f, jt)
                | Some jt, _ when jt = f -> Some (Some t, None, f)
                | _, Some jf when jf = t -> Some (None, Some f, t)
                | _ -> None
              in
              match candidate with
              | None -> ()
              | Some (ta, fa, join) ->
                let arm_ops a =
                  match a with
                  | None -> []
                  | Some x -> w.blocks.(x).Cfg.ops
                in
                let t_ops = arm_ops ta in
                let f_ops = arm_ops fa in
                if
                  speculatable reg ~speculate_rng ~max_arm_ops t_ops
                  && speculatable reg ~speculate_rng ~max_arm_ops f_ops
                then begin
                  match din.(i) with
                  | None -> () (* unreachable branch: leave for cleanup *)
                  | Some din_i ->
                    let def_before =
                      List.fold_left
                        (fun acc op ->
                          Sset.union acc (sset_of_list (Cfg.op_defs op)))
                        din_i b.Cfg.ops
                    in
                    let live_join = Liveness.live_in lv join in
                    let t_defs = arm_defs t_ops in
                    let f_defs = arm_defs f_ops in
                    let merged =
                      t_defs
                      @ List.filter (fun v -> not (List.mem v t_defs)) f_defs
                    in
                    (* Only variables live at the join need a select; a
                       one-arm definition is legal only when the other
                       path has a definite incoming value. *)
                    let selects_for =
                      List.filter (fun v -> Sset.mem v live_join) merged
                    in
                    let legal =
                      List.for_all
                        (fun v ->
                          (List.mem v t_defs && List.mem v f_defs)
                          || Sset.mem v def_before)
                        selects_for
                    in
                    if legal then begin
                      let t_ops', t_final = rename_arm fresh t_ops in
                      let f_ops', f_final = rename_arm fresh f_ops in
                      (* Stage the condition: the selects must read its
                         pre-arm value even if an arm redefines it. *)
                      let cstage = fresh cond in
                      let selects =
                        List.map
                          (fun v ->
                            let tv = Option.value ~default:v (t_final v) in
                            let fv = Option.value ~default:v (f_final v) in
                            Cfg.Prim_op
                              { dst = v; prim = "select"; args = [ cstage; tv; fv ] })
                          selects_for
                      in
                      w.blocks.(i) <-
                        {
                          Cfg.ops =
                            b.Cfg.ops
                            @ [ Cfg.Mov { dst = cstage; src = cond } ]
                            @ t_ops' @ f_ops' @ selects;
                          term = Cfg.Jump join;
                        };
                      let absorb a =
                        match a with
                        | None -> []
                        | Some x ->
                          let pv = w.prov.(x) in
                          w.blocks.(x) <- { Cfg.ops = []; term = Cfg.Return };
                          pv
                      in
                      w.prov.(i) <- w.prov.(i) @ absorb ta @ absorb fa;
                      incr st.branches;
                      changed := true;
                      continue_ := true;
                      raise Exit
                    end
                end)
            | _ -> ())
          w.blocks
      with Exit -> ()
    done;
    !changed
  end

(* ------------------------------------------------------------------ *)
(* Latch rotation (tail duplication)                                   *)
(* ------------------------------------------------------------------ *)

(* A block ending [Jump h] where [h] ends in a branch copies [h]'s ops
   and takes the branch itself: one fewer superstep every time that edge
   runs. Per-lane op sequences are unchanged (the lane runs the same ops,
   just merged into the predecessor's superstep), so this is always
   bitwise-safe — including across calls. Growth is bounded by
   [max_latch_ops] per site and the caller's remaining budget. *)
let rotate_latches w (st : counters) ~max_latch_ops ~budget =
  let p = preds w in
  let changed = ref false in
  Array.iteri
    (fun i (b : Cfg.block) ->
      match b.Cfg.term with
      | Cfg.Jump h when h <> i -> (
        let hb = w.blocks.(h) in
        match hb.Cfg.term with
        | Cfg.Branch _ ->
          let cost = List.length hb.Cfg.ops in
          (* p.(h) = 1 is chain fusion's job (a move, not a copy). *)
          if p.(h) >= 2 && cost <= max_latch_ops && !budget >= cost then begin
            budget := !budget - cost;
            w.blocks.(i) <-
              { Cfg.ops = b.Cfg.ops @ hb.Cfg.ops; term = hb.Cfg.term };
            w.prov.(i) <- w.prov.(i) @ w.prov.(h);
            incr st.latches;
            changed := true
          end
        | _ -> ())
      | _ -> ())
    w.blocks;
  !changed

(* ------------------------------------------------------------------ *)
(* Unreachable elimination                                             *)
(* ------------------------------------------------------------------ *)

let remove_unreachable w (st : counters) =
  let n = Array.length w.blocks in
  if n > 0 then begin
    let reach = Array.make n false in
    let rec go i =
      if not reach.(i) then begin
        reach.(i) <- true;
        List.iter go (term_succ w.blocks.(i).Cfg.term)
      end
    in
    go 0;
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if reach.(i) then begin
        remap.(i) <- !next;
        incr next
      end
    done;
    if !next < n then begin
      st.removed := !(st.removed) + (n - !next);
      let blocks' = Array.make !next w.blocks.(0) in
      let prov' = Array.make !next [] in
      for i = 0 to n - 1 do
        if reach.(i) then begin
          let b = w.blocks.(i) in
          let term =
            match b.Cfg.term with
            | Cfg.Jump j -> Cfg.Jump remap.(j)
            | Cfg.Branch { cond; if_true; if_false } ->
              Cfg.Branch
                { cond; if_true = remap.(if_true); if_false = remap.(if_false) }
            | Cfg.Return -> Cfg.Return
          in
          blocks'.(remap.(i)) <- { b with Cfg.term };
          prov'.(remap.(i)) <- w.prov.(i)
        end
      done;
      w.blocks <- blocks';
      w.prov <- prov'
    end
  end

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let fuse_func reg st ~thread ~chains ~if_convert ~rotate ~speculate_rng
    ~max_arm_ops ~max_latch_ops ~max_growth ~hot (fname, (fn : Cfg.func)) =
  let w =
    {
      blocks = Array.copy fn.Cfg.blocks;
      prov = Array.init (Array.length fn.Cfg.blocks) (fun i -> [ i ]);
    }
  in
  let counter = ref 0 in
  let fresh v =
    incr counter;
    Printf.sprintf "%s$fz%d" v !counter
  in
  let orig_ops = Cfg.n_ops fn in
  (* Duplication budget in ops; small functions still get headroom. *)
  let budget =
    ref
      (max 0
         (int_of_float ((max_growth -. 1.) *. float_of_int (max orig_ops 8))))
  in
  (* Shrinking rewrites run to a fixpoint; each round strictly reduces the
     number of edges or branches, so [n_blocks + 4] rounds always suffice. *)
  let shrink () =
    let rec fix fuel =
      if fuel > 0 then begin
        let c1 = thread && thread_jumps w st in
        let c2 = chains && merge_chains w st in
        let c3 =
          if_convert
          && if_convert_pass w st reg fn ~speculate_rng ~max_arm_ops ~fresh
        in
        if c1 || c2 || c3 then fix (fuel - 1)
      end
    in
    fix (Array.length w.blocks + 4)
  in
  shrink ();
  if rotate && hot then begin
    let (_ : bool) = rotate_latches w st ~max_latch_ops ~budget in
    shrink ()
  end;
  remove_unreachable w st;
  ((fname, { fn with Cfg.blocks = w.blocks }), (fname, w.prov))

let run ?(thread = true) ?(chains = true) ?(if_convert = true) ?(rotate = true)
    ?(speculate_rng = false) ?(max_arm_ops = 24) ?(max_latch_ops = 16)
    ?(max_growth = 1.6) ?func_weight reg (p : Cfg.program) =
  let st =
    {
      jumps = ref 0;
      chains = ref 0;
      branches = ref 0;
      latches = ref 0;
      removed = ref 0;
    }
  in
  let hot fname =
    (* Without a profile every function is fair game; with one, only
       functions the profile saw get the duplicating rewrites. *)
    match func_weight with None -> true | Some wf -> wf fname > 0.
  in
  let fused =
    List.map
      (fun ((fname, _) as entry) ->
        fuse_func reg st ~thread ~chains ~if_convert ~rotate ~speculate_rng
          ~max_arm_ops ~max_latch_ops ~max_growth ~hot:(hot fname) entry)
      p.Cfg.funcs
  in
  let funcs = List.map fst fused in
  let prov = List.map snd fused in
  ( { p with Cfg.funcs },
    prov,
    {
      jumps_threaded = !(st.jumps);
      chains_fused = !(st.chains);
      branches_converted = !(st.branches);
      latches_rotated = !(st.latches);
      blocks_removed = !(st.removed);
    } )
