(** CFG-level superblock fusion (the first half of {!module:Fuse}).

    Rewrites each function's control-flow graph so one scheduled superstep
    of the program-counter machine executes more straight-line work:

    - {b jump threading}: edges through empty jump-only blocks are
      retargeted past them, and branches whose arms agree collapse to
      jumps;
    - {b chain fusion}: a block ending [Jump j] where [j] has no other
      predecessor absorbs [j] — the single-predecessor/single-successor
      chains become one megablock;
    - {b if-conversion}: a branch over two straight-line arms (a diamond,
      or a triangle with one empty arm) that both rejoin is flattened
      into one block — both arms execute speculatively on every lane,
      arm definitions are renamed to fresh temporaries, and the join
      picks per lane with [select]. Legal only when every arm op is a
      call-free primitive, the arms fit [max_arm_ops], and every merged
      variable is either defined in both arms or definitely assigned
      before the branch (so no lane reads storage no lane ever wrote);
      arms containing non-deterministic (RNG) primitives are kept
      unfused unless [speculate_rng] — the default preserves the rule
      that RNG ops are never moved relative to each other;
    - {b latch rotation} (tail duplication): a block ending [Jump h]
      where [h] ends in a branch gets [h]'s ops appended and takes the
      branch itself, saving one superstep per loop iteration; the copies
      are bounded by [max_latch_ops] per site and the function-wide
      [max_growth] factor;
    - {b unreachable elimination}: blocks no path reaches are dropped
      and the graph renumbered (the entry stays block 0).

    Every rewrite preserves each lane's dynamic sequence of effective
    ops and values, so outputs are bitwise identical on every runtime
    (see DESIGN.md §S19 for the legality arguments).

    [func_weight] is the profile hook: functions with zero weight under
    a non-trivial profile skip the duplicating (growing) rewrites. *)

type stats = {
  jumps_threaded : int;
  chains_fused : int;
  branches_converted : int;
  latches_rotated : int;
  blocks_removed : int;
}

val run :
  ?thread:bool ->
  ?chains:bool ->
  ?if_convert:bool ->
  ?rotate:bool ->
  ?speculate_rng:bool ->
  ?max_arm_ops:int ->
  ?max_latch_ops:int ->
  ?max_growth:float ->
  ?func_weight:(string -> float) ->
  Prim.registry ->
  Cfg.program ->
  Cfg.program * (string * int list array) list * stats
(** Returns the fused program, the fusion provenance (per function, for
    every surviving block, the source block ids it absorbed in execution
    order — block [i] maps to [[i]] when untouched), and pass counters. *)
