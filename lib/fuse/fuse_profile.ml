type t = {
  blocks : ((string * int) * float) list;  (* ((fn, local block), weight) *)
  by_func : (string, float) Hashtbl.t;
}

let empty = { blocks = []; by_func = Hashtbl.create 1 }

let is_empty t = t.blocks = [] && Hashtbl.length t.by_func = 0

let add_func tbl fn w =
  Hashtbl.replace tbl fn (w +. Option.value ~default:0. (Hashtbl.find_opt tbl fn))

let of_entries entries =
  (* entries: (fn, block option, weight) *)
  let by_func = Hashtbl.create 16 in
  let blocks = Hashtbl.create 16 in
  List.iter
    (fun (fn, block, w) ->
      if w > 0. then begin
        add_func by_func fn w;
        match block with
        | Some b ->
          let key = (fn, b) in
          Hashtbl.replace blocks key
            (w +. Option.value ~default:0. (Hashtbl.find_opt blocks key))
        | None -> ()
      end)
    entries;
  {
    blocks =
      Hashtbl.fold (fun k w acc -> (k, w) :: acc) blocks []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    by_func;
  }

let of_blocks pairs = of_entries (List.map (fun ((fn, b), w) -> (fn, Some b, w)) pairs)

(* A folded-stacks line is "frame;frame;...;leaf <weight>"; the leaf frame
   is "fn#k" ({!Profile.flame_frames}), or a bare function name. *)
let parse_leaf leaf =
  match String.rindex_opt leaf '#' with
  | Some i -> (
    let fn = String.sub leaf 0 i in
    let rest = String.sub leaf (i + 1) (String.length leaf - i - 1) in
    match int_of_string_opt rest with
    | Some b when fn <> "" -> Some (fn, Some b)
    | Some _ | None -> if leaf = "" then None else Some (leaf, None))
  | None -> if leaf = "" then None else Some (leaf, None)

let of_folded contents =
  let entries = ref [] in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         let line = String.trim line in
         match String.rindex_opt line ' ' with
         | None -> ()
         | Some sp -> (
           let stack = String.sub line 0 sp in
           let value = String.sub line (sp + 1) (String.length line - sp - 1) in
           match float_of_string_opt value with
           | None -> ()
           | Some w ->
             let frames = String.split_on_char ';' stack in
             let leaf = List.nth_opt frames (List.length frames - 1) in
             (match Option.join (Option.map parse_leaf leaf) with
             | Some (fn, block) -> entries := (fn, block, w) :: !entries
             | None -> ())));
  of_entries (List.rev !entries)

let number = function
  | Obs_json.Int i -> Some (float_of_int i)
  | Obs_json.Float f -> Some f
  | _ -> None

let entry_of_obj o =
  match Obs_json.member "fn" o with
  | Some (Obs_json.Str fn) ->
    let block =
      match Obs_json.member "block" o with
      | Some (Obs_json.Int b) -> Some b
      | _ -> None
    in
    let weight =
      match Obs_json.member "weight" o with
      | Some v -> Option.value ~default:1. (number v)
      | None -> 1.
    in
    Ok (fn, block, weight)
  | _ -> Error "profile entry is missing a string \"fn\" field"

let of_json contents =
  match Obs_json.of_string contents with
  | Error e -> Error (Printf.sprintf "profile JSON: %s" e)
  | Ok doc -> (
    let entries =
      match doc with
      | Obs_json.List l -> Ok l
      | Obs_json.Obj _ as o -> (
        match Obs_json.member "blocks" o with
        | Some (Obs_json.List l) -> Ok l
        | Some _ -> Error "profile JSON: \"blocks\" is not a list"
        | None -> Error "profile JSON: expected a list or {\"blocks\": [...]}")
      | _ -> Error "profile JSON: expected a list or {\"blocks\": [...]}"
    in
    match entries with
    | Error e -> Error e
    | Ok l -> (
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | o :: rest -> (
          match entry_of_obj o with
          | Ok e -> collect (e :: acc) rest
          | Error e -> Error e)
      in
      match collect [] l with
      | Ok entries -> Ok (of_entries entries)
      | Error e -> Error e))

let parse contents =
  let rec first_nonblank i =
    if i >= String.length contents then None
    else
      match contents.[i] with
      | ' ' | '\t' | '\n' | '\r' -> first_nonblank (i + 1)
      | c -> Some c
  in
  match first_nonblank 0 with
  | Some ('{' | '[') -> of_json contents
  | Some _ -> Ok (of_folded contents)
  | None -> Ok empty

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse contents
  | exception Sys_error e -> Error e

let func_weight t fn = Option.value ~default:0. (Hashtbl.find_opt t.by_func fn)

let block_weight t ~fn ~block =
  Option.value ~default:0. (List.assoc_opt (fn, block) t.blocks)

let funcs t =
  Hashtbl.fold (fun fn w acc -> (fn, w) :: acc) t.by_func []
  |> List.sort (fun (fa, wa) (fb, wb) ->
         match compare wb wa with 0 -> compare fa fb | c -> c)

let total t = Hashtbl.fold (fun _ w acc -> acc +. w) t.by_func 0.
