(** Execution profiles consumed by the fusion compiler ({!module:Fuse}).

    Profile-guided fusion weighs candidate regions by how hot they ran: a
    profile maps source locations to attributed simulated time (or any
    non-negative weight). Two interchange formats are accepted:

    - {b folded stacks}, the [experiments profile --folded FILE] export
      ({!Obs_prof.folded}): one [frame;frame;...;fn#k <weight>] line per
      stack, where the leaf frame [fn#k] names a function and its
      function-local block index;
    - {b JSON}: either a list of [{"fn": .., "block": .., "weight": ..}]
      objects or an object [{"blocks": [...]}] wrapping the same list
      ([block] may be omitted to weight a whole function).

    Block indices refer to the program the profile was taken on; after a
    re-compile with fusion the block numbering shifts, so fusion decisions
    key on the stable identifier — the function name — via
    {!func_weight}, and per-block weights are kept for reporting. *)

type t

val empty : t
val is_empty : t -> bool

val of_blocks : ((string * int) * float) list -> t
(** Build a profile from explicit [((fn, block), weight)] pairs. *)

val of_folded : string -> t
(** Parse folded-stacks contents. Unparseable lines are skipped; a leaf
    frame without [#k] weights the whole function. *)

val of_json : string -> (t, string) result
val parse : string -> (t, string) result
(** Sniff the contents: JSON when the first non-blank byte is ['{'] or
    ['['], folded stacks otherwise. *)

val load : path:string -> (t, string) result
(** [parse] on a file's contents; [Error] on IO failure. *)

val func_weight : t -> string -> float
(** Total weight attributed to a function (0. when absent). *)

val block_weight : t -> fn:string -> block:int -> float
val funcs : t -> (string * float) list
(** Per-function weights, heaviest first. *)

val total : t -> float
