type stats = {
  entries_duplicated : int;
  blocks_removed : int;
  ops_added : int;
}

let block_ops (b : Stack_ir.block) = List.length b.Stack_ir.ops

(* A callee entry is duplicable when it is straight-line stack code: no
   [Spop] (entry segments never restore caller saves, but stay defensive)
   and a terminator that is itself not a call. *)
let dup_ok (e : Stack_ir.block) ~max_entry_ops =
  block_ops e <= max_entry_ops
  && List.for_all
       (function
         | Stack_ir.Spop _ -> false
         | Stack_ir.Sprim _ | Stack_ir.Sconst _ | Stack_ir.Smov _
         | Stack_ir.Spush _ -> true)
       e.Stack_ir.ops
  &&
  match e.Stack_ir.term with
  | Stack_ir.Spushjump _ | Stack_ir.Spushbranch _ -> false
  | Stack_ir.Sjump _ | Stack_ir.Sbranch _ | Stack_ir.Sreturn -> true

let run ?(max_entry_ops = 32) ?(max_growth = 1.6) ?profile
    (p : Stack_ir.program) =
  let n = Array.length p.Stack_ir.blocks in
  let blocks = Array.copy p.Stack_ir.blocks in
  let total_ops = Array.fold_left (fun a b -> a + block_ops b) 0 blocks in
  let budget =
    ref
      (max 0
         (int_of_float ((max_growth -. 1.) *. float_of_int (max total_ops 8))))
  in
  (* Candidate call sites. Dup sources are read from the original
     program: a source's terminator is never [Spushjump], so no source is
     itself a site and sites rewrite independently. *)
  let weight entry =
    match profile with
    | None -> 0.
    | Some pr -> Fuse_profile.func_weight pr (fst p.Stack_ir.origin.(entry))
  in
  let sites = ref [] in
  Array.iteri
    (fun i (b : Stack_ir.block) ->
      match b.Stack_ir.term with
      | Stack_ir.Spushjump { ret; entry }
        when dup_ok p.Stack_ir.blocks.(entry) ~max_entry_ops ->
        sites := (i, ret, entry) :: !sites
      | _ -> ())
    blocks;
  let sites =
    List.sort
      (fun (ia, _, ea) (ib, _, eb) ->
        match compare (weight eb) (weight ea) with
        | 0 -> compare ia ib
        | c -> c)
      !sites
  in
  let duplicated = ref 0 in
  let ops_added = ref 0 in
  List.iter
    (fun (i, ret, entry) ->
      let e = p.Stack_ir.blocks.(entry) in
      let cost = block_ops e in
      if !budget >= cost then begin
        budget := !budget - cost;
        let term =
          match e.Stack_ir.term with
          | Stack_ir.Sjump j -> Stack_ir.Spushjump { ret; entry = j }
          | Stack_ir.Sbranch { cond; if_true; if_false } ->
            Stack_ir.Spushbranch { ret; cond; if_true; if_false }
          | Stack_ir.Sreturn -> Stack_ir.Sjump ret
          | Stack_ir.Spushjump _ | Stack_ir.Spushbranch _ -> assert false
        in
        blocks.(i) <-
          { Stack_ir.ops = blocks.(i).Stack_ir.ops @ e.Stack_ir.ops; term };
        incr duplicated;
        ops_added := !ops_added + cost
      end)
    sites;
  (* Unreachable elimination. Roots: the program entry (block 0) plus
     every function entry — the serving layer seeds lanes at function
     entries directly, so they stay alive even when every static call
     site duplicated them away. *)
  let reach = Array.make (max n 1) false in
  let rec go i =
    if i < n && not reach.(i) then begin
      reach.(i) <- true;
      match blocks.(i).Stack_ir.term with
      | Stack_ir.Sjump j -> go j
      | Stack_ir.Sbranch { if_true; if_false; _ } ->
        go if_true;
        go if_false
      | Stack_ir.Spushjump { ret; entry } ->
        go ret;
        go entry
      | Stack_ir.Spushbranch { ret; if_true; if_false; _ } ->
        go ret;
        go if_true;
        go if_false
      | Stack_ir.Sreturn -> ()
    end
  in
  if n > 0 then go 0;
  List.iter (fun (_, e) -> go e) p.Stack_ir.func_entries;
  let remap = Array.make (max n 1) (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if reach.(i) then begin
      remap.(i) <- !next;
      incr next
    end
  done;
  let n' = !next in
  (* Block references at or past the old block count (the conventional
     halt pc) keep pointing one past the new end. *)
  let target j = if j < n && remap.(j) >= 0 then remap.(j) else n' in
  let p' =
    if n' = n then { p with Stack_ir.blocks }
    else begin
      let blocks' = Array.make (max n' 1) blocks.(0) in
      let origin' = Array.make (max n' 1) ("", 0) in
      for i = 0 to n - 1 do
        if reach.(i) then begin
          let b = blocks.(i) in
          let term =
            match b.Stack_ir.term with
            | Stack_ir.Sjump j -> Stack_ir.Sjump (target j)
            | Stack_ir.Sbranch { cond; if_true; if_false } ->
              Stack_ir.Sbranch
                {
                  cond;
                  if_true = target if_true;
                  if_false = target if_false;
                }
            | Stack_ir.Spushjump { ret; entry } ->
              Stack_ir.Spushjump { ret = target ret; entry = target entry }
            | Stack_ir.Spushbranch { ret; cond; if_true; if_false } ->
              Stack_ir.Spushbranch
                {
                  ret = target ret;
                  cond;
                  if_true = target if_true;
                  if_false = target if_false;
                }
            | Stack_ir.Sreturn -> Stack_ir.Sreturn
          in
          blocks'.(remap.(i)) <- { b with Stack_ir.term };
          origin'.(remap.(i)) <- p.Stack_ir.origin.(i)
        end
      done;
      {
        p with
        Stack_ir.blocks = Array.sub blocks' 0 n';
        origin = Array.sub origin' 0 n';
        func_entries =
          List.filter_map
            (fun (fname, e) ->
              if e < n && reach.(e) then Some (fname, remap.(e)) else None)
            p.Stack_ir.func_entries;
      }
    end
  in
  ( p',
    {
      entries_duplicated = !duplicated;
      blocks_removed = n - n';
      ops_added = !ops_added;
    } )
