(** Stack-level superblock fusion: call-site entry duplication.

    After {!Lower_stack}, a call costs two supersteps before any callee
    work runs: the call segment ends [Spushjump {ret; entry}] and the
    callee's entry block is a separate superstep. This pass copies the
    callee entry's ops into the call site and replaces the terminator:

    - entry ends [Sjump j]    → site ends [Spushjump {ret; entry = j}];
    - entry ends [Sbranch]    → site ends [Spushbranch] (the fused
      call-and-branch terminator), so the superstep that makes the call
      also executes the callee's first block and takes its branch;
    - entry ends [Sreturn]    → the call collapses to [Sjump ret] — the
      push/pop pair cancels entirely.

    Entries that contain [Spop] or themselves end in a call are left
    alone. Duplication never rewrites a dup source (sources end in
    [Sjump]/[Sbranch]/[Sreturn], sites in [Spushjump]), so sites are
    independent. Per-lane op sequences and values are unchanged — the
    copied ops run under the same lane mask one superstep earlier — so
    outputs stay bitwise identical on every runtime.

    With a profile, sites are processed hottest callee first (by
    {!Fuse_profile.func_weight} of the entry block's origin function) so
    the [max_growth] code-size budget goes to the call sites that run.

    Finally, blocks unreachable from the program entry and every
    function entry (serving seeds lanes there) are removed and the
    program renumbered; [origin] and [func_entries] are rebuilt. *)

type stats = {
  entries_duplicated : int;
  blocks_removed : int;
  ops_added : int;
}

val run :
  ?max_entry_ops:int ->
  ?max_growth:float ->
  ?profile:Fuse_profile.t ->
  Stack_ir.program ->
  Stack_ir.program * stats
