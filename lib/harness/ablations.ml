type table = { header : string list; rows : string list list }

let nuts_setup ~dim ~seed =
  let model = Gaussian_model.model ~dim () in
  let reg, _key = Nuts_dsl.setup ~seed ~model () in
  let q0 = Tensor.zeros [| dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  (model, reg, prog, q0, eps)

let masking_vs_gather ?(dim = 50) ?(batch = 32) ?(n_iter = 3)
    ?(seed = 0x5EEDL) () =
  let model, reg, prog, q0, eps = nuts_setup ~dim ~seed in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch_inputs = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch () in
  let rows =
    List.map
      (fun (name, style) ->
        let engine = Engine.create ~device:Device.cpu ~mode:Engine.Eager () in
        let instrument = Instrument.create () in
        let config =
          {
            Local_vm.default_config with
            style;
            engine = Some engine;
            instrument = Some instrument;
          }
        in
        ignore (Autobatch.run_local ~config compiled ~batch:batch_inputs);
        let c = (Engine.snapshot engine).Engine.at in
        let useful = Instrument.prim_useful instrument ~name:"grad" in
        let issued = Instrument.prim_issued instrument ~name:"grad" in
        [
          name;
          Printf.sprintf "%.4f" (Engine.elapsed engine);
          Table.si c.Engine.Counters.flops;
          Table.si c.Engine.Counters.traffic_bytes;
          string_of_int useful;
          string_of_int issued;
          Printf.sprintf "%.3f" (float_of_int useful /. float_of_int (max 1 issued));
        ])
      [
        ("masking", Local_vm.Masking);
        ("gather-scatter", Local_vm.Gather_scatter);
        ("adaptive-0.5", Local_vm.Adaptive 0.5);
      ]
  in
  {
    header =
      [ "style"; "sim-seconds"; "flops"; "traffic-B"; "useful-grads"; "issued-grads";
        "grad-util" ];
    rows;
  }

let schedulers ?(dim = 50) ?(batch = 32) ?(n_iter = 3) ?(seed = 0x5EEDL) () =
  let model, reg, prog, q0, eps = nuts_setup ~dim ~seed in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let batch_inputs = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch () in
  let rows =
    List.map
      (fun sched ->
        let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
        let instrument = Instrument.create () in
        let config =
          {
            Pc_vm.default_config with
            sched;
            engine = Some engine;
            instrument = Some instrument;
          }
        in
        ignore (Autobatch.run_pc ~config compiled ~batch:batch_inputs);
        [
          Sched_policy.to_string sched;
          Printf.sprintf "%.4f" (Engine.elapsed engine);
          string_of_int (Instrument.blocks_executed instrument);
          Printf.sprintf "%.3f" (Instrument.overall_utilization instrument);
          Printf.sprintf "%.3f"
            (Option.value ~default:1. (Instrument.utilization instrument ~name:"grad"));
        ])
      Sched_policy.all
  in
  {
    header = [ "scheduler"; "sim-seconds"; "blocks"; "overall-util"; "grad-util" ];
    rows;
  }

let stack_optimizations ?(dim = 50) ?(batch = 32) ?(n_iter = 3)
    ?(seed = 0x5EEDL) () =
  let model, reg, prog, q0, eps = nuts_setup ~dim ~seed in
  let input_shapes = Nuts_dsl.input_shapes ~model in
  let batch_inputs = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch () in
  let variants =
    [
      ("all-opts", Lower_stack.default_options, Pc_vm.default_config);
      ( "no-temporaries (O2)",
        { Lower_stack.default_options with detect_temporaries = false },
        Pc_vm.default_config );
      ( "no-save-liveness (O3)",
        { Lower_stack.default_options with save_live_only = false },
        Pc_vm.default_config );
      ( "no-top-cache (O4)",
        Lower_stack.default_options,
        { Pc_vm.default_config with top_cache = false } );
      ( "naive-writes (O5)",
        Lower_stack.default_options,
        { Pc_vm.default_config with naive_stack_writes = true } );
    ]
  in
  let rows =
    List.map
      (fun (name, options, base_config) ->
        let compiled = Autobatch.compile ~registry:reg ~options ~input_shapes prog in
        let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
        let instrument = Instrument.create () in
        let config =
          { base_config with Pc_vm.engine = Some engine; instrument = Some instrument }
        in
        ignore (Autobatch.run_pc ~config compiled ~batch:batch_inputs);
        let temps, masked, stacked = Stack_ir.stats compiled.Autobatch.stack in
        let c = (Engine.snapshot engine).Engine.at in
        [
          name;
          Printf.sprintf "%d/%d/%d" temps masked stacked;
          string_of_int (Instrument.pushes instrument);
          string_of_int (Instrument.max_depth instrument);
          Table.si c.Engine.Counters.traffic_bytes;
          Printf.sprintf "%.4f" (Engine.elapsed engine);
        ])
      variants
  in
  {
    header =
      [ "variant"; "temp/masked/stacked"; "pushes"; "max-depth"; "traffic-B";
        "sim-seconds" ];
    rows;
  }

let print ~title t =
  print_endline title;
  Table.print_stdout ~header:t.header ~rows:t.rows
