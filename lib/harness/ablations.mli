(** Ablation studies for the design choices the paper discusses
    qualitatively (DESIGN.md A1–A3). All run auto-batched NUTS on the
    correlated Gaussian.

    Each function returns a (header, rows) table and is printed by the
    matching [print_*]. *)

type table = { header : string list; rows : string list list }

val masking_vs_gather :
  ?dim:int -> ?batch:int -> ?n_iter:int -> ?seed:int64 -> unit -> table
(** The paper's "first free choice" (§2): execute primitives on all lanes
    and mask, or gather active lanes, compute small, and scatter back.
    Columns: simulated seconds on CPU-eager, arithmetic performed,
    bookkeeping traffic, and gradient-lane waste. *)

val schedulers :
  ?dim:int -> ?batch:int -> ?n_iter:int -> ?seed:int64 -> unit -> table
(** The paper's "second free choice" (§2): which runnable block to execute
    next, under the program-counter VM. *)

val stack_optimizations :
  ?dim:int -> ?batch:int -> ?n_iter:int -> ?seed:int64 -> unit -> table
(** The five compiler optimizations of §3, toggled individually:
    O2 temporaries, O3 save-liveness, O4 top-of-stack cache,
    O5 pop–push cancellation. *)

val print : title:string -> table -> unit
