type summary = {
  mean : Tensor.t;
  variance : Tensor.t;
  chains : int;
  kept_draws : int;
  eps : float;
  minv : Tensor.t;
  grad_utilization : float;
  ess : float array option;
  split_rhat : float array option;
  samples : Tensor.t array array option;
}

let run ?(seed = 0x5EEDL) ?(variant = Nuts.Slice) ?(adapt = true)
    ?(collect = `Moments) ?(devices = 1) ?q0 ~model ~chains ~n_iter ~n_burn () =
  if chains <= 0 || n_iter <= 0 || n_burn < 0 || n_burn >= n_iter then
    invalid_arg "Batched_sampler.run: bad chain/iteration counts";
  if devices <= 0 then invalid_arg "Batched_sampler.run: devices must be positive";
  let dim = model.Model.dim in
  let q0 = match q0 with Some q -> q | None -> Tensor.zeros [| dim |] in
  let eps, minv, q_start =
    if adapt then begin
      let w = Warmup.run ~seed ~variant ~model ~q0 () in
      (w.Warmup.eps, w.Warmup.minv, w.Warmup.q)
    end
    else (Nuts.find_reasonable_eps ~seed ~model ~q0 (), Tensor.ones [| dim |], q0)
  in
  let reg, _key = Nuts_dsl.setup ~seed ~model () in
  let cfg = Nuts.default_config ~variant ~mass_minv:minv ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let instrument = Instrument.create () in
  (* One execution path for both collection modes: single-device through
     the program-counter VM, multi-device through the sharded runtime
     (bitwise-identical results either way — see Shard_vm). *)
  let exec =
    if devices = 1 then begin
      let config = { Pc_vm.default_config with instrument = Some instrument } in
      fun batch -> Autobatch.run_pc ~config compiled ~batch
    end
    else begin
      let config =
        { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:devices () }
      in
      fun batch ->
        let r = Autobatch.run_sharded ~config compiled ~batch in
        Instrument.merge ~into:instrument r.Shard_vm.instrument;
        r.Shard_vm.outputs
    end
  in
  let kept_draws = (n_iter - n_burn) * chains in
  match collect with
  | `Moments ->
    let batch =
      Nuts_dsl.inputs ~minv ~q0:q_start ~eps ~n_iter ~n_burn ~batch:chains ()
    in
    let outputs = exec batch in
    let kf = float_of_int kept_draws in
    let mean = Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 1)) (1. /. kf) in
    let ex2 = Tensor.mul_scalar (Tensor.sum ~axis:0 (List.nth outputs 2)) (1. /. kf) in
    let variance = Tensor.sub ex2 (Tensor.square mean) in
    {
      mean;
      variance;
      chains;
      kept_draws;
      eps;
      minv;
      grad_utilization =
        Option.value ~default:1. (Instrument.utilization instrument ~name:"grad");
      ess = None;
      split_rhat = None;
      samples = None;
    }
  | `Samples ->
    (* One trajectory per program invocation: chains synchronize on
       trajectory boundaries (the local-static limitation), but every
       position is observable. Positions and RNG counters thread through
       explicitly. *)
    let z = chains in
    let q_cur = ref (Tensor.broadcast_rows q_start z) in
    let cnt_cur = ref (Tensor.zeros [| z |]) in
    let samples = Array.make_matrix chains n_iter (Tensor.zeros [| dim |]) in
    for it = 0 to n_iter - 1 do
      let batch =
        [
          !q_cur;
          Tensor.full [| z |] eps;
          Tensor.full [| z |] 1.;
          Tensor.full [| z |] 1.;
          !cnt_cur;
          Tensor.broadcast_rows minv z;
        ]
      in
      let outputs = exec batch in
      q_cur := List.nth outputs 0;
      cnt_cur := List.nth outputs 3;
      for c = 0 to chains - 1 do
        samples.(c).(it) <- Tensor.slice_row !q_cur c
      done
    done;
    let kept = Array.map (fun row -> Array.sub row n_burn (n_iter - n_burn)) samples in
    let all_kept = Array.concat (Array.to_list kept) in
    let mean, variance = Diagnostics.chain_moments all_kept in
    let per_coord f = Array.init dim f in
    let ess =
      per_coord (fun d ->
          Array.fold_left
            (fun acc chain -> acc +. Diagnostics.ess (Diagnostics.column chain d))
            0. kept)
    in
    let split_rhat =
      per_coord (fun d ->
          Diagnostics.split_rhat
            (Array.map (fun chain -> Diagnostics.column chain d) kept))
    in
    {
      mean;
      variance;
      chains;
      kept_draws;
      eps;
      minv;
      grad_utilization =
        Option.value ~default:1. (Instrument.utilization instrument ~name:"grad");
      ess = Some ess;
      split_rhat = Some split_rhat;
      samples = Some samples;
    }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d chains, %d kept draws, eps %.4f, gradient-lane utilization %.3f@,"
    s.chains s.kept_draws s.eps s.grad_utilization;
  let d = Tensor.numel s.mean in
  for i = 0 to d - 1 do
    Format.fprintf ppf "dim %2d: mean %+8.4f  var %8.4f  minv %8.4f" i
      (Tensor.data s.mean).(i)
      (Tensor.data s.variance).(i)
      (Tensor.data s.minv).(i);
    (match s.ess with
    | Some e -> Format.fprintf ppf "  ess %7.1f" e.(i)
    | None -> ());
    (match s.split_rhat with
    | Some r -> Format.fprintf ppf "  rhat %.3f" r.(i)
    | None -> ());
    Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
