(** High-level batched MCMC: the one-call API a downstream user wants.

    [run] adapts (step size + diagonal metric, {!Warmup}), compiles the
    autobatched NUTS program for the model, executes all chains in lockstep
    under the program-counter VM, and summarizes the posterior.

    Two collection modes expose the paper's central trade-off:

    - [`Moments] (default): the whole chain — all trajectories — runs as
      one autobatched program, so gradient evaluations batch across
      trajectory boundaries (maximum utilization, Figure 6's
      program-counter curve). Only running moments come back.
    - [`Samples]: the driver invokes the program one trajectory at a time
      and collects every position, enabling ESS and split R-hat — at the
      cost of synchronizing chains on trajectory boundaries, exactly the
      local-static limitation the paper describes. *)

type summary = {
  mean : Tensor.t;             (** posterior mean, shape [dim] *)
  variance : Tensor.t;         (** posterior variance, shape [dim] *)
  chains : int;
  kept_draws : int;            (** total post-burn draws across chains *)
  eps : float;                 (** step size used *)
  minv : Tensor.t;             (** inverse mass used *)
  grad_utilization : float;    (** useful / issued gradient lanes *)
  ess : float array option;    (** per-coordinate ESS ([`Samples] only) *)
  split_rhat : float array option;  (** per-coordinate ([`Samples] only) *)
  samples : Tensor.t array array option;
      (** [`Samples] only: [samples.(chain).(iter)] *)
}

val run :
  ?seed:int64 ->
  ?variant:Nuts.variant ->
  ?adapt:bool ->
  ?collect:[ `Moments | `Samples ] ->
  ?devices:int ->
  ?q0:Tensor.t ->
  model:Model.t ->
  chains:int ->
  n_iter:int ->
  n_burn:int ->
  unit ->
  summary
(** Defaults: slice variant, adaptation on, [`Moments], one device,
    [q0] zero. [n_iter] counts post-warmup trajectories per chain; the
    first [n_burn] of them are excluded from the summary. With
    [devices > 1] the chain dimension is sharded across that many
    domains-backed simulated devices ({!Shard_vm}); the summary is
    bitwise identical to the single-device run. *)

val pp_summary : Format.formatter -> summary -> unit
