type scale = {
  n_data : int;
  dim : int;
  batch_sizes : int list;
  n_iter : int;
  seed : int64;
}

let default_scale =
  {
    n_data = 500;
    dim = 30;
    batch_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512 ];
    n_iter = 2;
    seed = 0x5EEDL;
  }

let paper_scale =
  {
    n_data = 10_000;
    dim = 100;
    batch_sizes = [ 1; 4; 16; 64; 256; 1024; 4096 ];
    n_iter = 2;
    seed = 0x5EEDL;
  }

type point = {
  strategy : string;
  batch : int;
  policy : string;
  useful_grads : int;
  sim_seconds : float;
  grads_per_sec : float;
}

let strategies =
  [
    "pc-xla-gpu";
    "pc-xla-cpu";
    "local-eager-gpu";
    "local-eager-cpu";
    "hybrid-gpu";
    "hybrid-cpu";
    "eager-unbatched";
    "stan";
  ]

let mk_point ~policy strategy batch useful sim =
  {
    strategy;
    batch;
    policy;
    useful_grads = useful;
    sim_seconds = sim;
    grads_per_sec = (if sim > 0. then float_of_int useful /. sim else Float.nan);
  }

let run ?(scale = default_scale) ?trace ?fuse ?(policy = Sched_policy.Earliest) () =
  let policy_name = Sched_policy.to_string policy in
  let model =
    Logistic_model.model ~seed:scale.seed ~n:scale.n_data ~dim:scale.dim ()
  in
  let reg, _key = Nuts_dsl.setup ~seed:scale.seed ~model () in
  let q0 = Tensor.zeros [| scale.dim |] in
  (* Warm, tuned step size (dual averaging toward 0.8 acceptance), as the
     paper measures a warm run of a tuned sampler. *)
  let eps0 = Nuts.find_reasonable_eps ~model ~q0 () in
  let eps =
    Hmc.warmup_eps ~target_accept:0.8 ~n_warmup:200
      ~stream:(Splitmix.Stream.create scale.seed) ~model ~q0 ~eps0 ~n_leapfrog:4 ()
  in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ?fuse
      ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let inputs z = Nuts_dsl.inputs ~q0 ~eps ~n_iter:scale.n_iter ~n_burn:0 ~batch:z () in
  let points = ref [] in
  let emit p = points := p :: !points in
  (* Tracing is bounded: one track per strategy, at the smallest batch size
     of the sweep (the trace is about VM/engine behavior, not the axis).
     The sink doubles as the engine's, so kernel/fused-launch spans land on
     the same track as the superstep spans. *)
  let traced_z = List.fold_left min max_int scale.batch_sizes in
  let tracing name z engine =
    match trace with
    | Some tr when z = traced_z ->
      let track = Obs_trace.track tr (Printf.sprintf "%s/z%d" name z) in
      let sink = Obs_trace.sink tr ~track ~clock:(fun () -> Engine.elapsed engine) in
      Engine.set_sink engine sink;
      Some sink
    | _ -> None
  in
  (* Batched strategies: one real execution per (strategy, batch size). *)
  let pc_strategy name device z =
    let engine = Engine.create ~device ~mode:Engine.Fused () in
    let instrument = Instrument.create () in
    let config =
      {
        Pc_vm.default_config with
        sched = policy;
        engine = Some engine;
        instrument = Some instrument;
        sink = tracing name z engine;
      }
    in
    ignore (Autobatch.run_pc ~config compiled ~batch:(inputs z));
    emit (mk_point ~policy:policy_name name z (Instrument.prim_useful instrument ~name:"grad") (Engine.elapsed engine))
  in
  let local_strategy name device mode z =
    let engine = Engine.create ~device ~mode () in
    let instrument = Instrument.create () in
    let config =
      {
        Local_vm.default_config with
        sched = policy;
        engine = Some engine;
        instrument = Some instrument;
        sink = tracing name z engine;
      }
    in
    ignore (Autobatch.run_local ~config compiled ~batch:(inputs z));
    emit (mk_point ~policy:policy_name name z (Instrument.prim_useful instrument ~name:"grad") (Engine.elapsed engine))
  in
  List.iter
    (fun z ->
      pc_strategy "pc-xla-gpu" Device.gpu z;
      pc_strategy "pc-xla-cpu" Device.cpu z;
      local_strategy "local-eager-gpu" Device.gpu Engine.Eager z;
      local_strategy "local-eager-cpu" Device.cpu Engine.Eager z;
      local_strategy "hybrid-gpu" Device.gpu Engine.Hybrid z;
      local_strategy "hybrid-cpu" Device.cpu Engine.Hybrid z)
    scale.batch_sizes;
  (* Flat baselines: throughput independent of batch size, measured once
     at batch 1 and replicated across the axis. *)
  let flat name device =
    (* A few members, to average trajectory-length variation; every
       reference gradient is useful (no synchronization waste). *)
    let engine = Engine.create ~device ~mode:Engine.Eager () in
    ignore (tracing name traced_z engine);
    ignore (Autobatch.run_unbatched ~engine compiled ~batch:(inputs 4));
    let tally = (Engine.snapshot engine).Engine.ops in
    let grads = Option.value ~default:0 (List.assoc_opt "grad" tally) in
    let sim = Engine.elapsed engine in
    List.iter (fun z -> emit (mk_point ~policy:policy_name name z grads sim)) scale.batch_sizes
  in
  flat "eager-unbatched" Device.gpu;
  flat "stan" Device.stan_cpu;
  List.rev !points

let rate points ~strategy ~batch =
  List.find_opt (fun p -> p.strategy = strategy && p.batch = batch) points
  |> Option.map (fun p -> p.grads_per_sec)

let to_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "strategy,batch,useful_grads,sim_seconds,grads_per_sec,policy\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%.9g,%.9g,%s\n" p.strategy p.batch
           p.useful_grads p.sim_seconds p.grads_per_sec p.policy))
    points;
  Buffer.contents buf

let to_json points =
  Obs_json.List
    (List.map
       (fun p ->
         Obs_json.Obj
           [
             ("strategy", Obs_json.Str p.strategy);
             ("batch", Obs_json.Int p.batch);
             ("policy", Obs_json.Str p.policy);
             ("useful_grads", Obs_json.Int p.useful_grads);
             ("sim_seconds", Obs_json.Float p.sim_seconds);
             ("grads_per_sec", Obs_json.Float p.grads_per_sec);
           ])
       points)

let print points =
  let batches =
    List.sort_uniq compare (List.map (fun p -> p.batch) points)
  in
  let header = "batch" :: strategies in
  let rows =
    List.map
      (fun z ->
        string_of_int z
        :: List.map
             (fun s ->
               match rate points ~strategy:s ~batch:z with
               | Some r -> Table.si r
               | None -> "-")
             strategies)
      batches
  in
  print_endline
    "Figure 5: NUTS throughput on Bayesian logistic regression (useful gradient \
     evaluations per simulated second)";
  Table.print_stdout ~header ~rows
