(** Figure 5 reproduction: auto-batched NUTS throughput on Bayesian
    logistic regression, gradient evaluations per (simulated) second vs
    batch size.

    Series, as in the paper:
    - [pc-xla-gpu] / [pc-xla-cpu]: program-counter autobatching, whole
      runtime fused (XLA-style);
    - [local-eager-gpu] / [local-eager-cpu]: local static autobatching,
      every kernel dispatched eagerly, recursion through the host;
    - [hybrid-gpu] / [hybrid-cpu]: local static autobatching with fused
      basic blocks but host-dispatched control;
    - [eager-unbatched]: one member at a time through the reference
      interpreter with eager dispatch (flat in batch size);
    - [stan]: the reference sampler priced as hand-optimized native code
      with zero framework overhead (flat in batch size).

    Reported gradients are *useful* ones — waste from synchronization
    (masked-out lanes) is excluded, as in the paper. *)

type scale = {
  n_data : int;
  dim : int;
  batch_sizes : int list;
  n_iter : int;        (** trajectories measured per batch member *)
  seed : int64;
}

val default_scale : scale
(** A laptop-runnable instance: 500 data points, 30 regressors, batch
    sizes 1…512, 2 trajectories. *)

val paper_scale : scale
(** The paper's instance: 10,000 points, 100 regressors, batch sizes
    1…4096. Expensive to execute on a host CPU; use from the CLI. *)

type point = {
  strategy : string;
  batch : int;
  policy : string;  (** scheduling policy the sweep ran under *)
  useful_grads : int;
  sim_seconds : float;
  grads_per_sec : float;
}

val run :
  ?scale:scale ->
  ?trace:Obs_trace.t ->
  ?fuse:Fuse.options ->
  ?policy:Sched_policy.t ->
  unit ->
  point list
(** With [trace], the smallest-batch run of every strategy is recorded on
    its own track — superstep spans from the VM and kernel/fused-launch
    spans from the engine, on the engine's simulated clock. With [fuse],
    the NUTS program is compiled through the superblock fusion passes
    ({!Fuse}) — the [--fuse] A/B knob on the CLI. [policy] (default
    [Earliest]) sets the block scheduling policy of the batched VMs; the
    flat baselines don't schedule but are stamped with it anyway, so
    every point in a sweep names its policy. *)

val print : point list -> unit
(** Batch-size × strategy table of gradients/second on stdout. *)

val strategies : string list
(** Series names in display order. *)

val rate : point list -> strategy:string -> batch:int -> float option
(** Look up one throughput value (used by tests and EXPERIMENTS.md). *)

val to_csv : point list -> string
(** One row per (strategy, batch) point:
    [strategy,batch,useful_grads,sim_seconds,grads_per_sec,policy]. *)

val to_json : point list -> Obs_json.t
(** The same series as a JSON array, for {!Obs_report} documents. *)
