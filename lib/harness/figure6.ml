type point = { batch : int; local_util : float; pc_util : float }

type stats = {
  policy : string;
  points : point list;
  mean_grads_per_trajectory : float;
  max_grads_per_trajectory : float;
  pc_occupancy : (int * float) list;
  pc_mean_occupancy : float;
}

let run ?(dim = 100) ?(rho = 0.7) ?(batch_sizes = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ])
    ?(n_iter = 10) ?(seed = 0x5EEDL) ?fuse ?(policy = Sched_policy.Earliest) () =
  let model = Gaussian_model.model ~rho ~dim () in
  let reg, key = Nuts_dsl.setup ~seed ~model () in
  let q0 = Tensor.zeros [| dim |] in
  (* A warm, tuned sampler as in the paper: dual-averaged step size
     targeting 0.8 acceptance (initialized by Algorithm 4). At this
     operating point NUTS genuinely varies its trajectory lengths, which
     is the whole phenomenon Figure 6 measures. *)
  let eps0 = Nuts.find_reasonable_eps ~model ~q0 () in
  let eps =
    Hmc.warmup_eps ~target_accept:0.8 ~n_warmup:300
      ~stream:(Splitmix.Stream.create seed) ~model ~q0 ~eps0 ~n_leapfrog:4 ()
  in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ?fuse
      ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let inputs z = Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch:z () in
  let util_of instrument =
    Option.value ~default:1. (Instrument.utilization instrument ~name:"grad")
  in
  (* Keep the program-counter instrument of the widest run: its live-lane
     gauge is the occupancy time series the --stats flag reports. The
     gauge is fed from the VM's per-superstep Occupancy events
     (Instrument.observe_occupancy), the same stream Obs_prof consumes,
     so this series and a profiler attached to the same run agree by
     construction. *)
  let widest = ref None in
  let points =
    List.map
      (fun z ->
        let local_ins = Instrument.create () in
        let local_config =
          {
            Local_vm.default_config with
            sched = policy;
            instrument = Some local_ins;
          }
        in
        ignore (Autobatch.run_local ~config:local_config compiled ~batch:(inputs z));
        let pc_ins = Instrument.create () in
        let pc_config =
          { Pc_vm.default_config with sched = policy; instrument = Some pc_ins }
        in
        ignore (Autobatch.run_pc ~config:pc_config compiled ~batch:(inputs z));
        (match !widest with
        | Some (z0, _) when z0 >= z -> ()
        | _ -> widest := Some (z, pc_ins));
        { batch = z; local_util = util_of local_ins; pc_util = util_of pc_ins })
      batch_sizes
  in
  let pc_occupancy, pc_mean_occupancy =
    match !widest with
    | Some (_, ins) ->
      (Instrument.occupancy_series ins, Instrument.mean_occupancy ins)
    | None -> ([], 1.)
  in
  (* Trajectory-length statistics from reference chains. *)
  let n_chains = 32 in
  let grads_per_traj = ref [] in
  for member = 0 to n_chains - 1 do
    let q = ref q0 and cnt = ref 0 in
    for _ = 1 to n_iter do
      let counting, grads = Model.with_grad_counter model in
      let q', cnt', _depth =
        Nuts.trajectory cfg ~model:counting ~key ~member ~q:!q ~counter:!cnt
      in
      q := q';
      cnt := cnt';
      grads_per_traj := float_of_int !grads :: !grads_per_traj
    done
  done;
  let grads = Array.of_list !grads_per_traj in
  {
    policy = Sched_policy.to_string policy;
    points;
    mean_grads_per_trajectory = Diagnostics.mean grads;
    max_grads_per_trajectory = Array.fold_left Float.max 0. grads;
    pc_occupancy;
    pc_mean_occupancy;
  }

let to_csv stats =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "batch,local_util,pc_util,policy\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%.6f,%s\n" p.batch p.local_util p.pc_util
           stats.policy))
    stats.points;
  Buffer.add_string buf
    (Printf.sprintf "# grads/trajectory mean=%.3f max=%.3f\n"
       stats.mean_grads_per_trajectory stats.max_grads_per_trajectory);
  Buffer.contents buf

let to_json stats =
  Obs_json.Obj
    [
      ("policy", Obs_json.Str stats.policy);
      ( "points",
        Obs_json.List
          (List.map
             (fun p ->
               Obs_json.Obj
                 [
                   ("batch", Obs_json.Int p.batch);
                   ("local_util", Obs_json.Float p.local_util);
                   ("pc_util", Obs_json.Float p.pc_util);
                 ])
             stats.points) );
      ("mean_grads_per_trajectory", Obs_json.Float stats.mean_grads_per_trajectory);
      ("max_grads_per_trajectory", Obs_json.Float stats.max_grads_per_trajectory);
      ("pc_mean_occupancy", Obs_json.Float stats.pc_mean_occupancy);
      ( "pc_occupancy",
        Obs_json.List
          (List.map
             (fun (step, occ) ->
               Obs_json.Obj
                 [ ("step", Obs_json.Int step); ("occupancy", Obs_json.Float occ) ])
             stats.pc_occupancy) );
    ]

let print_occupancy stats =
  Printf.printf
    "live-lane occupancy over the widest program-counter run (mean %.3f):\n"
    stats.pc_mean_occupancy;
  let bar occ =
    let w = int_of_float (Float.round (occ *. 40.)) in
    String.make (max 0 (min 40 w)) '#'
  in
  List.iter
    (fun (step, occ) -> Printf.printf "%8d  %.3f  %s\n" step occ (bar occ))
    stats.pc_occupancy

let print stats =
  print_endline
    "Figure 6: batch-gradient utilization on the correlated Gaussian (local \
     static syncs on trajectory boundaries; program-counter syncs on gradients)";
  Table.print_stdout
    ~header:[ "batch"; "local-static"; "program-counter" ]
    ~rows:
      (List.map
         (fun p ->
           [
             string_of_int p.batch;
             Printf.sprintf "%.3f" p.local_util;
             Printf.sprintf "%.3f" p.pc_util;
           ])
         stats.points);
  Printf.printf
    "gradients per trajectory: mean %.1f, max %.1f (max/mean = %.2f)\n"
    stats.mean_grads_per_trajectory stats.max_grads_per_trajectory
    (stats.max_grads_per_trajectory /. stats.mean_grads_per_trajectory)
