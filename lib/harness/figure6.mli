(** Figure 6 reproduction: utilization of batched gradient computation on
    the correlated-Gaussian test problem.

    Both strategies run the *same* auto-batched chain of consecutive NUTS
    trajectories; the difference is structural, exactly as in the paper:

    - under local static autobatching, a chain cannot start its next
      trajectory until every chain in the batch finishes the current one
      (the batch's control structure follows the user program), so the
      whole batch synchronizes on trajectory boundaries;
    - program-counter autobatching recomputes the active set from program
      counters each step, so chains at different trajectory indices and
      tree depths batch their gradient evaluations together.

    Utilization of a primitive = useful lanes / issued lanes over all its
    executions, from {!Instrument}; we report the [grad] primitive. *)

type point = {
  batch : int;
  local_util : float;   (** trajectory-boundary synchronization *)
  pc_util : float;      (** gradient-level synchronization *)
}

type stats = {
  policy : string;  (** scheduling policy the sweep ran under *)
  points : point list;
  mean_grads_per_trajectory : float;
  max_grads_per_trajectory : float;
  (** per-trajectory gradient-count statistics from reference chains; the
      paper reads the local-static curve as "the longest trajectory tends
      to be about four times longer than the average". *)
  pc_occupancy : (int * float) list;
  (** live-lane occupancy time series (downsampled) from the widest
      program-counter run — the lanes draining as chains finish *)
  pc_mean_occupancy : float;
}

val run :
  ?dim:int ->
  ?rho:float ->
  ?batch_sizes:int list ->
  ?n_iter:int ->
  ?seed:int64 ->
  ?fuse:Fuse.options ->
  ?policy:Sched_policy.t ->
  unit ->
  stats
(** Defaults: dim 100, rho 0.7, batch sizes 1…256, 10 trajectories.
    [fuse] compiles through the superblock fusion passes ({!Fuse});
    [policy] (default [Earliest]) sets both VMs' block scheduling
    policy. *)

val print : stats -> unit

val print_occupancy : stats -> unit
(** The occupancy time series as a text sparkline (one row per bucket). *)

val to_csv : stats -> string
(** [batch,local_util,pc_util,policy] rows plus a trailing comment line
    with the trajectory statistics. *)

val to_json : stats -> Obs_json.t
(** Points, trajectory statistics, and the occupancy time series as one
    JSON object, for {!Obs_report} documents. *)
