(* The `experiments profile` harness: run batched NUTS on a built-in
   target under the program-counter VM with the divergence profiler
   attached, and render hot-block tables, utilization accounting, and a
   folded-stacks flamegraph. *)

type result = {
  model_name : string;
  batch : int;
  n_iter : int;
  policy : Sched_policy.t;
  sim_seconds : float;
  wall : Obs_wall.sample;
  snapshot : Engine.snapshot;
  stack : Stack_ir.program;
  cfg : Cfg.program;
  fuse_report : Fuse.report option;
  prof : Obs_prof.t;
}

let known_models = Zoo.known
let resolve_model ~dim ~seed name = Zoo.resolve ~dim ~seed name

(* Canonical call stack per merged block, root-first, for the flamegraph.
   The stack program only remembers each block's source function
   ([Stack_ir.origin]); we rebuild a call path from the CFG callgraph by
   BFS from the entry, which yields the (a) shortest chain of direct
   calls reaching that function. Recursive programs simply reach the
   function once — the flamegraph shows self-time per function frame, not
   dynamic recursion depth, which is the right view for a merged-PC
   runtime where all recursion depths execute the same blocks. The leaf
   frame is ["fn#k"], the function-local block index, so sibling blocks
   of one function stay separate flame cells. *)
let flame_frames (stack : Stack_ir.program) (cfg : Cfg.program) =
  let cg = Callgraph.build cfg in
  let parent : (string, string option) Hashtbl.t = Hashtbl.create 16 in
  let q = Queue.create () in
  Hashtbl.replace parent cfg.Cfg.entry None;
  Queue.add cfg.Cfg.entry q;
  while not (Queue.is_empty q) do
    let f = Queue.pop q in
    Ir_util.Sset.iter
      (fun g ->
        if not (Hashtbl.mem parent g) then begin
          Hashtbl.replace parent g (Some f);
          Queue.add g q
        end)
      (Callgraph.callees cg f)
  done;
  let rec path f acc =
    match Hashtbl.find_opt parent f with
    | Some (Some p) -> path p (f :: acc)
    | Some None | None -> f :: acc
  in
  Array.map
    (fun (fn, local) ->
      Array.of_list (path fn [] @ [ Printf.sprintf "%s#%d" fn local ]))
    stack.Stack_ir.origin

let run ?(dim = 10) ?(batch = 64) ?(n_iter = 2) ?(seed = 0x5EEDL) ?trace ?fuse
    ?(policy = Sched_policy.Earliest) ~model:model_name () =
  let model = resolve_model ~dim ~seed model_name in
  let reg, _key = Nuts_dsl.setup ~seed ~model () in
  let q0 = Tensor.zeros [| model.Model.dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let prog = Nuts_dsl.program () in
  let compiled =
    Autobatch.compile ~registry:reg ?fuse
      ~input_shapes:(Nuts_dsl.input_shapes ~model)
      prog
  in
  let frames = flame_frames compiled.Autobatch.stack compiled.Autobatch.cfg in
  let prof = Obs_prof.create ~frames () in
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  (* The profiler (and optional trace) sink is installed both as the VM
     sink — Step/Occupancy — and as the engine sink — Launched spans —
     the same double wiring Figure5's tracing uses. *)
  let sinks =
    Obs_prof.sink prof
    ::
    (match trace with
    | None -> []
    | Some tr ->
      let track =
        Obs_trace.track tr (Printf.sprintf "profile/%s/z%d" model_name batch)
      in
      [ Obs_trace.sink tr ~track ~clock:(fun () -> Engine.elapsed engine) ])
  in
  let sink = match sinks with [ s ] -> s | sinks -> Obs_sink.fanout sinks in
  Engine.set_sink engine sink;
  let config =
    {
      Pc_vm.default_config with
      sched = policy;
      engine = Some engine;
      instrument = Some (Instrument.create ());
      sink = Some sink;
    }
  in
  let probe = Obs_wall.probe () in
  Obs_wall.start probe;
  ignore
    (Autobatch.run_pc ~config compiled
       ~batch:(Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch ()));
  let wall = Obs_wall.stop probe in
  {
    model_name;
    batch;
    n_iter;
    policy;
    sim_seconds = Engine.elapsed engine;
    wall;
    snapshot = Engine.snapshot engine;
    stack = compiled.Autobatch.stack;
    cfg = compiled.Autobatch.cfg;
    fuse_report = compiled.Autobatch.fuse;
    prof;
  }

let folded r = Obs_prof.folded r.prof

let origin_label (stack : Stack_ir.program) block =
  if block >= 0 && block < Array.length stack.Stack_ir.origin then
    let f, l = stack.Stack_ir.origin.(block) in
    Printf.sprintf "%s.%d" f l
  else "-"

let pct part whole = if whole = 0. then 0. else 100. *. part /. whole

let print ?(top = 12) r =
  let p = r.prof in
  Printf.printf
    "divergence profile: %s under NUTS, batch %d, %d trajectories, %s policy\n"
    r.model_name r.batch r.n_iter
    (Sched_policy.to_string r.policy);
  let attributed = Obs_prof.attributed p in
  Printf.printf
    "simulated time %.6fs; attributed %.6fs (blocks+kernels+host; residual \
     %.2e)\n"
    r.sim_seconds attributed
    (Float.abs (r.sim_seconds -. attributed));
  Printf.printf "host cost: %s\n" (Obs_wall.summary r.wall);
  Printf.printf
    "lane utilization %.3f (time-weighted %.3f): divergence waste %.3f, \
     drain waste %.3f over %d supersteps\n\n"
    (Obs_prof.utilization p)
    (Obs_prof.effective_utilization p)
    (Obs_prof.divergence_waste p)
    (Obs_prof.idle_waste p)
    (Obs_prof.supersteps p);
  let rows = Obs_prof.block_rows p in
  let shown = List.filteri (fun i _ -> i < top) rows in
  let cum = ref 0. in
  Table.print_stdout
    ~header:
      [ "block"; "origin"; "execs"; "act/z"; "util%"; "self-s"; "total%"; "cum%" ]
    ~rows:
      (List.map
         (fun (b : Obs_prof.block_row) ->
           cum := !cum +. b.charged;
           [
             string_of_int b.block;
             origin_label r.stack b.block;
             string_of_int b.execs;
             (if b.steps = 0 then "-"
              else
                Printf.sprintf "%.1f"
                  (float_of_int b.active_lanes /. float_of_int b.steps));
             (if b.total_lanes = 0 then "-"
              else
                Printf.sprintf "%.1f"
                  (100. *. float_of_int b.active_lanes
                  /. float_of_int b.total_lanes));
             Printf.sprintf "%.6f" b.charged;
             Printf.sprintf "%.1f" (pct b.charged r.sim_seconds);
             Printf.sprintf "%.1f" (pct !cum r.sim_seconds);
           ])
         shown);
  if List.length rows > top then
    Printf.printf "(%d more blocks below the top %d)\n"
      (List.length rows - top)
      top;
  (match Obs_prof.kernel_rows p with
  | [] -> ()
  | kernels ->
    print_newline ();
    Table.print_stdout
      ~header:[ "kernel"; "launches"; "self-s"; "total%" ]
      ~rows:
        (List.map
           (fun (k : Obs_prof.kernel_row) ->
             [
               k.kernel;
               string_of_int k.launches;
               Printf.sprintf "%.6f" k.charged;
               Printf.sprintf "%.1f" (pct k.charged r.sim_seconds);
             ])
           kernels));
  (match Obs_prof.collective_rows p with
  | [] -> ()
  | colls ->
    print_newline ();
    Table.print_stdout
      ~header:[ "collective"; "count"; "seconds"; "bytes" ]
      ~rows:
        (List.map
           (fun (c : Obs_prof.collective_row) ->
             [
               c.collective;
               string_of_int c.count;
               Printf.sprintf "%.6f" c.charged;
               Printf.sprintf "%.0f" c.bytes;
             ])
           colls));
  let host = Obs_prof.host_time p in
  if host > 0. then
    Printf.printf "\nhost (un-spanned engine time): %.6fs (%.1f%%)\n" host
      (pct host r.sim_seconds)

let to_json r =
  Obs_json.Obj
    ([
       ("model", Obs_json.Str r.model_name);
       ("batch", Obs_json.Int r.batch);
       ("n_iter", Obs_json.Int r.n_iter);
       ("policy", Obs_json.Str (Sched_policy.to_string r.policy));
       ("sim_seconds", Obs_json.Float r.sim_seconds);
       ("wall", Obs_wall.to_json r.wall);
       ("engine", Engine.Counters.to_json r.snapshot.Engine.at);
       ( "op_counts",
         Obs_json.Obj
           (List.map
              (fun (fn, counts) ->
                ( fn,
                  Obs_json.List
                    (Array.to_list
                       (Array.map (fun c -> Obs_json.Int c) counts)) ))
              (Optimize.block_op_counts r.cfg)) );
       ("profile", Obs_prof.to_json r.prof);
     ]
    @
    match r.fuse_report with
    | None -> []
    | Some fr -> [ ("fuse", Fuse.to_json fr) ])

(* ------------------------------------------------------------------ *)
(* The compare readout: one row per run, deltas against the first
   (baseline) row. Shared by `experiments ... --compare-policies` and
   the `bench sched` gate, so the scoreboard and the gate agree on what
   "x× better utilization" means. *)

type view = {
  v_label : string;
  v_policy : string;
  v_sim_seconds : float;
  v_wall_s : float;
      (* host wall-clock; nondeterministic, so it stays out of
         [view_to_json] (committed bench baselines diff that output) *)
  v_utilization : float;
  v_effective : float;
  v_divergence_waste : float;
  v_idle_waste : float;
  v_supersteps : int;
  v_migrations : int;
  v_steals : int;
  v_migration_bytes : float;
}

let view_of_prof ?(label = "") ?(wall_s = 0.) ~policy ~sim_seconds prof =
  {
    v_label = label;
    v_policy = policy;
    v_sim_seconds = sim_seconds;
    v_wall_s = wall_s;
    v_utilization = Obs_prof.utilization prof;
    v_effective = Obs_prof.effective_utilization prof;
    v_divergence_waste = Obs_prof.divergence_waste prof;
    v_idle_waste = Obs_prof.idle_waste prof;
    v_supersteps = Obs_prof.supersteps prof;
    v_migrations = Obs_prof.migrations prof;
    v_steals = Obs_prof.steals prof;
    v_migration_bytes = Obs_prof.migration_bytes prof;
  }

let view ?(label = "") r =
  view_of_prof ~label ~wall_s:r.wall.Obs_wall.wall_s
    ~policy:(Sched_policy.to_string r.policy)
    ~sim_seconds:r.sim_seconds r.prof

let ratio num den = if den = 0. then 0. else num /. den

let print_compare views =
  match views with
  | [] -> ()
  | baseline :: _ ->
    Table.print_stdout
      ~header:
        [
          "run"; "policy"; "sim-s"; "speedup"; "util"; "eff-util"; "eff x";
          "div-waste"; "idle"; "migr"; "steals"; "wall";
        ]
      ~rows:
        (List.map
           (fun v ->
             [
               v.v_label;
               v.v_policy;
               Printf.sprintf "%.6f" v.v_sim_seconds;
               Printf.sprintf "%.2f" (ratio baseline.v_sim_seconds v.v_sim_seconds);
               Printf.sprintf "%.3f" v.v_utilization;
               Printf.sprintf "%.3f" v.v_effective;
               Printf.sprintf "%.2f" (ratio v.v_effective baseline.v_effective);
               Printf.sprintf "%.3f" v.v_divergence_waste;
               Printf.sprintf "%.3f" v.v_idle_waste;
               string_of_int v.v_migrations;
               string_of_int v.v_steals;
               Obs_wall.span_of_seconds v.v_wall_s;
             ])
           views)

let view_to_json v =
  Obs_json.Obj
    [
      ("label", Obs_json.Str v.v_label);
      ("policy", Obs_json.Str v.v_policy);
      ("sim_seconds", Obs_json.Float v.v_sim_seconds);
      ("utilization", Obs_json.Float v.v_utilization);
      ("effective_utilization", Obs_json.Float v.v_effective);
      ("divergence_waste", Obs_json.Float v.v_divergence_waste);
      ("idle_waste", Obs_json.Float v.v_idle_waste);
      ("supersteps", Obs_json.Int v.v_supersteps);
      ("migrations", Obs_json.Int v.v_migrations);
      ("steals", Obs_json.Int v.v_steals);
      ("migration_bytes", Obs_json.Float v.v_migration_bytes);
    ]

let compare_to_json views =
  Obs_json.Obj
    [
      ("runs", Obs_json.List (List.map view_to_json views));
      ( "baseline",
        match views with
        | [] -> Obs_json.Null
        | v :: _ -> Obs_json.Str v.v_label );
    ]
