(** The [experiments profile] harness: batched NUTS on a built-in target
    under the program-counter VM with the divergence profiler
    ({!Obs_prof}) attached — per-block attribution of simulated time,
    lane-utilization accounting, hot-block tables, and folded-stacks
    flamegraph export. Attaching the profiler does not perturb the run:
    outputs and the simulated clock are bitwise identical either way
    (gated by [bench prof]). *)

type result = {
  model_name : string;
  batch : int;
  n_iter : int;
  sim_seconds : float;  (** the engine's total simulated time *)
  snapshot : Engine.snapshot;
  stack : Stack_ir.program;
  cfg : Cfg.program;
  fuse_report : Fuse.report option;
  prof : Obs_prof.t;
}

val known_models : string list
(** ["eight_schools"], ["gaussian"], ["funnel"], ["logistic"]. *)

val flame_frames : Stack_ir.program -> Cfg.program -> string array array
(** Per merged block: the root-first canonical call-stack frames used by
    {!Obs_prof.folded}. Functions sit at their shortest direct-call path
    from the CFG entry; the leaf frame is ["fn#k"] with [k] the
    function-local block index (from [Stack_ir.origin]). *)

val run :
  ?dim:int ->
  ?batch:int ->
  ?n_iter:int ->
  ?seed:int64 ->
  ?trace:Obs_trace.t ->
  ?fuse:Fuse.options ->
  model:string ->
  unit ->
  result
(** Compile NUTS against [model] (dim 10, batch 64, 2 trajectories and
    seed [0x5EED] by default; [dim] is ignored by [eight_schools], whose
    dimension is fixed), run it on a fused GPU engine with profiler —
    and, optionally, trace — sinks installed on both the VM and the
    engine, and return the profile. Raises [Invalid_argument] for an
    unknown model name. *)

val folded : result -> string
(** {!Obs_prof.folded} on the run's profiler: flamegraph.pl input. *)

val print : ?top:int -> result -> unit
(** Attribution summary, utilization accounting, and the top-[top]
    (default 12) hot-block table, plus kernel/collective tables when
    non-empty. *)

val to_json : result -> Obs_json.t
