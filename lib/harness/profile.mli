(** The [experiments profile] harness: batched NUTS on a built-in target
    under the program-counter VM with the divergence profiler
    ({!Obs_prof}) attached — per-block attribution of simulated time,
    lane-utilization accounting, hot-block tables, and folded-stacks
    flamegraph export. Attaching the profiler does not perturb the run:
    outputs and the simulated clock are bitwise identical either way
    (gated by [bench prof]). *)

type result = {
  model_name : string;
  batch : int;
  n_iter : int;
  policy : Sched_policy.t;  (** the scheduling policy the run used *)
  sim_seconds : float;  (** the engine's total simulated time *)
  wall : Obs_wall.sample;
      (** host wall-clock/GC cost of the run itself ({!Obs_wall.probe}
          around the VM execution) — reporting only, never part of the
          simulated cost *)
  snapshot : Engine.snapshot;
  stack : Stack_ir.program;
  cfg : Cfg.program;
  fuse_report : Fuse.report option;
  prof : Obs_prof.t;
}

val known_models : string list
(** ["eight_schools"], ["gaussian"], ["funnel"], ["logistic"]. *)

val flame_frames : Stack_ir.program -> Cfg.program -> string array array
(** Per merged block: the root-first canonical call-stack frames used by
    {!Obs_prof.folded}. Functions sit at their shortest direct-call path
    from the CFG entry; the leaf frame is ["fn#k"] with [k] the
    function-local block index (from [Stack_ir.origin]). *)

val run :
  ?dim:int ->
  ?batch:int ->
  ?n_iter:int ->
  ?seed:int64 ->
  ?trace:Obs_trace.t ->
  ?fuse:Fuse.options ->
  ?policy:Sched_policy.t ->
  model:string ->
  unit ->
  result
(** Compile NUTS against [model] (dim 10, batch 64, 2 trajectories and
    seed [0x5EED] by default; [dim] is ignored by [eight_schools], whose
    dimension is fixed), run it on a fused GPU engine with profiler —
    and, optionally, trace — sinks installed on both the VM and the
    engine, and return the profile. [policy] picks the block scheduling
    policy (default [Earliest]); outputs are policy-invariant, only the
    schedule and hence the simulated cost change. Raises
    [Invalid_argument] for an unknown model name. *)

val folded : result -> string
(** {!Obs_prof.folded} on the run's profiler: flamegraph.pl input. *)

val print : ?top:int -> result -> unit
(** Attribution summary, utilization accounting, and the top-[top]
    (default 12) hot-block table, plus kernel/collective tables when
    non-empty. *)

val to_json : result -> Obs_json.t

(** {1 Compare readout}

    One row per profiled run, with speedup and effective-utilization
    factors against the first (baseline) row. Shared by
    [experiments ... --compare-policies] and the [bench sched] gate, so
    the scoreboard and the gate agree on what an utilization factor
    means. *)

type view = {
  v_label : string;
  v_policy : string;
  v_sim_seconds : float;
  v_wall_s : float;
      (** host wall seconds; shown in {!print_compare} but deliberately
          absent from {!compare_to_json} — that output is diffed against
          committed bench baselines, and wall time is nondeterministic *)
  v_utilization : float;
  v_effective : float;  (** {!Obs_prof.effective_utilization} *)
  v_divergence_waste : float;
  v_idle_waste : float;
  v_supersteps : int;
  v_migrations : int;
  v_steals : int;
  v_migration_bytes : float;
}

val view : ?label:string -> result -> view

val view_of_prof :
  ?label:string ->
  ?wall_s:float ->
  policy:string ->
  sim_seconds:float ->
  Obs_prof.t ->
  view
(** For runs not driven by {!run} (e.g. the [Sched_sweep] defrag arms):
    build a row straight from a profiler and a simulated clock. *)

val print_compare : view list -> unit
(** Delta table; the first view is the baseline (speedup 1.00). Prints
    nothing for an empty list. *)

val compare_to_json : view list -> Obs_json.t
