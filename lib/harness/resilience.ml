type point = {
  vm : string;
  interval : int;
  rate : float;
  faults : int;
  restores : int;
  link_retries : int;
  checkpoints : int;
  ckpt_bytes : int;
  useful : int;
  wasted : int;
  overhead_pct : float;
  recovered_pct : float;
  identical : bool;
}

type stats = {
  z : int;
  ckpt_bandwidth : float;
  delta_steps : float;
  young : (float * float) list;
  points : point list;
}

(* The workload: batched recursive Fibonacci — all control flow, deep
   per-lane stacks, divergent lane lifetimes. The hardest case for
   snapshot fidelity and the easiest to check bitwise. *)
let fib_program =
  let open Lang in
  let open Lang.Infix in
  program ~main:"fib"
    [
      func "fib" ~params:[ "n" ]
        [
          if_
            (var "n" <= flt 1.)
            [ return_ [ flt 1. ] ]
            [
              call [ "left" ] "fib" [ var "n" - flt 2. ];
              call [ "right" ] "fib" [ var "n" - flt 1. ];
              return_ [ var "left" + var "right" ];
            ];
        ];
    ]

let digest fill =
  let buf = Buffer.create 1024 in
  fill buf;
  Codec.fnv1a64 (Buffer.contents buf)

let w_tensors buf ts =
  List.iter
    (fun t ->
      Codec.w_int_array buf (Tensor.shape t);
      Codec.w_float_array buf (Tensor.data t))
    ts

let w_server_stats buf (s : Server.stats) =
  Codec.w_int buf s.Server.steps;
  Codec.w_int buf s.Server.idle_steps;
  Codec.w_float buf s.Server.makespan;
  Codec.w_list
    (fun buf (r : Server.record) ->
      Codec.w_int buf r.Server.request.Request.id;
      Codec.w_float buf r.Server.queued;
      Codec.w_float buf r.Server.started;
      Codec.w_float buf r.Server.finished;
      w_tensors buf r.Server.outputs)
    buf s.Server.completions;
  Codec.w_list (fun buf (r : Request.t) -> Codec.w_int buf r.Request.id) buf s.Server.shed;
  Codec.w_list
    (fun buf (r : Request.t) -> Codec.w_int buf r.Request.id)
    buf s.Server.rejected

type runner = {
  name : string;
  kinds : Fault.kind list;
  devices : int;
  exec : interval:int -> plan:Fault.event list -> Int64.t * Recovery.stats;
}

let run ?(z = 32) ?(intervals = [ 1; 8; 64; 0 ]) ?(rates = [ 0.; 0.02; 0.1 ])
    ?(vms = [ "pc"; "jit"; "shard"; "server" ]) ?(shards = 4)
    ?(server_lanes = 4) ?(n_requests = 12) ?(ckpt_bandwidth = 262144.)
    ?(seed = 24389) () =
  List.iter
    (fun i -> if i < 0 then invalid_arg "Resilience.run: negative interval")
    intervals;
  if ckpt_bandwidth <= 0. then
    invalid_arg "Resilience.run: checkpoint bandwidth must be positive";
  let compiled = Autobatch.compile ~input_shapes:[ Shape.scalar ] fib_program in
  let reg = compiled.Autobatch.registry in
  let stack = compiled.Autobatch.stack in
  let batch = [ Tensor.init [| z |] (fun i -> float_of_int (4 + (i.(0) mod 8))) ] in
  let pc_runner =
    {
      name = "pc";
      kinds = [ Fault.Device_kill; Fault.Kernel_poison ];
      devices = 1;
      exec =
        (fun ~interval ~plan ->
          let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
          let config = { Pc_vm.default_config with Pc_vm.engine = Some engine } in
          let outs, st = Recovery.run_pc ~config ~interval ~plan reg stack ~batch in
          ( digest (fun buf ->
                w_tensors buf outs;
                Codec.w_float buf (Engine.elapsed engine)),
            st ));
    }
  in
  let jit_exe = Autobatch.jit compiled ~batch:z in
  let jit_runner =
    {
      name = "jit";
      kinds = [ Fault.Device_kill; Fault.Kernel_poison ];
      devices = 1;
      exec =
        (fun ~interval ~plan ->
          let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
          let outs, st = Recovery.run_jit ~engine ~interval ~plan jit_exe ~batch in
          ( digest (fun buf ->
                w_tensors buf outs;
                Codec.w_float buf (Engine.elapsed engine)),
            st ));
    }
  in
  let shard_runner =
    {
      name = "shard";
      kinds = [ Fault.Device_kill; Fault.Link_drop ];
      devices = shards;
      exec =
        (fun ~interval ~plan ->
          let r = Recovery.run_sharded ~shards ~interval ~plan reg stack ~batch in
          (digest (fun buf -> w_tensors buf r.Recovery.sh_outputs), r.Recovery.sh_stats));
    }
  in
  let requests =
    List.init n_requests (fun i ->
        Request.make ~id:i ~member:i
          ~arrival:(float_of_int i *. 3.)
          ~program:compiled
          ~inputs:[ Tensor.init [| 1 |] (fun _ -> float_of_int (4 + (i mod 8))) ]
          ())
  in
  let server_runner =
    {
      name = "server";
      kinds = [ Fault.Device_kill ];
      devices = 1;
      exec =
        (fun ~interval ~plan ->
          let config = { Server.default_config with Server.lanes = server_lanes } in
          let sstats, st =
            Recovery.run_server ~config ~interval ~plan ~program:compiled requests
          in
          (digest (fun buf -> w_server_stats buf sstats), st));
    }
  in
  let runners =
    List.filter_map
      (fun name ->
        match name with
        | "pc" -> Some pc_runner
        | "jit" -> Some jit_runner
        | "shard" -> Some shard_runner
        | "server" -> Some server_runner
        | other -> invalid_arg (Printf.sprintf "Resilience.run: unknown vm %S" other))
      vms
  in
  let delta_steps = ref Float.nan in
  let points =
    List.concat_map
      (fun r ->
        (* Fault-free reference: digest to compare against, horizon for
           fault plans, and (first runner) the per-checkpoint cost. *)
        let ref_digest, ref_stats = r.exec ~interval:0 ~plan:[] in
        if Float.is_nan !delta_steps then
          delta_steps :=
            float_of_int ref_stats.Recovery.checkpoint_bytes /. ckpt_bandwidth;
        let horizon = ref_stats.Recovery.useful_supersteps + 1 in
        List.concat_map
          (fun interval ->
            List.map
              (fun rate ->
                let plan =
                  if rate = 0. then []
                  else
                    Fault.schedule
                      ~seed:(seed + (String.length r.name * 7919))
                      ~rate ~horizon ~devices:r.devices ~kinds:r.kinds ()
                in
                let d, st = r.exec ~interval ~plan in
                let useful = st.Recovery.useful_supersteps in
                {
                  vm = r.name;
                  interval;
                  rate;
                  faults = st.Recovery.faults_injected;
                  restores = st.Recovery.restores;
                  link_retries = st.Recovery.link_retries;
                  checkpoints = st.Recovery.checkpoints;
                  ckpt_bytes = st.Recovery.checkpoint_bytes;
                  useful;
                  wasted = st.Recovery.wasted_supersteps;
                  overhead_pct =
                    (if useful = 0 then 0.
                     else
                       100.
                       *. (float_of_int st.Recovery.checkpoint_bytes
                          /. ckpt_bandwidth)
                       /. float_of_int useful);
                  recovered_pct =
                    (let total = useful + st.Recovery.wasted_supersteps in
                     if total = 0 then 100.
                     else 100. *. float_of_int useful /. float_of_int total);
                  identical = Int64.equal d ref_digest;
                })
              rates)
          intervals)
      runners
  in
  let young =
    List.filter_map
      (fun rate ->
        if rate <= 0. then None
        else
          Some
            ( rate,
              Recovery.young_interval ~checkpoint_cost:!delta_steps
                ~mtbf:(1. /. rate) ))
      rates
  in
  { z; ckpt_bandwidth; delta_steps = !delta_steps; young; points }

let interval_name i = if i = 0 then "inf" else string_of_int i

let to_csv stats =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "vm,interval,rate,faults,restores,link_retries,checkpoints,ckpt_bytes,useful,wasted,overhead_pct,recovered_pct,identical\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%.3f,%d,%d,%d,%d,%d,%d,%d,%.4f,%.2f,%b\n" p.vm
           (interval_name p.interval)
           p.rate p.faults p.restores p.link_retries p.checkpoints p.ckpt_bytes
           p.useful p.wasted p.overhead_pct p.recovered_pct p.identical))
    stats.points;
  List.iter
    (fun (rate, t_opt) ->
      Buffer.add_string buf
        (Printf.sprintf "# young: rate=%.3f mtbf=%.1f t_opt=%.1f\n" rate (1. /. rate)
           t_opt))
    stats.young;
  Buffer.add_string buf
    (Printf.sprintf "# z=%d ckpt_bandwidth=%.0f delta_steps=%.4f\n" stats.z
       stats.ckpt_bandwidth stats.delta_steps);
  Buffer.contents buf

let to_json stats =
  Obs_json.Obj
    [
      ("z", Obs_json.Int stats.z);
      ("ckpt_bandwidth", Obs_json.Float stats.ckpt_bandwidth);
      ("delta_steps", Obs_json.Float stats.delta_steps);
      ( "young",
        Obs_json.List
          (List.map
             (fun (rate, t_opt) ->
               Obs_json.Obj
                 [
                   ("rate", Obs_json.Float rate);
                   ("mtbf", Obs_json.Float (1. /. rate));
                   ("t_opt", Obs_json.Float t_opt);
                 ])
             stats.young) );
      ( "points",
        Obs_json.List
          (List.map
             (fun p ->
               Obs_json.Obj
                 [
                   ("vm", Obs_json.Str p.vm);
                   ("interval", Obs_json.Str (interval_name p.interval));
                   ("rate", Obs_json.Float p.rate);
                   ("faults", Obs_json.Int p.faults);
                   ("restores", Obs_json.Int p.restores);
                   ("link_retries", Obs_json.Int p.link_retries);
                   ("checkpoints", Obs_json.Int p.checkpoints);
                   ("ckpt_bytes", Obs_json.Int p.ckpt_bytes);
                   ("useful", Obs_json.Int p.useful);
                   ("wasted", Obs_json.Int p.wasted);
                   ("overhead_pct", Obs_json.Float p.overhead_pct);
                   ("recovered_pct", Obs_json.Float p.recovered_pct);
                   ("identical", Obs_json.Bool p.identical);
                 ])
             stats.points) );
    ]

let print stats =
  Printf.printf
    "Resilience: fib workload, z=%d; checkpoint cost modelled at %.0f bytes per \
     superstep (delta = %.3f supersteps per checkpoint)\n"
    stats.z stats.ckpt_bandwidth stats.delta_steps;
  Table.print_stdout
    ~header:
      [
        "vm"; "ckpt-int"; "rate"; "faults"; "restores"; "ckpts"; "bytes"; "useful";
        "wasted"; "ovh%"; "recov%"; "bitwise";
      ]
    ~rows:
      (List.map
         (fun p ->
           [
             p.vm;
             interval_name p.interval;
             Printf.sprintf "%.2f" p.rate;
             string_of_int p.faults;
             string_of_int p.restores;
             string_of_int p.checkpoints;
             string_of_int p.ckpt_bytes;
             string_of_int p.useful;
             string_of_int p.wasted;
             Printf.sprintf "%.2f" p.overhead_pct;
             Printf.sprintf "%.1f" p.recovered_pct;
             (if p.identical then "yes" else "NO");
           ])
         stats.points);
  match stats.young with
  | [] -> ()
  | young ->
    Printf.printf
      "Young's optimal interval (T = sqrt(2 * delta * MTBF), supersteps):\n";
    Table.print_stdout
      ~header:[ "fault rate"; "MTBF"; "T_opt" ]
      ~rows:
        (List.map
           (fun (rate, t_opt) ->
             [
               Printf.sprintf "%.3f" rate;
               Printf.sprintf "%.1f" (1. /. rate);
               Printf.sprintf "%.1f" t_opt;
             ])
           young)
