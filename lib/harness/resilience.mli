(** Resilience experiment: checkpoint-interval x fault-rate sweep over
    the recovery drivers ({!Recovery}).

    The workload is batched recursive Fibonacci — pure control flow with
    divergent lane lifetimes, the hardest case for snapshot fidelity. For
    each VM (interpreter, precompiled executor, sharded, serving) the
    harness first runs fault-free, then replays the same seeded fault
    plan at every checkpoint interval and reports:

    - {e overhead}: analytic checkpoint cost (bytes / bandwidth, in
      superstep-equivalents) over useful supersteps — the checkpoint I/O
      is {e not} charged to the engine, so the replayed trace stays
      bitwise comparable;
    - {e recovered work}: useful / (useful + wasted) supersteps;
    - {e bitwise}: whether the faulted-and-recovered run's outputs (and
      engine clock, where attached) are bit-identical to the fault-free
      run — the deterministic-replay guarantee, checked live;
    - Young's first-order optimal interval [sqrt (2 delta MTBF)] next to
      the measured sweep. *)

type point = {
  vm : string;  (** ["pc"], ["jit"], ["shard"], or ["server"] *)
  interval : int;  (** checkpoint interval in supersteps; 0 = initial only *)
  rate : float;  (** per-superstep fault probability *)
  faults : int;
  restores : int;
  link_retries : int;
  checkpoints : int;
  ckpt_bytes : int;
  useful : int;
  wasted : int;
  overhead_pct : float;
  recovered_pct : float;
  identical : bool;  (** bitwise equal to the fault-free run *)
}

type stats = {
  z : int;
  ckpt_bandwidth : float;  (** modelled checkpoint bytes per superstep *)
  delta_steps : float;  (** per-checkpoint cost in superstep-equivalents *)
  young : (float * float) list;  (** (rate, Young's T_opt) per nonzero rate *)
  points : point list;
}

val run :
  ?z:int ->
  ?intervals:int list ->
  ?rates:float list ->
  ?vms:string list ->
  ?shards:int ->
  ?server_lanes:int ->
  ?n_requests:int ->
  ?ckpt_bandwidth:float ->
  ?seed:int ->
  unit ->
  stats
(** Defaults: z 32, intervals [[1; 8; 64; 0]] (0 = initial checkpoint
    only), rates [[0.; 0.02; 0.1]], all four VMs, 4 shards, 4 server
    lanes, 12 requests, bandwidth 256 KiB per superstep. Raises
    [Invalid_argument] on a negative interval, an unknown VM name, or a
    non-positive bandwidth. *)

val print : stats -> unit
val to_csv : stats -> string

val to_json : stats -> Obs_json.t
(** The sweep (points, Young intervals, calibration constants) as one JSON
    object, for {!Obs_report} documents. *)
