type scale = {
  dim : int;
  per_device : int;
  total : int;
  n_iter : int;
  devices : int list;
  link : Mesh.link;
  collective : Collectives.algorithm;
  seed : int64;
}

let default_scale =
  {
    dim = 20;
    per_device = 16;
    total = 64;
    n_iter = 2;
    devices = [ 1; 2; 4; 8 ];
    link = Mesh.nvlink;
    collective = Collectives.Ring;
    seed = 0x5EEDL;
  }

type point = {
  series : [ `Weak | `Strong ];
  devices : int;
  batch : int;
  useful_grads : int;
  compute_time : float;
  collective_time : float;
  sim_time : float;
  grads_per_sec : float;
  speedup : float;
  efficiency : float;
  wall_seconds : float;
  shard_times : float array;
}

let series_name = function `Weak -> "weak" | `Strong -> "strong"

let run ?(scale = default_scale) () =
  let model = Gaussian_model.model ~dim:scale.dim () in
  let reg, _key = Nuts_dsl.setup ~seed:scale.seed ~model () in
  let q0 = Tensor.zeros [| scale.dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let cfg = Nuts.default_config ~eps () in
  let prog = Nuts_dsl.program ~params:(Nuts_dsl.params_of_config cfg) () in
  let compiled =
    Autobatch.compile ~registry:reg ~input_shapes:(Nuts_dsl.input_shapes ~model) prog
  in
  let measure series ~devices ~z =
    let mesh = Mesh.create ~device:Device.gpu ~link:scale.link ~n:devices () in
    let config =
      {
        Shard_vm.default_config with
        mesh;
        mode = Some Engine.Fused;
        collective = scale.collective;
      }
    in
    let batch = Nuts_dsl.inputs ~q0 ~eps ~n_iter:scale.n_iter ~n_burn:0 ~batch:z () in
    let t0 = Unix.gettimeofday () in
    let r = Autobatch.run_sharded ~config compiled ~batch in
    let wall = Unix.gettimeofday () -. t0 in
    let useful = Instrument.prim_useful r.Shard_vm.instrument ~name:"grad" in
    {
      series;
      devices;
      batch = z;
      useful_grads = useful;
      compute_time = r.Shard_vm.compute_time;
      collective_time = r.Shard_vm.collective_time;
      sim_time = r.Shard_vm.sim_time;
      grads_per_sec =
        (if r.Shard_vm.sim_time > 0. then
           float_of_int useful /. r.Shard_vm.sim_time
         else Float.nan);
      speedup = 1.;
      efficiency = 1.;
      wall_seconds = wall;
      shard_times = r.Shard_vm.shard_times;
    }
  in
  let devices = List.sort_uniq compare scale.devices in
  let finish series points =
    (* Weak scaling grows the problem with the mesh, so the honest figure
       of merit is throughput relative to one device; strong scaling fixes
       the problem, so it is the plain time ratio. *)
    match points with
    | [] -> []
    | base :: _ ->
      List.map
        (fun p ->
          let speedup =
            match series with
            | `Strong ->
              if p.sim_time > 0. then base.sim_time /. p.sim_time else Float.nan
            | `Weak ->
              if base.grads_per_sec > 0. then p.grads_per_sec /. base.grads_per_sec
              else Float.nan
          in
          { p with speedup; efficiency = speedup /. float_of_int p.devices })
        points
  in
  let weak =
    finish `Weak
      (List.map (fun n -> measure `Weak ~devices:n ~z:(scale.per_device * n)) devices)
  in
  let strong =
    finish `Strong (List.map (fun n -> measure `Strong ~devices:n ~z:scale.total) devices)
  in
  weak @ strong

let points_of ps series = List.filter (fun p -> p.series = series) ps

let to_csv points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "series,devices,batch,useful_grads,compute_time,collective_time,sim_time,\
     grads_per_sec,speedup,efficiency,wall_seconds\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%d,%.9g,%.9g,%.9g,%.9g,%.4f,%.4f,%.4f\n"
           (series_name p.series) p.devices p.batch p.useful_grads p.compute_time
           p.collective_time p.sim_time p.grads_per_sec p.speedup p.efficiency
           p.wall_seconds))
    points;
  Buffer.contents buf

let to_json points =
  Obs_json.List
    (List.map
       (fun p ->
         Obs_json.Obj
           [
             ("series", Obs_json.Str (series_name p.series));
             ("devices", Obs_json.Int p.devices);
             ("batch", Obs_json.Int p.batch);
             ("useful_grads", Obs_json.Int p.useful_grads);
             ("compute_time", Obs_json.Float p.compute_time);
             ("collective_time", Obs_json.Float p.collective_time);
             ("sim_time", Obs_json.Float p.sim_time);
             ("grads_per_sec", Obs_json.Float p.grads_per_sec);
             ("speedup", Obs_json.Float p.speedup);
             ("efficiency", Obs_json.Float p.efficiency);
             ("wall_seconds", Obs_json.Float p.wall_seconds);
             ( "shard_times",
               Obs_json.List
                 (Array.to_list
                    (Array.map (fun t -> Obs_json.Float t) p.shard_times)) );
           ])
       points)

let print_series title points =
  print_endline title;
  Table.print_stdout
    ~header:
      [
        "devices"; "chains"; "grads"; "compute-s"; "collective-s"; "sim-s";
        "grads/s"; "speedup"; "efficiency"; "wall-s";
      ]
    ~rows:
      (List.map
         (fun p ->
           [
             string_of_int p.devices;
             string_of_int p.batch;
             string_of_int p.useful_grads;
             Printf.sprintf "%.3g" p.compute_time;
             Printf.sprintf "%.3g" p.collective_time;
             Printf.sprintf "%.3g" p.sim_time;
             Table.si p.grads_per_sec;
             Printf.sprintf "%.2f" p.speedup;
             Printf.sprintf "%.2f" p.efficiency;
             Printf.sprintf "%.3f" p.wall_seconds;
           ])
         points)

let print points =
  print_series
    "Figure 7a: weak scaling (chains per device fixed; speedup = throughput vs 1 device)"
    (points_of points `Weak);
  print_newline ();
  print_series
    "Figure 7b: strong scaling (total chains fixed; speedup = simulated-time ratio)"
    (points_of points `Strong)
