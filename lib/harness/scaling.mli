(** "Figure 7": weak- and strong-scaling study of sharded batched NUTS on
    a device mesh — the multi-device extension of the paper's Figure 5
    argument. Batching amortizes dispatch overhead on one device; sharding
    the chain dimension across a mesh ({!Shard_vm}) buys more arithmetic
    at the price of per-superstep collective synchronization, which this
    harness measures with the {!Collectives} cost model (simulated time)
    while the domains-backed execution also yields real wall-clock
    parallelism (the [wall_seconds] column).

    - {e Weak scaling}: chains per device fixed ([per_device]); the batch
      grows with the mesh. Ideal: throughput scales with devices.
    - {e Strong scaling}: total chains fixed ([total]); each device gets a
      smaller shard. Ideal: simulated time drops as 1/devices, until
      collective cost and shard imbalance bite. *)

type scale = {
  dim : int;                           (** Gaussian target dimension *)
  per_device : int;                    (** weak-scaling chains per device *)
  total : int;                         (** strong-scaling total chains *)
  n_iter : int;                        (** trajectories per chain *)
  devices : int list;                  (** mesh sizes to sweep *)
  link : Mesh.link;
  collective : Collectives.algorithm;
  seed : int64;
}

val default_scale : scale
(** dim 20, 16 chains/device weak, 64 chains strong, devices 1/2/4/8,
    NVLink ring. *)

type point = {
  series : [ `Weak | `Strong ];
  devices : int;
  batch : int;                 (** total chains in this run *)
  useful_grads : int;
  compute_time : float;        (** max over shards, simulated *)
  collective_time : float;
  sim_time : float;
  grads_per_sec : float;       (** useful gradients per simulated second *)
  speedup : float;             (** vs the 1-device point of the series *)
  efficiency : float;          (** speedup / devices *)
  wall_seconds : float;        (** real host time (domains parallelism) *)
  shard_times : float array;   (** per-shard simulated seconds *)
}

val series_name : [ `Weak | `Strong ] -> string

val run : ?scale:scale -> unit -> point list
(** Both series, weak first; within a series, ascending device count. *)

val points_of : point list -> [ `Weak | `Strong ] -> point list
val print : point list -> unit
val to_csv : point list -> string

val to_json : point list -> Obs_json.t
(** Both series as a JSON array; each point carries its per-shard
    simulated-time vector, the report's per-shard timeline. *)
