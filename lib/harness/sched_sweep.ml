(* The scheduling-policy sweep harness behind `bench sched` and the
   `--compare-policies` CLI flag: profiled per-policy runs, defragmenting
   Sched_vm arms, and the runtime × policy × plan bitwise matrix. *)

let policy_name = Sched_policy.to_string

(* One profiled program-counter run: profiler + fused-GPU engine wired
   exactly as Profile.run does it, so views are comparable across
   harnesses. *)
let profiled_pc ?label ~policy (compiled : Autobatch.compiled) ~batch =
  let prof = Obs_prof.create () in
  let engine = Engine.create ~device:Device.gpu ~mode:Engine.Fused () in
  let sink = Obs_prof.sink prof in
  Engine.set_sink engine sink;
  let config =
    {
      Pc_vm.default_config with
      sched = policy;
      engine = Some engine;
      sink = Some sink;
    }
  in
  let outputs = Autobatch.run_pc ~config compiled ~batch in
  let label = Option.value ~default:(policy_name policy) label in
  ( outputs,
    Profile.view_of_prof ~label ~policy:(policy_name policy)
      ~sim_seconds:(Engine.elapsed engine) prof )

let policy_views ?(policies = Sched_policy.all) (compiled : Autobatch.compiled)
    ~batch () =
  List.map
    (fun policy -> snd (profiled_pc ~policy compiled ~batch))
    policies

let defrag_view ?label ?(policy = Sched_policy.Earliest)
    ?(plan = Sched_plan.default) ~shards ~lanes
    (compiled : Autobatch.compiled) ~batch () =
  let prof = Obs_prof.create () in
  let config =
    {
      Sched_vm.default_config with
      policy;
      plan;
      lanes;
      mesh = Mesh.gpu_pod ~n:shards ();
      mode = Some Engine.Fused;
      sink = Some (Obs_prof.sink prof);
    }
  in
  let r =
    Sched_vm.run ~config compiled.Autobatch.registry compiled.Autobatch.stack
      ~batch
  in
  let label =
    Option.value
      ~default:(Printf.sprintf "%s+defrag" (policy_name policy))
      label
  in
  ( r,
    Profile.view_of_prof ~label ~policy:(policy_name policy)
      ~sim_seconds:r.Sched_vm.sim_time prof )

(* ------------------------------------------------------------------ *)
(* The bitwise matrix *)

type check = {
  c_runtime : string;
  c_policy : string;
  c_plan : string;
  c_ok : bool;
}

let failures checks = List.filter (fun c -> not c.c_ok) checks

let default_plans =
  [ ("no-migration", Sched_plan.no_migration); ("aggressive", Sched_plan.aggressive) ]

let equal_outputs a b =
  List.length a = List.length b && List.for_all2 Tensor.equal a b

(* Serve each batch member as its own width-1 request (member = id) and
   reassemble completions in id order — the server-runtime leg of the
   differential. *)
let run_server ~policy (compiled : Autobatch.compiled) ~lanes ~batch =
  let n =
    match batch with
    | [] -> invalid_arg "Sched_sweep: at least one input required"
    | t :: _ -> (Tensor.shape t).(0)
  in
  let requests =
    List.init n (fun id ->
        Request.make ~id ~member:id ~arrival:0. ~cost_hint:1. ~program:compiled
          ~inputs:(List.map (fun t -> Tensor.take_rows t [| id |]) batch)
          ())
  in
  let vm = { Pc_vm.default_config with sched = policy } in
  let config = { Server.default_config with Server.lanes; vm } in
  let stats = Server.run ~config ~program:compiled requests in
  let by_id =
    List.sort
      (fun (a : Server.record) b ->
        compare a.Server.request.Request.id b.Server.request.Request.id)
      stats.Server.completions
  in
  if List.length by_id <> n then invalid_arg "Sched_sweep: server lost requests";
  match by_id with
  | [] -> []
  | first :: _ ->
    List.mapi
      (fun j _ ->
        Tensor.concat_rows
          (List.map (fun (r : Server.record) -> List.nth r.Server.outputs j) by_id))
      first.Server.outputs

let bitwise_matrix ?(policies = Sched_policy.all) ?(plans = default_plans)
    ?(lanes = 4) ?(shards = 2) ?(include_jit = true)
    (compiled : Autobatch.compiled) ~batch =
  let z =
    match batch with
    | [] -> invalid_arg "Sched_sweep: at least one input required"
    | t :: _ -> (Tensor.shape t).(0)
  in
  let baseline = Autobatch.run_pc compiled ~batch in
  let checks = ref [] in
  let check ~runtime ~policy ?(plan = "-") outputs =
    checks :=
      {
        c_runtime = runtime;
        c_policy = policy_name policy;
        c_plan = plan;
        c_ok = equal_outputs baseline outputs;
      }
      :: !checks
  in
  let jit = if include_jit then Some (Autobatch.jit compiled ~batch:z) else None in
  List.iter
    (fun policy ->
      check ~runtime:"pc" ~policy
        (Autobatch.run_pc
           ~config:{ Pc_vm.default_config with sched = policy }
           compiled ~batch);
      (match jit with
      | None -> ()
      | Some jit -> check ~runtime:"jit" ~policy (Pc_jit.run ~sched:policy jit ~batch));
      check ~runtime:"local" ~policy
        (Autobatch.run_local
           ~config:{ Local_vm.default_config with sched = policy }
           compiled ~batch);
      check ~runtime:"shard" ~policy
        (Autobatch.run_sharded
           ~config:
             {
               Shard_vm.default_config with
               mesh = Mesh.gpu_pod ~n:shards ();
               sched = policy;
             }
           compiled ~batch)
          .Shard_vm.outputs;
      check ~runtime:"server" ~policy (run_server ~policy compiled ~lanes ~batch);
      List.iter
        (fun (plan_name, plan) ->
          let r =
            Sched_vm.run
              ~config:
                {
                  Sched_vm.default_config with
                  policy;
                  plan;
                  lanes;
                  mesh = Mesh.gpu_pod ~n:shards ();
                }
              compiled.Autobatch.registry compiled.Autobatch.stack ~batch
          in
          check ~runtime:"sched" ~policy ~plan:plan_name r.Sched_vm.outputs)
        plans)
    policies;
  List.rev !checks

let checks_to_json checks =
  Obs_json.List
    (List.map
       (fun c ->
         Obs_json.Obj
           [
             ("runtime", Obs_json.Str c.c_runtime);
             ("policy", Obs_json.Str c.c_policy);
             ("plan", Obs_json.Str c.c_plan);
             ("bitwise", Obs_json.Bool c.c_ok);
           ])
       checks)
