(** The scheduling-policy sweep harness behind [bench sched] and the
    [--compare-policies] CLI flag.

    Three readouts over one compiled workload:

    - {!policy_views}: a profiled program-counter run per policy
      (profiler + fused-GPU engine, wired as {!Profile.run} wires them),
      as {!Profile.view} rows for {!Profile.print_compare};
    - {!defrag_view}: the defragmenting {!Sched_vm} runtime on a mesh of
      small lane pools — the before/after utilization comparison the
      [bench sched] gate scores;
    - {!bitwise_matrix}: outputs of every runtime × policy × migration
      plan checked bitwise against the [Earliest] program-counter
      baseline — the determinism half of the gate. *)

val profiled_pc :
  ?label:string ->
  policy:Sched_policy.t ->
  Autobatch.compiled ->
  batch:Tensor.t list ->
  Tensor.t list * Profile.view
(** One profiled whole-batch PC run; returns the outputs (for bitwise
    checks) and the utilization view. [label] defaults to the policy
    name. *)

val policy_views :
  ?policies:Sched_policy.t list ->
  Autobatch.compiled ->
  batch:Tensor.t list ->
  unit ->
  Profile.view list
(** One view per policy (default {!Sched_policy.all}, so the [Earliest]
    baseline comes first — {!Profile.print_compare}'s convention). *)

val defrag_view :
  ?label:string ->
  ?policy:Sched_policy.t ->
  ?plan:Sched_plan.config ->
  shards:int ->
  lanes:int ->
  Autobatch.compiled ->
  batch:Tensor.t list ->
  unit ->
  Sched_vm.result * Profile.view
(** Run the batch through {!Sched_vm} on a [shards]-device mesh with
    [lanes] lanes per device (capacity below the batch size forces
    continuous refill — where retiring drained lanes pays). Default
    [Earliest] policy and {!Sched_plan.default}; [label] defaults to
    ["<policy>+defrag"]. *)

(** {1 Bitwise matrix} *)

type check = {
  c_runtime : string;  (** pc | jit | local | shard | server | sched *)
  c_policy : string;
  c_plan : string;  (** migration plan name; ["-"] for plain runtimes *)
  c_ok : bool;
}

val default_plans : (string * Sched_plan.config) list
(** [no-migration] and [aggressive]. *)

val bitwise_matrix :
  ?policies:Sched_policy.t list ->
  ?plans:(string * Sched_plan.config) list ->
  ?lanes:int ->
  ?shards:int ->
  ?include_jit:bool ->
  Autobatch.compiled ->
  batch:Tensor.t list ->
  check list
(** Run the batch through every runtime under every policy — plus
    {!Sched_vm} under every (policy, plan) pair on a [shards]-device
    mesh with [lanes] lanes each, and the server as one width-1 request
    per member — and compare outputs bitwise against the [Earliest] PC
    baseline. [include_jit] (default true) requires the program compiled
    with [input_shapes]. *)

val failures : check list -> check list

val checks_to_json : check list -> Obs_json.t
