type point = {
  mode : string;
  policy : Server.policy;
  load : float;
  offered : float;
  completed : int;
  shed : int;
  throughput : float;
  mean_occupancy : float;
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;
  makespan : float;
  latency_hist : Obs_json.t;
}

type stats = {
  lanes : int;
  n_requests : int;
  solo_service : float;
  sched_policy : string;
  points : point list;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let k = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) k))

let summarize ~mode ~policy ~load ~offered (s : Server.stats) =
  let lat = Array.of_list (List.map Server.total_latency s.Server.completions) in
  Array.sort compare lat;
  let completed = Array.length lat in
  {
    mode;
    policy;
    load;
    offered;
    completed;
    shed = List.length s.Server.shed;
    throughput =
      (if s.Server.makespan > 0. then
         float_of_int completed /. s.Server.makespan
       else 0.);
    mean_occupancy = s.Server.mean_occupancy;
    mean_latency =
      (if completed = 0 then Float.nan
       else Array.fold_left ( +. ) 0. lat /. float_of_int completed);
    p50 = percentile lat 50.;
    p95 = percentile lat 95.;
    p99 = percentile lat 99.;
    makespan = s.Server.makespan;
    latency_hist =
      (* The log-bucketed summary (with its own p50/p90/p99 estimates)
         alongside the exact percentiles above, so the JSON report carries
         a machine-readable distribution, not just three cut points. *)
      (let m = Obs_metrics.create () in
       let h = Obs_metrics.histogram m "total_latency" in
       Array.iter (Obs_metrics.observe h) lat;
       Obs_metrics.hist_to_json h);
  }

let run ?(dim = 10) ?(rho = 0.7) ?(lanes = 8) ?(n_requests = 48)
    ?(max_iter = 3) ?(loads = [ 0.6; 0.9; 1.3 ])
    ?(policies = [ Server.Synchronous; Server.Fifo; Server.Shortest_first ])
    ?(queue_depth = 1024) ?(closed_clients = -1) ?(seed = 0x5EEDL) ?trace
    ?(sched = Sched_policy.Earliest) () =
  let closed_clients = if closed_clients < 0 then lanes else closed_clients in
  let model = Gaussian_model.model ~rho ~dim () in
  let reg, _key = Nuts_dsl.setup ~seed ~model () in
  let q0 = Tensor.zeros [| dim |] in
  let eps = Nuts.find_reasonable_eps ~model ~q0 () in
  let prog = Nuts_dsl.program () in
  let compiled =
    Autobatch.compile ~registry:reg
      ~input_shapes:(Nuts_dsl.input_shapes ~model)
      prog
  in
  (* One request = one NUTS chain of [n_iter] trajectories; the iteration
     count is a runtime input, so requests of different lengths share the
     compiled program (and the cost hint is honest). *)
  let request ~id ~arrival ~n_iter =
    Request.make ~id ~member:id ~arrival
      ~cost_hint:(float_of_int n_iter)
      ~program:compiled
      ~inputs:(Nuts_dsl.inputs ~q0 ~eps ~n_iter ~n_burn:0 ~batch:1 ())
      ()
  in
  let iter_stream = Splitmix.Stream.create (Int64.add seed 17L) in
  let n_iters =
    Array.init n_requests (fun _ ->
        1 + Splitmix.Stream.int_below iter_stream max_iter)
  in
  (* Calibrate one unit of offered load to the device's capacity: mean
     solo makespan over a few probe requests gives the per-request
     service time, so rate = load * lanes / solo_service has load 1.0 at
     the saturation point. *)
  let probe = max 1 (min lanes n_requests) in
  let solo_service =
    let tot = ref 0. in
    for i = 0 to probe - 1 do
      let r = request ~id:i ~arrival:0. ~n_iter:n_iters.(i) in
      let s =
        Server.run
          ~config:{ Server.default_config with lanes }
          ~program:compiled [ r ]
      in
      tot := !tot +. s.Server.makespan
    done;
    !tot /. float_of_int probe
  in
  let server_config policy =
    let vm = { Server.default_config.Server.vm with Pc_vm.sched } in
    { Server.default_config with lanes; policy; queue_depth; vm }
  in
  (* One trace track per measured serving run: the lane VM's superstep
     spans plus the request lifecycle (enqueue/shed/reject instants and
     queue/serve spans), all on the server clock — read through a forward
     reference because the sink must exist before the server does. *)
  let serve ~label ~config ?on_complete reqs =
    match trace with
    | None -> Server.run ~config ?on_complete ~program:compiled reqs
    | Some tr ->
      let track = Obs_trace.track tr label in
      let holder = ref None in
      let clock () = match !holder with Some s -> Server.now s | None -> 0. in
      let sink = Obs_trace.sink tr ~track ~clock in
      let config =
        { config with Server.vm = { config.Server.vm with Pc_vm.sink = Some sink } }
      in
      let s = Server.create ~config ?on_complete ~program:compiled reqs in
      holder := Some s;
      while Server.step s do () done;
      Server.stats s
  in
  let open_points =
    List.concat_map
      (fun load ->
        let rate = load *. float_of_int lanes /. solo_service in
        (* Same trace for every policy at this load: requests are
           immutable, so reuse is safe and the comparison is paired. *)
        let arr_stream =
          Splitmix.Stream.create
            (Splitmix.hash2 seed (Int64.of_float (load *. 1e6)))
        in
        let t = ref 0. in
        let arrivals =
          List.init n_requests (fun i ->
              t := !t +. Splitmix.Stream.exponential arr_stream ~rate;
              request ~id:i ~arrival:!t ~n_iter:n_iters.(i))
        in
        List.map
          (fun policy ->
            let s =
              serve
                ~label:
                  (Printf.sprintf "open/%s/load%.2f" (Server.policy_name policy)
                     load)
                ~config:(server_config policy) arrivals
            in
            summarize ~mode:"open" ~policy ~load ~offered:rate s)
          policies)
      loads
  in
  let closed_points =
    if closed_clients = 0 then []
    else
      List.map
        (fun policy ->
          let issued = ref (min closed_clients n_requests) in
          let initial =
            List.init !issued (fun i ->
                request ~id:i ~arrival:0. ~n_iter:n_iters.(i))
          in
          let on_complete _record =
            if !issued >= n_requests then None
            else begin
              let id = !issued in
              incr issued;
              Some (request ~id ~arrival:0. ~n_iter:n_iters.(id))
            end
          in
          let s =
            serve
              ~label:(Printf.sprintf "closed/%s" (Server.policy_name policy))
              ~config:(server_config policy) ~on_complete initial
          in
          let p = summarize ~mode:"closed" ~policy ~load:0. ~offered:0. s in
          (* A closed loop has no offered rate; report the measured one. *)
          {
            p with
            offered = p.throughput;
            load = p.throughput *. solo_service /. float_of_int lanes;
          })
        policies
  in
  {
    lanes;
    n_requests;
    solo_service;
    sched_policy = Sched_policy.to_string sched;
    points = open_points @ closed_points;
  }

let to_csv stats =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "mode,policy,load,offered_rate,completed,shed,throughput,mean_occupancy,mean_latency,p50,p95,p99,makespan,sched_policy\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf
           "%s,%s,%.3f,%.6f,%d,%d,%.6f,%.4f,%.2f,%.2f,%.2f,%.2f,%.2f,%s\n"
           p.mode
           (Server.policy_name p.policy)
           p.load p.offered p.completed p.shed p.throughput p.mean_occupancy
           p.mean_latency p.p50 p.p95 p.p99 p.makespan stats.sched_policy))
    stats.points;
  Buffer.add_string buf
    (Printf.sprintf "# lanes=%d n_requests=%d solo_service=%.2f\n" stats.lanes
       stats.n_requests stats.solo_service);
  Buffer.contents buf

let to_json stats =
  Obs_json.Obj
    [
      ("lanes", Obs_json.Int stats.lanes);
      ("n_requests", Obs_json.Int stats.n_requests);
      ("solo_service", Obs_json.Float stats.solo_service);
      ("sched_policy", Obs_json.Str stats.sched_policy);
      ( "points",
        Obs_json.List
          (List.map
             (fun p ->
               Obs_json.Obj
                 [
                   ("mode", Obs_json.Str p.mode);
                   ("policy", Obs_json.Str (Server.policy_name p.policy));
                   ("load", Obs_json.Float p.load);
                   ("offered_rate", Obs_json.Float p.offered);
                   ("completed", Obs_json.Int p.completed);
                   ("shed", Obs_json.Int p.shed);
                   ("throughput", Obs_json.Float p.throughput);
                   ("mean_occupancy", Obs_json.Float p.mean_occupancy);
                   ("mean_latency", Obs_json.Float p.mean_latency);
                   ("p50", Obs_json.Float p.p50);
                   ("p95", Obs_json.Float p.p95);
                   ("p99", Obs_json.Float p.p99);
                   ("makespan", Obs_json.Float p.makespan);
                   ("latency_hist", p.latency_hist);
                 ])
             stats.points) );
    ]

let print stats =
  Printf.printf
    "Serving: %d requests through %d recyclable lanes (solo service %.1f \
     clock units; load 1.0 = saturation)\n"
    stats.n_requests stats.lanes stats.solo_service;
  Table.print_stdout
    ~header:
      [
        "mode"; "policy"; "load"; "done"; "shed"; "thrpt"; "occ"; "p50"; "p95";
        "p99";
      ]
    ~rows:
      (List.map
         (fun p ->
           [
             p.mode;
             Server.policy_name p.policy;
             Printf.sprintf "%.2f" p.load;
             string_of_int p.completed;
             string_of_int p.shed;
             Printf.sprintf "%.4f" p.throughput;
             Printf.sprintf "%.3f" p.mean_occupancy;
             Printf.sprintf "%.0f" p.p50;
             Printf.sprintf "%.0f" p.p95;
             Printf.sprintf "%.0f" p.p99;
           ])
         stats.points)
