(** Serving experiment: stream NUTS sampling requests through the
    continuous-batching server and measure what lane recycling buys.

    Each request is a single NUTS chain on the correlated-Gaussian test
    problem with a randomized trajectory count, so service times genuinely
    vary — the regime where a synchronous fixed batch pays the
    wait-for-slowest tax (Figure 6) and continuous refill does not.

    Two load generators: open-loop Poisson arrivals at a rate calibrated
    so load 1.0 saturates the device ([rate = load * lanes /
    solo_service]), and a closed loop of [closed_clients] clients that
    each issue a fresh request on completion. Every policy sees the same
    trace at the same load, so comparisons are paired. *)

type point = {
  mode : string;  (** ["open"] or ["closed"] *)
  policy : Server.policy;
  load : float;  (** offered load as a fraction of device capacity *)
  offered : float;  (** requests per clock unit (closed loop: measured) *)
  completed : int;
  shed : int;
  throughput : float;  (** completions per clock unit *)
  mean_occupancy : float;  (** mean live-lane fraction *)
  mean_latency : float;
  p50 : float;
  p95 : float;
  p99 : float;  (** total (queueing + service) latency percentiles *)
  makespan : float;
  latency_hist : Obs_json.t;
      (** log-bucketed total-latency summary ({!Obs_metrics.hist_to_json}):
          count/sum/mean/min/max plus p50/p90/p99 estimates *)
}

type stats = {
  lanes : int;
  n_requests : int;
  solo_service : float;
      (** mean clock units to serve one request alone — the capacity
          calibration constant *)
  sched_policy : string;
      (** the lane VM's block scheduling policy (distinct from the
          admission [policy] above) *)
  points : point list;
}

val run :
  ?dim:int ->
  ?rho:float ->
  ?lanes:int ->
  ?n_requests:int ->
  ?max_iter:int ->
  ?loads:float list ->
  ?policies:Server.policy list ->
  ?queue_depth:int ->
  ?closed_clients:int ->
  ?seed:int64 ->
  ?trace:Obs_trace.t ->
  ?sched:Sched_policy.t ->
  unit ->
  stats
(** Defaults: dim 10, rho 0.7, 8 lanes, 48 requests of 1–3 trajectories,
    loads [0.6; 0.9; 1.3], all three policies, queue depth 1024,
    [closed_clients = lanes] (0 disables the closed-loop runs). With
    [trace], every measured serving run gets its own track — VM superstep
    spans plus the request lifecycle, on the server clock (the calibration
    probes are not traced). [sched] (default [Earliest]) sets the lane
    VM's block scheduling policy for the measured runs. *)

val print : stats -> unit
val to_csv : stats -> string

val to_json : stats -> Obs_json.t
(** The whole sweep as one JSON object, each point carrying its
    latency histogram — the payload of [experiments serve --json]. *)
