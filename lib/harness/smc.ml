(* Sequential Monte Carlo (bootstrap particle filter) on a 1-D
   linear-Gaussian state-space model, with host-side multinomial
   resampling implemented through the S20 lane-migration seam.

   The per-step transition + weighting program is *elaborated from the
   handler DSL* (Eff.run under the seed interpretation): the latent
   transition is drawn through the counter-based RNG primitives and the
   observation site becomes the incremental log weight. Because the
   model is linear-Gaussian, the Kalman filter gives the exact log
   marginal likelihood the particle estimate must approach — the
   closed-form gate for [bench eff]. *)

type params = {
  a : float;  (** transition coefficient *)
  q_sd : float;  (** transition noise sd *)
  r_sd : float;  (** observation noise sd *)
}

let default_params = { a = 0.9; q_sd = 1.; r_sd = 0.5 }

(* ---------- data + exact reference ---------- *)

let simulate_data ?(seed = 0x55CCL) ~steps p =
  let stream = Splitmix.Stream.create seed in
  let xs = Array.make steps 0. and ys = Array.make steps 0. in
  let x = ref 0. in
  for t = 0 to steps - 1 do
    x := (p.a *. !x) +. (p.q_sd *. Splitmix.Stream.normal stream);
    xs.(t) <- !x;
    ys.(t) <- !x +. (p.r_sd *. Splitmix.Stream.normal stream)
  done;
  (xs, ys)

let log_2pi = Stdlib.log (2. *. Float.pi)

(* Exact log marginal likelihood: Kalman prediction-error decomposition
   from the known initial state x_0 = 0. *)
let kalman_log_marginal p ys =
  let m = ref 0. and v = ref 0. and acc = ref 0. in
  Array.iter
    (fun y ->
      let m_pred = p.a *. !m in
      let v_pred = (p.a *. p.a *. !v) +. (p.q_sd *. p.q_sd) in
      let s = v_pred +. (p.r_sd *. p.r_sd) in
      let r = y -. m_pred in
      acc := !acc -. (0.5 *. (log_2pi +. Stdlib.log s)) -. (0.5 *. r *. r /. s);
      let k = v_pred /. s in
      m := m_pred +. (k *. r);
      v := (1. -. k) *. v_pred)
    ys;
  !acc

(* ---------- the per-step program, from the handler DSL ---------- *)

(* (x_prev, y_obs, __cnt0) -> (x, __lp, __cnt): draw the transition,
   score the observation. Every particle draws exactly one normal per
   step, so the counter advances in lockstep across the batch. *)
let step_elaborated ?(seed = 0x5EEDL) p =
  Eff.run ~seed ~fn_name:"smc_step" ~mode:`Draw ~score:`Observed (fun () ->
      let open Lang in
      let open Lang.Infix in
      let xp = Eff.param "x_prev" in
      let yv = Eff.param "y_obs" in
      let x = Eff.sample "x" (Dist.Normal (flt p.a * xp, flt p.q_sd)) in
      Eff.observe "y" (Dist.Normal (x, flt p.r_sd)) yv;
      [ x ])

(* ---------- host-side multinomial resampling ---------- *)

let logsumexp arr =
  let m = Array.fold_left Float.max Float.neg_infinity arr in
  if m = Float.neg_infinity then Float.neg_infinity
  else
    m
    +. Stdlib.log
         (Array.fold_left (fun acc v -> acc +. Stdlib.exp (v -. m)) 0. arr)

(* Multinomial ancestors by CDF inversion; draws come from a dedicated
   counter-based resampling key so the whole filter is a pure function
   of the seed. *)
let ancestors rkey ~step ~weights =
  let n = Array.length weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. weights.(i);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  Array.init n (fun i ->
      let u = total *. Counter_rng.uniform rkey ~member:i ~counter:step ~slot:0 in
      let rec find j = if j >= n - 1 || u <= cdf.(j) then j else find (j + 1) in
      find 0)

(* ---------- the filter ---------- *)

type result = {
  n_particles : int;
  steps : int;
  log_z : float;  (** particle estimate of the log marginal *)
  log_z_exact : float;  (** Kalman closed form *)
  ess_min : float;  (** worst effective sample size over steps *)
  migrations : int;  (** resampling moves with ancestor <> self *)
  migrated_bytes : float;  (** lane-state payload moved through S20 *)
  migration_seconds : float;  (** priced as p2p transfers on [mesh] *)
  bitwise : (string * bool) list;  (** jit/local/shard/lanes vs pc *)
}

let run ?(seed = 0x5EEDL) ?(n_particles = 256) ?(steps = 25)
    ?(p = default_params) ?(mesh = Mesh.gpu_pod ~n:2 ()) () =
  if n_particles < 2 then invalid_arg "Smc.run: need at least 2 particles";
  if steps < 1 then invalid_arg "Smc.run: need at least 1 step";
  let _, ys = simulate_data ~seed:(Int64.add seed 1L) ~steps p in
  let el = step_elaborated ~seed p in
  let compiled =
    Autobatch.compile ~registry:el.Eff.el_registry
      ~input_shapes:(Eff.input_shapes el) el.Eff.el_program
  in
  let jit = Autobatch.jit compiled ~batch:n_particles in
  let shard_config =
    { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:(Mesh.size mesh) () }
  in
  let rkey = Counter_rng.key (Int64.add seed 2L) in
  (* Particle state: value, per-particle draw counter, and the running
     bitwise agreement of each runtime arm against the pc baseline. *)
  let x = ref (Tensor.zeros [| n_particles |]) in
  let cnt = ref (Tensor.zeros [| n_particles |]) in
  let agree = [ "jit"; "local"; "shard"; "lanes" ] in
  let ok = Hashtbl.create 4 in
  List.iter (fun a -> Hashtbl.replace ok a true) agree;
  let log_z = ref 0. in
  let ess_min = ref (float_of_int n_particles) in
  let migrations = ref 0 in
  let migrated_bytes = ref 0. in
  let migration_seconds = ref 0. in
  let lanes_src =
    Pc_vm.Lanes.create el.Eff.el_registry compiled.Autobatch.stack
      ~z:n_particles
  in
  for t = 0 to steps - 1 do
    let yv = Tensor.full [| n_particles |] ys.(t) in
    let batch = [ !x; yv; !cnt ] in
    let pc = Autobatch.run_pc compiled ~batch in
    let note arm outs =
      if not (List.for_all2 Tensor.equal pc outs) then
        Hashtbl.replace ok arm false
    in
    note "jit" (Pc_jit.run jit ~batch);
    note "local" (Autobatch.run_local compiled ~batch);
    note "shard"
      (Autobatch.run_sharded ~config:shard_config compiled ~batch)
        .Shard_vm.outputs;
    let x_new = List.hd pc in
    let lp = List.nth pc el.Eff.el_lp_index in
    let cnt_new =
      match el.Eff.el_cnt_index with
      | Some i -> List.nth pc i
      | None -> !cnt
    in
    (* Incremental evidence and normalized weights. *)
    let lpa = Array.copy (Tensor.data lp) in
    let lse = logsumexp lpa in
    log_z := !log_z +. lse -. Stdlib.log (float_of_int n_particles);
    let w = Array.map (fun v -> Stdlib.exp (v -. lse)) lpa in
    let ess =
      1. /. Array.fold_left (fun acc v -> acc +. (v *. v)) 0. w
    in
    if ess < !ess_min then ess_min := ess;
    let anc = ancestors rkey ~step:t ~weights:w in
    (* Resampling through the lane-migration seam: run the same step on
       a lane pool, then move each surviving ancestor's complete lane
       state into the offspring's lane of a fresh pool (S20 payloads,
       priced as point-to-point transfers). Retired outputs must match
       the batched gather bitwise. *)
    let lanes_ok = ref (Hashtbl.find ok "lanes") in
    Array.iteri
      (fun lane xv ->
        Pc_vm.Lanes.load lanes_src ~lane ~member:lane
          ~inputs:
            [
              Tensor.scalar xv;
              Tensor.scalar ys.(t);
              Tensor.scalar (Tensor.data !cnt).(lane);
            ])
      (Tensor.data !x);
    while Pc_vm.Lanes.step lanes_src do () done;
    let lanes_dst =
      Pc_vm.Lanes.create el.Eff.el_registry compiled.Autobatch.stack
        ~z:n_particles
    in
    Array.iteri
      (fun i a ->
        let st = Pc_vm.Lanes.export_lane lanes_src ~lane:a in
        let bytes = Pc_vm.Lanes.lane_state_bytes st in
        if a <> i then begin
          incr migrations;
          migrated_bytes := !migrated_bytes +. bytes;
          migration_seconds :=
            !migration_seconds +. Collectives.p2p_time mesh ~bytes
        end;
        (* The offspring lane keeps its own member identity so future
           draws stay independent across duplicated ancestors. *)
        Pc_vm.Lanes.import_lane lanes_dst ~lane:i
          { st with Pc_vm.Lanes.ls_member = i })
      anc;
    Array.iteri
      (fun i a ->
        let outs = Pc_vm.Lanes.retire lanes_dst ~lane:i in
        let expect v = Tensor.item (List.nth outs 0) = v in
        if not (expect (Tensor.data x_new).(a)) then lanes_ok := false;
        ignore (List.nth outs el.Eff.el_lp_index))
      anc;
    Hashtbl.replace ok "lanes" !lanes_ok;
    (* Gather the resampled state for the next step. *)
    x := Tensor.init [| n_particles |] (fun i -> (Tensor.data x_new).(anc.(i.(0))));
    cnt := cnt_new
  done;
  {
    n_particles;
    steps;
    log_z = !log_z;
    log_z_exact = kalman_log_marginal p ys;
    ess_min = !ess_min;
    migrations = !migrations;
    migrated_bytes = !migrated_bytes;
    migration_seconds = !migration_seconds;
    bitwise = List.map (fun a -> (a, Hashtbl.find ok a)) agree;
  }

let log_z_error r = Float.abs (r.log_z -. r.log_z_exact)

let passes ?(tol = 1.0) r =
  Float.is_finite r.log_z
  && log_z_error r < tol
  && r.migrations > 0
  && List.for_all snd r.bitwise

let to_json r =
  Obs_json.Obj
    [
      ("n_particles", Obs_json.Int r.n_particles);
      ("steps", Obs_json.Int r.steps);
      ("log_z", Obs_json.Float r.log_z);
      ("log_z_exact", Obs_json.Float r.log_z_exact);
      ("log_z_error", Obs_json.Float (log_z_error r));
      ("ess_min", Obs_json.Float r.ess_min);
      ("migrations", Obs_json.Int r.migrations);
      ("migrated_bytes", Obs_json.Float r.migrated_bytes);
      ("migration_seconds", Obs_json.Float r.migration_seconds);
      ( "bitwise",
        Obs_json.Obj
          (List.map (fun (k, v) -> (k, Obs_json.Bool v)) r.bitwise) );
    ]

let print r =
  Format.printf "SMC bootstrap filter: %d particles, %d steps@." r.n_particles
    r.steps;
  Format.printf "  log Z  %.6f   (Kalman exact %.6f, error %.4f)@." r.log_z
    r.log_z_exact (log_z_error r);
  Format.printf "  min ESS %.1f@." r.ess_min;
  Format.printf "  lane migrations %d  (%.0f bytes, %.2e s simulated p2p)@."
    r.migrations r.migrated_bytes r.migration_seconds;
  List.iter
    (fun (arm, v) ->
      Format.printf "  bitwise vs pc: %-6s %s@." arm (if v then "ok" else "MISMATCH"))
    r.bitwise
