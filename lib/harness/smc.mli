(** Bootstrap particle filter on a 1-D linear-Gaussian state-space
    model — the SMC workload behind [experiments smc] and [bench eff].

    The per-step transition + weighting program is elaborated from the
    handler DSL ({!Eff.run} in the seed interpretation), compiled once,
    and run over the particle batch by every runtime. Multinomial
    resampling happens on the host from a dedicated counter-based key;
    the resampled state is additionally round-tripped through the
    DESIGN.md S20 lane-migration seam ({!Pc_vm.Lanes.export_lane} /
    [import_lane] across pools), with each ancestor<>self move priced
    as a point-to-point transfer on the mesh. The Kalman filter's exact
    log marginal likelihood is the closed-form gate. *)

type params = {
  a : float;  (** transition coefficient *)
  q_sd : float;  (** transition noise sd *)
  r_sd : float;  (** observation noise sd *)
}

val default_params : params
(** [a = 0.9], [q_sd = 1], [r_sd = 0.5]. *)

val simulate_data :
  ?seed:int64 -> steps:int -> params -> float array * float array
(** Ground-truth latent path and observations, [(xs, ys)]. *)

val kalman_log_marginal : params -> float array -> float
(** Exact [log p(y_{1..T})] by the prediction-error decomposition. *)

val step_elaborated : ?seed:int64 -> params -> Eff.elaborated
(** The one-step program [(x_prev, y_obs, cnt) -> (x, lp, cnt')]. *)

type result = {
  n_particles : int;
  steps : int;
  log_z : float;  (** particle estimate of the log marginal *)
  log_z_exact : float;  (** Kalman closed form *)
  ess_min : float;  (** worst effective sample size over steps *)
  migrations : int;  (** resampling moves with ancestor <> self *)
  migrated_bytes : float;  (** lane-state payload moved through S20 *)
  migration_seconds : float;  (** priced as p2p transfers on [mesh] *)
  bitwise : (string * bool) list;  (** jit/local/shard/lanes vs pc *)
}

val run :
  ?seed:int64 ->
  ?n_particles:int ->
  ?steps:int ->
  ?p:params ->
  ?mesh:Mesh.t ->
  unit ->
  result
(** Run the filter (defaults: 256 particles, 25 steps, 2-device GPU
    mesh for migration pricing). Deterministic given [seed]. *)

val log_z_error : result -> float

val passes : ?tol:float -> result -> bool
(** The [bench eff] gate: finite estimate within [tol] (default 1.0)
    of the Kalman value, at least one migration, all runtimes bitwise
    identical to the pc baseline. *)

val to_json : result -> Obs_json.t
val print : result -> unit
