(** Fixed-width text tables for the experiment harness output. *)

val print : header:string list -> rows:string list list -> Format.formatter -> unit
(** Column widths fit the widest cell; the first column is left-aligned,
    the rest right-aligned. *)

val print_stdout : header:string list -> rows:string list list -> unit

val si : float -> string
(** Render with an SI suffix (k/M/G) at two decimals; scientific notation
    below 1. *)
