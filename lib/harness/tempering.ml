(* Parallel tempering on a well-separated 1-D Gaussian mixture.

   K chains at inverse temperatures 1 = beta_0 > ... > beta_{K-1} are
   the batch members of one elaborated sweep program (a fixed number of
   random-walk Metropolis steps against the tempered target, unrolled
   from the handler DSL with data-dependent accept/reject branches).
   Between sweeps the host attempts even-odd replica exchanges from a
   dedicated counter-based key; each accepted exchange moves two chain
   states between mesh devices and is priced as point-to-point
   transfers, and the per-round cold-chain collection is priced as an
   all-gather ({!Collectives}).

   The mixture's moments are closed-form (E[x] = 0, E[x^2] = 1 +
   mu0^2), which gates the cold chain; without exchanges the cold chain
   stays in one mode, so mode balance is the tempering-specific gate. *)

type config = {
  mu0 : float;  (** mode offset: 0.5 N(-mu0,1) + 0.5 N(mu0,1) *)
  chains : int;
  beta_min : float;  (** coldest-to-hottest geometric ladder floor *)
  sweep_steps : int;  (** RWM steps per elaborated sweep *)
  rounds : int;
  base_step : float;  (** RWM step sd at beta = 1 (scaled by 1/sqrt beta) *)
}

let default_config =
  { mu0 = 3.; chains = 8; beta_min = 0.12; sweep_steps = 10; rounds = 400;
    base_step = 2.4 }

let betas c =
  let r =
    if c.chains = 1 then 1.
    else c.beta_min ** (1. /. float_of_int (c.chains - 1))
  in
  Array.init c.chains (fun k -> r ** float_of_int k)

(* Unnormalized mixture log density (constants cancel everywhere this
   is used: acceptance ratios and exchange deltas). *)
let logpi c x =
  let a = -0.5 *. (x +. c.mu0) *. (x +. c.mu0)
  and b = -0.5 *. (x -. c.mu0) *. (x -. c.mu0) in
  let m = Float.max a b in
  m +. Stdlib.log1p (Stdlib.exp (Float.min a b -. m))

let second_moment c = 1. +. (c.mu0 *. c.mu0)

(* ---------- the sweep program, from the handler DSL ---------- *)

(* (x, beta, step, __cnt0) -> (x', __lp, __cnt): [sweep_steps] RWM
   steps, each drawing one proposal normal and one acceptance uniform
   (two counter ticks), with the accept/reject as an elaborated If. *)
let sweep_elaborated ?(seed = 0x7E4BL) c =
  Eff.run ~seed ~fn_name:"pt_sweep" ~mode:`Draw ~score:`None (fun () ->
      let open Lang in
      let open Lang.Infix in
      let logpi_e x =
        prim "logaddexp"
          [
            flt (-0.5) * prim "square" [ x + flt c.mu0 ];
            flt (-0.5) * prim "square" [ x - flt c.mu0 ];
          ]
      in
      let x0 = Eff.param "x" in
      let beta = Eff.param "beta" in
      let step = Eff.param "step" in
      let rec go x i =
        if Int.equal i c.sweep_steps then x
        else
          let nm = Printf.sprintf "%d" i in
          let eps =
            Eff.sample ("eps" ^ nm) (Dist.Normal (flt 0., flt 1.))
          in
          let u = Eff.sample ("u" ^ nm) Dist.Uniform in
          let prop = Eff.det ("prop" ^ nm) (x + (step * eps)) in
          let accept = prim "log" [ u ] < (beta * (logpi_e prop - logpi_e x)) in
          let x' = Eff.branch accept (fun () -> prop) (fun () -> x) in
          go x' (succ i)
      in
      [ go x0 0 ])

(* ---------- the driver ---------- *)

type result = {
  config : config;
  swaps_attempted : int;
  swaps_accepted : int;
  cold_mean : float;  (** cold-chain sample mean (target: 0) *)
  cold_second_moment : float;  (** target: [second_moment c] *)
  mode_balance : float;  (** min(frac left, frac right) of cold samples *)
  exchange_seconds : float;  (** p2p pricing of accepted exchanges *)
  gather_seconds : float;  (** all-gather pricing of collection *)
  bitwise : (string * bool) list;  (** jit/local/shard vs pc *)
}

let run ?(seed = 0x7E4BL) ?(c = default_config) ?(mesh = Mesh.gpu_pod ~n:4 ())
    () =
  if c.chains < 2 then invalid_arg "Tempering.run: need at least 2 chains";
  let el = sweep_elaborated ~seed c in
  let compiled =
    Autobatch.compile ~registry:el.Eff.el_registry
      ~input_shapes:(Eff.input_shapes el) el.Eff.el_program
  in
  let jit = Autobatch.jit compiled ~batch:c.chains in
  let shard_config =
    { Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 () }
  in
  let b = betas c in
  let beta_t = Tensor.create [| c.chains |] (Array.copy b) in
  let step_t =
    Tensor.init [| c.chains |] (fun i ->
        c.base_step /. Stdlib.sqrt b.(i.(0)))
  in
  let swapkey = Counter_rng.key (Int64.add seed 3L) in
  (* Chain k starts in the left mode for even k, right for odd — both
     modes are populated from the first round. *)
  let x = ref (Tensor.init [| c.chains |] (fun i ->
      if i.(0) mod 2 = 0 then -.c.mu0 else c.mu0))
  in
  let cnt = ref (Tensor.zeros [| c.chains |]) in
  let agree = [ "jit"; "local"; "shard" ] in
  let ok = Hashtbl.create 4 in
  List.iter (fun a -> Hashtbl.replace ok a true) agree;
  let attempted = ref 0 and accepted = ref 0 in
  let exchange_seconds = ref 0. and gather_seconds = ref 0. in
  let collect_from = c.rounds / 2 in
  let cold = ref [] in
  let device k = k mod Mesh.size mesh in
  for round = 0 to c.rounds - 1 do
    let batch = [ !x; beta_t; step_t; !cnt ] in
    let pc = Autobatch.run_pc compiled ~batch in
    let note arm outs =
      if not (List.for_all2 Tensor.equal pc outs) then
        Hashtbl.replace ok arm false
    in
    note "jit" (Pc_jit.run jit ~batch);
    note "local" (Autobatch.run_local compiled ~batch);
    note "shard"
      (Autobatch.run_sharded ~config:shard_config compiled ~batch)
        .Shard_vm.outputs;
    let xs = Array.copy (Tensor.data (List.hd pc)) in
    (match el.Eff.el_cnt_index with
    | Some i -> cnt := List.nth pc i
    | None -> ());
    (* Even-odd replica exchange between adjacent temperatures. *)
    let first = round mod 2 in
    let k = ref first in
    while !k + 1 < c.chains do
      incr attempted;
      let lo = !k and hi = !k + 1 in
      let delta = (b.(lo) -. b.(hi)) *. (logpi c xs.(hi) -. logpi c xs.(lo)) in
      let u =
        Counter_rng.uniform swapkey ~member:lo ~counter:round ~slot:0
      in
      if Stdlib.log u < delta then begin
        incr accepted;
        let t = xs.(lo) in
        xs.(lo) <- xs.(hi);
        xs.(hi) <- t;
        if device lo <> device hi then
          exchange_seconds :=
            !exchange_seconds +. (2. *. Collectives.p2p_time mesh ~bytes:8.)
      end;
      k := !k + 2
    done;
    x := Tensor.create [| c.chains |] xs;
    (* Cold-chain collection: one all-gather of every chain's scalar
       state per round (the monitoring pattern a real PT run pays). *)
    gather_seconds :=
      !gather_seconds
      +. Collectives.all_gather_time mesh Collectives.Ring
           ~bytes:(8. *. float_of_int c.chains);
    if round >= collect_from then cold := xs.(0) :: !cold
  done;
  let cold = Array.of_list !cold in
  let n = float_of_int (Array.length cold) in
  let mean = Array.fold_left ( +. ) 0. cold /. n in
  let m2 = Array.fold_left (fun a v -> a +. (v *. v)) 0. cold /. n in
  let left = Array.fold_left (fun a v -> if v < 0. then a + 1 else a) 0 cold in
  let balance =
    Float.min (float_of_int left /. n) (1. -. (float_of_int left /. n))
  in
  {
    config = c;
    swaps_attempted = !attempted;
    swaps_accepted = !accepted;
    cold_mean = mean;
    cold_second_moment = m2;
    mode_balance = balance;
    exchange_seconds = !exchange_seconds;
    gather_seconds = !gather_seconds;
    bitwise = List.map (fun a -> (a, Hashtbl.find ok a)) agree;
  }

let passes ?(mean_tol = 1.5) ?(m2_tol = 4.) ?(min_balance = 0.1) r =
  r.swaps_accepted > 0
  && Float.abs r.cold_mean < mean_tol
  && Float.abs (r.cold_second_moment -. second_moment r.config) < m2_tol
  && r.mode_balance >= min_balance
  && List.for_all snd r.bitwise

let to_json r =
  Obs_json.Obj
    [
      ("chains", Obs_json.Int r.config.chains);
      ("rounds", Obs_json.Int r.config.rounds);
      ("swaps_attempted", Obs_json.Int r.swaps_attempted);
      ("swaps_accepted", Obs_json.Int r.swaps_accepted);
      ("cold_mean", Obs_json.Float r.cold_mean);
      ("cold_second_moment", Obs_json.Float r.cold_second_moment);
      ("second_moment_exact", Obs_json.Float (second_moment r.config));
      ("mode_balance", Obs_json.Float r.mode_balance);
      ("exchange_seconds", Obs_json.Float r.exchange_seconds);
      ("gather_seconds", Obs_json.Float r.gather_seconds);
      ( "bitwise",
        Obs_json.Obj
          (List.map (fun (k, v) -> (k, Obs_json.Bool v)) r.bitwise) );
    ]

let print r =
  Format.printf "Parallel tempering: %d chains, %d rounds@." r.config.chains
    r.config.rounds;
  Format.printf "  exchanges %d/%d accepted  (%.2e s simulated p2p)@."
    r.swaps_accepted r.swaps_attempted r.exchange_seconds;
  Format.printf "  cold chain: mean %+.3f (exact 0), E[x^2] %.3f (exact %.3f)@."
    r.cold_mean r.cold_second_moment (second_moment r.config);
  Format.printf "  mode balance %.2f  (collection all-gather %.2e s)@."
    r.mode_balance r.gather_seconds;
  List.iter
    (fun (arm, v) ->
      Format.printf "  bitwise vs pc: %-6s %s@." arm (if v then "ok" else "MISMATCH"))
    r.bitwise
