(** Parallel tempering with replica exchange — the workload behind
    [experiments temper] and part of [bench eff].

    One handler-DSL sweep program (unrolled random-walk Metropolis with
    elaborated accept/reject branches) runs all temperature chains as
    batch members; the host attempts even-odd exchanges between
    adjacent temperatures from a counter-based key, pricing accepted
    exchanges as point-to-point transfers and the per-round cold-chain
    collection as an all-gather ({!Collectives}). Gated on the
    mixture's closed-form moments and on both modes being visited. *)

type config = {
  mu0 : float;  (** mode offset: 0.5 N(-mu0,1) + 0.5 N(mu0,1) *)
  chains : int;
  beta_min : float;  (** coldest-to-hottest geometric ladder floor *)
  sweep_steps : int;  (** RWM steps per elaborated sweep *)
  rounds : int;
  base_step : float;  (** RWM step sd at beta = 1 (scaled by 1/sqrt beta) *)
}

val default_config : config
(** mu0 3, 8 chains, beta floor 0.12, 10-step sweeps, 400 rounds. *)

val betas : config -> float array
(** The geometric inverse-temperature ladder, [betas.(0) = 1]. *)

val logpi : config -> float -> float
(** Unnormalized mixture log density (host reference). *)

val second_moment : config -> float
(** Closed form: [1 + mu0^2]. *)

val sweep_elaborated : ?seed:int64 -> config -> Eff.elaborated
(** The sweep program [(x, beta, step, cnt) -> (x', lp, cnt')]. *)

type result = {
  config : config;
  swaps_attempted : int;
  swaps_accepted : int;
  cold_mean : float;  (** cold-chain sample mean (target: 0) *)
  cold_second_moment : float;  (** target: [second_moment c] *)
  mode_balance : float;  (** min(frac left, frac right) of cold samples *)
  exchange_seconds : float;  (** p2p pricing of accepted exchanges *)
  gather_seconds : float;  (** all-gather pricing of collection *)
  bitwise : (string * bool) list;  (** jit/local/shard vs pc *)
}

val run : ?seed:int64 -> ?c:config -> ?mesh:Mesh.t -> unit -> result
(** Deterministic given [seed]; chains are laid out round-robin over
    the mesh (default 4-device GPU pod) for exchange pricing. *)

val passes :
  ?mean_tol:float -> ?m2_tol:float -> ?min_balance:float -> result -> bool
(** The [bench eff] gate: exchanges happened, cold-chain moments within
    tolerance of the closed form, both modes visited, all runtimes
    bitwise identical to the pc baseline. *)

val to_json : result -> Obs_json.t
val print : result -> unit
