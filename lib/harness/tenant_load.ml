type pattern = Uniform | Bursty | Diurnal | Adversarial

let pattern_name = function
  | Uniform -> "uniform"
  | Bursty -> "bursty"
  | Diurnal -> "diurnal"
  | Adversarial -> "adversarial"

let pattern_of_string = function
  | "uniform" -> Some Uniform
  | "bursty" -> Some Bursty
  | "diurnal" -> Some Diurnal
  | "adversarial" -> Some Adversarial
  | _ -> None

type arm = {
  arm_name : string;
  completed : int;
  throttled : int;
  rejected : int;
  shed : int;
  preempted : int;
  makespan : float;
  mean_latency : float;
  p50_latency : float;
  p99_latency : float;
  p99_all : float;
  stats : Tenant_server.stats;
  metrics : Obs_metrics.t;
}

type result = {
  seed : int64;
  pattern : pattern;
  n_requests : int;
  n_tenants : int;
  n_programs : int;
  load : float;
  solo_service : float;
  hit_rate : float;
  hits : int;
  misses : int;
  evictions : int;
  verified : int;
  mismatches : int;
  fair : arm;
  baseline : arm option;
}

(* ---------- the program family ---------- *)

(* Program [k] of the family: a while loop whose body varies structurally
   with [k] — arithmetic chain depth, an optional divergent branch, an
   optional counter-based RNG draw — plus a [k]-derived constant so every
   member has a distinct {!Prog_cache} digest. Parameters are the trip
   count [n], the seed value [x], and the RNG counter [cnt] (all
   scalars). Two outputs, so retirement stacks a multi-output result. *)
let family_program ~k =
  let a = 0.125 *. float_of_int (1 + (k mod 7)) in
  let m = 1.0 -. (0.01 *. float_of_int (k mod 5)) in
  let depth = 1 + (k mod 3) in
  let use_rng = k mod 3 = 0 in
  let diverge = k mod 5 = 2 in
  let kf = 1e-3 *. float_of_int k in
  let open Lang in
  let open Lang.Infix in
  let rec chain d e =
    if Stdlib.( = ) d 0 then e
    else chain (Stdlib.( - ) d 1) ((e * flt m) + flt a)
  in
  let loop_body =
    [ assign "acc" (chain depth (var "acc")) ]
    @ (if use_rng then
         [
           assign "u" (prim "uniform" [ var "cnt" ]);
           assign "cnt" (var "cnt" + flt 1.);
           assign "acc" (var "acc" + ((var "u" - flt 0.5) * flt 0.25));
         ]
       else [])
    @ (if diverge then
         [
           if_ (var "acc" > flt 2.0)
             [ assign "acc" (var "acc" * flt 0.5) ]
             [ assign "acc" (var "acc" + flt a) ];
         ]
       else [])
    @ [ assign "i" (var "i" + flt 1.) ]
  in
  let body =
    [
      assign "i" (flt 0.);
      (* [cnt * 0] keeps the counter a live input in the RNG-free
         variants without perturbing the value (inputs are finite and
         non-negative). *)
      assign "acc" (var "x" + (var "cnt" * flt 0.) + flt kf);
      while_ (var "i" < var "n") loop_body;
      return_ [ var "acc"; var "i" ];
    ]
  in
  program ~main:"main" [ func "main" ~params:[ "n"; "x"; "cnt" ] body ]

let element_shapes = [ [||]; [||]; [||] ]

(* ---------- tenants ---------- *)

(* [rate_scale] is the whole fleet's offered cost per simulated second;
   buckets are expressed in the same cost units as [Request.cost_hint]. *)
let make_tenants ~n ~rate_scale =
  Array.init n (fun t ->
      let slo =
        if t mod 5 = 0 then Tenant.Latency_bound
        else if t mod 5 < 3 then Tenant.Throughput
        else Tenant.Best_effort
      in
      let rate, burst =
        if t mod 7 = 3 then
          (* A deliberately tight bucket: throttles under bursts. *)
          (0.05 *. rate_scale, 0.5 *. rate_scale)
        else (infinity, infinity)
      in
      let quota =
        (* One deliberately small quota: exhausts mid-trace. *)
        if t mod 13 = 6 then 600. else infinity
      in
      Tenant.make ~slo ~rate ~burst ~quota ~id:t
        ~name:(Printf.sprintf "tenant-%02d" t)
        ())

(* ---------- Zipf popularity ---------- *)

let zipf_cdf ~n ~s =
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** s)) in
  let tot = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. (x /. tot);
      !acc)
    w

let sample_cdf stream cdf =
  let u = Splitmix.Stream.uniform stream in
  let n = Array.length cdf in
  let i = ref 0 in
  while !i < n - 1 && u > cdf.(!i) do
    incr i
  done;
  !i

(* ---------- the trace source ---------- *)

(* Everything about request [i] is a pure function of ([seed], [i]) and
   the running arrival clock, so both arms regenerate the identical
   trace from their own source (their caches differ only in physical
   identity, never in digests). *)
let make_source ~seed ~pattern ~rate ~n_requests ~tenants ~n_programs ~cache
    ~max_width ~burst_every ~burst_len ~period ?(clock = ref 0.) () =
  let stream = Splitmix.Stream.create seed in
  let n_tenants = Array.length tenants in
  let cdf = zipf_cdf ~n:n_tenants ~s:1.1 in
  let be_idx =
    Array.of_list
      (List.filter
         (fun t -> tenants.(t).Tenant.slo = Tenant.Best_effort)
         (List.init n_tenants Fun.id))
  in
  let be_cdf = zipf_cdf ~n:(Array.length be_idx) ~s:1.1 in
  let compiled_of prog =
    fst (Prog_cache.find_or_compile cache ~input_shapes:element_shapes prog)
  in
  let next_id = ref 0 in
  let next () =
    if !next_id >= n_requests then None
    else begin
      let i = !next_id in
      incr next_id;
      let in_burst = Float.rem !clock burst_every < burst_len in
      let inst_rate =
        match pattern with
        | Uniform -> rate
        | Bursty | Adversarial -> if in_burst then 8. *. rate else rate
        | Diurnal ->
          rate *. (1. +. (0.9 *. sin (2. *. Float.pi *. !clock /. period)))
      in
      clock := !clock +. Splitmix.Stream.exponential stream ~rate:inst_rate;
      let flooding =
        in_burst && (pattern = Bursty || pattern = Adversarial)
        && Array.length be_idx > 0
      in
      let tenant_id =
        if flooding then be_idx.(sample_cdf stream be_cdf)
        else sample_cdf stream cdf
      in
      let tenant = tenants.(tenant_id) in
      let busting =
        pattern = Adversarial && Splitmix.Stream.uniform stream < 0.05
      in
      let prog =
        if busting then family_program ~k:(n_programs + 1000 + i)
        else family_program ~k:(tenant_id mod n_programs)
      in
      let width =
        let d = Splitmix.Stream.int_below stream 12 in
        let w = if d < 8 then 1 else if d < 11 then 2 else 4 in
        min w max_width
      in
      let n_iter = 4 + Splitmix.Stream.int_below stream 17 in
      let x0 = 0.25 +. (0.5 *. Splitmix.Stream.uniform stream) in
      let rows v = Tensor.stack_rows (List.init width (fun _ -> Tensor.scalar v)) in
      let xs =
        Tensor.stack_rows
          (List.init width (fun j ->
               Tensor.scalar (x0 +. (0.01 *. float_of_int j))))
      in
      let inputs = [ rows (float_of_int n_iter); xs; rows 0. ] in
      let compiled = compiled_of prog in
      let digest = Prog_cache.digest ~input_shapes:element_shapes prog in
      let request =
        Request.make ~id:i ~member:(i * 8) ~arrival:!clock
          ~cost_hint:(float_of_int n_iter) ~program:compiled ~inputs ()
      in
      Some { Admission.tenant; request; digest }
    end
  in
  Tenant_server.source_of_fun next

(* ---------- solo reference ---------- *)

let bitwise_eq a b =
  Tensor.shape a = Tensor.shape b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       (Tensor.data a) (Tensor.data b)

(* The serving layer's contract, restated end-to-end: the outputs of a
   completion equal running the request alone with [member_base] at its
   member — whatever admission, preemption, migration, scaling, or
   injected kills happened in between. *)
let matches_solo (c : Tenant_server.completion) =
  match c.Tenant_server.c_outputs with
  | None -> true
  | Some outs ->
    let r = c.Tenant_server.c_item.Admission.request in
    let solo =
      Autobatch.run_pc
        ~config:{ Pc_vm.default_config with Pc_vm.member_base = r.Request.member }
        r.Request.program ~batch:r.Request.inputs
    in
    List.length solo = List.length outs && List.for_all2 bitwise_eq solo outs

(* ---------- percentiles ---------- *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else
    let k = int_of_float (Float.ceil (q /. 100. *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) k))

let latencies ?slo (s : Tenant_server.stats) =
  let keep c =
    match slo with
    | None -> true
    | Some slo -> Admission.item_slo c.Tenant_server.c_item = slo
  in
  let lat =
    List.filter_map
      (fun c ->
        if keep c then
          Some
            (c.Tenant_server.c_finished
            -. c.Tenant_server.c_item.Admission.request.Request.arrival)
        else None)
      s.Tenant_server.completions
    |> Array.of_list
  in
  Array.sort compare lat;
  lat

(* ---------- experiment ---------- *)

let run ?(seed = 0x7E47L) ?(pattern = Bursty) ?(n_requests = 2000)
    ?(n_tenants = 24) ?(n_programs = 8) ?cache_capacity ?(load = 0.35)
    ?(mesh_size = 4) ?(lanes_per_shard = 8) ?(checkpoint_interval = 16)
    ?(kill_round = 40) ?(baseline = true) ?(verify = true) ?keep_outputs
    ?sink ?slo ?(slo_drive = false) () =
  let cache_capacity =
    match cache_capacity with Some c -> c | None -> n_programs
  in
  let mesh = Mesh.gpu_pod ~n:mesh_size () in
  (* Calibrate one unit of load to solo capacity, {!Serving}-style: run
     one mid-size probe request on a one-lane, one-shard pool. *)
  let solo_service =
    let cache = Prog_cache.create ~capacity:2 () in
    let prog = family_program ~k:0 in
    let compiled, _ = Prog_cache.find_or_compile cache ~input_shapes:element_shapes prog in
    let digest = Prog_cache.digest ~input_shapes:element_shapes prog in
    let request =
      Request.make ~id:0 ~member:0 ~cost_hint:12.
        ~program:compiled
        ~inputs:
          [
            Tensor.stack_rows [ Tensor.scalar 12. ];
            Tensor.stack_rows [ Tensor.scalar 0.5 ];
            Tensor.stack_rows [ Tensor.scalar 0. ];
          ]
        ()
    in
    let tenant = Tenant.make ~id:0 ~name:"probe" () in
    let cfg =
      {
        (Tenant_server.default_config ~mesh:(Mesh.gpu_pod ~n:1 ())) with
        Tenant_server.lanes_per_shard = 1;
        checkpoint_interval = 0;
      }
    in
    let s =
      Tenant_server.run ~config:cfg
        (Tenant_server.source_of_list [ { Admission.tenant; request; digest } ])
    in
    Float.max s.Tenant_server.makespan 1e-12
  in
  let capacity_lanes = mesh_size * lanes_per_shard in
  (* [rate] is requests per simulated second; requests average 12 cost
     units, and a lane serves one request per [solo_service]. *)
  let rate = load *. float_of_int capacity_lanes /. solo_service in
  let rate_scale = rate *. 12. in
  let burst_every = 40. /. rate in
  let burst_len = 10. /. rate in
  let period = 120. /. rate in
  let faults =
    if kill_round < 0 then []
    else [ { Fault.superstep = kill_round; device = 0; kind = Fault.Device_kill } ]
  in
  let keep_outputs = Option.value ~default:verify keep_outputs in
  let run_arm ~arm_name ~admission ~preempt ~faults ~observed =
    let tenants = make_tenants ~n:n_tenants ~rate_scale in
    (* Observability rides on the fair arm only: the baseline stays a
       clean pair, and the cache's hit/miss/compile instants are stamped
       with the trace clock at generation time. *)
    let arm_sink = if observed then sink else None in
    let trace_clock = ref 0. in
    let cache =
      Prog_cache.create ?sink:arm_sink
        ~clock:(fun () -> !trace_clock)
        ~capacity:cache_capacity ()
    in
    let source =
      make_source ~seed ~pattern ~rate ~n_requests ~tenants ~n_programs ~cache
        ~max_width:(min 4 lanes_per_shard) ~burst_every ~burst_len ~period
        ~clock:trace_clock ()
    in
    let metrics = Obs_metrics.create () in
    let config =
      {
        (Tenant_server.default_config ~mesh) with
        Tenant_server.lanes_per_shard;
        admission;
        preempt;
        checkpoint_interval;
        faults;
        keep_outputs;
        metrics = Some metrics;
        sink = arm_sink;
        slo = (if observed then slo else None);
        slo_drive;
      }
    in
    let stats = Tenant_server.run ~config source in
    let lat_all = latencies stats in
    let lat_lb = latencies ~slo:Tenant.Latency_bound stats in
    let completed = Array.length lat_all in
    ( {
        arm_name;
        completed;
        throttled = List.length stats.Tenant_server.throttled;
        rejected = List.length stats.Tenant_server.rejected;
        shed = List.length stats.Tenant_server.shed;
        preempted =
          List.length
            (List.filter
               (fun c -> c.Tenant_server.c_preempted > 0)
               stats.Tenant_server.completions);
        makespan = stats.Tenant_server.makespan;
        mean_latency =
          (if completed = 0 then Float.nan
           else Array.fold_left ( +. ) 0. lat_all /. float_of_int completed);
        p50_latency = percentile lat_lb 50.;
        p99_latency = percentile lat_lb 99.;
        p99_all = percentile lat_all 99.;
        stats;
        metrics;
      },
      cache )
  in
  let fair, fair_cache =
    run_arm ~arm_name:"fair" ~admission:Admission.default ~preempt:true ~faults
      ~observed:true
  in
  let baseline =
    if not baseline then None
    else
      (* The no-admission arm: one SLO-blind FIFO, no preemption, same
         trace, same injected kill — fully paired. *)
      Some
        (fst
           (run_arm ~arm_name:"fifo" ~admission:(Admission.fifo ()) ~preempt:false
              ~faults ~observed:false))
  in
  let verified, mismatches =
    if not verify then (0, 0)
    else
      List.fold_left
        (fun (v, m) c -> (v + 1, if matches_solo c then m else m + 1))
        (0, 0) fair.stats.Tenant_server.completions
  in
  {
    seed;
    pattern;
    n_requests;
    n_tenants;
    n_programs;
    load;
    solo_service;
    hit_rate = Prog_cache.hit_rate fair_cache;
    hits = Prog_cache.hits fair_cache;
    misses = Prog_cache.misses fair_cache;
    evictions = Prog_cache.evictions fair_cache;
    verified;
    mismatches;
    fair;
    baseline;
  }

(* ---------- reporting ---------- *)

let arm_to_json a =
  let s = a.stats in
  Obs_json.Obj
    [
      ("name", Obs_json.Str a.arm_name);
      ("completed", Obs_json.Int a.completed);
      ("throttled", Obs_json.Int a.throttled);
      ("rejected", Obs_json.Int a.rejected);
      ("shed", Obs_json.Int a.shed);
      ("preempted_completions", Obs_json.Int a.preempted);
      ("makespan", Obs_json.Float a.makespan);
      ("mean_latency", Obs_json.Float a.mean_latency);
      ("p50_latency_bound", Obs_json.Float a.p50_latency);
      ("p99_latency_bound", Obs_json.Float a.p99_latency);
      ("p99_all", Obs_json.Float a.p99_all);
      ("rounds", Obs_json.Int s.Tenant_server.rounds);
      ("preemptions", Obs_json.Int s.Tenant_server.preemptions);
      ("resumes", Obs_json.Int s.Tenant_server.resumes);
      ("migrations", Obs_json.Int s.Tenant_server.migrations);
      ("binds", Obs_json.Int s.Tenant_server.binds);
      ("rebinds", Obs_json.Int s.Tenant_server.rebinds);
      ("grows", Obs_json.Int s.Tenant_server.grows);
      ("shrinks", Obs_json.Int s.Tenant_server.shrinks);
      ("checkpoints", Obs_json.Int s.Tenant_server.checkpoints);
      ("restores", Obs_json.Int s.Tenant_server.restores);
      ("wasted_rounds", Obs_json.Int s.Tenant_server.wasted_rounds);
      ("peak_active_shards", Obs_json.Int s.Tenant_server.peak_active);
      ("metrics", Obs_metrics.to_json a.metrics);
    ]

let to_json r =
  Obs_report.document ~name:"tenant_load"
    ([
       ("seed", Obs_json.Str (Int64.to_string r.seed));
       ("pattern", Obs_json.Str (pattern_name r.pattern));
       ("n_requests", Obs_json.Int r.n_requests);
       ("n_tenants", Obs_json.Int r.n_tenants);
       ("n_programs", Obs_json.Int r.n_programs);
       ("load", Obs_json.Float r.load);
       ("solo_service", Obs_json.Float r.solo_service);
       ("cache_hit_rate", Obs_json.Float r.hit_rate);
       ("cache_hits", Obs_json.Int r.hits);
       ("cache_misses", Obs_json.Int r.misses);
       ("cache_evictions", Obs_json.Int r.evictions);
       ("verified", Obs_json.Int r.verified);
       ("mismatches", Obs_json.Int r.mismatches);
       ("fair", arm_to_json r.fair);
     ]
    @ match r.baseline with
      | Some b -> [ ("baseline", arm_to_json b) ]
      | None -> [])

let print_arm a =
  Printf.printf
    "  %-6s completed %5d  throttled %4d  rejected %4d  shed %4d  preempted \
     %4d\n"
    a.arm_name a.completed a.throttled a.rejected a.shed a.preempted;
  Printf.printf
    "         makespan %10.4g  mean %10.4g  lb-p50 %10.4g  lb-p99 %10.4g  \
     p99 %10.4g\n"
    a.makespan a.mean_latency a.p50_latency a.p99_latency a.p99_all;
  Printf.printf
    "         grows %d  shrinks %d  binds %d  rebinds %d  migrations %d  \
     preemptions %d  resumes %d  ckpts %d  restores %d\n"
    a.stats.Tenant_server.grows a.stats.Tenant_server.shrinks
    a.stats.Tenant_server.binds a.stats.Tenant_server.rebinds
    a.stats.Tenant_server.migrations a.stats.Tenant_server.preemptions
    a.stats.Tenant_server.resumes a.stats.Tenant_server.checkpoints
    a.stats.Tenant_server.restores

let print_table r =
  Printf.printf
    "tenant load: %d requests, %d tenants, %d programs, %s arrivals, load \
     %.2f (solo %.4g)\n"
    r.n_requests r.n_tenants r.n_programs (pattern_name r.pattern) r.load
    r.solo_service;
  Printf.printf "cache: hit rate %.4f (%d hits / %d misses / %d evictions)\n"
    r.hit_rate r.hits r.misses r.evictions;
  Printf.printf "solo equivalence: %d verified, %d mismatches\n" r.verified
    r.mismatches;
  print_arm r.fair;
  match r.baseline with
  | Some b ->
    print_arm b;
    if Float.is_finite b.p99_latency && Float.is_finite r.fair.p99_latency
       && r.fair.p99_latency > 0.
    then
      Printf.printf "latency-bound p99 improvement: %.2fx\n"
        (b.p99_latency /. r.fair.p99_latency)
  | None -> ()
