(** Multi-tenant load experiment: a seeded open-loop request generator
    (bursty, diurnal, or adversarial; Zipf-popular tenants) driven
    through {!Tenant_server}, paired against a no-admission FIFO
    baseline on the identical trace.

    The generator is streaming — requests materialize one at a time from
    a pull source, so million-request sweeps hold O(tenants) state — and
    purely seeded: the same [seed] regenerates bitwise the same trace
    for both arms, which is what makes the arms paired and the whole
    experiment replayable under [--seed].

    Programs come from a small structurally-varied family of
    while-loop programs (distinct constants, chain depths, divergent
    branches, and RNG use), compiled on demand through {!Prog_cache} —
    tenant popularity is Zipf and each tenant pins one family member, so
    the digest stream is Zipf too and the cache's hit rate is the
    experiment's cache readout. The adversarial pattern additionally
    floods best-effort traffic and sprinkles cache-busting one-off
    programs.

    Every kept completion is verified bitwise against
    {!Autobatch.run_pc} with [member_base] set to the request's member —
    the solo reference — so admission, preemption, migration,
    autoscaling, and injected device kills are all covered by the same
    equivalence check the serving layer already makes. *)

val family_program : k:int -> Lang.program
(** Member [k] of the structurally-varied program family (tests and the
    bench gate build requests from it directly). Parameters [n; x; cnt],
    all scalar; two outputs. *)

val element_shapes : Shape.t list
(** The family's element input shapes ([ [||]; [||]; [||] ]). *)

val matches_solo : Tenant_server.completion -> bool
(** [true] when the completion's outputs are bitwise-identical to
    {!Autobatch.run_pc} run alone with [member_base] at the request's
    member (vacuously true when outputs were not kept). The bench gate
    and the property tests both lean on this. *)

type pattern = Uniform | Bursty | Diurnal | Adversarial

val pattern_name : pattern -> string
val pattern_of_string : string -> pattern option

(** One serving arm's readout. *)
type arm = {
  arm_name : string;
  completed : int;
  throttled : int;
  rejected : int;
  shed : int;
  preempted : int;  (** completions that were parked at least once *)
  makespan : float;
  mean_latency : float;
  p50_latency : float;   (** latency-bound class, total latency *)
  p99_latency : float;   (** latency-bound class, total latency *)
  p99_all : float;       (** all classes *)
  stats : Tenant_server.stats;
  metrics : Obs_metrics.t;
}

type result = {
  seed : int64;
  pattern : pattern;
  n_requests : int;
  n_tenants : int;
  n_programs : int;
  load : float;
  solo_service : float;  (** calibration constant, like {!Serving} *)
  hit_rate : float;      (** fair arm's program-cache hit rate *)
  hits : int;
  misses : int;
  evictions : int;
  verified : int;        (** completions compared bitwise to solo *)
  mismatches : int;      (** must be 0 *)
  fair : arm;
  baseline : arm option; (** FIFO admission, preemption off *)
}

val run :
  ?seed:int64 ->
  ?pattern:pattern ->
  ?n_requests:int ->
  ?n_tenants:int ->
  ?n_programs:int ->
  ?cache_capacity:int ->
  ?load:float ->
  ?mesh_size:int ->
  ?lanes_per_shard:int ->
  ?checkpoint_interval:int ->
  ?kill_round:int ->
  ?baseline:bool ->
  ?verify:bool ->
  ?keep_outputs:bool ->
  ?sink:Obs_sink.t ->
  ?slo:Obs_slo.t ->
  ?slo_drive:bool ->
  unit ->
  result
(** Defaults: seed [0x7E47L], [Bursty], 2000 requests, 24 tenants, an
    8-program family, cache capacity [n_programs] (so steady state is
    all hits and the cold misses bound the rate), base load 0.35 with 8x
    best-effort burst floods (transient overload, so the admission
    ladder, preemption, and the pool all engage), a 4-device mesh with
    8 lanes per shard, checkpoints every 16 rounds, one device kill at
    round [kill_round] (default 40; pass a negative round for none),
    baseline arm on, bitwise verification on (against
    {!Autobatch.run_pc} solo; turn off for million-request sweeps, which
    should also turn off [keep_outputs] — {!run} does this
    automatically when [verify] is false; pass [keep_outputs] explicitly
    to override, e.g. [~verify:false ~keep_outputs:true] for bitwise
    sink-on/off comparisons without the solo re-runs).

    [sink], [slo], and [slo_drive] attach to the {e fair arm only} (the
    baseline stays a clean pair): [sink] receives the fair server's full
    event stream — spans included — plus the program cache's
    hit/miss/compile instants stamped with the trace clock; [slo] is a
    caller-owned {!Obs_slo} monitor wired into the fair server;
    [slo_drive] (default off) lets it steer the admission ladder.
    Attaching [sink] or [slo] without [slo_drive] leaves outputs and the
    simulated clock bitwise unchanged. *)

val to_json : result -> Obs_json.t
val print_table : result -> unit
