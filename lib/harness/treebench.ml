(* Decision-tree inference: pure control flow, no arithmetic to hide
   behind. A random binary tree of threshold tests elaborates through
   the handler DSL's [Eff.branch] into nested IR [If] statements; a
   batch of random inputs then takes a different path through the tree
   in every lane — the divergence-stress benchmark for the batching
   runtimes, gated bitwise against direct host evaluation. *)

type tree =
  | Leaf of float
  | Node of { feature : int; threshold : float; lo : tree; hi : tree }

let rec depth = function
  | Leaf _ -> 0
  | Node { lo; hi; _ } -> 1 + Stdlib.max (depth lo) (depth hi)

let rec leaves = function
  | Leaf _ -> 1
  | Node { lo; hi; _ } -> leaves lo + leaves hi

(* A random full tree: features and thresholds from the stream, leaf
   values distinct so path mix-ups cannot cancel. *)
let random_tree ?(seed = 0x73EEL) ~depth:d ~n_features () =
  if d < 1 then invalid_arg "Treebench.random_tree: depth must be positive";
  if n_features < 1 then
    invalid_arg "Treebench.random_tree: need at least one feature";
  let stream = Splitmix.Stream.create seed in
  let next_leaf = ref 0 in
  let rec build lvl =
    if lvl = 0 then begin
      incr next_leaf;
      Leaf (float_of_int !next_leaf +. (0.5 *. Splitmix.Stream.uniform stream))
    end
    else
      let feature = Splitmix.Stream.int_below stream n_features in
      let threshold = 2. *. (Splitmix.Stream.uniform stream -. 0.5) in
      let lo = build (lvl - 1) in
      let hi = build (lvl - 1) in
      Node { feature; threshold; lo; hi }
  in
  build d

let rec eval tree x =
  match tree with
  | Leaf v -> v
  | Node { feature; threshold; lo; hi } ->
    if x.(feature) < threshold then eval lo x else eval hi x

(* ---------- elaboration ---------- *)

(* (x : [n_features]) -> (value, __lp): every internal node becomes an
   [Eff.branch] — an IR If whose arms assign a shared fresh variable. *)
let elaborated ?(seed = 0x73EEL) ~n_features tree =
  Eff.run ~seed ~fn_name:"tree" ~mode:`Bind ~score:`None (fun () ->
      let open Lang in
      let open Lang.Infix in
      let x = Eff.param ~shape:[| n_features |] "x" in
      let rec go = function
        | Leaf v -> flt v
        | Node { feature; threshold; lo; hi } ->
          Eff.branch
            (prim "index" [ x; flt (float_of_int feature) ] < flt threshold)
            (fun () -> go lo)
            (fun () -> go hi)
      in
      [ go tree ])

(* ---------- the benchmark ---------- *)

type result = {
  depth : int;
  n_features : int;
  z : int;
  supersteps : int;  (** lane-pool basic blocks to drain the batch *)
  distinct_leaves : int;  (** paths actually taken by the batch *)
  bitwise : (string * bool) list;  (** pc/jit/local/shard/lanes vs host *)
}

let run ?(seed = 0x73EEL) ?(depth = 6) ?(n_features = 8) ?(z = 64) () =
  let tree = random_tree ~seed ~depth ~n_features () in
  let el = elaborated ~seed ~n_features tree in
  let compiled =
    Autobatch.compile ~registry:el.Eff.el_registry
      ~input_shapes:(Eff.input_shapes el) el.Eff.el_program
  in
  let stream = Splitmix.Stream.create (Int64.add seed 9L) in
  let inputs =
    Array.init z (fun _ ->
        Array.init n_features (fun _ ->
            2. *. (Splitmix.Stream.uniform stream -. 0.5)))
  in
  let expected = Tensor.init [| z |] (fun i -> eval tree inputs.(i.(0))) in
  let distinct = Hashtbl.create 16 in
  Array.iter (fun x -> Hashtbl.replace distinct (eval tree x) ()) inputs;
  let batch =
    [ Tensor.init [| z; n_features |] (fun i -> inputs.(i.(0)).(i.(1))) ]
  in
  let value outs = List.hd outs in
  let check outs = Tensor.equal (value outs) expected in
  let pc = Autobatch.run_pc compiled ~batch in
  let jit = Pc_jit.run (Autobatch.jit compiled ~batch:z) ~batch in
  let local = Autobatch.run_local compiled ~batch in
  let shard =
    (Autobatch.run_sharded
       ~config:{ Shard_vm.default_config with mesh = Mesh.gpu_pod ~n:2 () }
       compiled ~batch)
      .Shard_vm.outputs
  in
  (* The lane pool exposes the superstep count: how many basic blocks
     the scheduler needed to drain all the divergent paths. *)
  let lanes =
    Pc_vm.Lanes.create el.Eff.el_registry compiled.Autobatch.stack ~z
  in
  Array.iteri
    (fun lane x ->
      Pc_vm.Lanes.load lanes ~lane ~member:lane
        ~inputs:[ Tensor.create [| n_features |] (Array.copy x) ])
    inputs;
  while Pc_vm.Lanes.step lanes do () done;
  let lane_vals =
    Tensor.init [| z |] (fun i ->
        Tensor.item (value (Pc_vm.Lanes.retire lanes ~lane:i.(0))))
  in
  {
    depth;
    n_features;
    z;
    supersteps = Pc_vm.Lanes.steps lanes;
    distinct_leaves = Hashtbl.length distinct;
    bitwise =
      [
        ("pc", check pc);
        ("jit", check jit);
        ("local", check local);
        ("shard", check shard);
        ("lanes", Tensor.equal lane_vals expected);
      ];
  }

let passes r = r.distinct_leaves > 1 && List.for_all snd r.bitwise

let to_json r =
  Obs_json.Obj
    [
      ("depth", Obs_json.Int r.depth);
      ("n_features", Obs_json.Int r.n_features);
      ("z", Obs_json.Int r.z);
      ("supersteps", Obs_json.Int r.supersteps);
      ("distinct_leaves", Obs_json.Int r.distinct_leaves);
      ( "bitwise",
        Obs_json.Obj
          (List.map (fun (k, v) -> (k, Obs_json.Bool v)) r.bitwise) );
    ]

let print r =
  Format.printf "Decision tree: depth %d, %d features, batch %d@." r.depth
    r.n_features r.z;
  Format.printf "  %d distinct leaves taken; %d supersteps to drain@."
    r.distinct_leaves r.supersteps;
  List.iter
    (fun (arm, v) ->
      Format.printf "  bitwise vs host eval: %-6s %s@." arm
        (if v then "ok" else "MISMATCH"))
    r.bitwise
