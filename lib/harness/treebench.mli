(** Decision-tree inference — pure control flow elaborated through
    {!Eff.branch} into nested IR [If]s; the divergence-stress workload
    behind [experiments tree] and part of [bench eff].

    A random full binary tree of threshold tests is elaborated once; a
    batch of random feature vectors then takes a different root-to-leaf
    path in every lane. Every runtime is gated bitwise against direct
    host evaluation of the same tree. *)

type tree =
  | Leaf of float
  | Node of { feature : int; threshold : float; lo : tree; hi : tree }

val depth : tree -> int
val leaves : tree -> int

val random_tree : ?seed:int64 -> depth:int -> n_features:int -> unit -> tree
(** A random full tree with distinct leaf values. *)

val eval : tree -> float array -> float
(** Direct host evaluation — the reference. *)

val elaborated : ?seed:int64 -> n_features:int -> tree -> Eff.elaborated
(** The program [(x : [n_features]) -> (value, lp)]. *)

type result = {
  depth : int;
  n_features : int;
  z : int;
  supersteps : int;  (** lane-pool basic blocks to drain the batch *)
  distinct_leaves : int;  (** paths actually taken by the batch *)
  bitwise : (string * bool) list;  (** pc/jit/local/shard/lanes vs host *)
}

val run :
  ?seed:int64 -> ?depth:int -> ?n_features:int -> ?z:int -> unit -> result
(** Defaults: depth 6, 8 features, batch 64. Deterministic by [seed]. *)

val passes : result -> bool
(** Multiple paths exercised and every runtime bitwise-correct. *)

val to_json : result -> Obs_json.t
val print : result -> unit
