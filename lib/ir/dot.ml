let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let block_label pp_op ops term_str =
  let buf = Buffer.create 128 in
  List.iter
    (fun op -> Buffer.add_string buf (Format.asprintf "%a\n" pp_op op))
    ops;
  Buffer.add_string buf term_str;
  Buffer.add_char buf '\n';
  escape (Buffer.contents buf)

let cfg_to_dot (p : Cfg.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iteri
    (fun fi (fname, (f : Cfg.func)) ->
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" fi
           (escape fname));
      Array.iteri
        (fun bi (b : Cfg.block) ->
          let term_str =
            match b.Cfg.term with
            | Cfg.Jump _ | Cfg.Branch _ -> ""
            | Cfg.Return -> "return"
          in
          Buffer.add_string buf
            (Printf.sprintf "    \"%s_%d\" [label=\"%d:\\l%s\"];\n" fname bi bi
               (block_label Cfg.pp_op b.Cfg.ops term_str)))
        f.Cfg.blocks;
      Array.iteri
        (fun bi (b : Cfg.block) ->
          match b.Cfg.term with
          | Cfg.Jump j ->
            Buffer.add_string buf
              (Printf.sprintf "    \"%s_%d\" -> \"%s_%d\";\n" fname bi fname j)
          | Cfg.Branch { if_true; if_false; _ } ->
            Buffer.add_string buf
              (Printf.sprintf
                 "    \"%s_%d\" -> \"%s_%d\" [label=\"true\"];\n    \"%s_%d\" -> \
                  \"%s_%d\" [label=\"false\"];\n"
                 fname bi fname if_true fname bi fname if_false)
          | Cfg.Return -> ())
        f.Cfg.blocks;
      Buffer.add_string buf "  }\n")
    p.Cfg.funcs;
  (* Dashed call edges across clusters. *)
  List.iter
    (fun (fname, (f : Cfg.func)) ->
      Array.iteri
        (fun bi (b : Cfg.block) ->
          List.iter
            (fun op ->
              match op with
              | Cfg.Call_op { func; _ } ->
                Buffer.add_string buf
                  (Printf.sprintf "  \"%s_%d\" -> \"%s_0\" [style=dashed, color=blue];\n"
                     fname bi func)
              | Cfg.Prim_op _ | Cfg.Const_op _ | Cfg.Mov _ -> ())
            b.Cfg.ops)
        f.Cfg.blocks)
    p.Cfg.funcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* Fused-CFG export: same graph as [cfg_to_dot], but each block that the
   fusion pass built out of several source blocks (a megablock) is drawn
   inside its own labelled sub-cluster, so fusion decisions are visible at
   a glance. [groups] is the fusion provenance: per function, for every
   surviving block, the source block ids it absorbed (in execution
   order). *)
let fused_cfg_to_dot ?(groups = []) (p : Cfg.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "digraph fused_cfg {\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iteri
    (fun fi (fname, (f : Cfg.func)) ->
      let prov = List.assoc_opt fname groups in
      Buffer.add_string buf
        (Printf.sprintf "  subgraph cluster_%d {\n    label=\"%s\";\n" fi
           (escape fname));
      Array.iteri
        (fun bi (b : Cfg.block) ->
          let term_str =
            match b.Cfg.term with
            | Cfg.Jump _ | Cfg.Branch _ -> ""
            | Cfg.Return -> "return"
          in
          let members =
            match prov with
            | Some g when bi < Array.length g -> g.(bi)
            | Some _ | None -> [ bi ]
          in
          let node =
            Printf.sprintf "    \"%s_%d\" [label=\"%d:\\l%s\"%s];\n" fname bi bi
              (block_label Cfg.pp_op b.Cfg.ops term_str)
              (if List.length members > 1 then
                 ", style=filled, fillcolor=lightgoldenrod"
               else "")
          in
          if List.length members > 1 then
            (* A megablock: wrap the node in its own cluster naming the
               source blocks it fused. *)
            Buffer.add_string buf
              (Printf.sprintf
                 "    subgraph cluster_%d_mb%d {\n      label=\"megablock {%s}\";\n\
                  \      style=dashed;\n  %s    }\n"
                 fi bi
                 (String.concat "," (List.map string_of_int members))
                 node)
          else Buffer.add_string buf node)
        f.Cfg.blocks;
      Array.iteri
        (fun bi (b : Cfg.block) ->
          match b.Cfg.term with
          | Cfg.Jump j ->
            Buffer.add_string buf
              (Printf.sprintf "    \"%s_%d\" -> \"%s_%d\";\n" fname bi fname j)
          | Cfg.Branch { if_true; if_false; _ } ->
            Buffer.add_string buf
              (Printf.sprintf
                 "    \"%s_%d\" -> \"%s_%d\" [label=\"true\"];\n    \"%s_%d\" -> \
                  \"%s_%d\" [label=\"false\"];\n"
                 fname bi fname if_true fname bi fname if_false)
          | Cfg.Return -> ())
        f.Cfg.blocks;
      Buffer.add_string buf "  }\n")
    p.Cfg.funcs;
  List.iter
    (fun (fname, (f : Cfg.func)) ->
      Array.iteri
        (fun bi (b : Cfg.block) ->
          List.iter
            (fun op ->
              match op with
              | Cfg.Call_op { func; _ } ->
                Buffer.add_string buf
                  (Printf.sprintf
                     "  \"%s_%d\" -> \"%s_0\" [style=dashed, color=blue];\n" fname
                     bi func)
              | Cfg.Prim_op _ | Cfg.Const_op _ | Cfg.Mov _ -> ())
            b.Cfg.ops)
        f.Cfg.blocks)
    p.Cfg.funcs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let stack_to_dot (p : Stack_ir.program) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "digraph stack {\n  node [shape=box, fontname=\"monospace\"];\n";
  Array.iteri
    (fun i (b : Stack_ir.block) ->
      let fname, local = p.Stack_ir.origin.(i) in
      let term_str =
        match b.Stack_ir.term with Stack_ir.Sreturn -> "return" | _ -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  b%d [label=\"%d (%s.%d):\\l%s\"];\n" i i (escape fname)
           local
           (block_label Stack_ir.pp_op b.Stack_ir.ops term_str)))
    p.Stack_ir.blocks;
  Buffer.add_string buf "  halt [shape=doublecircle, label=\"halt\"];\n";
  Array.iteri
    (fun i (b : Stack_ir.block) ->
      match b.Stack_ir.term with
      | Stack_ir.Sjump j -> Buffer.add_string buf (Printf.sprintf "  b%d -> b%d;\n" i j)
      | Stack_ir.Sbranch { if_true; if_false; _ } ->
        Buffer.add_string buf
          (Printf.sprintf
             "  b%d -> b%d [label=\"true\"];\n  b%d -> b%d [label=\"false\"];\n" i
             if_true i if_false)
      | Stack_ir.Spushjump { ret; entry } ->
        Buffer.add_string buf
          (Printf.sprintf
             "  b%d -> b%d [style=dashed, color=blue, label=\"call\"];\n  b%d -> b%d \
              [style=dotted, color=gray, label=\"ret to\"];\n"
             i entry i ret)
      | Stack_ir.Spushbranch { ret; if_true; if_false; _ } ->
        Buffer.add_string buf
          (Printf.sprintf
             "  b%d -> b%d [style=dashed, color=blue, label=\"call true\"];\n  b%d -> \
              b%d [style=dashed, color=blue, label=\"call false\"];\n  b%d -> b%d \
              [style=dotted, color=gray, label=\"ret to\"];\n"
             i if_true i if_false i ret)
      | Stack_ir.Sreturn ->
        Buffer.add_string buf (Printf.sprintf "  b%d -> halt [style=dotted];\n" i))
    p.Stack_ir.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
