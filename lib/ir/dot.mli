(** Graphviz (DOT) export of the two IRs, for inspecting what the
    batching compiler built: control-flow structure, call edges, the
    merged stack program's push/pop placement and block provenance.

    Render with e.g. [dot -Tsvg fib.dot -o fib.svg]. *)

val cfg_to_dot : Cfg.program -> string
(** One cluster per function; branch edges are labelled true/false, call
    ops produce dashed inter-function edges. *)

val fused_cfg_to_dot :
  ?groups:(string * int list array) list -> Cfg.program -> string
(** Like {!cfg_to_dot}, with fusion provenance: [groups] gives, per
    function and per surviving block, the source block ids the fusion
    pass merged into it. Megablocks (more than one source block) are
    drawn filled inside their own dashed sub-cluster labelled with the
    source ids. *)

val stack_to_dot : Stack_ir.program -> string
(** The merged Figure-4 program: blocks labelled with their source
    function, [pushjump] edges dashed toward the callee entry with a
    return edge to the continuation, [return] edges to a halt node. *)
