(** Shared string-keyed containers for the IR passes. *)

module Sset : Set.S with type elt = string
module Smap : Map.S with type key = string

val sset_of_list : string list -> Sset.t
