open Ir_util

let map_blocks f (p : Cfg.program) =
  {
    p with
    Cfg.funcs =
      List.map
        (fun (name, (fn : Cfg.func)) ->
          (name, { fn with Cfg.blocks = Array.map (f fn) fn.Cfg.blocks }))
        p.Cfg.funcs;
  }

(* Block-local constant environments: a variable maps to a constant tensor
   from the point of its [Const_op] (or folded primitive) until its next
   redefinition. Nothing crosses block boundaries, so control flow cannot
   invalidate the map. *)
let constant_fold reg (p : Cfg.program) =
  map_blocks
    (fun _fn (b : Cfg.block) ->
      let consts : (string, Tensor.t) Hashtbl.t = Hashtbl.create 8 in
      let kill v = Hashtbl.remove consts v in
      let ops =
        List.map
          (fun (op : Cfg.op) ->
            match op with
            | Cfg.Const_op { dst; value } ->
              Hashtbl.replace consts dst value;
              op
            | Cfg.Prim_op { dst; prim; args } -> (
              let impl = Prim.find_exn reg prim in
              let arg_consts = List.map (Hashtbl.find_opt consts) args in
              if impl.Prim.deterministic && List.for_all Option.is_some arg_consts
              then begin
                match impl.Prim.single ~member:0 (List.map Option.get arg_consts) with
                | value ->
                  Hashtbl.replace consts dst value;
                  Cfg.Const_op { dst; value }
                | exception _ ->
                  (* A folding-time failure (e.g. a shape the program never
                     actually reaches) keeps the op as-is. *)
                  kill dst;
                  op
              end
              else begin
                kill dst;
                op
              end)
            | Cfg.Mov { dst; src } -> (
              match Hashtbl.find_opt consts src with
              | Some value ->
                Hashtbl.replace consts dst value;
                Cfg.Const_op { dst; value }
              | None ->
                kill dst;
                op)
            | Cfg.Call_op { dsts; _ } ->
              List.iter kill dsts;
              op)
          b.Cfg.ops
      in
      { b with Cfg.ops })
    p

(* Block-local common-subexpression elimination: a deterministic primitive
   applied to the same arguments as an earlier op in the block (with no
   intervening redefinition of the arguments or the earlier result)
   becomes a move from the earlier result. *)
let cse reg (p : Cfg.program) =
  map_blocks
    (fun _fn (b : Cfg.block) ->
      let available : ((string * string list), string) Hashtbl.t = Hashtbl.create 8 in
      let invalidate v =
        let stale =
          Hashtbl.fold
            (fun ((_, args) as key) result acc ->
              if result = v || List.mem v args then key :: acc else acc)
            available []
        in
        List.iter (Hashtbl.remove available) stale
      in
      let ops =
        List.map
          (fun (op : Cfg.op) ->
            match op with
            | Cfg.Prim_op { dst; prim; args } -> (
              let impl = Prim.find_exn reg prim in
              match Hashtbl.find_opt available (prim, args) with
              | Some earlier when impl.Prim.deterministic && earlier <> dst ->
                invalidate dst;
                Cfg.Mov { dst; src = earlier }
              | Some _ | None ->
                invalidate dst;
                (* Never register an op that reads its own destination: the
                   recorded key would refer to the pre-assignment value. *)
                if impl.Prim.deterministic && not (List.mem dst args) then
                  Hashtbl.replace available (prim, args) dst;
                op)
            | Cfg.Const_op { dst; _ } | Cfg.Mov { dst; _ } ->
              invalidate dst;
              op
            | Cfg.Call_op { dsts; _ } ->
              List.iter invalidate dsts;
              op)
          b.Cfg.ops
      in
      { b with Cfg.ops })
    p

(* Block-local copy propagation: while [dst = src] holds (neither has been
   redefined), uses of [dst] become uses of [src]. *)
let copy_propagate (p : Cfg.program) =
  map_blocks
    (fun _fn (b : Cfg.block) ->
      let alias : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let resolve v = Option.value ~default:v (Hashtbl.find_opt alias v) in
      let kill v =
        Hashtbl.remove alias v;
        (* Any alias pointing at v is now stale. *)
        let stale =
          Hashtbl.fold (fun k src acc -> if src = v then k :: acc else acc) alias []
        in
        List.iter (Hashtbl.remove alias) stale
      in
      let ops =
        List.map
          (fun (op : Cfg.op) ->
            match op with
            | Cfg.Prim_op { dst; prim; args } ->
              let args = List.map resolve args in
              kill dst;
              Cfg.Prim_op { dst; prim; args }
            | Cfg.Mov { dst; src } ->
              let src = resolve src in
              kill dst;
              if dst <> src then Hashtbl.replace alias dst src;
              Cfg.Mov { dst; src }
            | Cfg.Const_op { dst; _ } ->
              kill dst;
              op
            | Cfg.Call_op { dsts; func; args } ->
              let args = List.map resolve args in
              List.iter kill dsts;
              Cfg.Call_op { dsts; func; args })
          b.Cfg.ops
      in
      let term =
        match b.Cfg.term with
        | Cfg.Branch { cond; if_true; if_false } ->
          Cfg.Branch { cond = resolve cond; if_true; if_false }
        | (Cfg.Jump _ | Cfg.Return) as t -> t
      in
      { Cfg.ops; term })
    p

(* Remove pure ops whose destinations are dead, using per-function
   liveness. Calls are kept (their cost is part of program semantics under
   the cost model, and conservatism is free here). *)
let dead_code (p : Cfg.program) =
  {
    p with
    Cfg.funcs =
      List.map
        (fun (name, (fn : Cfg.func)) ->
          let lv = Liveness.analyze fn in
          let blocks =
            Array.mapi
              (fun bi (b : Cfg.block) ->
                let live =
                  ref
                    (Sset.union
                       (Liveness.live_out lv bi)
                       (sset_of_list (Cfg.term_uses fn b.Cfg.term)))
                in
                let kept =
                  List.fold_left
                    (fun acc op ->
                      let defs = Cfg.op_defs op in
                      let needed =
                        match op with
                        | Cfg.Call_op _ -> true
                        | Cfg.Prim_op _ | Cfg.Const_op _ | Cfg.Mov _ ->
                          List.exists (fun d -> Sset.mem d !live) defs
                      in
                      if needed then begin
                        live := Sset.diff !live (sset_of_list defs);
                        live := Sset.union !live (sset_of_list (Cfg.op_uses op));
                        op :: acc
                      end
                      else acc)
                    []
                    (List.rev b.Cfg.ops)
                in
                { b with Cfg.ops = kept })
              fn.Cfg.blocks
          in
          (name, { fn with Cfg.blocks }))
        p.Cfg.funcs;
  }

let count_ops (p : Cfg.program) =
  List.fold_left (fun acc (_, fn) -> acc + Cfg.n_ops fn) 0 p.Cfg.funcs

(* Finer-grained readouts of the same measure: per function and per
   block, so a fusion or optimization pass's shrinkage is attributable to
   the code it actually touched. *)
let block_op_counts (p : Cfg.program) =
  List.map
    (fun (name, (fn : Cfg.func)) ->
      (name, Array.map (fun (b : Cfg.block) -> List.length b.Cfg.ops) fn.Cfg.blocks))
    p.Cfg.funcs

let func_op_counts (p : Cfg.program) =
  List.map
    (fun (name, counts) -> (name, Array.fold_left ( + ) 0 counts))
    (block_op_counts p)

let run ?(rounds = 4) reg p =
  let rec go n p =
    if n = 0 then p
    else begin
      let before = count_ops p in
      let p = dead_code (copy_propagate (cse reg (constant_fold reg p))) in
      if count_ops p = before then p else go (n - 1) p
    end
  in
  go rounds p
