(** Semantics-preserving CFG optimizations.

    Run between {!Lower_cfg} and {!Lower_stack} to shrink the per-block op
    lists the batching runtimes execute — every removed op saves a batched
    kernel on every VM step that runs its block.

    - {b constant folding}: a deterministic primitive whose arguments are
      all block-local constants is evaluated at compile time (exactly the
      arithmetic the runtime would do, so results stay bitwise identical);
    - {b common-subexpression elimination}: a deterministic primitive
      recomputing an expression already available in the block becomes a
      move from the earlier result;
    - {b copy propagation}: uses of a moved variable read the source
      directly, within the block;
    - {b dead code elimination}: pure ops (primitives, constants, moves)
      whose destination is dead are dropped. Calls are never dropped.

    RNG primitives are never folded ([Prim.deterministic = false]): their
    value depends on the batch member. *)

val constant_fold : Prim.registry -> Cfg.program -> Cfg.program
val cse : Prim.registry -> Cfg.program -> Cfg.program
val copy_propagate : Cfg.program -> Cfg.program
val dead_code : Cfg.program -> Cfg.program

val run : ?rounds:int -> Prim.registry -> Cfg.program -> Cfg.program
(** Iterate fold → CSE → propagate → eliminate until a fixpoint or
    [rounds] (default 4) iterations. *)

val count_ops : Cfg.program -> int
(** Total ops across all functions (for measuring shrinkage). *)

val func_op_counts : Cfg.program -> (string * int) list
(** Op count per function, in program order. *)

val block_op_counts : Cfg.program -> (string * int array) list
(** Op count per block of each function, in program order — the
    per-block granularity the fusion reports attribute shrinkage with. *)
