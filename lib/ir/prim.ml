exception Shape_error of string

type t = {
  name : string;
  arity : int;
  deterministic : bool;
  shape : Shape.t list -> Shape.t;
  flops : Shape.t list -> float;
  batched : members:int array -> Tensor.t list -> Tensor.t;
  single : member:int -> Tensor.t list -> Tensor.t;
}

type registry = (string, t) Hashtbl.t

let create_registry () : registry = Hashtbl.create 64
let register reg p = Hashtbl.replace reg p.name p
let find reg name = Hashtbl.find_opt reg name

let find_exn reg name =
  match Hashtbl.find_opt reg name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prim.find_exn: unknown primitive %S" name)

let names reg = Hashtbl.fold (fun k _ acc -> k :: acc) reg [] |> List.sort compare
let copy = Hashtbl.copy

(* Batched elementwise broadcasting: element shapes broadcast
   trailing-aligned, so the operand with the smaller element rank gets
   size-1 axes inserted right after the batch axis. *)
let batch_rank_align a b =
  let ra = Tensor.rank a and rb = Tensor.rank b in
  if ra = rb then (a, b)
  else if ra < rb then begin
    let sa = Tensor.shape a in
    let padded =
      Array.concat [ [| sa.(0) |]; Array.make (rb - ra) 1; Shape.drop_outer sa ]
    in
    (Tensor.reshape a padded, b)
  end
  else begin
    let sb = Tensor.shape b in
    let padded =
      Array.concat [ [| sb.(0) |]; Array.make (ra - rb) 1; Shape.drop_outer sb ]
    in
    (a, Tensor.reshape b padded)
  end

let shape_broadcast2 name a b =
  match Shape.broadcast2 a b with
  | s -> s
  | exception Invalid_argument _ ->
    raise
      (Shape_error
         (Printf.sprintf "%s: element shapes %s and %s do not broadcast" name
            (Shape.to_string a) (Shape.to_string b)))

let unary_shape name = function
  | [ s ] -> s
  | ss ->
    raise (Shape_error (Printf.sprintf "%s: expected 1 argument, got %d" name (List.length ss)))

let binary_shape name = function
  | [ a; b ] -> shape_broadcast2 name a b
  | ss ->
    raise (Shape_error (Printf.sprintf "%s: expected 2 arguments, got %d" name (List.length ss)))

let elementwise name ?(flops_per_elem = 1.) f =
  {
    name;
    arity = 1;
    deterministic = true;
    shape = unary_shape name;
    flops =
      (function
      | [ s ] -> flops_per_elem *. float_of_int (Shape.numel s)
      | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ x ] -> Tensor.map f x
      | _ -> invalid_arg (name ^ ": arity"));
    single = (fun ~member:_ args ->
      match args with
      | [ x ] -> Tensor.map f x
      | _ -> invalid_arg (name ^ ": arity"));
  }

let elementwise2 name ?(flops_per_elem = 1.) f =
  {
    name;
    arity = 2;
    deterministic = true;
    shape = binary_shape name;
    flops =
      (function
      | [ a; b ] -> flops_per_elem *. float_of_int (Shape.numel (shape_broadcast2 name a b))
      | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ a; b ] ->
        let a, b = batch_rank_align a b in
        Tensor.map2 f a b
      | _ -> invalid_arg (name ^ ": arity"));
    single = (fun ~member:_ args ->
      match args with
      | [ a; b ] -> Tensor.map2 f a b
      | _ -> invalid_arg (name ^ ": arity"));
  }

let bool_f b = if b then 1. else 0.

let select_prim =
  let shape = function
    | [ c; a; b ] ->
      shape_broadcast2 "select" (shape_broadcast2 "select" c a) b
    | ss ->
      raise (Shape_error (Printf.sprintf "select: expected 3 arguments, got %d" (List.length ss)))
  in
  {
    name = "select";
    arity = 3;
    deterministic = true;
    shape;
    flops = (fun ss -> match ss with [ _; _; _ ] -> float_of_int (Shape.numel (shape ss)) | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ c; a; b ] ->
        (* Pad every operand's element rank up to the maximum so batched
           broadcasting matches trailing-aligned element broadcasting. *)
        let r = List.fold_left (fun m t -> max m (Tensor.rank t)) 0 [ c; a; b ] in
        let pad t =
          let s = Tensor.shape t in
          Tensor.reshape t
            (Array.concat
               [ [| s.(0) |]; Array.make (r - Tensor.rank t) 1; Shape.drop_outer s ])
        in
        Tensor.where (pad c) (pad a) (pad b)
      | _ -> invalid_arg "select: arity");
    single = (fun ~member:_ args ->
      match args with
      | [ c; a; b ] -> Tensor.where c a b
      | _ -> invalid_arg "select: arity");
  }

(* Reduce every non-batch axis of a batched operand. *)
let batched_full_reduce reduce x =
  let z = (Tensor.shape x).(0) in
  let flat = Tensor.reshape x [| z; Tensor.numel x / z |] in
  reduce flat

let sum_prim =
  {
    name = "sum";
    arity = 1;
    deterministic = true;
    shape = (fun ss -> ignore (unary_shape "sum" ss); Shape.scalar);
    flops = (function [ s ] -> float_of_int (Shape.numel s) | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ x ] -> batched_full_reduce (fun t -> Tensor.sum ~axis:1 t) x
      | _ -> invalid_arg "sum: arity");
    single = (fun ~member:_ args ->
      match args with [ x ] -> Tensor.sum x | _ -> invalid_arg "sum: arity");
  }

let sum_sq_prim =
  {
    name = "sum_sq";
    arity = 1;
    deterministic = true;
    shape = (fun ss -> ignore (unary_shape "sum_sq" ss); Shape.scalar);
    flops = (function [ s ] -> 2. *. float_of_int (Shape.numel s) | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ x ] -> batched_full_reduce (fun t -> Tensor.sum ~axis:1 t) (Tensor.square x)
      | _ -> invalid_arg "sum_sq: arity");
    single = (fun ~member:_ args ->
      match args with
      | [ x ] -> Tensor.sum (Tensor.square x)
      | _ -> invalid_arg "sum_sq: arity");
  }

let dot_prim =
  let shape = function
    | [ a; b ] when Shape.rank a = 1 && Shape.equal a b -> Shape.scalar
    | [ a; b ] ->
      raise
        (Shape_error
           (Printf.sprintf "dot: wants two equal rank-1 element shapes, got %s and %s"
              (Shape.to_string a) (Shape.to_string b)))
    | ss ->
      raise (Shape_error (Printf.sprintf "dot: expected 2 arguments, got %d" (List.length ss)))
  in
  {
    name = "dot";
    arity = 2;
    deterministic = true;
    shape;
    flops = (function [ a; _ ] -> 2. *. float_of_int (Shape.numel a) | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ a; b ] -> Tensor.sum ~axis:1 (Tensor.mul a b)
      | _ -> invalid_arg "dot: arity");
    single = (fun ~member:_ args ->
      match args with [ a; b ] -> Tensor.dot a b | _ -> invalid_arg "dot: arity");
  }

(* Randomness: each draw consumes one tick of a per-member counter carried
   as an ordinary program variable (element shape []). *)

let counter_shape name = function
  | [ s ] when Shape.rank s = 0 -> Shape.scalar
  | [ s ] ->
    raise (Shape_error (Printf.sprintf "%s: counter must be scalar, got %s" name (Shape.to_string s)))
  | ss ->
    raise (Shape_error (Printf.sprintf "%s: expected 1 argument, got %d" name (List.length ss)))

let rng_flops_per_slot = 16.

let counter_of_single t =
  (* Junk lanes can carry NaN/inf counters; they only produce junk draws
     that masked execution discards, but the conversion must not trap. *)
  let v = Tensor.item t in
  if Float.is_nan v || Float.abs v > 1e15 then 0 else int_of_float v

let uniform_prim key =
  {
    name = "uniform";
    arity = 1;
    deterministic = false;
    shape = counter_shape "uniform";
    flops = (fun _ -> rng_flops_per_slot);
    batched = (fun ~members args ->
      match args with
      | [ counters ] ->
        Tensor.init [| Array.length members |] (fun idx ->
            let i = idx.(0) in
            let c = counter_of_single (Tensor.slice_row counters i) in
            Counter_rng.uniform key ~member:members.(i) ~counter:c ~slot:0)
      | _ -> invalid_arg "uniform: arity");
    single = (fun ~member args ->
      match args with
      | [ counter ] ->
        Tensor.scalar
          (Counter_rng.uniform key ~member ~counter:(counter_of_single counter) ~slot:0)
      | _ -> invalid_arg "uniform: arity");
  }

let exponential_prim key =
  {
    name = "exponential";
    arity = 1;
    deterministic = false;
    shape = counter_shape "exponential";
    flops = (fun _ -> rng_flops_per_slot +. 4.);
    batched = (fun ~members args ->
      match args with
      | [ counters ] ->
        Tensor.init [| Array.length members |] (fun idx ->
            let i = idx.(0) in
            let c = counter_of_single (Tensor.slice_row counters i) in
            Counter_rng.exponential key ~member:members.(i) ~counter:c ~slot:0)
      | _ -> invalid_arg "exponential: arity");
    single = (fun ~member args ->
      match args with
      | [ counter ] ->
        Tensor.scalar
          (Counter_rng.exponential key ~member ~counter:(counter_of_single counter) ~slot:0)
      | _ -> invalid_arg "exponential: arity");
  }

let normal_like_prim key =
  let shape = function
    | [ template; c ] when Shape.rank c = 0 -> template
    | [ _; c ] ->
      raise (Shape_error (Printf.sprintf "normal_like: counter must be scalar, got %s" (Shape.to_string c)))
    | ss ->
      raise (Shape_error (Printf.sprintf "normal_like: expected 2 arguments, got %d" (List.length ss)))
  in
  {
    name = "normal_like";
    arity = 2;
    deterministic = false;
    shape;
    flops = (function [ t; _ ] -> 2. *. rng_flops_per_slot *. float_of_int (Shape.numel t) | _ -> 0.);
    batched = (fun ~members args ->
      match args with
      | [ template; counters ] ->
        let z = Array.length members in
        let elem = Shape.drop_outer (Tensor.shape template) in
        let n = Shape.numel elem in
        let flat =
          Tensor.init [| z; n |] (fun idx ->
              let i = idx.(0) in
              let c = counter_of_single (Tensor.slice_row counters i) in
              Counter_rng.normal key ~member:members.(i) ~counter:c ~slot:idx.(1))
        in
        Tensor.reshape flat (Shape.concat_outer z elem)
      | _ -> invalid_arg "normal_like: arity");
    single = (fun ~member args ->
      match args with
      | [ template; counter ] ->
        let c = counter_of_single counter in
        let elem = Tensor.shape template in
        let n = Shape.numel elem in
        let flat =
          Tensor.init [| n |] (fun idx ->
              Counter_rng.normal key ~member ~counter:c ~slot:idx.(0))
        in
        Tensor.reshape flat elem
      | _ -> invalid_arg "normal_like: arity");
  }

(* Dynamic vector access: [index v i] reads element [i] of a rank-1
   value, [update v i x] functionally replaces it. Indices are clamped to
   the valid range: junk (masked-out) lanes routinely carry garbage
   indices, and clamping keeps them harmless without data-dependent
   failures (the static-shape platforms the paper targets behave the same
   way). *)

let clamp_index d v =
  if Float.is_nan v then 0
  else begin
    let i = int_of_float v in
    if i < 0 then 0 else if i >= d then d - 1 else i
  end

let index_prim =
  let shape = function
    | [ v; i ] when Shape.rank v = 1 && Shape.rank i = 0 -> Shape.scalar
    | [ v; i ] ->
      raise
        (Shape_error
           (Printf.sprintf "index: wants a rank-1 value and scalar index, got %s and %s"
              (Shape.to_string v) (Shape.to_string i)))
    | ss ->
      raise (Shape_error (Printf.sprintf "index: expected 2 arguments, got %d" (List.length ss)))
  in
  {
    name = "index";
    arity = 2;
    deterministic = true;
    shape;
    flops = (fun _ -> 2.);
    batched = (fun ~members:_ args ->
      match args with
      | [ v; i ] ->
        let z = (Tensor.shape v).(0) and d = (Tensor.shape v).(1) in
        Tensor.init [| z |] (fun idx ->
            let b = idx.(0) in
            Tensor.get v [| b; clamp_index d (Tensor.data i).(b) |])
      | _ -> invalid_arg "index: arity");
    single = (fun ~member:_ args ->
      match args with
      | [ v; i ] ->
        let d = (Tensor.shape v).(0) in
        Tensor.scalar (Tensor.data v).(clamp_index d (Tensor.item i))
      | _ -> invalid_arg "index: arity");
  }

let update_prim =
  let shape = function
    | [ v; i; x ] when Shape.rank v = 1 && Shape.rank i = 0 && Shape.rank x = 0 -> v
    | [ v; i; x ] ->
      raise
        (Shape_error
           (Printf.sprintf
              "update: wants rank-1 value, scalar index, scalar element; got %s, %s, %s"
              (Shape.to_string v) (Shape.to_string i) (Shape.to_string x)))
    | ss ->
      raise (Shape_error (Printf.sprintf "update: expected 3 arguments, got %d" (List.length ss)))
  in
  {
    name = "update";
    arity = 3;
    deterministic = true;
    shape;
    flops = (function [ v; _; _ ] -> float_of_int (Shape.numel v) | _ -> 0.);
    batched = (fun ~members:_ args ->
      match args with
      | [ v; i; x ] ->
        let out = Tensor.copy v in
        let z = (Tensor.shape v).(0) and d = (Tensor.shape v).(1) in
        for b = 0 to z - 1 do
          Tensor.set out [| b; clamp_index d (Tensor.data i).(b) |] (Tensor.data x).(b)
        done;
        out
      | _ -> invalid_arg "update: arity");
    single = (fun ~member:_ args ->
      match args with
      | [ v; i; x ] ->
        let out = Tensor.copy v in
        let d = (Tensor.shape v).(0) in
        Tensor.set out [| clamp_index d (Tensor.item i) |] (Tensor.item x);
        out
      | _ -> invalid_arg "update: arity");
  }

let standard ?(seed = 0x5EEDL) () =
  let reg = create_registry () in
  let key = Counter_rng.key seed in
  let add = register reg in
  List.iter add
    [
      elementwise2 "add" ( +. );
      elementwise2 "sub" ( -. );
      elementwise2 "mul" ( *. );
      elementwise2 "div" ( /. );
      elementwise2 "pow" ~flops_per_elem:8. ( ** );
      elementwise2 "min" Float.min;
      elementwise2 "max" Float.max;
      elementwise2 "logaddexp" ~flops_per_elem:8. Tensor.logaddexp_f;
      elementwise "neg" (fun x -> -.x);
      elementwise "abs" Float.abs;
      elementwise "sign" (fun x -> if x > 0. then 1. else if x < 0. then -1. else 0.);
      elementwise "exp" ~flops_per_elem:4. Stdlib.exp;
      elementwise "log" ~flops_per_elem:4. Stdlib.log;
      elementwise "sqrt" ~flops_per_elem:2. Stdlib.sqrt;
      elementwise "square" (fun x -> x *. x);
      elementwise "sigmoid" ~flops_per_elem:5. Tensor.sigmoid_f;
      elementwise "log_sigmoid" ~flops_per_elem:6. Tensor.log_sigmoid_f;
      elementwise "tanh" ~flops_per_elem:5. Stdlib.tanh;
      elementwise "tan" ~flops_per_elem:5. Stdlib.tan;
      elementwise "log1p" ~flops_per_elem:4. Stdlib.log1p;
      elementwise "floor" Float.floor;
      elementwise "ceil" Float.ceil;
      elementwise "round" Float.round;
      elementwise2 "eq" (fun a b -> bool_f (a = b));
      elementwise2 "ne" (fun a b -> bool_f (a <> b));
      elementwise2 "lt" (fun a b -> bool_f (a < b));
      elementwise2 "le" (fun a b -> bool_f (a <= b));
      elementwise2 "gt" (fun a b -> bool_f (a > b));
      elementwise2 "ge" (fun a b -> bool_f (a >= b));
      elementwise2 "and" (fun a b -> bool_f (a <> 0. && b <> 0.));
      elementwise2 "or" (fun a b -> bool_f (a <> 0. || b <> 0.));
      elementwise "not" (fun a -> bool_f (a = 0.));
      select_prim;
      index_prim;
      update_prim;
      sum_prim;
      sum_sq_prim;
      dot_prim;
      uniform_prim key;
      exponential_prim key;
      normal_like_prim key;
    ];
  reg
