(** The primitive (kernel) vocabulary.

    Every computation a user program performs is a primitive from a
    registry: the autobatching runtimes execute primitives in batch (with a
    leading batch dimension over chains / batch members), while the
    single-example reference interpreter executes them per member. Each
    primitive also carries an element-shape inference rule (used by
    {!Shape_infer} to preallocate VM storage — the analogue of XLA's static
    shape requirement) and a flop estimate (used by the simulated
    accelerator's cost model).

    Element shapes never include the batch dimension: a primitive declared
    with shapes [[d] -> []] consumes a [z; d] tensor and produces a [z]
    tensor in batched execution.

    Randomness is counter-based (see {!Counter_rng}): the RNG primitives
    take a draw-counter *program variable* and the batch member index comes
    from the runtime, so masked execution cannot perturb any member's
    stream. *)

exception Shape_error of string

type t = {
  name : string;
  arity : int;
  deterministic : bool;
      (** Output depends only on the inputs (no batch-member identity, no
          randomness) — the licence for compile-time constant folding. *)
  shape : Shape.t list -> Shape.t;
      (** Element-shape rule; raises {!Shape_error} on invalid inputs. *)
  flops : Shape.t list -> float;
      (** Estimated flops per batch member. *)
  batched : members:int array -> Tensor.t list -> Tensor.t;
      (** Batched execution. [members.(i)] is the global batch-member index
          of row [i] (identity under masking; the gathered indices under
          gather/scatter execution). *)
  single : member:int -> Tensor.t list -> Tensor.t;
      (** Single-example execution for batch member [member]. *)
}

type registry

val create_registry : unit -> registry
val register : registry -> t -> unit
(** Replaces any existing primitive of the same name. *)

val find : registry -> string -> t option
val find_exn : registry -> string -> t
(** Raises [Not_found_prim] via [Invalid_argument] with the name. *)

val names : registry -> string list
val copy : registry -> registry

val standard : ?seed:int64 -> unit -> registry
(** The standard vocabulary:

    Elementwise (element shapes broadcast):
    [add sub mul div pow min max logaddexp neg abs sign exp log sqrt square
    sigmoid log_sigmoid tanh tan log1p floor ceil round], comparisons
    [eq ne lt le gt ge] (0/1 result), logic [and or not], ternary
    [select].

    Reductions and products: [sum] (all element axes), [dot] (rank-1 pair),
    [sum_sq] (sum of squares).

    Dynamic vector access: [index v i] and functional [update v i x] on
    rank-1 values (indices clamped to range, so masked junk lanes cannot
    fail) — enough to express dynamic programming over fixed-size
    buffers.

    Randomness (counter-based, seeded by [?seed]): [uniform cnt],
    [exponential cnt] (scalar draws), [normal_like x cnt] (standard normals
    shaped like [x]). Each consumes one counter tick; programs must
    increment the counter variable themselves after each draw. *)

(** {1 Helpers for defining new primitives} *)

val elementwise : string -> ?flops_per_elem:float -> (float -> float) -> t
val elementwise2 : string -> ?flops_per_elem:float -> (float -> float -> float) -> t

val batch_rank_align : Tensor.t -> Tensor.t -> Tensor.t * Tensor.t
(** Insert size-1 axes after the batch axis of the lower-element-rank
    operand so that batched elementwise broadcasting matches the
    trailing-aligned broadcast of the element shapes. *)
