open Ir_util

type op =
  | Sprim of { dst : string; prim : string; args : string list }
  | Sconst of { dst : string; value : Tensor.t }
  | Smov of { dst : string; src : string }
  | Spush of string
  | Spop of string

type terminator =
  | Sjump of int
  | Sbranch of { cond : string; if_true : int; if_false : int }
  | Spushjump of { ret : int; entry : int }
  | Spushbranch of { ret : int; cond : string; if_true : int; if_false : int }
  | Sreturn

type block = { ops : op list; term : terminator }

type program = {
  blocks : block array;
  classes : Var_class.t Smap.t;
  shapes : Shape.t Smap.t;
  inputs : string list;
  outputs : string list;
  origin : (string * int) array;
  func_entries : (string * int) list;
}

let halt p = Array.length p.blocks

let class_of p v =
  Option.value ~default:Var_class.Masked (Smap.find_opt v p.classes)

let op_defs = function
  | Sprim { dst; _ } | Sconst { dst; _ } | Smov { dst; _ } -> [ dst ]
  | Spush _ | Spop _ -> []

let op_uses = function
  | Sprim { args; _ } -> args
  | Sconst _ -> []
  | Smov { src; _ } -> [ src ]
  | Spush v | Spop v -> [ v ]

let all_vars p =
  let acc = ref (p.inputs @ p.outputs) in
  Array.iter
    (fun b ->
      List.iter (fun op -> acc := op_defs op @ op_uses op @ !acc) b.ops;
      match b.term with
      | Sbranch { cond; _ } | Spushbranch { cond; _ } -> acc := cond :: !acc
      | Sjump _ | Spushjump _ | Sreturn -> ())
    p.blocks;
  List.sort_uniq compare !acc

let stats p =
  List.fold_left
    (fun (t, m, s) v ->
      match class_of p v with
      | Var_class.Temp -> (t + 1, m, s)
      | Var_class.Masked -> (t, m + 1, s)
      | Var_class.Stacked -> (t, m, s + 1))
    (0, 0, 0) (all_vars p)

let pp_op ppf = function
  | Sprim { dst; prim; args } ->
    Format.fprintf ppf "%s = %s(%s)" dst prim (String.concat ", " args)
  | Sconst { dst; value } -> Format.fprintf ppf "%s = const %a" dst Tensor.pp value
  | Smov { dst; src } -> Format.fprintf ppf "%s = %s" dst src
  | Spush v -> Format.fprintf ppf "push %s" v
  | Spop v -> Format.fprintf ppf "pop %s" v

let pp_term ppf = function
  | Sjump j -> Format.fprintf ppf "jump %d" j
  | Sbranch { cond; if_true; if_false } ->
    Format.fprintf ppf "branch %s ? %d : %d" cond if_true if_false
  | Spushjump { ret; entry } -> Format.fprintf ppf "pushjump ret=%d entry=%d" ret entry
  | Spushbranch { ret; cond; if_true; if_false } ->
    Format.fprintf ppf "pushbranch ret=%d %s ? %d : %d" ret cond if_true if_false
  | Sreturn -> Format.pp_print_string ppf "return"

let pp_program ppf p =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i b ->
      let fname, local = p.origin.(i) in
      Format.fprintf ppf "@[<v 2>block %d (%s.%d):@," i fname local;
      List.iter (fun op -> Format.fprintf ppf "%a@," pp_op op) b.ops;
      Format.fprintf ppf "%a@]@," pp_term b.term)
    p.blocks;
  let t, m, s = stats p in
  Format.fprintf ppf "vars: %d temp, %d masked, %d stacked@]" t m s
