(** The flat stack-machine IR of the paper's Figure 4.

    All functions' control-flow graphs are merged into one block array;
    [Call] is gone, replaced by explicit per-variable stack saves
    ([Spush]/[Spop], caller-saves discipline) and program-counter stack
    manipulation ([Spushjump]/[Sreturn]).

    Writes ([Sprim]/[Sconst]/[Smov]) update the destination's *top* value
    in place — this is the post-O5 form in which pop–push pairs have been
    cancelled into updates; the runtime can optionally execute the naive
    pre-O5 form for the ablation study.

    The conventional halt program-counter value is [Array.length blocks];
    the runtime seeds each batch member's pc stack with [halt; entry]. *)

type op =
  | Sprim of { dst : string; prim : string; args : string list }
  | Sconst of { dst : string; value : Tensor.t }
  | Smov of { dst : string; src : string }
  | Spush of string  (** duplicate the variable's top (caller save) *)
  | Spop of string   (** drop the top, restoring the saved value *)

type terminator =
  | Sjump of int
  | Sbranch of { cond : string; if_true : int; if_false : int }
  | Spushjump of { ret : int; entry : int }
      (** replace pc top with [ret], then push [entry] *)
  | Spushbranch of { ret : int; cond : string; if_true : int; if_false : int }
      (** replace pc top with [ret], then push [if_true] or [if_false]
          per lane by [cond] — a call whose callee entry has been fused
          into the call site ({!module:Fuse} entry duplication), so the
          superstep that makes the call also executes the callee's first
          block and takes its branch *)
  | Sreturn  (** pop the pc stack *)

type block = { ops : op list; term : terminator }

type program = {
  blocks : block array;
  classes : Var_class.t Ir_util.Smap.t;
  shapes : Shape.t Ir_util.Smap.t;  (** element shapes, where inferred *)
  inputs : string list;             (** entry parameters (namespaced) *)
  outputs : string list;            (** entry result variables *)
  origin : (string * int) array;    (** per block: source function and its local block *)
  func_entries : (string * int) list;  (** function name -> merged entry block *)
}

val halt : program -> int
val class_of : program -> string -> Var_class.t
(** Defaults to [Masked] for variables missing from the map. *)

val all_vars : program -> string list

val op_defs : op -> string list
val op_uses : op -> string list

val stats : program -> int * int * int
(** Counts of (temp, masked, stacked) variables. *)

val pp_op : Format.formatter -> op -> unit
val pp_program : Format.formatter -> program -> unit
