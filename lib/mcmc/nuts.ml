type variant = Slice | Multinomial

type config = {
  eps : float;
  max_depth : int;
  leaf_steps : int;
  delta_max : float;
  variant : variant;
  mass_minv : Tensor.t option;
}

let default_config ?(variant = Slice) ?mass_minv ~eps () =
  { eps; max_depth = 10; leaf_steps = 4; delta_max = 1000.; variant; mass_minv }

(* The diagonal inverse mass matrix; a unit diagonal is the exact identity
   for every formula below (IEEE: x*1 = x, x/1 = x, sqrt 1 = 1), so the
   identity-mass configuration is bitwise the historical behaviour. *)
let minv_for cfg q =
  match cfg.mass_minv with
  | Some m -> m
  | None -> Tensor.ones (Tensor.shape q)

type chain_result = {
  samples : Tensor.t array;
  final_q : Tensor.t;
  final_counter : int;
  grad_evals : int;
  depths : int array;
}

(* One (sub)tree: endpoints in absolute trajectory time, the running
   proposal, the slice count n, the continue flag s (0/1 as a float, to
   mirror the DSL), and the RNG draw counter. *)
type tree = {
  qm : Tensor.t;
  pm : Tensor.t;
  qp : Tensor.t;
  pp : Tensor.t;
  prop : Tensor.t;
  n : float;
  s : float;
  cnt : int;
}

let bool_f b = if b then 1. else 0.

let log_joint model minv q p =
  model.Model.logp q -. (0.5 *. Tensor.item (Tensor.dot p (Tensor.mul minv p)))

(* The arithmetic below deliberately mirrors the program Nuts_dsl
   generates, operation for operation, so chains agree bitwise. *)
let rec build_tree cfg ~model ~key ~member ~minv ~logu ~v ~depth ~q ~p ~cnt =
  if depth <= 0 then begin
    let q', p' =
      Leapfrog.steps_mass ~grad:model.Model.grad ~minv ~n:cfg.leaf_steps ~eps:v ~q ~p
    in
    let lj = log_joint model minv q' p' in
    let n' = bool_f (logu <= lj) in
    let s' = bool_f (logu < lj +. cfg.delta_max) in
    { qm = q'; pm = p'; qp = q'; pp = p'; prop = q'; n = n'; s = s'; cnt }
  end
  else begin
    let t1 =
      build_tree cfg ~model ~key ~member ~minv ~logu ~v ~depth:(depth - 1) ~q ~p ~cnt
    in
    if t1.s > 0. then begin
      let t2, qm, pm, qp, pp =
        if v < 0. then begin
          let t2 =
            build_tree cfg ~model ~key ~member ~minv ~logu ~v ~depth:(depth - 1)
              ~q:t1.qm ~p:t1.pm ~cnt:t1.cnt
          in
          (t2, t2.qm, t2.pm, t1.qp, t1.pp)
        end
        else begin
          let t2 =
            build_tree cfg ~model ~key ~member ~minv ~logu ~v ~depth:(depth - 1)
              ~q:t1.qp ~p:t1.pp ~cnt:t1.cnt
          in
          (t2, t1.qm, t1.pm, t2.qp, t2.pp)
        end
      in
      let ua = Counter_rng.uniform key ~member ~counter:t2.cnt ~slot:0 in
      let cnt = t2.cnt + 1 in
      let prob = t2.n /. (t1.n +. t2.n) in
      let prop = if ua < prob then t2.prop else t1.prop in
      let ddq = Tensor.sub qp qm in
      let s' =
        t2.s
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pm)) >= 0.)
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pp)) >= 0.)
      in
      { qm; pm; qp; pp; prop; n = t1.n +. t2.n; s = s'; cnt }
    end
    else t1
  end

(* Multinomial variant: the [n] field of [tree] carries the subtree's
   log-weight relative to the trajectory's initial point (log Σ exp(lj -
   lj0) over leaves), proposals are drawn progressively by weight, and
   divergence is a drop of more than delta_max below the initial joint. *)
let rec build_tree_multinomial cfg ~model ~key ~member ~minv ~lj0 ~v ~depth ~q ~p
    ~cnt =
  if depth <= 0 then begin
    let q', p' =
      Leapfrog.steps_mass ~grad:model.Model.grad ~minv ~n:cfg.leaf_steps ~eps:v ~q ~p
    in
    let lj = log_joint model minv q' p' in
    let lw = lj -. lj0 in
    let s' = bool_f (lw > -.cfg.delta_max) in
    { qm = q'; pm = p'; qp = q'; pp = p'; prop = q'; n = lw; s = s'; cnt }
  end
  else begin
    let t1 =
      build_tree_multinomial cfg ~model ~key ~member ~minv ~lj0 ~v
        ~depth:(depth - 1) ~q ~p ~cnt
    in
    if t1.s > 0. then begin
      let t2, qm, pm, qp, pp =
        if v < 0. then begin
          let t2 =
            build_tree_multinomial cfg ~model ~key ~member ~minv ~lj0 ~v
              ~depth:(depth - 1) ~q:t1.qm ~p:t1.pm ~cnt:t1.cnt
          in
          (t2, t2.qm, t2.pm, t1.qp, t1.pp)
        end
        else begin
          let t2 =
            build_tree_multinomial cfg ~model ~key ~member ~minv ~lj0 ~v
              ~depth:(depth - 1) ~q:t1.qp ~p:t1.pp ~cnt:t1.cnt
          in
          (t2, t1.qm, t1.pm, t2.qp, t2.pp)
        end
      in
      let ua = Counter_rng.uniform key ~member ~counter:t2.cnt ~slot:0 in
      let cnt = t2.cnt + 1 in
      let prob = Stdlib.exp (t2.n -. Tensor.logaddexp_f t1.n t2.n) in
      let prop = if ua < prob then t2.prop else t1.prop in
      let ddq = Tensor.sub qp qm in
      let s' =
        t2.s
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pm)) >= 0.)
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pp)) >= 0.)
      in
      { qm; pm; qp; pp; prop; n = Tensor.logaddexp_f t1.n t2.n; s = s'; cnt }
    end
    else t1
  end

let trajectory_multinomial cfg ~model ~key ~member ~q ~counter =
  let cnt = counter in
  let minv = minv_for cfg q in
  let p0 =
    let d = (Tensor.shape q).(0) in
    let z =
      Tensor.init [| d |] (fun idx ->
          Counter_rng.normal key ~member ~counter:cnt ~slot:idx.(0))
    in
    Tensor.div z (Tensor.sqrt minv)
  in
  let cnt = cnt + 1 in
  let lj0 = log_joint model minv q p0 in
  let rec doubling ~qm ~pm ~qp ~pp ~prop ~lw ~s ~depth ~cnt =
    if s > 0. && depth < cfg.max_depth then begin
      let u = Counter_rng.uniform key ~member ~counter:cnt ~slot:0 in
      let cnt = cnt + 1 in
      let dir = if u < 0.5 then -1. else 1. in
      let v = dir *. cfg.eps in
      let t, qm, pm, qp, pp =
        if dir < 0. then begin
          let t =
            build_tree_multinomial cfg ~model ~key ~member ~minv ~lj0 ~v ~depth
              ~q:qm ~p:pm ~cnt
          in
          (t, t.qm, t.pm, qp, pp)
        end
        else begin
          let t =
            build_tree_multinomial cfg ~model ~key ~member ~minv ~lj0 ~v ~depth
              ~q:qp ~p:pp ~cnt
          in
          (t, qm, pm, t.qp, t.pp)
        end
      in
      let prop, cnt =
        if t.s > 0. then begin
          let ua = Counter_rng.uniform key ~member ~counter:t.cnt ~slot:0 in
          let cnt = t.cnt + 1 in
          let prob = Float.min 1. (Stdlib.exp (t.n -. lw)) in
          ((if ua < prob then t.prop else prop), cnt)
        end
        else (prop, t.cnt)
      in
      let lw = Tensor.logaddexp_f lw t.n in
      let ddq = Tensor.sub qp qm in
      let s =
        t.s
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pm)) >= 0.)
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pp)) >= 0.)
      in
      doubling ~qm ~pm ~qp ~pp ~prop ~lw ~s ~depth:(depth + 1) ~cnt
    end
    else (prop, cnt, depth)
  in
  doubling ~qm:q ~pm:p0 ~qp:q ~pp:p0 ~prop:q ~lw:0. ~s:1. ~depth:0 ~cnt

let trajectory_slice cfg ~model ~key ~member ~q ~counter =
  let cnt = counter in
  let minv = minv_for cfg q in
  let p0 =
    let d = (Tensor.shape q).(0) in
    let z =
      Tensor.init [| d |] (fun idx ->
          Counter_rng.normal key ~member ~counter:cnt ~slot:idx.(0))
    in
    Tensor.div z (Tensor.sqrt minv)
  in
  let cnt = cnt + 1 in
  let logjoint0 = log_joint model minv q p0 in
  let e = Counter_rng.exponential key ~member ~counter:cnt ~slot:0 in
  let cnt = cnt + 1 in
  let logu = logjoint0 -. e in
  let rec doubling ~qm ~pm ~qp ~pp ~prop ~n ~s ~depth ~cnt =
    if s > 0. && depth < cfg.max_depth then begin
      let u = Counter_rng.uniform key ~member ~counter:cnt ~slot:0 in
      let cnt = cnt + 1 in
      let dir = if u < 0.5 then -1. else 1. in
      let v = dir *. cfg.eps in
      let t, qm, pm, qp, pp =
        if dir < 0. then begin
          let t =
            build_tree cfg ~model ~key ~member ~minv ~logu ~v ~depth ~q:qm ~p:pm ~cnt
          in
          (t, t.qm, t.pm, qp, pp)
        end
        else begin
          let t =
            build_tree cfg ~model ~key ~member ~minv ~logu ~v ~depth ~q:qp ~p:pp ~cnt
          in
          (t, qm, pm, t.qp, t.pp)
        end
      in
      let prop, cnt =
        if t.s > 0. then begin
          let ua = Counter_rng.uniform key ~member ~counter:t.cnt ~slot:0 in
          let cnt = t.cnt + 1 in
          let prob = Float.min 1. (t.n /. n) in
          ((if ua < prob then t.prop else prop), cnt)
        end
        else (prop, t.cnt)
      in
      let n = n +. t.n in
      let ddq = Tensor.sub qp qm in
      let s =
        t.s
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pm)) >= 0.)
        *. bool_f (Tensor.item (Tensor.dot ddq (Tensor.mul minv pp)) >= 0.)
      in
      doubling ~qm ~pm ~qp ~pp ~prop ~n ~s ~depth:(depth + 1) ~cnt
    end
    else (prop, cnt, depth)
  in
  doubling ~qm:q ~pm:p0 ~qp:q ~pp:p0 ~prop:q ~n:1. ~s:1. ~depth:0 ~cnt

let trajectory cfg ~model ~key ~member ~q ~counter =
  match cfg.variant with
  | Slice -> trajectory_slice cfg ~model ~key ~member ~q ~counter
  | Multinomial -> trajectory_multinomial cfg ~model ~key ~member ~q ~counter

let sample_chain cfg ~model ~key ~member ~q0 ~n_iter =
  let counting_model, grads = Model.with_grad_counter model in
  let samples = Array.make n_iter q0 in
  let depths = Array.make n_iter 0 in
  let q = ref q0 and cnt = ref 0 in
  for i = 0 to n_iter - 1 do
    let q', cnt', depth =
      trajectory cfg ~model:counting_model ~key ~member ~q:!q ~counter:!cnt
    in
    q := q';
    cnt := cnt';
    samples.(i) <- q';
    depths.(i) <- depth
  done;
  {
    samples;
    final_q = !q;
    final_counter = !cnt;
    grad_evals = !grads;
    depths;
  }

let find_reasonable_eps ?(seed = 0x0E9L) ?(n_steps = 4) ~model ~q0 () =
  let stream = Splitmix.Stream.create seed in
  let d = (Tensor.shape q0).(0) in
  let p0 = Tensor.init [| d |] (fun _ -> Splitmix.Stream.normal stream) in
  let ones = Tensor.ones [| d |] in
  let lj0 = log_joint model ones q0 p0 in
  (* Hoffman & Gelman's Algorithm 4, but measuring acceptance over a whole
     tree leaf ([n_steps] leapfrog steps, default matching the paper's 4):
     tuning on a single step can land exactly on the integrator's
     stability boundary, where multi-step leaves diverge and the sampler
     never moves. *)
  let accept_logprob eps =
    let q', p' = Leapfrog.steps ~grad:model.Model.grad ~n:n_steps ~eps ~q:q0 ~p:p0 in
    log_joint model ones q' p' -. lj0
  in
  let eps = ref 1. in
  let a = if accept_logprob !eps > Stdlib.log 0.5 then 1. else -1. in
  let continue_cond () =
    let lp = accept_logprob !eps in
    (* Guard against NaN from unstable integration: treat as "too big". *)
    let lp = if Float.is_nan lp then Float.neg_infinity else lp in
    a *. lp > -.a *. Stdlib.log 2.
  in
  let iters = ref 0 in
  while continue_cond () && !iters < 100 do
    eps := !eps *. (2. ** a);
    incr iters
  done;
  (* The loop exits one doubling past the threshold. When growing, the
     final eps is the first *bad* one (acceptance already below 1/2, and
     possibly unstable); back off to the last good value. When shrinking,
     the final eps is the first good one. *)
  if a > 0. then !eps /. 2. else !eps
