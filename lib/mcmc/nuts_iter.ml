type config = { eps : float; max_depth : int; leaf_steps : int; delta_max : float }

let config_of_nuts (c : Nuts.config) =
  {
    eps = c.Nuts.eps;
    max_depth = c.Nuts.max_depth;
    leaf_steps = c.Nuts.leaf_steps;
    delta_max = c.Nuts.delta_max;
  }

type chain_result = { samples : Tensor.t array; final_q : Tensor.t; grad_evals : int }

type state = { q : Tensor.t; p : Tensor.t }

let log_joint model st =
  model.Model.logp st.q -. (0.5 *. Tensor.item (Tensor.dot st.p st.p))

(* No-U-turn continuation test between the two ends of a (sub)trajectory
   integrated with step sign [v]; [b] is the earlier end in integration
   order. Matches the recursive sampler's absolute-time formulation. *)
let no_uturn ~v b e =
  let ddq = if v < 0. then Tensor.sub b.q e.q else Tensor.sub e.q b.q in
  Tensor.item (Tensor.dot ddq b.p) >= 0. && Tensor.item (Tensor.dot ddq e.p) >= 0.

let trailing_zeros k =
  if k = 0 then invalid_arg "trailing_zeros 0"
  else begin
    let n = ref 0 and k = ref k in
    while !k land 1 = 0 do
      incr n;
      k := !k asr 1
    done;
    !n
  end

(* Iteratively build one doubling subtree of 2^depth leaves starting from
   [start], integrating with signed step [v]. Returns
   (end_state, proposal option, n, s) — [s = false] on divergence or an
   internal U-turn, in which case the caller must stop. *)
let build_subtree cfg ~model ~stream ~logu ~v ~depth ~start =
  let n_leaves = 1 lsl depth in
  (* checkpoints.(l): the subtree-boundary state saved before a leaf whose
     index has l trailing zeros (leaf 0 uses the top slot). *)
  let checkpoints = Array.make (cfg.max_depth + 2) start in
  let top_slot = cfg.max_depth + 1 in
  let slot_for k =
    if k = 0 then top_slot else min (trailing_zeros k) (cfg.max_depth + 1)
  in
  let cur = ref start in
  let proposal = ref None in
  let n = ref 0. in
  let alive = ref true in
  let k = ref 0 in
  while !alive && !k < n_leaves do
    checkpoints.(slot_for !k) <- !cur;
    let q', p' =
      Leapfrog.steps ~grad:model.Model.grad ~n:cfg.leaf_steps ~eps:v ~q:!cur.q
        ~p:!cur.p
    in
    cur := { q = q'; p = p' };
    let lj = log_joint model !cur in
    if logu <= lj then begin
      (* Reservoir-sample uniformly among accepted leaves: equivalent in
         distribution to the recursive half-tree swap probabilities. *)
      n := !n +. 1.;
      if Splitmix.Stream.uniform stream < 1. /. !n then proposal := Some q'
    end;
    if not (logu < lj +. cfg.delta_max) then alive := false
    else begin
      (* After completing each aligned sub-subtree of size 2^l, check the
         U-turn condition between its two boundary states. *)
      let completed = !k + 1 in
      let l = ref 1 in
      while !alive && !l <= depth && completed mod (1 lsl !l) = 0 do
        let a = completed - (1 lsl !l) in
        let b = checkpoints.(slot_for a) in
        if not (no_uturn ~v b !cur) then alive := false;
        incr l
      done
    end;
    incr k
  done;
  (!cur, !proposal, !n, !alive)

let trajectory cfg ~model ~stream ~q =
  let d = (Tensor.shape q).(0) in
  let p0 = Tensor.init [| d |] (fun _ -> Splitmix.Stream.normal stream) in
  let start = { q; p = p0 } in
  let logu = log_joint model start -. (-.Stdlib.log (Splitmix.Stream.uniform stream)) in
  (* logu = logjoint0 - Exp(1) *)
  let minus = ref start and plus = ref start in
  let proposal = ref q in
  let n = ref 1. in
  let s = ref true in
  let depth = ref 0 in
  while !s && !depth < cfg.max_depth do
    let dir = if Splitmix.Stream.uniform stream < 0.5 then -1. else 1. in
    let v = dir *. cfg.eps in
    let from = if dir < 0. then !minus else !plus in
    let last, prop', n', alive =
      build_subtree cfg ~model ~stream ~logu ~v ~depth:!depth ~start:from
    in
    if alive then begin
      (match prop' with
      | Some q' when n' > 0. ->
        if Splitmix.Stream.uniform stream < Float.min 1. (n' /. !n) then
          proposal := q'
      | Some _ | None -> ());
      if dir < 0. then minus := last else plus := last;
      n := !n +. n';
      s := no_uturn ~v:1. !minus !plus
    end
    else s := false;
    incr depth
  done;
  !proposal

let sample_chain cfg ~model ~stream ~q0 ~n_iter =
  let counting, grads = Model.with_grad_counter model in
  let samples = Array.make n_iter q0 in
  let q = ref q0 in
  for i = 0 to n_iter - 1 do
    q := trajectory cfg ~model:counting ~stream ~q:!q;
    samples.(i) <- !q
  done;
  { samples; final_q = !q; grad_evals = !grads }
