let dim = 10
let n_schools = 8
let mu_sd = 25.
let tau_scale = 5.
let y = [| 28.; 8.; -3.; 7.; -1.; 1.; 18.; 12. |]
let sigma = [| 15.; 10.; 16.; 11.; 9.; 11.; 10.; 18. |]

(* The handler-DSL definition. Under [Eff.log_density] the latent sites
   become the program parameters (mu, log_tau, t); under [Eff.simulate]
   they are drawn and the observation term becomes the log weight. *)
let spec () =
  let open Lang in
  let open Lang.Infix in
  let mu = Eff.sample "mu" (Dist.Normal (flt 0., flt mu_sd)) in
  let log_tau = Eff.sample "log_tau" (Dist.Log_half_cauchy (flt tau_scale)) in
  let t = Eff.sample_vec "t" ~dim:n_schools (Dist.Normal (flt 0., flt 1.)) in
  let tau = Eff.det "tau" (prim "exp" [ log_tau ]) in
  Eff.observe ~shape:[| n_schools |] "y"
    (Dist.Normal (mu + (tau * t), vec sigma))
    (vec y);
  [ mu; log_tau; t ]

let model () =
  let logp q =
    let d = Tensor.data q in
    let mu = d.(0) and log_tau = d.(1) in
    let tau = Stdlib.exp log_tau in
    let acc = ref 0. in
    for j = 0 to n_schools - 1 do
      let t = d.(2 + j) in
      let r = y.(j) -. mu -. (tau *. t) in
      (* Likelihood and the standardized effect's prior (constants
         dropped: the density is unnormalized). *)
      acc := !acc -. (0.5 *. r *. r /. (sigma.(j) *. sigma.(j))) -. (0.5 *. t *. t)
    done;
    (* mu prior, half-Cauchy(tau_scale) on tau, log Jacobian of exp. *)
    !acc
    -. (0.5 *. mu *. mu /. (mu_sd *. mu_sd))
    -. Stdlib.log1p (tau /. tau_scale *. (tau /. tau_scale))
    +. log_tau
  in
  let grad q =
    let d = Tensor.data q in
    let mu = d.(0) and log_tau = d.(1) in
    let tau = Stdlib.exp log_tau in
    let out = Array.make dim 0. in
    let dmu = ref 0. and dlt = ref 0. in
    for j = 0 to n_schools - 1 do
      let t = d.(2 + j) in
      let w = 1. /. (sigma.(j) *. sigma.(j)) in
      let r = y.(j) -. mu -. (tau *. t) in
      dmu := !dmu +. (r *. w);
      dlt := !dlt +. (r *. w *. t *. tau);
      out.(2 + j) <- (r *. w *. tau) -. t
    done;
    let u = tau /. tau_scale in
    out.(0) <- !dmu -. (mu /. (mu_sd *. mu_sd));
    out.(1) <- !dlt -. (2. *. u *. u /. (1. +. (u *. u))) +. 1.;
    Tensor.create [| dim |] out
  in
  let logp_batch qs =
    let z = Tensor.nrows qs in
    Tensor.init [| z |] (fun idx -> logp (Tensor.slice_row qs idx.(0)))
  in
  let grad_batch qs =
    let z = Tensor.nrows qs in
    Tensor.stack_rows (List.init z (fun b -> grad (Tensor.slice_row qs b)))
  in
  Model.make ~name:"eight-schools" ~dim ~spec ~logp ~grad ~logp_batch
    ~grad_batch ~logp_flops:90. ~grad_flops:130. ()

let school_effects q =
  let d = Tensor.data q in
  let mu = d.(0) and tau = Stdlib.exp d.(1) in
  Tensor.init [| n_schools |] (fun idx -> mu +. (tau *. d.(2 + idx.(0))))
