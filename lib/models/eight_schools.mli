(** The eight-schools hierarchical model (Rubin 1981; Gelman et al.), on
    the canonical dataset — the textbook posterior with a funnel-shaped
    geometry that NUTS was built for, here in the standard non-centered
    parameterization:

    {v
    y_j ~ N(mu + tau * t_j, sigma_j^2)      (observed effects)
    t_j ~ N(0, 1)                           (standardized school effects)
    mu  ~ N(0, 25^2) (weak),  tau ~ half-Cauchy(5),  tau = exp(log_tau)
    v}

    Position vector (10 coordinates): [[mu; log_tau; t_1; …; t_8]], with
    the Jacobian of the [log_tau] transform included in the density. *)

val model : unit -> Model.t
(** The model on the classic data: y = 28, 8, -3, 7, -1, 1, 18, 12 and
    sigma = 15, 10, 16, 11, 9, 11, 10, 18. Carries a handler-DSL [spec]
    with latent sites [mu], [log_tau] and [t] (8-vector). *)

val y : float array
(** Observed treatment effects. *)

val sigma : float array
(** Their standard errors. *)

val dim : int
(** 10. *)

val school_effects : Tensor.t -> Tensor.t
(** Map a position (or posterior-mean) vector to the 8 school effects
    [theta_j = mu + exp(log_tau) * t_j]. *)
