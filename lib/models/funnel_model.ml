let log_2pi = Stdlib.log (2. *. Float.pi)
let v_variance = 9.

let model ~dim () =
  if dim < 2 then invalid_arg "Funnel_model: dim must be at least 2";
  let k = float_of_int (dim - 1) in
  let logp q =
    let d = Tensor.data q in
    let v = d.(0) in
    let sum_x2 = ref 0. in
    for i = 1 to dim - 1 do
      sum_x2 := !sum_x2 +. (d.(i) *. d.(i))
    done;
    (-.(v *. v) /. 18.)
    -. (0.5 *. (log_2pi +. Stdlib.log 9.))
    -. (0.5 *. !sum_x2 *. Stdlib.exp (-.v))
    -. (0.5 *. k *. (log_2pi +. v))
  in
  let grad q =
    let d = Tensor.data q in
    let v = d.(0) in
    let e_neg_v = Stdlib.exp (-.v) in
    let out = Array.make dim 0. in
    let sum_x2 = ref 0. in
    for i = 1 to dim - 1 do
      sum_x2 := !sum_x2 +. (d.(i) *. d.(i));
      out.(i) <- -.d.(i) *. e_neg_v
    done;
    out.(0) <- (-.v /. 9.) +. (0.5 *. !sum_x2 *. e_neg_v) -. (0.5 *. k);
    Tensor.create [| dim |] out
  in
  (* Vectorized over the batch at the buffer level (one pass per member
     row — the arithmetic is inherently per-member). *)
  let logp_batch qs =
    let z = Tensor.nrows qs in
    Tensor.init [| z |] (fun idx -> logp (Tensor.slice_row qs idx.(0)))
  in
  let grad_batch qs =
    let z = Tensor.nrows qs in
    Tensor.stack_rows (List.init z (fun b -> grad (Tensor.slice_row qs b)))
  in
  let xdim = dim - 1 in
  let spec () =
    let open Lang in
    let open Lang.Infix in
    let v = Eff.sample "v" (Dist.Normal (flt 0., flt 3.)) in
    let sd = Eff.det "sd" (prim "exp" [ v / flt 2. ]) in
    let x = Eff.sample_vec "x" ~dim:xdim (Dist.Normal (flt 0., sd)) in
    [ v; x ]
  in
  let df = float_of_int dim in
  Model.make
    ~name:(Printf.sprintf "funnel-%d" dim)
    ~dim ~spec ~logp ~grad ~logp_batch ~grad_batch
    ~logp_flops:((6. *. df) +. 10.)
    ~grad_flops:((8. *. df) +. 10.)
    ()

let sample ~dim stream =
  let v = 3. *. Splitmix.Stream.normal stream in
  let sd = Stdlib.exp (v /. 2.) in
  Tensor.init [| dim |] (fun idx ->
      if idx.(0) = 0 then v else sd *. Splitmix.Stream.normal stream)
