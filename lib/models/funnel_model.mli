(** Neal's funnel (Neal 2003): the classic stress test for gradient-based
    MCMC, and a target whose exploration depends strongly on NUTS'
    adaptive trajectory lengths — exactly the data-dependent control flow
    the autobatcher must handle.

    {v
    v ~ N(0, 9),   x_i | v ~ N(0, e^v)  for i = 1 .. dim-1
    v}

    The position vector is [[v; x_1; …; x_{dim-1}]]. The [v]-marginal is
    exactly N(0, 9), which gives the statistical tests an analytic
    anchor; {!sample} draws exact points from the joint. *)

val model : dim:int -> unit -> Model.t
(** [dim] counts all coordinates ([v] plus [dim-1] [x]s); [dim >= 2].
    The handler-DSL [spec] has latent sites [v] (scalar) and [x]
    ([dim-1]-vector), and can be simulated as well as traced. *)

val sample : dim:int -> Splitmix.Stream.t -> Tensor.t
(** One exact draw from the funnel. *)

val v_variance : float
(** The analytic variance of the [v] coordinate: 9. *)
