type ground_truth = {
  rho : float;
  covariance : Tensor.t;
  precision : Tensor.t;
  chol_factor : Tensor.t;
  log_det : float;
}

let log_2pi = Stdlib.log (2. *. Float.pi)

let build ?(rho = 0.7) ?scales ~dim () =
  if dim <= 0 then invalid_arg "Gaussian_model: dim must be positive";
  if Float.abs rho >= 1. then invalid_arg "Gaussian_model: |rho| must be < 1";
  let scale =
    match scales with
    | None -> fun _ -> 1.
    | Some s ->
      if Array.length s <> dim then
        invalid_arg "Gaussian_model: scales length must equal dim";
      Array.iter
        (fun v -> if v <= 0. then invalid_arg "Gaussian_model: scales must be positive")
        s;
      fun i -> s.(i)
  in
  let covariance =
    Tensor.init [| dim; dim |] (fun idx ->
        scale idx.(0) *. scale idx.(1)
        *. (rho ** float_of_int (Stdlib.abs (idx.(0) - idx.(1)))))
  in
  let chol_factor = Cholesky.factor covariance in
  let precision =
    (* Symmetrize exactly: the column-by-column inverse is symmetric only
       up to rounding, and the single-example path computes Λq while the
       batched path computes qΛ — bitwise agreement needs Λ = Λᵀ. *)
    let p = Cholesky.inverse_from_factor chol_factor in
    Tensor.mul_scalar (Tensor.add p (Tensor.transpose p)) 0.5
  in
  let log_det = Cholesky.log_det_from_factor chol_factor in
  { rho; covariance; precision; chol_factor; log_det }

let ground_truth ?rho ?scales ~dim () = build ?rho ?scales ~dim ()

let model ?rho ?scales ~dim () =
  let gt = build ?rho ?scales ~dim () in
  let precision = gt.precision in
  let d = float_of_int dim in
  let const_term = -0.5 *. (gt.log_det +. (d *. log_2pi)) in
  let logp q =
    let lq = Tensor.matvec precision q in
    (-0.5 *. Tensor.item (Tensor.dot q lq)) +. const_term
  in
  let grad q = Tensor.neg (Tensor.matvec precision q) in
  let logp_batch q =
    (* Λ is symmetric: (q Λ) rows are Λ q per member. *)
    let lq = Tensor.matmul q precision in
    Tensor.add_scalar
      (Tensor.mul_scalar (Tensor.sum ~axis:1 (Tensor.mul q lq)) (-0.5))
      const_term
  in
  let grad_batch q = Tensor.neg (Tensor.matmul q precision) in
  (* The spec scores the exact same expression the reference closures
     compute — the elaborated density is bitwise the hand one. *)
  let spec () =
    let open Lang in
    let open Lang.Infix in
    let q = Eff.sample_vec "q" ~dim Dist.Flat in
    let lq = Eff.data_matvec "precision_mv" precision q in
    Eff.factor "gaussian" ((flt (-0.5) * prim "dot" [ q; lq ]) + flt const_term);
    [ q ]
  in
  Model.make
    ~name:(Printf.sprintf "gaussian-%d" dim)
    ~dim ~spec ~logp ~grad ~logp_batch ~grad_batch
    ~logp_flops:((2. *. d *. d) +. (3. *. d))
    ~grad_flops:(2. *. d *. d)
    ()

let sample gt stream =
  let dim = (Tensor.shape gt.covariance).(0) in
  let z = Tensor.init [| dim |] (fun _ -> Splitmix.Stream.normal stream) in
  Tensor.matvec gt.chol_factor z

let marginal_variance gt i = Tensor.get gt.covariance [| i; i |]
