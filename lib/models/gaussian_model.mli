(** The paper's first test problem: a correlated multivariate Gaussian.

    Covariance [Σ_ij = scale_i scale_j rho^|i-j|] (an AR(1)-style
    correlation band), mean zero. The density and gradient use the
    precision matrix computed by Cholesky factorization; {!sample} draws
    exact samples through the Cholesky factor, giving the statistical
    tests a ground truth. *)

val model : ?rho:float -> ?scales:float array -> dim:int -> unit -> Model.t
(** Default [rho = 0.7]; the paper's experiment uses [dim = 100].
    [scales] gives per-coordinate standard deviations
    ([Σ = D R D] with [D = diag scales]) — an anisotropic target for
    exercising mass-matrix adaptation. Default: all ones.

    The handler-DSL [spec] declares the position as a flat site [q] and
    scores the quadratic form through an {!Eff.factor} term (one
    precision matvec data primitive), so its elaborated log density is
    {e bitwise} the reference [logp] — the model is normalized. The spec
    cannot be simulated (flat sites have no sampler); use {!sample}. *)

type ground_truth = {
  rho : float;
  covariance : Tensor.t;      (** [dim; dim] *)
  precision : Tensor.t;       (** Σ⁻¹, exactly symmetrized *)
  chol_factor : Tensor.t;     (** lower L with L Lᵀ = Σ *)
  log_det : float;            (** log det Σ *)
}

val ground_truth :
  ?rho:float -> ?scales:float array -> dim:int -> unit -> ground_truth
(** The matrices behind the same model — kept separate from {!Model.t}
    so samplers depend only on densities. *)

val sample : ground_truth -> Splitmix.Stream.t -> Tensor.t
(** One exact draw from the target, shape [[dim]]. *)

val marginal_variance : ground_truth -> int -> float
(** Σ_ii (= 1 for the correlation structure used). *)
