type data = { x : Tensor.t; y : Tensor.t; beta_true : Tensor.t }

let synth ?(seed = 0xDA7AL) ~n ~dim () =
  if n <= 0 || dim <= 0 then invalid_arg "Logistic_model: sizes must be positive";
  let stream = Splitmix.Stream.create seed in
  let beta_true = Tensor.init [| dim |] (fun _ -> Splitmix.Stream.normal stream) in
  let scale = 1. /. Stdlib.sqrt (float_of_int dim) in
  let x = Tensor.init [| n; dim |] (fun _ -> scale *. Splitmix.Stream.normal stream) in
  let logits = Tensor.matvec x beta_true in
  let y =
    Tensor.init [| n |] (fun idx ->
        if Splitmix.Stream.uniform stream < Tensor.sigmoid_f (Tensor.data logits).(idx.(0))
        then 1.
        else 0.)
  in
  { x; y; beta_true }

let model_of_data { x; y; beta_true = _ } =
  let n = (Tensor.shape x).(0) and dim = (Tensor.shape x).(1) in
  let xt = Tensor.transpose x in
  (* logp(β) = Σ [y log σ(z) + (1-y) log σ(-z)] − βᵀβ/2
             = Σ [log σ(-z) + y z] − βᵀβ/2   (algebraic merge) *)
  let logp beta =
    let z = Tensor.matvec x beta in
    let ll =
      Tensor.item
        (Tensor.sum (Tensor.add (Tensor.log_sigmoid (Tensor.neg z)) (Tensor.mul y z)))
    in
    ll -. (0.5 *. Tensor.item (Tensor.dot beta beta))
  in
  let grad beta =
    let z = Tensor.matvec x beta in
    let resid = Tensor.sub y (Tensor.sigmoid z) in
    Tensor.sub (Tensor.matvec xt resid) beta
  in
  let logp_batch betas =
    (* z : [zb; n] with zb the batch size. *)
    let z = Tensor.matmul betas xt in
    let ll =
      Tensor.sum ~axis:1
        (Tensor.add (Tensor.log_sigmoid (Tensor.neg z)) (Tensor.mul z y))
    in
    let prior = Tensor.mul_scalar (Tensor.sum ~axis:1 (Tensor.square betas)) (-0.5) in
    Tensor.add ll prior
  in
  let grad_batch betas =
    let z = Tensor.matmul betas xt in
    let resid = Tensor.sub (Tensor.broadcast_rows y (Tensor.nrows betas)) (Tensor.sigmoid z) in
    Tensor.sub (Tensor.matmul resid x) betas
  in
  let y_data = Array.copy (Tensor.data y) in
  let spec () =
    let open Lang in
    let beta = Eff.sample_vec "beta" ~dim (Dist.Normal (flt 0., flt 1.)) in
    let z = Eff.data_matvec "design_mv" x beta in
    Eff.observe ~shape:[| n |] "y" (Dist.Bernoulli_logit z) (vec y_data);
    [ beta ]
  in
  let nf = float_of_int n and df = float_of_int dim in
  Model.make
    ~name:(Printf.sprintf "logistic-%dx%d" n dim)
    ~dim ~spec ~logp ~grad ~logp_batch ~grad_batch
    ~logp_flops:((2. *. nf *. df) +. (8. *. nf) +. (2. *. df))
    ~grad_flops:((4. *. nf *. df) +. (6. *. nf) +. df)
    ()

let model ?seed ~n ~dim () = model_of_data (synth ?seed ~n ~dim ())
let n_data d = (Tensor.shape d.x).(0)
