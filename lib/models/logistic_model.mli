(** The paper's second test problem: Bayesian logistic regression on
    synthetic data (the paper uses 10,000 data points and 100 regressors).

    Model: y_i ~ Bernoulli(σ(x_i · β)), prior β ~ N(0, I).
    Log density: Σ_i [y_i log σ(z_i) + (1-y_i) log σ(-z_i)] − βᵀβ/2,
    gradient: Xᵀ(y − σ(z)) − β, with z = X β.

    The batched forms are two dense matmuls per evaluation, which is what
    gives the GPU its linear batch scaling in Figure 5. *)

type data = {
  x : Tensor.t;         (** design matrix [n; dim] *)
  y : Tensor.t;         (** labels [n], entries 0/1 *)
  beta_true : Tensor.t; (** generating coefficients [dim] *)
}

val synth : ?seed:int64 -> n:int -> dim:int -> unit -> data
(** Synthesize a dataset: true β ~ N(0,1), x ~ N(0,1)/√dim (unit-scale
    logits), y ~ Bernoulli(σ(x·β)). Deterministic in [seed]. *)

val model_of_data : data -> Model.t
(** The posterior for a dataset. The handler-DSL [spec] declares the
    latent site [beta], applies the design matrix through a
    {!Eff.data_matvec} primitive, and observes [y] under
    [Dist.Bernoulli_logit]. *)

val model : ?seed:int64 -> n:int -> dim:int -> unit -> Model.t
(** [model_of_data (synth ?seed ~n ~dim ())]. *)

val n_data : data -> int
