type t = {
  name : string;
  dim : int;
  spec : (unit -> Lang.expr list) option;
  logp : Tensor.t -> float;
  grad : Tensor.t -> Tensor.t;
  logp_batch : Tensor.t -> Tensor.t;
  grad_batch : Tensor.t -> Tensor.t;
  logp_flops : float;
  grad_flops : float;
}

let make ~name ~dim ?spec ~logp ~grad ~logp_batch ~grad_batch ~logp_flops
    ~grad_flops () =
  { name; dim; spec; logp; grad; logp_batch; grad_batch; logp_flops; grad_flops }

let spec_exn m =
  match m.spec with
  | Some body -> body
  | None ->
    invalid_arg
      (Printf.sprintf "Model.%s: model has no handler-DSL spec" m.name)

let log_density ?seed m = Eff.log_density ?seed ~fn_name:m.name (spec_exn m)
let simulate ?seed m = Eff.simulate ?seed ~fn_name:m.name (spec_exn m)

let with_grad_counter m =
  let n = ref 0 in
  ( {
      m with
      grad =
        (fun q ->
          incr n;
          m.grad q);
    },
    n )

let check_dim m name s =
  match s with
  | [ q ] when Shape.equal q [| m.dim |] -> ()
  | [ q ] ->
    raise
      (Prim.Shape_error
         (Printf.sprintf "%s: position must have shape [%d], got %s" name m.dim
            (Shape.to_string q)))
  | ss ->
    raise
      (Prim.Shape_error
         (Printf.sprintf "%s: expected 1 argument, got %d" name (List.length ss)))

let register_prims reg m =
  Prim.register reg
    {
      Prim.name = "logp";
      arity = 1;
      deterministic = true;
      shape =
        (fun ss ->
          check_dim m "logp" ss;
          Shape.scalar);
      flops = (fun _ -> m.logp_flops);
      batched =
        (fun ~members:_ args ->
          match args with [ q ] -> m.logp_batch q | _ -> invalid_arg "logp: arity");
      single =
        (fun ~member:_ args ->
          match args with
          | [ q ] -> Tensor.scalar (m.logp q)
          | _ -> invalid_arg "logp: arity");
    };
  Prim.register reg
    {
      Prim.name = "grad";
      arity = 1;
      deterministic = true;
      shape =
        (fun ss ->
          check_dim m "grad" ss;
          [| m.dim |]);
      flops = (fun _ -> m.grad_flops);
      batched =
        (fun ~members:_ args ->
          match args with [ q ] -> m.grad_batch q | _ -> invalid_arg "grad: arity");
      single =
        (fun ~member:_ args ->
          match args with [ q ] -> m.grad q | _ -> invalid_arg "grad: arity");
    }

let check_shapes m =
  let stream = Splitmix.Stream.create 99L in
  for trial = 0 to 2 do
    let z = 3 in
    let q =
      Tensor.init [| z; m.dim |] (fun _ -> Splitmix.Stream.normal stream)
    in
    let lp = m.logp_batch q in
    let g = m.grad_batch q in
    if not (Shape.equal (Tensor.shape lp) [| z |]) then
      failwith (Printf.sprintf "%s: logp_batch shape wrong" m.name);
    if not (Shape.equal (Tensor.shape g) [| z; m.dim |]) then
      failwith (Printf.sprintf "%s: grad_batch shape wrong" m.name);
    for b = 0 to z - 1 do
      let qb = Tensor.slice_row q b in
      let lp1 = m.logp qb in
      if Float.abs (lp1 -. (Tensor.data lp).(b)) > 1e-8 *. (1. +. Float.abs lp1) then
        failwith
          (Printf.sprintf "%s: logp single/batch disagree at trial %d member %d"
             m.name trial b);
      let g1 = m.grad qb in
      if not (Tensor.allclose ~rtol:1e-8 ~atol:1e-10 g1 (Tensor.slice_row g b)) then
        failwith
          (Printf.sprintf "%s: grad single/batch disagree at trial %d member %d"
             m.name trial b)
    done
  done

let of_single ~name ~dim ?spec ~logp ~grad ~logp_flops ~grad_flops () =
  let logp_batch q =
    let z = (Tensor.shape q).(0) in
    Tensor.init [| z |] (fun idx -> logp (Tensor.slice_row q idx.(0)))
  in
  let grad_batch q =
    let z = (Tensor.shape q).(0) in
    Tensor.stack_rows (List.init z (fun b -> grad (Tensor.slice_row q b)))
  in
  { name; dim; spec; logp; grad; logp_batch; grad_batch; logp_flops; grad_flops }
