(** Target-density interface for the samplers.

    One record describes a model: its name, dimension, the {!Eff} handler
    DSL body that elaborates it ([spec], when the model is defined through
    the frontend), and the reference densities — unnormalized log density
    and gradient in single-example and batched forms, with flop estimates
    for the simulated accelerator. [register_prims] installs the densities
    as the [logp] and [grad] primitives that DSL programs (e.g.
    {!Nuts_dsl}) call; {!log_density} and {!simulate} elaborate the
    [spec] into IR programs through the handler stack. *)

type t = {
  name : string;
  dim : int;
  spec : (unit -> Lang.expr list) option;
      (** the {!Eff} model body, when defined through the DSL frontend *)
  logp : Tensor.t -> float;           (** [ [dim] -> scalar ] *)
  grad : Tensor.t -> Tensor.t;        (** [ [dim] -> [dim] ] *)
  logp_batch : Tensor.t -> Tensor.t;  (** [ [z;dim] -> [z] ] *)
  grad_batch : Tensor.t -> Tensor.t;  (** [ [z;dim] -> [z;dim] ] *)
  logp_flops : float;                 (** per evaluation per member *)
  grad_flops : float;
}

val make :
  name:string ->
  dim:int ->
  ?spec:(unit -> Lang.expr list) ->
  logp:(Tensor.t -> float) ->
  grad:(Tensor.t -> Tensor.t) ->
  logp_batch:(Tensor.t -> Tensor.t) ->
  grad_batch:(Tensor.t -> Tensor.t) ->
  logp_flops:float ->
  grad_flops:float ->
  unit ->
  t

val log_density : ?seed:int64 -> t -> Eff.elaborated
(** Elaborate [spec] under the trace interpretation ({!Eff.log_density}):
    latent sites become program parameters, every site is scored. The
    elaborated density is normalized, so it matches the reference [logp]
    on *differences* (all constants cancel), which is what every
    acceptance decision consumes. Raises [Invalid_argument] when the
    model has no [spec]. *)

val simulate : ?seed:int64 -> t -> Eff.elaborated
(** Elaborate [spec] under the seed interpretation ({!Eff.simulate}):
    latents drawn through the counter-based RNG primitives, observations
    scored. Raises [Invalid_argument] when the model has no [spec]. *)

val with_grad_counter : t -> t * int ref
(** A copy whose [grad] increments the returned counter on every
    evaluation — how the reference samplers report gradient counts. *)

val register_prims : Prim.registry -> t -> unit
(** Install primitives [logp : [dim] -> []] and [grad : [dim] -> [dim]]. *)

val check_shapes : t -> unit
(** Sanity-check single/batched agreement on a few synthetic points;
    raises [Failure] on disagreement. Used by tests. *)

val of_single :
  name:string ->
  dim:int ->
  ?spec:(unit -> Lang.expr list) ->
  logp:(Tensor.t -> float) ->
  grad:(Tensor.t -> Tensor.t) ->
  logp_flops:float ->
  grad_flops:float ->
  unit ->
  t
(** Build a model from single-example functions; the batched forms loop
    over rows (convenient for tests and custom targets — the built-in
    models implement genuinely vectorized batches). *)
