let known = [ "eight_schools"; "gaussian"; "funnel"; "logistic" ]

let resolve ?(dim = 10) ?(seed = 0xDA7AL) = function
  | "eight_schools" -> Eight_schools.model ()
  | "gaussian" -> Gaussian_model.model ~dim ()
  | "funnel" -> Funnel_model.model ~dim ()
  | "logistic" -> Logistic_model.model ~seed ~n:(dim * 40) ~dim ()
  | other ->
    invalid_arg
      (Printf.sprintf "Zoo.resolve: unknown model %S (%s)" other
         (String.concat "|" known))
