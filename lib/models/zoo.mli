(** Name-based resolution of the built-in models — the one place the
    CLI, the harnesses and the benches turn a model name into a
    {!Model.t}. *)

val known : string list
(** ["eight_schools"; "gaussian"; "funnel"; "logistic"]. *)

val resolve : ?dim:int -> ?seed:int64 -> string -> Model.t
(** [dim] (default 10) parameterizes [gaussian], [funnel] and
    [logistic] (which synthesizes [40*dim] data points from [seed],
    default [0xDA7AL]); [eight_schools] ignores it. Raises
    [Invalid_argument] on unknown names. *)
