(* The observability layer's front door: [Obs.Sink.t], [Obs.Trace.sink],
   [Obs.Metrics.histogram], [Obs.Report.document]. The flat [Obs_*]
   modules remain reachable (the library is unwrapped); these aliases are
   the spelling the rest of the codebase uses. *)

module Json = Obs_json
module Metrics = Obs_metrics
module Sink = Obs_sink
module Trace = Obs_trace
module Report = Obs_report
