type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* Deterministic number rendering: integral floats keep a [.0] marker so
   they stay distinguishable from Int on re-parse; everything else gets
   enough digits for microsecond timestamps. *)
let float_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec write ~indent ~level buf v =
  let nl_sep level =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * level) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_to buf s;
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl_sep (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl_sep level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char buf ',';
        nl_sep (level + 1);
        Buffer.add_char buf '"';
        escape_to buf k;
        Buffer.add_string buf (if indent then "\": " else "\":");
        write ~indent ~level:(level + 1) buf item)
      fields;
    nl_sep level;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write ~indent:false ~level:0 buf v;
  Buffer.contents buf

let to_string_pretty v =
  let buf = Buffer.create 256 in
  write ~indent:true ~level:0 buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

exception Parse of string

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
          advance ();
          Buffer.contents buf
        | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' ->
            Buffer.add_char buf '"';
            advance ()
          | '\\' ->
            Buffer.add_char buf '\\';
            advance ()
          | '/' ->
            Buffer.add_char buf '/';
            advance ()
          | 'b' ->
            Buffer.add_char buf '\b';
            advance ()
          | 'f' ->
            Buffer.add_char buf '\012';
            advance ()
          | 'n' ->
            Buffer.add_char buf '\n';
            advance ()
          | 'r' ->
            Buffer.add_char buf '\r';
            advance ()
          | 't' ->
            Buffer.add_char buf '\t';
            advance ()
          | 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code ->
              pos := !pos + 4;
              add_utf8 buf code
            | None -> fail "bad \\u escape")
          | _ -> fail "bad escape");
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let in_number c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c -> in_number c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let floaty = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok in
    if floaty then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((k, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elems (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
