(** A small, dependency-free JSON value type.

    The observability layer writes machine-readable artifacts — Chrome
    trace-event files and report documents — and the tests parse them back,
    so both directions live here rather than behind an external package.
    Printing is deterministic: the same value always renders to the same
    bytes, which is what makes golden-file tests meaningful. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering (no insignificant whitespace). Non-finite floats
    render as [null]; integral floats render with a trailing [.0] so the
    value stays a JSON number distinct from an [Int]. *)

val to_string_pretty : t -> string
(** Two-space indented rendering for report documents meant to be read by
    humans as well as machines. Same escaping and number format as
    {!to_string}. *)

val of_string : string -> (t, string) result
(** Strict JSON parser (RFC 8259 subset: no comments, no trailing commas).
    Numbers without [.]/[e] parse as [Int] when they fit, else [Float].
    [\uXXXX] escapes decode to UTF-8; surrogate pairs are not combined. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up [key]; [None] on missing key or non-object. *)
