(* 8 buckets per power of two keeps quantile estimates within ~9% of the
   true value, which is plenty for latency distributions spanning decades. *)
let buckets_per_octave = 8
let n_buckets = 512

(* Bucket 0 is the zero/negative bucket; bucket [mid] holds values in
   [1, 2^(1/8)). *)
let mid = n_buckets / 2

type counter = { c_on : bool; mutable count : int }
type gauge = { g_on : bool; mutable value : float }

type histogram = {
  h_on : bool;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

type t = {
  enabled : bool;
  mutable counters : (string * counter) list;
  mutable gauges : (string * gauge) list;
  mutable histograms : (string * histogram) list;
}

let create ?(enabled = true) () =
  { enabled; counters = []; gauges = []; histograms = [] }

let enabled t = t.enabled

let registered existing fresh register name =
  match List.assoc_opt name existing with
  | Some instrument -> instrument
  | None ->
    let instrument = fresh () in
    register (name, instrument);
    instrument

let counter t name =
  registered t.counters
    (fun () -> { c_on = t.enabled; count = 0 })
    (fun entry -> t.counters <- t.counters @ [ entry ])
    name

let incr ?(by = 1) c = if c.c_on then c.count <- c.count + by
let count c = c.count

let gauge t name =
  registered t.gauges
    (fun () -> { g_on = t.enabled; value = 0. })
    (fun entry -> t.gauges <- t.gauges @ [ entry ])
    name

let set g v = if g.g_on then g.value <- v
let value g = g.value

let histogram t name =
  registered t.histograms
    (fun () ->
      {
        h_on = t.enabled;
        buckets = (if t.enabled then Array.make n_buckets 0 else [||]);
        n = 0;
        sum = 0.;
        lo = Float.infinity;
        hi = Float.neg_infinity;
      })
    (fun entry -> t.histograms <- t.histograms @ [ entry ])
    name

let bucket_of v =
  if v <= 0. then 0
  else
    let i =
      mid + int_of_float (Float.floor (float_of_int buckets_per_octave *. Float.log2 v))
    in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i

let observe h v =
  if h.h_on then begin
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v
  end

let hist_count h = h.n
let hist_sum h = h.sum
let hist_mean h = if h.n = 0 then Float.nan else h.sum /. float_of_int h.n
let hist_min h = if h.n = 0 then Float.nan else h.lo
let hist_max h = if h.n = 0 then Float.nan else h.hi

(* Geometric midpoint of a bucket, the minimax representative under
   relative error. *)
let bucket_value i =
  if i = 0 then 0.
  else
    Float.exp2
      ((float_of_int (i - mid) +. 0.5) /. float_of_int buckets_per_octave)

let quantile h q =
  if h.n = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
    let result = ref h.hi in
    let cum = ref 0 in
    (try
       for i = 0 to n_buckets - 1 do
         cum := !cum + h.buckets.(i);
         if !cum >= target then begin
           result := bucket_value i;
           raise Exit
         end
       done
     with Exit -> ());
    Float.min h.hi (Float.max h.lo !result)
  end

let hist_to_json h =
  Obs_json.Obj
    [
      ("count", Obs_json.Int h.n);
      ("sum", Obs_json.Float h.sum);
      ("mean", Obs_json.Float (hist_mean h));
      ("min", Obs_json.Float (hist_min h));
      ("max", Obs_json.Float (hist_max h));
      ("p50", Obs_json.Float (quantile h 0.5));
      ("p90", Obs_json.Float (quantile h 0.9));
      ("p99", Obs_json.Float (quantile h 0.99));
    ]

let to_json t =
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  Obs_json.Obj
    [
      ( "counters",
        Obs_json.Obj
          (List.map (fun (name, c) -> (name, Obs_json.Int c.count)) (by_name t.counters))
      );
      ( "gauges",
        Obs_json.Obj
          (List.map (fun (name, g) -> (name, Obs_json.Float g.value)) (by_name t.gauges))
      );
      ( "histograms",
        Obs_json.Obj
          (List.map (fun (name, h) -> (name, hist_to_json h)) (by_name t.histograms)) );
    ]
