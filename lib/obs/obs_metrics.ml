(* 8 buckets per power of two keeps quantile estimates within ~9% of the
   true value, which is plenty for latency distributions spanning decades. *)
let buckets_per_octave = 8
let n_buckets = 512

(* Bucket 0 is the zero/negative bucket; bucket [mid] holds values in
   [1, 2^(1/8)). *)
let mid = n_buckets / 2

type counter = { c_on : bool; mutable count : int }
type gauge = { g_on : bool; mutable value : float }

type histogram = {
  h_on : bool;
  buckets : int array;
  mutable n : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
}

type t = {
  enabled : bool;
  mutable counters : (string * counter) list;
  mutable gauges : (string * gauge) list;
  mutable histograms : (string * histogram) list;
}

let create ?(enabled = true) () =
  { enabled; counters = []; gauges = []; histograms = [] }

let enabled t = t.enabled

let registered existing fresh register name =
  match List.assoc_opt name existing with
  | Some instrument -> instrument
  | None ->
    let instrument = fresh () in
    register (name, instrument);
    instrument

let counter t name =
  registered t.counters
    (fun () -> { c_on = t.enabled; count = 0 })
    (fun entry -> t.counters <- t.counters @ [ entry ])
    name

let incr ?(by = 1) c = if c.c_on then c.count <- c.count + by
let count c = c.count

let gauge t name =
  registered t.gauges
    (fun () -> { g_on = t.enabled; value = 0. })
    (fun entry -> t.gauges <- t.gauges @ [ entry ])
    name

let set g v = if g.g_on then g.value <- v
let value g = g.value

let histogram t name =
  registered t.histograms
    (fun () ->
      {
        h_on = t.enabled;
        buckets = (if t.enabled then Array.make n_buckets 0 else [||]);
        n = 0;
        sum = 0.;
        lo = Float.infinity;
        hi = Float.neg_infinity;
      })
    (fun entry -> t.histograms <- t.histograms @ [ entry ])
    name

let bucket_of v =
  if v <= 0. then 0
  else
    let i =
      mid + int_of_float (Float.floor (float_of_int buckets_per_octave *. Float.log2 v))
    in
    if i < 1 then 1 else if i > n_buckets - 1 then n_buckets - 1 else i

let observe h v =
  if h.h_on then begin
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.n <- h.n + 1;
    h.sum <- h.sum +. v;
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v
  end

let hist_count h = h.n
let hist_sum h = h.sum
let hist_mean h = if h.n = 0 then Float.nan else h.sum /. float_of_int h.n
let hist_min h = if h.n = 0 then Float.nan else h.lo
let hist_max h = if h.n = 0 then Float.nan else h.hi

(* Geometric midpoint of a bucket, the minimax representative under
   relative error. *)
let bucket_value i =
  if i = 0 then 0.
  else
    Float.exp2
      ((float_of_int (i - mid) +. 0.5) /. float_of_int buckets_per_octave)

(* Quantiles interpolate buckets only where the buckets actually carry
   information. The edge cases are exact, not bucket artifacts: an empty
   histogram reads nan, a single observation reads itself at every q,
   and the extreme ranks read the exact tracked min/max (rank 1 is the
   minimum, rank n the maximum — both known precisely). Interior ranks
   read the geometric midpoint of the rank's bucket, clamped to the
   observed [lo, hi]. *)
let quantile h q =
  if h.n = 0 then Float.nan
  else if h.n = 1 then h.lo
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int h.n))) in
    if target <= 1 then h.lo
    else if target >= h.n then h.hi
    else begin
      let result = ref h.hi in
      let cum = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           cum := !cum + h.buckets.(i);
           if !cum >= target then begin
             result := bucket_value i;
             raise Exit
           end
         done
       with Exit -> ());
      Float.min h.hi (Float.max h.lo !result)
    end
  end

(* Lower/upper bucket boundaries, for the raw-bucket export. Bucket 0 is
   the zero/negative bucket; report it as the degenerate [0, 0] range. *)
let bucket_lo i =
  if i = 0 then 0.
  else Float.exp2 (float_of_int (i - mid) /. float_of_int buckets_per_octave)

let bucket_hi i =
  if i = 0 then 0.
  else
    Float.exp2 (float_of_int (i - mid + 1) /. float_of_int buckets_per_octave)

let hist_to_json ?(buckets = false) h =
  let summary =
    [
      ("count", Obs_json.Int h.n);
      ("sum", Obs_json.Float h.sum);
      ("mean", Obs_json.Float (hist_mean h));
      ("min", Obs_json.Float (hist_min h));
      ("max", Obs_json.Float (hist_max h));
      ("p50", Obs_json.Float (quantile h 0.5));
      ("p90", Obs_json.Float (quantile h 0.9));
      ("p99", Obs_json.Float (quantile h 0.99));
    ]
  in
  let bucket_rows =
    if not buckets then []
    else begin
      (* Only occupied buckets: the full 512-bucket array is almost all
         zeros and would swamp the document. Disabled histograms have no
         bucket storage at all. *)
      let rows = ref [] in
      for i = Array.length h.buckets - 1 downto 0 do
        if h.buckets.(i) > 0 then
          rows :=
            Obs_json.Obj
              [
                ("lo", Obs_json.Float (bucket_lo i));
                ("hi", Obs_json.Float (bucket_hi i));
                ("count", Obs_json.Int h.buckets.(i));
              ]
            :: !rows
      done;
      [ ("buckets", Obs_json.List !rows) ]
    end
  in
  Obs_json.Obj (summary @ bucket_rows)

let to_json t =
  let by_name l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  Obs_json.Obj
    [
      ( "counters",
        Obs_json.Obj
          (List.map (fun (name, c) -> (name, Obs_json.Int c.count)) (by_name t.counters))
      );
      ( "gauges",
        Obs_json.Obj
          (List.map (fun (name, g) -> (name, Obs_json.Float g.value)) (by_name t.gauges))
      );
      ( "histograms",
        Obs_json.Obj
          (List.map (fun (name, h) -> (name, hist_to_json h)) (by_name t.histograms)) );
    ]

(* Aggregation across registries, mirroring [Engine.Counters.merge] and
   [Instrument.merge]: every instrument kind adds. Counters and histogram
   buckets add element-wise, gauges sum (per-shard lane counts stay
   meaningful; use distinct names where last-write-wins is wanted), and
   min/max combine. Instruments present only in [src] are created in
   [into]; a disabled [into] stays dead (its instruments drop the data),
   and a disabled [src] contributes nothing. *)
let merge ~into src =
  List.iter
    (fun (name, c) -> incr ~by:c.count (counter into name))
    src.counters;
  List.iter
    (fun (name, g) ->
      let d = gauge into name in
      set d (d.value +. g.value))
    src.gauges;
  List.iter
    (fun (name, h) ->
      let d = histogram into name in
      if d.h_on then begin
        if Array.length h.buckets = Array.length d.buckets then
          Array.iteri (fun i n -> d.buckets.(i) <- d.buckets.(i) + n) h.buckets;
        d.n <- d.n + h.n;
        d.sum <- d.sum +. h.sum;
        if h.lo < d.lo then d.lo <- h.lo;
        if h.hi > d.hi then d.hi <- h.hi
      end)
    src.histograms
