(** A typed metrics registry: counters, gauges, and log-bucketed latency
    histograms with quantile readout.

    A registry created with [~enabled:false] hands out dead instruments:
    every [incr]/[set]/[observe] is a single boolean test and no storage is
    allocated for histogram buckets, so instrumented code can keep its
    metric handles unconditionally and pay nothing when observability is
    off. Instruments are identified by name within their registry; asking
    for the same name twice returns the same instrument. *)

type t
type counter
type gauge
type histogram

val create : ?enabled:bool -> unit -> t
(** [enabled] defaults to [true]. *)

val enabled : t -> bool

(** {1 Counters} — monotonically increasing integers. *)

val counter : t -> string -> counter
val incr : ?by:int -> counter -> unit
val count : counter -> int

(** {1 Gauges} — last-write-wins floats. *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val value : gauge -> float

(** {1 Histograms}

    Log-bucketed at 8 buckets per power of two (≈ 9% relative resolution),
    spanning [2^-32, 2^32] with underflow/overflow clamping; non-positive
    observations land in a dedicated zero bucket. Exact count, sum, min and
    max are tracked alongside the buckets, and quantile estimates are
    clamped to the observed [min, max]. *)

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float
(** [nan] when empty. *)

val hist_min : histogram -> float
val hist_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1] (clamped); [nan] when empty. The
    estimate is the geometric midpoint of the bucket holding the rank-[q]
    observation, so its relative error is bounded by the bucket width.
    The edges are exact rather than bucket artifacts: one observation
    reads itself at every [q], and the extreme ranks (rank 1 and rank
    [n], e.g. any [q] with a two-observation histogram) read the tracked
    exact min/max. *)

(** {2 Bucket geometry}

    The shared log-bucket layout, exposed for {!Obs_window}'s rolling
    histograms so windowed and cumulative quantiles agree bucket-for-
    bucket. *)

val n_buckets : int
val bucket_of : float -> int
(** Bucket index for a value; bucket 0 holds zero/negative values. *)

val bucket_value : int -> float
(** Geometric midpoint of a bucket (0 for bucket 0) — the minimax
    representative under relative error. *)

val hist_to_json : ?buckets:bool -> histogram -> Obs_json.t
(** [{count; sum; mean; min; max; p50; p90; p99}]. With [~buckets:true],
    adds a ["buckets"] list of [{lo; hi; count}] rows — the raw occupied
    bucket boundaries and counts, for downstream plotting. The zero bucket
    is reported as the degenerate range [\[0, 0\]]. Default [false]. *)

val to_json : t -> Obs_json.t
(** Whole-registry document: counters, gauges and histogram summaries,
    each section sorted by instrument name. *)

val merge : into:t -> t -> unit
(** [merge ~into src] adds [src]'s instruments into [into], matching by
    name and creating missing instruments, in the style of
    [Engine.Counters.merge]: counters add, gauges sum, histograms add
    bucket-wise with count/sum accumulated and min/max combined. Used to
    aggregate per-shard registries. A disabled [into] absorbs nothing. *)
