(* The divergence profiler: attribute the engine's simulated clock to
   blocks and kernels, and account for how much of each charged second
   actually ran useful lanes.

   Attribution works by context, not by payload: [Launched] spans carry
   only a kind and a name ("block" for every fused block), so the profiler
   remembers the most recent [Step]/[Occupancy] pair and charges the next
   fused-block span to that block. The pairing is per-domain — a sharded
   run drives one VM and one engine per OCaml domain, and each shard's
   spans interleave with its own steps on that domain — so all dispatch
   state lives in a per-domain channel keyed by [Domain.self ()]. One
   mutex guards the whole profiler; contention is negligible next to the
   simulated work being profiled. *)

type channel = {
  domain : int;
  mutable shard : int;
  (* Attribution context: the block announced by the latest Step/Occupancy
     on this domain, -1 before the first one. *)
  mutable block : int;
  mutable active : int;
  mutable live : int;
  mutable total : int;
  (* End of the last engine span seen on this domain; the gap to the next
     span's [t0] is simulated time charged without a span (none is emitted
     by a current engine, but the profiler must conserve time even if a
     future charge forgets its span). *)
  mutable last_t1 : float;
  metrics : Obs_metrics.t;
}

type block_row = {
  block : int;
  execs : int;
  charged : float;
  effective : float;
  steps : int;
  active_lanes : int;
  live_lanes : int;
  total_lanes : int;
}

type kernel_row = { kernel : string; launches : int; charged : float }

type collective_row = {
  collective : string;
  count : int;
  charged : float;
  bytes : float;
}

(* Mutable accumulator cells behind the public immutable rows. *)
type block_cell = {
  mutable b_execs : int;
  mutable b_charged : float;
  mutable b_effective : float;
  mutable b_steps : int;
  mutable b_active : int;
  mutable b_live : int;
  mutable b_total : int;
}

type kernel_cell = { mutable k_launches : int; mutable k_charged : float }

type collective_cell = {
  mutable c_count : int;
  mutable c_charged : float;
  mutable c_bytes : float;
}

type t = {
  mutex : Mutex.t;
  frames : string array array;
  channels : (int, channel) Hashtbl.t;
  blocks : (int, block_cell) Hashtbl.t;
  kernels : (string, kernel_cell) Hashtbl.t;
  collectives : (string, collective_cell) Hashtbl.t;
  mutable host : float;
  mutable unattributed : float;
  mutable supersteps : int;
  (* Lane-migration attribution: every [Migration] event, split into
     same-shard defragmentation moves and cross-shard steals. *)
  mutable migrations : int;
  mutable steals : int;
  mutable migration_bytes : float;
}

let create ?(frames = [||]) () =
  {
    mutex = Mutex.create ();
    frames;
    channels = Hashtbl.create 8;
    blocks = Hashtbl.create 64;
    kernels = Hashtbl.create 16;
    collectives = Hashtbl.create 8;
    host = 0.;
    unattributed = 0.;
    supersteps = 0;
    migrations = 0;
    steals = 0;
    migration_bytes = 0.;
  }

let channel t =
  let id = (Domain.self () :> int) in
  match Hashtbl.find_opt t.channels id with
  | Some ch -> ch
  | None ->
    let ch =
      {
        domain = id;
        shard = 0;
        block = -1;
        active = 0;
        live = 0;
        total = 0;
        last_t1 = 0.;
        metrics = Obs_metrics.create ();
      }
    in
    Hashtbl.add t.channels id ch;
    ch

let block_cell t block =
  match Hashtbl.find_opt t.blocks block with
  | Some c -> c
  | None ->
    let c =
      {
        b_execs = 0;
        b_charged = 0.;
        b_effective = 0.;
        b_steps = 0;
        b_active = 0;
        b_live = 0;
        b_total = 0;
      }
    in
    Hashtbl.add t.blocks block c;
    c

let kernel_cell t name =
  match Hashtbl.find_opt t.kernels name with
  | Some c -> c
  | None ->
    let c = { k_launches = 0; k_charged = 0. } in
    Hashtbl.add t.kernels name c;
    c

let collective_cell t name =
  match Hashtbl.find_opt t.collectives name with
  | Some c -> c
  | None ->
    let c = { c_count = 0; c_charged = 0.; c_bytes = 0. } in
    Hashtbl.add t.collectives name c;
    c

(* Fill the gap between the previous span's end and this span's start:
   simulated time the engine advanced without emitting a span. *)
let account_gap t ch ~t0 ~t1 =
  let gap = t0 -. ch.last_t1 in
  if gap > 0. then t.host <- t.host +. gap;
  if t1 > ch.last_t1 then ch.last_t1 <- t1

let on_event t ev =
  match ev with
  | Obs_sink.Step { shard; block; _ } ->
    let ch = channel t in
    ch.shard <- shard;
    ch.block <- block
  | Obs_sink.Occupancy { shard; block; active; live; total; _ } ->
    let ch = channel t in
    ch.shard <- shard;
    ch.block <- block;
    ch.active <- active;
    ch.live <- live;
    ch.total <- total;
    t.supersteps <- t.supersteps + 1;
    let c = block_cell t block in
    c.b_steps <- c.b_steps + 1;
    c.b_active <- c.b_active + active;
    c.b_live <- c.b_live + live;
    c.b_total <- c.b_total + total;
    Obs_metrics.incr (Obs_metrics.counter ch.metrics "supersteps");
    Obs_metrics.observe
      (Obs_metrics.histogram ch.metrics "active_lanes")
      (float_of_int active);
    if total > 0 then
      Obs_metrics.observe
        (Obs_metrics.histogram ch.metrics "utilization_pct")
        (100. *. float_of_int active /. float_of_int total)
  | Obs_sink.Launched { kind = Obs_sink.Fused_block; t0; t1; _ } ->
    let ch = channel t in
    account_gap t ch ~t0 ~t1;
    let dur = t1 -. t0 in
    Obs_metrics.incr (Obs_metrics.counter ch.metrics "block_launches");
    Obs_metrics.observe (Obs_metrics.histogram ch.metrics "block_seconds") dur;
    if ch.block < 0 then t.unattributed <- t.unattributed +. dur
    else begin
      let c = block_cell t ch.block in
      c.b_execs <- c.b_execs + 1;
      c.b_charged <- c.b_charged +. dur;
      c.b_effective <-
        c.b_effective
        +.
        if ch.total > 0 then
          dur *. float_of_int ch.active /. float_of_int ch.total
        else dur
    end
  | Obs_sink.Launched { kind = Obs_sink.Kernel; name; t0; t1 } ->
    let ch = channel t in
    account_gap t ch ~t0 ~t1;
    Obs_metrics.incr (Obs_metrics.counter ch.metrics "kernel_launches");
    let c = kernel_cell t name in
    c.k_launches <- c.k_launches + 1;
    c.k_charged <- c.k_charged +. (t1 -. t0)
  | Obs_sink.Collective { name; bytes; t0; t1 } ->
    (* Collectives live on the mesh timeline, not a single engine's clock:
       they neither close gaps nor count toward engine conservation. *)
    let ch = channel t in
    Obs_metrics.incr (Obs_metrics.counter ch.metrics "collectives");
    let c = collective_cell t name in
    c.c_count <- c.c_count + 1;
    c.c_charged <- c.c_charged +. (t1 -. t0);
    c.c_bytes <- c.c_bytes +. bytes
  | Obs_sink.Migration { src_shard; dst_shard; bytes; _ } ->
    let ch = channel t in
    t.migrations <- t.migrations + 1;
    if src_shard <> dst_shard then t.steals <- t.steals + 1;
    t.migration_bytes <- t.migration_bytes +. bytes;
    Obs_metrics.incr (Obs_metrics.counter ch.metrics "migrations")
  | Obs_sink.Launch _ | Obs_sink.Request_enqueued _ | Obs_sink.Request_shed _
  | Obs_sink.Request_rejected _ | Obs_sink.Request_completed _
  | Obs_sink.Checkpoint _ | Obs_sink.Restore _ | Obs_sink.Span _
  | Obs_sink.Ladder _ | Obs_sink.Slo_alert _ ->
    ()

let sink t : Obs_sink.t =
 fun ev -> Mutex.protect t.mutex (fun () -> on_event t ev)

(* ------------------------------------------------------------------ *)
(* Readout. All readers take the mutex, so a profile can be inspected
   while shards are still running (e.g. from a serving loop). *)

let block_rows t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun block c acc ->
          {
            block;
            execs = c.b_execs;
            charged = c.b_charged;
            effective = c.b_effective;
            steps = c.b_steps;
            active_lanes = c.b_active;
            live_lanes = c.b_live;
            total_lanes = c.b_total;
          }
          :: acc)
        t.blocks []
      |> List.sort (fun (a : block_row) (b : block_row) ->
             match compare b.charged a.charged with
             | 0 -> compare a.block b.block
             | c -> c))

let kernel_rows t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun kernel c acc ->
          { kernel; launches = c.k_launches; charged = c.k_charged } :: acc)
        t.kernels []
      |> List.sort (fun (a : kernel_row) (b : kernel_row) ->
             match compare b.charged a.charged with
             | 0 -> compare a.kernel b.kernel
             | c -> c))

let collective_rows t =
  Mutex.protect t.mutex (fun () ->
      Hashtbl.fold
        (fun collective c acc ->
          {
            collective;
            count = c.c_count;
            charged = c.c_charged;
            bytes = c.c_bytes;
          }
          :: acc)
        t.collectives []
      |> List.sort (fun a b ->
             match compare b.charged a.charged with
             | 0 -> compare a.collective b.collective
             | c -> c))

let host_time t = Mutex.protect t.mutex (fun () -> t.host)
let migrations t = Mutex.protect t.mutex (fun () -> t.migrations)
let steals t = Mutex.protect t.mutex (fun () -> t.steals)
let migration_bytes t = Mutex.protect t.mutex (fun () -> t.migration_bytes)
let unattributed_time t = Mutex.protect t.mutex (fun () -> t.unattributed)
let supersteps t = Mutex.protect t.mutex (fun () -> t.supersteps)

let collective_time t =
  List.fold_left
    (fun acc (r : collective_row) -> acc +. r.charged)
    0. (collective_rows t)

let attributed t =
  let blocks =
    List.fold_left
      (fun acc (r : block_row) -> acc +. r.charged)
      0. (block_rows t)
  and kernels =
    List.fold_left
      (fun acc (r : kernel_row) -> acc +. r.charged)
      0. (kernel_rows t)
  in
  blocks +. kernels +. host_time t +. unattributed_time t

let lane_sums t =
  List.fold_left
    (fun (a, l, z) (r : block_row) ->
      (a + r.active_lanes, l + r.live_lanes, z + r.total_lanes))
    (0, 0, 0) (block_rows t)

let utilization t =
  let a, _, z = lane_sums t in
  if z = 0 then 1. else float_of_int a /. float_of_int z

let divergence_waste t =
  let a, l, z = lane_sums t in
  if z = 0 then 0. else float_of_int (l - a) /. float_of_int z

let idle_waste t =
  let _, l, z = lane_sums t in
  if z = 0 then 0. else float_of_int (z - l) /. float_of_int z

let effective_utilization t =
  let rows = block_rows t in
  let charged =
    List.fold_left (fun acc (r : block_row) -> acc +. r.charged) 0. rows
  and effective =
    List.fold_left (fun acc (r : block_row) -> acc +. r.effective) 0. rows
  in
  if charged = 0. then 1. else effective /. charged

let metrics t =
  let merged = Obs_metrics.create () in
  let channels =
    Mutex.protect t.mutex (fun () ->
        Hashtbl.fold (fun _ ch acc -> ch :: acc) t.channels []
        |> List.sort (fun a b -> compare a.domain b.domain))
  in
  List.iter (fun ch -> Obs_metrics.merge ~into:merged ch.metrics) channels;
  merged

(* ------------------------------------------------------------------ *)
(* Folded-stacks export (flamegraph.pl format: one "frame;frame;... N"
   line per stack, weight in integer nanoseconds of simulated time). *)

let frame_of t block =
  if block >= 0 && block < Array.length t.frames
     && Array.length t.frames.(block) > 0
  then String.concat ";" (Array.to_list t.frames.(block))
  else Printf.sprintf "block_%d" block

let folded t =
  let ns seconds = int_of_float (Float.round (seconds *. 1e9)) in
  (* Distinct merged blocks can share a frame stack (same source function
     and local index inlined at several merge points); aggregate them, as
     flamegraph.pl would, so each stack appears once. *)
  let weights : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  let add stack seconds =
    match Hashtbl.find_opt weights stack with
    | Some cell -> cell := !cell +. seconds
    | None -> Hashtbl.add weights stack (ref seconds)
  in
  List.iter
    (fun (r : block_row) -> add (frame_of t r.block) r.charged)
    (block_rows t);
  List.iter
    (fun (r : kernel_row) ->
      add (Printf.sprintf "(kernel);%s" r.kernel) r.charged)
    (kernel_rows t);
  List.iter
    (fun (r : collective_row) ->
      add (Printf.sprintf "(collective);%s" r.collective) r.charged)
    (collective_rows t);
  add "(host)" (host_time t);
  add "(unattributed)" (unattributed_time t);
  let lines =
    Hashtbl.fold
      (fun stack w acc ->
        let n = ns !w in
        if n > 0 then Printf.sprintf "%s %d" stack n :: acc else acc)
      weights []
    |> List.sort compare
  in
  String.concat "" (List.map (fun l -> l ^ "\n") lines)

(* ------------------------------------------------------------------ *)
(* JSON document. *)

let to_json t =
  let blocks =
    List.map
      (fun r ->
        Obs_json.Obj
          [
            ("block", Obs_json.Int r.block);
            ("execs", Obs_json.Int r.execs);
            ("charged_seconds", Obs_json.Float r.charged);
            ("effective_seconds", Obs_json.Float r.effective);
            ("steps", Obs_json.Int r.steps);
            ("active_lanes", Obs_json.Int r.active_lanes);
            ("live_lanes", Obs_json.Int r.live_lanes);
            ("total_lanes", Obs_json.Int r.total_lanes);
          ])
      (block_rows t)
  and kernels =
    List.map
      (fun r ->
        Obs_json.Obj
          [
            ("kernel", Obs_json.Str r.kernel);
            ("launches", Obs_json.Int r.launches);
            ("charged_seconds", Obs_json.Float r.charged);
          ])
      (kernel_rows t)
  and collectives =
    List.map
      (fun r ->
        Obs_json.Obj
          [
            ("collective", Obs_json.Str r.collective);
            ("count", Obs_json.Int r.count);
            ("charged_seconds", Obs_json.Float r.charged);
            ("bytes", Obs_json.Float r.bytes);
          ])
      (collective_rows t)
  in
  Obs_json.Obj
    [
      ("supersteps", Obs_json.Int (supersteps t));
      ("attributed_seconds", Obs_json.Float (attributed t));
      ("host_seconds", Obs_json.Float (host_time t));
      ("unattributed_seconds", Obs_json.Float (unattributed_time t));
      ("collective_seconds", Obs_json.Float (collective_time t));
      ("utilization", Obs_json.Float (utilization t));
      ("effective_utilization", Obs_json.Float (effective_utilization t));
      ("divergence_waste", Obs_json.Float (divergence_waste t));
      ("idle_waste", Obs_json.Float (idle_waste t));
      ("migrations", Obs_json.Int (migrations t));
      ("steals", Obs_json.Int (steals t));
      ("migration_bytes", Obs_json.Float (migration_bytes t));
      ("blocks", Obs_json.List blocks);
      ("kernels", Obs_json.List kernels);
      ("collectives", Obs_json.List collectives);
      ("metrics", Obs_metrics.to_json (metrics t));
    ]
