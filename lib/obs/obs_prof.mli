(** The divergence profiler: per-block/per-kernel attribution of the
    engine's simulated clock, lane-utilization accounting, and
    folded-stacks flamegraph export.

    Feed it events by installing {!sink} both as the VM's sink (for
    [Step]/[Occupancy]) and as the engine's sink via [Engine.set_sink]
    (for [Launched] spans) — the same double-wiring tracing uses. The
    profiler never perturbs the run: it only reads events, so outputs and
    the simulated clock are bitwise identical with it attached.

    {b Attribution-context rules.} [Launched] spans don't say which block
    charged them, so the profiler pairs each fused-block span with the
    most recent [Step]/[Occupancy] seen {e on the same OCaml domain}: the
    VMs emit Step, then Occupancy, then execute the block (which charges
    the engine), all on one domain, and a sharded run gives each shard its
    own domain, VM and engine. Kernel spans are attributed by kernel name;
    [Collective] spans sit on the mesh timeline and are tallied
    separately; simulated time the engine advances without emitting a span
    shows up as {!host_time} (gap accounting), so attributed time always
    sums to the engine's total. *)

type t

type block_row = {
  block : int;  (** merged (global) block id *)
  execs : int;  (** fused-block spans attributed to this block *)
  charged : float;  (** simulated seconds charged by those spans *)
  effective : float;
      (** lane-weighted useful seconds: each span's duration scaled by its
          superstep's [active/total] *)
  steps : int;  (** supersteps that scheduled this block *)
  active_lanes : int;  (** Σ active over those supersteps *)
  live_lanes : int;  (** Σ live *)
  total_lanes : int;  (** Σ total *)
}

type kernel_row = { kernel : string; launches : int; charged : float }

type collective_row = {
  collective : string;
  count : int;
  charged : float;
  bytes : float;
}

val create : ?frames:string array array -> unit -> t
(** [frames.(b)] is the root-first call-stack frame list for merged block
    [b] (see [Harness.Profile.flame_frames]), used by {!folded}; blocks
    without frames fall back to ["block_<b>"]. Default: no frames. *)

val sink : t -> Obs_sink.t
(** Thread-safe; install on every VM config {e and} engine involved in
    the run (shard-tagged sinks from [Shard_vm] land here too). *)

(** {1 Attribution readout} — sorted by charged time, descending. *)

val block_rows : t -> block_row list
val kernel_rows : t -> kernel_row list
val collective_rows : t -> collective_row list

val host_time : t -> float
(** Simulated seconds between spans — engine charges with no span. *)

val unattributed_time : t -> float
(** Fused-block spans seen before any [Step] context on their domain. *)

val collective_time : t -> float

val attributed : t -> float
(** Blocks + kernels + {!host_time} + {!unattributed_time}; equals the
    summed engine clock(s) up to float addition error (collectives are
    excluded — they overlap compute on the mesh timeline). *)

(** {1 Utilization accounting} — over all [Occupancy] events. *)

val supersteps : t -> int

val utilization : t -> float
(** Σ active / Σ total (1.0 when no occupancy events were seen). *)

val effective_utilization : t -> float
(** Time-weighted: Σ effective / Σ charged over block rows. *)

val divergence_waste : t -> float
(** Σ (live − active) / Σ total: live lanes masked off by divergence. *)

val idle_waste : t -> float
(** Σ (total − live) / Σ total: lanes already halted (batch drain). *)

(** {1 Migration attribution} — over all [Migration] events, so a
    before/after utilization comparison (see [Harness.Profile]'s compare
    readout) can attribute occupancy gains to the lane moves that bought
    them. *)

val migrations : t -> int
(** All lane moves, defragmentation and steals alike. *)

val steals : t -> int
(** Cross-shard moves only ([src_shard <> dst_shard]). *)

val migration_bytes : t -> float
(** Total migrated payload. *)

val metrics : t -> Obs_metrics.t
(** Per-domain registries (superstep/launch counters, active-lane and
    utilization histograms) aggregated with {!Obs_metrics.merge}. *)

(** {1 Export} *)

val folded : t -> string
(** flamegraph.pl-compatible folded stacks: one ["frame;frame;... N"]
    line per block stack (plus synthetic [(kernel)], [(collective)],
    [(host)] and [(unattributed)] roots), weights in integer nanoseconds
    of simulated time, lines sorted, zero-weight lines dropped. *)

val to_json : t -> Obs_json.t
