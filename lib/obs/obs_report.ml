let document ~name fields =
  Obs_json.Obj
    (("report", Obs_json.Str name) :: ("schema_version", Obs_json.Int 1) :: fields)

let to_string doc = Obs_json.to_string_pretty doc ^ "\n"
let print doc = print_string (to_string doc)

let write ~path doc =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_string doc))
