(** Machine-readable report documents.

    A report is one JSON object merging whatever readouts a harness run
    produced — engine counter snapshots, instrument utilization, latency
    histograms, per-shard timelines. This module only standardizes the
    envelope and the output plumbing; each harness assembles its own
    fields. *)

val document : name:string -> (string * Obs_json.t) list -> Obs_json.t
(** [{"report": name, "schema_version": 1, ...fields}]. *)

val to_string : Obs_json.t -> string
(** Pretty-printed, newline-terminated. *)

val print : Obs_json.t -> unit
(** Write to stdout. *)

val write : path:string -> Obs_json.t -> unit
