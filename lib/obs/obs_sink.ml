type launch_kind = Kernel | Fused_block

type event =
  | Step of { shard : int; step : int; block : int }
  | Launch of { kind : launch_kind; name : string }
  | Launched of { kind : launch_kind; name : string; t0 : float; t1 : float }
  | Collective of { name : string; bytes : float; t0 : float; t1 : float }
  | Request_enqueued of { id : int; at : float }
  | Request_shed of { id : int; at : float }
  | Request_rejected of { id : int; at : float }
  | Request_completed of {
      id : int;
      queued : float;
      started : float;
      finished : float;
    }
  | Checkpoint of { step : int; bytes : int }
  | Restore of { step : int }
  | Occupancy of {
      shard : int;
      step : int;
      block : int;
      active : int;
      live : int;
      total : int;
    }
  | Migration of {
      src_shard : int;
      dst_shard : int;
      member : int;
      bytes : float;
      step : int;
    }
  | Span of {
      trace : int;
      span : int;
      parent : int;
      track : int;
      name : string;
      t0 : float;
      t1 : float;
    }
  | Ladder of { level : string; occupancy : float; cause : string; at : float }
  | Slo_alert of {
      slo : string;
      fired : bool;
      burn_fast : float;
      burn_slow : float;
      at : float;
    }

type t = event -> unit

let null (_ : event) = ()
let fanout sinks ev = List.iter (fun sink -> sink ev) sinks

let tag_shard shard sink ev =
  match ev with
  | Step s -> sink (Step { s with shard })
  | Occupancy o -> sink (Occupancy { o with shard })
  | ev -> sink ev

let kind_name = function
  | Step _ -> "step"
  | Launch _ -> "launch"
  | Launched _ -> "launched"
  | Collective _ -> "collective"
  | Request_enqueued _ -> "enqueue"
  | Request_shed _ -> "shed"
  | Request_rejected _ -> "reject"
  | Request_completed _ -> "complete"
  | Checkpoint _ -> "checkpoint"
  | Restore _ -> "restore"
  | Occupancy _ -> "occupancy"
  | Migration _ -> "migration"
  | Span _ -> "span"
  | Ladder _ -> "ladder"
  | Slo_alert _ -> "slo-alert"
