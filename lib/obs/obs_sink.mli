(** The structured event seam shared by tracing and fault injection.

    A sink is just [event -> unit]. Every runtime layer that used to expose
    an ad-hoc hook (the VM [step_hook]s, [Engine.set_launch_hook]) now takes
    one optional sink and reports what happened as a typed event; consumers
    pattern-match on the constructors they care about and ignore the rest.

    Exceptions deliberately propagate: a sink that raises aborts the action
    it observes, exactly like the old hooks. In particular a sink raising on
    {!Step} aborts that superstep before the block executes, and raising on
    {!Launch} poisons the launch before any cost is charged — the seams the
    resilience layer's fault injector relies on. *)

type launch_kind = Kernel | Fused_block

type event =
  | Step of { shard : int; step : int; block : int }
      (** A VM superstep is about to execute [block]. [step] counts from 1;
          [shard] is 0 outside sharded runs. Fired after the scheduler
          picks, before the block runs. *)
  | Launch of { kind : launch_kind; name : string }
      (** A kernel or fused block is about to launch, before any cost is
          charged. This is the fault-injection point. *)
  | Launched of { kind : launch_kind; name : string; t0 : float; t1 : float }
      (** The same launch, after charging: a completed span on the engine's
          simulated clock. *)
  | Collective of { name : string; bytes : float; t0 : float; t1 : float }
      (** A mesh collective (all-reduce, all-gather) span. *)
  | Request_enqueued of { id : int; at : float }
  | Request_shed of { id : int; at : float }
  | Request_rejected of { id : int; at : float }
  | Request_completed of {
      id : int;
      queued : float;
      started : float;
      finished : float;
    }
      (** A served request's full lifecycle: queue wait [queued, started)
          then service [started, finished). *)
  | Checkpoint of { step : int; bytes : int }
  | Restore of { step : int }
  | Occupancy of {
      shard : int;
      step : int;
      block : int;
      active : int;
      live : int;
      total : int;
    }
      (** Lane occupancy for the superstep announced by the preceding
          {!Step}: of [total] batch lanes, [live] have not yet halted and
          [active] are executing the scheduled [block] (the rest of the
          live lanes are masked off — divergence waste; [total - live] is
          idle/drain waste). Invariant: [0 <= active <= live <= total].
          Fired right after {!Step}, before the block runs, so a profiler
          can use it as the attribution context for the engine spans the
          block charges. *)
  | Migration of {
      src_shard : int;
      dst_shard : int;
      member : int;
      bytes : float;
      step : int;
    }
      (** A live batch member's lane state moved between lanes — within
          one shard ([src_shard = dst_shard], a defragmentation move) or
          across shards (a work steal, priced by [Collectives.p2p_time]).
          [step] is the defragmenting runtime's planning round; [bytes]
          the migrated payload. Occupancy improvements then show up in
          the ordinary {!Occupancy} stream, and this event attributes
          them to the migrations that caused them. *)
  | Span of {
      trace : int;
      span : int;
      parent : int;
      track : int;
      name : string;
      t0 : float;
      t1 : float;
    }
      (** A completed request-scoped span on the simulated clock:
          [\[t0, t1\]] with [t0 = t1] for instants. [trace] groups the
          spans of one request (the {!Obs_span.ctx} carried on the
          request; negative traces are operational, e.g. [-1] for
          server-lifecycle spans and [-2] for program-cache spans, and
          are exempt from the one-root rule). [span] is the emitter's
          deterministic span id, [parent] the enclosing span's id ([-1]
          for roots), and [track] the Perfetto track — the tenant id for
          request traces, [-1] for the operational track. Emitters close
          spans before emitting, so consumers never see half-open
          intervals, and request trees are emitted only when the request
          leaves the recovery rollback window (exactly once per
          completion, kills or not). *)
  | Ladder of { level : string; occupancy : float; cause : string; at : float }
      (** The admission degradation ladder settled on [level] (an
          {!Admission.level_name}) at occupancy [occupancy]. [cause] is
          ["occupancy"] for ordinary hysteresis transitions and
          ["slo-floor"] when an {!Obs_slo} burn-rate alert forced the
          floor — the event that makes rung changes explicable. *)
  | Slo_alert of {
      slo : string;
      fired : bool;
      burn_fast : float;
      burn_slow : float;
      at : float;
    }
      (** A multi-window burn-rate alert for SLO class [slo] changed
          state: [fired = true] when both window burn rates crossed the
          threshold, [false] when the alert resolved. *)

type t = event -> unit

val null : t
(** Discards everything. *)

val fanout : t list -> t
(** Deliver each event to every sink, in list order. An exception from an
    earlier sink skips the later ones (and aborts the observed action). *)

val tag_shard : int -> t -> t
(** Rewrite the [shard] field of {!Step} and {!Occupancy} events; other
    events pass through. [Shard_vm] uses this so one user sink sees
    correctly-labelled steps from every shard. *)

val kind_name : event -> string
(** Short stable tag for CSV export ("step", "launch", ..., "span",
    "ladder", "slo-alert"). Every constructor maps to a distinct tag;
    existing tags never change (downstream CSV consumers key on them). *)
