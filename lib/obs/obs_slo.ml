(* Multi-window burn-rate monitoring, SRE-workbook style, on the
   simulated clock. Each SLO class has an error budget (the fraction of
   requests allowed to miss their latency threshold or be dropped); the
   burn rate is the observed bad fraction divided by that budget. An
   alert fires only when BOTH a fast and a slow window burn hot — the
   fast window gives detection latency, the slow window immunity to
   blips — and resolves with hysteresis at half the firing threshold.
   Everything is deterministic: windows live on the simulated clock. *)

type class_config = {
  cls : string;
  threshold : float;
  budget : float;
  fast_window : float;
  slow_window : float;
  burn_threshold : float;
}

let class_config ?(budget = 0.05) ?(fast_window = 60.) ?(slow_window = 360.)
    ?(burn_threshold = 2.) ~cls ~threshold () =
  if threshold <= 0. then invalid_arg "Obs_slo.class_config: threshold must be positive";
  if not (budget > 0. && budget <= 1.) then
    invalid_arg "Obs_slo.class_config: budget must be in (0, 1]";
  if not (fast_window < slow_window) then
    invalid_arg "Obs_slo.class_config: fast_window must sit below slow_window";
  if burn_threshold <= 0. then
    invalid_arg "Obs_slo.class_config: burn_threshold must be positive";
  { cls; threshold; budget; fast_window; slow_window; burn_threshold }

type state = {
  config : class_config;
  fast_total : Obs_window.counter;
  fast_bad : Obs_window.counter;
  slow_total : Obs_window.counter;
  slow_bad : Obs_window.counter;
  mutable firing : bool;
  mutable fired_count : int;
  mutable resolved_count : int;
  mutable observed : int;
  mutable breached : int;
}

type t = { classes : (string * state) list }

let create ~classes () =
  if classes = [] then invalid_arg "Obs_slo.create: at least one class";
  let state config =
    {
      config;
      fast_total = Obs_window.counter ~window:config.fast_window ();
      fast_bad = Obs_window.counter ~window:config.fast_window ();
      slow_total = Obs_window.counter ~window:config.slow_window ();
      slow_bad = Obs_window.counter ~window:config.slow_window ();
      firing = false;
      fired_count = 0;
      resolved_count = 0;
      observed = 0;
      breached = 0;
    }
  in
  { classes = List.map (fun c -> (c.cls, state c)) classes }

let find t cls = List.assoc_opt cls t.classes

let observe t ~cls ~now ~ok =
  match find t cls with
  | None -> ()
  | Some s ->
    s.observed <- s.observed + 1;
    Obs_window.add s.fast_total ~now 1.;
    Obs_window.add s.slow_total ~now 1.;
    if not ok then begin
      s.breached <- s.breached + 1;
      Obs_window.add s.fast_bad ~now 1.;
      Obs_window.add s.slow_bad ~now 1.
    end

let observe_latency t ~cls ~now latency =
  match find t cls with
  | None -> ()
  | Some s -> observe t ~cls ~now ~ok:(latency <= s.config.threshold)

let burn total bad budget ~now =
  let n = Obs_window.total total ~now in
  if n <= 0. then 0. else Obs_window.total bad ~now /. n /. budget

let burn_rates t ~cls ~now =
  match find t cls with
  | None -> (0., 0.)
  | Some s ->
    ( burn s.fast_total s.fast_bad s.config.budget ~now,
      burn s.slow_total s.slow_bad s.config.budget ~now )

let firing t ~cls =
  match find t cls with None -> false | Some s -> s.firing

let any_firing t = List.exists (fun (_, s) -> s.firing) t.classes

type alert = {
  a_cls : string;
  a_fired : bool;  (* true = fired, false = resolved *)
  a_burn_fast : float;
  a_burn_slow : float;
  a_at : float;
}

let poll t ~now =
  List.filter_map
    (fun (cls, s) ->
      let bf = burn s.fast_total s.fast_bad s.config.budget ~now in
      let bs = burn s.slow_total s.slow_bad s.config.budget ~now in
      let thr = s.config.burn_threshold in
      if (not s.firing) && bf >= thr && bs >= thr then begin
        s.firing <- true;
        s.fired_count <- s.fired_count + 1;
        Some { a_cls = cls; a_fired = true; a_burn_fast = bf; a_burn_slow = bs; a_at = now }
      end
      else if s.firing && bf < thr /. 2. && bs < thr /. 2. then begin
        s.firing <- false;
        s.resolved_count <- s.resolved_count + 1;
        Some { a_cls = cls; a_fired = false; a_burn_fast = bf; a_burn_slow = bs; a_at = now }
      end
      else None)
    t.classes

let fired_total t =
  List.fold_left (fun acc (_, s) -> acc + s.fired_count) 0 t.classes

let alert_to_event al =
  Obs_sink.Slo_alert
    {
      slo = al.a_cls;
      fired = al.a_fired;
      burn_fast = al.a_burn_fast;
      burn_slow = al.a_burn_slow;
      at = al.a_at;
    }

let to_json t ~now =
  Obs_json.Obj
    (List.map
       (fun (cls, s) ->
         let bf, bs = burn_rates t ~cls ~now in
         ( cls,
           Obs_json.Obj
             [
               ("threshold", Obs_json.Float s.config.threshold);
               ("budget", Obs_json.Float s.config.budget);
               ("fast_window", Obs_json.Float s.config.fast_window);
               ("slow_window", Obs_json.Float s.config.slow_window);
               ("burn_threshold", Obs_json.Float s.config.burn_threshold);
               ("observed", Obs_json.Int s.observed);
               ("breached", Obs_json.Int s.breached);
               ("burn_fast", Obs_json.Float bf);
               ("burn_slow", Obs_json.Float bs);
               ("firing", Obs_json.Bool s.firing);
               ("fired", Obs_json.Int s.fired_count);
               ("resolved", Obs_json.Int s.resolved_count);
             ] ))
       t.classes)
