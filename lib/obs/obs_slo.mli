(** Multi-window burn-rate monitoring per SLO class, on the simulated
    clock.

    Each class has an error budget — the fraction of requests allowed to
    miss their latency threshold (or be shed). The {e burn rate} is the
    observed bad fraction divided by that budget: burn 1 means the
    budget is being consumed exactly at its sustainable pace, burn 2
    means twice as fast. Following the SRE-workbook recipe, an alert
    fires only when {e both} a fast and a slow window burn above the
    threshold: the fast window bounds detection latency, the slow window
    rejects transient blips. Alerts resolve with hysteresis once both
    windows fall below half the firing threshold.

    The monitor is deterministic — windows are {!Obs_window} counters on
    the simulated clock — and string-keyed so it lives below the tenant
    layer: callers feed it [Tenant.slo_name] (or any class key) without
    this module depending on tenant types. [Tenant_server] forwards
    {!poll} results to its sink as [Obs_sink.Slo_alert] events and can
    optionally let a firing alert drive the {!Admission} ladder. *)

type class_config = {
  cls : string;  (** class key, e.g. ["latency"]. *)
  threshold : float;  (** latency bound (simulated seconds) defining "bad". *)
  budget : float;  (** allowed bad fraction, in (0, 1]. *)
  fast_window : float;  (** detection window (simulated seconds). *)
  slow_window : float;  (** confirmation window; must exceed [fast_window]. *)
  burn_threshold : float;  (** fire when both burns reach this. *)
}

val class_config :
  ?budget:float ->
  ?fast_window:float ->
  ?slow_window:float ->
  ?burn_threshold:float ->
  cls:string ->
  threshold:float ->
  unit ->
  class_config
(** Defaults: budget 0.05, fast window 60 s, slow window 360 s, burn
    threshold 2. Raises [Invalid_argument] on non-positive [threshold]
    or [burn_threshold], a budget outside (0, 1], or
    [fast_window >= slow_window]. *)

type t

val create : classes:class_config list -> unit -> t
(** Raises [Invalid_argument] on an empty class list. *)

(** {1 Feeding observations} *)

val observe : t -> cls:string -> now:float -> ok:bool -> unit
(** Record one request outcome for [cls] at simulated time [now].
    Unknown classes are ignored (a tenant with no monitored SLO). *)

val observe_latency : t -> cls:string -> now:float -> float -> unit
(** [observe] with [ok = latency <= threshold] for the class. *)

(** {1 Reading state} *)

val burn_rates : t -> cls:string -> now:float -> float * float
(** [(fast, slow)] burn rates at [now]; [(0, 0)] for unknown classes or
    empty windows. *)

val firing : t -> cls:string -> bool
val any_firing : t -> bool

val fired_total : t -> int
(** Total fire transitions across all classes since creation. *)

(** {1 Polling for alert transitions} *)

type alert = {
  a_cls : string;
  a_fired : bool;  (** [true] = fired, [false] = resolved. *)
  a_burn_fast : float;
  a_burn_slow : float;
  a_at : float;
}

val poll : t -> now:float -> alert list
(** Evaluate every class at [now] and return the state {e transitions}
    (newly fired or newly resolved) — steady states return nothing, so a
    caller polling every round emits each alert edge exactly once. *)

val alert_to_event : alert -> Obs_sink.event
(** The [Obs_sink.Slo_alert] image of an alert, for forwarding to a
    sink. *)

val to_json : t -> now:float -> Obs_json.t
(** Per-class document: config, lifetime observed/breached counts,
    current burn rates and firing state, fired/resolved totals. *)
