(* Request-scoped spans over the Obs_sink seam. The emitters (the tenant
   server, the program cache, ...) publish completed spans as
   [Obs_sink.Span] events; this module is the consumer side — a bounded
   recorder, a tree validator, and the Perfetto/JSON exporters. *)

type ctx = { trace : int; parent : int }

let no_parent = -1
let ops_trace = -1
let cache_trace = -2
let ops_track = -1

let ctx ?(parent = no_parent) ~trace () = { trace; parent }

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_track : int;
  sp_name : string;
  sp_t0 : float;
  sp_t1 : float;
}

type t = {
  mutex : Mutex.t;
  limit : int;
  mutable rev_spans : span list;
  mutable n : int;
  mutable dropped : int;
}

let create ?(limit = 2_000_000) () =
  { mutex = Mutex.create (); limit; rev_spans = []; n = 0; dropped = 0 }

let record t sp =
  Mutex.protect t.mutex (fun () ->
      if t.n >= t.limit then t.dropped <- t.dropped + 1
      else begin
        t.rev_spans <- sp :: t.rev_spans;
        t.n <- t.n + 1
      end)

let sink t : Obs_sink.t = function
  | Obs_sink.Span { trace; span; parent; track; name; t0; t1 } ->
    record t
      {
        sp_trace = trace;
        sp_id = span;
        sp_parent = parent;
        sp_track = track;
        sp_name = name;
        sp_t0 = t0;
        sp_t1 = t1;
      }
  | _ -> ()

let spans t = Mutex.protect t.mutex (fun () -> List.rev t.rev_spans)
let length t = Mutex.protect t.mutex (fun () -> t.n)
let dropped t = Mutex.protect t.mutex (fun () -> t.dropped)

let count_named t name =
  Mutex.protect t.mutex (fun () ->
      List.fold_left
        (fun acc sp -> if sp.sp_name = name then acc + 1 else acc)
        0 t.rev_spans)

(* ------------------------------------------------------------------ *)
(* Validation. Request traces (trace >= 0) must each form one rooted
   tree: exactly one parentless span, every other span's parent present
   in the same trace, and every child's interval nested within its
   parent's (with a small absolute slack for float noise). Operational
   traces (negative ids) are streams of instants with no root, so only
   interval sanity applies to them. *)

type tree_stats = {
  traces : int;          (* request traces seen (trace >= 0) *)
  well_formed : int;     (* traces passing all three checks *)
  multi_root : int;      (* traces with zero or >1 roots *)
  orphans : int;         (* spans whose parent id is missing *)
  nest_violations : int; (* child intervals escaping their parent *)
  inverted : int;        (* spans with t1 < t0, any trace *)
}

let eps = 1e-9

let validate t =
  let spans = spans t in
  let by_trace : (int, span list ref) Hashtbl.t = Hashtbl.create 256 in
  let inverted = ref 0 in
  List.iter
    (fun sp ->
      if sp.sp_t1 < sp.sp_t0 -. eps then incr inverted;
      if sp.sp_trace >= 0 then
        match Hashtbl.find_opt by_trace sp.sp_trace with
        | Some cell -> cell := sp :: !cell
        | None -> Hashtbl.add by_trace sp.sp_trace (ref [ sp ]))
    spans;
  let traces = ref 0
  and well = ref 0
  and multi_root = ref 0
  and orphans = ref 0
  and nest = ref 0 in
  Hashtbl.iter
    (fun _trace cell ->
      incr traces;
      let spans = !cell in
      let ids = Hashtbl.create 8 in
      List.iter (fun sp -> Hashtbl.replace ids sp.sp_id sp) spans;
      let roots =
        List.length (List.filter (fun sp -> sp.sp_parent = no_parent) spans)
      in
      let trace_orphans = ref 0 and trace_nest = ref 0 in
      List.iter
        (fun sp ->
          if sp.sp_parent <> no_parent then
            match Hashtbl.find_opt ids sp.sp_parent with
            | None -> incr trace_orphans
            | Some parent ->
              if
                sp.sp_t0 < parent.sp_t0 -. eps
                || sp.sp_t1 > parent.sp_t1 +. eps
              then incr trace_nest)
        spans;
      if roots <> 1 then incr multi_root;
      orphans := !orphans + !trace_orphans;
      nest := !nest + !trace_nest;
      if roots = 1 && !trace_orphans = 0 && !trace_nest = 0 then incr well)
    by_trace;
  {
    traces = !traces;
    well_formed = !well;
    multi_root = !multi_root;
    orphans = !orphans;
    nest_violations = !nest;
    inverted = !inverted;
  }

let all_well_formed t =
  let s = validate t in
  s.traces = s.well_formed && s.inverted = 0

(* ------------------------------------------------------------------ *)
(* Exports. Perfetto (Chrome trace-event) with one thread per track —
   track-per-tenant for request spans, a dedicated ops thread for the
   negative tracks — and a flat JSON list for programmatic use. *)

let us ts = ts *. 1e6

let default_track_name track =
  if track = ops_track then "ops" else Printf.sprintf "tenant %d" track

let to_chrome ?(track_names = []) t =
  let spans = spans t in
  (* Stable, collision-free tids: ops track first, then tenant tracks in
     ascending id order. *)
  let tracks =
    List.sort_uniq compare (List.map (fun sp -> sp.sp_track) spans)
  in
  let tid_of tr =
    let rec index i = function
      | [] -> 0
      | x :: _ when x = tr -> i
      | _ :: rest -> index (i + 1) rest
    in
    index 0 tracks
  in
  let name_of tr =
    match List.assoc_opt tr track_names with
    | Some name -> name
    | None -> default_track_name tr
  in
  let meta =
    List.map
      (fun tr ->
        Obs_json.Obj
          [
            ("name", Obs_json.Str "thread_name");
            ("ph", Obs_json.Str "M");
            ("pid", Obs_json.Int 0);
            ("tid", Obs_json.Int (tid_of tr));
            ("args", Obs_json.Obj [ ("name", Obs_json.Str (name_of tr)) ]);
          ])
      tracks
  in
  let events =
    List.map
      (fun sp ->
        let args =
          [
            ("trace", Obs_json.Int sp.sp_trace);
            ("span", Obs_json.Int sp.sp_id);
            ("parent", Obs_json.Int sp.sp_parent);
          ]
        in
        if sp.sp_t1 > sp.sp_t0 then
          Obs_json.Obj
            [
              ("name", Obs_json.Str sp.sp_name);
              ("cat", Obs_json.Str "span");
              ("ph", Obs_json.Str "X");
              ("pid", Obs_json.Int 0);
              ("tid", Obs_json.Int (tid_of sp.sp_track));
              ("ts", Obs_json.Float (us sp.sp_t0));
              ("dur", Obs_json.Float (us (sp.sp_t1 -. sp.sp_t0)));
              ("args", Obs_json.Obj args);
            ]
        else
          Obs_json.Obj
            [
              ("name", Obs_json.Str sp.sp_name);
              ("cat", Obs_json.Str "span");
              ("ph", Obs_json.Str "i");
              ("pid", Obs_json.Int 0);
              ("tid", Obs_json.Int (tid_of sp.sp_track));
              ("ts", Obs_json.Float (us sp.sp_t0));
              ("s", Obs_json.Str "t");
              ("args", Obs_json.Obj args);
            ])
      spans
  in
  Obs_json.Obj
    [
      ("traceEvents", Obs_json.List (meta @ events));
      ("displayTimeUnit", Obs_json.Str "ms");
      ("otherData", Obs_json.Obj [ ("dropped", Obs_json.Int (dropped t)) ]);
    ]

let span_to_json sp =
  Obs_json.Obj
    [
      ("trace", Obs_json.Int sp.sp_trace);
      ("span", Obs_json.Int sp.sp_id);
      ("parent", Obs_json.Int sp.sp_parent);
      ("track", Obs_json.Int sp.sp_track);
      ("name", Obs_json.Str sp.sp_name);
      ("t0", Obs_json.Float sp.sp_t0);
      ("t1", Obs_json.Float sp.sp_t1);
    ]

let to_json t = Obs_json.List (List.map span_to_json (spans t))

let stats_to_json s =
  Obs_json.Obj
    [
      ("traces", Obs_json.Int s.traces);
      ("well_formed", Obs_json.Int s.well_formed);
      ("multi_root", Obs_json.Int s.multi_root);
      ("orphans", Obs_json.Int s.orphans);
      ("nest_violations", Obs_json.Int s.nest_violations);
      ("inverted", Obs_json.Int s.inverted);
    ]

let write t ~path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Obs_json.to_string (to_chrome t));
      Out_channel.output_char oc '\n')
