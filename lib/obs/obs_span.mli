(** Request-scoped span traces: the consumer side of
    {!Obs_sink.event.Span}.

    Emitters (the tenant server, {!Prog_cache}, ...) publish completed
    spans on the simulated clock as ordinary sink events. This module
    collects them into a bounded recorder, checks that every request's
    spans form one properly-nested tree, and exports Perfetto
    track-per-tenant traces plus a flat JSON document.

    Everything is deterministic: span ids, timestamps, and ordering all
    come from the emitter's simulated clock and deterministic counters,
    so a recorded trace is bitwise replayable under the same seed. *)

(** The trace context carried on a {!Request}: which trace the request's
    spans belong to and, optionally, an upstream parent span to hang the
    request's root under (so a caller can stitch serving traces into its
    own). *)
type ctx = { trace : int; parent : int }

val no_parent : int
(** [-1]: the parent id of a root span. *)

val ops_trace : int
(** [-1]: the operational trace — server-lifecycle instants (pool
    scaling, checkpoint/restore, ladder moves) that belong to no single
    request. Negative traces are exempt from the one-root rule. *)

val cache_trace : int
(** [-2]: the program cache's operational trace (hit/miss/compile). *)

val ops_track : int
(** [-1]: the Perfetto track operational spans render on. *)

val ctx : ?parent:int -> trace:int -> unit -> ctx
(** [parent] defaults to {!no_parent}. *)

type span = {
  sp_trace : int;
  sp_id : int;
  sp_parent : int;
  sp_track : int;
  sp_name : string;
  sp_t0 : float;
  sp_t1 : float;
}

type t

val create : ?limit:int -> unit -> t
(** Bounded recorder; spans past [limit] (default 2M) are counted in
    {!dropped} and discarded. Thread-safe (shard domains share it). *)

val sink : t -> Obs_sink.t
(** Collects {!Obs_sink.event.Span} events; every other event is
    ignored, so this composes with {!Obs_sink.fanout} next to a tracer
    or profiler. *)

val record : t -> span -> unit
val spans : t -> span list  (** in recording order *)

val length : t -> int
val dropped : t -> int

val count_named : t -> string -> int
(** Spans with exactly this name (the gate counts "preempted",
    "migrate", "restore"). *)

(** Tree validation over the request traces ([trace >= 0]): each must
    have exactly one root, no orphaned parent references, and every
    child interval nested within its parent (1ns slack). [inverted]
    counts [t1 < t0] spans across {e all} traces, operational ones
    included. *)
type tree_stats = {
  traces : int;
  well_formed : int;
  multi_root : int;
  orphans : int;
  nest_violations : int;
  inverted : int;
}

val validate : t -> tree_stats

val all_well_formed : t -> bool
(** Every request trace is a single properly-nested tree and no span is
    inverted. *)

val to_chrome : ?track_names:(int * string) list -> t -> Obs_json.t
(** Perfetto/Chrome trace-event document: one thread per track ("X"
    complete events, "i" instants), thread names from [track_names]
    (default ["tenant %d"], ["ops"] for {!ops_track}). *)

val to_json : t -> Obs_json.t
(** Flat list of span records, for {!Obs_report} embedding. *)

val stats_to_json : tree_stats -> Obs_json.t
val write : t -> path:string -> unit  (** {!to_chrome} to a file. *)
