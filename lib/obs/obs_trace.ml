type entry = { track : int; ts : float; ev : Obs_sink.event }

type t = {
  mutex : Mutex.t;
  limit : int;
  mutable rev_entries : entry list;
  mutable n : int;
  mutable dropped : int;
  mutable rev_tracks : (int * string) list;
  mutable next_track : int;
}

let create ?(limit = 500_000) () =
  {
    mutex = Mutex.create ();
    limit;
    rev_entries = [];
    n = 0;
    dropped = 0;
    rev_tracks = [];
    next_track = 0;
  }

let track t name =
  Mutex.protect t.mutex (fun () ->
      let id = t.next_track in
      t.next_track <- id + 1;
      t.rev_tracks <- (id, name) :: t.rev_tracks;
      id)

let record t ~track ~ts ev =
  Mutex.protect t.mutex (fun () ->
      if t.n >= t.limit then t.dropped <- t.dropped + 1
      else begin
        t.rev_entries <- { track; ts; ev } :: t.rev_entries;
        t.n <- t.n + 1
      end)

let sink t ~track ~clock : Obs_sink.t =
 fun ev ->
  match ev with
  | Obs_sink.Launch _ -> ()
  | Obs_sink.Launched { t0; _ } | Obs_sink.Collective { t0; _ } ->
    record t ~track ~ts:t0 ev
  | Obs_sink.Request_enqueued { at; _ }
  | Obs_sink.Request_shed { at; _ }
  | Obs_sink.Request_rejected { at; _ } -> record t ~track ~ts:at ev
  | Obs_sink.Request_completed { queued; _ } -> record t ~track ~ts:queued ev
  | Obs_sink.Span { t0; _ } -> record t ~track ~ts:t0 ev
  | Obs_sink.Ladder { at; _ } | Obs_sink.Slo_alert { at; _ } ->
    record t ~track ~ts:at ev
  | Obs_sink.Step _ | Obs_sink.Checkpoint _ | Obs_sink.Restore _
  | Obs_sink.Occupancy _ | Obs_sink.Migration _ ->
    record t ~track ~ts:(clock ()) ev

let entries t = Mutex.protect t.mutex (fun () -> List.rev t.rev_entries)

let tracks t =
  Mutex.protect t.mutex (fun () ->
      List.sort (fun (a, _) (b, _) -> compare a b) t.rev_tracks)

let dropped t = Mutex.protect t.mutex (fun () -> t.dropped)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                           *)

(* Step events from shard [k] of track [n] render as Chrome thread
   [n * shard_stride + k], so per-shard superstep timelines don't
   interleave. All other events sit on the track's base thread. *)
let shard_stride = 64

let us ts = ts *. 1e6

let chrome_event ~name ~cat ~ph ~tid ~ts ?dur ?(args = []) () =
  let base =
    [
      ("name", Obs_json.Str name);
      ("cat", Obs_json.Str cat);
      ("ph", Obs_json.Str ph);
      ("pid", Obs_json.Int 0);
      ("tid", Obs_json.Int tid);
      ("ts", Obs_json.Float (us ts));
    ]
  in
  let dur = match dur with None -> [] | Some d -> [ ("dur", Obs_json.Float (us d)) ] in
  let args =
    match args with [] -> [] | args -> [ ("args", Obs_json.Obj args) ]
  in
  Obs_json.Obj (base @ dur @ args)

let instant ~name ~cat ~tid ~ts ?(args = []) () =
  let v = chrome_event ~name ~cat ~ph:"i" ~tid ~ts ~args () in
  match v with
  | Obs_json.Obj fields -> Obs_json.Obj (fields @ [ ("s", Obs_json.Str "t") ])
  | v -> v

let launch_cat = function
  | Obs_sink.Kernel -> "kernel"
  | Obs_sink.Fused_block -> "fused"

let to_chrome t =
  let entries = entries t in
  let tracks = tracks t in
  let track_name id =
    match List.assoc_opt id tracks with
    | Some name -> name
    | None -> Printf.sprintf "track%d" id
  in
  (* Group entries per Chrome thread, preserving recording order. *)
  let tid_of e =
    match e.ev with
    | Obs_sink.Step { shard; _ } | Obs_sink.Occupancy { shard; _ } ->
      (e.track * shard_stride) + shard
    | _ -> e.track * shard_stride
  in
  let by_tid : (int, entry list ref) Hashtbl.t = Hashtbl.create 16 in
  let tid_order = ref [] in
  List.iter
    (fun e ->
      let tid = tid_of e in
      match Hashtbl.find_opt by_tid tid with
      | Some cell -> cell := e :: !cell
      | None ->
        Hashtbl.add by_tid tid (ref [ e ]);
        tid_order := tid :: !tid_order)
    entries;
  let tids = List.sort compare !tid_order in
  let meta =
    List.map
      (fun tid ->
        let base = tid / shard_stride and shard = tid mod shard_stride in
        let name =
          if shard = 0 then track_name base
          else Printf.sprintf "%s/shard%d" (track_name base) shard
        in
        Obs_json.Obj
          [
            ("name", Obs_json.Str "thread_name");
            ("ph", Obs_json.Str "M");
            ("pid", Obs_json.Int 0);
            ("tid", Obs_json.Int tid);
            ("args", Obs_json.Obj [ ("name", Obs_json.Str name) ]);
          ])
      tids
  in
  let events_of_tid tid =
    let entries = List.rev !(Hashtbl.find by_tid tid) in
    (* Chrome counters are keyed by (pid, name), so the counter name must
       carry the thread label for distinct tracks/shards to stay apart. *)
    let counter_label =
      let base = tid / shard_stride and shard = tid mod shard_stride in
      if shard = 0 then track_name base
      else Printf.sprintf "%s/shard%d" (track_name base) shard
    in
    (* Superstep spans: each Step closes the previous block's span and
       opens the next; the final span closes at the thread's last
       timestamp. *)
    let out = ref [] in
    let emit ev = out := ev :: !out in
    let open_span = ref None in
    let last_ts = ref 0. in
    let touch ts = if ts > !last_ts then last_ts := ts in
    let close_span ts =
      match !open_span with
      | None -> ()
      | Some name ->
        open_span := None;
        emit (chrome_event ~name ~cat:"superstep" ~ph:"E" ~tid ~ts ())
    in
    List.iter
      (fun e ->
        touch e.ts;
        match e.ev with
        | Obs_sink.Step { shard; step; block } ->
          close_span e.ts;
          let name = Printf.sprintf "block %d" block in
          open_span := Some name;
          emit
            (chrome_event ~name ~cat:"superstep" ~ph:"B" ~tid ~ts:e.ts
               ~args:
                 [
                   ("step", Obs_json.Int step);
                   ("block", Obs_json.Int block);
                   ("shard", Obs_json.Int shard);
                 ]
               ())
        | Obs_sink.Launch _ -> ()
        | Obs_sink.Launched { kind; name; t0; t1 } ->
          touch t1;
          emit
            (chrome_event ~name ~cat:(launch_cat kind) ~ph:"X" ~tid ~ts:t0
               ~dur:(t1 -. t0) ())
        | Obs_sink.Collective { name; bytes; t0; t1 } ->
          touch t1;
          emit
            (chrome_event ~name ~cat:"collective" ~ph:"X" ~tid ~ts:t0
               ~dur:(t1 -. t0)
               ~args:[ ("bytes", Obs_json.Float bytes) ]
               ())
        | Obs_sink.Request_enqueued { id; at } ->
          emit
            (instant
               ~name:(Printf.sprintf "enqueue r%d" id)
               ~cat:"request" ~tid ~ts:at ())
        | Obs_sink.Request_shed { id; at } ->
          emit
            (instant
               ~name:(Printf.sprintf "shed r%d" id)
               ~cat:"request" ~tid ~ts:at ())
        | Obs_sink.Request_rejected { id; at } ->
          emit
            (instant
               ~name:(Printf.sprintf "reject r%d" id)
               ~cat:"request" ~tid ~ts:at ())
        | Obs_sink.Request_completed { id; queued; started; finished } ->
          touch finished;
          emit
            (chrome_event
               ~name:(Printf.sprintf "queue r%d" id)
               ~cat:"request" ~ph:"X" ~tid ~ts:queued
               ~dur:(started -. queued) ());
          emit
            (chrome_event
               ~name:(Printf.sprintf "serve r%d" id)
               ~cat:"request" ~ph:"X" ~tid ~ts:started
               ~dur:(finished -. started) ())
        | Obs_sink.Checkpoint { step; bytes } ->
          emit
            (instant ~name:"checkpoint" ~cat:"resilience" ~tid ~ts:e.ts
               ~args:
                 [ ("step", Obs_json.Int step); ("bytes", Obs_json.Int bytes) ]
               ())
        | Obs_sink.Restore { step } ->
          emit
            (instant ~name:"restore" ~cat:"resilience" ~tid ~ts:e.ts
               ~args:[ ("step", Obs_json.Int step) ]
               ())
        | Obs_sink.Occupancy { active; live; total; _ } ->
          (* Stacked lane counter plus a utilization-percent track. *)
          emit
            (chrome_event
               ~name:(counter_label ^ " lanes")
               ~cat:"occupancy" ~ph:"C" ~tid ~ts:e.ts
               ~args:
                 [
                   ("active", Obs_json.Int active);
                   ("masked", Obs_json.Int (live - active));
                   ("halted", Obs_json.Int (total - live));
                 ]
               ());
          let pct =
            if total = 0 then 0.
            else 100. *. float_of_int active /. float_of_int total
          in
          emit
            (chrome_event
               ~name:(counter_label ^ " utilization %")
               ~cat:"occupancy" ~ph:"C" ~tid ~ts:e.ts
               ~args:[ ("pct", Obs_json.Float pct) ]
               ())
        | Obs_sink.Migration { src_shard; dst_shard; member; bytes; step } ->
          let name =
            if src_shard = dst_shard then "defrag move" else "steal"
          in
          emit
            (instant ~name ~cat:"migration" ~tid ~ts:e.ts
               ~args:
                 [
                   ("src_shard", Obs_json.Int src_shard);
                   ("dst_shard", Obs_json.Int dst_shard);
                   ("member", Obs_json.Int member);
                   ("bytes", Obs_json.Float bytes);
                   ("step", Obs_json.Int step);
                 ]
               ())
        | Obs_sink.Span { trace; span; parent; name; t0; t1; _ } ->
          let args =
            [
              ("trace", Obs_json.Int trace);
              ("span", Obs_json.Int span);
              ("parent", Obs_json.Int parent);
            ]
          in
          if t1 > t0 then begin
            touch t1;
            emit
              (chrome_event ~name ~cat:"span" ~ph:"X" ~tid ~ts:t0
                 ~dur:(t1 -. t0) ~args ())
          end
          else emit (instant ~name ~cat:"span" ~tid ~ts:t0 ~args ())
        | Obs_sink.Ladder { level; occupancy; cause; at } ->
          emit
            (instant
               ~name:(Printf.sprintf "ladder %s" level)
               ~cat:"admission" ~tid ~ts:at
               ~args:
                 [
                   ("occupancy", Obs_json.Float occupancy);
                   ("cause", Obs_json.Str cause);
                 ]
               ())
        | Obs_sink.Slo_alert { slo; fired; burn_fast; burn_slow; at } ->
          emit
            (instant
               ~name:
                 (Printf.sprintf "slo %s %s" slo
                    (if fired then "fired" else "resolved"))
               ~cat:"slo" ~tid ~ts:at
               ~args:
                 [
                   ("burn_fast", Obs_json.Float burn_fast);
                   ("burn_slow", Obs_json.Float burn_slow);
                 ]
               ()))
      entries;
    close_span !last_ts;
    List.rev !out
  in
  let events = meta @ List.concat_map events_of_tid tids in
  Obs_json.Obj
    [
      ("traceEvents", Obs_json.List events);
      ("displayTimeUnit", Obs_json.Str "ms");
      ("otherData", Obs_json.Obj [ ("dropped", Obs_json.Int (dropped t)) ]);
    ]

let to_chrome_string t = Obs_json.to_string (to_chrome t)

let to_csv ?policy t =
  let buf = Buffer.create 1024 in
  (* The policy column is appended (not inserted) so consumers that index
     columns by position keep working when no policy is recorded. *)
  (match policy with
  | None -> Buffer.add_string buf "track,ts,kind,name,detail\n"
  | Some _ -> Buffer.add_string buf "track,ts,kind,name,detail,policy\n");
  let tracks = tracks t in
  let track_name id =
    match List.assoc_opt id tracks with
    | Some name -> name
    | None -> Printf.sprintf "track%d" id
  in
  List.iter
    (fun e ->
      let name, detail =
        match e.ev with
        | Obs_sink.Step { shard; step; block } ->
          ( Printf.sprintf "block %d" block,
            Printf.sprintf "step=%d shard=%d" step shard )
        | Obs_sink.Launch { name; _ } -> (name, "")
        | Obs_sink.Launched { name; t0; t1; kind } ->
          (name, Printf.sprintf "%s dur=%.9f" (launch_cat kind) (t1 -. t0))
        | Obs_sink.Collective { name; bytes; t0; t1 } ->
          (name, Printf.sprintf "bytes=%.0f dur=%.9f" bytes (t1 -. t0))
        | Obs_sink.Request_enqueued { id; _ }
        | Obs_sink.Request_shed { id; _ }
        | Obs_sink.Request_rejected { id; _ } -> (Printf.sprintf "r%d" id, "")
        | Obs_sink.Request_completed { id; queued; started; finished } ->
          ( Printf.sprintf "r%d" id,
            Printf.sprintf "queued=%.9f started=%.9f finished=%.9f" queued
              started finished )
        | Obs_sink.Checkpoint { step; bytes } ->
          ("checkpoint", Printf.sprintf "step=%d bytes=%d" step bytes)
        | Obs_sink.Restore { step } -> ("restore", Printf.sprintf "step=%d" step)
        | Obs_sink.Occupancy { shard; step; block; active; live; total } ->
          ( Printf.sprintf "block %d" block,
            Printf.sprintf "step=%d shard=%d active=%d live=%d total=%d" step
              shard active live total )
        | Obs_sink.Migration { src_shard; dst_shard; member; bytes; step } ->
          ( (if src_shard = dst_shard then "defrag move" else "steal"),
            Printf.sprintf "src=%d dst=%d member=%d bytes=%.0f step=%d"
              src_shard dst_shard member bytes step )
        | Obs_sink.Span { trace; span; parent; name; t0; t1; _ } ->
          ( name,
            Printf.sprintf "trace=%d span=%d parent=%d t0=%.9f t1=%.9f" trace
              span parent t0 t1 )
        | Obs_sink.Ladder { level; occupancy; cause; _ } ->
          ( Printf.sprintf "ladder %s" level,
            Printf.sprintf "occupancy=%.3f cause=%s" occupancy cause )
        | Obs_sink.Slo_alert { slo; fired; burn_fast; burn_slow; _ } ->
          ( Printf.sprintf "slo %s" slo,
            Printf.sprintf "fired=%b burn_fast=%.3f burn_slow=%.3f" fired
              burn_fast burn_slow )
      in
      let suffix =
        match policy with None -> "" | Some p -> "," ^ p
      in
      Buffer.add_string buf
        (Printf.sprintf "%s,%.9f,%s,%s,%s%s\n" (track_name e.track) e.ts
           (Obs_sink.kind_name e.ev) name detail suffix))
    (entries t);
  Buffer.contents buf

let write t ~path =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (to_chrome_string t);
      Out_channel.output_char oc '\n')
