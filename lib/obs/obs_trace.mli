(** Trace recording over {!Obs_sink} events, exported as Chrome
    trace-event JSON (load in Perfetto / [chrome://tracing]) or CSV.

    A trace holds named tracks; {!sink} adapts a track into an event sink
    whose timestamps come from a caller-supplied monotonic clock (usually
    [Engine.elapsed], i.e. simulated seconds). Events that already carry
    their own simulated-time span ({!Obs_sink.Launched}, [Collective], the
    request lifecycle) are stamped from their payload instead of the clock.
    Recording is mutex-protected, so sinks for different shards may fire
    from different domains; {!Obs_sink.Step} events are split onto
    per-shard Chrome threads at export time. *)

type t

type entry = { track : int; ts : float; ev : Obs_sink.event }

val create : ?limit:int -> unit -> t
(** [limit] bounds the number of recorded entries (default 500_000);
    entries past the limit are counted in {!dropped}, not stored, and the
    drop count is exported in the Chrome document's [otherData]. *)

val track : t -> string -> int
(** Register a named track (a Chrome thread). *)

val record : t -> track:int -> ts:float -> Obs_sink.event -> unit

val sink : t -> track:int -> clock:(unit -> float) -> Obs_sink.t
(** Record events onto [track]. [clock] supplies timestamps (in simulated
    seconds) for events without an intrinsic one; it must be monotone for
    the exported track to be well-formed. [Launch] events are not recorded
    — their paired [Launched] carries the span. *)

val entries : t -> entry list
(** In recording order. *)

val tracks : t -> (int * string) list
val dropped : t -> int

val to_chrome : t -> Obs_json.t
(** Chrome trace-event document: [{"traceEvents": [...]}] with
    thread-name metadata per track, B/E span pairs for supersteps (one
    span per scheduled block), X complete events for launches, collectives
    and request queue/service phases, instant events for enqueue/shed/
    reject/checkpoint/restore, and C counter tracks from
    {!Obs_sink.Occupancy} events (stacked active/masked/halted lane
    counts plus a utilization-percent series, per track/shard).
    Timestamps are microseconds. *)

val to_chrome_string : t -> string

val to_csv : ?policy:string -> t -> string
(** One row per entry: [track,ts,kind,name,detail]. When [policy] is
    given (a {!Sched_policy.to_string} name) a trailing [policy] column
    is appended to the header and every row, so sweep CSVs from
    different scheduling policies concatenate cleanly. *)

val write : t -> path:string -> unit
(** Write the Chrome document (compact JSON) to [path]. *)
