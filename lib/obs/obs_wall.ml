(* Wall-clock and GC telemetry. This is the one corner of lib/obs that
   reads real clocks, so it is fenced off from everything the simulated
   side computes: probes never touch the simulated clock, and a disabled
   probe is a handful of dead branches — no clock syscalls, no
   Gc.quick_stat, no allocation — so instrumented code keeps its probe
   handles unconditionally.

   Wall time uses the monotonic clock (immune to NTP steps); CPU time is
   the process total from Sys.time, so on multi-domain runs cpu_s can
   legitimately exceed wall_s. GC numbers are Gc.quick_stat deltas:
   cheap (no heap walk) and exact for the word/collection counters we
   report. *)

type sample = {
  wall_s : float;
  cpu_s : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let zero =
  {
    wall_s = 0.;
    cpu_s = 0.;
    minor_words = 0.;
    major_words = 0.;
    promoted_words = 0.;
    minor_collections = 0;
    major_collections = 0;
  }

let add a b =
  {
    wall_s = a.wall_s +. b.wall_s;
    cpu_s = a.cpu_s +. b.cpu_s;
    minor_words = a.minor_words +. b.minor_words;
    major_words = a.major_words +. b.major_words;
    promoted_words = a.promoted_words +. b.promoted_words;
    minor_collections = a.minor_collections + b.minor_collections;
    major_collections = a.major_collections + b.major_collections;
  }

(* Allocated words = minor + major - promoted (promoted words would
   otherwise be counted in both generations). *)
let alloc_words s = s.minor_words +. s.major_words -. s.promoted_words

let alloc_rate s =
  if s.wall_s <= 0. then 0. else alloc_words s /. s.wall_s

let now_monotonic () =
  (* Monotonic nanoseconds; int64 wraps after ~292 years of uptime. *)
  Int64.to_float (Monotonic_clock.now ()) *. 1e-9

type probe = {
  enabled : bool;
  mutable t0_wall : float;
  mutable t0_cpu : float;
  mutable g0 : Gc.stat option;
  mutable running : bool;
}

let probe ?(enabled = true) () =
  { enabled; t0_wall = 0.; t0_cpu = 0.; g0 = None; running = false }

let enabled p = p.enabled

let start p =
  if p.enabled then begin
    p.g0 <- Some (Gc.quick_stat ());
    p.t0_cpu <- Sys.time ();
    p.t0_wall <- now_monotonic ();
    p.running <- true
  end

let stop p =
  if not (p.enabled && p.running) then zero
  else begin
    let wall = now_monotonic () -. p.t0_wall in
    let cpu = Sys.time () -. p.t0_cpu in
    let g1 = Gc.quick_stat () in
    let g0 = match p.g0 with Some g -> g | None -> g1 in
    p.running <- false;
    p.g0 <- None;
    {
      wall_s = Float.max 0. wall;
      cpu_s = Float.max 0. cpu;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
      promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
      minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
      major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
    }
  end

let time ?(enabled = true) f =
  let p = probe ~enabled () in
  start p;
  let v = f () in
  (v, stop p)

let to_json s =
  Obs_json.Obj
    [
      ("wall_s", Obs_json.Float s.wall_s);
      ("cpu_s", Obs_json.Float s.cpu_s);
      ("minor_words", Obs_json.Float s.minor_words);
      ("major_words", Obs_json.Float s.major_words);
      ("promoted_words", Obs_json.Float s.promoted_words);
      ("minor_collections", Obs_json.Int s.minor_collections);
      ("major_collections", Obs_json.Int s.major_collections);
      ("alloc_words", Obs_json.Float (alloc_words s));
    ]

let span_of_seconds s =
  if s < 1e-3 then Printf.sprintf "%.0fus" (s *. 1e6)
  else if s < 1. then Printf.sprintf "%.1fms" (s *. 1e3)
  else Printf.sprintf "%.2fs" s

let words w =
  if w >= 1e9 then Printf.sprintf "%.2fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

let summary s =
  Printf.sprintf "wall %s  cpu %s  alloc %s (%s/s)  gc %d/%d"
    (span_of_seconds s.wall_s) (span_of_seconds s.cpu_s)
    (words (alloc_words s))
    (words (alloc_rate s))
    s.minor_collections s.major_collections
