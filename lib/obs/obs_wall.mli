(** Wall-clock and GC telemetry — the measurement half of the
    "wall-clock column" roadmap item.

    Everything else in [lib/obs] runs on the simulated clock; this
    module is the fenced-off corner that reads real clocks. Wall time
    comes from [CLOCK_MONOTONIC] (immune to NTP steps), CPU time from
    [Sys.time] (process-wide, so [cpu_s] can exceed [wall_s] on
    multi-domain runs), and GC numbers from [Gc.quick_stat] deltas —
    cheap, no heap walk.

    A probe created with [~enabled:false] is dead: [start]/[stop] are
    single boolean tests with no clock syscalls, no [Gc.quick_stat], and
    no allocation, so instrumented code keeps its probes unconditionally
    and the zero-overhead invariant holds when telemetry is off. Wall
    samples never feed back into simulated cost — they are reporting
    only. *)

type sample = {
  wall_s : float;  (** monotonic wall seconds. *)
  cpu_s : float;  (** process CPU seconds ([Sys.time] delta). *)
  minor_words : float;
  major_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

val zero : sample
val add : sample -> sample -> sample

val alloc_words : sample -> float
(** Words allocated: [minor + major - promoted] (promoted words appear
    in both generation counters). *)

val alloc_rate : sample -> float
(** Allocation rate in words per wall second; 0 when [wall_s] is 0. *)

(** {1 Probes} *)

type probe

val probe : ?enabled:bool -> unit -> probe
(** [enabled] defaults to [true]. *)

val enabled : probe -> bool

val start : probe -> unit
(** Begin an interval. Restarting a running probe discards the open
    interval. No-op when disabled. *)

val stop : probe -> sample
(** End the interval and return its deltas. Returns {!zero} when the
    probe is disabled or was never started. *)

val time : ?enabled:bool -> (unit -> 'a) -> 'a * sample
(** [time f] runs [f] under a fresh probe. *)

(** {1 Export} *)

val to_json : sample -> Obs_json.t
(** [{wall_s; cpu_s; minor_words; major_words; promoted_words;
    minor_collections; major_collections; alloc_words}]. *)

val summary : sample -> string
(** One-line human summary, e.g.
    ["wall 1.24s  cpu 2.31s  alloc 1.2Gw (968.1Mw/s)  gc 312/4"]. *)

val span_of_seconds : float -> string
(** Human duration for table cells: ["312us"], ["4.1ms"], ["1.24s"]. *)

val words : float -> string
(** Human word count: ["512w"], ["3.1kw"], ["1.2Mw"], ["2.40Gw"]. *)
