(* Sliding windows on the simulated clock: a window of length [w] split
   into [k] ring sub-buckets of width [w/k]. Advancing to time [t] zeros
   every sub-bucket the clock skipped, so state is O(k) regardless of
   how sparse or dense the observations are, and everything is a pure
   function of the observation sequence — no wall time, fully
   deterministic under replay. *)

type counter = {
  k : int;
  width : float;
  sums : float array;
  mutable epoch : int;  (* absolute sub-bucket index of the newest cell *)
}

let counter ?(buckets = 8) ~window () =
  if window <= 0. then invalid_arg "Obs_window.counter: window must be positive";
  if buckets <= 0 then invalid_arg "Obs_window.counter: buckets must be positive";
  { k = buckets; width = window /. float_of_int buckets;
    sums = Array.make buckets 0.; epoch = 0 }

let window c = c.width *. float_of_int c.k

let bucket_index c ~now =
  if now <= 0. then 0 else int_of_float (Float.floor (now /. c.width))

let advance_counter c idx =
  if idx > c.epoch then begin
    let steps = min c.k (idx - c.epoch) in
    for i = 1 to steps do
      c.sums.((c.epoch + i) mod c.k) <- 0.
    done;
    c.epoch <- idx
  end

let add c ~now v =
  let idx = bucket_index c ~now in
  advance_counter c idx;
  (* A late observation (idx < epoch) still lands in the window if its
     sub-bucket hasn't been recycled; older than that, it's dropped —
     the window has genuinely slid past it. *)
  if idx > c.epoch - c.k then c.sums.(idx mod c.k) <- c.sums.(idx mod c.k) +. v

let total c ~now =
  advance_counter c (bucket_index c ~now);
  Array.fold_left ( +. ) 0. c.sums

let rate c ~now = total c ~now /. window c

(* ------------------------------------------------------------------ *)
(* Rolling histograms: the same ring, but each sub-bucket is a full
   log-bucket histogram row (shared geometry with Obs_metrics, so
   windowed and cumulative quantiles agree bucket-for-bucket). *)

type hist = {
  hk : int;
  hwidth : float;
  cells : int array array;   (* hk x Obs_metrics.n_buckets *)
  counts : int array;
  sums : float array;
  mutable hepoch : int;
}

let hist ?(buckets = 8) ~window () =
  if window <= 0. then invalid_arg "Obs_window.hist: window must be positive";
  if buckets <= 0 then invalid_arg "Obs_window.hist: buckets must be positive";
  {
    hk = buckets;
    hwidth = window /. float_of_int buckets;
    cells = Array.init buckets (fun _ -> Array.make Obs_metrics.n_buckets 0);
    counts = Array.make buckets 0;
    sums = Array.make buckets 0.;
    hepoch = 0;
  }

let hist_window h = h.hwidth *. float_of_int h.hk

let hist_index h ~now =
  if now <= 0. then 0 else int_of_float (Float.floor (now /. h.hwidth))

let advance_hist h idx =
  if idx > h.hepoch then begin
    let steps = min h.hk (idx - h.hepoch) in
    for i = 1 to steps do
      let cell = (h.hepoch + i) mod h.hk in
      Array.fill h.cells.(cell) 0 Obs_metrics.n_buckets 0;
      h.counts.(cell) <- 0;
      h.sums.(cell) <- 0.
    done;
    h.hepoch <- idx
  end

let observe h ~now v =
  let idx = hist_index h ~now in
  advance_hist h idx;
  if idx > h.hepoch - h.hk then begin
    let cell = idx mod h.hk in
    let b = Obs_metrics.bucket_of v in
    h.cells.(cell).(b) <- h.cells.(cell).(b) + 1;
    h.counts.(cell) <- h.counts.(cell) + 1;
    h.sums.(cell) <- h.sums.(cell) +. v
  end

let hist_count h ~now =
  advance_hist h (hist_index h ~now);
  Array.fold_left ( + ) 0 h.counts

let hist_sum h ~now =
  advance_hist h (hist_index h ~now);
  Array.fold_left ( +. ) 0. h.sums

let hist_mean h ~now =
  let n = hist_count h ~now in
  if n = 0 then Float.nan else hist_sum h ~now /. float_of_int n

let hist_quantile h ~now q =
  advance_hist h (hist_index h ~now);
  let n = Array.fold_left ( + ) 0 h.counts in
  if n = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
    let result = ref 0. in
    let cum = ref 0 in
    (try
       for b = 0 to Obs_metrics.n_buckets - 1 do
         for cell = 0 to h.hk - 1 do
           cum := !cum + h.cells.(cell).(b)
         done;
         if !cum >= target then begin
           result := Obs_metrics.bucket_value b;
           raise Exit
         end
       done
     with Exit -> ());
    !result
  end
