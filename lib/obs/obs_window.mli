(** Sliding-window rates and rolling histograms on the simulated clock.

    A window of length [w] is split into a ring of [k] sub-buckets of
    width [w/k]; advancing the clock zeros whatever the clock skipped.
    Readouts therefore cover the last [w] simulated seconds with [w/k]
    granularity, in O(k) state, and are pure functions of the
    observation sequence — no wall time anywhere, so replays under the
    same seed read identically. {!Obs_slo} builds its multi-window
    burn-rate monitor on {!counter}. *)

(** {1 Windowed counters} *)

type counter

val counter : ?buckets:int -> window:float -> unit -> counter
(** [buckets] (the ring size [k]) defaults to 8. Raises
    [Invalid_argument] on non-positive [window] or [buckets]. *)

val window : counter -> float

val add : counter -> now:float -> float -> unit
(** Accumulate a value at simulated time [now]. Observations older than
    the window (the clock already slid past their sub-bucket) are
    dropped. *)

val total : counter -> now:float -> float
(** Sum over the window ending at [now]. *)

val rate : counter -> now:float -> float
(** [total / window]: events (or value units) per simulated second. *)

(** {1 Rolling histograms}

    The same ring discipline with a full log-bucket histogram per
    sub-bucket, sharing {!Obs_metrics}'s bucket geometry so windowed and
    cumulative quantiles agree bucket-for-bucket. *)

type hist

val hist : ?buckets:int -> window:float -> unit -> hist
val hist_window : hist -> float
val observe : hist -> now:float -> float -> unit
val hist_count : hist -> now:float -> int
val hist_sum : hist -> now:float -> float
val hist_mean : hist -> now:float -> float  (** [nan] when empty. *)

val hist_quantile : hist -> now:float -> float -> float
(** Bucket-midpoint quantile over the window; [nan] when empty. *)
