exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* Everything is 8-byte little-endian: ints as int64, floats via their
   IEEE-754 bit pattern (Int64.bits_of_float), so decode/encode round
   trips are bitwise exact — including NaN payloads and signed zeros. *)

let w_i64 buf (x : int64) = Buffer.add_int64_le buf x
let w_int buf n = w_i64 buf (Int64.of_int n)
let w_float buf f = w_i64 buf (Int64.bits_of_float f)
let w_bool buf b = w_int buf (if b then 1 else 0)

let w_string buf s =
  w_int buf (String.length s);
  Buffer.add_string buf s

let w_int_array buf a =
  w_int buf (Array.length a);
  Array.iter (w_int buf) a

let w_float_array buf a =
  w_int buf (Array.length a);
  Array.iter (w_float buf) a

let w_bool_array buf a =
  w_int buf (Array.length a);
  Array.iter (w_bool buf) a

let w_list w buf l =
  w_int buf (List.length l);
  List.iter (w buf) l

let w_option w buf = function
  | None -> w_int buf 0
  | Some x ->
    w_int buf 1;
    w buf x

type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let remaining r = String.length r.src - r.pos

let skip r n =
  if remaining r < n then corrupt "truncated input at byte %d" r.pos;
  r.pos <- r.pos + n

let r_i64 r =
  if remaining r < 8 then corrupt "truncated input at byte %d" r.pos;
  let x = String.get_int64_le r.src r.pos in
  r.pos <- r.pos + 8;
  x

let r_int r =
  let x = r_i64 r in
  let n = Int64.to_int x in
  if Int64.of_int n <> x then corrupt "integer out of range at byte %d" (r.pos - 8);
  n

let r_float r = Int64.float_of_bits (r_i64 r)

let r_bool r =
  match r_int r with
  | 0 -> false
  | 1 -> true
  | n -> corrupt "invalid boolean %d at byte %d" n (r.pos - 8)

let r_len r what =
  let n = r_int r in
  if n < 0 then corrupt "negative %s length at byte %d" what (r.pos - 8);
  n

let r_string r =
  let n = r_len r "string" in
  if remaining r < n then corrupt "truncated string at byte %d" r.pos;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* Guard bulk lengths against the remaining bytes before allocating, so a
   corrupted length can't demand a giant array. *)
let check_bulk r n =
  if remaining r < 8 * n then corrupt "truncated array at byte %d" r.pos

let r_int_array r =
  let n = r_len r "array" in
  check_bulk r n;
  Array.init n (fun _ -> r_int r)

let r_float_array r =
  let n = r_len r "array" in
  check_bulk r n;
  Array.init n (fun _ -> r_float r)

let r_bool_array r =
  let n = r_len r "array" in
  check_bulk r n;
  Array.init n (fun _ -> r_bool r)

let r_list f r =
  let n = r_len r "list" in
  if remaining r < n then corrupt "truncated list at byte %d" r.pos;
  List.init n (fun _ -> f r)

let r_option f r =
  match r_int r with
  | 0 -> None
  | 1 -> Some (f r)
  | n -> corrupt "invalid option tag %d at byte %d" n (r.pos - 8)

(* FNV-1a 64-bit: tiny, dependency-free, and plenty to catch the bit rot
   and truncation a checkpoint file can suffer (not cryptographic). *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h
