(** Binary primitives for snapshot serialization.

    Everything is 8-byte little-endian: ints as int64, floats via their
    IEEE-754 bit pattern, so round trips are bitwise exact (NaN payloads
    and signed zeros included — the replay guarantee depends on it).
    Variable-length values are length-prefixed. Readers are
    bounds-checked: malformed input raises {!Corrupt} with a byte
    position, never an [Index_out_of_bounds] or a giant allocation. *)

exception Corrupt of string

val corrupt : ('a, unit, string, 'b) format4 -> 'a
(** [corrupt fmt ...] raises {!Corrupt} with the formatted message. *)

(** {1 Writers (over [Buffer])} *)

val w_i64 : Buffer.t -> int64 -> unit
val w_int : Buffer.t -> int -> unit
val w_float : Buffer.t -> float -> unit
val w_bool : Buffer.t -> bool -> unit
val w_string : Buffer.t -> string -> unit
val w_int_array : Buffer.t -> int array -> unit
val w_float_array : Buffer.t -> float array -> unit
val w_bool_array : Buffer.t -> bool array -> unit
val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit
val w_option : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

(** {1 Readers (over a string with a cursor)} *)

type reader = { src : string; mutable pos : int }

val reader : string -> reader
val remaining : reader -> int
val skip : reader -> int -> unit
val r_i64 : reader -> int64
val r_int : reader -> int
val r_float : reader -> float
val r_bool : reader -> bool
val r_string : reader -> string
val r_int_array : reader -> int array
val r_float_array : reader -> float array
val r_bool_array : reader -> bool array
val r_list : (reader -> 'a) -> reader -> 'a list
val r_option : (reader -> 'a) -> reader -> 'a option

(** {1 Integrity} *)

val fnv1a64 : string -> int64
(** FNV-1a 64-bit hash — the snapshot envelope's integrity checksum
    (catches corruption and truncation; not cryptographic). *)
