type kind = Device_kill | Kernel_poison | Link_drop

let kind_name = function
  | Device_kill -> "device-kill"
  | Kernel_poison -> "kernel-poison"
  | Link_drop -> "link-drop"

type event = { superstep : int; device : int; kind : kind }

exception Injected of event

let pp_event ppf e =
  Format.fprintf ppf "%s on device %d at superstep %d" (kind_name e.kind) e.device
    e.superstep

let all_kinds = [ Device_kill; Kernel_poison; Link_drop ]

(* A seeded plan: Bernoulli(rate) per superstep of the horizon, victim
   device and fault kind uniform — at most one event per superstep. One
   stream with a fixed draw order per superstep, so a (seed, rate,
   horizon) triple names the same plan everywhere. *)
let schedule ~seed ~rate ~horizon ?(devices = 1) ?(kinds = [ Device_kill ]) () =
  if rate < 0. || rate > 1. then invalid_arg "Fault.schedule: rate must be in [0,1]";
  if horizon < 0 then invalid_arg "Fault.schedule: horizon must be non-negative";
  if devices <= 0 then invalid_arg "Fault.schedule: need at least one device";
  if kinds = [] then invalid_arg "Fault.schedule: need at least one kind";
  let kinds = Array.of_list kinds in
  let s = Splitmix.Stream.create (Splitmix.hash2 0x4641554c54L (Int64.of_int seed)) in
  let events = ref [] in
  for superstep = 1 to horizon do
    if Splitmix.Stream.uniform s < rate then begin
      let device = Splitmix.Stream.int_below s devices in
      let kind = kinds.(Splitmix.Stream.int_below s (Array.length kinds)) in
      events := { superstep; device; kind } :: !events
    end
  done;
  List.rev !events

(* The injector owns its own monotone wall clock, deliberately *outside*
   any checkpoint: restoring a VM rewinds the VM's step counter but not
   wall time, so each planned event fires exactly once — the recovered run
   re-executes the lost supersteps without re-suffering the same fault. *)
type injector = {
  mutable pending : event list;  (* ascending superstep *)
  mutable clock : int;
  mutable fired : event list;    (* newest first *)
}

let injector plan =
  let sorted = List.stable_sort (fun a b -> compare a.superstep b.superstep) plan in
  { pending = sorted; clock = 0; fired = [] }

let clock t = t.clock
let fired t = List.rev t.fired
let injected t = List.length t.fired

(* Drop events whose superstep has passed without firing (e.g. a
   kernel-poison scheduled on a superstep that launched nothing). Keeps
   the injector progressing and every event at-most-once. *)
let expire t =
  let rec go () =
    match t.pending with
    | e :: rest when e.superstep < t.clock ->
      t.pending <- rest;
      go ()
    | _ -> ()
  in
  go ()

let fire t e rest =
  t.pending <- rest;
  t.fired <- e :: t.fired;
  raise (Injected e)

let tick t =
  t.clock <- t.clock + 1;
  expire t;
  match t.pending with
  | ({ kind = Device_kill; superstep; _ } as e) :: rest when superstep = t.clock ->
    fire t e rest
  | _ -> ()

let launch_check t =
  match t.pending with
  | ({ kind = Kernel_poison; superstep; _ } as e) :: rest when superstep = t.clock ->
    fire t e rest
  | _ -> ()

(* The injector as an observability sink: the same seam a tracer
   observes is the seam faults enter through. *)
let sink t : Obs_sink.t = function
  | Obs_sink.Step _ -> tick t
  | Obs_sink.Launch _ -> launch_check t
  | _ -> ()

let drops_now t =
  let rec go acc =
    match t.pending with
    | ({ kind = Link_drop; superstep; _ } as e) :: rest when superstep = t.clock ->
      t.pending <- rest;
      t.fired <- e :: t.fired;
      go (e :: acc)
    | _ -> List.rev acc
  in
  go []
