(** Seeded fault injection for resilience experiments.

    A {e plan} is a reproducible list of fault events drawn from a seeded
    stream: at most one per superstep, Bernoulli with the given rate. An
    {e injector} walks the plan against its own monotone wall clock —
    deliberately outside any checkpoint, so restoring a VM rewinds the
    VM's step counter but not wall time and each event fires exactly once
    (the recovered run re-executes the lost supersteps without
    re-suffering the same fault).

    Wiring: {!sink} turns an injector into an {!Obs_sink.t} — install it
    as a VM config's [sink] (composed after any user sink with
    {!Obs_sink.fanout}) so [Step] events advance the wall clock, and as
    the engine's sink ({!Engine.set_sink}) so a poisoned kernel aborts on
    its [Launch] event before it is charged. {!drops_now} goes in a
    sharded driver's collective phase. *)

type kind =
  | Device_kill  (** the device dies mid-superstep; raised from {!tick} *)
  | Kernel_poison
      (** one kernel launch fails; raised from {!launch_check} via the
          engine's launch hook *)
  | Link_drop
      (** a mesh link drops a message; surfaced by {!drops_now} for the
          driver to retry the collective *)

val kind_name : kind -> string
val all_kinds : kind list

type event = { superstep : int; device : int; kind : kind }

exception Injected of event
(** Raised by {!tick} and {!launch_check} when their event is due. *)

val pp_event : Format.formatter -> event -> unit

val schedule :
  seed:int ->
  rate:float ->
  horizon:int ->
  ?devices:int ->
  ?kinds:kind list ->
  unit ->
  event list
(** Draw a plan: for each superstep in [1..horizon], an event with
    probability [rate], victim device uniform in [0..devices-1], kind
    uniform in [kinds] (default [[Device_kill]]). Ascending superstep.
    Raises [Invalid_argument] on a rate outside [0,1], a negative
    horizon, no devices, or no kinds. *)

type injector

val injector : event list -> injector
(** Start an injector at wall-clock 0 over the plan (sorted internally). *)

val clock : injector -> int
(** Wall supersteps ticked so far (monotone; never rewound by restore). *)

val tick : injector -> unit
(** Advance the wall clock one superstep. Expires events whose superstep
    has passed unfired, then raises {!Injected} if a [Device_kill] is due
    this superstep. *)

val launch_check : injector -> unit
(** Raise {!Injected} if a [Kernel_poison] is due at the current wall
    superstep (the engine's [Launch] seam — fires before the launch is
    charged). *)

val sink : injector -> Obs_sink.t
(** The injector as an observability sink: [Step] events run {!tick},
    [Launch] events run {!launch_check}, everything else is ignored.
    Compose it after a user's own sink with {!Obs_sink.fanout} so tracing
    observes a superstep before the fault aborts it. *)

val drops_now : injector -> event list
(** Pop every [Link_drop] due at the current wall superstep (the driver
    retries the collective and accounts the wasted superstep). *)

val fired : injector -> event list
(** Events fired so far, oldest first. *)

val injected : injector -> int
(** [List.length (fired t)]. *)
