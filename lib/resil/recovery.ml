type stats = {
  supersteps : int;
  useful_supersteps : int;
  wasted_supersteps : int;
  checkpoints : int;
  checkpoint_bytes : int;
  restores : int;
  faults_injected : int;
  link_retries : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<hov 2>supersteps %d (%d useful, %d wasted),@ %d checkpoints (%d bytes),@ %d \
     restores,@ %d faults,@ %d link retries@]"
    s.supersteps s.useful_supersteps s.wasted_supersteps s.checkpoints
    s.checkpoint_bytes s.restores s.faults_injected s.link_retries

(* Young's first-order optimal checkpoint interval: with checkpoint cost
   delta and mean time between failures M (both in the same unit —
   supersteps here), T_opt = sqrt(2 delta M). *)
let young_interval ~checkpoint_cost ~mtbf =
  if checkpoint_cost <= 0. || mtbf <= 0. then
    invalid_arg "Recovery.young_interval: cost and MTBF must be positive";
  sqrt (2. *. checkpoint_cost *. mtbf)

(* Mutable tallies threaded through one recovered run. *)
type tally = {
  mutable t_checkpoints : int;
  mutable t_bytes : int;
  mutable t_restores : int;
  mutable t_wasted : int;
  mutable t_link_retries : int;
}

let tally () =
  { t_checkpoints = 0; t_bytes = 0; t_restores = 0; t_wasted = 0; t_link_retries = 0 }

let finish tl inj ~useful =
  {
    supersteps = useful + tl.t_wasted;
    useful_supersteps = useful;
    wasted_supersteps = tl.t_wasted;
    checkpoints = tl.t_checkpoints;
    checkpoint_bytes = tl.t_bytes;
    restores = tl.t_restores;
    faults_injected = Fault.injected inj;
    link_retries = tl.t_link_retries;
  }

let check_interval interval =
  if interval < 0 then invalid_arg "Recovery: checkpoint interval must be >= 0"

let batch_z = function
  | [] -> invalid_arg "Recovery: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Recovery: inputs must carry a leading batch dimension";
    (Tensor.shape first).(0)

(* Install the kernel-poison seam on an engine for the duration of [f].
   The sink is cleared afterwards so the caller's engine is left clean. *)
let with_engine_sink engine inj f =
  match engine with
  | None -> f ()
  | Some e ->
    Engine.set_sink e (Fault.sink inj);
    Fun.protect ~finally:(fun () -> Engine.clear_sink e) f

(* Compose the user's sink (first, so tracing observes the superstep the
   fault aborts) with the injector's. *)
let fault_sink user inj =
  match user with
  | None -> Fault.sink inj
  | Some u -> Obs_sink.fanout [ u; Fault.sink inj ]

(* Checkpoint/restore lifecycle events go to the user's sink only. *)
let notify user ev = match user with None -> () | Some s -> s ev

(* ---- Program-counter VM ----------------------------------------------- *)

let run_pc ?(config = Pc_vm.default_config) ?(interval = 0) ?(plan = []) reg program
    ~batch =
  check_interval interval;
  let inj = Fault.injector plan in
  let user_sink = config.Pc_vm.sink in
  let config = { config with Pc_vm.sink = Some (fault_sink user_sink inj) } in
  let z = batch_z batch in
  let lanes = Pc_vm.Lanes.create ~config reg program ~z in
  for lane = 0 to z - 1 do
    Pc_vm.Lanes.load lanes ~lane ~member:(config.Pc_vm.member_base + lane)
      ~inputs:(List.map (fun t -> Tensor.slice_row t lane) batch)
  done;
  let tl = tally () in
  let capture () =
    let blob =
      Snapshot.encode_pc
        {
          Snapshot.ck_vm = Pc_vm.Lanes.capture lanes;
          ck_engine = Option.map Engine.snapshot config.Pc_vm.engine;
          ck_instrument = Option.map Instrument.capture config.Pc_vm.instrument;
        }
    in
    tl.t_checkpoints <- tl.t_checkpoints + 1;
    tl.t_bytes <- tl.t_bytes + String.length blob;
    notify user_sink
      (Obs_sink.Checkpoint
         { step = Pc_vm.Lanes.steps lanes; bytes = String.length blob });
    blob
  in
  (* Every restore decodes the stored blob — a genuine serialization round
     trip per recovery, not a shortcut through the in-memory image. *)
  let restore blob =
    let ck = Snapshot.decode_pc blob in
    Pc_vm.Lanes.restore lanes ck.Snapshot.ck_vm;
    (match (config.Pc_vm.engine, ck.Snapshot.ck_engine) with
    | Some e, Some s -> Engine.restore e s
    | _ -> ());
    (match (config.Pc_vm.instrument, ck.Snapshot.ck_instrument) with
    | Some i, Some s -> Instrument.restore i s
    | _ -> ());
    notify user_sink (Obs_sink.Restore { step = Pc_vm.Lanes.steps lanes })
  in
  let latest = ref (capture ()) in
  with_engine_sink config.Pc_vm.engine inj (fun () ->
      let rec loop () =
        match Pc_vm.Lanes.step lanes with
        | true ->
          if interval > 0 && Pc_vm.Lanes.steps lanes mod interval = 0 then
            latest := capture ();
          loop ()
        | false -> ()
        | exception Fault.Injected _ ->
          (* The faulted superstep never completed: completed work is
             [steps - 1] supersteps, of which everything past the last
             checkpoint must be re-executed. *)
          let completed = max 0 (Pc_vm.Lanes.steps lanes - 1) in
          restore !latest;
          tl.t_restores <- tl.t_restores + 1;
          tl.t_wasted <- tl.t_wasted + max 0 (completed - Pc_vm.Lanes.steps lanes);
          loop ()
      in
      loop ());
  (Pc_vm.Lanes.outputs lanes, finish tl inj ~useful:(Pc_vm.Lanes.steps lanes))

(* ---- Precompiled (JIT) VM --------------------------------------------- *)

let run_jit ?sched ?engine ?instrument ?sink:user_sink ?max_steps ?(interval = 0)
    ?(plan = []) exe ~batch =
  check_interval interval;
  let inj = Fault.injector plan in
  let sink = fault_sink user_sink inj in
  Pc_jit.load exe ~batch;
  let tl = tally () in
  let capture () =
    let blob =
      Snapshot.encode_jit
        {
          Snapshot.ck_vm = Pc_jit.capture exe;
          ck_engine = Option.map Engine.snapshot engine;
          ck_instrument = Option.map Instrument.capture instrument;
        }
    in
    tl.t_checkpoints <- tl.t_checkpoints + 1;
    tl.t_bytes <- tl.t_bytes + String.length blob;
    notify user_sink
      (Obs_sink.Checkpoint { step = Pc_jit.steps exe; bytes = String.length blob });
    blob
  in
  let restore blob =
    let ck = Snapshot.decode_jit blob in
    Pc_jit.restore exe ck.Snapshot.ck_vm;
    (match (engine, ck.Snapshot.ck_engine) with
    | Some e, Some s -> Engine.restore e s
    | _ -> ());
    (match (instrument, ck.Snapshot.ck_instrument) with
    | Some i, Some s -> Instrument.restore i s
    | _ -> ());
    notify user_sink (Obs_sink.Restore { step = Pc_jit.steps exe })
  in
  let latest = ref (capture ()) in
  with_engine_sink engine inj (fun () ->
      let rec loop () =
        (* The executor's [Step] event carries the tick: it fires after
           the step counter advances but before the block's effects, so
           the aborted superstep is the one the injector's clock names. *)
        match Pc_jit.step ?sched ?engine ?instrument ~sink ?max_steps exe with
        | true ->
          if interval > 0 && Pc_jit.steps exe mod interval = 0 then latest := capture ();
          loop ()
        | false -> ()
        | exception Fault.Injected _ ->
          let completed = max 0 (Pc_jit.steps exe - 1) in
          restore !latest;
          tl.t_restores <- tl.t_restores + 1;
          tl.t_wasted <- tl.t_wasted + max 0 (completed - Pc_jit.steps exe);
          loop ()
      in
      loop ());
  (Pc_jit.outputs exe, finish tl inj ~useful:(Pc_jit.steps exe))

(* ---- Sharded execution ------------------------------------------------ *)

type sharded_result = {
  sh_outputs : Tensor.t list;
  sh_rounds : int;
  sh_stats : stats;
}

let run_sharded ?(sched = Sched_policy.Earliest) ?(shards = 2) ?(interval = 0) ?(plan = [])
    reg program ~batch =
  check_interval interval;
  if shards <= 0 then invalid_arg "Recovery.run_sharded: need at least one shard";
  let z = batch_z batch in
  let parts = Shard_vm.partition ~z ~shards in
  let n = Array.length parts in
  let inj = Fault.injector plan in
  (* One lane pool per shard, lane identities offset so RNG streams match
     the unsharded run; the driver steps them in lockstep rounds, standing
     in for the SPMD superstep loop of {!Shard_vm.run}. *)
  let lanes =
    Array.map
      (fun (part : Shard_vm.partition) ->
        let config =
          { Pc_vm.default_config with sched; member_base = part.Shard_vm.offset }
        in
        let pool = Pc_vm.Lanes.create ~config reg program ~z:part.Shard_vm.length in
        for lane = 0 to part.Shard_vm.length - 1 do
          Pc_vm.Lanes.load pool ~lane ~member:(part.Shard_vm.offset + lane)
            ~inputs:
              (List.map
                 (fun t -> Tensor.slice_row t (part.Shard_vm.offset + lane))
                 batch)
        done;
        pool)
      parts
  in
  let tl = tally () in
  let capture () =
    let blob = Snapshot.encode_shards (Array.map Pc_vm.Lanes.capture lanes) in
    tl.t_checkpoints <- tl.t_checkpoints + 1;
    tl.t_bytes <- tl.t_bytes + String.length blob;
    blob
  in
  let latest = ref (capture ()) in
  (* A device fault rewinds only the victim shard — its neighbours keep
     their progress, the definition of localized recovery. *)
  let restore_shard d =
    let images = Snapshot.decode_shards !latest in
    let completed = Pc_vm.Lanes.steps lanes.(d) in
    Pc_vm.Lanes.restore lanes.(d) images.(d);
    tl.t_restores <- tl.t_restores + 1;
    tl.t_wasted <- tl.t_wasted + max 0 (completed - Pc_vm.Lanes.steps lanes.(d))
  in
  let rounds = ref 0 in
  let running = ref true in
  while !running do
    (match Fault.tick inj with
    | () ->
      List.iter
        (fun (_ : Fault.event) ->
          (* A dropped link forces the round's collective to retry: one
             wasted superstep across the mesh, no state lost. *)
          tl.t_link_retries <- tl.t_link_retries + 1;
          tl.t_wasted <- tl.t_wasted + 1)
        (Fault.drops_now inj);
      let progressed = ref false in
      Array.iter (fun pool -> if Pc_vm.Lanes.step pool then progressed := true) lanes;
      if !progressed then begin
        incr rounds;
        if interval > 0 && !rounds mod interval = 0 then latest := capture ()
      end
      else running := false
    | exception Fault.Injected e -> restore_shard (e.Fault.device mod n))
  done;
  let outputs =
    match Array.to_list (Array.map Pc_vm.Lanes.outputs lanes) with
    | [] -> []
    | first :: _ as per_shard ->
      List.mapi
        (fun i _ -> Tensor.concat_rows (List.map (fun outs -> List.nth outs i) per_shard))
        first
  in
  let useful =
    Array.fold_left (fun acc pool -> acc + Pc_vm.Lanes.steps pool) 0 lanes
  in
  { sh_outputs = outputs; sh_rounds = !rounds; sh_stats = finish tl inj ~useful }

(* ---- Continuous-batching server --------------------------------------- *)

let run_server ?(config = Server.default_config) ?on_complete ?(interval = 0)
    ?(plan = []) ~program arrivals =
  check_interval interval;
  let inj = Fault.injector plan in
  let user_sink = config.Server.vm.Pc_vm.sink in
  let config =
    {
      config with
      Server.vm = { config.Server.vm with Pc_vm.sink = Some (fault_sink user_sink inj) };
    }
  in
  let server = Server.create ~config ?on_complete ~program arrivals in
  let tl = tally () in
  let rounds = ref 0 in
  let ckpt_round = ref 0 in
  let capture () =
    let blob = Snapshot.encode_server (Server.capture server) in
    tl.t_checkpoints <- tl.t_checkpoints + 1;
    tl.t_bytes <- tl.t_bytes + String.length blob;
    notify user_sink
      (Obs_sink.Checkpoint { step = !rounds; bytes = String.length blob });
    blob
  in
  let latest = ref (capture ()) in
  with_engine_sink config.Server.vm.Pc_vm.engine inj (fun () ->
      let rec loop () =
        match Server.step server with
        | true ->
          incr rounds;
          if interval > 0 && !rounds mod interval = 0 then begin
            latest := capture ();
            ckpt_round := !rounds
          end;
          loop ()
        | false -> ()
        | exception Fault.Injected _ ->
          Server.restore server (Snapshot.decode_server !latest);
          tl.t_restores <- tl.t_restores + 1;
          tl.t_wasted <- tl.t_wasted + max 0 (!rounds - !ckpt_round);
          rounds := !ckpt_round;
          notify user_sink (Obs_sink.Restore { step = !rounds });
          loop ()
      in
      loop ());
  (Server.stats server, finish tl inj ~useful:!rounds)
