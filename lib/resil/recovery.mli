(** Checkpoint/restore drivers with deterministic replay.

    Each [run_*] below executes a workload under a fault {!Fault.injector}
    while checkpointing every [interval] supersteps through {!Snapshot}
    (a genuine serialization round trip: every restore {e decodes} the
    stored blob). Because all state the execution depends on — stacks,
    storage, scheduler cursors, RNG counters, engine tallies — lives in
    the checkpoint, a faulted-and-recovered run produces output bitwise
    identical to the fault-free run, and its engine/instrument state
    reports true cumulative cost from time zero.

    [interval = 0] (the default) keeps only the initial checkpoint:
    a fault restarts the run from the beginning. Checkpoint cost is
    {e not} charged to the engine — harnesses account for it analytically
    from {!stats.checkpoint_bytes} so the replayed trace stays identical
    to the fault-free one. *)

type stats = {
  supersteps : int;  (** total supersteps executed, including replay *)
  useful_supersteps : int;  (** supersteps surviving into the final run *)
  wasted_supersteps : int;  (** re-executed (or retried) after faults *)
  checkpoints : int;  (** snapshots taken, including the initial one *)
  checkpoint_bytes : int;  (** total serialized size of all snapshots *)
  restores : int;  (** recoveries performed *)
  faults_injected : int;  (** events that actually fired *)
  link_retries : int;  (** collectives retried after a link drop *)
}

val pp_stats : Format.formatter -> stats -> unit

val young_interval : checkpoint_cost:float -> mtbf:float -> float
(** Young's first-order optimal checkpoint interval
    [sqrt (2 * cost * mtbf)], with cost and mean-time-between-failures in
    the same unit (supersteps here). Raises [Invalid_argument] unless both
    are positive. *)

val run_pc :
  ?config:Pc_vm.config ->
  ?interval:int ->
  ?plan:Fault.event list ->
  Prim.registry ->
  Stack_ir.program ->
  batch:Tensor.t list ->
  Tensor.t list * stats
(** Batched interpreter under faults. Composes {!Fault.sink} after any
    sink already in [config] (so tracing observes the superstep the fault
    aborts) and installs it as the engine's sink when [config.engine] is
    set (cleared again on exit). The user's own sink additionally receives
    a [Checkpoint] event per snapshot and a [Restore] per recovery. Lane
    [i] runs member [config.member_base + i] on [batch] row [i], as
    {!Pc_vm.run} does. *)

val run_jit :
  ?sched:Sched_policy.t ->
  ?engine:Engine.t ->
  ?instrument:Instrument.t ->
  ?sink:Obs_sink.t ->
  ?max_steps:int ->
  ?interval:int ->
  ?plan:Fault.event list ->
  Pc_jit.t ->
  batch:Tensor.t list ->
  Tensor.t list * stats
(** Precompiled executor under faults. The executor's [Step] event
    carries the injector tick (composed after [sink], which also gets the
    [Checkpoint]/[Restore] lifecycle) — the same at-most-once semantics
    as the interpreter's seam. *)

type sharded_result = {
  sh_outputs : Tensor.t list;  (** rows reassembled in shard order *)
  sh_rounds : int;  (** lockstep rounds driven across the shard set *)
  sh_stats : stats;
}

val run_sharded :
  ?sched:Sched_policy.t ->
  ?shards:int ->
  ?interval:int ->
  ?plan:Fault.event list ->
  Prim.registry ->
  Stack_ir.program ->
  batch:Tensor.t list ->
  sharded_result
(** Domain-decomposed execution under faults: one lane pool per shard
    (member identities offset by the shard's batch offset, matching
    {!Shard_vm.partition}), stepped in lockstep rounds. A [Device_kill]
    on device [d] rewinds {e only} shard [d mod shards] to the last
    checkpoint — localized recovery; a [Link_drop] costs one retried
    collective round with no state lost. No engine is attached, so
    [Kernel_poison] events expire unfired. [stats.useful_supersteps] sums
    per-shard supersteps. Default [shards = 2]. *)

val run_server :
  ?config:Server.config ->
  ?on_complete:(Server.record -> Request.t option) ->
  ?interval:int ->
  ?plan:Fault.event list ->
  program:Autobatch.compiled ->
  Request.t list ->
  Server.stats * stats
(** Continuous-batching server under faults. Ticks ride the VM config's
    observability sink (so idle clock jumps do not advance the fault
    clock), composed after any sink already present, which also receives
    the [Checkpoint]/[Restore] lifecycle;
    checkpoints capture the {e whole} server — queue, in-flight lanes,
    completions, clock — at server-superstep boundaries, and a fault
    restores all of it. [on_complete] is construction state, not
    checkpoint state: pass the same deterministic callback to replay
    closed-loop traces. *)
