let magic = "ABRESIL1"

(* Version 2 added the trace context (ri_trace/ri_parent) to request
   images. *)
let version = 2

(* ---- Envelope -------------------------------------------------------- *)

let encode ~kind write =
  let payload =
    let b = Buffer.create 4096 in
    write b;
    Buffer.contents b
  in
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Codec.w_int b version;
  Codec.w_string b kind;
  Codec.w_string b payload;
  let sum = Codec.fnv1a64 (Buffer.contents b) in
  Codec.w_i64 b sum;
  Buffer.contents b

let decode ~kind blob read =
  let n = String.length blob in
  if n < String.length magic + 8 then
    Codec.corrupt "snapshot too short (%d bytes) to be an autobatch snapshot" n;
  if String.sub blob 0 (String.length magic) <> magic then
    Codec.corrupt "bad magic %S: not an autobatch snapshot"
      (String.sub blob 0 (String.length magic));
  (* Verify integrity before trusting any length field. *)
  let body = String.sub blob 0 (n - 8) in
  let declared = String.get_int64_le blob (n - 8) in
  let actual = Codec.fnv1a64 body in
  if declared <> actual then
    Codec.corrupt "checksum mismatch (stored %Lx, computed %Lx): snapshot is corrupted"
      declared actual;
  let r = Codec.reader body in
  Codec.skip r (String.length magic);
  let v = Codec.r_int r in
  if v <> version then
    Codec.corrupt "unsupported snapshot version %d (this build reads version %d)" v
      version;
  let k = Codec.r_string r in
  if k <> kind then Codec.corrupt "snapshot kind %S, expected %S" k kind;
  let payload = Codec.r_string r in
  if Codec.remaining r <> 0 then
    Codec.corrupt "%d trailing bytes after the payload" (Codec.remaining r);
  let pr = Codec.reader payload in
  let x = read pr in
  if Codec.remaining pr <> 0 then
    Codec.corrupt "%d undecoded payload bytes" (Codec.remaining pr);
  x

let save_file path blob =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc blob)

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---- Sections -------------------------------------------------------- *)

let w_shape b (s : Shape.t) = Codec.w_int_array b s
let r_shape r : Shape.t = Codec.r_int_array r

let w_stacked b (img : Stacked.image) =
  Codec.w_int b img.Stacked.i_z;
  w_shape b img.Stacked.i_elem;
  Codec.w_int_array b img.Stacked.i_sp;
  Codec.w_float_array b img.Stacked.i_frames;
  Codec.w_float_array b img.Stacked.i_top

let r_stacked r : Stacked.image =
  let i_z = Codec.r_int r in
  let i_elem = r_shape r in
  let i_sp = Codec.r_int_array r in
  let i_frames = Codec.r_float_array r in
  let i_top = Codec.r_float_array r in
  { Stacked.i_z; i_elem; i_sp; i_frames; i_top }

let w_pc b (img : Vm_image.pc) =
  Codec.w_int b img.Vm_image.pc_cap;
  Codec.w_int_array b img.Vm_image.pc_data;
  Codec.w_int_array b img.Vm_image.pc_sp;
  Codec.w_int_array b img.Vm_image.pc_top

let r_pc r : Vm_image.pc =
  let pc_cap = Codec.r_int r in
  let pc_data = Codec.r_int_array r in
  let pc_sp = Codec.r_int_array r in
  let pc_top = Codec.r_int_array r in
  { Vm_image.pc_cap; pc_data; pc_sp; pc_top }

let w_storage b = function
  | Vm_image.Reg (shape, data) ->
    Codec.w_int b 0;
    w_shape b shape;
    Codec.w_float_array b data
  | Vm_image.Msk (shape, data) ->
    Codec.w_int b 1;
    w_shape b shape;
    Codec.w_float_array b data
  | Vm_image.Stk img ->
    Codec.w_int b 2;
    w_stacked b img

let r_storage r =
  match Codec.r_int r with
  | 0 ->
    let shape = r_shape r in
    Vm_image.Reg (shape, Codec.r_float_array r)
  | 1 ->
    let shape = r_shape r in
    Vm_image.Msk (shape, Codec.r_float_array r)
  | 2 -> Vm_image.Stk (r_stacked r)
  | n -> Codec.corrupt "unknown storage class tag %d" n

let w_store b (store : Vm_image.store) =
  Codec.w_list
    (fun b (v, s) ->
      Codec.w_string b v;
      w_storage b s)
    b store

let r_store r : Vm_image.store =
  Codec.r_list
    (fun r ->
      let v = Codec.r_string r in
      (v, r_storage r))
    r

let w_lanes b (img : Pc_vm.Lanes.image) =
  Codec.w_int b img.Pc_vm.Lanes.li_z;
  Codec.w_int b img.Pc_vm.Lanes.li_steps;
  Codec.w_int b img.Pc_vm.Lanes.li_last;
  Codec.w_int_array b img.Pc_vm.Lanes.li_members;
  Codec.w_bool_array b img.Pc_vm.Lanes.li_occupied;
  w_pc b img.Pc_vm.Lanes.li_pc;
  w_store b img.Pc_vm.Lanes.li_store

let r_lanes r : Pc_vm.Lanes.image =
  let li_z = Codec.r_int r in
  let li_steps = Codec.r_int r in
  let li_last = Codec.r_int r in
  let li_members = Codec.r_int_array r in
  let li_occupied = Codec.r_bool_array r in
  let li_pc = r_pc r in
  let li_store = r_store r in
  { Pc_vm.Lanes.li_z; li_steps; li_last; li_members; li_occupied; li_pc; li_store }

let w_jit b (img : Pc_jit.image) =
  Codec.w_int b img.Pc_jit.ji_z;
  Codec.w_int b img.Pc_jit.ji_steps;
  Codec.w_int b img.Pc_jit.ji_last;
  w_pc b img.Pc_jit.ji_pc;
  w_store b img.Pc_jit.ji_store

let r_jit r : Pc_jit.image =
  let ji_z = Codec.r_int r in
  let ji_steps = Codec.r_int r in
  let ji_last = Codec.r_int r in
  let ji_pc = r_pc r in
  let ji_store = r_store r in
  { Pc_jit.ji_z; ji_steps; ji_last; ji_pc; ji_store }

let w_counters b (c : Engine.counters) =
  Codec.w_int b c.Engine.Counters.kernel_launches;
  Codec.w_int b c.Engine.Counters.fused_launches;
  Codec.w_int b c.Engine.Counters.host_ops;
  Codec.w_int b c.Engine.Counters.host_calls;
  Codec.w_int b c.Engine.Counters.blocks;
  Codec.w_int b c.Engine.Counters.lane_refills;
  Codec.w_int b c.Engine.Counters.lane_retires;
  Codec.w_float b c.Engine.Counters.flops;
  Codec.w_float b c.Engine.Counters.traffic_bytes;
  Codec.w_float b c.Engine.Counters.elapsed_seconds

let r_counters r : Engine.counters =
  let kernel_launches = Codec.r_int r in
  let fused_launches = Codec.r_int r in
  let host_ops = Codec.r_int r in
  let host_calls = Codec.r_int r in
  let blocks = Codec.r_int r in
  let lane_refills = Codec.r_int r in
  let lane_retires = Codec.r_int r in
  let flops = Codec.r_float r in
  let traffic_bytes = Codec.r_float r in
  let elapsed_seconds = Codec.r_float r in
  {
    Engine.Counters.kernel_launches;
    fused_launches;
    host_ops;
    host_calls;
    blocks;
    lane_refills;
    lane_retires;
    flops;
    traffic_bytes;
    elapsed_seconds;
  }

let w_engine b (s : Engine.snapshot) =
  w_counters b s.Engine.at;
  Codec.w_list
    (fun b (name, n) ->
      Codec.w_string b name;
      Codec.w_int b n)
    b s.Engine.ops

let r_engine r : Engine.snapshot =
  let at = r_counters r in
  let ops =
    Codec.r_list
      (fun r ->
        let name = Codec.r_string r in
        (name, Codec.r_int r))
      r
  in
  { Engine.at; ops }

let w_instrument b (img : Instrument.image) =
  Codec.w_list
    (fun b (name, useful, issued) ->
      Codec.w_string b name;
      Codec.w_int b useful;
      Codec.w_int b issued)
    b img.Instrument.i_prims;
  Codec.w_list
    (fun b (blk, execs, active) ->
      Codec.w_int b blk;
      Codec.w_int b execs;
      Codec.w_int b active)
    b img.Instrument.i_per_block;
  Codec.w_int b img.Instrument.i_blocks;
  Codec.w_int b img.Instrument.i_active_total;
  Codec.w_int b img.Instrument.i_batch_total;
  Codec.w_int b img.Instrument.i_pushes;
  Codec.w_int b img.Instrument.i_pops;
  Codec.w_int b img.Instrument.i_push_lanes;
  Codec.w_int b img.Instrument.i_pop_lanes;
  Codec.w_int b img.Instrument.i_max_depth;
  Codec.w_float b img.Instrument.i_live_total;
  Codec.w_float b img.Instrument.i_live_lanes_total;
  Codec.w_int b img.Instrument.i_live_samples;
  Codec.w_int b img.Instrument.i_gauge_width;
  Codec.w_int b img.Instrument.i_gauge_used;
  Codec.w_int b img.Instrument.i_gauge_fill;
  Codec.w_float_array b img.Instrument.i_gauge_live;
  Codec.w_float_array b img.Instrument.i_gauge_lanes

let r_instrument r : Instrument.image =
  let i_prims =
    Codec.r_list
      (fun r ->
        let name = Codec.r_string r in
        let useful = Codec.r_int r in
        let issued = Codec.r_int r in
        (name, useful, issued))
      r
  in
  let i_per_block =
    Codec.r_list
      (fun r ->
        let blk = Codec.r_int r in
        let execs = Codec.r_int r in
        let active = Codec.r_int r in
        (blk, execs, active))
      r
  in
  let i_blocks = Codec.r_int r in
  let i_active_total = Codec.r_int r in
  let i_batch_total = Codec.r_int r in
  let i_pushes = Codec.r_int r in
  let i_pops = Codec.r_int r in
  let i_push_lanes = Codec.r_int r in
  let i_pop_lanes = Codec.r_int r in
  let i_max_depth = Codec.r_int r in
  let i_live_total = Codec.r_float r in
  let i_live_lanes_total = Codec.r_float r in
  let i_live_samples = Codec.r_int r in
  let i_gauge_width = Codec.r_int r in
  let i_gauge_used = Codec.r_int r in
  let i_gauge_fill = Codec.r_int r in
  let i_gauge_live = Codec.r_float_array r in
  let i_gauge_lanes = Codec.r_float_array r in
  {
    Instrument.i_prims;
    i_per_block;
    i_blocks;
    i_active_total;
    i_batch_total;
    i_pushes;
    i_pops;
    i_push_lanes;
    i_pop_lanes;
    i_max_depth;
    i_live_total;
    i_live_lanes_total;
    i_live_samples;
    i_gauge_width;
    i_gauge_used;
    i_gauge_fill;
    i_gauge_live;
    i_gauge_lanes;
  }

let w_tensor_image b (shape, data) =
  w_shape b shape;
  Codec.w_float_array b data

let r_tensor_image r =
  let shape = r_shape r in
  (shape, Codec.r_float_array r)

let w_request b (img : Request.image) =
  Codec.w_int b img.Request.ri_id;
  Codec.w_list w_tensor_image b img.Request.ri_inputs;
  Codec.w_int b img.Request.ri_member;
  Codec.w_float b img.Request.ri_arrival;
  Codec.w_float b img.Request.ri_cost_hint;
  Codec.w_int b img.Request.ri_trace;
  Codec.w_int b img.Request.ri_parent

let r_request r : Request.image =
  let ri_id = Codec.r_int r in
  let ri_inputs = Codec.r_list r_tensor_image r in
  let ri_member = Codec.r_int r in
  let ri_arrival = Codec.r_float r in
  let ri_cost_hint = Codec.r_float r in
  let ri_trace = Codec.r_int r in
  let ri_parent = Codec.r_int r in
  { Request.ri_id; ri_inputs; ri_member; ri_arrival; ri_cost_hint; ri_trace; ri_parent }

let w_lane_manager b (img : Lane_manager.image) =
  w_lanes b img.Lane_manager.mi_vm;
  Codec.w_list
    (fun b (req, lanes, started) ->
      w_request b req;
      Codec.w_int_array b lanes;
      Codec.w_float b started)
    b img.Lane_manager.mi_flight

let r_lane_manager r : Lane_manager.image =
  let mi_vm = r_lanes r in
  let mi_flight =
    Codec.r_list
      (fun r ->
        let req = r_request r in
        let lanes = Codec.r_int_array r in
        let started = Codec.r_float r in
        (req, lanes, started))
      r
  in
  { Lane_manager.mi_vm; mi_flight }

let w_completion b (c : Server.completion_image) =
  w_request b c.Server.ci_request;
  Codec.w_list w_tensor_image b c.Server.ci_outputs;
  Codec.w_float b c.Server.ci_queued;
  Codec.w_float b c.Server.ci_started;
  Codec.w_float b c.Server.ci_finished

let r_completion r : Server.completion_image =
  let ci_request = r_request r in
  let ci_outputs = Codec.r_list r_tensor_image r in
  let ci_queued = Codec.r_float r in
  let ci_started = Codec.r_float r in
  let ci_finished = Codec.r_float r in
  { Server.ci_request; ci_outputs; ci_queued; ci_started; ci_finished }

let w_server b (img : Server.image) =
  Codec.w_float b img.Server.si_now;
  Codec.w_float b img.Server.si_last_elapsed;
  Codec.w_int b img.Server.si_idle_steps;
  Codec.w_list w_request b img.Server.si_pending;
  Codec.w_list w_request b img.Server.si_queue;
  Codec.w_int b img.Server.si_queue_shed_total;
  Codec.w_list w_request b img.Server.si_shed;
  Codec.w_list w_request b img.Server.si_rejected;
  Codec.w_list w_completion b img.Server.si_completions;
  w_lane_manager b img.Server.si_lm;
  Codec.w_option w_engine b img.Server.si_engine;
  w_instrument b img.Server.si_instrument

let r_server r : Server.image =
  let si_now = Codec.r_float r in
  let si_last_elapsed = Codec.r_float r in
  let si_idle_steps = Codec.r_int r in
  let si_pending = Codec.r_list r_request r in
  let si_queue = Codec.r_list r_request r in
  let si_queue_shed_total = Codec.r_int r in
  let si_shed = Codec.r_list r_request r in
  let si_rejected = Codec.r_list r_request r in
  let si_completions = Codec.r_list r_completion r in
  let si_lm = r_lane_manager r in
  let si_engine = Codec.r_option r_engine r in
  let si_instrument = r_instrument r in
  {
    Server.si_now;
    si_last_elapsed;
    si_idle_steps;
    si_pending;
    si_queue;
    si_queue_shed_total;
    si_shed;
    si_rejected;
    si_completions;
    si_lm;
    si_engine;
    si_instrument;
  }

(* ---- Top-level snapshot kinds ---------------------------------------- *)

(* A full single-VM checkpoint: the VM plus whatever cost/instrumentation
   state rides along, so a recovered run reports true cumulative figures. *)
type 'vm checkpoint = {
  ck_vm : 'vm;
  ck_engine : Engine.snapshot option;
  ck_instrument : Instrument.image option;
}

let w_checkpoint w_vm b ck =
  w_vm b ck.ck_vm;
  Codec.w_option w_engine b ck.ck_engine;
  Codec.w_option w_instrument b ck.ck_instrument

let r_checkpoint r_vm r =
  let ck_vm = r_vm r in
  let ck_engine = Codec.r_option r_engine r in
  let ck_instrument = Codec.r_option r_instrument r in
  { ck_vm; ck_engine; ck_instrument }

let pc_kind = "pc-vm-checkpoint"
let encode_pc ck = encode ~kind:pc_kind (fun b -> w_checkpoint w_lanes b ck)
let decode_pc blob = decode ~kind:pc_kind blob (r_checkpoint r_lanes)

let jit_kind = "pc-jit-checkpoint"
let encode_jit ck = encode ~kind:jit_kind (fun b -> w_checkpoint w_jit b ck)
let decode_jit blob = decode ~kind:jit_kind blob (r_checkpoint r_jit)

let shard_kind = "shard-checkpoint"

let encode_shards shards =
  encode ~kind:shard_kind (fun b ->
      Codec.w_int b (Array.length shards);
      Array.iter (w_lanes b) shards)

let decode_shards blob =
  decode ~kind:shard_kind blob (fun r ->
      let n = Codec.r_int r in
      if n < 0 || Codec.remaining r < n then
        Codec.corrupt "implausible shard count %d" n;
      Array.init n (fun _ -> r_lanes r))

let server_kind = "server-checkpoint"
let encode_server img = encode ~kind:server_kind (fun b -> w_server b img)
let decode_server blob = decode ~kind:server_kind blob r_server
