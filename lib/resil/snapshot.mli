(** Versioned, checksummed binary snapshots of execution state.

    A snapshot is an envelope

    {v magic | version | kind | payload | fnv1a-64 checksum v}

    around a typed payload built from the runtimes' plain-data images
    ({!Vm_image}, {!Pc_vm.Lanes.image}, {!Pc_jit.image},
    {!Engine.snapshot}, {!Instrument.image}, {!Server.image}). Decoding
    verifies the checksum before trusting a single length field and
    rejects wrong magic, unknown versions, mismatched kinds, truncation,
    and trailing bytes with a descriptive {!Codec.Corrupt}. Floats travel
    as IEEE-754 bit patterns, so a decoded state is bitwise identical to
    the captured one — the foundation of deterministic replay. *)

val version : int

val encode : kind:string -> (Buffer.t -> unit) -> string
(** Wrap a payload writer in the envelope. *)

val decode : kind:string -> string -> (Codec.reader -> 'a) -> 'a
(** Unwrap and verify, then run the payload reader. Raises
    {!Codec.Corrupt} on any integrity or format violation, including
    payload bytes left undecoded. *)

val save_file : string -> string -> unit
(** [save_file path blob] writes the blob atomically enough for a
    single-writer checkpoint (binary mode, closed on error). *)

val load_file : string -> string
(** Read a whole snapshot file (binary mode). *)

(** {1 Section codecs}

    Exposed so composite snapshots (and tests) can reuse them. Each
    [w_x]/[r_x] pair round-trips exactly. *)

val w_shape : Buffer.t -> Shape.t -> unit
val r_shape : Codec.reader -> Shape.t
val w_stacked : Buffer.t -> Stacked.image -> unit
val r_stacked : Codec.reader -> Stacked.image
val w_pc : Buffer.t -> Vm_image.pc -> unit
val r_pc : Codec.reader -> Vm_image.pc
val w_storage : Buffer.t -> Vm_image.storage -> unit
val r_storage : Codec.reader -> Vm_image.storage
val w_store : Buffer.t -> Vm_image.store -> unit
val r_store : Codec.reader -> Vm_image.store
val w_lanes : Buffer.t -> Pc_vm.Lanes.image -> unit
val r_lanes : Codec.reader -> Pc_vm.Lanes.image
val w_jit : Buffer.t -> Pc_jit.image -> unit
val r_jit : Codec.reader -> Pc_jit.image
val w_counters : Buffer.t -> Engine.counters -> unit
val r_counters : Codec.reader -> Engine.counters
val w_engine : Buffer.t -> Engine.snapshot -> unit
val r_engine : Codec.reader -> Engine.snapshot
val w_instrument : Buffer.t -> Instrument.image -> unit
val r_instrument : Codec.reader -> Instrument.image
val w_request : Buffer.t -> Request.image -> unit
val r_request : Codec.reader -> Request.image
val w_lane_manager : Buffer.t -> Lane_manager.image -> unit
val r_lane_manager : Codec.reader -> Lane_manager.image
val w_server : Buffer.t -> Server.image -> unit
val r_server : Codec.reader -> Server.image

(** {1 Snapshot kinds} *)

(** A full single-VM checkpoint: the VM image plus whatever engine and
    instrument state rides along, so a recovered run reports true
    cumulative cost and statistics from time zero. *)
type 'vm checkpoint = {
  ck_vm : 'vm;
  ck_engine : Engine.snapshot option;
  ck_instrument : Instrument.image option;
}

val encode_pc : Pc_vm.Lanes.image checkpoint -> string
val decode_pc : string -> Pc_vm.Lanes.image checkpoint

val encode_jit : Pc_jit.image checkpoint -> string
val decode_jit : string -> Pc_jit.image checkpoint

val encode_shards : Pc_vm.Lanes.image array -> string
(** One image per shard, shard order. *)

val decode_shards : string -> Pc_vm.Lanes.image array

val encode_server : Server.image -> string
val decode_server : string -> Server.image
