let mix64 z =
  let open Int64 in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash2 a b = mix64 (Int64.add (mix64 a) b)

let hash_list ws = List.fold_left hash2 0x5851F42D4C957F2DL ws

let to_unit_float w =
  (* Use the top 53 bits, offset by 1/2 ulp: result lies in (0,1). *)
  let bits = Int64.shift_right_logical w 11 in
  (Int64.to_float bits +. 0.5) *. 0x1p-53

module Stream = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  (* The stream's one word of hidden mutable state, exposed so snapshots
     can round-trip it: [of_state (state t)] continues the exact draw
     sequence [t] would produce. *)
  let state t = t.state
  let of_state s = { state = s }
  let copy t = { state = t.state }

  let next_int64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    mix64 t.state

  let uniform t = to_unit_float (next_int64 t)

  let normal t =
    let u1 = uniform t in
    let u2 = uniform t in
    Stdlib.sqrt (-2. *. Stdlib.log u1) *. Stdlib.cos (2. *. Float.pi *. u2)

  let int_below t n =
    if n <= 0 then invalid_arg "Splitmix.Stream.int_below: non-positive bound";
    (* Rejection-free modulo is fine for test workloads. *)
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next_int64 t) 1) (Int64.of_int n))

  let exponential t ~rate =
    if rate <= 0. then
      invalid_arg "Splitmix.Stream.exponential: non-positive rate";
    (* uniform is in the open interval, so log never sees 0 *)
    -.Stdlib.log (uniform t) /. rate
end
