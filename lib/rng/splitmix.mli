(** SplitMix64 mixing and a small stateful stream built on it.

    The mixing function is the finalizer of Steele, Lea & Flood's
    SplitMix64; it is a high-quality 64-bit permutation we use both as the
    core of the counter-based generator ({!Counter_rng}) and as a simple
    sequential stream for test-data synthesis. *)

val mix64 : int64 -> int64
(** The SplitMix64 finalizer (a bijection on 64-bit words). *)

val hash2 : int64 -> int64 -> int64
(** Combine two words; order-sensitive. *)

val hash_list : int64 list -> int64
(** Fold {!hash2} over a list with a fixed initial word. *)

val to_unit_float : int64 -> float
(** Map a word to the open interval (0,1); never returns 0 or 1, so it is
    safe under [log]. *)

(** Stateful sequential stream (for synthetic data and tests only — the
    autobatching runtimes use the stateless {!Counter_rng}). *)
module Stream : sig
  type t

  val create : int64 -> t

  val state : t -> int64
  (** The stream's complete mutable state: one 64-bit word. Together with
      {!of_state} this makes streams checkpointable — a snapshot layer
      (see [lib/resil]) stores the word and later rebuilds a stream that
      continues the exact same draw sequence. *)

  val of_state : int64 -> t
  (** Rebuild a stream from {!state}. [of_state (state t)] draws the same
      sequence as [t] from this point on. *)

  val copy : t -> t
  (** An independent stream starting from the same state ([t] and the copy
      then evolve separately). *)

  val next_int64 : t -> int64
  val uniform : t -> float
  (** In (0,1). *)

  val normal : t -> float
  (** Standard normal via Box–Muller (no caching; two draws per call). *)

  val int_below : t -> int -> int
  (** Uniform in [0, n); raises on n <= 0. *)

  val exponential : t -> rate:float -> float
  (** Exponential with the given rate (Poisson interarrival times);
      raises on rate <= 0. *)
end
