(* Unit weight per op covers the bookkeeping classes (const/mov/push/pop
   and the block's own control step); primitives add their registry flops
   estimate when the element shapes are inferred, so a gradient block
   weighs its real arithmetic against a two-op glue block. *)
let op_weight registry (p : Stack_ir.program) (op : Stack_ir.op) =
  match op with
  | Stack_ir.Sprim { prim; args; _ } -> (
    match registry with
    | None -> 1.
    | Some reg -> (
      match Prim.find reg prim with
      | None -> 1.
      | Some impl ->
        let shapes =
          List.map (fun a -> Ir_util.Smap.find_opt a p.Stack_ir.shapes) args
        in
        if List.exists Option.is_none shapes then 1.
        else 1. +. impl.Prim.flops (List.map Option.get shapes)))
  | Stack_ir.Sconst _ | Stack_ir.Smov _ | Stack_ir.Spush _ | Stack_ir.Spop _ ->
    1.

let stack_costs ?registry ?profile (p : Stack_ir.program) =
  Array.mapi
    (fun i (b : Stack_ir.block) ->
      let base =
        List.fold_left (fun acc op -> acc +. op_weight registry p op) 1. b.Stack_ir.ops
      in
      match profile with
      | None -> base
      | Some prof ->
        (* Profile weighting biases the lookahead toward historically hot
           blocks without zeroing cold ones (a block never seen in the
           profile keeps its static cost). *)
        let fn, local = p.Stack_ir.origin.(i) in
        base *. Float.max 1. (Fuse_profile.block_weight prof ~fn ~block:local))
    p.Stack_ir.blocks

let stack_successors (p : Stack_ir.program) i =
  match p.Stack_ir.blocks.(i).Stack_ir.term with
  | Stack_ir.Sjump j -> [ j ]
  | Stack_ir.Sbranch { if_true; if_false; _ } -> [ if_true; if_false ]
  | Stack_ir.Spushjump { ret; entry } -> [ entry; ret ]
  | Stack_ir.Spushbranch { ret; if_true; if_false; _ } ->
    [ if_true; if_false; ret ]
  | Stack_ir.Sreturn -> []

(* Longest cost-weighted path to halt over forward edges only: scanning
   from the last block down, every successor with a larger index already
   has its depth, and back edges (loops) are dropped so the recurrence is
   a DAG pass. [Sreturn] continues at whatever pc lies below on the stack
   — unknowable statically — and halt is one possibility, so it scores as
   the end of the road. *)
let depths_of ~costs ~n successors =
  let depth = Array.make n 0. in
  for i = n - 1 downto 0 do
    let tail =
      List.fold_left
        (fun acc j -> if j > i && j < n then Float.max acc depth.(j) else acc)
        0. (successors i)
    in
    depth.(i) <- costs.(i) +. tail
  done;
  depth

let stack_depths ~costs (p : Stack_ir.program) =
  let n = Array.length p.Stack_ir.blocks in
  if Array.length costs <> n then
    invalid_arg "Sched_cost.stack_depths: costs do not cover every block";
  depths_of ~costs ~n (stack_successors p)

let stack_tables ?registry ?profile p =
  let cost = stack_costs ?registry ?profile p in
  { Sched_policy.cost; depth = stack_depths ~costs:cost p }

let func_costs (p : Cfg.program) ~fn =
  match List.assoc_opt fn (Optimize.block_op_counts p) with
  | Some counts -> Array.map (fun c -> 1. +. float_of_int c) counts
  | None ->
    invalid_arg (Printf.sprintf "Sched_cost.func_costs: unknown function %s" fn)

let func_tables (p : Cfg.program) ~fn =
  let f = Cfg.find_func_exn p fn in
  let cost = func_costs p ~fn in
  let n = Array.length f.Cfg.blocks in
  if Array.length cost <> n then
    invalid_arg "Sched_cost.func_tables: op counts disagree with block count";
  { Sched_policy.cost; depth = depths_of ~costs:cost ~n (Cfg.successors f) }
