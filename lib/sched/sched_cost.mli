(** Static per-block cost tables for the table-driven policies.

    Costs come from the IR itself: each op contributes its registry
    [flops] estimate (element shapes permitting) or unit weight, plus a
    unit launch charge per block. A {!Fuse_profile} observed on an
    earlier run can re-weight blocks toward the historically hot path.
    Depths are cost-weighted longest distances to halt over *forward*
    control-flow edges — back edges are dropped, which makes the
    recurrence a DAG pass and means a loop's depth reflects one trip,
    exactly the "remaining road if this lane exits now" the
    [Critical_path] policy wants to prioritize. *)

val stack_costs :
  ?registry:Prim.registry ->
  ?profile:Fuse_profile.t ->
  Stack_ir.program ->
  float array
(** Expected cost of one launch of each merged block. *)

val stack_depths : costs:float array -> Stack_ir.program -> float array
(** Longest cost-weighted forward path to halt, per merged block. *)

val stack_tables :
  ?registry:Prim.registry ->
  ?profile:Fuse_profile.t ->
  Stack_ir.program ->
  Sched_policy.tables

val func_costs : Cfg.program -> fn:string -> float array
(** Per-block costs of one function of the pre-merge CFG, from
    {!Optimize.block_op_counts} (the local VM schedules function-local
    blocks). Raises [Invalid_argument] for an unknown function. *)

val func_tables : Cfg.program -> fn:string -> Sched_policy.tables
