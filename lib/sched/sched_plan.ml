type config = {
  refill : bool;
  steal : bool;
  compact : bool;
  steal_margin : int;
  max_moves : int;
}

let default =
  { refill = true; steal = true; compact = true; steal_margin = 2; max_moves = 1 }

let aggressive = { default with max_moves = max_int }

let no_migration =
  { refill = true; steal = false; compact = false; steal_margin = 2; max_moves = 0 }

let off = { no_migration with refill = false }

type view = { free : int list; live : int list }
type refill = { r_shard : int; r_lane : int }

type move = {
  m_src_shard : int;
  m_src_lane : int;
  m_dst_shard : int;
  m_dst_lane : int;
}

type plan = { refills : refill list; moves : move list }

let plan cfg ~pending ~views =
  if pending < 0 then invalid_arg "Sched_plan.plan: negative pending count";
  let k = Array.length views in
  (* Working copies: free ascending, live descending (donors give their
     highest lane first, so surviving members compact downward). *)
  let free = Array.map (fun v -> ref (List.sort_uniq compare v.free)) views in
  let live =
    Array.map
      (fun v -> ref (List.sort_uniq (fun a b -> compare b a) v.live))
      views
  in
  (* Refills: (shard, lane) order until the queue runs dry. *)
  let refills = ref [] in
  if cfg.refill then begin
    let remaining = ref pending in
    for s = 0 to k - 1 do
      while !remaining > 0 && !(free.(s)) <> [] do
        match !(free.(s)) with
        | [] -> ()
        | lane :: rest ->
          free.(s) := rest;
          live.(s) := lane :: List.filter (fun l -> l <> lane) !(live.(s));
          refills := { r_shard = s; r_lane = lane } :: !refills;
          decr remaining
      done
    done
  end;
  (* Steals: balance live counts while a move strictly helps. *)
  let moves = ref [] in
  if cfg.steal && cfg.max_moves > 0 then begin
    let margin = max 2 cfg.steal_margin in
    let continue = ref true in
    let budget = ref cfg.max_moves in
    while !continue && !budget > 0 do
      let donor = ref (-1) and recipient = ref (-1) in
      for s = k - 1 downto 0 do
        let n_live = List.length !(live.(s)) in
        if
          n_live > 0
          && (!donor < 0 || n_live >= List.length !(live.(!donor)))
        then donor := s;
        if
          !(free.(s)) <> []
          && (!recipient < 0 || n_live <= List.length !(live.(!recipient)))
        then recipient := s
      done;
      if
        !donor < 0 || !recipient < 0 || !donor = !recipient
        || List.length !(live.(!donor)) - List.length !(live.(!recipient))
           < margin
      then continue := false
      else begin
        match (!(live.(!donor)), !(free.(!recipient))) with
        | src_lane :: live_rest, dst_lane :: free_rest ->
          live.(!donor) := live_rest;
          free.(!donor) := List.sort_uniq compare (src_lane :: !(free.(!donor)));
          free.(!recipient) := free_rest;
          live.(!recipient) := dst_lane :: !(live.(!recipient));
          moves :=
            {
              m_src_shard = !donor;
              m_src_lane = src_lane;
              m_dst_shard = !recipient;
              m_dst_lane = dst_lane;
            }
            :: !moves;
          decr budget
        | _ -> continue := false
      end
    done
  end;
  (* Same-shard compaction: live members slide from the highest occupied
     lanes into the lowest free ones, so a pool's live region is a dense
     prefix. Unbounded (at most z/2 moves per shard per round) — these
     are on-device copies, not link transfers. *)
  if cfg.compact then
    for s = 0 to k - 1 do
      let continue = ref true in
      while !continue do
        match (!(live.(s)), !(free.(s))) with
        | src_lane :: live_rest, dst_lane :: free_rest when src_lane > dst_lane
          ->
          live.(s) := List.sort_uniq (fun a b -> compare b a) (dst_lane :: live_rest);
          free.(s) := List.sort_uniq compare (src_lane :: free_rest);
          moves :=
            {
              m_src_shard = s;
              m_src_lane = src_lane;
              m_dst_shard = s;
              m_dst_lane = dst_lane;
            }
            :: !moves
        | _ -> continue := false
      done
    done;
  { refills = List.rev !refills; moves = List.rev !moves }

let choose_lanes ~free ~width =
  if width <= 0 then invalid_arg "Sched_plan.choose_lanes: width must be positive";
  let picked = Array.make width 0 in
  let n = ref 0 in
  let i = ref 0 in
  let z = Array.length free in
  while !n < width && !i < z do
    if free.(!i) then begin
      picked.(!n) <- !i;
      incr n
    end;
    incr i
  done;
  if !n = width then Some picked else None
