(** The pure lane defragmentation / work-stealing planner.

    A planner round looks at every shard's lane occupancy plus the count
    of members still waiting to start, and decides (a) which free lanes
    to refill with pending members and (b) which live members to migrate
    from loaded shards onto shards with idle lanes. The plan is pure
    data — the runtime ({!Sched_vm} in [lib/vm]) applies it, charging
    refill and transfer costs through the engine — so planning decisions
    are unit-testable and every migration schedule is a deterministic
    function of the observable lane state.

    Migration is *legal* because members are position-independent: the
    RNG keys every draw on the member identity carried in the lane (not
    the lane index), and per-lane state is exactly one row of every
    variable plus one pc-stack column, so moving it wholesale preserves
    the member's trajectory bitwise (DESIGN.md S20). *)

type config = {
  refill : bool;  (** fill free lanes with pending members *)
  steal : bool;   (** migrate live members toward idle shards *)
  compact : bool;
      (** defragment within each shard: slide live members from the
          highest occupied lanes into the lowest free ones *)
  steal_margin : int;
      (** minimum live-lane imbalance (donor minus recipient) before a
          steal pays; at least 2, or a move cannot strictly improve
          balance *)
  max_moves : int;  (** cross-shard steal cap per planning round *)
}

val default : config
(** Refill, stealing (margin 2, one steal per round) and compaction all
    on. *)

val aggressive : config
(** {!default} with an effectively unbounded steal budget — the
    configuration the migration-determinism fuzzer leans on. *)

val no_migration : config
(** Refill only: lanes recycle but no member ever moves. The baseline
    arm of the migration differentials. *)

val off : config
(** No refills, no steals, no compaction: the planner returns empty
    plans. Not usable as a {!Sched_vm} plan (nothing would ever load). *)

(** One shard's lane occupancy, as ascending lane indices. A lane is in
    neither list when it is finished-but-unretired; retire it before
    planning. *)
type view = { free : int list; live : int list }

type refill = { r_shard : int; r_lane : int }
(** Load the next pending member (queue order) into this free lane. *)

type move = {
  m_src_shard : int;
  m_src_lane : int;
  m_dst_shard : int;
  m_dst_lane : int;
}
(** Migrate the live member in the source lane into the free
    destination lane. *)

type plan = { refills : refill list; moves : move list }

val plan : config -> pending:int -> views:view array -> plan
(** Deterministic: refills fill free lanes in (shard, lane) order until
    the pending queue is exhausted; steals then repeatedly move one
    member from the most-loaded shard (highest live count, ties to the
    lowest shard id) to the least-loaded shard with a free lane, taking
    the donor's highest live lane and the recipient's lowest free lane,
    while the imbalance is at least [steal_margin]; compaction finally
    slides each shard's remaining live members into its lowest free
    lanes. The plan is valid applied in order — refills first, then
    moves in list order: each refill targets a lane free at that point,
    and each move reads a live source and lands in a free destination
    at that point. A lane may be targeted more than once across the
    round (a refilled lane can be stolen away and refilled again by
    compaction), so apply sequentially, never as a parallel
    scatter. *)

val choose_lanes : free:bool array -> width:int -> int array option
(** The serving layer's admission choice, shared so there is exactly one
    lane-selection code path: the [width] lowest-indexed free lanes, or
    [None] if fewer are free. *)
