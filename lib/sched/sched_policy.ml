type t =
  | Earliest
  | Most_active
  | Round_robin
  | Cost_lookahead
  | Critical_path

type tables = { cost : float array; depth : float array }

let legacy = [ Earliest; Most_active; Round_robin ]
let all = legacy @ [ Cost_lookahead; Critical_path ]

let to_string = function
  | Earliest -> "earliest"
  | Most_active -> "most-active"
  | Round_robin -> "round-robin"
  | Cost_lookahead -> "cost-lookahead"
  | Critical_path -> "critical-path"

let of_string = function
  | "earliest" -> Some Earliest
  | "most-active" -> Some Most_active
  | "round-robin" -> Some Round_robin
  | "cost-lookahead" | "cost" -> Some Cost_lookahead
  | "critical-path" | "critical" -> Some Critical_path
  | _ -> None

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Sched_policy.of_string_exn: unknown policy %S (%s)" s
         (String.concat "|" (List.map to_string all)))

let needs_tables = function
  | Cost_lookahead | Critical_path -> true
  | Earliest | Most_active | Round_robin -> false

let uniform_tables ~blocks =
  { cost = Array.make blocks 1.; depth = Array.make blocks 0. }

let check_tables tables ~n =
  if Array.length tables.cost < n || Array.length tables.depth < n then
    invalid_arg "Sched_policy.pick: tables do not cover every block"

(* Argmax of [score] over runnable blocks, scanning high to low with >= so
   ties resolve to the lowest index — the same convention the seed's
   Most_active used, kept so every policy is reproducible by inspection. *)
let best_by counts score =
  let n = Array.length counts in
  let best = ref (-1) in
  for i = n - 1 downto 0 do
    if counts.(i) > 0 && (!best < 0 || score i >= score !best) then best := i
  done;
  if !best < 0 then None else Some !best

let pick ?tables policy ~last ~counts =
  let n = Array.length counts in
  let earliest () =
    let rec go i =
      if i >= n then None else if counts.(i) > 0 then Some i else go (i + 1)
    in
    go 0
  in
  match policy with
  | Earliest -> earliest ()
  | Most_active -> best_by counts (fun i -> float_of_int counts.(i))
  | Round_robin ->
    let rec go k remaining =
      if remaining = 0 then None
      else if counts.(k mod n) > 0 then Some (k mod n)
      else go (k + 1) (remaining - 1)
    in
    if n = 0 then None else go (last + 1) n
  | Cost_lookahead -> (
    match tables with
    | None -> best_by counts (fun i -> float_of_int counts.(i))
    | Some tb ->
      check_tables tb ~n;
      best_by counts (fun i -> float_of_int counts.(i) *. tb.cost.(i)))
  | Critical_path -> (
    match tables with
    | None -> earliest ()
    | Some tb ->
      check_tables tb ~n;
      (* Longest remaining road first; a straggler's next block drains
         toward halt as early as possible. Depth ties (common inside one
         fused region) fall back to the more active block. *)
      best_by counts (fun i ->
          (tb.depth.(i) *. 1e6) +. float_of_int counts.(i)))
