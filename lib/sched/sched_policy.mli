(** Basic-block scheduling policies — the paper's "second free choice".

    Any non-starving choice of which runnable block to execute next is
    correct: a batch member's trajectory depends only on its member
    identity, its inputs and the program (the RNG keys every draw on
    [(seed, member, counter, slot)]), never on when its block was
    scheduled relative to other members'. The policies here therefore
    only move *cost*, not results — every runtime is bitwise identical to
    the [Earliest] baseline under every policy (the `bench sched` gate).

    The three legacy heuristics ({!legacy}) are the seed's original
    [Vm.Sched] set, compared in the scheduling ablation (DESIGN.md A2).
    The two table-driven policies consult a precomputed {!tables} — an
    expected per-block execution cost and a critical-path distance to
    halt ({!Sched_cost} builds both) — and degrade gracefully to the
    legacy behaviour when no tables are supplied. *)

type t =
  | Earliest      (** lowest-numbered runnable block (Algorithms 1 and 2) *)
  | Most_active   (** most waiting lanes; greedy utilization *)
  | Round_robin   (** cycle through blocks for fairness *)
  | Cost_lookahead
      (** maximize expected useful work per launch:
          [counts.(i) * cost.(i)], so a block about to do a lot of
          arithmetic for many lanes beats a cheap block with slightly
          more lanes. Without tables this is exactly [Most_active]. *)
  | Critical_path
      (** run the runnable block with the longest remaining
          cost-weighted path to halt, so stragglers on the long road
          retire early and lanes free up for refill. Without tables this
          is exactly [Earliest]. *)

(** Precomputed per-block guidance for the table-driven policies. Both
    arrays are indexed by merged-program block id and must cover every
    block ([Invalid_argument] otherwise). *)
type tables = {
  cost : float array;
      (** expected execution cost of one launch of the block (flops plus
          launch overhead, optionally profile-weighted) *)
  depth : float array;
      (** critical-path distance from the block to halt over forward
          control-flow edges, in the same cost units *)
}

val legacy : t list
(** The seed's three heuristics, in their historical order. *)

val all : t list
(** Every policy, legacy first. *)

val to_string : t -> string

val of_string : string -> t option
(** Inverse of {!to_string} (also accepts ["cost"] and ["critical"]). *)

val of_string_exn : string -> t
(** Raises [Invalid_argument] naming the known policies. *)

val needs_tables : t -> bool
(** Whether {!pick} consults {!tables} for this policy — lets a runtime
    skip building cost tables for the legacy heuristics. *)

val uniform_tables : blocks:int -> tables
(** Unit cost, zero depth: table-driven policies fall back to their
    documented no-tables behaviour. *)

val pick : ?tables:tables -> t -> last:int -> counts:int array -> int option
(** Choose a block index with [counts.(i) > 0], or [None] if all zero.
    [last] is the previously chosen block (for [Round_robin]; pass [-1]
    initially). All ties break toward the lowest block index, so every
    policy is a deterministic function of its inputs. *)
