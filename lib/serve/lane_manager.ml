type completion = {
  request : Request.t;
  outputs : Tensor.t list;
  started : float;
  finished : float;
}

type in_flight = { req : Request.t; lanes : int array; started : float }

type t = {
  vm : Pc_vm.Lanes.t;
  engine : Engine.t option;
  z : int;
  mutable flight : in_flight list;  (* admission order *)
}

let create ?(config = Pc_vm.default_config) ~program ~lanes () =
  if lanes <= 0 then invalid_arg "Lane_manager.create: need at least one lane";
  {
    vm =
      Pc_vm.Lanes.create ~config program.Autobatch.registry
        program.Autobatch.stack ~z:lanes;
    engine = config.Pc_vm.engine;
    z = lanes;
    flight = [];
  }

let z t = t.z
let vm t = t.vm
let free_lanes t = Pc_vm.Lanes.free_count t.vm
let live_lanes t = Pc_vm.Lanes.live_count t.vm
let in_flight t = List.length t.flight
let steps t = Pc_vm.Lanes.steps t.vm

let fits t r = Request.width r <= free_lanes t

let bytes_of outputs =
  List.fold_left (fun acc x -> acc +. (8. *. float_of_int (Tensor.numel x))) 0. outputs

let admit t ~now r =
  let w = Request.width r in
  (* Lane selection is the planner's (Sched_plan.choose_lanes), so the
     server and the defragmenting runtime share one code path. *)
  let free =
    Array.init t.z (fun lane -> not (Pc_vm.Lanes.occupied t.vm ~lane))
  in
  let lanes =
    match Sched_plan.choose_lanes ~free ~width:w with
    | Some lanes -> lanes
    | None ->
      invalid_arg
        (Printf.sprintf "Lane_manager.admit: request %d wants %d lanes, %d free"
           r.Request.id w (free_lanes t))
  in
  Array.iteri
    (fun i lane ->
      let inputs = Request.lane_inputs r ~row:i in
      Pc_vm.Lanes.load t.vm ~lane ~member:(r.Request.member + i) ~inputs;
      Option.iter (fun e -> Engine.charge_refill e ~bytes:(bytes_of inputs)) t.engine)
    lanes;
  t.flight <- t.flight @ [ { req = r; lanes; started = now } ]

let step t = Pc_vm.Lanes.step t.vm

type image = {
  mi_vm : Pc_vm.Lanes.image;
  mi_flight : (Request.image * int array * float) list;
}

let capture t =
  {
    mi_vm = Pc_vm.Lanes.capture t.vm;
    mi_flight =
      List.map (fun f -> (Request.to_image f.req, Array.copy f.lanes, f.started)) t.flight;
  }

let restore t ~program img =
  Pc_vm.Lanes.restore t.vm img.mi_vm;
  t.flight <-
    List.map
      (fun (ri, lanes, started) ->
        { req = Request.of_image ~program ri; lanes = Array.copy lanes; started })
      img.mi_flight

(* Retire every request whose lanes have all halted; their output rows are
   frozen (masked writes never touch a halted lane), so extraction
   mid-superstep reads exactly what an end-of-run read would. *)
let poll t ~now =
  let finished, rest =
    List.partition
      (fun f ->
        Array.for_all (fun lane -> Pc_vm.Lanes.finished t.vm ~lane) f.lanes)
      t.flight
  in
  t.flight <- rest;
  List.map
    (fun f ->
      let per_lane =
        Array.map
          (fun lane ->
            let outs = Pc_vm.Lanes.retire t.vm ~lane in
            Option.iter
              (fun e -> Engine.charge_retire e ~bytes:(bytes_of outs))
              t.engine;
            outs)
          f.lanes
      in
      let n_outputs = List.length per_lane.(0) in
      let outputs =
        List.init n_outputs (fun j ->
            Tensor.stack_rows
              (Array.to_list (Array.map (fun outs -> List.nth outs j) per_lane)))
      in
      { request = f.req; outputs; started = f.started; finished = now })
    finished
