(** Owner of the batch dimension: maps requests onto recyclable VM lanes.

    Wraps a {!Pc_vm.Lanes} pool with request-level bookkeeping: [admit]
    loads a request's rows onto the lowest free lanes (lane [i] gets RNG
    member [request.member + i] — the member-offset technique that makes
    serving bitwise-identical to solo execution), [step] advances the
    whole pool one scheduled block, and [poll] retires every request whose
    lanes have all halted, freeing them for the next admission
    mid-superstep. Refill and retire events are charged to the VM
    config's engine ({!Engine.charge_refill} / {!Engine.charge_retire}). *)

type completion = {
  request : Request.t;
  outputs : Tensor.t list;
      (** leading width dimension, exactly as [run_pc] would return *)
  started : float;
  finished : float;
}

type t

val create : ?config:Pc_vm.config -> program:Autobatch.compiled -> lanes:int -> unit -> t
(** A pool of [lanes] idle lanes for one compiled program. The VM config's
    [engine]/[instrument]/[sched] apply to the pool's whole lifetime. *)

val z : t -> int
val vm : t -> Pc_vm.Lanes.t
val free_lanes : t -> int
val live_lanes : t -> int

val in_flight : t -> int
(** Requests currently occupying lanes. *)

val steps : t -> int

val fits : t -> Request.t -> bool
(** Enough free lanes right now? *)

val admit : t -> now:float -> Request.t -> unit
(** Load the request onto free lanes. Raises [Invalid_argument] if it
    does not fit ({!fits} guards). *)

val step : t -> bool
(** One scheduled basic block over all live lanes; [false] if none. *)

val poll : t -> now:float -> completion list
(** Retire and return every finished request, freeing its lanes. *)

(** Plain-data checkpoint: the lane pool's VM image plus the in-flight
    requests (admission order) with their lane assignments and start
    times. *)
type image = {
  mi_vm : Pc_vm.Lanes.image;
  mi_flight : (Request.image * int array * float) list;
}

val capture : t -> image

val restore : t -> program:Autobatch.compiled -> image -> unit
(** Overwrite the pool with the image; in-flight requests are rebuilt
    against [program] (the server's own compiled program). *)
