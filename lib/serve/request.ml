type t = {
  id : int;
  program : Autobatch.compiled;
  inputs : Tensor.t list;
  member : int;
  arrival : float;
  cost_hint : float;
  ctx : Obs_span.ctx;
}

let width_of_inputs inputs =
  match inputs with
  | [] -> invalid_arg "Request: at least one input required"
  | first :: _ ->
    if Tensor.rank first = 0 then
      invalid_arg "Request: inputs must carry a leading width dimension";
    let w = (Tensor.shape first).(0) in
    List.iter
      (fun x ->
        if Tensor.rank x = 0 || (Tensor.shape x).(0) <> w then
          invalid_arg "Request: inputs disagree on the width dimension")
      inputs;
    if w <= 0 then invalid_arg "Request: width must be positive";
    w

let make ?member ?(arrival = 0.) ?(cost_hint = 1.) ?ctx ~id ~program ~inputs () =
  ignore (width_of_inputs inputs);
  {
    id;
    program;
    inputs;
    member = Option.value ~default:id member;
    arrival;
    cost_hint;
    ctx =
      (match ctx with
      | Some c -> c
      | None -> { Obs_span.trace = id; parent = Obs_span.no_parent });
  }

let width t = width_of_inputs t.inputs

let lane_inputs t ~row = List.map (fun x -> Tensor.slice_row x row) t.inputs

let input_bytes t =
  List.fold_left (fun acc x -> acc +. (8. *. float_of_int (Tensor.numel x))) 0. t.inputs

type image = {
  ri_id : int;
  ri_inputs : (Shape.t * float array) list;
  ri_member : int;
  ri_arrival : float;
  ri_cost_hint : float;
  ri_trace : int;
  ri_parent : int;
}

let to_image t =
  {
    ri_id = t.id;
    ri_inputs =
      List.map
        (fun x -> (Array.copy (Tensor.shape x), Array.copy (Tensor.data x)))
        t.inputs;
    ri_member = t.member;
    ri_arrival = t.arrival;
    ri_cost_hint = t.cost_hint;
    ri_trace = t.ctx.Obs_span.trace;
    ri_parent = t.ctx.Obs_span.parent;
  }

let of_image ~program img =
  {
    id = img.ri_id;
    program;
    inputs = List.map (fun (shape, data) -> Tensor.of_array shape data) img.ri_inputs;
    member = img.ri_member;
    arrival = img.ri_arrival;
    cost_hint = img.ri_cost_hint;
    ctx = { Obs_span.trace = img.ri_trace; parent = img.ri_parent };
  }
