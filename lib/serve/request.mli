(** A unit of serving work: one compiled program invocation.

    A request is [width] independent batch members of the same program —
    its inputs carry a leading width dimension, exactly the layout
    {!Autobatch.run_pc} takes — plus the RNG identity that makes its
    results reproducible anywhere: lane [i] of the request draws the
    streams of global member [member + i], so serving it in any lane mix
    is bitwise identical to running it alone with
    [{ Pc_vm.default_config with member_base = member }]. *)

type t = {
  id : int;                     (** caller-chosen identity (metrics, tracing) *)
  program : Autobatch.compiled; (** must match the server's program *)
  inputs : Tensor.t list;       (** leading width dimension, like [run_pc]'s batch *)
  member : int;                 (** global RNG member of the request's first lane *)
  arrival : float;              (** when the request reaches the server *)
  cost_hint : float;
      (** expected service cost, any consistent unit — the
          shortest-expected-first admission policy orders by it *)
  ctx : Obs_span.ctx;
      (** trace context: which distributed trace this request belongs to
          and the caller's span it should parent under. Carried inertly
          through admission, checkpointing and migration so the server's
          span tree lands in the caller's trace. *)
}

val make :
  ?member:int ->
  ?arrival:float ->
  ?cost_hint:float ->
  ?ctx:Obs_span.ctx ->
  id:int ->
  program:Autobatch.compiled ->
  inputs:Tensor.t list ->
  unit ->
  t
(** [member] defaults to [id]; [arrival] to 0; [cost_hint] to 1; [ctx]
    to a fresh root context on trace [id]. Raises [Invalid_argument] if
    the inputs are empty or disagree on the leading width dimension. *)

val width : t -> int
(** Lanes the request occupies (the inputs' leading dimension). *)

val lane_inputs : t -> row:int -> Tensor.t list
(** Element tensors for one of the request's rows, ready for
    {!Pc_vm.Lanes.load}. *)

val input_bytes : t -> float
(** Total payload size, for the engine's refill accounting. *)

(** Plain-data checkpoint of a request: everything except the compiled
    program, which is re-attached on {!of_image} (a server restores its
    requests against its own program — satisfying the physical-equality
    check in {!Server}). *)
type image = {
  ri_id : int;
  ri_inputs : (Shape.t * float array) list;
  ri_member : int;
  ri_arrival : float;
  ri_cost_hint : float;
  ri_trace : int;
  ri_parent : int;
}

val to_image : t -> image
val of_image : program:Autobatch.compiled -> image -> t
