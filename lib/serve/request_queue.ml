type shed_policy = Reject_new | Drop_oldest

type t = {
  depth : int;
  shed_policy : shed_policy;
  mutable items : Request.t list;  (* arrival order, oldest first *)
  mutable length : int;
  mutable shed_total : int;
}

let create ?(depth = max_int) ?(shed = Reject_new) () =
  if depth <= 0 then invalid_arg "Request_queue.create: depth must be positive";
  { depth; shed_policy = shed; items = []; length = 0; shed_total = 0 }

let depth t = t.depth
let shed_policy t = t.shed_policy
let length t = t.length
let is_empty t = t.length = 0
let shed_total t = t.shed_total
let to_list t = t.items

(* Restore seam for the resilience layer: overwrite the queue's contents
   wholesale (depth and shed policy are construction parameters, not
   state). *)
let set_state t ~items ~shed_total =
  t.items <- items;
  t.length <- List.length items;
  t.shed_total <- shed_total

let offer t r =
  if t.length < t.depth then begin
    t.items <- t.items @ [ r ];
    t.length <- t.length + 1;
    `Admitted
  end
  else begin
    t.shed_total <- t.shed_total + 1;
    match t.shed_policy with
    | Reject_new -> `Shed r
    | Drop_oldest -> (
      match t.items with
      | [] -> `Shed r (* depth >= 1 makes this unreachable *)
      | oldest :: rest ->
        t.items <- rest @ [ r ];
        `Shed oldest)
  end

(* Strict FIFO: only the head may leave, so a wide request at the head
   blocks the line until enough lanes drain (head-of-line blocking — the
   honest cost of the simplest policy). *)
let pop_fifo t ~fits =
  match t.items with
  | r :: rest when fits r ->
    t.items <- rest;
    t.length <- t.length - 1;
    Some r
  | _ -> None

(* Shortest-expected-first: the admissible request with the smallest
   cost hint, ties broken by arrival order (list order is stable). *)
let pop_shortest t ~fits =
  let best =
    List.fold_left
      (fun acc r ->
        if not (fits r) then acc
        else
          match acc with
          | Some b when b.Request.cost_hint <= r.Request.cost_hint -> acc
          | _ -> Some r)
      None t.items
  in
  match best with
  | None -> None
  | Some r ->
    let removed = ref false in
    t.items <-
      List.filter
        (fun x ->
          if (not !removed) && x == r then begin
            removed := true;
            false
          end
          else true)
        t.items;
    t.length <- t.length - 1;
    Some r
