(** Bounded admission queue with backpressure.

    Holds requests that have arrived but not yet been assigned lanes.
    Depth is bounded: offering to a full queue sheds a request — either
    the newcomer ([Reject_new], classic admission control) or the oldest
    waiter ([Drop_oldest], freshness-first). Both keep the server's memory
    and worst-case queueing delay bounded under overload. *)

type shed_policy = Reject_new | Drop_oldest

type t

val create : ?depth:int -> ?shed:shed_policy -> unit -> t
(** Defaults: unbounded depth, [Reject_new]. Raises [Invalid_argument] on
    non-positive depth. *)

val depth : t -> int
val shed_policy : t -> shed_policy
val length : t -> int
val is_empty : t -> bool

val shed_total : t -> int
(** Requests shed since creation. *)

val to_list : t -> Request.t list
(** Pending requests, oldest first (for inspection; does not pop). *)

val set_state : t -> items:Request.t list -> shed_total:int -> unit
(** Overwrite the queue's mutable state (the resilience layer's restore
    seam). [items] is oldest first, as {!to_list} returns; depth and shed
    policy are construction parameters and unchanged. *)

val offer : t -> Request.t -> [ `Admitted | `Shed of Request.t ]
(** Enqueue, or shed per policy when full. The shed request is the
    newcomer under [Reject_new] and the previous head under
    [Drop_oldest] (the newcomer is admitted in its place). *)

val pop_fifo : t -> fits:(Request.t -> bool) -> Request.t option
(** The head, if [fits] accepts it; [None] otherwise (strict FIFO:
    a non-fitting head blocks the line). *)

val pop_shortest : t -> fits:(Request.t -> bool) -> Request.t option
(** The fitting request with the smallest {!Request.cost_hint}, ties by
    arrival order — shortest-expected-first admission. *)
