type policy = Fifo | Shortest_first | Synchronous

let policy_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest"
  | Synchronous -> "synchronous"

type config = {
  lanes : int;
  policy : policy;
  queue_depth : int;
  shed : Request_queue.shed_policy;
  vm : Pc_vm.config;
}

let default_config =
  {
    lanes = 8;
    policy = Fifo;
    queue_depth = 64;
    shed = Request_queue.Reject_new;
    vm = Pc_vm.default_config;
  }

type record = {
  request : Request.t;
  outputs : Tensor.t list;
  queued : float;
  started : float;
  finished : float;
}

let queueing_latency r = r.started -. r.queued
let service_latency r = r.finished -. r.started
let total_latency r = r.finished -. r.queued

type stats = {
  completions : record list;
  shed : Request.t list;
  rejected : Request.t list;
  steps : int;
  idle_steps : int;
  makespan : float;
  mean_occupancy : float;
  occupancy : (int * float) list;
  instrument : Instrument.t;
}

let compare_arrival a b =
  let c = compare a.Request.arrival b.Request.arrival in
  if c <> 0 then c else compare a.Request.id b.Request.id

let rec insert_sorted r = function
  | [] -> [ r ]
  | x :: rest ->
    if compare_arrival r x < 0 then r :: x :: rest
    else x :: insert_sorted r rest

let run ?(config = default_config) ?on_complete ~program arrivals =
  let vm_config =
    match config.vm.Pc_vm.instrument with
    | Some _ -> config.vm
    | None -> { config.vm with Pc_vm.instrument = Some (Instrument.create ()) }
  in
  let ins =
    match vm_config.Pc_vm.instrument with Some i -> i | None -> assert false
  in
  let engine = vm_config.Pc_vm.engine in
  let lm = Lane_manager.create ~config:vm_config ~program ~lanes:config.lanes () in
  let queue = Request_queue.create ~depth:config.queue_depth ~shed:config.shed () in
  let now = ref 0. in
  let pending = ref (List.stable_sort compare_arrival arrivals) in
  let shed = ref [] in
  let rejected = ref [] in
  let completions = ref [] in
  let idle_steps = ref 0 in
  (* Admission: continuous policies refill free lanes the moment they
     open (mid-run); the synchronous baseline waits for the whole batch
     to drain before admitting again — the paper's fixed-batch regime. *)
  let refill () =
    let fits r = Lane_manager.fits lm r in
    let rec drain pop =
      match pop ~fits with
      | Some r ->
        Lane_manager.admit lm ~now:!now r;
        drain pop
      | None -> ()
    in
    match config.policy with
    | Fifo -> drain (Request_queue.pop_fifo queue)
    | Shortest_first -> drain (Request_queue.pop_shortest queue)
    | Synchronous ->
      if Lane_manager.in_flight lm = 0 then drain (Request_queue.pop_fifo queue)
  in
  (* Move every request whose arrival time has passed into the bounded
     queue, one at a time with a refill in between — so a free lane is
     taken by an earlier arrival before a later one can shed it from a
     full queue. Requests wider than the whole device can never be
     admitted and are rejected up front. *)
  let rec admit_due () =
    match !pending with
    | r :: rest when r.Request.arrival <= !now ->
      pending := rest;
      if r.Request.program.Autobatch.stack != program.Autobatch.stack then
        invalid_arg
          (Printf.sprintf
             "Server.run: request %d was compiled from a different program"
             r.Request.id)
      else begin
        if Request.width r > config.lanes then rejected := r :: !rejected
        else begin
          (match Request_queue.offer queue r with
          | `Admitted -> ()
          | `Shed s -> shed := s :: !shed);
          refill ()
        end;
        admit_due ()
      end
    | _ -> ()
  in
  let elapsed () = match engine with Some e -> Engine.elapsed e | None -> 0. in
  (* With an engine, the server clock is its simulated time: advance by
     whatever has accrued since the last sync (block execution, refill
     and retire transfers alike). *)
  let last_elapsed = ref (elapsed ()) in
  let sync_clock () =
    let e = elapsed () in
    now := !now +. (e -. !last_elapsed);
    last_elapsed := e
  in
  let complete cs =
    List.iter
      (fun (c : Lane_manager.completion) ->
        let r =
          {
            request = c.Lane_manager.request;
            outputs = c.Lane_manager.outputs;
            queued = c.Lane_manager.request.Request.arrival;
            started = c.Lane_manager.started;
            finished = c.Lane_manager.finished;
          }
        in
        completions := r :: !completions;
        match on_complete with
        | None -> ()
        | Some f -> (
          match f r with
          | None -> ()
          | Some next ->
            let next =
              if next.Request.arrival >= !now then next
              else { next with Request.arrival = !now }
            in
            pending := insert_sorted next !pending))
      cs
  in
  let running = ref true in
  while !running do
    admit_due ();
    refill ();
    if Lane_manager.live_lanes lm > 0 then begin
      ignore (Lane_manager.step lm);
      (match engine with
      | Some _ -> sync_clock ()
      | None -> now := !now +. 1.0);
      complete (Lane_manager.poll lm ~now:!now)
    end
    else if Lane_manager.in_flight lm > 0 then
      (* every occupied lane has halted but the groups are still loaded *)
      complete (Lane_manager.poll lm ~now:!now)
    else
      match !pending with
      | r :: _ ->
        (* nothing runnable: jump the clock to the next arrival *)
        now := Float.max !now r.Request.arrival;
        incr idle_steps
      | [] -> running := false
  done;
  sync_clock ();
  {
    completions = List.rev !completions;
    shed = List.rev !shed;
    rejected = List.rev !rejected;
    steps = Lane_manager.steps lm;
    idle_steps = !idle_steps;
    makespan = !now;
    mean_occupancy = Instrument.mean_occupancy ins;
    occupancy = Instrument.occupancy_series ins;
    instrument = ins;
  }
