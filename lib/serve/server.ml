type policy = Fifo | Shortest_first | Synchronous

let policy_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest"
  | Synchronous -> "synchronous"

type config = {
  lanes : int;
  policy : policy;
  queue_depth : int;
  shed : Request_queue.shed_policy;
  vm : Pc_vm.config;
}

let default_config =
  {
    lanes = 8;
    policy = Fifo;
    queue_depth = 64;
    shed = Request_queue.Reject_new;
    vm = Pc_vm.default_config;
  }

type record = {
  request : Request.t;
  outputs : Tensor.t list;
  queued : float;
  started : float;
  finished : float;
}

let queueing_latency r = r.started -. r.queued
let service_latency r = r.finished -. r.started
let total_latency r = r.finished -. r.queued

type stats = {
  completions : record list;
  shed : Request.t list;
  rejected : Request.t list;
  steps : int;
  idle_steps : int;
  makespan : float;
  mean_occupancy : float;
  occupancy : (int * float) list;
  instrument : Instrument.t;
}

let compare_arrival a b =
  let c = compare a.Request.arrival b.Request.arrival in
  if c <> 0 then c else compare a.Request.id b.Request.id

let rec insert_sorted r = function
  | [] -> [ r ]
  | x :: rest ->
    if compare_arrival r x < 0 then r :: x :: rest
    else x :: insert_sorted r rest

(* The server's complete mutable state, stepped one superstep at a time
   so a resilience layer can checkpoint between supersteps and a driver
   can interleave other work. [run] below is the classic run-to-drain
   entry point, a thin loop over [step]. *)
type t = {
  config : config;
  program : Autobatch.compiled;
  on_complete : (record -> Request.t option) option;
  ins : Instrument.t;
  engine : Engine.t option;
  lm : Lane_manager.t;
  queue : Request_queue.t;
  mutable now : float;
  mutable pending : Request.t list;    (* arrival order *)
  mutable shed : Request.t list;       (* newest first *)
  mutable rejected : Request.t list;   (* newest first *)
  mutable completions : record list;   (* newest first *)
  mutable idle_steps : int;
  mutable last_elapsed : float;
}

let create ?(config = default_config) ?on_complete ~program arrivals =
  let vm_config =
    match config.vm.Pc_vm.instrument with
    | Some _ -> config.vm
    | None -> { config.vm with Pc_vm.instrument = Some (Instrument.create ()) }
  in
  let ins =
    match vm_config.Pc_vm.instrument with Some i -> i | None -> assert false
  in
  let engine = vm_config.Pc_vm.engine in
  let elapsed0 = match engine with Some e -> Engine.elapsed e | None -> 0. in
  {
    config;
    program;
    on_complete;
    ins;
    engine;
    lm = Lane_manager.create ~config:vm_config ~program ~lanes:config.lanes ();
    queue = Request_queue.create ~depth:config.queue_depth ~shed:config.shed ();
    now = 0.;
    pending = List.stable_sort compare_arrival arrivals;
    shed = [];
    rejected = [];
    completions = [];
    idle_steps = 0;
    last_elapsed = elapsed0;
  }

let now t = t.now

(* Request lifecycle events go to the VM config's sink: the one seam
   serves both the lane VM (Step events) and the server (request spans). *)
let emit t ev =
  match t.config.vm.Pc_vm.sink with None -> () | Some sink -> sink ev

(* Admission: continuous policies refill free lanes the moment they open
   (mid-run); the synchronous baseline waits for the whole batch to drain
   before admitting again — the paper's fixed-batch regime. *)
let refill t =
  let fits r = Lane_manager.fits t.lm r in
  let rec drain pop =
    match pop ~fits with
    | Some r ->
      Lane_manager.admit t.lm ~now:t.now r;
      drain pop
    | None -> ()
  in
  match t.config.policy with
  | Fifo -> drain (Request_queue.pop_fifo t.queue)
  | Shortest_first -> drain (Request_queue.pop_shortest t.queue)
  | Synchronous ->
    if Lane_manager.in_flight t.lm = 0 then drain (Request_queue.pop_fifo t.queue)

(* Move every request whose arrival time has passed into the bounded
   queue, one at a time with a refill in between — so a free lane is
   taken by an earlier arrival before a later one can shed it from a
   full queue. Requests wider than the whole device can never be
   admitted and are rejected up front. *)
let rec admit_due t =
  match t.pending with
  | r :: rest when r.Request.arrival <= t.now ->
    t.pending <- rest;
    if r.Request.program.Autobatch.stack != t.program.Autobatch.stack then
      invalid_arg
        (Printf.sprintf "Server.run: request %d was compiled from a different program"
           r.Request.id)
    else begin
      if Request.width r > t.config.lanes then begin
        t.rejected <- r :: t.rejected;
        emit t (Obs_sink.Request_rejected { id = r.Request.id; at = t.now })
      end
      else begin
        emit t (Obs_sink.Request_enqueued { id = r.Request.id; at = t.now });
        (match Request_queue.offer t.queue r with
        | `Admitted -> ()
        | `Shed s ->
          t.shed <- s :: t.shed;
          emit t (Obs_sink.Request_shed { id = s.Request.id; at = t.now }));
        refill t
      end;
      admit_due t
    end
  | _ -> ()

let elapsed t = match t.engine with Some e -> Engine.elapsed e | None -> 0.

(* With an engine, the server clock is its simulated time: advance by
   whatever has accrued since the last sync (block execution, refill
   and retire transfers alike). *)
let sync_clock t =
  let e = elapsed t in
  t.now <- t.now +. (e -. t.last_elapsed);
  t.last_elapsed <- e

let complete t cs =
  List.iter
    (fun (c : Lane_manager.completion) ->
      let r =
        {
          request = c.Lane_manager.request;
          outputs = c.Lane_manager.outputs;
          queued = c.Lane_manager.request.Request.arrival;
          started = c.Lane_manager.started;
          finished = c.Lane_manager.finished;
        }
      in
      t.completions <- r :: t.completions;
      emit t
        (Obs_sink.Request_completed
           {
             id = r.request.Request.id;
             queued = r.queued;
             started = r.started;
             finished = r.finished;
           });
      match t.on_complete with
      | None -> ()
      | Some f -> (
        match f r with
        | None -> ()
        | Some next ->
          let next =
            if next.Request.arrival >= t.now then next
            else { next with Request.arrival = t.now }
          in
          t.pending <- insert_sorted next t.pending))
    cs

let step t =
  admit_due t;
  refill t;
  if Lane_manager.live_lanes t.lm > 0 then begin
    ignore (Lane_manager.step t.lm);
    (match t.engine with
    | Some _ -> sync_clock t
    | None -> t.now <- t.now +. 1.0);
    complete t (Lane_manager.poll t.lm ~now:t.now);
    true
  end
  else if Lane_manager.in_flight t.lm > 0 then begin
    (* every occupied lane has halted but the groups are still loaded *)
    complete t (Lane_manager.poll t.lm ~now:t.now);
    true
  end
  else
    match t.pending with
    | r :: _ ->
      (* nothing runnable: jump the clock to the next arrival *)
      t.now <- Float.max t.now r.Request.arrival;
      t.idle_steps <- t.idle_steps + 1;
      true
    | [] -> false

let stats t =
  sync_clock t;
  {
    completions = List.rev t.completions;
    shed = List.rev t.shed;
    rejected = List.rev t.rejected;
    steps = Lane_manager.steps t.lm;
    idle_steps = t.idle_steps;
    makespan = t.now;
    mean_occupancy = Instrument.mean_occupancy t.ins;
    occupancy = Instrument.occupancy_series t.ins;
    instrument = t.ins;
  }

let run ?config ?on_complete ~program arrivals =
  let t = create ?config ?on_complete ~program arrivals in
  while step t do
    ()
  done;
  stats t

type completion_image = {
  ci_request : Request.image;
  ci_outputs : (Shape.t * float array) list;
  ci_queued : float;
  ci_started : float;
  ci_finished : float;
}

type image = {
  si_now : float;
  si_last_elapsed : float;
  si_idle_steps : int;
  si_pending : Request.image list;
  si_queue : Request.image list;
  si_queue_shed_total : int;
  si_shed : Request.image list;
  si_rejected : Request.image list;
  si_completions : completion_image list;
  si_lm : Lane_manager.image;
  si_engine : Engine.snapshot option;
  si_instrument : Instrument.image;
}

let tensor_images = List.map (fun x -> (Array.copy (Tensor.shape x), Array.copy (Tensor.data x)))

let capture t =
  {
    si_now = t.now;
    si_last_elapsed = t.last_elapsed;
    si_idle_steps = t.idle_steps;
    si_pending = List.map Request.to_image t.pending;
    si_queue = List.map Request.to_image (Request_queue.to_list t.queue);
    si_queue_shed_total = Request_queue.shed_total t.queue;
    si_shed = List.map Request.to_image t.shed;
    si_rejected = List.map Request.to_image t.rejected;
    si_completions =
      List.map
        (fun r ->
          {
            ci_request = Request.to_image r.request;
            ci_outputs = tensor_images r.outputs;
            ci_queued = r.queued;
            ci_started = r.started;
            ci_finished = r.finished;
          })
        t.completions;
    si_lm = Lane_manager.capture t.lm;
    si_engine = Option.map Engine.snapshot t.engine;
    si_instrument = Instrument.capture t.ins;
  }

let restore t img =
  (match (t.engine, img.si_engine) with
  | Some e, Some s -> Engine.restore e s
  | None, None -> ()
  | Some _, None | None, Some _ ->
    invalid_arg "Server.restore: image disagrees with the server about an engine");
  let of_image = Request.of_image ~program:t.program in
  t.now <- img.si_now;
  t.last_elapsed <- img.si_last_elapsed;
  t.idle_steps <- img.si_idle_steps;
  t.pending <- List.map of_image img.si_pending;
  Request_queue.set_state t.queue
    ~items:(List.map of_image img.si_queue)
    ~shed_total:img.si_queue_shed_total;
  t.shed <- List.map of_image img.si_shed;
  t.rejected <- List.map of_image img.si_rejected;
  t.completions <-
    List.map
      (fun ci ->
        {
          request = of_image ci.ci_request;
          outputs = List.map (fun (shape, data) -> Tensor.of_array shape data) ci.ci_outputs;
          queued = ci.ci_queued;
          started = ci.ci_started;
          finished = ci.ci_finished;
        })
      img.si_completions;
  Lane_manager.restore t.lm ~program:t.program img.si_lm;
  Instrument.restore t.ins img.si_instrument
