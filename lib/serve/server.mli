(** Continuous-batching request server.

    Drives one {!Lane_manager} pool through the program-counter VM's
    superstep loop, streaming requests through recyclable lanes: each
    superstep admits every due arrival into a bounded {!Request_queue},
    refills freed lanes per the admission policy, executes one scheduled
    block across all live lanes, and retires any request whose lanes have
    halted — freeing them for the next refill {e mid-run}, instead of
    waiting for the whole batch to drain (the fixed-batch regime of the
    paper's Figure 6, kept here as the [Synchronous] baseline).

    The server clock advances by the engine's simulated elapsed time per
    superstep when the VM config carries an engine, else by 1.0 per
    superstep; idle periods jump straight to the next arrival. *)

type policy =
  | Fifo  (** strict arrival order; a wide head blocks the line *)
  | Shortest_first  (** admissible request with the smallest cost hint *)
  | Synchronous
      (** fixed-batch baseline: refill only once every lane has drained *)

val policy_name : policy -> string

type config = {
  lanes : int;
  policy : policy;
  queue_depth : int;
  shed : Request_queue.shed_policy;
  vm : Pc_vm.config;
      (** engine/instrument/sched for the lane pool; an instrument is
          created if absent so occupancy is always recorded (the lane
          pool's per-superstep [Occupancy] events feed it via
          [Instrument.observe_occupancy] — the occupancy stats below and
          any profiler sink read the same event stream). The VM config's
          [sink] is shared with the server itself: besides the lane
          pool's [Step]/[Occupancy] events, it receives the request
          lifecycle —
          [Request_enqueued]/[Request_shed]/[Request_rejected] instants
          and one [Request_completed] span per served request, all on the
          server clock. *)
}

val default_config : config
(** 8 lanes, [Fifo], queue depth 64, [Reject_new], {!Pc_vm.default_config}. *)

type record = {
  request : Request.t;
  outputs : Tensor.t list;  (** leading width dim, as [run_pc] returns *)
  queued : float;  (** arrival time *)
  started : float;  (** lanes assigned *)
  finished : float;  (** all lanes halted, outputs retired *)
}

val queueing_latency : record -> float
val service_latency : record -> float
val total_latency : record -> float

type stats = {
  completions : record list;  (** completion order *)
  shed : Request.t list;  (** victims of queue backpressure *)
  rejected : Request.t list;  (** wider than the whole device *)
  steps : int;  (** supersteps executed *)
  idle_steps : int;  (** clock jumps with no runnable lane *)
  makespan : float;  (** server clock at completion of the last request *)
  mean_occupancy : float;  (** mean live-lane fraction over all supersteps *)
  occupancy : (int * float) list;  (** downsampled time series *)
  instrument : Instrument.t;
}

val run :
  ?config:config ->
  ?on_complete:(record -> Request.t option) ->
  program:Autobatch.compiled ->
  Request.t list ->
  stats
(** Serve the given arrival trace to completion. [on_complete] may inject
    a follow-up request per completion (closed-loop load generation); its
    arrival is clamped to the current clock. Raises [Invalid_argument] if
    a request was compiled from a different program. Equivalent to
    {!create} followed by {!step} until it returns [false], then
    {!stats}. *)

(** {1 Steppable interface}

    The server's whole state behind one superstep-at-a-time handle, so a
    resilience layer can checkpoint between supersteps ({!capture} /
    {!restore}) and a driver can interleave other work. *)

type t

val create :
  ?config:config ->
  ?on_complete:(record -> Request.t option) ->
  program:Autobatch.compiled ->
  Request.t list ->
  t

val step : t -> bool
(** One server superstep: admit due arrivals, refill freed lanes, execute
    one scheduled block over the live lanes (or poll loaded-but-halted
    groups, or jump the clock to the next arrival). [false] when the trace
    is fully drained. *)

val stats : t -> stats
(** The run's statistics so far (final once {!step} returns [false]).
    Idempotent. *)

val now : t -> float
(** The server clock: simulated seconds when the VM config has an engine,
    supersteps otherwise. The natural [clock] for an [Obs.Trace.sink]
    wired into [config.vm]. *)

(** Plain-data checkpoint of one completion. *)
type completion_image = {
  ci_request : Request.image;
  ci_outputs : (Shape.t * float array) list;
  ci_queued : float;
  ci_started : float;
  ci_finished : float;
}

(** Plain-data checkpoint of the server's complete state: clock, pending
    trace (including requests injected by [on_complete]), bounded queue,
    shed/rejected/completed records, the lane pool, and the engine and
    instrument snapshots. Request/record lists are in internal (newest
    first) order except [si_pending] and [si_queue], which are oldest
    first. *)
type image = {
  si_now : float;
  si_last_elapsed : float;
  si_idle_steps : int;
  si_pending : Request.image list;
  si_queue : Request.image list;
  si_queue_shed_total : int;
  si_shed : Request.image list;
  si_rejected : Request.image list;
  si_completions : completion_image list;
  si_lm : Lane_manager.image;
  si_engine : Engine.snapshot option;
  si_instrument : Instrument.image;
}

val capture : t -> image

val restore : t -> image -> unit
(** Overwrite the server's state with the image. Restore into a server
    built by {!create} with the same configuration, program, and
    [on_complete] (the callback is construction, not state — it must be
    deterministic for replay to be). Raises [Invalid_argument] if the
    image and server disagree about having an engine. *)
