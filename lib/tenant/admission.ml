type item = { tenant : Tenant.t; request : Request.t; digest : int64 }

let item_slo it = it.tenant.Tenant.slo
let item_rank it = Tenant.rank (item_slo it)

type level = Normal | Shed_best_effort | Cap_width | Reject_new

let level_of_rung = function
  | 0 -> Normal
  | 1 -> Shed_best_effort
  | 2 -> Cap_width
  | _ -> Reject_new

let rung_of_level = function
  | Normal -> 0
  | Shed_best_effort -> 1
  | Cap_width -> 2
  | Reject_new -> 3

let level_name = function
  | Normal -> "normal"
  | Shed_best_effort -> "shed-best-effort"
  | Cap_width -> "cap-width"
  | Reject_new -> "reject-new"

type reason = Queue_full | Overloaded of level

let reason_name = function
  | Queue_full -> "queue-full"
  | Overloaded l -> "overloaded:" ^ level_name l

type mode = Fair | Fifo

type config = {
  mode : mode;
  depth : int;
  weights : int array;
  cap_width : int;
  high_water : float;
  low_water : float;
}

let default =
  {
    mode = Fair;
    depth = 64;
    weights = [| 6; 3; 1 |];
    cap_width = 1;
    high_water = 0.75;
    low_water = 0.5;
  }

let fifo ?depth () =
  let depth = match depth with Some d -> d | None -> Tenant.n_slos * default.depth in
  { default with mode = Fifo; depth }

let capacity config =
  match config.mode with
  | Fair -> Tenant.n_slos * config.depth
  | Fifo -> config.depth

(* A tiny mutable FIFO deque: [front] holds the head in order, [back]
   the tail reversed. *)
type dq = { mutable front : item list; mutable back : item list }

let dq_create () = { front = []; back = [] }
let dq_length d = List.length d.front + List.length d.back
let dq_is_empty d = d.front = [] && d.back = []

let dq_norm d =
  if d.front = [] then begin
    d.front <- List.rev d.back;
    d.back <- []
  end

let dq_push d it = d.back <- it :: d.back

let dq_push_front d it = d.front <- it :: d.front

let dq_peek d =
  dq_norm d;
  match d.front with [] -> None | it :: _ -> Some it

let dq_pop d =
  dq_norm d;
  match d.front with
  | [] -> None
  | it :: rest ->
    d.front <- rest;
    Some it

(* Remove the first (oldest) element satisfying [pred]. Queues are
   bounded by [depth], so the full normalization is cheap. *)
let dq_pop_first d pred =
  d.front <- d.front @ List.rev d.back;
  d.back <- [];
  let rec split acc = function
    | [] -> None
    | x :: tl ->
      if pred x then begin
        d.front <- List.rev_append acc tl;
        Some x
      end
      else split (x :: acc) tl
  in
  split [] d.front

let dq_exists d pred = List.exists pred d.front || List.exists pred d.back

type t = {
  config : config;
  queues : dq array;  (* indexed by Tenant.rank; Fifo uses index 0 only *)
  credits : int array;
  mutable rung : int;
  mutable floor : int;  (* SLO-driven minimum rung; effective = max *)
  notify :
    (old_level:level -> new_level:level -> occupancy:float -> cause:string -> unit)
    option;
}

let create ?(config = default) ?on_transition () =
  if config.depth <= 0 then invalid_arg "Admission.create: depth must be positive";
  if Array.length config.weights <> Tenant.n_slos then
    invalid_arg "Admission.create: weights must cover every SLO class";
  Array.iter
    (fun w -> if w <= 0 then invalid_arg "Admission.create: weights must be positive")
    config.weights;
  if not (config.low_water < config.high_water) then
    invalid_arg "Admission.create: low_water must sit below high_water";
  {
    config;
    queues = Array.init Tenant.n_slos (fun _ -> dq_create ());
    credits = Array.make Tenant.n_slos 0;
    rung = 0;
    floor = 0;
    notify = on_transition;
  }

let effective_rung t = max t.rung t.floor
let level t = level_of_rung (effective_rung t)

let length t = Array.fold_left (fun acc d -> acc + dq_length d) 0 t.queues

let occupancy t = float_of_int (length t) /. float_of_int (capacity t.config)

(* Every mutation of rung or floor funnels through here so the
   transition callback sees exactly the *effective* level edges — a rung
   change masked by a higher floor is not a transition. *)
let with_notify t ~cause f =
  match t.notify with
  | None -> f ()
  | Some notify ->
    let before = effective_rung t in
    f ();
    let after = effective_rung t in
    if after <> before then
      notify ~old_level:(level_of_rung before) ~new_level:(level_of_rung after)
        ~occupancy:(occupancy t) ~cause

let class_length t slo =
  match t.config.mode with
  | Fifo ->
    (* The baseline is class-blind; count by inspection. *)
    let count l = List.length (List.filter (fun it -> item_slo it = slo) l) in
    count t.queues.(0).front + count t.queues.(0).back
  | Fair -> dq_length t.queues.(Tenant.rank slo)

(* The degradation ladder: rung r engages when occupancy crosses
   [high_water + (r-1)/3 · (1 - high_water)] and releases when it falls
   back below the same threshold shifted down by the hysteresis band
   [high_water - low_water]. *)
let up_threshold config r =
  config.high_water
  +. (float_of_int (r - 1) /. 3. *. (1. -. config.high_water))

let down_threshold config r =
  up_threshold config r -. (config.high_water -. config.low_water)

let update_ladder t =
  if t.config.mode = Fair then
    with_notify t ~cause:"occupancy" (fun () ->
        let occ = occupancy t in
        let desired = ref 0 in
        for r = 1 to 3 do
          if occ >= up_threshold t.config r then desired := r
        done;
        if !desired > t.rung then t.rung <- !desired
        else
          while t.rung > 0 && occ < down_threshold t.config t.rung do
            t.rung <- t.rung - 1
          done)

let set_floor t lvl =
  if t.config.mode = Fair then
    with_notify t ~cause:"slo-floor" (fun () -> t.floor <- rung_of_level lvl)

let floor_level t = level_of_rung t.floor

(* The weakest (highest-rank) non-empty class; shedding victimizes it. *)
let weakest_nonempty t =
  let found = ref None in
  for r = Tenant.n_slos - 1 downto 0 do
    match !found with
    | Some _ -> ()
    | None -> if not (dq_is_empty t.queues.(r)) then found := Some r
  done;
  !found

let offer_fair t it =
  update_ladder t;
  let rank = item_rank it in
  let refused =
    match level t with
    | Reject_new -> Some (Overloaded Reject_new)
    | Cap_width ->
      if rank = Tenant.rank Tenant.Best_effort then
        Some (Overloaded Shed_best_effort)
      else if Request.width it.request > t.config.cap_width then
        Some (Overloaded Cap_width)
      else None
    | Shed_best_effort ->
      if rank = Tenant.rank Tenant.Best_effort then
        Some (Overloaded Shed_best_effort)
      else None
    | Normal -> None
  in
  match refused with
  | Some r -> `Rejected r
  | None ->
    if length t < capacity t.config then begin
      dq_push t.queues.(rank) it;
      update_ladder t;
      `Admitted
    end
    else begin
      match weakest_nonempty t with
      | Some victim_rank when victim_rank >= rank ->
        (* Drop the oldest of the weakest class — never a class strictly
           stronger than the offer — and take its slot. *)
        let victim =
          match dq_pop t.queues.(victim_rank) with
          | Some v -> v
          | None -> assert false
        in
        dq_push t.queues.(rank) it;
        `Shed victim
      | _ ->
        (* Everything queued outranks the offer: the offer is the
           victim. *)
        `Shed it
    end

let offer_fifo t it =
  if dq_length t.queues.(0) < t.config.depth then begin
    dq_push t.queues.(0) it;
    `Admitted
  end
  else `Rejected Queue_full

let offer t it =
  match t.config.mode with Fair -> offer_fair t it | Fifo -> offer_fifo t it

let top_up_credits t =
  (* A new dispatch round: every backlogged class earns its weight. *)
  let any = ref false in
  for r = 0 to Tenant.n_slos - 1 do
    if (not (dq_is_empty t.queues.(r))) && t.credits.(r) > 0 then any := true
  done;
  if not !any then
    for r = 0 to Tenant.n_slos - 1 do
      if not (dq_is_empty t.queues.(r)) then
        t.credits.(r) <- t.credits.(r) + t.config.weights.(r)
    done

let pop_fair t ~fits =
  if length t = 0 then None
  else begin
    let try_dispatch () =
      let result = ref None in
      let r = ref 0 in
      while !result = None && !r < Tenant.n_slos do
        let rank = !r in
        (if t.credits.(rank) > 0 then
           (* Oldest fitting item of the class, not just the head: the
              server pops by program digest, and a non-fitting head must
              not wedge fitting work queued behind it. Arrival order per
              digest is preserved, so replay stays deterministic. *)
           match dq_pop_first t.queues.(rank) fits with
           | Some it ->
             t.credits.(rank) <- t.credits.(rank) - 1;
             result := Some it
           | None -> ());
        incr r
      done;
      !result
    in
    top_up_credits t;
    let result =
      match try_dispatch () with
      | Some it -> Some it
      | None ->
        (* Nothing with credit fit. A fitting class whose credit ran dry
           must not starve behind non-fitting classes that hold credit:
           reset the round and retry once. *)
        let fits_somewhere = Array.exists (fun q -> dq_exists q fits) t.queues in
        if fits_somewhere then begin
          Array.fill t.credits 0 Tenant.n_slos 0;
          top_up_credits t;
          try_dispatch ()
        end
        else None
    in
    update_ladder t;
    result
  end

let pop_fifo t ~fits =
  (* Strict arrival order across every class — SLO-blind — skipping only
     items that cannot be placed right now (wrong program, too wide).
     The skip keeps a multi-program queue live; the blindness is the
     baseline's pathology. *)
  dq_pop_first t.queues.(0) fits

let pop t ~fits =
  match t.config.mode with Fair -> pop_fair t ~fits | Fifo -> pop_fifo t ~fits

let push_front t it =
  match t.config.mode with
  | Fifo -> dq_push_front t.queues.(0) it
  | Fair ->
    dq_push_front t.queues.(item_rank it) it;
    update_ladder t

let peek_strongest_waiting t =
  match t.config.mode with
  | Fifo -> dq_peek t.queues.(0)
  | Fair ->
    let found = ref None in
    for r = Tenant.n_slos - 1 downto 0 do
      match dq_peek t.queues.(r) with
      | Some it -> found := Some it
      | None -> ()
    done;
    !found

let iter t f =
  Array.iter
    (fun q ->
      List.iter f q.front;
      List.iter f (List.rev q.back))
    t.queues

let requeue_order items =
  List.sort
    (fun a b ->
      match compare a.request.Request.arrival b.request.Request.arrival with
      | 0 -> compare a.request.Request.id b.request.Request.id
      | c -> c)
    items
