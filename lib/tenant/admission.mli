(** SLO-aware admission: per-class bounded queues, weighted-fair
    dispatch, and a graceful-degradation ladder.

    This replaces the single global {!Request_queue} policy for
    multi-tenant traffic. Each {!Tenant.slo} class has its own bounded
    FIFO; dispatch is deficit-weighted fair across the classes (so
    best-effort work still drains under load, at its configured share);
    shedding under pressure always victimizes the *weakest* queued class
    first — the invariant the property tests pin down is that drop-oldest
    never drops a request while a strictly weaker one is queued.

    Everything here is pure bookkeeping over the simulated clock: no
    randomness, no wall time. The same offer/pop sequence replays
    identically under any [--seed], because the seed only shapes the
    trace upstream. *)

type item = {
  tenant : Tenant.t;
  request : Request.t;
  digest : int64;  (** {!Prog_cache} identity of the request's program *)
}

val item_slo : item -> Tenant.slo
val item_rank : item -> int

(** The degradation ladder, mildest first. Each level keeps everything
    the previous level rejected and adds one more refusal. *)
type level =
  | Normal
  | Shed_best_effort  (** new best-effort arrivals are refused *)
  | Cap_width         (** … and arrivals wider than [cap_width] lanes *)
  | Reject_new        (** … and everything else *)

val level_name : level -> string

type reason =
  | Queue_full   (** the class queue was full and the offer was weakest *)
  | Overloaded of level  (** refused by the ladder at this level *)

val reason_name : reason -> string

(** [Fair] is the tenant stack: per-class queues, weighted-fair pop,
    rung-by-rung degradation. [Fifo] is the no-admission baseline arm:
    one arrival-ordered queue, head-only pop, SLO-blind, with only
    reject-new when full — what a single global {!Request_queue} would
    do. *)
type mode = Fair | Fifo

type config = {
  mode : mode;
  depth : int;
      (** per-class nominal share of the buffer. The classes share one
          buffer of [3 * depth] slots ([Fifo]: a single queue of [depth]
          slots), so a strong class can borrow a weak class's share
          under pressure — the shed-victim rule is what keeps the
          borrowing honest. *)
  weights : int array;  (** dispatch share per {!Tenant.rank}; length 3 *)
  cap_width : int;      (** max request width admitted at [Cap_width] *)
  high_water : float;
      (** ladder climbs one rung when total occupancy (queued / total
          capacity) reaches this fraction … *)
  low_water : float;
      (** … and descends one rung when it falls back below this (strictly
          lower) fraction — the hysteresis band that keeps the ladder
          from flapping. *)
}

val default : config
(** [Fair], depth 64 per class, weights [|6; 3; 1|], cap_width 1,
    high_water 0.75, low_water 0.5. *)

val fifo : ?depth:int -> unit -> config
(** The baseline arm; [depth] defaults to [3 * default.depth] so both
    arms hold the same total backlog. The ladder never engages. *)

val capacity : config -> int
(** Total buffered slots: [3 * depth] in [Fair] mode, [depth] in
    [Fifo]. *)

type t

val create :
  ?config:config ->
  ?on_transition:
    (old_level:level -> new_level:level -> occupancy:float -> cause:string -> unit) ->
  unit ->
  t
(** [on_transition] fires whenever the {e effective} level (the max of
    the occupancy rung and the SLO floor) changes, with the occupancy at
    the transition and the cause — ["occupancy"] for ladder moves,
    ["slo-floor"] for {!set_floor}. A rung move masked by a higher floor
    is not a transition. The callback runs inside queue operations:
    it must not call back into this [t]. *)

val level : t -> level
(** The effective level: the occupancy rung or the SLO floor, whichever
    is more protective. *)

val set_floor : t -> level -> unit
(** Pin the ladder at or above a level regardless of occupancy — the
    burn-rate monitor's lever: a firing latency SLO holds the ladder at
    [Shed_best_effort] even while the queue looks healthy, and resolving
    releases it ([set_floor t Normal]). No-op in [Fifo] mode (the
    baseline has no ladder). *)

val floor_level : t -> level
(** The current floor (not the effective level). *)

val occupancy : t -> float
(** Queued / total capacity, the quantity the ladder thresholds read. *)

val length : t -> int
val class_length : t -> Tenant.slo -> int

val offer : t -> item -> [ `Admitted | `Shed of item | `Rejected of reason ]
(** Queue the item, advancing the ladder first. [`Shed victim] means the
    item was admitted by dropping [victim], the oldest item of the
    weakest non-empty class — never a class strictly stronger than the
    offer's; if the offer itself is weakest, the victim is the offer.
    [`Rejected] refuses the offer without touching the queues. *)

val pop : t -> fits:(item -> bool) -> item option
(** Dispatch one item. [Fair]: deficit-weighted round-robin over the
    classes — each class accumulates [weights.(rank)] credit per round
    and the strongest positive-credit class dispatches its oldest item
    passing [fits] (a non-fitting item never wedges fitting work queued
    behind it; arrival order per program is preserved, so replay is
    deterministic). [Fifo]: the oldest fitting item in strict arrival
    order across all classes — SLO-blind, which is the baseline's
    defining pathology. *)

val push_front : t -> item -> unit
(** Re-queue an item at the head of its class (recovery replays admitted
    work after a device kill; does not move the ladder). *)

val peek_strongest_waiting : t -> item option
(** The head of the strongest non-empty class (preemption looks here). *)

val iter : t -> (item -> unit) -> unit
(** Every queued item, strongest class first, FIFO within class (the
    server's demand-binding scans this for needy digests). *)

val requeue_order : item list -> item list
(** Sort a batch of recovered items back into deterministic re-admission
    order: by arrival, then request id. *)
