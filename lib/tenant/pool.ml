type config = {
  min_shards : int;
  max_shards : int;
  grow_backlog : float;
  shrink_util : float;
  cooldown : int;
}

let default =
  {
    min_shards = 1;
    max_shards = max_int;
    grow_backlog = 1.0;
    shrink_util = 0.25;
    cooldown = 8;
  }

type signals = {
  backlog : int;
  active : int;
  draining : int;
  lanes_per_shard : int;
  live_lanes : int;
}

type action = Grow | Shrink | Hold

let action_name = function Grow -> "grow" | Shrink -> "shrink" | Hold -> "hold"

let decide config ~rounds_since_action s =
  if rounds_since_action < config.cooldown then Hold
  else begin
    let active_lanes = s.active * s.lanes_per_shard in
    let backlog_per_lane =
      if active_lanes = 0 then
        (* No capacity at all: any backlog is infinite pressure. *)
        if s.backlog > 0 then infinity else 0.
      else float_of_int s.backlog /. float_of_int active_lanes
    in
    let util =
      if active_lanes = 0 then 0.
      else float_of_int s.live_lanes /. float_of_int active_lanes
    in
    if backlog_per_lane > config.grow_backlog && s.active + s.draining < config.max_shards
    then Grow
    else if
      s.active - 1 >= config.min_shards
      && s.draining = 0
      && util < config.shrink_util
      && backlog_per_lane <= config.grow_backlog
      (* Shrinking must not bounce: the survivors must absorb the live
         work without re-triggering growth next round. *)
      && (s.active - 1) * s.lanes_per_shard >= s.live_lanes + s.backlog
    then Shrink
    else Hold
  end
