(** The pure autoscaling controller for the shard pool.

    The tenant server runs up to [Mesh.size] shards; the controller
    looks at backlog and utilization each planning round and decides
    whether to activate an idle shard, drain one for shrink, or hold.
    It is pure data-in/data-out — the server applies the decision,
    paying the real costs (binding a pool, migrating lanes off a
    draining shard through the {!Sched_plan} seam) — so scaling
    behavior is unit-testable without a mesh.

    Signals are taken *after* retirement and *before* refill, so
    [backlog] counts work that genuinely could not start this round. *)

type config = {
  min_shards : int;   (** never drain below this many active shards *)
  max_shards : int;   (** never activate more than this many *)
  grow_backlog : float;
      (** grow when queued-work-per-active-lane exceeds this *)
  shrink_util : float;
      (** shrink when live-lane utilization falls below this {e and}
          the backlog would not immediately re-trigger growth *)
  cooldown : int;
      (** planning rounds between scaling actions — damping, so one
          burst does not slam the pool fleet-wide *)
}

val default : config
(** min 1, max unbounded (clamped to the mesh), grow at 1.0 queued per
    active lane, shrink below 0.25 utilization, cooldown 8. *)

type signals = {
  backlog : int;       (** queued + parked work items *)
  active : int;        (** bound, non-draining shards *)
  draining : int;      (** shards still draining from a prior shrink *)
  lanes_per_shard : int;
  live_lanes : int;    (** occupied lanes across active shards *)
}

type action = Grow | Shrink | Hold

val action_name : action -> string

val decide : config -> rounds_since_action:int -> signals -> action
(** Deterministic: [Grow] when under-provisioned and below [max_shards];
    [Shrink] when utilization is low, backlog is clear, and more than
    [min_shards] remain (counting shards already draining as gone);
    [Hold] otherwise, and always during cooldown. *)
