(* Structural hash-consing of Lang programs, in the style of Herbie's
   progs->batch: a post-order walk interns each node — (constructor tag,
   scalar/string payloads, child digests) — in a table, so every distinct
   structure is assigned exactly one 64-bit digest and repeated subtrees
   resolve through the table instead of being re-mixed. *)

type node = {
  tag : int;
  nums : int64 list;
  strs : string list;
  kids : int64 list;
}

let hash_string s =
  let h = ref (Int64.of_int (String.length s)) in
  String.iter
    (fun c -> h := Splitmix.hash2 !h (Int64.of_int (Char.code c)))
    s;
  !h

let node_digest n =
  Splitmix.hash_list
    ((Int64.of_int n.tag :: n.nums)
    @ List.map hash_string n.strs
    @ n.kids)

type interner = (node, int64) Hashtbl.t

let intern (tbl : interner) n =
  match Hashtbl.find_opt tbl n with
  | Some d -> d
  | None ->
    let d = node_digest n in
    Hashtbl.add tbl n d;
    d

let leaf tbl tag ?(nums = []) ?(strs = []) () =
  intern tbl { tag; nums; strs; kids = [] }

let rec munge_expr tbl (e : Lang.expr) =
  match e with
  | Lang.Var x -> leaf tbl 1 ~strs:[ x ] ()
  | Lang.Const v -> leaf tbl 2 ~nums:[ Int64.bits_of_float v ] ()
  | Lang.Vec a ->
    let nums = Array.to_list (Array.map Int64.bits_of_float a) in
    leaf tbl 3 ~nums ()
  | Lang.Prim (name, args) ->
    let kids = List.map (munge_expr tbl) args in
    intern tbl { tag = 4; nums = []; strs = [ name ]; kids }

let rec munge_stmt tbl (s : Lang.stmt) =
  match s with
  | Lang.Assign (x, e) ->
    intern tbl { tag = 10; nums = []; strs = [ x ]; kids = [ munge_expr tbl e ] }
  | Lang.Call_stmt (dsts, f, args) ->
    intern tbl
      { tag = 11; nums = []; strs = f :: dsts;
        kids = List.map (munge_expr tbl) args }
  | Lang.If (c, t, e) ->
    intern tbl
      { tag = 12; nums = []; strs = [];
        kids = [ munge_expr tbl c; munge_body tbl t; munge_body tbl e ] }
  | Lang.While (c, body) ->
    intern tbl
      { tag = 13; nums = []; strs = [];
        kids = [ munge_expr tbl c; munge_body tbl body ] }
  | Lang.Return es ->
    intern tbl { tag = 14; nums = []; strs = []; kids = List.map (munge_expr tbl) es }

and munge_body tbl stmts =
  intern tbl { tag = 20; nums = []; strs = []; kids = List.map (munge_stmt tbl) stmts }

let munge_func tbl (f : Lang.func) =
  intern tbl
    { tag = 30; nums = []; strs = f.Lang.fname :: f.Lang.params;
      kids = [ munge_body tbl f.Lang.body ] }

let digest_program (p : Lang.program) =
  let tbl : interner = Hashtbl.create 64 in
  intern tbl
    { tag = 31; nums = []; strs = [ p.Lang.main ];
      kids = List.map (munge_func tbl) p.Lang.funcs }

let digest ?input_shapes p =
  let base = digest_program p in
  match input_shapes with
  | None -> Splitmix.hash2 base 0x5eedL
  | Some shapes ->
    List.fold_left
      (fun acc (s : Shape.t) ->
        Array.fold_left
          (fun acc d -> Splitmix.hash2 acc (Int64.of_int d))
          (Splitmix.hash2 acc (Int64.of_int (Array.length s)))
          s)
      (Splitmix.hash2 base 0xcac4eL)
      shapes

(* ---------- the LRU of compiled programs ---------- *)

type entry = { compiled : Autobatch.compiled; mutable last_use : int }

type t = {
  capacity : int;
  registry : Prim.registry;
  entries : (int64, entry) Hashtbl.t;
  mutable tick : int;  (* bumps on every access; LRU = smallest tick *)
  c_hits : Obs_metrics.counter;
  c_misses : Obs_metrics.counter;
  c_evictions : Obs_metrics.counter;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
  sink : Obs_sink.t option;
  clock : unit -> float;
  mutable span_seq : int;
}

let create ?metrics ?registry ?sink ?(clock = fun () -> 0.) ~capacity () =
  if capacity < 0 then invalid_arg "Prog_cache.create: negative capacity";
  let m = match metrics with Some m -> m | None -> Obs_metrics.create ~enabled:false () in
  {
    capacity;
    registry = (match registry with Some r -> r | None -> Prim.standard ());
    entries = Hashtbl.create (Stdlib.max 16 capacity);
    tick = 0;
    c_hits = Obs_metrics.counter m "prog_cache_hits";
    c_misses = Obs_metrics.counter m "prog_cache_misses";
    c_evictions = Obs_metrics.counter m "prog_cache_evictions";
    n_hits = 0; n_misses = 0; n_evictions = 0;
    sink;
    clock;
    span_seq = 0;
  }

let length t = Hashtbl.length t.entries
let capacity t = t.capacity
let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions

let hit_rate t =
  let total = t.n_hits + t.n_misses in
  if total = 0 then nan else float_of_int t.n_hits /. float_of_int total

let touch t e =
  t.tick <- t.tick + 1;
  e.last_use <- t.tick

(* Cache-lifecycle instants live on the shared cache trace
   (Obs_span.cache_trace), outside any request's span tree. Charging no
   simulated cost, they are zero-width. *)
let emit_instant t name =
  match t.sink with
  | None -> ()
  | Some sink ->
    let span = t.span_seq in
    t.span_seq <- span + 1;
    let now = t.clock () in
    sink
      (Obs_sink.Span
         {
           trace = Obs_span.cache_trace;
           span;
           parent = Obs_span.no_parent;
           track = Obs_span.ops_track;
           name;
           t0 = now;
           t1 = now;
         })

let hit t e =
  touch t e;
  t.n_hits <- t.n_hits + 1;
  Obs_metrics.incr t.c_hits;
  emit_instant t "cache-hit"

let miss t =
  t.n_misses <- t.n_misses + 1;
  Obs_metrics.incr t.c_misses;
  emit_instant t "cache-miss"

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.last_use <= e.last_use -> acc
        | _ -> Some (key, e))
      t.entries None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
    Hashtbl.remove t.entries key;
    t.n_evictions <- t.n_evictions + 1;
    Obs_metrics.incr t.c_evictions

let insert t key compiled =
  if t.capacity > 0 then begin
    if Hashtbl.length t.entries >= t.capacity then evict_lru t;
    t.tick <- t.tick + 1;
    Hashtbl.add t.entries key { compiled; last_use = t.tick }
  end

let find t key =
  match Hashtbl.find_opt t.entries key with
  | Some e ->
    hit t e;
    Some e.compiled
  | None ->
    miss t;
    None

let find_or_compile t ?optimize ?fuse ?input_shapes program =
  let key = digest ?input_shapes program in
  match Hashtbl.find_opt t.entries key with
  | Some e ->
    hit t e;
    (e.compiled, `Hit)
  | None ->
    miss t;
    let compiled =
      Autobatch.compile ~registry:t.registry ?optimize ?fuse ?input_shapes
        program
    in
    emit_instant t "compile";
    insert t key compiled;
    (compiled, `Miss)
