(** Hash-consed program identity and an LRU of compiled programs.

    Serving traffic repeats programs: many tenants run the same model, and
    one tenant runs the same model many times. Compiling through
    {!Autobatch.compile} on every request would dominate serving cost, so
    the cache keys compiled artifacts on a *structural* 64-bit digest of
    the source {!Lang.program} (plus the input element shapes, which
    change what [compile] preallocates).

    The digest is hash-consed in the style of Herbie's [progs->batch]
    node dedup (SNIPPETS.md): a post-order walk interns every distinct
    expression/statement node — constructor tag, payloads, child digests
    — in a table, so each unique structure is mixed exactly once and
    repeated subtrees resolve through the table. Alpha-renamed programs
    hash differently by design — identity is the source text's
    structure, not semantics.

    Physical sharing matters beyond speed: {!Server} (and the tenant
    stack's shard pools) admit a request only if its compiled program is
    physically the pool's program, so handing every same-digest request
    the same [Autobatch.compiled] value is what makes multi-tenant
    traffic servable at all. *)

val digest_program : Lang.program -> int64
(** Structural digest of the program alone (no shapes). *)

val digest : ?input_shapes:Shape.t list -> Lang.program -> int64
(** The cache key: {!digest_program} combined with the input element
    shapes (their absence hashes differently from an empty list). *)

type t

val create :
  ?metrics:Obs_metrics.t -> ?registry:Prim.registry -> ?sink:Obs_sink.t ->
  ?clock:(unit -> float) -> capacity:int -> unit -> t
(** An empty cache holding at most [capacity] compiled programs
    (capacity 0 disables caching: every lookup compiles and nothing is
    retained). All compilations share [registry] (default
    [Prim.standard ()]), so same-digest requests share RNG seeding and
    primitive identity. Hit/miss/evict counters are registered in
    [metrics] as ["prog_cache_hits"], ["prog_cache_misses"],
    ["prog_cache_evictions"]. With a [sink], every lookup additionally
    emits a zero-width [Obs_sink.Span] instant (["cache-hit"],
    ["cache-miss"], ["compile"]) on {!Obs_span.cache_trace}, stamped
    from [clock] (the owner's simulated clock; defaults to a constant
    0). *)

val find_or_compile :
  t -> ?optimize:bool -> ?fuse:Fuse.options -> ?input_shapes:Shape.t list ->
  Lang.program -> Autobatch.compiled * [ `Hit | `Miss ]
(** Return the cached artifact for the program's digest, or compile,
    insert (evicting the least-recently-used entry when full) and return
    it. Every same-digest call returns the {e physically same}
    [Autobatch.compiled]. The compile options are trusted to be
    uniform per digest — callers with conflicting options must use
    separate caches. *)

val find : t -> int64 -> Autobatch.compiled option
(** Peek by digest; counts and refreshes like a lookup, but never
    compiles. *)

val length : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int

val hit_rate : t -> float
(** [hits / (hits + misses)]; [nan] before the first lookup. *)
