type slo = Latency_bound | Throughput | Best_effort

let all_slos = [ Latency_bound; Throughput; Best_effort ]
let n_slos = 3

let rank = function Latency_bound -> 0 | Throughput -> 1 | Best_effort -> 2

let of_rank = function
  | 0 -> Latency_bound
  | 1 -> Throughput
  | 2 -> Best_effort
  | r -> invalid_arg (Printf.sprintf "Tenant.of_rank: %d" r)

let slo_name = function
  | Latency_bound -> "latency"
  | Throughput -> "throughput"
  | Best_effort -> "best-effort"

let slo_of_string = function
  | "latency" | "latency-bound" -> Some Latency_bound
  | "throughput" -> Some Throughput
  | "best-effort" | "besteffort" -> Some Best_effort
  | _ -> None

type t = {
  id : int;
  name : string;
  slo : slo;
  rate : float;
  burst : float;
  quota : float;
  mutable tokens : float;
  mutable refilled_at : float;
  mutable submitted : int;
  mutable throttled : int;
  mutable completed : int;
  mutable cost_used : float;
}

let make ?(slo = Best_effort) ?(rate = infinity) ?burst ?(quota = infinity)
    ~id ~name () =
  let burst =
    match burst with
    | Some b -> b
    | None -> if rate = infinity then infinity else Float.max rate 1.
  in
  if rate <= 0. then invalid_arg "Tenant.make: rate must be positive";
  if burst <= 0. then invalid_arg "Tenant.make: burst must be positive";
  {
    id; name; slo; rate; burst; quota;
    tokens = burst;
    refilled_at = 0.;
    submitted = 0; throttled = 0; completed = 0; cost_used = 0.;
  }

let refill t ~now =
  if now > t.refilled_at then begin
    (* An unmetered bucket stays at [infinity]; the arithmetic below is
       still well-defined (inf + anything = inf, min inf burst = burst =
       inf) but short-circuit to keep NaN out of [inf - inf] corners. *)
    if t.rate <> infinity then
      t.tokens <- Float.min t.burst (t.tokens +. ((now -. t.refilled_at) *. t.rate));
    t.refilled_at <- now
  end

let tokens_available t ~now =
  if t.rate = infinity then infinity
  else if now <= t.refilled_at then t.tokens
  else Float.min t.burst (t.tokens +. ((now -. t.refilled_at) *. t.rate))

let admit t ~now ~cost =
  refill t ~now;
  t.submitted <- t.submitted + 1;
  let bucket_ok = t.rate = infinity || t.tokens >= cost in
  let quota_ok = t.quota = infinity || t.cost_used +. cost <= t.quota in
  if bucket_ok && quota_ok then begin
    if t.rate <> infinity then t.tokens <- t.tokens -. cost;
    t.cost_used <- t.cost_used +. cost;
    true
  end
  else begin
    t.throttled <- t.throttled + 1;
    false
  end
