(** Per-tenant identity, SLO class, and rate limiting.

    A tenant is one paying user of the serving stack: it carries the SLO
    class that admission and preemption key on, a token-bucket rate limit
    refilled on the *simulated* clock (so traces replay bitwise), and
    cumulative quota accounting. Tenants never touch wall time. *)

(** Service classes, strongest first. [rank] orders them: a lower rank is
    a stronger promise, and every cross-class decision in the stack
    (weighted-fair pop, shed-victim selection, preemption) compares
    ranks, never constructor order. *)
type slo = Latency_bound | Throughput | Best_effort

val all_slos : slo list
(** Strongest first: [[Latency_bound; Throughput; Best_effort]]. *)

val n_slos : int

val rank : slo -> int
(** [0] for [Latency_bound], [1] for [Throughput], [2] for
    [Best_effort]. *)

val of_rank : int -> slo
(** Inverse of {!rank}; raises [Invalid_argument] out of range. *)

val slo_name : slo -> string
(** ["latency" | "throughput" | "best-effort"] — stable, used in metric
    names and JSON reports. *)

val slo_of_string : string -> slo option

type t = {
  id : int;
  name : string;
  slo : slo;
  rate : float;  (** token refill rate, tokens per simulated second *)
  burst : float; (** bucket capacity, tokens *)
  quota : float; (** lifetime cost budget; [infinity] = unmetered *)
  mutable tokens : float;
  mutable refilled_at : float;  (** simulated time of the last refill *)
  mutable submitted : int;   (** requests offered by this tenant *)
  mutable throttled : int;   (** requests refused by the bucket or quota *)
  mutable completed : int;
  mutable cost_used : float; (** cumulative admitted cost, counted
                                 against [quota] *)
}

val make :
  ?slo:slo -> ?rate:float -> ?burst:float -> ?quota:float ->
  id:int -> name:string -> unit -> t
(** [slo] defaults to [Best_effort]; [rate] to [infinity] (no rate
    limit); [burst] to [max rate 1.] when [rate] is finite; [quota] to
    [infinity]. The bucket starts full. Raises [Invalid_argument] on a
    non-positive [rate] or [burst]. *)

val admit : t -> now:float -> cost:float -> bool
(** Refill the bucket for the simulated interval since the last refill
    (clamped at [burst]), then try to take [cost] tokens and charge
    [cost] against the quota. Returns [false] — and counts a throttle —
    when either the bucket or the remaining quota cannot cover [cost].
    [now] must be monotone per tenant; an earlier [now] refills
    nothing. *)

val tokens_available : t -> now:float -> float
(** The bucket level at [now], without taking anything. *)
